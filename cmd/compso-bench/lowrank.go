package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"compso/internal/experiments"
)

// lowrankMain implements "compso-bench lowrank": run the low-rank family
// judge and, with -validate, enforce the acceptance bar (the planned mix
// wins compression ratio on >= 2 modelzoo profiles at equal-or-better
// simulated step time) plus the perf harness's low-rank rows.
func lowrankMain(args []string) {
	fs := flag.NewFlagSet("lowrank", flag.ExitOnError)
	quick := fs.Bool("quick", false, "smaller gradient samples and convergence budget (CI smoke)")
	jsonPath := fs.String("json", "", "write the machine-readable judge report to this file")
	validate := fs.Bool("validate", false,
		"fail unless the judge's acceptance bar holds and a quick perf run emits the powersgd rows")
	fs.Parse(args)

	rep, tb, err := experiments.LowRankJudge(*quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lowrank: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tb)
	c := rep.Convergence
	fmt.Printf("ring-path convergence (%s, %d iters, SGD): compso loss %.4f, powersgd loss %.4f, powersgd CR %.1fx\n",
		c.Model, c.Iters, c.CompsoLoss, c.PowerSGDLoss, c.PowerSGDCR)

	if *validate {
		if err := rep.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "lowrank validate: %v\n", err)
			os.Exit(1)
		}
		perf, err := experiments.RunPerf(true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lowrank validate: perf: %v\n", err)
			os.Exit(1)
		}
		blob, err := perf.MarshalIndent()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lowrank validate: perf: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.ValidatePerf(blob); err != nil {
			fmt.Fprintf(os.Stderr, "lowrank validate: perf: %v\n", err)
			os.Exit(1)
		}
		for _, name := range []string{"powersgd/compress", "powersgd/decompress"} {
			found := false
			for _, row := range perf.Rows {
				if row.Name == name {
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "lowrank validate: perf harness missing row %q\n", name)
				os.Exit(1)
			}
		}
		fmt.Println("validate: family plan wins >= 2 profiles; perf harness emits the powersgd rows")
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(map[string]any{"lowrank": rep}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lowrank: encoding report: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lowrank: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
