package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"compso/internal/experiments"
)

// overlapMain implements "compso-bench overlap": run the overlap-scheduler
// judge (engine-predicted K-FAC step time, sequential vs pipelined, per
// modelzoo profile) and, with -validate, enforce the acceptance bar (the
// pipelined schedule wins on >= 3 profiles) plus the proxy-trainer leg
// proving overlap on/off produces bit-identical results while the
// overlap/hidden_comm_fraction gauge moves off zero.
func overlapMain(args []string) {
	fs := flag.NewFlagSet("overlap", flag.ExitOnError)
	quick := fs.Bool("quick", false, "smaller gradient samples and validation budget (CI smoke)")
	jsonPath := fs.String("json", "", "write the machine-readable judge report to this file")
	validate := fs.Bool("validate", false,
		"run the proxy-trainer bit-identity leg and fail unless the judge's acceptance bar holds")
	fs.Parse(args)

	rep, tb, err := experiments.OverlapJudge(*quick, *validate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overlap: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tb)
	if v := rep.Validation; v != nil {
		fmt.Printf("trainer leg (%d iters, K-FAC+COMPSO): bit-identical=%v, gauge off=%.3f on=%.3f\n",
			v.Iters, v.BitIdentical, v.GaugeOff, v.GaugeOn)
	}

	if *validate {
		if err := rep.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "overlap validate: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("validate: pipelined schedule wins >= 3 profiles; overlap on/off bit-identical; gauge moves")
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(map[string]any{"overlap": rep}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "overlap: encoding report: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "overlap: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
