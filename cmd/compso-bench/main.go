// Command compso-bench regenerates the paper's evaluation tables and
// figures (§5) from the reproduction's simulated platforms and synthetic
// workloads.
//
// Usage:
//
//	compso-bench -exp all            # everything (slow: trains proxies)
//	compso-bench -exp fig1           # one experiment
//	compso-bench -exp fig6 -iters 60 # convergence with a custom budget
//	compso-bench -exp fig8 -measure  # include real Go throughput runs
//
// Experiments: fig1, fig3, fig5, fig6, fig7, fig8, fig9, table1, table2,
// comm, ablation. With -json PATH the structured rows of every experiment
// run are additionally written to PATH as a {experiment: rows} JSON object.
//
// Observability: -trace trace.json (and optionally -metrics metrics.json)
// additionally runs one fully instrumented 8-GPU K-FAC + COMPSO job and
// writes a Perfetto-viewable Chrome trace of the simulated timeline plus a
// flat metrics dump, after self-checking that the collective span sums
// reconcile with the run's AlgSeconds attribution. -validate FILE checks an
// existing trace against the Chrome trace-event schema and exits.
//
// Fault injection: "compso-bench chaos" runs the fault-injection matrix —
// the same instrumented job under a clean fabric, a persistent straggler,
// degraded inter-node links, payload corruption, and all combined — and
// reports the recovery tallies (retries, lossless fallbacks, autotuner
// retunes) per scenario:
//
//	compso-bench chaos                  # default CI-sized budget
//	compso-bench chaos -iters 30        # bigger budget
//	compso-bench chaos -trace t.json    # also write the combined trace
//	compso-bench chaos -json rows.json  # machine-readable rows
//
// Crash recovery: "compso-bench crash" runs the checkpoint-interval judge —
// an analytic save-overhead vs expected-lost-work sweep over the four
// evaluation profiles (marking both the grid optimum and Young's τ*), plus
// a measured proxy leg that really loses a worker mid-step, restores from
// the last checkpoint, and verifies the recovered run is bit-identical to
// its uninterrupted twin:
//
//	compso-bench crash                  # sweep + measured leg
//	compso-bench crash -quick           # CI-sized measured budget
//	compso-bench crash -json rows.json  # machine-readable rows
//
// Performance: "compso-bench perf" runs the fused-vs-reference benchmark
// harness — wall-clock and allocation measurements of the single-pass
// compression kernels against the preserved multi-pass reference pipelines,
// per back-end codec and per pipeline stage — and writes a machine-readable
// report (schema compso/bench-perf/v1):
//
//	compso-bench perf                   # full run, writes BENCH_PR7.json
//	compso-bench perf -quick -out p.json # CI-sized smoke run
//	compso-bench perf -validate p.json  # schema-check an existing report
//
// Low-rank family judge: "compso-bench lowrank" compares the per-layer
// compressor plan (PowerSGD on large 2D layers, COMPSO elsewhere) against
// all-COMPSO on every modelzoo profile — measured compression ratio,
// simulated gradient-exchange step time, and a ring-all-reduce convergence
// leg:
//
//	compso-bench lowrank                # full judge run
//	compso-bench lowrank -quick -validate # CI smoke: judge + perf-row check
//	compso-bench lowrank -json rows.json  # machine-readable report
//
// Overlap scheduler judge: "compso-bench overlap" prices one K-FAC+COMPSO
// step per modelzoo profile under the sequential schedule and under the
// compute/communication overlap pipeline (tensor-fusion buckets +
// per-round preconditioned exchange), and with -validate also reruns the
// proxy trainer with the scheduler off and on to prove the two answers
// are bit-identical while the hidden-communication gauge moves:
//
//	compso-bench overlap                  # full judge run
//	compso-bench overlap -quick -validate # CI smoke: judge + trainer leg
//	compso-bench overlap -json rows.json  # machine-readable report
//
// Mega-scale sweep: "compso-bench scale" replays the COMPSO training
// loop's communication program on the discrete-event engine at 64 → 8192
// simulated GPUs in one process — after a small-world leg proving the
// event engine bit-identical to the goroutine engine — and writes a
// machine-readable report (schema compso/bench-scale/v1):
//
//	compso-bench scale                       # full sweep, writes BENCH_PR10.json
//	compso-bench scale -quick -max-heap-mb 4096 # CI smoke with RSS ceiling
//	compso-bench scale -validate BENCH_PR10.json # schema-check a report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"compso/internal/experiments"
	"compso/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		chaosMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "crash" {
		crashMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "perf" {
		perfMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "lowrank" {
		lowrankMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "overlap" {
		overlapMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "scale" {
		scaleMain(os.Args[2:])
		return
	}
	exp := flag.String("exp", "all", "experiment to run: all, quick, fig1, fig3, fig5, fig6, fig7, fig8, fig9, table1, table2, comm, ablation")
	iters := flag.Int("iters", 0, "training iteration budget for convergence experiments (0 = paper-scale default)")
	measure := flag.Bool("measure", false, "fig8: also measure real Go implementation throughput")
	jsonPath := flag.String("json", "", "write machine-readable results of the selected experiments to this file")
	tracePath := flag.String("trace", "", "also run an instrumented 8-GPU K-FAC+COMPSO job and write its Chrome trace to this file")
	metricsPath := flag.String("metrics", "", "with the instrumented run, write its flat metrics dump (JSON) to this file")
	validatePath := flag.String("validate", "", "validate an existing Chrome trace file against the trace-event schema and exit")
	flag.Parse()

	if *validatePath != "" {
		blob, err := os.ReadFile(*validatePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "validate: %v\n", err)
			os.Exit(1)
		}
		if err := obs.ValidateChromeTrace(blob); err != nil {
			fmt.Fprintf(os.Stderr, "validate: %s: %v\n", *validatePath, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid Chrome trace\n", *validatePath)
		return
	}

	collected := map[string]any{}
	runners := map[string]func() error{
		"fig1": func() error {
			rows, tb := experiments.Figure1()
			collected["fig1"] = rows
			fmt.Println(tb)
			return nil
		},
		"fig3": func() error {
			rows, tb, err := experiments.Figure3(*iters)
			if err != nil {
				return err
			}
			collected["fig3"] = rows
			fmt.Println(tb)
			return nil
		},
		"fig5": func() error {
			results, tb := experiments.Figure5()
			collected["fig5"] = results
			fmt.Println(tb)
			// Render the histograms as ASCII densities.
			for _, r := range results {
				fmt.Printf("%-5s %-26s ", r.Mode, r.LayerType)
				for _, d := range r.Density {
					fmt.Print(spark(d))
				}
				fmt.Println()
			}
			fmt.Println()
			return nil
		},
		"fig6": func() error {
			runs, tb, err := experiments.Figure6(*iters)
			if err != nil {
				return err
			}
			collected["fig6"] = runs
			fmt.Println(tb)
			for _, r := range runs {
				fmt.Printf("%-13s %-17s losses:", r.Model, r.Method)
				for _, l := range r.Losses {
					fmt.Printf(" %.3f", l)
				}
				fmt.Println()
			}
			fmt.Println()
			return nil
		},
		"fig7": func() error {
			rows, tb, err := experiments.Figure7()
			if err != nil {
				return err
			}
			collected["fig7"] = rows
			fmt.Println(tb)
			return nil
		},
		"fig8": func() error {
			rows, tb, err := experiments.Figure8(*measure)
			if err != nil {
				return err
			}
			collected["fig8"] = rows
			fmt.Println(tb)
			return nil
		},
		"fig9": func() error {
			rows, tb, err := experiments.Figure9()
			if err != nil {
				return err
			}
			collected["fig9"] = rows
			fmt.Println(tb)
			return nil
		},
		"table1": func() error {
			rows, tb, err := experiments.Table1(*iters)
			if err != nil {
				return err
			}
			collected["table1"] = rows
			fmt.Println(tb)
			return nil
		},
		"table2": func() error {
			rows, tb, err := experiments.Table2()
			if err != nil {
				return err
			}
			collected["table2"] = rows
			fmt.Println(tb)
			return nil
		},
		"comm": func() error {
			rows, tb, err := experiments.CommBreakdown()
			if err != nil {
				return err
			}
			collected["comm"] = rows
			fmt.Println(tb)
			return nil
		},
		"headline": func() error {
			res, tb, err := experiments.Headline()
			if err != nil {
				return err
			}
			collected["headline"] = res
			fmt.Println(tb)
			return nil
		},
		"ablation": func() error {
			rows, tb, err := experiments.Ablations()
			if err != nil {
				return err
			}
			collected["ablation"] = rows
			fmt.Println(tb)
			return nil
		},
	}
	order := []string{"headline", "fig1", "fig3", "fig5", "fig6", "table1", "fig7", "table2", "comm", "fig8", "fig9", "ablation"}
	quick := []string{"headline", "fig1", "fig5", "fig7", "table2", "comm", "fig8", "fig9", "ablation"}

	var selected []string
	switch *exp {
	case "all":
		selected = order
	case "quick":
		selected = quick
	default:
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have: all, quick, %s)\n", *exp, strings.Join(order, ", "))
			os.Exit(2)
		}
		selected = []string{*exp}
	}
	for _, name := range selected {
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *tracePath != "" || *metricsPath != "" {
		if err := experiments.CaptureObserved(*tracePath, *metricsPath, *iters); err != nil {
			fmt.Fprintf(os.Stderr, "observed run: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(collected, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding results: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, len(collected))
	}
}

// chaosMain is the "compso-bench chaos" subcommand: run the fault-injection
// matrix and report per-scenario recovery tallies.
func chaosMain(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	iters := fs.Int("iters", 0, "training iteration budget per scenario (0 = small CI default)")
	jsonPath := fs.String("json", "", "write machine-readable scenario rows to this file")
	tracePath := fs.String("trace", "", "write the combined scenario's Chrome trace to this file")
	_ = fs.Parse(args)

	rows, tb, err := experiments.ChaosMatrix(*iters, *tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tb)
	fmt.Println("span sums reconcile with AlgSeconds within 1% in every scenario")
	if *tracePath != "" {
		fmt.Printf("wrote combined-scenario Chrome trace to %s\n", *tracePath)
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(map[string]any{"chaos": rows}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: encoding results: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// crashMain is the "compso-bench crash" subcommand: the checkpoint-interval
// recovery judge (analytic sweep over the modelzoo profiles) plus one
// measured crash-and-restore proxy run.
func crashMain(args []string) {
	fs := flag.NewFlagSet("crash", flag.ExitOnError)
	iters := fs.Int("iters", 0, "measured leg's training budget (0 = small CI default)")
	quick := fs.Bool("quick", false, "CI-sized measured budget (same as the default today; reserved)")
	jsonPath := fs.String("json", "", "write machine-readable sweep rows and the measured leg to this file")
	_ = fs.Parse(args)
	if *quick && *iters == 0 {
		*iters = 12
	}

	rows, tb := experiments.CrashRecoverySweep()
	fmt.Println(tb)
	measured, err := experiments.CrashMeasuredRun(*iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash: measured leg: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("measured proxy leg: %d crash(es), %d restore(s), %d checkpoint save(s), %d checkpoint bytes\n",
		measured.Restarts, measured.Restores, measured.Saves, measured.CkptBytes)
	fmt.Printf("recovered run bit-identical to uninterrupted twin: %v\n", measured.BitIdentical)
	fmt.Printf("measured recovery cost: %.4f simulated collective seconds per worker\n", measured.RecoverySec)

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"crash_sweep":    rows,
			"crash_measured": measured,
		}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "crash: encoding results: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*jsonPath, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "crash: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// spark maps a density to a block character for ASCII histograms.
func spark(d float64) string {
	blocks := []rune(" ▁▂▃▄▅▆▇█")
	idx := int(d * 8 / 0.12)
	if idx >= len(blocks) {
		idx = len(blocks) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return string(blocks[idx])
}
