package main

import (
	"flag"
	"fmt"
	"os"

	"compso/internal/experiments"
)

// scaleMain implements "compso-bench scale": run the mega-scale
// discrete-event sweep (64 → 8192 simulated GPUs in one process, with a
// small-world bit-identity leg against the goroutine engine) and emit the
// machine-readable report.
func scaleMain(args []string) {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	quick := fs.Bool("quick", false, "sweep 64/256/1024 only (CI smoke)")
	out := fs.String("out", "BENCH_PR10.json", "write the JSON report here (empty = stdout table only)")
	maxHeapMB := fs.Int("max-heap-mb", 0, "fail if runtime-owned memory exceeds this many MB after any world (0 = unlimited)")
	validatePath := fs.String("validate", "", "validate an existing bench-scale JSON file and exit")
	fs.Parse(args)

	if *validatePath != "" {
		blob, err := os.ReadFile(*validatePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scale validate: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.ValidateScale(blob); err != nil {
			fmt.Fprintf(os.Stderr, "scale validate: %s: %v\n", *validatePath, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid bench-scale report\n", *validatePath)
		return
	}

	rep, err := experiments.RunScale(*quick, *maxHeapMB)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scale: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
	fmt.Printf("event engine bit-identical to goroutine engine at worlds %v\n", rep.IdentityWorlds)
	if *out == "" {
		return
	}
	blob, err := rep.MarshalIndent()
	if err != nil {
		fmt.Fprintf(os.Stderr, "scale: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "scale: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
