package main

import (
	"flag"
	"fmt"
	"os"

	"compso/internal/experiments"
)

// perfMain implements "compso-bench perf": run the fused-vs-reference
// benchmark-trajectory harness and emit the machine-readable report.
func perfMain(args []string) {
	fs := flag.NewFlagSet("perf", flag.ExitOnError)
	quick := fs.Bool("quick", false, "smaller input and measurement budget (CI smoke)")
	out := fs.String("out", "BENCH_PR8.json", "write the JSON report here (empty = stdout table only)")
	validatePath := fs.String("validate", "", "validate an existing bench-perf JSON file and exit")
	fs.Parse(args)

	if *validatePath != "" {
		blob, err := os.ReadFile(*validatePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perf validate: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.ValidatePerf(blob); err != nil {
			fmt.Fprintf(os.Stderr, "perf validate: %s: %v\n", *validatePath, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid bench-perf report\n", *validatePath)
		return
	}

	rep, err := experiments.RunPerf(*quick)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Render())
	if *out == "" {
		return
	}
	blob, err := rep.MarshalIndent()
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "perf: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
