// Command compso-compress compresses a raw little-endian float32 file with
// any of the library's gradient compressors and reports the compression
// ratio, error statistics and throughput. With -roundtrip the decompressed
// output is written next to the input for inspection.
//
// Usage:
//
//	compso-compress -in gradient.f32 -method compso -ebf 4e-3 -ebq 4e-3
//	compso-compress -in gradient.f32 -method qsgd -bits 8
//	compso-compress -in gradient.f32 -method powersgd -rank 4 -ef
//	compso-compress -in gradient.f32 -method compso -codec Zstd -out out.bin
//
// Methods are resolved through the compressor registry, so any family in
// compress.Families() works here, with -ef composing error feedback on top.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"compso/internal/compress"
	"compso/internal/encoding"
	"compso/internal/stats"
)

func main() {
	in := flag.String("in", "", "input file of little-endian float32 values (required)")
	out := flag.String("out", "", "optional output file for the compressed buffer")
	roundtrip := flag.String("roundtrip", "", "optional output file for the decompressed float32 values")
	method := flag.String("method", "compso", "compressor family: "+strings.Join(compress.Families(), ", "))
	codecName := flag.String("codec", "ANS", "COMPSO back-end codec (see Table 2)")
	ebf := flag.Float64("ebf", 4e-3, "COMPSO filter error bound (0 disables the filter)")
	ebq := flag.Float64("ebq", 4e-3, "COMPSO quantizer error bound")
	bits := flag.Int("bits", 8, "QSGD/CocktailSGD quantization bits")
	keep := flag.Float64("keep", 0.2, "CocktailSGD keep fraction")
	relEB := flag.Float64("releb", 4e-3, "SZ range-relative error bound")
	rank := flag.Int("rank", 4, "PowerSGD factorization rank")
	ef := flag.Bool("ef", false, "wrap the compressor with an error-feedback residual")
	seed := flag.Int64("seed", 7, "stochastic rounding seed")
	flag.Parse()

	if *in == "" {
		fail("missing -in")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		fail("read input: %v", err)
	}
	if len(raw)%4 != 0 {
		fail("input length %d is not a multiple of 4", len(raw))
	}
	values := make([]float32, len(raw)/4)
	for i := range values {
		values[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}

	opts := compress.Options{
		Seed:          *seed,
		EBFilter:      *ebf,
		EBQuant:       *ebq,
		Bits:          *bits,
		Keep:          *keep,
		RelEB:         *relEB,
		Rank:          *rank,
		ErrorFeedback: *ef,
	}
	if *ebf <= 0 {
		disabled := false
		opts.Filter = &disabled
	}
	if family, err := compress.CanonicalFamily(*method); err == nil && family == "compso" {
		codec, err := encoding.ByName(*codecName)
		if err != nil {
			fail("%v", err)
		}
		opts.Codec = codec
	}
	comp, err := compress.ByName(*method, opts)
	if err != nil {
		fail("%v", err)
	}

	start := time.Now()
	blob, err := comp.Compress(values)
	if err != nil {
		fail("compress: %v", err)
	}
	compSec := time.Since(start).Seconds()

	start = time.Now()
	restored, err := comp.Decompress(blob)
	if err != nil {
		fail("decompress: %v", err)
	}
	decompSec := time.Since(start).Seconds()

	m := stats.Compare(values, restored)
	inputMB := float64(len(raw)) / 1e6
	fmt.Printf("method:            %s\n", comp.Name())
	fmt.Printf("input:             %d values (%.2f MB)\n", len(values), inputMB)
	fmt.Printf("compressed:        %d bytes\n", len(blob))
	fmt.Printf("compression ratio: %.2fx\n", compress.Ratio(len(values), blob))
	fmt.Printf("compress:          %.1f MB/s\n", inputMB/compSec)
	fmt.Printf("decompress:        %.1f MB/s\n", inputMB/decompSec)
	fmt.Printf("max abs error:     %.3g\n", m.MaxAbs)
	fmt.Printf("mean abs error:    %.3g\n", m.MeanAbs)
	fmt.Printf("PSNR:              %.1f dB\n", m.PSNR)

	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fail("write -out: %v", err)
		}
	}
	if *roundtrip != "" {
		buf := make([]byte, 4*len(restored))
		for i, v := range restored {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if err := os.WriteFile(*roundtrip, buf, 0o644); err != nil {
			fail("write -roundtrip: %v", err)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
