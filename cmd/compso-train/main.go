// Command compso-train trains a proxy model with distributed K-FAC (or
// SGD) on the simulated cluster, optionally compressing the gradient
// exchange, and prints the convergence log and communication breakdown.
//
// Usage:
//
//	compso-train -model resnet -optimizer kfac -compressor compso -gpus 8
//	compso-train -model bert -optimizer sgd -compressor cocktail -iters 200
//
// Models: resnet, maskrcnn, bert, gpt, squad.
// Optimizers: kfac (eigendecomposition), kfac-cholesky (KAISA implicit
// inversion), sgd.
// Compressors: none, compso, qsgd8, qsgd4, sz, cocktail, powersgd,
// powersgd-ef. All lossy families are built through the compressor
// registry; powersgd under -optimizer sgd routes the gradient exchange
// through the alternating-factor ring all-reduce (shared seed across
// ranks keeps the factor state replicated), and powersgd-ef composes the
// shared error-feedback wrapper on top.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"
	"strings"

	"compso/internal/ckpt"
	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/obs"
	"compso/internal/opt"
	"compso/internal/train"
)

func main() {
	model := flag.String("model", "resnet", "proxy model: resnet, maskrcnn, bert, gpt, squad")
	optimizer := flag.String("optimizer", "kfac", "optimizer: kfac, kfac-cholesky, or sgd")
	compressor := flag.String("compressor", "compso",
		"compressor: none, compso, qsgd8, qsgd4, sz, cocktail, powersgd, powersgd-ef")
	lrRank := flag.Int("rank", 4, "PowerSGD factorization rank")
	gpus := flag.Int("gpus", 4, "simulated GPU count")
	iters := flag.Int("iters", 120, "training iterations")
	seed := flag.Int64("seed", 42, "seed for model init, data and stochastic rounding")
	platform := flag.String("platform", "slingshot10",
		"simulated platform: "+strings.Join(cluster.Platforms(), ", ")+" (1/2 accepted as aliases)")
	aggM := flag.Int("agg", 4, "layer aggregation factor")
	tracePath := flag.String("trace", "", "write a Chrome trace of the simulated timeline to this file")
	ckptDir := flag.String("ckpt", "", "checkpoint directory (enables crash recovery when set)")
	ckptEvery := flag.Int("ckpt-every", 0, "save a checkpoint every N completed steps (0 disables)")
	resume := flag.String("resume", "", `resume from a checkpoint file, or "latest" for the newest in -ckpt`)
	flag.Parse()

	builders := map[string]func(rng *rand.Rand) *modelzoo.ProxyTask{
		"resnet":   func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyResNet(rng, *seed) },
		"maskrcnn": func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyMaskRCNN(rng, *seed) },
		"bert":     func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyBERT(rng, *seed) },
		"gpt":      func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyGPT(rng, *seed) },
		"squad": func(rng *rand.Rand) *modelzoo.ProxyTask {
			task, _ := modelzoo.ProxySQuAD(rng, *seed)
			return task
		},
	}
	builder, ok := builders[*model]
	if !ok {
		fail("unknown model %q", *model)
	}

	sched := opt.Schedule(&opt.StepLR{BaseLR: 0.03, Drops: []int{*iters * 2 / 3}, Gamma: 0.1})
	if *model == "bert" || *model == "gpt" || *model == "squad" {
		sched = &opt.SmoothLR{BaseLR: 0.02, MinLR: 0.002, Warmup: *iters / 20, Total: *iters}
	}

	// Numeric aliases map onto the registry names for compatibility with
	// the old -platform 1|2 flag.
	switch *platform {
	case "1":
		*platform = "slingshot10"
	case "2":
		*platform = "slingshot11"
	}
	plat, err := cluster.PlatformByName(*platform)
	if err != nil {
		fail("%v", err)
	}

	cfg := train.Config{
		BuildTask:    builder,
		Workers:      *gpus,
		Platform:     plat,
		Iters:        *iters,
		Seed:         *seed,
		Schedule:     sched,
		UseKFAC:      *optimizer == "kfac" || *optimizer == "kfac-cholesky",
		KFAC:         kfac.DefaultConfig(),
		StatFreq:     1,
		AggregationM: *aggM,
	}
	if *tracePath != "" {
		cfg.Obs = obs.NewRecorder()
	}
	// Checkpointing: -ckpt names the directory, -ckpt-every the cadence
	// (setting one defaults the other sensibly), and -resume restarts from a
	// saved file — "latest" resolves to the newest complete checkpoint.
	if *ckptDir != "" && *ckptEvery <= 0 {
		*ckptEvery = max(1, *iters/10)
	}
	cfg.Checkpoint = train.CheckpointConfig{Interval: *ckptEvery, Dir: *ckptDir}
	if *resume == "latest" {
		if *ckptDir == "" {
			fail("-resume latest requires -ckpt")
		}
		path, err := ckpt.LatestPath(*ckptDir)
		if err != nil {
			fail("resume: %v", err)
		}
		if path == "" {
			fail("resume: no checkpoints in %s", *ckptDir)
		}
		*resume = path
	}
	cfg.Checkpoint.Resume = *resume
	if *optimizer == "kfac-cholesky" {
		cfg.KFAC.Inversion = kfac.CholeskyInverse
	}
	// Every lossy family is built through the compressor registry; the
	// per-rank seed decorrelates stochastic rounding across workers, while
	// the low-rank family shares one seed so its replicated factor state
	// stays bit-identical (the ring all-reduce invariant).
	registryComp := func(family string, o compress.Options) func(rank int) compress.Compressor {
		return func(rank int) compress.Compressor {
			o := o
			if family != "powersgd" {
				o.Seed = *seed + int64(rank)
			}
			c, err := compress.ByName(family, o)
			if err != nil {
				fail("%v", err)
			}
			return c
		}
	}
	switch *compressor {
	case "none":
	case "compso":
		cfg.NewCompressor = func(rank int) compress.Compressor { return compso.NewCompressor(nil, rank, *seed) }
		cfg.Controller = compso.DefaultController(sched, *iters)
	case "qsgd8":
		cfg.NewCompressor = registryComp("qsgd", compress.Options{Bits: 8})
	case "qsgd4":
		cfg.NewCompressor = registryComp("qsgd", compress.Options{Bits: 4})
	case "sz":
		cfg.NewCompressor = registryComp("sz", compress.Options{RelEB: 4e-3})
	case "cocktail":
		cfg.NewCompressor = registryComp("cocktail", compress.Options{Keep: 0.2, Bits: 8})
	case "powersgd":
		cfg.NewCompressor = registryComp("powersgd", compress.Options{Seed: *seed, Rank: *lrRank})
	case "powersgd-ef":
		cfg.NewCompressor = registryComp("powersgd",
			compress.Options{Seed: *seed, Rank: *lrRank, ErrorFeedback: true})
	default:
		fail("unknown compressor %q", *compressor)
	}

	res, err := train.Run(cfg)
	if err != nil {
		fail("training failed: %v", err)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail("trace: %v", err)
		}
		if err := cfg.Obs.WriteChromeTrace(f); err != nil {
			fail("trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("trace: %v", err)
		}
		fmt.Printf("wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", *tracePath)
	}

	fmt.Printf("model=%s optimizer=%s compressor=%s gpus=%d iters=%d\n\n",
		*model, *optimizer, *compressor, *gpus, *iters)
	fmt.Println("iter    loss        accuracy")
	for i, it := range res.Iterations {
		acc := "-"
		if len(res.Accuracies) > i && res.Accuracies[i] >= 0 {
			acc = fmt.Sprintf("%.2f%%", 100*res.Accuracies[i])
		}
		fmt.Printf("%-7d %-11.4f %s\n", it, res.Losses[i], acc)
	}
	if res.MeanCR > 0 {
		fmt.Printf("\nmean compression ratio: %.1fx\n", res.MeanCR)
	}
	fmt.Println("\nsimulated communication seconds per worker (whole run):")
	keys := make([]string, 0, len(res.CommSeconds))
	for k := range res.CommSeconds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-18s %.4fs\n", k, res.CommSeconds[k])
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
