// Command compso-serve runs the COMPSO library as a long-running,
// multi-tenant compression service (see internal/serve for the API), and
// ships its own load/chaos harness.
//
// Serve (default):
//
//	compso-serve -addr :8080
//	compso-serve -addr :8080 -max-sessions 2048 -max-inflight 256 \
//	             -tenant-inflight 64 -idle-timeout 5m
//
// Load generation against a running server:
//
//	compso-serve loadgen -url http://127.0.0.1:8080 -sessions 256 \
//	             -requests 20 -model BERT-large -chaos 0.05 -json report.json
//
// Smoke mode (CI): an in-process server + loadgen burst, then /metrics
// validation — exits non-zero on any request error, retry exhaustion,
// handler panic or malformed metrics payload:
//
//	compso-serve -smoke -sessions 200 -requests 5
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"compso/internal/serve"
	"compso/internal/serve/loadgen"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		loadgenMain(os.Args[2:])
		return
	}
	serveMain(os.Args[1:])
}

func serveMain(args []string) {
	fs := flag.NewFlagSet("compso-serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxSessions := fs.Int("max-sessions", 4096, "max live sessions across all tenants")
	maxTenantSessions := fs.Int("tenant-sessions", 0, "max live sessions per tenant (0 = global cap)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrent data-plane requests (0 = 8×GOMAXPROCS)")
	maxTenantInflight := fs.Int("tenant-inflight", 0, "max concurrent requests per tenant (0 = global cap)")
	maxElements := fs.Int("max-elements", 0, "max gradient elements per request (0 = 1<<24)")
	maxTenants := fs.Int("max-tenants", 0, "max distinct tenant names (0 = max-sessions)")
	idleTimeout := fs.Duration("idle-timeout", 10*time.Minute, "reap sessions idle longer than this (0 disables)")
	reapEvery := fs.Duration("reap-interval", 30*time.Second, "idle-reaper period")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain budget")
	smoke := fs.Bool("smoke", false, "run an in-process loadgen burst and exit (CI)")
	smokeSessions := fs.Int("sessions", 200, "smoke: concurrent sessions")
	smokeRequests := fs.Int("requests", 5, "smoke: requests per session")
	smokeChaos := fs.Float64("chaos", 0.05, "smoke: fraction of decompress payloads corrupted")
	fs.Parse(args)

	cfg := serve.Config{
		MaxSessions:       *maxSessions,
		MaxTenantSessions: *maxTenantSessions,
		MaxInflight:       *maxInflight,
		MaxTenantInflight: *maxTenantInflight,
		MaxElements:       *maxElements,
		MaxTenants:        *maxTenants,
	}

	if *smoke {
		if err := runSmoke(cfg, *smokeSessions, *smokeRequests, *smokeChaos); err != nil {
			fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
			os.Exit(1)
		}
		return
	}

	srv := serve.New(cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *idleTimeout > 0 {
		go func() {
			t := time.NewTicker(*reapEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := srv.ReapIdle(*idleTimeout); n > 0 {
						fmt.Fprintf(os.Stderr, "compso-serve: reaped %d idle sessions\n", n)
					}
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "compso-serve: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "compso-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "compso-serve: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "compso-serve: drain:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "compso-serve: shutdown:", err)
	}
}

func loadgenMain(args []string) {
	fs := flag.NewFlagSet("compso-serve loadgen", flag.ExitOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "target server base URL")
	sessions := fs.Int("sessions", 64, "concurrent sessions")
	requests := fs.Int("requests", 10, "requests per session")
	tenants := fs.Int("tenants", 4, "tenant count")
	model := fs.String("model", "ResNet-50", "modelzoo profile for the size distribution")
	maxElems := fs.Int("max-elems", 1<<18, "per-request element cap")
	compressor := fs.String("compressor", "compso", "session compressor family")
	codec := fs.String("codec", "", "lossless back-end codec (empty = server default)")
	chaos := fs.Float64("chaos", 0, "fraction of decompress payloads corrupted")
	seed := fs.Int64("seed", 1, "determinism seed")
	timeout := fs.Duration("timeout", 10*time.Minute, "whole-run timeout")
	jsonOut := fs.String("json", "", "write the report as JSON to this path")
	fs.Parse(args)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:            *url,
		Sessions:           *sessions,
		RequestsPerSession: *requests,
		Tenants:            *tenants,
		Model:              *model,
		MaxElems:           *maxElems,
		Compressor:         *compressor,
		Codec:              *codec,
		ChaosRate:          *chaos,
		Seed:               *seed,
		Verify:             true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	printReport(rep)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
	if rep.Errors > 0 || rep.Exhausted > 0 {
		os.Exit(1)
	}
}

// runSmoke is the CI gate: an in-process server driven hard enough to
// exercise sessions, admission and chaos, then a /metrics sanity pass.
func runSmoke(cfg serve.Config, sessions, requests int, chaos float64) error {
	// The smoke gate is a capacity check — size the admission caps to the
	// burst unless the caller pinned them. (The overload path has its own
	// dedicated test; here shed storms on slow CI runners would only mask
	// real failures behind retry exhaustion.)
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = sessions
	}
	if cfg.MaxSessions < sessions+1 {
		cfg.MaxSessions = sessions + 1
	}
	srv := serve.New(cfg)
	transport := loadgen.HandlerTransport(srv.Handler())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	rep, err := loadgen.Run(ctx, loadgen.Config{
		Transport:          transport,
		Sessions:           sessions,
		RequestsPerSession: requests,
		ChaosRate:          chaos,
		Seed:               42,
		Verify:             true,
	})
	if err != nil {
		return err
	}
	printReport(rep)
	if rep.Errors > 0 {
		return fmt.Errorf("%d request errors (first: %v)", rep.Errors, rep.ErrorSamples)
	}
	if rep.Exhausted > 0 {
		return fmt.Errorf("%d requests exhausted their retry budget", rep.Exhausted)
	}
	if rep.Requests == 0 {
		return errors.New("no requests completed")
	}
	if chaos > 0 && rep.ChaosSent > 0 && rep.ChaosRejected == 0 {
		return errors.New("chaos payloads sent but none rejected — decoder validation suspect")
	}
	if err := validateMetrics(srv); err != nil {
		return err
	}
	if err := drainCheck(srv); err != nil {
		return err
	}
	fmt.Println("smoke: OK")
	return nil
}

// validateMetrics fetches /metrics through the handler and checks the
// payload parses and carries the series CI dashboards rely on.
func validateMetrics(srv *serve.Server) error {
	req, _ := http.NewRequest(http.MethodGet, "http://compso-serve/metrics", nil)
	rt := loadgen.HandlerTransport(srv.Handler())
	resp, err := rt.RoundTrip(req)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	var payload struct {
		Counters   map[string]float64         `json:"counters"`
		Gauges     map[string]float64         `json:"gauges"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return fmt.Errorf("metrics: malformed JSON: %w", err)
	}
	if payload.Counters["serve/requests"] <= 0 {
		return errors.New("metrics: serve/requests missing or zero")
	}
	if payload.Counters["serve/panics"] != 0 {
		return fmt.Errorf("metrics: %g handler panics recorded", payload.Counters["serve/panics"])
	}
	foundTenant := false
	for name := range payload.Histograms {
		if len(name) > len("serve/tenant/") && name[:len("serve/tenant/")] == "serve/tenant/" {
			foundTenant = true
			break
		}
	}
	if !foundTenant {
		return errors.New("metrics: no per-tenant histograms present")
	}
	return nil
}

// drainCheck exercises graceful shutdown: after Shutdown, the data plane
// answers 503 and the session table is empty.
func drainCheck(srv *serve.Server) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if n := srv.SessionCount(); n != 0 {
		return fmt.Errorf("drain: %d sessions survived shutdown", n)
	}
	req, _ := http.NewRequest(http.MethodPost, "http://compso-serve/v1/sessions", nil)
	resp, err := loadgen.HandlerTransport(srv.Handler()).RoundTrip(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("drain: post-shutdown create got %d, want 503", resp.StatusCode)
	}
	return nil
}

func printReport(rep *loadgen.Report) {
	fmt.Printf("loadgen: sessions=%d requests=%d errors=%d shed=%d chaos(sent/rejected/accepted)=%d/%d/%d\n",
		rep.Sessions, rep.Requests, rep.Errors, rep.Shed, rep.ChaosSent, rep.ChaosRejected, rep.ChaosAccepted)
	fmt.Printf("loadgen: %.1f MB/s uncompressed through /compress, mean ratio %.2f, wall %.2fs\n",
		rep.CompressMBPerSec, rep.MeanRatio, rep.WallSeconds)
	fmt.Printf("loadgen: latency p50=%.1fms p95=%.1fms p99=%.1fms\n",
		rep.LatencyP50*1e3, rep.LatencyP95*1e3, rep.LatencyP99*1e3)
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
