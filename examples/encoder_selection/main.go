// Encoder selection example: run the §4.4 performance model end to end —
// measure every lossless back-end on BERT-large-profile K-FAC gradients,
// build the offline communication lookup table, and let the model pick the
// encoder and the layer-aggregation factor.
//
// Run with:
//
//	go run ./examples/encoder_selection
package main

import (
	"fmt"
	"log"
	"time"

	"compso"
	"compso/internal/perfmodel"
	"compso/internal/xrand"
)

func main() {
	profile, err := compso.ModelByName("BERT-large")
	if err != nil {
		log.Fatal(err)
	}

	// Online half: profile each encoder on real(istic) gradient data, as
	// the paper does during the first k warmup iterations.
	rng := xrand.NewSeeded(99)
	sample := profile.SyntheticGradient(rng, 4, 1<<20) // one FFN layer's worth
	fmt.Printf("profiling %d encoders on %d gradient values...\n\n", len(compso.Codecs()), len(sample))

	var measurements []perfmodel.EncoderMeasurement
	fmt.Printf("%-10s %-8s %-12s %-12s\n", "encoder", "CR", "comp MB/s", "decomp MB/s")
	for _, codec := range compso.Codecs() {
		c := compso.New(compso.WithSeed(7), compso.WithCodec(codec))
		start := time.Now()
		blob, err := c.Compress(sample)
		if err != nil {
			log.Fatal(err)
		}
		compSec := time.Since(start).Seconds()
		start = time.Now()
		if _, err := c.Decompress(blob); err != nil {
			log.Fatal(err)
		}
		decompSec := time.Since(start).Seconds()
		mb := float64(4*len(sample)) / 1e6
		m := perfmodel.EncoderMeasurement{
			Name:             codec.Name(),
			CompressionRatio: compso.Ratio(len(sample), blob),
			CompressBps:      mb / compSec * 1e6,
			DecompressBps:    mb / decompSec * 1e6,
		}
		measurements = append(measurements, m)
		fmt.Printf("%-10s %-8.1f %-12.0f %-12.0f\n", m.Name, m.CompressionRatio,
			m.CompressBps/1e6, m.DecompressBps/1e6)
	}

	// The selection decision trades ratio against GPU-scale encoder speed;
	// our Go measurements preserve the encoders' relative speeds but run at
	// CPU scale, so rescale them with one common factor anchoring ANS to
	// its published A100 throughput (43.52 GB/s, Table 2 of the paper).
	for i := range measurements {
		if measurements[i].Name == "ANS" {
			factor := 43.52e9 / measurements[i].CompressBps
			for j := range measurements {
				measurements[j].CompressBps *= factor
				measurements[j].DecompressBps *= factor
			}
			break
		}
	}

	// Offline half: the platform lookup table.
	platform, err := compso.PlatformByName("slingshot10")
	if err != nil {
		log.Fatal(err)
	}
	lt, err := compso.BuildLookupTable(platform, []int{8, 16, 32, 64})
	if err != nil {
		log.Fatal(err)
	}

	// The decision: owned-layer sizes for rank 0 of a 64-GPU job.
	var layerBytes []int
	for li := 0; li < len(profile.Layers); li += 64 {
		layerBytes = append(layerBytes, 4*profile.Layers[li].Params())
	}
	best, err := lt.SelectEncoder(layerBytes, 64, 4, 0.35, measurements)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperformance model selects: %s\n", best.Name)

	prof := perfmodel.OnlineProfile{
		CompressionRatio: best.CompressionRatio,
		CompressBps:      best.CompressBps,
		DecompressBps:    best.DecompressBps,
		CommRatio:        0.35,
	}
	m, gain, err := lt.BestAggregation(layerBytes, 64, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best layer-aggregation factor m = %d\n", m)
	fmt.Printf("projected end-to-end speedup: %.2fx\n", gain)
}
