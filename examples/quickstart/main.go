// Quickstart: compress and restore a K-FAC gradient with COMPSO.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"compso"
)

func main() {
	// A synthetic K-FAC preconditioned gradient: most values near zero,
	// a heavy tail of large ones — the distribution COMPSO's filter+SR
	// pipeline is built for.
	rng := compso.NewRand(1)
	gradient := make([]float32, 1<<20)
	for i := range gradient {
		switch {
		case rng.Float64() < 0.85:
			gradient[i] = float32(rng.NormFloat64() * 0.0015)
		case rng.Float64() < 0.9:
			gradient[i] = float32(rng.NormFloat64() * 0.12)
		default:
			gradient[i] = float32(rng.NormFloat64() * 0.04)
		}
	}

	// COMPSO with the paper's defaults: filter bound 4e-3, stochastic
	// rounding bound 4e-3, ANS back-end encoder. Options override any
	// subset (WithErrorBound, WithFilterBound, WithCodec, WithObserver).
	c := compso.New(compso.WithSeed(42))
	blob, err := c.Compress(gradient)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := c.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}

	var maxErr float64
	for i := range gradient {
		if e := math.Abs(float64(restored[i] - gradient[i])); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("original:          %d bytes\n", 4*len(gradient))
	fmt.Printf("compressed:        %d bytes\n", len(blob))
	fmt.Printf("compression ratio: %.1fx\n", compso.Ratio(len(gradient), blob))
	fmt.Printf("max abs error:     %.2e (bound %.2e)\n", maxErr, c.MaxError())

	// Tighter bounds trade ratio for fidelity; looser bounds the reverse.
	for _, eb := range []float64{1e-2, 4e-3, 1e-3} {
		c := compso.New(
			compso.WithSeed(42),
			compso.WithErrorBound(eb),
			compso.WithFilterBound(eb),
		)
		blob, err := c.Compress(gradient)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("eb=%.0e -> ratio %.1fx\n", eb, compso.Ratio(len(gradient), blob))
	}
}
