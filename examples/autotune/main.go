// Auto-tuning example: the paper's future-work extensions in action —
// automatic error-bound optimization (replacing the empirical 4e-3
// setting) and the error-feedback alternative to bound tightening.
//
// Run with:
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"compso"
)

func main() {
	// A warmup-iteration gradient sample from the BERT-large profile.
	profile, err := compso.ModelByName("BERT-large")
	if err != nil {
		log.Fatal(err)
	}
	rng := compso.NewRand(3)
	sample := make([]float32, 1<<20)
	for i := range sample {
		switch {
		case rng.Float64() < 0.85:
			sample[i] = float32(rng.NormFloat64() * 0.0012)
		case rng.Float64() < 0.9:
			sample[i] = float32(rng.NormFloat64() * 0.1)
		default:
			sample[i] = float32(rng.NormFloat64() * 0.032)
		}
	}
	fmt.Printf("tuning bounds on a %s-scale gradient sample (%d values)\n\n",
		profile.Name, len(sample))

	// Sweep fidelity targets: each row is "the largest bound that keeps
	// the gradient direction this faithful".
	fmt.Printf("%-12s %-12s %-10s %-10s\n", "target cos", "tuned eb", "achieved", "ratio")
	for _, target := range []float64{0.999, 0.99, 0.97, 0.95} {
		res, err := compso.TuneBounds(sample, target, 1e-5, 1e-1, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.3f %-12.2e %-10.4f %-10.1f\n",
			target, res.ErrorBound, res.Cosine, res.Ratio)
	}

	// Error feedback: the residual-carrying alternative. Compare how the
	// accumulated gradient drifts with a biased compressor, with and
	// without EF.
	fmt.Println("\nerror feedback vs plain compression (biased RN compressor, 50 steps):")
	plain, err := compso.NewCompressorFor("sz", compso.WithRelErrorBound(5e-2))
	if err != nil {
		log.Fatal(err)
	}
	withEF, err := compso.NewCompressorFor("sz",
		compso.WithRelErrorBound(5e-2), compso.WithErrorFeedback())
	if err != nil {
		log.Fatal(err)
	}
	efWrap := withEF.(*compso.ErrorFeedback)
	n := 20000
	sumTrue := make([]float64, n)
	sumPlain := make([]float64, n)
	sumEF := make([]float64, n)
	grad := make([]float32, n)
	for step := 0; step < 50; step++ {
		for i := range grad {
			grad[i] = float32(rng.NormFloat64() * 0.02)
		}
		for i, v := range grad {
			sumTrue[i] += float64(v)
		}
		apply := func(c compso.Compressor, sum []float64) {
			blob, err := c.Compress(grad)
			if err != nil {
				log.Fatal(err)
			}
			out, err := c.Decompress(blob)
			if err != nil {
				log.Fatal(err)
			}
			for i, v := range out {
				sum[i] += float64(v)
			}
		}
		apply(plain, sumPlain)
		apply(withEF, sumEF)
	}
	drift := func(sum []float64) float64 {
		var s float64
		for i := range sum {
			d := sum[i] - sumTrue[i]
			s += d * d
		}
		return s
	}
	fmt.Printf("accumulated drift without EF: %.4f\n", drift(sumPlain))
	fmt.Printf("accumulated drift with EF:    %.4f\n", drift(sumEF))
	fmt.Printf("EF residual in flight:        %.4f (the memory COMPSO avoids carrying)\n",
		efWrap.ResidualNorm())
}
