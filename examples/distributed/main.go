// Distributed training example: a CNN proxy trained with distributed K-FAC
// and COMPSO-compressed preconditioned-gradient all-gathers on a simulated
// 8-GPU cluster, compared against the uncompressed run.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"compso"
)

func main() {
	const iters = 80
	schedule := &compso.StepLR{BaseLR: 0.03, Drops: []int{iters * 2 / 3}, Gamma: 0.1}
	platform, err := compso.PlatformByName("slingshot10")
	if err != nil {
		log.Fatal(err)
	}

	base := compso.TrainConfig{
		BuildTask: func(rng *rand.Rand) *compso.ProxyTask {
			return compso.ProxyResNet(rng, 7)
		},
		Workers:      8,
		Platform:     platform,
		Iters:        iters,
		Seed:         123,
		Schedule:     schedule,
		UseKFAC:      true,
		KFAC:         compso.DefaultKFAC(),
		AggregationM: 4,
	}

	fmt.Println("training uncompressed distributed K-FAC ...")
	plain, err := compso.Train(base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training K-FAC + COMPSO (adaptive bounds, observed) ...")
	obs := compso.NewObserver()
	compressed := base
	compressed.Obs = obs
	compressed.NewCompressor = func(rank int) compso.Compressor {
		return compso.New(compso.WithSeed(int64(rank) + 1000))
	}
	compressed.Controller = compso.NewController(schedule, iters)
	withCompso, err := compso.Train(compressed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %-12s %-12s %-10s\n", "run", "final loss", "accuracy", "allgather-s")
	fmt.Printf("%-22s %-12.4f %-12s %-10.4f\n", "KFAC (no compression)",
		plain.FinalLoss, pct(plain.FinalAcc), plain.CommSeconds["kfac-allgather"])
	fmt.Printf("%-22s %-12.4f %-12s %-10.4f\n", "KFAC + COMPSO",
		withCompso.FinalLoss, pct(withCompso.FinalAcc), withCompso.CommSeconds["kfac-allgather"])
	fmt.Printf("\nCOMPSO mean compression ratio: %.1fx\n", withCompso.MeanCR)
	fmt.Printf("simulated all-gather time reduction: %.1fx\n",
		plain.CommSeconds["kfac-allgather"]/withCompso.CommSeconds["kfac-allgather"])

	// The observer saw the whole compressed run: simulated seconds per
	// span category, summed across the 8 workers.
	fmt.Println("\nobserved simulated seconds by span category (all workers):")
	snap := obs.Snapshot()
	for cat, sec := range snap.SpanSeconds() {
		fmt.Printf("  %-14s %.4fs\n", cat, sec)
	}
}

func pct(acc float64) string {
	if acc < 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", 100*acc)
}
