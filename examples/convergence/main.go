// Convergence example: side-by-side validation-loss curves for SGD, plain
// distributed K-FAC, and K-FAC + COMPSO on the same task — the paper's
// central claim (second-order converges in fewer iterations; COMPSO does
// not change that) in one run.
//
// Run with:
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"compso"
)

func main() {
	const iters = 100
	schedule := &compso.StepLR{BaseLR: 0.03, Drops: []int{iters * 2 / 3}, Gamma: 0.1}
	platform, err := compso.PlatformByName("slingshot10")
	if err != nil {
		log.Fatal(err)
	}
	base := compso.TrainConfig{
		BuildTask: func(rng *rand.Rand) *compso.ProxyTask {
			return compso.ProxyResNet(rng, 11)
		},
		Workers:      4,
		Platform:     platform,
		Iters:        iters,
		Seed:         77,
		Schedule:     schedule,
		KFAC:         compso.DefaultKFAC(),
		AggregationM: 4,
		EvalEvery:    10,
	}

	runs := []struct {
		name  string
		mut   func(*compso.TrainConfig)
		score *compso.TrainResult
	}{
		{name: "SGD", mut: func(c *compso.TrainConfig) { c.UseKFAC = false }},
		{name: "KFAC", mut: func(c *compso.TrainConfig) { c.UseKFAC = true }},
		{name: "KFAC+COMPSO", mut: func(c *compso.TrainConfig) {
			c.UseKFAC = true
			c.NewCompressor = func(rank int) compso.Compressor {
				return compso.New(compso.WithSeed(int64(rank) + 50))
			}
			c.Controller = compso.NewController(schedule, iters)
		}},
	}

	for i := range runs {
		cfg := base
		runs[i].mut(&cfg)
		res, err := compso.Train(cfg)
		if err != nil {
			log.Fatal(err)
		}
		runs[i].score = res
	}

	fmt.Printf("%-6s", "iter")
	for _, r := range runs {
		fmt.Printf("  %-14s", r.name)
	}
	fmt.Println()
	for i, it := range runs[0].score.Iterations {
		fmt.Printf("%-6d", it)
		for _, r := range runs {
			fmt.Printf("  %-14.4f", r.score.Losses[i])
		}
		fmt.Println()
	}
	fmt.Println()
	for _, r := range runs {
		cr := ""
		if r.score.MeanCR > 0 {
			cr = fmt.Sprintf("  (mean CR %.1fx)", r.score.MeanCR)
		}
		fmt.Printf("%-14s final accuracy %.2f%%%s\n", r.name, 100*r.score.FinalAcc, cr)
	}
}
