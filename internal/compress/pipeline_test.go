package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
)

func newChunked(chunkSize, workers int) *Chunked {
	return &Chunked{
		New:       func(seed int64) Compressor { return NewQSGD(8, seed) },
		ChunkSize: chunkSize,
		Workers:   workers,
		Seed:      77,
	}
}

// TestChunkedRejectsTrailingGarbage pins the frame-consumption invariant:
// a valid blob with bytes appended after the last chunk must fail, not
// silently decode the prefix.
func TestChunkedRejectsTrailingGarbage(t *testing.T) {
	c := newChunked(64, 2)
	blob, err := c.Compress(kfacData(200, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]byte{{0}, {1, 2, 3, 4}} {
		bad := append(append([]byte(nil), blob...), extra...)
		if _, err := c.Decompress(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trailing %d bytes: got err %v, want ErrCorrupt", len(extra), err)
		}
	}
}

// TestChunkedRejectsBadChunkCount pins the header invariant nChunks ==
// ceil(total/ChunkSize). The old code only required nChunks <= total+1, so
// a header claiming 200 values in 3 chunks of size 64 (want 4) decoded as
// long as the chunks happened to sum right — an inconsistent frame.
func TestChunkedRejectsBadChunkCount(t *testing.T) {
	c := newChunked(64, 2)
	// Build a frame claiming 3 chunks of size 64 for 200 values.
	inner := NewQSGD(8, 77)
	var parts [][]byte
	for i := 0; i < 3; i++ {
		p, err := inner.Compress(kfacData(64, int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	blob := binary.AppendUvarint(nil, 200) // total
	blob = binary.AppendUvarint(blob, 64)  // chunk size
	blob = binary.AppendUvarint(blob, 3)   // nChunks: want ceil(200/64)=4
	for _, p := range parts {
		blob = binary.AppendUvarint(blob, uint64(len(p)))
	}
	for _, p := range parts {
		blob = append(blob, p...)
	}
	if _, err := c.Decompress(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("inconsistent chunk count: got err %v, want ErrCorrupt", err)
	}
}

// TestChunkedRejectsHugeSizeEntry pins the size-table overflow fix: a
// varint size near 2^64 used to be cast straight to int, overflowing
// negative and panicking (or worse) in the slicing below. It must instead
// return ErrCorrupt.
func TestChunkedRejectsHugeSizeEntry(t *testing.T) {
	c := newChunked(64, 1)
	blob := binary.AppendUvarint(nil, 64) // total
	blob = binary.AppendUvarint(blob, 64) // chunk size
	blob = binary.AppendUvarint(blob, 1)  // nChunks
	blob = binary.AppendUvarint(blob, 1<<63)
	blob = append(blob, 0xde, 0xad)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Decompress panicked: %v", r)
		}
	}()
	if _, err := c.Decompress(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge size entry: got err %v, want ErrCorrupt", err)
	}
}

// TestChunkedRejectsForeignChunkSize pins the self-describing header: a
// frame produced with one chunk geometry must not decode under another,
// since per-chunk seeds and boundaries would silently mismatch.
func TestChunkedRejectsForeignChunkSize(t *testing.T) {
	blob, err := newChunked(64, 1).Compress(kfacData(200, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newChunked(128, 1).Decompress(blob); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("foreign chunk size: got err %v, want ErrCorrupt", err)
	}
}

// TestChunkedBoundarySizes checks Chunked against the inner compressor's
// own round trip at the chunking edge cases: empty, below one chunk, an
// exact multiple, and one element past a boundary.
func TestChunkedBoundarySizes(t *testing.T) {
	const cs = 64
	for _, n := range []int{0, 1, cs - 1, cs, cs + 1, 3 * cs, 3*cs + 1} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			c := newChunked(cs, 3)
			src := kfacData(n, int64(n)+5)
			blob, err := c.Compress(src)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Decompress(blob)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("decoded %d values, want %d", len(got), n)
			}
			// Equivalence: each chunk must match the inner compressor run
			// standalone with the same per-chunk seed.
			for lo := 0; lo < n; lo += cs {
				hi := min(lo+cs, n)
				inner := NewQSGD(8, c.Seed+int64(lo/cs))
				ib, err := inner.Compress(src[lo:hi])
				if err != nil {
					t.Fatal(err)
				}
				want, err := NewQSGD(8, c.Seed+int64(lo/cs)).Decompress(ib)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[lo+i] != want[i] {
						t.Fatalf("value %d: chunked %v, inner %v", lo+i, got[lo+i], want[i])
					}
				}
			}
		})
	}
}

// TestChunkedParallelDeterminism runs the same compression with Workers>1
// repeatedly (under -race in CI) and requires bit-identical output: chunk
// scheduling must never leak into the blob.
func TestChunkedParallelDeterminism(t *testing.T) {
	src := kfacData(10_000, 9)
	c := newChunked(257, 8)
	ref, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	refOut, err := c.Decompress(ref)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		blob, err := newChunked(257, 8).Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(ref) {
			t.Fatalf("trial %d: blob differs from reference", trial)
		}
		out, err := newChunked(257, 8).Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i := range refOut {
			if out[i] != refOut[i] {
				t.Fatalf("trial %d: value %d differs", trial, i)
			}
		}
	}
}

// TestTorchQSGDBitsValidation pins the bit-width guard at both edges and
// checks the extremes of the valid range still round-trip.
func TestTorchQSGDBitsValidation(t *testing.T) {
	src := kfacData(128, 3)
	for _, bits := range []int{-1, 0, 1, 33, 64} {
		c := NewTorchQSGD(bits, 1)
		if _, err := c.Compress(src); err == nil {
			t.Fatalf("Bits=%d: Compress accepted an invalid width", bits)
		}
	}
	for _, bits := range []int{2, 32} {
		c := NewTorchQSGD(bits, 1)
		blob, err := c.Compress(src)
		if err != nil {
			t.Fatalf("Bits=%d: %v", bits, err)
		}
		out, err := c.Decompress(blob)
		if err != nil {
			t.Fatalf("Bits=%d: decompress: %v", bits, err)
		}
		if len(out) != len(src) {
			t.Fatalf("Bits=%d: got %d values, want %d", bits, len(out), len(src))
		}
	}
}
