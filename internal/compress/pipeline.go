package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"

	"compso/internal/pool"
	"compso/internal/quant"
	"compso/internal/xrand"
)

// This file holds the pipeline-shape variants used by the GPU performance
// study (Figure 8): a deliberately multi-pass "framework-style" QSGD that
// reproduces the kernel-per-op behaviour the paper measures for the PyTorch
// baselines, and a Chunked wrapper that mirrors the thread-block data
// parallelism of the fused CUDA implementations.

// TorchQSGD is QSGD implemented the way a tensor framework executes it: one
// full pass and one temporary buffer per conceptual kernel (abs, max,
// divide, round, clamp, zig-zag, encode). The arithmetic is identical to
// QSGD; only the memory traffic differs — which is exactly the paper's
// explanation for the PyTorch baselines' low throughput in Figure 8
// ("PyTorch launches multiple kernels for CUDA tensor operations").
type TorchQSGD struct {
	Bits int
	rng  *rand.Rand
}

// NewTorchQSGD returns the multi-pass QSGD variant.
func NewTorchQSGD(bitWidth int, seed int64) *TorchQSGD {
	return &TorchQSGD{Bits: bitWidth, rng: xrand.NewSeeded(seed)}
}

// Name implements Compressor.
func (t *TorchQSGD) Name() string { return fmt.Sprintf("QSGD-%dbit (torch)", t.Bits) }

// Compress implements Compressor. Each stage still materializes its result
// in its own full-length buffer — the kernel-per-op dispatch pattern under
// measurement must keep its memory traffic — but the buffers now come from
// the arena, mirroring how a framework's caching allocator serves each
// kernel's temporary without hitting the system allocator.
func (t *TorchQSGD) Compress(src []float32) ([]byte, error) {
	// Bits parameterizes a shift below: an out-of-range width silently
	// produced a garbage quantization grid instead of failing. 2..32 bits
	// spans the representable signed level ranges.
	if t.Bits < 2 || t.Bits > 32 {
		return nil, fmt.Errorf("compress: TorchQSGD bit width %d out of range [2,32]", t.Bits)
	}
	n := len(src)
	// Kernel 1: abs.
	absV := pool.F64(n)
	for i, v := range src {
		absV[i] = math.Abs(float64(v))
	}
	// Kernel 2: max reduction.
	var maxAbs float64
	for _, v := range absV {
		if v > maxAbs {
			maxAbs = v
		}
	}
	pool.PutF64(absV)
	maxLevel := float64(int64(1)<<(t.Bits-1) - 1)
	scale := 0.0
	if maxAbs > 0 {
		scale = maxAbs / maxLevel
	}
	// Kernel 3: divide.
	scaled := pool.F64(n)
	if scale > 0 {
		for i, v := range src {
			scaled[i] = float64(v) / scale
		}
	} else {
		clear(scaled)
	}
	// Kernel 4: stochastic round.
	rounded := pool.F64(n)
	for i, x := range scaled {
		fl := math.Floor(x)
		if t.rng.Float64() < x-fl {
			rounded[i] = fl + 1
		} else {
			rounded[i] = fl
		}
	}
	pool.PutF64(scaled)
	// Kernel 5: clamp.
	clamped := pool.F64(n)
	for i, x := range rounded {
		clamped[i] = math.Max(-maxLevel, math.Min(maxLevel, x))
	}
	pool.PutF64(rounded)
	// Kernel 6: cast to levels (zig-zagged, the packer's symbol domain).
	zigs := pool.U32(n)
	var maxZig uint32
	for i, x := range clamped {
		z := quant.ZigZag(int32(x))
		zigs[i] = z
		if z > maxZig {
			maxZig = z
		}
	}
	pool.PutF64(clamped)
	// Kernel 7: pack/encode (host-side in frameworks).
	packed := quant.PackZigs(pool.Bytes(n*t.Bits/8+16), zigs, maxZig)
	pool.PutU32(zigs)
	out := make([]byte, 0, binary.MaxVarintLen64+9+len(packed))
	out = putHeader(out, magicQSGD, n)
	out = putFloat64(out, scale)
	out = append(out, packed...)
	pool.PutBytes(packed)
	return out, nil
}

// Decompress implements Compressor.
func (t *TorchQSGD) Decompress(data []byte) ([]float32, error) {
	n, rest, err := getHeader(data, magicQSGD, "TorchQSGD")
	if err != nil {
		return nil, err
	}
	scale, rest, err := getFloat64(rest, "TorchQSGD")
	if err != nil {
		return nil, err
	}
	levels, err := quant.UnpackCodes(rest)
	if err != nil {
		return nil, fmt.Errorf("%w: TorchQSGD: %v", ErrCorrupt, err)
	}
	if len(levels) != n {
		return nil, fmt.Errorf("%w: TorchQSGD: %d levels for %d values", ErrCorrupt, len(levels), n)
	}
	return quant.DequantizeFixed(levels, scale), nil
}

// Chunked runs an inner compressor over fixed-size blocks of the input in
// parallel, mirroring the thread-block decomposition of the fused CUDA
// kernels (§4.5): each block computes its own extrema locally (the
// block-reduction + warp-shuffle optimization) and compresses
// independently, so the whole pipeline is a single parallel pass.
type Chunked struct {
	// New creates the per-worker inner compressor; it must produce
	// decompressors compatible with the compressed chunks (same settings).
	New func(seed int64) Compressor
	// ChunkSize is the number of float32 elements per block.
	ChunkSize int
	// Workers bounds parallelism (defaults to GOMAXPROCS).
	Workers int
	// Seed namespaces the per-chunk RNG seeds.
	Seed int64
}

// Name implements Compressor.
func (c *Chunked) Name() string { return c.New(0).Name() + " (chunked)" }

func (c *Chunked) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return pool.Workers()
}

// Compress implements Compressor.
func (c *Chunked) Compress(src []float32) ([]byte, error) {
	if c.ChunkSize <= 0 {
		return nil, fmt.Errorf("compress: Chunked chunk size %d", c.ChunkSize)
	}
	nChunks := (len(src) + c.ChunkSize - 1) / c.ChunkSize
	if nChunks == 0 {
		nChunks = 1
	}
	// Chunks fan out over the process-wide bounded worker pool instead of
	// one goroutine per chunk; results are index-addressed, so the schedule
	// cannot affect the output bytes.
	parts := make([][]byte, nChunks)
	errs := make([]error, nChunks)
	pool.ParallelFor(nChunks, c.workers(), func(i int) {
		lo := i * c.ChunkSize
		hi := min(lo+c.ChunkSize, len(src))
		comp := c.New(c.Seed + int64(i))
		parts[i], errs[i] = comp.Compress(src[lo:hi])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := binary.AppendUvarint(nil, uint64(len(src)))
	out = binary.AppendUvarint(out, uint64(c.ChunkSize))
	out = binary.AppendUvarint(out, uint64(nChunks))
	for _, p := range parts {
		out = binary.AppendUvarint(out, uint64(len(p)))
	}
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Decompress implements Compressor. The header self-describes the chunk
// geometry (total, chunk size, chunk count) and every field is checked
// against the decompressor's own configuration and the real invariant
// nChunks == ceil(total/ChunkSize) — a corrupted or truncated buffer must
// fail loudly, never mis-slice or over-allocate.
func (c *Chunked) Decompress(data []byte) ([]float32, error) {
	if c.ChunkSize <= 0 {
		return nil, fmt.Errorf("compress: Chunked chunk size %d", c.ChunkSize)
	}
	total, used := binary.Uvarint(data)
	if used <= 0 || total > 1<<31 {
		return nil, fmt.Errorf("%w: Chunked: bad total", ErrCorrupt)
	}
	data = data[used:]
	chunkSize, used := binary.Uvarint(data)
	if used <= 0 || chunkSize != uint64(c.ChunkSize) {
		return nil, fmt.Errorf("%w: Chunked: header chunk size %d, configured %d", ErrCorrupt, chunkSize, c.ChunkSize)
	}
	data = data[used:]
	nChunks, used := binary.Uvarint(data)
	if used <= 0 {
		return nil, fmt.Errorf("%w: Chunked: bad chunk count", ErrCorrupt)
	}
	// The chunk count is fully determined by the header: ceil(total/
	// ChunkSize), with the empty input carried as one empty chunk. The old
	// nChunks <= total+1 bound admitted wildly inconsistent headers.
	want := (total + chunkSize - 1) / chunkSize
	if want == 0 {
		want = 1
	}
	if nChunks != want {
		return nil, fmt.Errorf("%w: Chunked: %d chunks for %d values of chunk size %d, want %d",
			ErrCorrupt, nChunks, total, chunkSize, want)
	}
	data = data[used:]
	sizes := make([]int, nChunks)
	for i := range sizes {
		s, used := binary.Uvarint(data)
		// Bound each entry in uint64 space before the int cast: a huge
		// varint would overflow int and slip past signed comparisons.
		if used <= 0 || s > uint64(len(data)) {
			return nil, fmt.Errorf("%w: Chunked: bad size table entry %d", ErrCorrupt, i)
		}
		data = data[used:]
		sizes[i] = int(s)
	}
	parts := make([][]byte, nChunks)
	payloadBytes := uint64(0)
	for i, s := range sizes {
		if s > len(data) {
			return nil, fmt.Errorf("%w: Chunked: chunk %d overruns", ErrCorrupt, i)
		}
		parts[i] = data[:s]
		data = data[s:]
		payloadBytes += uint64(s)
	}
	// Every byte of the buffer must be spoken for: trailing garbage after
	// the last chunk means the frame is not what the header claims.
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: Chunked: %d trailing bytes", ErrCorrupt, len(data))
	}
	// Cap the allocation hint by what the payload could plausibly decode
	// to; the final length check below still enforces the exact total.
	hint := total
	if bound := (payloadBytes + 1) * 64; hint > bound {
		hint = bound
	}
	out := make([]float32, 0, hint)
	results := make([][]float32, nChunks)
	errs := make([]error, nChunks)
	pool.ParallelFor(int(nChunks), c.workers(), func(i int) {
		comp := c.New(c.Seed + int64(i))
		results[i], errs[i] = comp.Decompress(parts[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, r := range results {
		out = append(out, r...)
	}
	if uint64(len(out)) != total {
		return nil, fmt.Errorf("%w: Chunked: decoded %d values, want %d", ErrCorrupt, len(out), total)
	}
	return out, nil
}
