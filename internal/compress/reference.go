package compress

import (
	"fmt"
	"math"

	"compso/internal/bitstream"
	"compso/internal/encoding"
	"compso/internal/filter"
	"compso/internal/quant"
)

// This file preserves the original multi-pass compressor pipelines exactly
// as they shipped before the kernel-fusion rewrite. They are the repo's
// analogue of the paper's pre-fusion GPU implementation in Figure 8's
// ablation: every stage (filter scan, quantize, zig-zag, plane split,
// encode) materializes its intermediate buffer. The fused single-pass
// implementations in compso.go/sz.go/qsgd.go must produce byte-identical
// blobs from identical state — the equivalence tests diff the two paths, and
// the perf harness reports fused-vs-reference throughput.

// ReferenceCompress is the multi-pass COMPSO compression pipeline. It uses
// (and advances) the same stochastic-rounding RNG stream as Compress, so a
// given (configuration, RNG state, input) triple must yield the same bytes
// from either entry point.
func (c *COMPSO) ReferenceCompress(src []float32) ([]byte, error) {
	if c.EBQuant <= 0 {
		return nil, fmt.Errorf("compress: COMPSO quantizer bound %g <= 0", c.EBQuant)
	}
	if c.FilterEnabled && c.EBFilter <= 0 {
		return nil, fmt.Errorf("compress: COMPSO filter bound %g <= 0", c.EBFilter)
	}
	codecID, err := c.codecID()
	if err != nil {
		return nil, err
	}

	var bitmap []byte
	kept := src
	filterFlag := byte(0)
	if c.FilterEnabled {
		bitmap, kept = filter.Apply(src, c.EBFilter)
		filterFlag = 1
	}
	c.LastFilterTotal = len(src)
	c.LastFilterKept = len(kept)
	codes := quant.QuantizeEB(kept, c.EBQuant, c.Rounding, c.rng)

	cdc := c.codec()
	encBitmap := cdc.Encode(bitmap)

	// Options byte: bit 0 = bit-packed codes, bits 1-2 = rounding mode.
	options := byte(c.Rounding) << 1
	if c.BitPacked {
		options |= 1
	}

	out := putHeader(nil, magicCOMPSO, len(src))
	out = append(out, filterFlag, codecID, options)
	out = putFloat64(out, c.EBFilter)
	out = putFloat64(out, c.EBQuant)
	out = putHeader(out, 0xBB, len(kept))      // kept-value count
	out = putHeader(out, 0xBB, len(encBitmap)) // bitmap section length
	out = append(out, encBitmap...)
	if c.BitPacked {
		// §4.3 ablation: dense bit packing in a single plane-like section.
		enc := cdc.Encode(quant.PackCodes(codes))
		out = append(out, byte(1))
		out = putHeader(out, 0xBB, len(enc))
		out = append(out, enc...)
		c.observe(len(src), len(out))
		return out, nil
	}
	// Byte-plane layout: entropy coders get byte-aligned symbol streams.
	planes := quant.PlaneSplit(codes)
	out = append(out, byte(len(planes)))
	for _, plane := range planes {
		enc := cdc.Encode(plane)
		out = putHeader(out, 0xBB, len(enc))
		out = append(out, enc...)
	}
	c.observe(len(src), len(out))
	return out, nil
}

// ReferenceDecompress is the multi-pass COMPSO decompression pipeline:
// decode sections, join planes (or unpack the dense stream), dequantize,
// then restore the filtered zeros — each stage through its own buffer.
func (c *COMPSO) ReferenceDecompress(data []byte) ([]float32, error) {
	n, rest, err := getHeader(data, magicCOMPSO, "COMPSO")
	if err != nil {
		return nil, err
	}
	if len(rest) < 3 {
		return nil, fmt.Errorf("%w: COMPSO: truncated flags", ErrCorrupt)
	}
	filterFlag, codecID, options := rest[0], rest[1], rest[2]
	rest = rest[3:]
	bitPacked := options&1 != 0
	rounding := quant.Mode(options >> 1)
	if rounding > quant.P05 {
		return nil, fmt.Errorf("%w: COMPSO: rounding mode %d", ErrCorrupt, rounding)
	}
	_, rest, err = getFloat64(rest, "COMPSO ebf")
	if err != nil {
		return nil, err
	}
	ebq, rest, err := getFloat64(rest, "COMPSO ebq")
	if err != nil {
		return nil, err
	}
	if ebq <= 0 {
		return nil, fmt.Errorf("%w: COMPSO: quantizer bound %g", ErrCorrupt, ebq)
	}
	names := encoding.Names()
	if int(codecID) >= len(names) {
		return nil, fmt.Errorf("%w: COMPSO: codec id %d", ErrCorrupt, codecID)
	}
	cdc, err := encoding.ByName(names[codecID])
	if err != nil {
		return nil, err
	}
	keptCount, rest, err := getHeader(rest, 0xBB, "COMPSO kept count")
	if err != nil {
		return nil, err
	}
	if keptCount > n {
		return nil, fmt.Errorf("%w: COMPSO: kept count %d > %d", ErrCorrupt, keptCount, n)
	}
	bitmapLen, rest, err := getHeader(rest, 0xBB, "COMPSO bitmap section")
	if err != nil {
		return nil, err
	}
	if bitmapLen > len(rest) {
		return nil, fmt.Errorf("%w: COMPSO: bitmap section of %d overruns %d", ErrCorrupt, bitmapLen, len(rest))
	}
	var bitmap []byte
	if filterFlag != 0 {
		bitmap, err = cdc.Decode(rest[:bitmapLen])
		if err != nil {
			return nil, fmt.Errorf("%w: COMPSO bitmap: %v", ErrCorrupt, err)
		}
	}
	rest = rest[bitmapLen:]
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: COMPSO: truncated plane count", ErrCorrupt)
	}
	nPlanes := int(rest[0])
	rest = rest[1:]
	if nPlanes > 4 {
		return nil, fmt.Errorf("%w: COMPSO: %d planes", ErrCorrupt, nPlanes)
	}
	var codes []int32
	if bitPacked {
		if nPlanes != 1 {
			return nil, fmt.Errorf("%w: COMPSO: bit-packed stream with %d sections", ErrCorrupt, nPlanes)
		}
		secLen, after, err := getHeader(rest, 0xBB, "COMPSO packed section")
		if err != nil {
			return nil, err
		}
		if secLen > len(after) {
			return nil, fmt.Errorf("%w: COMPSO: packed section overruns", ErrCorrupt)
		}
		packed, err := cdc.Decode(after[:secLen])
		if err != nil {
			return nil, fmt.Errorf("%w: COMPSO packed: %v", ErrCorrupt, err)
		}
		codes, err = quant.UnpackCodes(packed)
		if err != nil {
			return nil, fmt.Errorf("%w: COMPSO: %v", ErrCorrupt, err)
		}
		if len(codes) != keptCount {
			return nil, fmt.Errorf("%w: COMPSO: %d codes for %d kept", ErrCorrupt, len(codes), keptCount)
		}
	} else {
		planes := make([][]byte, nPlanes)
		for p := range planes {
			planeLen, after, err := getHeader(rest, 0xBB, "COMPSO plane")
			if err != nil {
				return nil, err
			}
			if planeLen > len(after) {
				return nil, fmt.Errorf("%w: COMPSO: plane %d overruns", ErrCorrupt, p)
			}
			planes[p], err = cdc.Decode(after[:planeLen])
			if err != nil {
				return nil, fmt.Errorf("%w: COMPSO plane %d: %v", ErrCorrupt, p, err)
			}
			rest = after[planeLen:]
		}
		codes, err = quant.PlaneJoin(planes, keptCount)
		if err != nil {
			return nil, fmt.Errorf("%w: COMPSO: %v", ErrCorrupt, err)
		}
	}
	kept := quant.DequantizeEB(codes, ebq, rounding)
	if filterFlag == 0 {
		if len(kept) != n {
			return nil, fmt.Errorf("%w: COMPSO: %d values for %d elements", ErrCorrupt, len(kept), n)
		}
		return kept, nil
	}
	out, err := filter.Restore(bitmap, n, kept)
	if err != nil {
		return nil, fmt.Errorf("%w: COMPSO: %v", ErrCorrupt, err)
	}
	return out, nil
}

// ReferenceCompress is the multi-pass SZ pipeline (predict, quantize, plane
// split, Huffman), materializing the full code vector and every plane.
func (s *SZ) ReferenceCompress(src []float32) ([]byte, error) {
	if s.RelErrorBound <= 0 {
		return nil, fmt.Errorf("compress: SZ error bound %g <= 0", s.RelErrorBound)
	}
	var minV, maxV float64
	for i, v := range src {
		f := float64(v)
		if i == 0 || f < minV {
			minV = f
		}
		if i == 0 || f > maxV {
			maxV = f
		}
	}
	ebAbs := s.RelErrorBound * (maxV - minV)
	if ebAbs == 0 {
		ebAbs = s.RelErrorBound // constant input: any tiny bound works
	}
	out := putHeader(nil, magicSZ, len(src))
	out = putFloat64(out, ebAbs)

	codes := make([]int32, len(src))
	prev := 0.0
	bin := 2 * ebAbs
	for i, v := range src {
		residual := float64(v) - prev
		c := int32(math.Round(residual / bin))
		codes[i] = c
		prev += float64(c) * bin
	}
	planes := quant.PlaneSplit(codes)
	out = append(out, byte(len(planes)))
	for _, plane := range planes {
		enc := encoding.Huffman{}.Encode(plane)
		out = putHeader(out, 0xBB, len(enc))
		out = append(out, enc...)
	}
	return out, nil
}

// ReferenceCompress is the multi-pass QSGD pipeline: materialize the level
// vector, then gamma-code it. It advances the same RNG stream as Compress.
func (q *QSGD) ReferenceCompress(src []float32) ([]byte, error) {
	levels, scale := quant.QuantizeFixed(src, q.Bits, quant.SR, q.rng)
	out := putHeader(nil, magicQSGD, len(src))
	out = putFloat64(out, scale)
	w := bitstream.NewWriter(len(src) * q.Bits / 8)
	for _, l := range levels {
		encoding.EliasGammaEncode(w, uint64(quant.ZigZag(l))+1)
	}
	return append(out, w.Bytes()...), nil
}
