package compress

import (
	"fmt"
	"math/rand/v2"

	"compso/internal/bitstream"
	"compso/internal/encoding"
	"compso/internal/quant"
	"compso/internal/xrand"
)

// QSGD implements the QSGD baseline [Alistarh et al., NeurIPS'17]:
// max-normalized fixed-bit quantization with stochastic rounding (Eq. 3–4)
// followed by Elias-gamma coding of the zig-zagged levels. The paper uses
// the 4-bit and 8-bit variants; 8-bit preserves K-FAC accuracy but caps the
// compression ratio well below COMPSO's (Figure 3).
type QSGD struct {
	// Bits is the quantization width (levels span ±(2^(Bits−1)−1)).
	Bits int
	rng  *rand.Rand
}

// NewQSGD returns a QSGD compressor with the given bit width and RNG seed
// for stochastic rounding.
func NewQSGD(bitWidth int, seed int64) *QSGD {
	return &QSGD{Bits: bitWidth, rng: xrand.NewSeeded(seed)}
}

// Name implements Compressor.
func (q *QSGD) Name() string { return fmt.Sprintf("QSGD-%dbit", q.Bits) }

// Compress implements Compressor.
func (q *QSGD) Compress(src []float32) ([]byte, error) {
	levels, scale := quant.QuantizeFixed(src, q.Bits, quant.SR, q.rng)
	out := putHeader(nil, magicQSGD, len(src))
	out = putFloat64(out, scale)
	w := bitstream.NewWriter(len(src) * q.Bits / 8)
	for _, l := range levels {
		// Gamma codes require values >= 1; zig-zag+1 keeps zeros cheap
		// (a single bit), which dominates quantized gradients.
		encoding.EliasGammaEncode(w, uint64(quant.ZigZag(l))+1)
	}
	return append(out, w.Bytes()...), nil
}

// Decompress implements Compressor.
func (q *QSGD) Decompress(data []byte) ([]float32, error) {
	n, rest, err := getHeader(data, magicQSGD, "QSGD")
	if err != nil {
		return nil, err
	}
	scale, rest, err := getFloat64(rest, "QSGD")
	if err != nil {
		return nil, err
	}
	r := bitstream.NewReader(rest)
	levels := make([]int32, n)
	for i := range levels {
		v, err := encoding.EliasGammaDecode(r)
		if err != nil {
			return nil, fmt.Errorf("%w: QSGD: level %d: %v", ErrCorrupt, i, err)
		}
		if v-1 > 1<<31 {
			return nil, fmt.Errorf("%w: QSGD: level %d out of range", ErrCorrupt, i)
		}
		levels[i] = quant.UnZigZag(uint32(v - 1))
	}
	return quant.DequantizeFixed(levels, scale), nil
}
