package compress

import (
	"fmt"
	"math"
	"math/rand/v2"

	"compso/internal/bitstream"
	"compso/internal/encoding"
	"compso/internal/pool"
	"compso/internal/quant"
	"compso/internal/xrand"
)

// QSGD implements the QSGD baseline [Alistarh et al., NeurIPS'17]:
// max-normalized fixed-bit quantization with stochastic rounding (Eq. 3–4)
// followed by Elias-gamma coding of the zig-zagged levels. The paper uses
// the 4-bit and 8-bit variants; 8-bit preserves K-FAC accuracy but caps the
// compression ratio well below COMPSO's (Figure 3).
type QSGD struct {
	// Bits is the quantization width (levels span ±(2^(Bits−1)−1)).
	Bits int
	rng  *rand.Rand
}

// NewQSGD returns a QSGD compressor with the given bit width and RNG seed
// for stochastic rounding.
func NewQSGD(bitWidth int, seed int64) *QSGD {
	return &QSGD{Bits: bitWidth, rng: xrand.NewSeeded(seed)}
}

// Name implements Compressor.
func (q *QSGD) Name() string { return fmt.Sprintf("QSGD-%dbit", q.Bits) }

// Compress implements Compressor. Fused rewrite: after the max-magnitude
// scan that Eq. 3's normalization requires, one kernel quantizes (with the
// same stochastic-rounding draws QuantizeFixed makes), zig-zags and
// gamma-codes each element straight into a pooled bit stream — no []int32
// level vector. Byte-identical to ReferenceCompress on the same RNG state.
func (q *QSGD) Compress(src []float32) ([]byte, error) {
	if q.Bits < 2 || q.Bits > 16 {
		panic(fmt.Sprintf("quant: QuantizeFixed bits %d outside [2,16]", q.Bits))
	}
	n := len(src)
	scale := 0.0
	maxLevel := int64(int32(1)<<(q.Bits-1) - 1)
	if maxAbs := quant.MaxAbs(src); maxAbs != 0 {
		scale = maxAbs / float64(maxLevel)
	}
	var w bitstream.Writer
	w.ResetBuf(pool.Bytes(n*q.Bits/8 + 16))
	if scale == 0 {
		// Constant-zero input: every level is 0, no RNG draws (QuantizeFixed
		// returns early before rounding).
		for i := 0; i < n; i++ {
			encoding.EliasGammaEncode(&w, 1) // ZigZag(0)+1
		}
	} else {
		for _, v := range src {
			// Stochastic rounding, exactly quant.round's SR arithmetic.
			x := float64(v) / scale
			floor := math.Floor(x)
			l := int64(floor)
			if q.rng.Float64() < x-floor {
				l++
			}
			if l > maxLevel {
				l = maxLevel
			}
			if l < -maxLevel {
				l = -maxLevel
			}
			// Gamma codes require values >= 1; zig-zag+1 keeps zeros cheap
			// (a single bit), which dominates quantized gradients.
			encoding.EliasGammaEncode(&w, uint64(quant.ZigZag(int32(l)))+1)
		}
	}
	stream := w.Bytes()
	out := make([]byte, 0, uvarintLen(uint64(n))+9+len(stream))
	out = putHeader(out, magicQSGD, n)
	out = putFloat64(out, scale)
	out = append(out, stream...)
	pool.PutBytes(w.Buf())
	return out, nil
}

// Decompress implements Compressor. Levels decode, un-zig-zag and rescale
// straight into the output slice.
func (q *QSGD) Decompress(data []byte) ([]float32, error) {
	n, rest, err := getHeader(data, magicQSGD, "QSGD")
	if err != nil {
		return nil, err
	}
	scale, rest, err := getFloat64(rest, "QSGD")
	if err != nil {
		return nil, err
	}
	r := bitstream.NewReader(rest)
	out := make([]float32, n)
	for i := range out {
		v, err := encoding.EliasGammaDecode(r)
		if err != nil {
			return nil, fmt.Errorf("%w: QSGD: level %d: %v", ErrCorrupt, i, err)
		}
		if v-1 > 1<<31 {
			return nil, fmt.Errorf("%w: QSGD: level %d out of range", ErrCorrupt, i)
		}
		out[i] = float32(float64(quant.UnZigZag(uint32(v-1))) * scale)
	}
	return out, nil
}
