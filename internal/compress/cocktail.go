package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"compso/internal/encoding"
	"compso/internal/quant"
	"compso/internal/xrand"
)

// CocktailSGD implements the CocktailSGD baseline [Wang et al., ICML'23]:
// top-k sparsification with random-sample threshold estimation followed by
// 8-bit stochastic-rounding quantization of the kept values. The paper runs
// it at 20% density with 8-bit quantization, a fixed ~20× compression
// ratio; COMPSO's relative-threshold filter adapts instead of always
// zeroing the same fraction (§5.2).
type CocktailSGD struct {
	// KeepFraction is the fraction of largest-magnitude values kept
	// (the paper's "20% sparsity" configuration keeps 0.20).
	KeepFraction float64
	// Bits is the quantization width for kept values (8 in the paper).
	Bits int
	// SampleSize bounds the random sample used to estimate the top-k
	// threshold, CocktailSGD's trick for avoiding a full sort.
	SampleSize int
	rng        *rand.Rand
}

// NewCocktailSGD returns a CocktailSGD compressor with the paper's
// configuration knobs.
func NewCocktailSGD(keep float64, bitWidth int, seed int64) *CocktailSGD {
	return &CocktailSGD{KeepFraction: keep, Bits: bitWidth, SampleSize: 1024, rng: xrand.NewSeeded(seed)}
}

// Name implements Compressor.
func (c *CocktailSGD) Name() string {
	return fmt.Sprintf("CocktailSGD-%d%%-%dbit", int(c.KeepFraction*100), c.Bits)
}

// Compress implements Compressor.
func (c *CocktailSGD) Compress(src []float32) ([]byte, error) {
	if c.KeepFraction <= 0 || c.KeepFraction > 1 {
		return nil, fmt.Errorf("compress: CocktailSGD keep fraction %g outside (0,1]", c.KeepFraction)
	}
	threshold := c.estimateThreshold(src)

	// Select indices above the estimated threshold, in order.
	idx := make([]int, 0, int(float64(len(src))*c.KeepFraction)+16)
	vals := make([]float32, 0, cap(idx))
	for i, v := range src {
		if math.Abs(float64(v)) >= threshold {
			idx = append(idx, i)
			vals = append(vals, v)
		}
	}

	levels, scale := quant.QuantizeFixed(vals, c.Bits, quant.SR, c.rng)

	// Kept positions as an ANS-compressed bitmap: with density p the index
	// overhead approaches the H(p) entropy bound instead of a varint per
	// index.
	bitmap := make([]byte, (len(src)+7)/8)
	for _, i := range idx {
		bitmap[i/8] |= 1 << (i % 8)
	}
	encBitmap := encoding.ANS{}.Encode(bitmap)

	out := putHeader(nil, magicCocktail, len(src))
	out = putFloat64(out, scale)
	out = binary.AppendUvarint(out, uint64(len(idx)))
	out = binary.AppendUvarint(out, uint64(len(encBitmap)))
	out = append(out, encBitmap...)
	packed := quant.PackCodes(levels)
	return append(out, packed...), nil
}

// estimateThreshold samples values to find the magnitude cutoff keeping
// approximately KeepFraction of the elements.
func (c *CocktailSGD) estimateThreshold(src []float32) float64 {
	if len(src) == 0 {
		return 0
	}
	sample := make([]float64, 0, c.SampleSize)
	if len(src) <= c.SampleSize {
		for _, v := range src {
			sample = append(sample, math.Abs(float64(v)))
		}
	} else {
		for i := 0; i < c.SampleSize; i++ {
			sample = append(sample, math.Abs(float64(src[c.rng.IntN(len(src))])))
		}
	}
	sort.Float64s(sample)
	cut := int(float64(len(sample)) * (1 - c.KeepFraction))
	if cut >= len(sample) {
		cut = len(sample) - 1
	}
	if cut < 0 {
		cut = 0
	}
	return sample[cut]
}

// Decompress implements Compressor.
func (c *CocktailSGD) Decompress(data []byte) ([]float32, error) {
	n, rest, err := getHeader(data, magicCocktail, "CocktailSGD")
	if err != nil {
		return nil, err
	}
	scale, rest, err := getFloat64(rest, "CocktailSGD")
	if err != nil {
		return nil, err
	}
	k, used := binary.Uvarint(rest)
	if used <= 0 || k > uint64(n) {
		return nil, fmt.Errorf("%w: CocktailSGD: bad kept count", ErrCorrupt)
	}
	rest = rest[used:]
	bmLen, used := binary.Uvarint(rest)
	if used <= 0 || bmLen > uint64(len(rest)-used) {
		return nil, fmt.Errorf("%w: CocktailSGD: bad bitmap length", ErrCorrupt)
	}
	rest = rest[used:]
	bitmap, err := (encoding.ANS{}).Decode(rest[:bmLen])
	if err != nil {
		return nil, fmt.Errorf("%w: CocktailSGD bitmap: %v", ErrCorrupt, err)
	}
	rest = rest[bmLen:]
	if len(bitmap) < (n+7)/8 {
		return nil, fmt.Errorf("%w: CocktailSGD: bitmap too short", ErrCorrupt)
	}
	idx := make([]int, 0, k)
	for i := 0; i < n; i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			idx = append(idx, i)
		}
	}
	if uint64(len(idx)) != k {
		return nil, fmt.Errorf("%w: CocktailSGD: bitmap has %d set bits, want %d", ErrCorrupt, len(idx), k)
	}
	levels, err := quant.UnpackCodes(rest)
	if err != nil {
		return nil, fmt.Errorf("%w: CocktailSGD: %v", ErrCorrupt, err)
	}
	if uint64(len(levels)) != k {
		return nil, fmt.Errorf("%w: CocktailSGD: %d levels for %d indices", ErrCorrupt, len(levels), k)
	}
	vals := quant.DequantizeFixed(levels, scale)
	out := make([]float32, n)
	for i, pos := range idx {
		out[pos] = vals[i]
	}
	return out, nil
}
