package compress

import (
	"fmt"
	"math"

	"compso/internal/encoding"
	"compso/internal/pool"
	"compso/internal/quant"
)

// SZ implements the cuSZ baseline algorithm the paper compares against:
// 1-D Lorenzo prediction (each value predicted by its reconstructed
// predecessor), round-to-nearest quantization of the prediction residual
// under a range-relative error bound, and Huffman coding of the packed
// quantization codes (§2.4). RN's uniform error distribution is what costs
// it accuracy on K-FAC gradients relative to the SR-based compressors
// (§4.2, Table 6b).
type SZ struct {
	// RelErrorBound is the error bound relative to the value range, e.g.
	// 4e-3 means |error| <= 4e-3·(max−min). The paper evaluates 1e-1 and
	// 4e-3.
	RelErrorBound float64
}

// NewSZ returns an SZ compressor with the given range-relative error bound.
func NewSZ(relEB float64) *SZ { return &SZ{RelErrorBound: relEB} }

// Name implements Compressor.
func (s *SZ) Name() string { return fmt.Sprintf("SZ-%.0E", s.RelErrorBound) }

// Compress implements Compressor. Fused single-pass rewrite: after the
// unavoidable range scan (the bound is range-relative), one kernel runs
// Lorenzo prediction + RN quantization + zig-zag into a pooled code vector,
// and the byte planes reuse one pooled buffer each, Huffman-appended into
// pooled scratch — byte-identical to the multi-pass ReferenceCompress.
func (s *SZ) Compress(src []float32) ([]byte, error) {
	if s.RelErrorBound <= 0 {
		return nil, fmt.Errorf("compress: SZ error bound %g <= 0", s.RelErrorBound)
	}
	var minV, maxV float64
	for i, v := range src {
		f := float64(v)
		if i == 0 || f < minV {
			minV = f
		}
		if i == 0 || f > maxV {
			maxV = f
		}
	}
	ebAbs := s.RelErrorBound * (maxV - minV)
	if ebAbs == 0 {
		ebAbs = s.RelErrorBound // constant input: any tiny bound works
	}
	n := len(src)

	// Lorenzo prediction against the *reconstructed* previous value keeps
	// the decoder in lockstep and the error bound tight per element; the
	// fused loop emits zig-zagged codes directly and tracks their maximum.
	zigs := pool.U32(n)
	var maxZig uint32
	prev := 0.0
	bin := 2 * ebAbs
	for i, v := range src {
		residual := float64(v) - prev
		c := int32(math.Round(residual / bin))
		prev += float64(c) * bin
		z := quant.ZigZag(c)
		zigs[i] = z
		if z > maxZig {
			maxZig = z
		}
	}
	// Byte-plane layout keeps the Huffman symbols byte-aligned (cuSZ's
	// codebook likewise works on byte-sized quant codes).
	nPlanes := quant.PlaneCount(maxZig)
	// Put scratchBuf, not scratch: EncodeAppend may grow the slice onto a
	// fresh heap array, and the arena must get its own buffer back.
	scratchBuf := pool.Bytes(n/2 + 64)
	scratch := scratchBuf[:0]
	plane := pool.Bytes(n)
	var ends [4]int
	for p := 0; p < nPlanes; p++ {
		quant.FillPlane(plane, zigs, p)
		scratch = encoding.Huffman{}.EncodeAppend(scratch, plane)
		ends[p] = len(scratch)
	}
	pool.PutBytes(plane)
	pool.PutU32(zigs)

	size := uvarintLen(uint64(n)) + 10 + len(scratch)
	prevEnd := 0
	for p := 0; p < nPlanes; p++ {
		size += 1 + uvarintLen(uint64(ends[p]-prevEnd))
		prevEnd = ends[p]
	}
	out := make([]byte, 0, size)
	out = putHeader(out, magicSZ, n)
	out = putFloat64(out, ebAbs)
	out = append(out, byte(nPlanes))
	prevEnd = 0
	for p := 0; p < nPlanes; p++ {
		out = putHeader(out, 0xBB, ends[p]-prevEnd)
		out = append(out, scratch[prevEnd:ends[p]]...)
		prevEnd = ends[p]
	}
	pool.PutBytes(scratchBuf)
	return out, nil
}

// Decompress implements Compressor. Planes decode into pooled scratch and
// one fused loop joins them, undoes the zig-zag and integrates the Lorenzo
// prediction directly into the output.
func (s *SZ) Decompress(data []byte) ([]float32, error) {
	n, rest, err := getHeader(data, magicSZ, "SZ")
	if err != nil {
		return nil, err
	}
	ebAbs, rest, err := getFloat64(rest, "SZ")
	if err != nil {
		return nil, err
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: SZ: truncated plane count", ErrCorrupt)
	}
	nPlanes := int(rest[0])
	rest = rest[1:]
	if nPlanes > 4 {
		return nil, fmt.Errorf("%w: SZ: %d planes", ErrCorrupt, nPlanes)
	}
	var scratches [][]byte
	defer func() {
		for _, b := range scratches {
			pool.PutBytes(b)
		}
	}()
	var planes [4][]byte
	for p := 0; p < nPlanes; p++ {
		planeLen, after, err := getHeader(rest, 0xBB, "SZ plane")
		if err != nil {
			return nil, err
		}
		if planeLen > len(after) {
			return nil, fmt.Errorf("%w: SZ: plane %d overruns", ErrCorrupt, p)
		}
		buf := pool.Bytes(n)
		scratches = append(scratches, buf)
		planes[p], err = encoding.Huffman{}.DecodeInto(buf, after[:planeLen])
		if err != nil {
			return nil, fmt.Errorf("%w: SZ plane %d: %v", ErrCorrupt, p, err)
		}
		if len(planes[p]) != n {
			return nil, fmt.Errorf("%w: SZ: plane %d has %d bytes, want %d", ErrCorrupt, p, len(planes[p]), n)
		}
		rest = after[planeLen:]
	}
	out := make([]float32, n)
	prev := 0.0
	bin := 2 * ebAbs
	for i := 0; i < n; i++ {
		var z uint32
		for p := 0; p < nPlanes; p++ {
			z |= uint32(planes[p][i]) << (8 * p)
		}
		prev += float64(quant.UnZigZag(z)) * bin
		out[i] = float32(prev)
	}
	return out, nil
}
