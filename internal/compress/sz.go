package compress

import (
	"fmt"
	"math"

	"compso/internal/encoding"
	"compso/internal/quant"
)

// SZ implements the cuSZ baseline algorithm the paper compares against:
// 1-D Lorenzo prediction (each value predicted by its reconstructed
// predecessor), round-to-nearest quantization of the prediction residual
// under a range-relative error bound, and Huffman coding of the packed
// quantization codes (§2.4). RN's uniform error distribution is what costs
// it accuracy on K-FAC gradients relative to the SR-based compressors
// (§4.2, Table 6b).
type SZ struct {
	// RelErrorBound is the error bound relative to the value range, e.g.
	// 4e-3 means |error| <= 4e-3·(max−min). The paper evaluates 1e-1 and
	// 4e-3.
	RelErrorBound float64
}

// NewSZ returns an SZ compressor with the given range-relative error bound.
func NewSZ(relEB float64) *SZ { return &SZ{RelErrorBound: relEB} }

// Name implements Compressor.
func (s *SZ) Name() string { return fmt.Sprintf("SZ-%.0E", s.RelErrorBound) }

// Compress implements Compressor.
func (s *SZ) Compress(src []float32) ([]byte, error) {
	if s.RelErrorBound <= 0 {
		return nil, fmt.Errorf("compress: SZ error bound %g <= 0", s.RelErrorBound)
	}
	var minV, maxV float64
	for i, v := range src {
		f := float64(v)
		if i == 0 || f < minV {
			minV = f
		}
		if i == 0 || f > maxV {
			maxV = f
		}
	}
	ebAbs := s.RelErrorBound * (maxV - minV)
	if ebAbs == 0 {
		ebAbs = s.RelErrorBound // constant input: any tiny bound works
	}
	out := putHeader(nil, magicSZ, len(src))
	out = putFloat64(out, ebAbs)

	// Lorenzo prediction against the *reconstructed* previous value keeps
	// the decoder in lockstep and the error bound tight per element.
	codes := make([]int32, len(src))
	prev := 0.0
	bin := 2 * ebAbs
	for i, v := range src {
		residual := float64(v) - prev
		c := int32(math.Round(residual / bin))
		codes[i] = c
		prev += float64(c) * bin
	}
	// Byte-plane layout keeps the Huffman symbols byte-aligned (cuSZ's
	// codebook likewise works on byte-sized quant codes).
	planes := quant.PlaneSplit(codes)
	out = append(out, byte(len(planes)))
	for _, plane := range planes {
		enc := encoding.Huffman{}.Encode(plane)
		out = putHeader(out, 0xBB, len(enc))
		out = append(out, enc...)
	}
	return out, nil
}

// Decompress implements Compressor.
func (s *SZ) Decompress(data []byte) ([]float32, error) {
	n, rest, err := getHeader(data, magicSZ, "SZ")
	if err != nil {
		return nil, err
	}
	ebAbs, rest, err := getFloat64(rest, "SZ")
	if err != nil {
		return nil, err
	}
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: SZ: truncated plane count", ErrCorrupt)
	}
	nPlanes := int(rest[0])
	rest = rest[1:]
	if nPlanes > 4 {
		return nil, fmt.Errorf("%w: SZ: %d planes", ErrCorrupt, nPlanes)
	}
	planes := make([][]byte, nPlanes)
	for p := range planes {
		planeLen, after, err := getHeader(rest, 0xBB, "SZ plane")
		if err != nil {
			return nil, err
		}
		if planeLen > len(after) {
			return nil, fmt.Errorf("%w: SZ: plane %d overruns", ErrCorrupt, p)
		}
		planes[p], err = encoding.Huffman{}.Decode(after[:planeLen])
		if err != nil {
			return nil, fmt.Errorf("%w: SZ plane %d: %v", ErrCorrupt, p, err)
		}
		rest = after[planeLen:]
	}
	codes, err := quant.PlaneJoin(planes, n)
	if err != nil {
		return nil, fmt.Errorf("%w: SZ: %v", ErrCorrupt, err)
	}
	out := make([]float32, n)
	prev := 0.0
	bin := 2 * ebAbs
	for i, c := range codes {
		prev += float64(c) * bin
		out[i] = float32(prev)
	}
	return out, nil
}
