package compress

import (
	"fmt"
	"math"
)

// ErrorFeedback wraps a compressor with the error-feedback (EF) mechanism
// discussed in §6 of the paper: the compression residual (original −
// decompressed) is stored locally and added back to the next iteration's
// gradient, making even biased compressors asymptotically unbiased. COMPSO
// deliberately does not use EF — the residual doubles the gradient memory,
// which conflicts with large-batch data-parallel training — but the wrapper
// exists for the comparison experiments and for users with memory to spare.
//
// The wrapper is stateful per gradient stream: use one instance per
// (worker, tensor) pair, and call Compress with same-length inputs.
type ErrorFeedback struct {
	// Inner performs the actual compression.
	Inner Compressor
	// residual carries the accumulated compression error.
	residual []float32
}

// NewErrorFeedback wraps inner with EF state.
func NewErrorFeedback(inner Compressor) *ErrorFeedback {
	return &ErrorFeedback{Inner: inner}
}

// Name implements Compressor.
func (e *ErrorFeedback) Name() string { return e.Inner.Name() + "+EF" }

// Compress adds the stored residual to src, compresses the sum, and stores
// the new residual. The input slice is not modified.
func (e *ErrorFeedback) Compress(src []float32) ([]byte, error) {
	if e.residual != nil && len(e.residual) != len(src) {
		return nil, fmt.Errorf("%w: EF residual length %d, input %d", ErrLengthMismatch, len(e.residual), len(src))
	}
	corrected := make([]float32, len(src))
	copy(corrected, src)
	if e.residual != nil {
		for i := range corrected {
			corrected[i] += e.residual[i]
		}
	}
	blob, err := e.Inner.Compress(corrected)
	if err != nil {
		return nil, err
	}
	decoded, err := e.Inner.Decompress(blob)
	if err != nil {
		return nil, fmt.Errorf("compress: EF local decode: %w", err)
	}
	if len(decoded) != len(corrected) {
		return nil, fmt.Errorf("compress: EF decode length %d, want %d", len(decoded), len(corrected))
	}
	if e.residual == nil {
		e.residual = make([]float32, len(src))
	}
	for i := range corrected {
		e.residual[i] = corrected[i] - decoded[i]
	}
	return blob, nil
}

// Decompress implements Compressor.
func (e *ErrorFeedback) Decompress(data []byte) ([]float32, error) {
	return e.Inner.Decompress(data)
}

// Reset clears the residual (e.g. between epochs or tensor shape changes).
func (e *ErrorFeedback) Reset() { e.residual = nil }

// ResidualNorm returns the L2 norm of the stored residual, a diagnostic
// for how much error is in flight.
func (e *ErrorFeedback) ResidualNorm() float64 {
	var s float64
	for _, v := range e.residual {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
