package compress

import (
	"fmt"
	"math"
)

// ErrorFeedback wraps a compressor with the error-feedback (EF) mechanism
// discussed in §6 of the paper: the compression residual (original −
// decompressed) is stored locally and added back to the next iteration's
// gradient, making even biased compressors asymptotically unbiased. COMPSO
// deliberately does not use EF — the residual doubles the gradient memory,
// which conflicts with large-batch data-parallel training — but the wrapper
// exists for the comparison experiments and for users with memory to spare.
//
// The wrapper is stateful per gradient stream: use one instance per
// (worker, tensor) pair, and call Compress with same-length inputs. The
// stream length is pinned on the *first* Compress call — even one that
// later fails inside the inner compressor — so every subsequent
// length change surfaces as ErrLengthMismatch rather than feeding a
// possibly state-pinned inner compressor a foreign shape.
type ErrorFeedback struct {
	// Inner performs the actual compression.
	Inner Compressor
	// residual carries the accumulated compression error.
	residual []float32
	// expect pins the stream's gradient length from first use on.
	expect    int
	expectSet bool
}

// NewErrorFeedback wraps inner with EF state.
func NewErrorFeedback(inner Compressor) *ErrorFeedback {
	return &ErrorFeedback{Inner: inner}
}

// Name implements Compressor.
func (e *ErrorFeedback) Name() string { return e.Inner.Name() + "+EF" }

// Corrected returns src plus the stored residual as a fresh slice, pinning
// the stream length on first use. It is the first half of Compress, split
// out for aggregation paths (the low-rank ring all-reduce) that compress
// and restore through a collective instead of a local round trip; such
// callers pair it with Observe.
func (e *ErrorFeedback) Corrected(src []float32) ([]float32, error) {
	if e.expectSet && e.expect != len(src) {
		return nil, fmt.Errorf("%w: EF stream length %d, input %d", ErrLengthMismatch, e.expect, len(src))
	}
	e.expect, e.expectSet = len(src), true
	corrected := make([]float32, len(src))
	copy(corrected, src)
	if e.residual != nil {
		for i := range corrected {
			corrected[i] += e.residual[i]
		}
	}
	return corrected, nil
}

// Observe stores the stream's new residual, corrected − restored. It is
// the second half of Compress for collective-aggregation callers.
func (e *ErrorFeedback) Observe(corrected, restored []float32) error {
	if len(restored) != len(corrected) {
		return fmt.Errorf("%w: EF restored length %d, want %d", ErrLengthMismatch, len(restored), len(corrected))
	}
	if e.residual == nil {
		e.residual = make([]float32, len(corrected))
	}
	for i := range corrected {
		e.residual[i] = corrected[i] - restored[i]
	}
	return nil
}

// Compress adds the stored residual to src, compresses the sum, and stores
// the new residual. The input slice is not modified.
func (e *ErrorFeedback) Compress(src []float32) ([]byte, error) {
	corrected, err := e.Corrected(src)
	if err != nil {
		return nil, err
	}
	blob, err := e.Inner.Compress(corrected)
	if err != nil {
		return nil, err
	}
	decoded, err := e.Inner.Decompress(blob)
	if err != nil {
		return nil, fmt.Errorf("compress: EF local decode: %w", err)
	}
	if err := e.Observe(corrected, decoded); err != nil {
		return nil, err
	}
	return blob, nil
}

// Decompress implements Compressor.
func (e *ErrorFeedback) Decompress(data []byte) ([]float32, error) {
	return e.Inner.Decompress(data)
}

// Reset implements Stateful: it clears the residual and the length pin
// (e.g. between epochs or tensor shape changes) and resets a Stateful
// inner compressor, so the whole stack restarts as one stream.
func (e *ErrorFeedback) Reset() {
	e.residual = nil
	e.expect, e.expectSet = 0, false
	if st, ok := e.Inner.(Stateful); ok {
		st.Reset()
	}
}

// ErrorFeedbackState is the State() snapshot.
type ErrorFeedbackState struct {
	// Expect is the pinned stream length (0 before first use).
	Expect int
	// Pinned reports whether the stream length is pinned at all — it
	// disambiguates "never used" from a stream legitimately pinned to
	// length 0.
	Pinned bool
	// Residual is a copy of the in-flight error.
	Residual []float32
	// Inner is the inner compressor's snapshot when it is Stateful.
	Inner any
}

// State implements Stateful.
func (e *ErrorFeedback) State() any {
	st := ErrorFeedbackState{Pinned: e.expectSet}
	if e.expectSet {
		st.Expect = e.expect
	}
	if e.residual != nil {
		st.Residual = append([]float32(nil), e.residual...)
	}
	if inner, ok := e.Inner.(Stateful); ok {
		st.Inner = inner.State()
	}
	return st
}

// Restore implements Restorable: it re-installs a State() snapshot —
// length pin, residual, and (recursively) the inner compressor's stream
// state. The residual is copied out of the snapshot, never aliased. A
// snapshot carrying inner state for a non-restorable inner compressor is
// rejected rather than silently dropped.
func (e *ErrorFeedback) Restore(state any) error {
	st, ok := state.(ErrorFeedbackState)
	if !ok {
		if p, ok2 := state.(*ErrorFeedbackState); ok2 {
			st = *p
		} else {
			return fmt.Errorf("compress: EF restore: snapshot type %T", state)
		}
	}
	if st.Inner != nil {
		inner, ok := e.Inner.(Restorable)
		if !ok {
			return fmt.Errorf("compress: EF restore: inner %T carries state but is not Restorable", e.Inner)
		}
		if err := inner.Restore(st.Inner); err != nil {
			return err
		}
	}
	e.expect, e.expectSet = st.Expect, st.Pinned || st.Expect > 0
	if st.Residual != nil {
		e.residual = append([]float32(nil), st.Residual...)
	} else {
		e.residual = nil
	}
	return nil
}

// ResidualNorm returns the L2 norm of the stored residual, a diagnostic
// for how much error is in flight.
func (e *ErrorFeedback) ResidualNorm() float64 {
	var s float64
	for _, v := range e.residual {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
