package compress

import "testing"

// Decompressor fuzzing: arbitrary bytes must never panic — only return
// values or an error.

func fuzzDecompress(f *testing.F, mk func() Compressor) {
	f.Helper()
	c := mk()
	valid, err := c.Compress(kfacData(500, 1))
	if err != nil {
		f.Fatal(err)
	}
	for _, seed := range [][]byte{nil, {0}, {0x51, 0x05}, valid} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := mk()
		out, err := dec.Decompress(data)
		if err == nil && out == nil && len(data) > 0 {
			t.Fatal("nil output without error")
		}
	})
}

func FuzzCOMPSODecompress(f *testing.F) {
	fuzzDecompress(f, func() Compressor { return NewCOMPSO(1) })
}

func FuzzQSGDDecompress(f *testing.F) {
	fuzzDecompress(f, func() Compressor { return NewQSGD(8, 2) })
}

func FuzzSZDecompress(f *testing.F) {
	fuzzDecompress(f, func() Compressor { return NewSZ(4e-3) })
}

func FuzzCocktailDecompress(f *testing.F) {
	fuzzDecompress(f, func() Compressor { return NewCocktailSGD(0.2, 8, 3) })
}

func FuzzChunkedDecompress(f *testing.F) {
	fuzzDecompress(f, func() Compressor {
		return &Chunked{New: func(seed int64) Compressor { return NewQSGD(8, seed) }, ChunkSize: 64}
	})
}
