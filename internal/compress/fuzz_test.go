package compress

import (
	"encoding/binary"
	"testing"
)

// Decompressor fuzzing: arbitrary bytes must never panic — only return
// values or an error.

func fuzzDecompress(f *testing.F, mk func() Compressor) {
	f.Helper()
	c := mk()
	valid, err := c.Compress(kfacData(500, 1))
	if err != nil {
		f.Fatal(err)
	}
	for _, seed := range [][]byte{nil, {0}, {0x51, 0x05}, valid} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := mk()
		out, err := dec.Decompress(data)
		if err == nil && out == nil && len(data) > 0 {
			t.Fatal("nil output without error")
		}
	})
}

func FuzzCOMPSODecompress(f *testing.F) {
	fuzzDecompress(f, func() Compressor { return NewCOMPSO(1) })
}

func FuzzQSGDDecompress(f *testing.F) {
	fuzzDecompress(f, func() Compressor { return NewQSGD(8, 2) })
}

func FuzzSZDecompress(f *testing.F) {
	fuzzDecompress(f, func() Compressor { return NewSZ(4e-3) })
}

func FuzzCocktailDecompress(f *testing.F) {
	fuzzDecompress(f, func() Compressor { return NewCocktailSGD(0.2, 8, 3) })
}

func FuzzPowerSGDDecompress(f *testing.F) {
	// Extra corpus entry: a header whose rows·cols product overflows and
	// whose factor dims disagree with the payload length.
	hdr := []byte{magicLowRank, 0xe8, 0x07, 0xff, 0xff, 0xff, 0xff, 0x0f, 0xff, 0xff, 0xff, 0xff, 0x0f, 0x04}
	f.Add(append(hdr, 0xde, 0xad))
	fuzzDecompress(f, func() Compressor { return NewPowerSGD(4, 7) })
}

func FuzzChunkedDecompress(f *testing.F) {
	mk := func() Compressor {
		return &Chunked{New: func(seed int64) Compressor { return NewQSGD(8, seed) }, ChunkSize: 64}
	}
	// Corpus entries for the decode-path regressions: a valid frame with
	// trailing garbage, and a size-table entry whose int cast used to
	// overflow negative and panic the slicing below.
	c := mk()
	valid, err := c.Compress(kfacData(130, 4))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte(nil), valid...), 0xbe, 0xef))
	huge := binary.AppendUvarint(nil, 64) // total
	huge = binary.AppendUvarint(huge, 64) // chunk size
	huge = binary.AppendUvarint(huge, 1)  // nChunks
	huge = binary.AppendUvarint(huge, 1<<63)
	f.Add(append(huge, 0xde, 0xad))
	fuzzDecompress(f, mk)
}
