package compress

import (
	"fmt"
	"math/rand/v2"

	"compso/internal/encoding"
	"compso/internal/filter"
	"compso/internal/obs"
	"compso/internal/quant"
	"compso/internal/xrand"
)

// COMPSO is the paper's compressor (§4.3, Algorithm 1, Figure 4a):
//
//  1. Filter (lossy): values with |v| < EBFilter are dropped and recorded
//     in a bitmap.
//  2. Error-bounded stochastic-rounding quantization (lossy) of the kept
//     values under EBQuant, packed at the minimal bit width.
//  3. Lossless encoding of both the bitmap and the packed code stream with
//     the selected back-end codec (ANS by default; the performance model
//     can switch it per model).
//
// Unlike fixed-rate quantizers, both error bounds are tunable per
// iteration: the iteration-wise adaptive controller (package compso) runs
// filter+SR with loose bounds early in training and SR-only with tight
// bounds near convergence.
type COMPSO struct {
	// EBFilter is the filter error bound eb_f; values below it are zeroed.
	// Ignored when FilterEnabled is false.
	EBFilter float64
	// EBQuant is the stochastic-rounding error bound eb_q.
	EBQuant float64
	// FilterEnabled selects the aggressive (filter+SR) vs conservative
	// (SR-only) strategy of Algorithm 1.
	FilterEnabled bool
	// Codec is the lossless back-end encoder (nil defaults to ANS).
	Codec encoding.Codec
	// Rounding selects the quantizer's rounding mode. The paper's design
	// choice is stochastic rounding (the default); RN and P0.5 exist for
	// the §4.2 ablation.
	Rounding quant.Mode
	// BitPacked selects §4.3's dense bit packing of quantization codes
	// instead of the default byte-plane layout. Byte planes entropy-code
	// better (symbols stay byte-aligned); bit packing is the ablation.
	BitPacked bool
	// LastFilterTotal and LastFilterKept report the most recent Compress
	// call's filter outcome: how many input values it saw and how many
	// survived the filter (all of them when the filter is disabled). The
	// observability layer reads these to derive the filter hit rate.
	LastFilterTotal int
	LastFilterKept  int
	// Obs, when non-nil, receives per-call compression metrics: the
	// "compress/calls" counter and the "compress/ratio" and
	// "compress/filter_hit_rate" histograms. Nil costs nothing.
	Obs *obs.Recorder
	rng *rand.Rand
}

// NewCOMPSO returns a COMPSO compressor in aggressive mode with the paper's
// default bounds (eb_f = eb_q = 4e-3) and the ANS back-end.
func NewCOMPSO(seed int64) *COMPSO {
	return &COMPSO{
		EBFilter:      4e-3,
		EBQuant:       4e-3,
		FilterEnabled: true,
		Codec:         encoding.ANS{},
		Rounding:      quant.SR,
		rng:           xrand.NewSeeded(seed),
	}
}

// Name implements Compressor.
func (c *COMPSO) Name() string { return "COMPSO" }

// Reseed replaces the stochastic-rounding RNG with a fresh deterministic
// stream. The options facade uses it to make per-rank seeding orthogonal to
// the other construction options.
func (c *COMPSO) Reseed(seed int64) { c.rng = xrand.NewSeeded(seed) }

// codec returns the configured back-end, defaulting to ANS.
func (c *COMPSO) codec() encoding.Codec {
	if c.Codec == nil {
		return encoding.ANS{}
	}
	return c.Codec
}

// codecID maps the configured codec to its registry index for the header.
func (c *COMPSO) codecID() (byte, error) {
	name := c.codec().Name()
	for i, n := range encoding.Names() {
		if n == name {
			return byte(i), nil
		}
	}
	return 0, fmt.Errorf("compress: COMPSO codec %q not registered", name)
}

// Compress implements Compressor.
func (c *COMPSO) Compress(src []float32) ([]byte, error) {
	if c.EBQuant <= 0 {
		return nil, fmt.Errorf("compress: COMPSO quantizer bound %g <= 0", c.EBQuant)
	}
	if c.FilterEnabled && c.EBFilter <= 0 {
		return nil, fmt.Errorf("compress: COMPSO filter bound %g <= 0", c.EBFilter)
	}
	codecID, err := c.codecID()
	if err != nil {
		return nil, err
	}

	var bitmap []byte
	kept := src
	filterFlag := byte(0)
	if c.FilterEnabled {
		bitmap, kept = filter.Apply(src, c.EBFilter)
		filterFlag = 1
	}
	c.LastFilterTotal = len(src)
	c.LastFilterKept = len(kept)
	codes := quant.QuantizeEB(kept, c.EBQuant, c.Rounding, c.rng)

	cdc := c.codec()
	encBitmap := cdc.Encode(bitmap)

	// Options byte: bit 0 = bit-packed codes, bits 1-2 = rounding mode.
	options := byte(c.Rounding) << 1
	if c.BitPacked {
		options |= 1
	}

	out := putHeader(nil, magicCOMPSO, len(src))
	out = append(out, filterFlag, codecID, options)
	out = putFloat64(out, c.EBFilter)
	out = putFloat64(out, c.EBQuant)
	out = putHeader(out, 0xBB, len(kept))      // kept-value count
	out = putHeader(out, 0xBB, len(encBitmap)) // bitmap section length
	out = append(out, encBitmap...)
	if c.BitPacked {
		// §4.3 ablation: dense bit packing in a single plane-like section.
		enc := cdc.Encode(quant.PackCodes(codes))
		out = append(out, byte(1))
		out = putHeader(out, 0xBB, len(enc))
		out = append(out, enc...)
		c.observe(len(src), len(out))
		return out, nil
	}
	// Byte-plane layout: entropy coders get byte-aligned symbol streams
	// (plane 0 carries the low bytes where the distribution skew lives,
	// higher planes are near-constant zero and collapse to almost nothing).
	planes := quant.PlaneSplit(codes)
	out = append(out, byte(len(planes)))
	for _, plane := range planes {
		enc := cdc.Encode(plane)
		out = putHeader(out, 0xBB, len(enc))
		out = append(out, enc...)
	}
	c.observe(len(src), len(out))
	return out, nil
}

// observe feeds the attached recorder (if any) with one Compress call's
// metrics.
func (c *COMPSO) observe(nIn, nOut int) {
	if c.Obs == nil {
		return
	}
	c.Obs.Counter("compress/calls").Inc()
	if nIn > 0 && nOut > 0 {
		c.Obs.Histogram("compress/ratio").Observe(float64(4*nIn) / float64(nOut))
	}
	if c.LastFilterTotal > 0 {
		c.Obs.Histogram("compress/filter_hit_rate").
			Observe(1 - float64(c.LastFilterKept)/float64(c.LastFilterTotal))
	}
}

// Decompress implements Compressor.
func (c *COMPSO) Decompress(data []byte) ([]float32, error) {
	n, rest, err := getHeader(data, magicCOMPSO, "COMPSO")
	if err != nil {
		return nil, err
	}
	if len(rest) < 3 {
		return nil, fmt.Errorf("%w: COMPSO: truncated flags", ErrCorrupt)
	}
	filterFlag, codecID, options := rest[0], rest[1], rest[2]
	rest = rest[3:]
	bitPacked := options&1 != 0
	rounding := quant.Mode(options >> 1)
	if rounding > quant.P05 {
		return nil, fmt.Errorf("%w: COMPSO: rounding mode %d", ErrCorrupt, rounding)
	}
	_, rest, err = getFloat64(rest, "COMPSO ebf")
	if err != nil {
		return nil, err
	}
	ebq, rest, err := getFloat64(rest, "COMPSO ebq")
	if err != nil {
		return nil, err
	}
	if ebq <= 0 {
		return nil, fmt.Errorf("%w: COMPSO: quantizer bound %g", ErrCorrupt, ebq)
	}
	names := encoding.Names()
	if int(codecID) >= len(names) {
		return nil, fmt.Errorf("%w: COMPSO: codec id %d", ErrCorrupt, codecID)
	}
	cdc, err := encoding.ByName(names[codecID])
	if err != nil {
		return nil, err
	}
	keptCount, rest, err := getHeader(rest, 0xBB, "COMPSO kept count")
	if err != nil {
		return nil, err
	}
	if keptCount > n {
		return nil, fmt.Errorf("%w: COMPSO: kept count %d > %d", ErrCorrupt, keptCount, n)
	}
	bitmapLen, rest, err := getHeader(rest, 0xBB, "COMPSO bitmap section")
	if err != nil {
		return nil, err
	}
	if bitmapLen > len(rest) {
		return nil, fmt.Errorf("%w: COMPSO: bitmap section of %d overruns %d", ErrCorrupt, bitmapLen, len(rest))
	}
	var bitmap []byte
	if filterFlag != 0 {
		bitmap, err = cdc.Decode(rest[:bitmapLen])
		if err != nil {
			return nil, fmt.Errorf("%w: COMPSO bitmap: %v", ErrCorrupt, err)
		}
	}
	rest = rest[bitmapLen:]
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: COMPSO: truncated plane count", ErrCorrupt)
	}
	nPlanes := int(rest[0])
	rest = rest[1:]
	if nPlanes > 4 {
		return nil, fmt.Errorf("%w: COMPSO: %d planes", ErrCorrupt, nPlanes)
	}
	var codes []int32
	if bitPacked {
		if nPlanes != 1 {
			return nil, fmt.Errorf("%w: COMPSO: bit-packed stream with %d sections", ErrCorrupt, nPlanes)
		}
		secLen, after, err := getHeader(rest, 0xBB, "COMPSO packed section")
		if err != nil {
			return nil, err
		}
		if secLen > len(after) {
			return nil, fmt.Errorf("%w: COMPSO: packed section overruns", ErrCorrupt)
		}
		packed, err := cdc.Decode(after[:secLen])
		if err != nil {
			return nil, fmt.Errorf("%w: COMPSO packed: %v", ErrCorrupt, err)
		}
		codes, err = quant.UnpackCodes(packed)
		if err != nil {
			return nil, fmt.Errorf("%w: COMPSO: %v", ErrCorrupt, err)
		}
		if len(codes) != keptCount {
			return nil, fmt.Errorf("%w: COMPSO: %d codes for %d kept", ErrCorrupt, len(codes), keptCount)
		}
	} else {
		planes := make([][]byte, nPlanes)
		for p := range planes {
			planeLen, after, err := getHeader(rest, 0xBB, "COMPSO plane")
			if err != nil {
				return nil, err
			}
			if planeLen > len(after) {
				return nil, fmt.Errorf("%w: COMPSO: plane %d overruns", ErrCorrupt, p)
			}
			planes[p], err = cdc.Decode(after[:planeLen])
			if err != nil {
				return nil, fmt.Errorf("%w: COMPSO plane %d: %v", ErrCorrupt, p, err)
			}
			rest = after[planeLen:]
		}
		codes, err = quant.PlaneJoin(planes, keptCount)
		if err != nil {
			return nil, fmt.Errorf("%w: COMPSO: %v", ErrCorrupt, err)
		}
	}
	kept := quant.DequantizeEB(codes, ebq, rounding)
	if filterFlag == 0 {
		if len(kept) != n {
			return nil, fmt.Errorf("%w: COMPSO: %d values for %d elements", ErrCorrupt, len(kept), n)
		}
		return kept, nil
	}
	out, err := filter.Restore(bitmap, n, kept)
	if err != nil {
		return nil, fmt.Errorf("%w: COMPSO: %v", ErrCorrupt, err)
	}
	return out, nil
}

// MaxError returns the worst-case pointwise error of the current
// configuration: filtered values err by up to EBFilter, quantized ones by
// up to EBQuant.
func (c *COMPSO) MaxError() float64 {
	if c.FilterEnabled && c.EBFilter > c.EBQuant {
		return c.EBFilter
	}
	return c.EBQuant
}
