package compress

import (
	"fmt"
	"math/bits"
	"math/rand/v2"

	"compso/internal/bitstream"
	"compso/internal/encoding"
	"compso/internal/obs"
	"compso/internal/pool"
	"compso/internal/quant"
	"compso/internal/xrand"
)

// COMPSO is the paper's compressor (§4.3, Algorithm 1, Figure 4a):
//
//  1. Filter (lossy): values with |v| < EBFilter are dropped and recorded
//     in a bitmap.
//  2. Error-bounded stochastic-rounding quantization (lossy) of the kept
//     values under EBQuant, packed at the minimal bit width.
//  3. Lossless encoding of both the bitmap and the packed code stream with
//     the selected back-end codec (ANS by default; the performance model
//     can switch it per model).
//
// Unlike fixed-rate quantizers, both error bounds are tunable per
// iteration: the iteration-wise adaptive controller (package compso) runs
// filter+SR with loose bounds early in training and SR-only with tight
// bounds near convergence.
type COMPSO struct {
	// EBFilter is the filter error bound eb_f; values below it are zeroed.
	// Ignored when FilterEnabled is false.
	EBFilter float64
	// EBQuant is the stochastic-rounding error bound eb_q.
	EBQuant float64
	// FilterEnabled selects the aggressive (filter+SR) vs conservative
	// (SR-only) strategy of Algorithm 1.
	FilterEnabled bool
	// Codec is the lossless back-end encoder (nil defaults to ANS).
	Codec encoding.Codec
	// Rounding selects the quantizer's rounding mode. The paper's design
	// choice is stochastic rounding (the default); RN and P0.5 exist for
	// the §4.2 ablation.
	Rounding quant.Mode
	// BitPacked selects §4.3's dense bit packing of quantization codes
	// instead of the default byte-plane layout. Byte planes entropy-code
	// better (symbols stay byte-aligned); bit packing is the ablation.
	BitPacked bool
	// LastFilterTotal and LastFilterKept report the most recent Compress
	// call's filter outcome: how many input values it saw and how many
	// survived the filter (all of them when the filter is disabled). The
	// observability layer reads these to derive the filter hit rate.
	LastFilterTotal int
	LastFilterKept  int
	// Obs, when non-nil, receives per-call compression metrics: the
	// "compress/calls" counter and the "compress/ratio" and
	// "compress/filter_hit_rate" histograms. Nil costs nothing.
	Obs *obs.Recorder
	rng *rand.Rand
	// src is the PCG behind rng when the compressor was built by
	// NewCOMPSO/Reseed. The fused kernels draw from it directly (same
	// stream, no rand.Source dispatch); nil falls back to rng.
	src *rand.PCG
	// seed0 remembers the construction (or last Reseed) seed so Reset can
	// restart the stochastic-rounding stream from its beginning.
	seed0 int64
}

// NewCOMPSO returns a COMPSO compressor in aggressive mode with the paper's
// default bounds (eb_f = eb_q = 4e-3) and the ANS back-end.
func NewCOMPSO(seed int64) *COMPSO {
	src := xrand.NewPCG(seed)
	return &COMPSO{
		EBFilter:      4e-3,
		EBQuant:       4e-3,
		FilterEnabled: true,
		Codec:         encoding.ANS{},
		Rounding:      quant.SR,
		rng:           rand.New(src),
		src:           src,
		seed0:         seed,
	}
}

// Name implements Compressor.
func (c *COMPSO) Name() string { return "COMPSO" }

// Reseed replaces the stochastic-rounding RNG with a fresh deterministic
// stream. The options facade uses it to make per-rank seeding orthogonal to
// the other construction options.
func (c *COMPSO) Reseed(seed int64) {
	c.src = xrand.NewPCG(seed)
	c.rng = rand.New(c.src)
	c.seed0 = seed
}

// COMPSOState is the State() snapshot: the exact position of the
// stochastic-rounding PCG stream as rand.PCG MarshalBinary bytes (nil when
// the compressor was built without a seeded stream, e.g. a zero-value
// decoder). The byte blob is a deep copy.
type COMPSOState struct {
	RNG []byte
}

// Reset implements Stateful: the stochastic-rounding stream restarts from
// the construction (or last Reseed) seed and the filter diagnostics clear.
// Zero-value compressors without a seeded stream have no state to drop.
func (c *COMPSO) Reset() {
	if c.src != nil {
		c.Reseed(c.seed0)
	}
	c.LastFilterTotal, c.LastFilterKept = 0, 0
}

// State implements Stateful. The only stream state COMPSO carries is the
// RNG position — the filter/quantizer are otherwise memoryless per call.
func (c *COMPSO) State() any {
	st := COMPSOState{}
	if c.src != nil {
		// rand.PCG.MarshalBinary never fails and returns fresh bytes.
		b, err := c.src.MarshalBinary()
		if err != nil {
			panic(fmt.Sprintf("compress: COMPSO PCG marshal: %v", err))
		}
		st.RNG = b
	}
	return st
}

// Restore implements Restorable: it re-installs a State() snapshot so the
// stochastic-rounding stream continues from exactly the snapshotted
// position.
func (c *COMPSO) Restore(state any) error {
	st, ok := state.(COMPSOState)
	if !ok {
		if p, ok2 := state.(*COMPSOState); ok2 {
			st = *p
		} else {
			return fmt.Errorf("compress: COMPSO restore: snapshot type %T", state)
		}
	}
	if st.RNG == nil {
		if c.src != nil {
			return fmt.Errorf("compress: COMPSO restore: snapshot has no RNG stream but compressor is seeded")
		}
		return nil
	}
	src := &rand.PCG{}
	if err := src.UnmarshalBinary(st.RNG); err != nil {
		return fmt.Errorf("compress: COMPSO restore: %w", err)
	}
	c.src = src
	c.rng = rand.New(src)
	return nil
}

// codec returns the configured back-end, defaulting to ANS.
func (c *COMPSO) codec() encoding.Codec {
	if c.Codec == nil {
		return encoding.ANS{}
	}
	return c.Codec
}

// codecID maps the configured codec to its registry index for the header.
func (c *COMPSO) codecID() (byte, error) {
	name := c.codec().Name()
	for i, n := range encoding.Names() {
		if n == name {
			return byte(i), nil
		}
	}
	return 0, fmt.Errorf("compress: COMPSO codec %q not registered", name)
}

// Compress implements Compressor. It is the fused single-pass rewrite of
// the pipeline (§4.5's kernel fusion): one kernel walks the input once,
// producing the filter bitmap and the zig-zagged quantization codes
// together, and every downstream section (bitmap, byte planes or the packed
// stream) is encoded into one pooled scratch buffer — no intermediate
// []float32 kept-value slice, no []int32 code vector, no per-plane or
// per-section []byte materialization. The emitted blob is byte-identical to
// ReferenceCompress given the same state (the multi-pass original preserved
// in reference.go), which TestCOMPSOFusedMatchesReference enforces.
func (c *COMPSO) Compress(src []float32) ([]byte, error) {
	if c.EBQuant <= 0 {
		return nil, fmt.Errorf("compress: COMPSO quantizer bound %g <= 0", c.EBQuant)
	}
	if c.FilterEnabled && c.EBFilter <= 0 {
		return nil, fmt.Errorf("compress: COMPSO filter bound %g <= 0", c.EBFilter)
	}
	codecID, err := c.codecID()
	if err != nil {
		return nil, err
	}
	cdc := c.codec()
	n := len(src)
	binW := quant.BinWidth(c.EBQuant, c.Rounding)

	// Single fused pass: filter + quantize + zig-zag, tracking the max code
	// so the plane count / pack width needs no second scan.
	zigs := pool.U32(n)
	var bitmap []byte // nil when the filter is off (encoded as an empty stream)
	kept := n
	var maxZig uint32
	filterFlag := byte(0)
	if c.FilterEnabled {
		bitmap = pool.Bytes((n + 7) / 8)
		if c.Rounding == quant.SR && c.src != nil {
			kept, maxZig = quant.FilterQuantizeZigPCG(bitmap, zigs, src, c.EBFilter, binW, c.src)
		} else {
			kept, maxZig = quant.FilterQuantizeZig(bitmap, zigs, src, c.EBFilter, binW, c.Rounding, c.rng)
		}
		filterFlag = 1
	} else if c.Rounding == quant.SR && c.src != nil {
		maxZig = quant.QuantizeZigIntoPCG(zigs, src, binW, c.src)
	} else {
		maxZig = quant.QuantizeZigInto(zigs, src, binW, c.Rounding, c.rng)
	}
	c.LastFilterTotal = n
	c.LastFilterKept = kept
	zigs = zigs[:kept]

	// Encode every section back to back into one pooled scratch, recording
	// cumulative boundaries, so the final blob is cut with a single
	// exact-size allocation. The original arena handle is kept because
	// EncodeAppend may grow scratch onto a fresh heap array: only the
	// handle goes back to the pool — returning the grown slice would hand
	// the arena a foreign buffer and leak the pooled one.
	scratchBuf := pool.Bytes(n/2 + 64)
	scratch := scratchBuf[:0]
	scratch = encoding.EncodeAppend(cdc, scratch, bitmap)
	if bitmap != nil {
		pool.PutBytes(bitmap)
	}
	bitmapEnd := len(scratch)

	// Options byte: bit 0 = bit-packed codes, bits 1-2 = rounding mode.
	options := byte(c.Rounding) << 1
	var ends [4]int // cumulative section ends within scratch
	nSections := 0
	if c.BitPacked {
		// §4.3 ablation: dense bit packing in a single plane-like section.
		// Wide codes (width > 8 bits) overflow the kept+16 guess and make
		// PackZigs grow onto a fresh array, so Put the original handle.
		options |= 1
		packedBuf := pool.Bytes(kept + 16)
		packed := quant.PackZigs(packedBuf, zigs, maxZig)
		scratch = encoding.EncodeAppend(cdc, scratch, packed)
		pool.PutBytes(packedBuf)
		nSections = 1
		ends[0] = len(scratch)
	} else {
		// Byte-plane layout: entropy coders get byte-aligned symbol streams
		// (plane 0 carries the low bytes where the distribution skew lives,
		// higher planes are near-constant zero and collapse to almost
		// nothing). One pooled plane buffer is reused across all planes.
		nSections = quant.PlaneCount(maxZig)
		plane := pool.Bytes(kept)
		for p := 0; p < nSections; p++ {
			quant.FillPlane(plane, zigs, p)
			scratch = encoding.EncodeAppend(cdc, scratch, plane)
			ends[p] = len(scratch)
		}
		pool.PutBytes(plane)
	}
	pool.PutU32(zigs)

	size := uvarintLen(uint64(n)) + 21 + uvarintLen(uint64(kept)) +
		1 + uvarintLen(uint64(bitmapEnd)) + 1 + len(scratch)
	prev := bitmapEnd
	for p := 0; p < nSections; p++ {
		size += 1 + uvarintLen(uint64(ends[p]-prev))
		prev = ends[p]
	}
	out := make([]byte, 0, size)
	out = putHeader(out, magicCOMPSO, n)
	out = append(out, filterFlag, codecID, options)
	out = putFloat64(out, c.EBFilter)
	out = putFloat64(out, c.EBQuant)
	out = putHeader(out, 0xBB, kept)      // kept-value count
	out = putHeader(out, 0xBB, bitmapEnd) // bitmap section length
	out = append(out, scratch[:bitmapEnd]...)
	out = append(out, byte(nSections))
	prev = bitmapEnd
	for p := 0; p < nSections; p++ {
		out = putHeader(out, 0xBB, ends[p]-prev)
		out = append(out, scratch[prev:ends[p]]...)
		prev = ends[p]
	}
	pool.PutBytes(scratchBuf)
	c.observe(n, len(out))
	return out, nil
}

// uvarintLen returns the LEB128-encoded size of v in bytes.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		n++
		v >>= 7
	}
	return n
}

// observe feeds the attached recorder (if any) with one Compress call's
// metrics.
func (c *COMPSO) observe(nIn, nOut int) {
	if c.Obs == nil {
		return
	}
	c.Obs.Counter("compress/calls").Inc()
	if nIn > 0 && nOut > 0 {
		c.Obs.Histogram("compress/ratio").Observe(float64(4*nIn) / float64(nOut))
	}
	if c.LastFilterTotal > 0 {
		c.Obs.Histogram("compress/filter_hit_rate").
			Observe(1 - float64(c.LastFilterKept)/float64(c.LastFilterTotal))
	}
}

// Decompress implements Compressor. The fused decode path mirrors Compress:
// sections decode into pooled scratch, and one fused loop joins the byte
// planes (or reads the packed stream), dequantizes, and restores the
// filtered zeros directly into the output slice — no []int32 code vector or
// intermediate []float32 kept-value slice. It returns exactly the values
// (and errors, modulo message wording) of the multi-pass
// ReferenceDecompress.
func (c *COMPSO) Decompress(data []byte) ([]float32, error) {
	n, rest, err := getHeader(data, magicCOMPSO, "COMPSO")
	if err != nil {
		return nil, err
	}
	if len(rest) < 3 {
		return nil, fmt.Errorf("%w: COMPSO: truncated flags", ErrCorrupt)
	}
	filterFlag, codecID, options := rest[0], rest[1], rest[2]
	rest = rest[3:]
	bitPacked := options&1 != 0
	rounding := quant.Mode(options >> 1)
	if rounding > quant.P05 {
		return nil, fmt.Errorf("%w: COMPSO: rounding mode %d", ErrCorrupt, rounding)
	}
	_, rest, err = getFloat64(rest, "COMPSO ebf")
	if err != nil {
		return nil, err
	}
	ebq, rest, err := getFloat64(rest, "COMPSO ebq")
	if err != nil {
		return nil, err
	}
	if ebq <= 0 {
		return nil, fmt.Errorf("%w: COMPSO: quantizer bound %g", ErrCorrupt, ebq)
	}
	names := encoding.Names()
	if int(codecID) >= len(names) {
		return nil, fmt.Errorf("%w: COMPSO: codec id %d", ErrCorrupt, codecID)
	}
	cdc, err := encoding.ByName(names[codecID])
	if err != nil {
		return nil, err
	}
	keptCount, rest, err := getHeader(rest, 0xBB, "COMPSO kept count")
	if err != nil {
		return nil, err
	}
	if keptCount > n {
		return nil, fmt.Errorf("%w: COMPSO: kept count %d > %d", ErrCorrupt, keptCount, n)
	}
	bitmapLen, rest, err := getHeader(rest, 0xBB, "COMPSO bitmap section")
	if err != nil {
		return nil, err
	}
	if bitmapLen > len(rest) {
		return nil, fmt.Errorf("%w: COMPSO: bitmap section of %d overruns %d", ErrCorrupt, bitmapLen, len(rest))
	}
	// Pooled scratch handed back on every exit path.
	var scratches [][]byte
	defer func() {
		for _, s := range scratches {
			pool.PutBytes(s)
		}
	}()
	var bitmap []byte
	if filterFlag != 0 {
		buf := pool.Bytes((n + 7) / 8)
		scratches = append(scratches, buf)
		bitmap, err = encoding.DecodeInto(cdc, buf, rest[:bitmapLen])
		if err != nil {
			return nil, fmt.Errorf("%w: COMPSO bitmap: %v", ErrCorrupt, err)
		}
	}
	rest = rest[bitmapLen:]
	if len(rest) < 1 {
		return nil, fmt.Errorf("%w: COMPSO: truncated plane count", ErrCorrupt)
	}
	nPlanes := int(rest[0])
	rest = rest[1:]
	if nPlanes > 4 {
		return nil, fmt.Errorf("%w: COMPSO: %d planes", ErrCorrupt, nPlanes)
	}

	// Obtain the zig-zag code stream: either the dense packed section or up
	// to four decoded byte planes (joined lazily in the fused output loop).
	var zigs []uint32 // bit-packed path only
	var planes [4][]byte
	if bitPacked {
		if nPlanes != 1 {
			return nil, fmt.Errorf("%w: COMPSO: bit-packed stream with %d sections", ErrCorrupt, nPlanes)
		}
		secLen, after, err := getHeader(rest, 0xBB, "COMPSO packed section")
		if err != nil {
			return nil, err
		}
		if secLen > len(after) {
			return nil, fmt.Errorf("%w: COMPSO: packed section overruns", ErrCorrupt)
		}
		buf := pool.Bytes(keptCount + 16)
		scratches = append(scratches, buf)
		packed, err := encoding.DecodeInto(cdc, buf, after[:secLen])
		if err != nil {
			return nil, fmt.Errorf("%w: COMPSO packed: %v", ErrCorrupt, err)
		}
		zigs = pool.U32(keptCount)
		defer pool.PutU32(zigs)
		if err := unpackZigsInto(zigs, packed, keptCount); err != nil {
			return nil, fmt.Errorf("%w: COMPSO: %v", ErrCorrupt, err)
		}
	} else {
		for p := 0; p < nPlanes; p++ {
			planeLen, after, err := getHeader(rest, 0xBB, "COMPSO plane")
			if err != nil {
				return nil, err
			}
			if planeLen > len(after) {
				return nil, fmt.Errorf("%w: COMPSO: plane %d overruns", ErrCorrupt, p)
			}
			buf := pool.Bytes(keptCount)
			scratches = append(scratches, buf)
			planes[p], err = encoding.DecodeInto(cdc, buf, after[:planeLen])
			if err != nil {
				return nil, fmt.Errorf("%w: COMPSO plane %d: %v", ErrCorrupt, p, err)
			}
			if len(planes[p]) != keptCount {
				return nil, fmt.Errorf("%w: COMPSO: plane %d has %d bytes, want %d", ErrCorrupt, p, len(planes[p]), keptCount)
			}
			rest = after[planeLen:]
		}
	}
	binW := quant.BinWidth(ebq, rounding)
	out := make([]float32, n)
	// One or two byte planes cover every real gradient stream; there the
	// low byte dequantizes through a 256-entry table built with the exact
	// DequantizeZig arithmetic, and the near-constant-zero high plane falls
	// back to the full computation only when its byte is set.
	var lut [256]float32
	var p0, p1 []byte
	fastPlanes := !bitPacked && (nPlanes == 1 || nPlanes == 2)
	if fastPlanes {
		for z := range lut {
			lut[z] = quant.DequantizeZig(uint32(z), binW)
		}
		p0 = planes[0]
		if nPlanes == 2 {
			p1 = planes[1]
		}
	}
	if filterFlag == 0 {
		if keptCount != n {
			return nil, fmt.Errorf("%w: COMPSO: %d values for %d elements", ErrCorrupt, keptCount, n)
		}
		switch {
		case bitPacked:
			for i, z := range zigs {
				out[i] = quant.DequantizeZig(z, binW)
			}
		case nPlanes == 1:
			for i, b := range p0 {
				out[i] = lut[b]
			}
		case nPlanes == 2:
			for i := 0; i < n; i++ {
				if hi := p1[i]; hi != 0 {
					out[i] = quant.DequantizeZig(uint32(p0[i])|uint32(hi)<<8, binW)
				} else {
					out[i] = lut[p0[i]]
				}
			}
		case nPlanes == 0:
			// Every code is zero; out is already zero-valued.
		default:
			for i := 0; i < n; i++ {
				var z uint32
				for p := 0; p < nPlanes; p++ {
					z |= uint32(planes[p][i]) << (8 * p)
				}
				out[i] = quant.DequantizeZig(z, binW)
			}
		}
		return out, nil
	}
	// Fused dequantize + filter-restore, with filter.Restore's validation.
	if len(bitmap) < (n+7)/8 {
		return nil, fmt.Errorf("%w: COMPSO: bitmap of %d bytes too short for %d values", ErrCorrupt, len(bitmap), n)
	}
	k := 0
	if fastPlanes {
		// Word-at-a-time restore: 64 bitmap bits load as one little-endian
		// word, and the kept positions are walked by iterating the zero bits
		// with TrailingZeros64 — the loop runs once per kept value (plus once
		// per word), not once per bit with a data-dependent branch.
		nw := n >> 6
		for wi := 0; wi < nw; wi++ {
			b := bitmap[wi<<3 : wi<<3+8]
			inv := ^(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
				uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
			if inv == 0 {
				continue
			}
			base := wi << 6
			if k+64 > keptCount && k+bits.OnesCount64(inv) > keptCount {
				return nil, fmt.Errorf("%w: COMPSO: bitmap expects more than %d kept values", ErrCorrupt, keptCount)
			}
			for inv != 0 {
				j := bits.TrailingZeros64(inv)
				inv &= inv - 1
				z := uint32(p0[k])
				if p1 != nil {
					if hi := p1[k]; hi != 0 {
						out[base+j] = quant.DequantizeZig(z|uint32(hi)<<8, binW)
						k++
						continue
					}
				}
				out[base+j] = lut[z]
				k++
			}
		}
		for i := nw << 6; i < n; i++ {
			if bitmap[i>>3]&(1<<(i&7)) == 0 {
				if k >= keptCount {
					return nil, fmt.Errorf("%w: COMPSO: bitmap expects more than %d kept values", ErrCorrupt, keptCount)
				}
				z := uint32(p0[k])
				if p1 != nil {
					z |= uint32(p1[k]) << 8
				}
				out[i] = quant.DequantizeZig(z, binW)
				k++
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if bitmap[i>>3]&(1<<(i&7)) != 0 {
				continue // filtered → zero
			}
			if k >= keptCount {
				return nil, fmt.Errorf("%w: COMPSO: bitmap expects more than %d kept values", ErrCorrupt, keptCount)
			}
			var z uint32
			if bitPacked {
				z = zigs[k]
			} else {
				for p := 0; p < nPlanes; p++ {
					z |= uint32(planes[p][k]) << (8 * p)
				}
			}
			out[i] = quant.DequantizeZig(z, binW)
			k++
		}
	}
	if k != keptCount {
		return nil, fmt.Errorf("%w: COMPSO: %d kept values unused (bitmap expects %d)", ErrCorrupt, keptCount-k, k)
	}
	return out, nil
}

// unpackZigsInto reads a PackCodes-format stream into dst, enforcing that it
// holds exactly want codes — the UnpackCodes validation without the []int32
// materialization.
func unpackZigsInto(dst []uint32, packed []byte, want int) error {
	r := bitstream.NewReader(packed)
	cnt, err := r.ReadUvarint()
	if err != nil {
		return fmt.Errorf("unpack count: %v", err)
	}
	if cnt > 1<<31 {
		return fmt.Errorf("implausible code count %d", cnt)
	}
	width64, err := r.ReadBits(6)
	if err != nil {
		return fmt.Errorf("unpack width: %v", err)
	}
	if width64 > 32 {
		return fmt.Errorf("invalid code width %d", width64)
	}
	if int(cnt) != want {
		return fmt.Errorf("%d codes for %d kept", cnt, want)
	}
	width := uint(width64)
	for i := 0; i < want; i++ {
		z, err := r.ReadBits(width)
		if err != nil {
			return fmt.Errorf("unpack code %d: %v", i, err)
		}
		dst[i] = uint32(z)
	}
	return nil
}

// MaxError returns the worst-case pointwise error of the current
// configuration: filtered values err by up to EBFilter, quantized ones by
// up to EBQuant.
func (c *COMPSO) MaxError() float64 {
	if c.FilterEnabled && c.EBFilter > c.EBQuant {
		return c.EBFilter
	}
	return c.EBQuant
}
