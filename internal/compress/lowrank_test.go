package compress

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"math"
	"testing"

	"compso/internal/xrand"
)

// lowRankInput builds a gradient that is exactly rank r under the given
// 2D view, so a rank-k >= r compressor can reconstruct it to float32
// precision.
func lowRankInput(rows, cols, r int, seed int64) []float32 {
	rng := xrand.NewSeeded(seed)
	u := make([]float64, rows*r)
	v := make([]float64, cols*r)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	out := make([]float32, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var s float64
			for t := 0; t < r; t++ {
				s += u[i*r+t] * v[j*r+t]
			}
			out[i*cols+j] = float32(s)
		}
	}
	return out
}

func relErr(want, got []float32) float64 {
	var num, den float64
	for i := range want {
		d := float64(want[i]) - float64(got[i])
		num += d * d
		den += float64(want[i]) * float64(want[i])
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestPowerSGDExactOnLowRank: a gradient that is genuinely rank-2 under
// the pinned view must round-trip through a rank-4 compressor almost
// exactly — one power-iteration step captures the full subspace.
func TestPowerSGDExactOnLowRank(t *testing.T) {
	src := lowRankInput(40, 25, 2, 5)
	pc := NewPowerSGD(4, 9)
	pc.Rows, pc.Cols = 40, 25
	blob, err := pc.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pc.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(src, out); e > 1e-5 {
		t.Fatalf("rank-2 input through rank-4 compressor: relative error %g", e)
	}
}

// TestPowerSGDWarmStartSharpens: on a slowly rotating dominant subspace,
// the warm-started query must approximate later gradients better than a
// cold query re-initialized each step.
func TestPowerSGDWarmStartSharpens(t *testing.T) {
	const rows, cols = 32, 32
	warm := NewPowerSGD(2, 3)
	warm.Rows, warm.Cols = rows, cols
	cold := NewPowerSGD(2, 3)
	cold.Rows, cold.Cols = rows, cols
	cold.WarmStart = false

	var warmErr, coldErr float64
	base := lowRankInput(rows, cols, 2, 8)
	noise := kfacData(rows*cols, 77)
	src := make([]float32, rows*cols)
	for step := 0; step < 8; step++ {
		for i := range src {
			src[i] = base[i] + 0.05*noise[(i+step)%len(noise)]
		}
		for _, pc := range []*PowerSGD{warm, cold} {
			blob, err := pc.Compress(src)
			if err != nil {
				t.Fatal(err)
			}
			out, err := pc.Decompress(blob)
			if err != nil {
				t.Fatal(err)
			}
			if pc == warm {
				warmErr = relErr(src, out)
			} else {
				coldErr = relErr(src, out)
			}
		}
	}
	if warmErr > coldErr+1e-9 {
		t.Fatalf("warm-started error %g worse than cold %g", warmErr, coldErr)
	}
}

// TestPowerSGDGoldenBlobs locks the blob encoding bit-for-bit across
// seeds: the format, the deterministic query init and the float64
// Gram-Schmidt must not drift silently.
func TestPowerSGDGoldenBlobs(t *testing.T) {
	golden := map[int64][2]string{
		3:  {"8f0be982c2d222f19dc4b3d4d181b77d0075dabc74c46a1812ad8fff3733a1ff", "971d0bdc7d35106294c5a6def5874fcb532d76c30f9daf9606f6bf4f206b3a01"},
		11: {"439ab31dff9b2157945bfdfadeedf113428ed3c16ebf5627e60fa7c882f51f50", "48c0d385496c55662a681110b5cabe4960deea8b31f6a285127af9b2c0c0aa37"},
	}
	src := kfacData(1000, 13)
	for seed, want := range golden {
		pc := NewPowerSGD(4, seed)
		for step := 0; step < 2; step++ {
			blob, err := pc.Compress(src)
			if err != nil {
				t.Fatal(err)
			}
			sum := sha256.Sum256(blob)
			if got := hex.EncodeToString(sum[:]); got != want[step] {
				t.Fatalf("seed %d step %d: blob sha256 %s, want %s", seed, step, got, want[step])
			}
		}
	}
}

// ringWorld simulates world instances of the alternating-factor ring
// exchange for steps steps and returns each rank's final restored
// gradient plus the true mean gradient.
func ringWorld(t *testing.T, world, n, steps int) (restored [][]float32, mean []float32) {
	t.Helper()
	workers := make([]*PowerSGD, world)
	for r := range workers {
		workers[r] = NewPowerSGD(4, 99) // shared seed: the ring invariant
	}
	grads := make([][]float32, world)
	for r := range grads {
		grads[r] = kfacData(n, int64(1000+r))
	}
	mean = make([]float32, n)
	for i := 0; i < n; i++ {
		var s float64
		for r := range grads {
			s += float64(grads[r][i])
		}
		mean[i] = float32(s / float64(world))
	}
	restored = make([][]float32, world)
	for step := 0; step < steps; step++ {
		var sum []float64
		for r, w := range workers {
			f, err := w.ReduceFactor(grads[r])
			if err != nil {
				t.Fatalf("world %d rank %d step %d: %v", world, r, step, err)
			}
			if sum == nil {
				sum = make([]float64, len(f))
			} else if len(f) != len(sum) {
				t.Fatalf("world %d rank %d step %d: factor length %d, others %d", world, r, step, len(f), len(sum))
			}
			for i, v := range f {
				sum[i] += v
			}
		}
		for r, w := range workers {
			out, err := w.InstallReduced(sum, world)
			if err != nil {
				t.Fatalf("world %d rank %d step %d: %v", world, r, step, err)
			}
			restored[r] = out
		}
	}
	return restored, mean
}

// TestPowerSGDRingAgreement: for power-of-two and non-power-of-two world
// sizes, every rank's InstallReduced output must be bit-identical every
// step (the SPMD shared-factor invariant), and the reconstruction must
// track the mean gradient.
func TestPowerSGDRingAgreement(t *testing.T) {
	for _, world := range []int{2, 3, 4, 5} {
		restored, mean := ringWorld(t, world, 900, 6)
		for r := 1; r < world; r++ {
			for i := range restored[0] {
				if restored[r][i] != restored[0][i] {
					t.Fatalf("world %d: rank %d value %d = %g, rank 0 = %g — factor state diverged",
						world, r, i, restored[r][i], restored[0][i])
				}
			}
		}
		// Rank-4 on a 30x30 view of rough noise won't be tight, but the
		// reconstruction must correlate with the mean gradient.
		var dot, nm, nr float64
		for i := range mean {
			dot += float64(mean[i]) * float64(restored[0][i])
			nm += float64(mean[i]) * float64(mean[i])
			nr += float64(restored[0][i]) * float64(restored[0][i])
		}
		if nm == 0 || nr == 0 || dot/math.Sqrt(nm*nr) < 0.1 {
			t.Fatalf("world %d: reconstruction uncorrelated with mean gradient (cos=%g)",
				world, dot/math.Sqrt(nm*nr))
		}
	}
}

// TestPowerSGDLengthMismatch: the stream length pins on first use in both
// modes; a later change must surface ErrLengthMismatch.
func TestPowerSGDLengthMismatch(t *testing.T) {
	pc := NewPowerSGD(4, 1)
	if _, err := pc.Compress(kfacData(100, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Compress(kfacData(50, 1)); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("blob mode after length change: %v, want ErrLengthMismatch", err)
	}
	rc := NewPowerSGD(4, 1)
	if _, err := rc.ReduceFactor(kfacData(100, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.ReduceFactor(kfacData(99, 1)); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("ring mode after length change: %v, want ErrLengthMismatch", err)
	}
	// A pinned 2D view too small for the input fails without pinning.
	small := NewPowerSGD(2, 1)
	small.Rows, small.Cols = 4, 4
	if _, err := small.Compress(kfacData(100, 1)); err == nil {
		t.Fatal("16-slot view accepted 100 values")
	}
}

// TestPowerSGDDecompressCorrupt: hostile blobs must error, never panic
// or over-allocate.
func TestPowerSGDDecompressCorrupt(t *testing.T) {
	pc := NewPowerSGD(4, 2)
	valid, err := pc.Compress(kfacData(300, 2))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"magic only":     {magicLowRank},
		"truncated dims": valid[:4],
		"truncated body": valid[:len(valid)-3],
		"trailing":       append(append([]byte(nil), valid...), 1, 2),
	}
	// k > rows: n=4, rows=1, cols=4, k=3.
	bad := []byte{magicLowRank, 4, 1, 4, 3}
	cases["rank over rows"] = bad
	// rows*cols < n.
	cases["undersized shape"] = []byte{magicLowRank, 100, 3, 3, 1}
	for name, blob := range cases {
		if _, err := (&PowerSGD{}).Decompress(blob); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: %v, want ErrCorrupt", name, err)
		}
	}
	if out, err := (&PowerSGD{}).Decompress(valid); err != nil || len(out) != 300 {
		t.Fatalf("zero-value decode of a valid blob: %d values, %v", len(out), err)
	}
}

// TestPowerSGDStateful: State is a deep snapshot and Reset starts a new
// stream accepting a different length.
func TestPowerSGDStateful(t *testing.T) {
	pc := NewPowerSGD(4, 3)
	if _, err := pc.Compress(kfacData(200, 3)); err != nil {
		t.Fatal(err)
	}
	st := pc.State().(PowerSGDState)
	if st.Step != 1 || st.N != 200 || st.Q == nil {
		t.Fatalf("state after one step: %+v", st)
	}
	st.Q[0] = 1e9 // mutating the snapshot must not touch the live factor
	st2 := pc.State().(PowerSGDState)
	if st2.Q[0] == 1e9 {
		t.Fatal("State returned a shared slice")
	}
	pc.Reset()
	if _, err := pc.Compress(kfacData(64, 3)); err != nil {
		t.Fatalf("compress after Reset: %v", err)
	}
}

// TestPowerSGDEmptyStream: zero-length streams are valid in both modes.
func TestPowerSGDEmptyStream(t *testing.T) {
	pc := NewPowerSGD(4, 4)
	blob, err := pc.Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := (&PowerSGD{}).Decompress(blob)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty roundtrip: %d values, %v", len(out), err)
	}
	// The empty stream is pinned too.
	if _, err := pc.Compress(kfacData(8, 4)); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length change after empty pin: %v, want ErrLengthMismatch", err)
	}
	rc := NewPowerSGD(4, 4)
	f, err := rc.ReduceFactor(nil)
	if err != nil || len(f) != 0 {
		t.Fatalf("empty ReduceFactor: %v", err)
	}
	got, err := rc.InstallReduced(nil, 3)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty InstallReduced: %v", err)
	}
}

// TestPowerSGDFactorLen: the probe reports ring volumes without touching
// live state.
func TestPowerSGDFactorLen(t *testing.T) {
	pc := NewPowerSGD(4, 5)
	pc.Rows, pc.Cols = 100, 60
	even, odd, err := pc.FactorLen(6000)
	if err != nil {
		t.Fatal(err)
	}
	if even != 400 || odd != 240 {
		t.Fatalf("factor lengths %d/%d, want 400/240", even, odd)
	}
	if pc.n != 0 || pc.step != 0 {
		t.Fatal("FactorLen mutated live state")
	}
	if _, _, err := pc.FactorLen(6001); err == nil {
		t.Fatal("FactorLen accepted an input larger than the pinned view")
	}
}

// TestDecodeDispatch: the magic-byte dispatcher must route every
// family's blob to the right decoder and reject unknown magics.
func TestDecodeDispatch(t *testing.T) {
	src := kfacData(500, 6)
	comps := []Compressor{
		NewCOMPSO(6),
		NewQSGD(8, 6),
		NewSZ(1e-3),
		NewCocktailSGD(0.04, 8, 6),
		NewPowerSGD(4, 6),
	}
	for _, c := range comps {
		blob, err := c.Compress(src)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		want, err := c.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("%s: Decode: %v", c.Name(), err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: Decode %d values, want %d", c.Name(), len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: Decode value %d differs", c.Name(), i)
			}
		}
	}
	if _, err := Decode([]byte{0xEE, 1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown magic: %v, want ErrCorrupt", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty blob: %v, want ErrCorrupt", err)
	}
}
