package compress

import (
	"errors"
	"fmt"
	"strings"

	"compso/internal/encoding"
	"compso/internal/obs"
)

// ErrUnknownFamily is wrapped by ByName for unregistered compressor family
// names. Match with errors.Is; the message lists the registered families.
var ErrUnknownFamily = errors.New("compress: unknown compressor family")

// Options configures a registry-built compressor (ByName). The zero value
// selects each family's defaults; fields irrelevant to the chosen family
// are ignored. Defaults match the serving layer's session defaults, so a
// registry build and a serve session with the same wire config are
// bit-identical.
type Options struct {
	// Seed fixes the deterministic stochastic-rounding / query-init
	// stream (compso, qsgd, cocktail, powersgd).
	Seed int64

	// EBFilter and EBQuant are COMPSO's error bounds (default 4e-3 each).
	EBFilter, EBQuant float64
	// Filter toggles COMPSO's filter stage (default on).
	Filter *bool
	// Codec is COMPSO's lossless back-end (default ANS).
	Codec encoding.Codec
	// Obs receives COMPSO's per-call ratio/filter metrics.
	Obs *obs.Recorder

	// Bits is the quantization width for qsgd (default 4) and cocktail
	// (default 8).
	Bits int
	// Keep is cocktail's top-k keep fraction (default 0.04).
	Keep float64

	// RelEB is SZ's range-relative error bound (default 1e-3).
	RelEB float64

	// Rank is powersgd's factorization rank (default 4).
	Rank int
	// Rows and Cols optionally pin powersgd's 2D gradient view (both or
	// neither; zero selects the near-square reshape).
	Rows, Cols int
	// NoWarmStart disables powersgd's cross-step query reuse.
	NoWarmStart bool

	// ErrorFeedback wraps the built compressor with an error-feedback
	// residual — uniform across every lossy family.
	ErrorFeedback bool
}

// familyOrder is the registry in canonical order; names are matched
// case-insensitively by ByName.
var familyOrder = []string{"compso", "qsgd", "sz", "cocktail", "powersgd"}

// Families returns the registered compressor family names in canonical
// order, for flag help and serve discovery endpoints.
func Families() []string {
	return append([]string(nil), familyOrder...)
}

// CanonicalFamily resolves a family name case-insensitively (accepting the
// "lowrank" and "cocktailsgd" aliases) to its canonical registry name, or
// an error wrapping ErrUnknownFamily.
func CanonicalFamily(name string) (string, error) {
	switch strings.ToLower(name) {
	case "compso":
		return "compso", nil
	case "qsgd":
		return "qsgd", nil
	case "sz":
		return "sz", nil
	case "cocktail", "cocktailsgd":
		return "cocktail", nil
	case "powersgd", "lowrank":
		return "powersgd", nil
	}
	return "", fmt.Errorf("%w: %q (have %v)", ErrUnknownFamily, name, familyOrder)
}

// ByName builds a compressor family by registry name. It is the single
// construction path the facade, the command-line tools and the serving
// layer resolve through: per-family validation happens here, and the
// ErrorFeedback option composes uniformly on top of any family. Builds are
// bit-identical to the corresponding direct constructor calls.
func ByName(name string, o Options) (Compressor, error) {
	family, err := CanonicalFamily(name)
	if err != nil {
		return nil, err
	}
	var c Compressor
	switch family {
	case "compso":
		if o.EBFilter < 0 || o.EBQuant < 0 {
			return nil, fmt.Errorf("compress: compso: negative error bound")
		}
		cc := NewCOMPSO(o.Seed)
		if o.EBFilter > 0 {
			cc.EBFilter = o.EBFilter
		}
		if o.EBQuant > 0 {
			cc.EBQuant = o.EBQuant
		}
		if o.Filter != nil {
			cc.FilterEnabled = *o.Filter
		}
		if o.Codec != nil {
			cc.Codec = o.Codec
		}
		cc.Obs = o.Obs
		c = cc
	case "qsgd":
		bits := o.Bits
		if bits == 0 {
			bits = 4
		}
		if bits < 2 || bits > 16 {
			return nil, fmt.Errorf("compress: qsgd bits %d out of range [2,16]", bits)
		}
		c = NewQSGD(bits, o.Seed)
	case "sz":
		eb := o.RelEB
		if eb == 0 {
			eb = 1e-3
		}
		if eb < 0 {
			return nil, fmt.Errorf("compress: sz: negative error bound")
		}
		c = NewSZ(eb)
	case "cocktail":
		bits := o.Bits
		if bits == 0 {
			bits = 8
		}
		if bits < 2 || bits > 16 {
			return nil, fmt.Errorf("compress: cocktail bits %d out of range [2,16]", bits)
		}
		keep := o.Keep
		if keep == 0 {
			keep = 0.04
		}
		if keep <= 0 || keep > 1 {
			return nil, fmt.Errorf("compress: cocktail keep %g out of (0,1]", keep)
		}
		c = NewCocktailSGD(keep, bits, o.Seed)
	case "powersgd":
		rank := o.Rank
		if rank == 0 {
			rank = 4
		}
		if rank < 1 || rank > 1024 {
			return nil, fmt.Errorf("compress: powersgd rank %d out of range [1,1024]", rank)
		}
		if o.Rows < 0 || o.Cols < 0 || (o.Rows == 0) != (o.Cols == 0) {
			return nil, fmt.Errorf("compress: powersgd shape %dx%d (set both dims or neither)", o.Rows, o.Cols)
		}
		ps := NewPowerSGD(rank, o.Seed)
		ps.Rows, ps.Cols = o.Rows, o.Cols
		ps.WarmStart = !o.NoWarmStart
		c = ps
	}
	if o.ErrorFeedback {
		c = NewErrorFeedback(c)
	}
	return c, nil
}
