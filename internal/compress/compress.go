// Package compress implements the lossy gradient compressors the paper
// evaluates: COMPSO (the contribution — filter + stochastic rounding +
// lossless encoding, §4.3), and the three baselines QSGD (SR quantization +
// Elias coding), SZ (prediction + RN quantization + Huffman, the cuSZ
// algorithm), and CocktailSGD (top-k sparsification + 8-bit SR
// quantization). Each compressor produces a self-describing byte buffer and
// restores a float32 vector whose pointwise error respects the compressor's
// error-control setting.
//
// Compressor implementations are NOT safe for concurrent use (stochastic
// rounding consumes a per-compressor RNG stream); create one per worker, or
// use Chunked with a factory for data-parallel compression.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Compressor lossily compresses float32 gradient vectors.
type Compressor interface {
	// Name identifies the compressor in experiment output.
	Name() string
	// Compress encodes src. The input slice is not retained.
	Compress(src []float32) ([]byte, error)
	// Decompress restores a vector of the original length. It returns an
	// error on truncated or corrupt input.
	Decompress(data []byte) ([]float32, error)
}

// ErrCorrupt is wrapped by all decompressors on malformed input.
var ErrCorrupt = errors.New("compress: corrupt input")

// ErrLengthMismatch marks a stateful compressor fed a gradient whose length
// differs from the length its stream state was built for (e.g. an
// error-feedback residual). It is a caller error, not an internal fault.
var ErrLengthMismatch = errors.New("compress: gradient length mismatch")

// Magic bytes distinguishing the compressor formats; the first header byte
// of every compressed buffer.
const (
	magicQSGD     = 0x51 // 'Q'
	magicSZ       = 0x5a // 'Z'
	magicCocktail = 0x43 // 'C'
	magicCOMPSO   = 0x4f // 'O'
	magicLowRank  = 0x4c // 'L'
)

// Stateful is the optional contract for compressors that carry per-stream
// state — error-feedback residuals, PowerSGD's warm-started query factors,
// the pinned stream length. Holders of a long-lived Compressor (serve
// sessions, per-layer training streams) should type-assert for Stateful and
// Reset between logical streams instead of special-casing concrete types.
type Stateful interface {
	// Reset drops all stream state; the next Compress starts a fresh
	// stream (and may pin a new gradient length).
	Reset()
	// State returns a diagnostic snapshot of the stream state. The
	// returned value is a deep copy: mutating it never affects the
	// compressor.
	State() any
}

// Restorable is the optional contract for compressors whose stream state
// can be re-installed from a State() snapshot — the checkpoint/restore
// path. Restore accepts exactly the value the same type's State returned
// and must leave the compressor bit-identical to the snapshotted one: the
// next Compress produces the same bytes the original would have. Restore
// rejects snapshots of the wrong type or an incompatible shape with an
// error and leaves the receiver unchanged on failure.
type Restorable interface {
	Stateful
	Restore(state any) error
}

// Decode decompresses a self-describing blob from any registered family,
// dispatching on the magic byte. Every family's decode path is
// receiver-stateless (blobs carry their own parameters), so a zero-value
// decoder restores the vector exactly as the originating instance would.
// Mixed-family streams — e.g. a per-layer compressor plan where large
// layers go low-rank and the rest COMPSO — decode through this single
// entry point.
func Decode(data []byte) ([]float32, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty buffer", ErrCorrupt)
	}
	switch data[0] {
	case magicCOMPSO:
		return (&COMPSO{}).Decompress(data)
	case magicQSGD:
		return (&QSGD{}).Decompress(data)
	case magicSZ:
		return (&SZ{}).Decompress(data)
	case magicCocktail:
		return (&CocktailSGD{}).Decompress(data)
	case magicLowRank:
		return (&PowerSGD{}).Decompress(data)
	default:
		return nil, fmt.Errorf("%w: unknown magic byte %#x", ErrCorrupt, data[0])
	}
}

// Ratio returns the compression ratio achieved for n float32 values
// compressed into len(data) bytes (the paper's CR metric: original bytes /
// compressed bytes).
func Ratio(n int, data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	return float64(4*n) / float64(len(data))
}

// header is the common prefix: magic byte + uvarint element count.
func putHeader(dst []byte, magic byte, n int) []byte {
	dst = append(dst, magic)
	return binary.AppendUvarint(dst, uint64(n))
}

func getHeader(src []byte, magic byte, name string) (n int, rest []byte, err error) {
	if len(src) == 0 {
		return 0, nil, fmt.Errorf("%w: %s: empty buffer", ErrCorrupt, name)
	}
	if src[0] != magic {
		return 0, nil, fmt.Errorf("%w: %s: magic byte %#x", ErrCorrupt, name, src[0])
	}
	v, used := binary.Uvarint(src[1:])
	if used <= 0 || v > 1<<31 {
		return 0, nil, fmt.Errorf("%w: %s: bad element count", ErrCorrupt, name)
	}
	return int(v), src[1+used:], nil
}

// PeekElements parses the common blob header — magic byte plus uvarint
// element count — without decoding the payload. Every decoder sizes its
// output and scratch buffers from this untrusted count, so servers must
// enforce their element caps on the peeked value before calling Decompress;
// the count alone can demand gigabytes from a blob a few dozen bytes long.
func PeekElements(data []byte) (int, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("%w: empty buffer", ErrCorrupt)
	}
	switch data[0] {
	case magicQSGD, magicSZ, magicCocktail, magicCOMPSO, magicLowRank:
	default:
		return 0, fmt.Errorf("%w: unknown magic byte %#x", ErrCorrupt, data[0])
	}
	n, _, err := getHeader(data, data[0], "blob")
	return n, err
}

func putFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func getFloat64(src []byte, name string) (float64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("%w: %s: truncated float", ErrCorrupt, name)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(src)), src[8:], nil
}
