//go:build !race

package compress

import (
	"testing"

	"compso/internal/xrand"
)

// Steady-state allocation guards for the fused hot paths: after warm-up has
// populated the buffer arena, a Compress or Decompress call may allocate the
// returned blob/value slice and a handful of bookkeeping cells, but must not
// re-materialize per-stage intermediates. The bounds are deliberately above
// the observed counts (sync.Pool can shed buffers under GC pressure) yet far
// below the dozens of allocations the multi-pass pipeline made per call.
// (Excluded under -race: the detector's instrumentation skews alloc counts.)

func steadyGradient(n int) []float32 {
	src := make([]float32, n)
	xrand.KFACGradient(xrand.NewSeeded(3), src, 1.0)
	return src
}

func TestCOMPSOCompressSteadyStateAllocs(t *testing.T) {
	c := NewCOMPSO(3)
	src := steadyGradient(1 << 16)
	for i := 0; i < 4; i++ { // warm the arena
		if _, err := c.Compress(src); err != nil {
			t.Fatal(err)
		}
	}
	var sink []byte
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		sink, err = c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
	})
	_ = sink
	if allocs > 8 {
		t.Fatalf("COMPSO Compress steady state: %.1f allocs/op, want <= 8", allocs)
	}
}

func TestCOMPSODecompressSteadyStateAllocs(t *testing.T) {
	c := NewCOMPSO(3)
	src := steadyGradient(1 << 16)
	blob, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Decompress(blob); err != nil {
			t.Fatal(err)
		}
	}
	var sink []float32
	allocs := testing.AllocsPerRun(20, func() {
		var err error
		sink, err = c.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
	})
	_ = sink
	if allocs > 16 {
		t.Fatalf("COMPSO Decompress steady state: %.1f allocs/op, want <= 16", allocs)
	}
}
