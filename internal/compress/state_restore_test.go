package compress

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// These tests enforce the Stateful/Restorable contract the checkpoint
// layer depends on: State() snapshots must be deep — mutating the live
// compressor after taking a snapshot must not change the snapshot, and
// mutating the snapshot must not change the live compressor — and
// Restore() must continue the stream bit-exactly from the snapshotted
// position.

func srcVec(n int, scale float32) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = scale * float32(math.Sin(float64(i)*0.7))
	}
	return v
}

func TestCOMPSOSnapshotIsolation(t *testing.T) {
	c := NewCOMPSO(11)
	in := srcVec(64, 3)
	if _, err := c.Compress(in); err != nil {
		t.Fatal(err)
	}
	st := c.State().(COMPSOState)
	snap := append([]byte(nil), st.RNG...)

	// Advancing the live RNG must not disturb the snapshot bytes.
	if _, err := c.Compress(in); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.RNG, snap) {
		t.Fatal("COMPSO snapshot RNG bytes changed when the live stream advanced")
	}
	// Mutating the snapshot must not disturb the live compressor.
	before := c.State().(COMPSOState)
	for i := range st.RNG {
		st.RNG[i] ^= 0xff
	}
	if !bytes.Equal(c.State().(COMPSOState).RNG, before.RNG) {
		t.Fatal("mutating a COMPSO snapshot perturbed the live RNG state")
	}
}

func TestCOMPSORestoreContinuesStream(t *testing.T) {
	in := srcVec(256, 2)
	c1 := NewCOMPSO(5)
	if _, err := c1.Compress(in); err != nil {
		t.Fatal(err)
	}
	st := c1.State()

	c2 := NewCOMPSO(999) // deliberately different stream position
	if err := c2.Restore(st); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		b1, err := c1.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := c2.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("round %d: restored COMPSO stream diverged", round)
		}
	}
}

func TestCOMPSOResetRestartsFromSeed(t *testing.T) {
	in := srcVec(128, 1)
	c := NewCOMPSO(21)
	for i := 0; i < 4; i++ {
		if _, err := c.Compress(in); err != nil {
			t.Fatal(err)
		}
	}
	c.Reset()
	got, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewCOMPSO(21).Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Reset did not restart the stochastic-rounding stream from the construction seed")
	}
}

func TestErrorFeedbackSnapshotIsolation(t *testing.T) {
	ef := NewErrorFeedback(NewPowerSGD(2, 3))
	in := srcVec(30, 4)
	if _, err := ef.Compress(in); err != nil {
		t.Fatal(err)
	}
	st := ef.State().(ErrorFeedbackState)
	resid := append([]float32(nil), st.Residual...)
	innerSt := st.Inner.(PowerSGDState)
	p := append([]float64(nil), innerSt.P...)

	// Advance the live stack: residual and PowerSGD factors both mutate.
	if _, err := ef.Compress(in); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Residual, resid) {
		t.Fatal("EF residual snapshot aliased the live residual buffer")
	}
	if !reflect.DeepEqual(innerSt.P, p) {
		t.Fatal("PowerSGD P-factor snapshot aliased the live factor buffer")
	}

	// Mutating the snapshot must leave the live stack untouched.
	live := ef.State().(ErrorFeedbackState)
	for i := range st.Residual {
		st.Residual[i] += 100
	}
	for i := range innerSt.P {
		innerSt.P[i] -= 100
	}
	after := ef.State().(ErrorFeedbackState)
	if !reflect.DeepEqual(live.Residual, after.Residual) {
		t.Fatal("mutating an EF snapshot perturbed the live residual")
	}
	if !reflect.DeepEqual(live.Inner.(PowerSGDState).P, after.Inner.(PowerSGDState).P) {
		t.Fatal("mutating an inner snapshot perturbed the live PowerSGD factors")
	}
}

func TestErrorFeedbackRestoreContinuesStream(t *testing.T) {
	in := srcVec(48, 2)
	ef1 := NewErrorFeedback(NewPowerSGD(2, 7))
	for i := 0; i < 2; i++ {
		if _, err := ef1.Compress(in); err != nil {
			t.Fatal(err)
		}
	}
	st := ef1.State()

	ef2 := NewErrorFeedback(NewPowerSGD(2, 7))
	if err := ef2.Restore(st); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		b1, err := ef1.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := ef2.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("round %d: restored EF+PowerSGD stream diverged", round)
		}
	}
}

func TestErrorFeedbackRestoreRejectsNonRestorableInner(t *testing.T) {
	// topk is Stateful via EF only when wrapped; use a bare stateless inner
	// that cannot accept the PowerSGD state the snapshot carries.
	ef1 := NewErrorFeedback(NewPowerSGD(2, 1))
	in := srcVec(12, 1)
	if _, err := ef1.Compress(in); err != nil {
		t.Fatal(err)
	}
	st := ef1.State()

	ef2 := NewErrorFeedback(statelessStub{})
	if err := ef2.Restore(st); err == nil {
		t.Fatal("restore with inner state into a non-Restorable inner compressor succeeded")
	}
}

func TestPowerSGDRestoreValidatesShapes(t *testing.T) {
	pc := NewPowerSGD(2, 1)
	bad := PowerSGDState{N: 10, Rows: 2, Cols: 2, Rank: 2} // 2x2 < 10
	if err := pc.Restore(bad); err == nil {
		t.Fatal("restore accepted a shape that cannot hold the pinned length")
	}
	bad2 := PowerSGDState{N: 4, Rows: 2, Cols: 2, Rank: 2, P: []float64{1}}
	if err := pc.Restore(bad2); err == nil {
		t.Fatal("restore accepted a P factor of the wrong size")
	}
}

type statelessStub struct{}

func (statelessStub) Name() string                           { return "stateless-stub" }
func (statelessStub) Compress(src []float32) ([]byte, error) { return make([]byte, len(src)), nil }
func (statelessStub) Decompress(data []byte) ([]float32, error) {
	return make([]float32, len(data)), nil
}
