package compress

import (
	"bytes"
	"testing"

	"compso/internal/encoding"
	"compso/internal/quant"
	"compso/internal/xrand"
)

func fusedTestInputs(t *testing.T) map[string][]float32 {
	t.Helper()
	grad := make([]float32, 10000)
	xrand.KFACGradient(xrand.NewSeeded(7), grad, 1.0)
	small := make([]float32, 33)
	xrand.KFACGradient(xrand.NewSeeded(9), small, 1e-3)
	return map[string][]float32{
		"empty":    {},
		"one":      {0.125},
		"zeros":    make([]float32, 100),
		"small":    small,
		"gradient": grad,
	}
}

// TestCOMPSOFusedMatchesReference proves the fused single-pass Compress and
// Decompress are byte- and value-identical to the preserved multi-pass
// pipeline across filter/rounding/packing/codec configurations, including
// identical RNG stream consumption (same seed → same blob from either path).
func TestCOMPSOFusedMatchesReference(t *testing.T) {
	inputs := fusedTestInputs(t)
	codecs := []encoding.Codec{nil, encoding.Cascaded{}, encoding.Snappy{}}
	for _, filterOn := range []bool{true, false} {
		for _, mode := range []quant.Mode{quant.SR, quant.RN, quant.P05} {
			for _, bitPacked := range []bool{false, true} {
				for ci, cdc := range codecs {
					for name, src := range inputs {
						mk := func(seed int64) *COMPSO {
							c := NewCOMPSO(seed)
							c.FilterEnabled = filterOn
							c.Rounding = mode
							c.BitPacked = bitPacked
							c.Codec = cdc
							return c
						}
						fused, ref := mk(31), mk(31)
						// Two rounds back to back so RNG stream position
						// stays aligned across calls, not just on call one.
						for round := 0; round < 2; round++ {
							fb, err := fused.Compress(src)
							if err != nil {
								t.Fatalf("fused Compress: %v", err)
							}
							rb, err := ref.ReferenceCompress(src)
							if err != nil {
								t.Fatalf("ReferenceCompress: %v", err)
							}
							if !bytes.Equal(fb, rb) {
								t.Fatalf("filter=%v mode=%v packed=%v codec=%d input=%q round %d: fused blob differs from reference",
									filterOn, mode, bitPacked, ci, name, round)
							}
							if fused.LastFilterKept != ref.LastFilterKept || fused.LastFilterTotal != ref.LastFilterTotal {
								t.Fatalf("filter counters diverge: fused %d/%d ref %d/%d",
									fused.LastFilterKept, fused.LastFilterTotal, ref.LastFilterKept, ref.LastFilterTotal)
							}
							fv, err := fused.Decompress(rb)
							if err != nil {
								t.Fatalf("fused Decompress: %v", err)
							}
							rv, err := ref.ReferenceDecompress(fb)
							if err != nil {
								t.Fatalf("ReferenceDecompress: %v", err)
							}
							if len(fv) != len(rv) {
								t.Fatalf("decompressed lengths differ: %d vs %d", len(fv), len(rv))
							}
							for i := range fv {
								if fv[i] != rv[i] {
									t.Fatalf("input %q element %d: fused %g, reference %g", name, i, fv[i], rv[i])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestSZFusedMatchesReference checks SZ's fused pipeline against the
// multi-pass original.
func TestSZFusedMatchesReference(t *testing.T) {
	for _, eb := range []float64{1e-1, 4e-3} {
		s := NewSZ(eb)
		for name, src := range fusedTestInputs(t) {
			fb, err := s.Compress(src)
			if err != nil {
				t.Fatalf("fused Compress: %v", err)
			}
			rb, err := s.ReferenceCompress(src)
			if err != nil {
				t.Fatalf("ReferenceCompress: %v", err)
			}
			if !bytes.Equal(fb, rb) {
				t.Fatalf("eb=%g input=%q: fused SZ blob differs from reference", eb, name)
			}
			got, err := s.Decompress(fb)
			if err != nil {
				t.Fatalf("Decompress: %v", err)
			}
			if len(got) != len(src) {
				t.Fatalf("decompressed %d values, want %d", len(got), len(src))
			}
		}
	}
}

// TestQSGDFusedMatchesReference checks QSGD's fused pipeline — including
// identical stochastic-rounding stream consumption — against the multi-pass
// original.
func TestQSGDFusedMatchesReference(t *testing.T) {
	for _, bits := range []int{4, 8} {
		fused, ref := NewQSGD(bits, 17), NewQSGD(bits, 17)
		for name, src := range fusedTestInputs(t) {
			for round := 0; round < 2; round++ {
				fb, err := fused.Compress(src)
				if err != nil {
					t.Fatalf("fused Compress: %v", err)
				}
				rb, err := ref.ReferenceCompress(src)
				if err != nil {
					t.Fatalf("ReferenceCompress: %v", err)
				}
				if !bytes.Equal(fb, rb) {
					t.Fatalf("bits=%d input=%q round %d: fused QSGD blob differs from reference", bits, name, round)
				}
				if _, err := fused.Decompress(fb); err != nil {
					t.Fatalf("Decompress: %v", err)
				}
			}
		}
	}
}
