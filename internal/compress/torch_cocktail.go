package compress

import (
	"math"
	"math/rand/v2"
	"sort"

	"compso/internal/xrand"
)

// TorchCocktailSGD is CocktailSGD executed framework-style: the top-k
// threshold comes from a full magnitude sort (no sampling shortcut) and the
// quantization runs as separate materialized passes, reproducing the
// "relatively slow Top-k sparsification ... and its implementation in
// PyTorch" that makes CocktailSGD the slowest pipeline in Figure 8.
type TorchCocktailSGD struct {
	KeepFraction float64
	Bits         int
	rng          *rand.Rand
}

// NewTorchCocktailSGD returns the multi-pass CocktailSGD variant.
func NewTorchCocktailSGD(keep float64, bitWidth int, seed int64) *TorchCocktailSGD {
	return &TorchCocktailSGD{KeepFraction: keep, Bits: bitWidth, rng: xrand.NewSeeded(seed)}
}

// Name implements Compressor.
func (t *TorchCocktailSGD) Name() string { return "CocktailSGD (torch)" }

// Compress implements Compressor.
func (t *TorchCocktailSGD) Compress(src []float32) ([]byte, error) {
	// Kernel 1: materialized |src|.
	mags := make([]float64, len(src))
	for i, v := range src {
		mags[i] = math.Abs(float64(v))
	}
	// Kernel 2: full sort for the exact top-k threshold.
	sorted := append([]float64(nil), mags...)
	sort.Float64s(sorted)
	threshold := 0.0
	if len(sorted) > 0 {
		cut := int(float64(len(sorted)) * (1 - t.KeepFraction))
		if cut >= len(sorted) {
			cut = len(sorted) - 1
		}
		threshold = sorted[cut]
	}
	// Kernels 3+: reuse the sampling implementation for selection and
	// quantization by pinning its threshold via a huge sample.
	inner := &CocktailSGD{KeepFraction: t.KeepFraction, Bits: t.Bits, SampleSize: len(src) + 1, rng: t.rng}
	_ = threshold // the exact threshold is recomputed inside from the full "sample"
	return inner.Compress(src)
}

// Decompress implements Compressor.
func (t *TorchCocktailSGD) Decompress(data []byte) ([]float32, error) {
	inner := &CocktailSGD{KeepFraction: t.KeepFraction, Bits: t.Bits, rng: t.rng}
	return inner.Decompress(data)
}
