package compress

import (
	"errors"
	"strings"
	"testing"
)

// registryIdentityCases pairs each family's registry build with the
// direct constructor it must be bit-identical to.
func registryIdentityCases(seed int64) []struct {
	family string
	opts   Options
	direct func() Compressor
} {
	return []struct {
		family string
		opts   Options
		direct func() Compressor
	}{
		{"compso", Options{Seed: seed}, func() Compressor { return NewCOMPSO(seed) }},
		{"qsgd", Options{Seed: seed, Bits: 8}, func() Compressor { return NewQSGD(8, seed) }},
		{"sz", Options{RelEB: 4e-3}, func() Compressor { return NewSZ(4e-3) }},
		{"cocktail", Options{Seed: seed, Keep: 0.2, Bits: 8}, func() Compressor { return NewCocktailSGD(0.2, 8, seed) }},
		{"powersgd", Options{Seed: seed, Rank: 4}, func() Compressor { return NewPowerSGD(4, seed) }},
	}
}

// TestByNameBitIdentity: a registry build must behave bit-identically to
// the direct constructor over multiple steps (stateful families drift if
// any knob is defaulted differently).
func TestByNameBitIdentity(t *testing.T) {
	src := kfacData(700, 17)
	for _, tc := range registryIdentityCases(17) {
		reg, err := ByName(tc.family, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		direct := tc.direct()
		for step := 0; step < 3; step++ {
			rb, err := reg.Compress(src)
			if err != nil {
				t.Fatalf("%s step %d: %v", tc.family, step, err)
			}
			db, err := direct.Compress(src)
			if err != nil {
				t.Fatalf("%s step %d: %v", tc.family, step, err)
			}
			if string(rb) != string(db) {
				t.Fatalf("%s step %d: registry blob differs from direct construction", tc.family, step)
			}
		}
	}
}

// TestByNameErrorFeedbackEquivalence: the ErrorFeedback option must
// compose identically to hand-wrapping the direct constructor, on every
// family.
func TestByNameErrorFeedbackEquivalence(t *testing.T) {
	src := kfacData(600, 23)
	for _, tc := range registryIdentityCases(23) {
		opts := tc.opts
		opts.ErrorFeedback = true
		reg, err := ByName(tc.family, opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.family, err)
		}
		if _, ok := reg.(*ErrorFeedback); !ok {
			t.Fatalf("%s: ErrorFeedback option built %T", tc.family, reg)
		}
		direct := NewErrorFeedback(tc.direct())
		if reg.Name() != direct.Name() {
			t.Fatalf("%s: name %q vs %q", tc.family, reg.Name(), direct.Name())
		}
		for step := 0; step < 3; step++ {
			rb, err := reg.Compress(src)
			if err != nil {
				t.Fatalf("%s step %d: %v", tc.family, step, err)
			}
			db, err := direct.Compress(src)
			if err != nil {
				t.Fatalf("%s step %d: %v", tc.family, step, err)
			}
			if string(rb) != string(db) {
				t.Fatalf("%s step %d: EF-wrapped registry blob differs from direct wrap", tc.family, step)
			}
		}
	}
}

// TestByNameDefaults: zero Options must select each family's documented
// defaults (the serve session defaults).
func TestByNameDefaults(t *testing.T) {
	for family, want := range map[string]Compressor{
		"compso":   NewCOMPSO(0),
		"qsgd":     NewQSGD(4, 0),
		"sz":       NewSZ(1e-3),
		"cocktail": NewCocktailSGD(0.04, 8, 0),
		"powersgd": NewPowerSGD(4, 0),
	} {
		got, err := ByName(family, Options{})
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if got.Name() != want.Name() {
			t.Fatalf("%s default: %q, want %q", family, got.Name(), want.Name())
		}
	}
}

// TestByNameValidation: out-of-range knobs must fail at construction, not
// at first Compress.
func TestByNameValidation(t *testing.T) {
	cases := []struct {
		family string
		opts   Options
	}{
		{"qsgd", Options{Bits: 32}}, // used to panic inside Compress via serve
		{"qsgd", Options{Bits: 1}},
		{"cocktail", Options{Keep: 1.5}},
		{"cocktail", Options{Bits: 20}},
		{"sz", Options{RelEB: -1}},
		{"compso", Options{EBFilter: -1}},
		{"powersgd", Options{Rank: 2000}},
		{"powersgd", Options{Rows: 10}}, // one-sided shape pin
	}
	for _, tc := range cases {
		if _, err := ByName(tc.family, tc.opts); err == nil {
			t.Errorf("%s %+v: accepted", tc.family, tc.opts)
		}
	}
	if _, err := ByName("zfp", Options{}); !errors.Is(err, ErrUnknownFamily) {
		t.Fatalf("unknown family: %v, want ErrUnknownFamily", err)
	}
}

// TestCanonicalFamily: aliases and case folding resolve; Families lists
// the canonical order.
func TestCanonicalFamily(t *testing.T) {
	for in, want := range map[string]string{
		"COMPSO":      "compso",
		"lowrank":     "powersgd",
		"PowerSGD":    "powersgd",
		"CocktailSGD": "cocktail",
		"cocktail":    "cocktail",
	} {
		got, err := CanonicalFamily(in)
		if err != nil || got != want {
			t.Errorf("CanonicalFamily(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if got := strings.Join(Families(), ","); got != "compso,qsgd,sz,cocktail,powersgd" {
		t.Fatalf("Families() = %q", got)
	}
	if _, err := CanonicalFamily("nope"); !errors.Is(err, ErrUnknownFamily) {
		t.Fatalf("CanonicalFamily(nope): %v", err)
	}
}

// failingCompressor errors on Compress for a controllable number of
// calls — the EF first-use regression needs an inner failure before the
// pin existed.
type failingCompressor struct {
	fails int
	inner Compressor
}

func (f *failingCompressor) Name() string { return "failing" }
func (f *failingCompressor) Compress(src []float32) ([]byte, error) {
	if f.fails > 0 {
		f.fails--
		return nil, errors.New("injected compress failure")
	}
	return f.inner.Compress(src)
}
func (f *failingCompressor) Decompress(data []byte) ([]float32, error) {
	return f.inner.Decompress(data)
}

// TestErrorFeedbackPinsLengthOnFailedFirstUse: the stream length must pin
// on the FIRST Compress even when the inner compressor fails, so a
// different length on retry is ErrLengthMismatch — not a silent re-pin
// feeding a state-bound inner compressor a foreign shape.
func TestErrorFeedbackPinsLengthOnFailedFirstUse(t *testing.T) {
	ef := NewErrorFeedback(&failingCompressor{fails: 1, inner: NewQSGD(8, 1)})
	if _, err := ef.Compress(kfacData(100, 1)); err == nil {
		t.Fatal("injected failure did not surface")
	}
	if _, err := ef.Compress(kfacData(50, 1)); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length change after failed first use: %v, want ErrLengthMismatch", err)
	}
	// The original length still works once the inner recovers.
	if _, err := ef.Compress(kfacData(100, 1)); err != nil {
		t.Fatalf("pinned length after recovery: %v", err)
	}
	// Reset clears the pin.
	ef.Reset()
	if _, err := ef.Compress(kfacData(50, 1)); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

// TestErrorFeedbackState: the Stateful snapshot carries the pin, a
// residual copy and the inner snapshot.
func TestErrorFeedbackState(t *testing.T) {
	ef := NewErrorFeedback(NewPowerSGD(4, 2))
	if _, err := ef.Compress(kfacData(120, 2)); err != nil {
		t.Fatal(err)
	}
	st := ef.State().(ErrorFeedbackState)
	if st.Expect != 120 || len(st.Residual) != 120 {
		t.Fatalf("state: expect=%d residual=%d", st.Expect, len(st.Residual))
	}
	inner, ok := st.Inner.(PowerSGDState)
	if !ok || inner.Step != 1 {
		t.Fatalf("inner snapshot: %#v", st.Inner)
	}
	st.Residual[0] = 42
	if ef.State().(ErrorFeedbackState).Residual[0] == 42 {
		t.Fatal("State returned a shared residual slice")
	}
	ef.Reset()
	rst := ef.State().(ErrorFeedbackState)
	if rst.Expect != 0 || rst.Residual != nil {
		t.Fatalf("state after Reset: %+v", rst)
	}
	if inner := rst.Inner.(PowerSGDState); inner.Step != 0 {
		t.Fatal("Reset did not cascade to the Stateful inner")
	}
}
