package compress

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"compso/internal/encoding"
	"compso/internal/quant"
	"compso/internal/xrand"
)

// kfacData returns a synthetic K-FAC gradient vector.
func kfacData(n int, seed int64) []float32 {
	src := make([]float32, n)
	xrand.KFACGradient(xrand.NewSeeded(seed), src, 1.0)
	return src
}

func allCompressors() []Compressor {
	return []Compressor{
		NewQSGD(8, 1),
		NewQSGD(4, 2),
		NewSZ(4e-3),
		NewSZ(1e-1),
		NewCocktailSGD(0.2, 8, 3),
		NewCOMPSO(4),
		NewTorchQSGD(8, 5),
		NewTorchCocktailSGD(0.2, 8, 6),
	}
}

func TestRoundTripLengths(t *testing.T) {
	src := kfacData(10000, 1)
	for _, c := range allCompressors() {
		data, err := c.Compress(src)
		if err != nil {
			t.Fatalf("%s: compress: %v", c.Name(), err)
		}
		out, err := c.Decompress(data)
		if err != nil {
			t.Fatalf("%s: decompress: %v", c.Name(), err)
		}
		if len(out) != len(src) {
			t.Fatalf("%s: got %d values, want %d", c.Name(), len(out), len(src))
		}
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	for _, c := range allCompressors() {
		for _, src := range [][]float32{{}, {0.5}, {0, 0, 0}} {
			data, err := c.Compress(src)
			if err != nil {
				t.Fatalf("%s/%d: compress: %v", c.Name(), len(src), err)
			}
			out, err := c.Decompress(data)
			if err != nil {
				t.Fatalf("%s/%d: decompress: %v", c.Name(), len(src), err)
			}
			if len(out) != len(src) {
				t.Fatalf("%s/%d: length %d", c.Name(), len(src), len(out))
			}
		}
	}
}

func TestCOMPSOErrorBound(t *testing.T) {
	src := kfacData(50000, 2)
	c := NewCOMPSO(7)
	data, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	bound := c.MaxError()
	for i := range src {
		if e := math.Abs(float64(out[i] - src[i])); e > bound+1e-7 {
			t.Fatalf("error %g at %d exceeds bound %g", e, i, bound)
		}
	}
}

func TestCOMPSOSROnlyMode(t *testing.T) {
	src := kfacData(20000, 3)
	c := NewCOMPSO(8)
	c.FilterEnabled = false
	c.EBQuant = 2e-3
	data, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if e := math.Abs(float64(out[i] - src[i])); e > 2e-3+1e-7 {
			t.Fatalf("SR-only error %g at %d exceeds 2e-3", e, i)
		}
	}
}

func TestCOMPSOFilterImprovesRatio(t *testing.T) {
	src := kfacData(100000, 4)
	withFilter := NewCOMPSO(9)
	noFilter := NewCOMPSO(10)
	noFilter.FilterEnabled = false
	d1, err := withFilter.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := noFilter.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) >= len(d2) {
		t.Fatalf("filter did not help: %d vs %d bytes", len(d1), len(d2))
	}
}

func TestCOMPSOBeatsBaselinesOnRatio(t *testing.T) {
	// Figure 3 / §5.2: COMPSO's CR (~20x) well above accuracy-preserving
	// QSGD-8bit and SZ-4E-3 on K-FAC gradients.
	src := kfacData(200000, 5)
	ratio := func(c Compressor) float64 {
		d, err := c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		return Ratio(len(src), d)
	}
	compso := ratio(NewCOMPSO(11))
	qsgd8 := ratio(NewQSGD(8, 12))
	sz := ratio(NewSZ(4e-3))
	if compso <= qsgd8 || compso <= sz {
		t.Fatalf("COMPSO ratio %.1f should beat QSGD-8bit %.1f and SZ-4E-3 %.1f", compso, qsgd8, sz)
	}
	if compso < 10 {
		t.Fatalf("COMPSO ratio %.1f, want >= 10 on K-FAC gradients", compso)
	}
}

func TestQSGDErrorBoundedByScale(t *testing.T) {
	src := kfacData(20000, 6)
	q := NewQSGD(8, 13)
	data, err := q.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := q.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := 0.0
	for _, v := range src {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	for i := range src {
		if e := math.Abs(float64(out[i] - src[i])); e > scale+1e-7 {
			t.Fatalf("QSGD error %g at %d exceeds scale %g", e, i, scale)
		}
	}
}

func TestSZErrorBound(t *testing.T) {
	src := kfacData(20000, 7)
	var minV, maxV float64
	for _, v := range src {
		minV = math.Min(minV, float64(v))
		maxV = math.Max(maxV, float64(v))
	}
	for _, rel := range []float64{1e-1, 4e-3} {
		s := NewSZ(rel)
		data, err := s.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Decompress(data)
		if err != nil {
			t.Fatal(err)
		}
		bound := rel * (maxV - minV)
		for i := range src {
			if e := math.Abs(float64(out[i] - src[i])); e > bound*1.001+1e-6 {
				t.Fatalf("SZ-%g error %g at %d exceeds %g", rel, e, i, bound)
			}
		}
	}
}

func TestCocktailKeepsRoughlyKeepFraction(t *testing.T) {
	src := kfacData(50000, 8)
	c := NewCocktailSGD(0.2, 8, 14)
	data, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := 0
	for _, v := range out {
		if v != 0 {
			nonzero++
		}
	}
	frac := float64(nonzero) / float64(len(src))
	if frac < 0.1 || frac > 0.35 {
		t.Fatalf("kept fraction %.3f, want ~0.2", frac)
	}
}

func TestCocktailKeepsLargestMagnitudes(t *testing.T) {
	src := make([]float32, 1000)
	for i := range src {
		src[i] = 0.001
	}
	src[17] = 5.0
	src[423] = -7.0
	c := NewCocktailSGD(0.05, 8, 15)
	data, err := c.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(out[17]-5.0)) > 0.1 || math.Abs(float64(out[423]+7.0)) > 0.1 {
		t.Fatalf("top values lost: out[17]=%g out[423]=%g", out[17], out[423])
	}
}

func TestDecompressWrongMagic(t *testing.T) {
	src := kfacData(100, 9)
	q := NewQSGD(8, 16)
	data, err := q.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSZ(1e-2).Decompress(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong-magic decompress err = %v, want ErrCorrupt", err)
	}
}

func TestDecompressTruncated(t *testing.T) {
	src := kfacData(5000, 10)
	for _, c := range allCompressors() {
		data, err := c.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{0, 1, 5, len(data) / 2} {
			out, err := c.Decompress(data[:cut])
			if err == nil && len(out) == len(src) {
				same := true
				for i := range out {
					if out[i] != src[i] {
						same = false
						break
					}
				}
				if same {
					continue
				}
				// A silent wrong-length or wrong-content decode is the bug.
				t.Errorf("%s: truncation to %d decoded silently", c.Name(), cut)
			}
		}
	}
}

func TestCOMPSOAllCodecs(t *testing.T) {
	src := kfacData(20000, 11)
	for _, codec := range encoding.All() {
		c := NewCOMPSO(17)
		c.Codec = codec
		data, err := c.Compress(src)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		out, err := c.Decompress(data)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		for i := range src {
			if e := math.Abs(float64(out[i] - src[i])); e > c.MaxError()+1e-7 {
				t.Fatalf("%s: error %g at %d", codec.Name(), e, i)
			}
		}
	}
}

func TestChunkedMatchesUnchunkedSemantics(t *testing.T) {
	src := kfacData(30000, 12)
	ch := &Chunked{
		New:       func(seed int64) Compressor { return NewCOMPSO(seed) },
		ChunkSize: 4096,
		Seed:      100,
	}
	data, err := ch.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ch.Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(src) {
		t.Fatalf("len %d, want %d", len(out), len(src))
	}
	for i := range src {
		if e := math.Abs(float64(out[i] - src[i])); e > 4e-3+1e-7 {
			t.Fatalf("chunked error %g at %d", e, i)
		}
	}
}

func TestChunkedEmptyInput(t *testing.T) {
	ch := &Chunked{New: func(seed int64) Compressor { return NewQSGD(8, seed) }, ChunkSize: 128}
	data, err := ch.Compress(nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ch.Decompress(data)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty chunked: %v len %d", err, len(out))
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(100, make([]byte, 40)); got != 10 {
		t.Fatalf("Ratio = %g, want 10", got)
	}
	if got := Ratio(100, nil); got != 0 {
		t.Fatalf("Ratio(empty) = %g, want 0", got)
	}
}

func TestCOMPSOInvalidConfig(t *testing.T) {
	c := NewCOMPSO(18)
	c.EBQuant = 0
	if _, err := c.Compress([]float32{1}); err == nil {
		t.Fatal("EBQuant=0 accepted")
	}
	c = NewCOMPSO(19)
	c.EBFilter = -1
	if _, err := c.Compress([]float32{1}); err == nil {
		t.Fatal("negative EBFilter accepted")
	}
}

func TestSRDeterminismAcrossSeeds(t *testing.T) {
	src := kfacData(1000, 13)
	a, err := NewCOMPSO(42).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCOMPSO(42).Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("same seed produced different compressed sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different bytes")
		}
	}
}

func TestCOMPSORoundingModes(t *testing.T) {
	src := kfacData(20000, 20)
	for _, mode := range []quant.Mode{quant.RN, quant.SR, quant.P05} {
		c := NewCOMPSO(21)
		c.Rounding = mode
		data, err := c.Compress(src)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		out, err := c.Decompress(data)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		for i := range src {
			if e := math.Abs(float64(out[i] - src[i])); e > c.MaxError()+1e-7 {
				t.Fatalf("%v: error %g at %d", mode, e, i)
			}
		}
	}
}

func TestCOMPSOBitPackedRoundTripAndWorseRatio(t *testing.T) {
	// The §4.3 ablation: dense bit packing round-trips but compresses
	// worse than byte planes (packed symbols straddle byte boundaries and
	// defeat the order-0 entropy coder).
	src := kfacData(100000, 22)
	planes := NewCOMPSO(23)
	packed := NewCOMPSO(23)
	packed.BitPacked = true
	d1, err := planes.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := packed.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := packed.Decompress(d2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if e := math.Abs(float64(out[i] - src[i])); e > packed.MaxError()+1e-7 {
			t.Fatalf("bit-packed error %g at %d", e, i)
		}
	}
	if len(d1) >= len(d2) {
		t.Fatalf("byte planes (%d) should beat bit packing (%d)", len(d1), len(d2))
	}
}

func TestErrorFeedbackCompensatesRNBias(t *testing.T) {
	// EF's defining property: with a biased compressor (RN-based SZ at a
	// loose bound), the running sum of decompressed gradients tracks the
	// running sum of true gradients far better with feedback than without.
	const n, iters = 2000, 60
	rng := xrand.NewSeeded(24)
	plain := NewSZ(5e-2)
	ef := NewErrorFeedback(NewSZ(5e-2))
	var sumTrue, sumPlain, sumEF []float64
	sumTrue = make([]float64, n)
	sumPlain = make([]float64, n)
	sumEF = make([]float64, n)
	grad := make([]float32, n)
	for it := 0; it < iters; it++ {
		xrand.KFACGradient(rng, grad, 1.0)
		for i, v := range grad {
			sumTrue[i] += float64(v)
		}
		d1, err := plain.Compress(grad)
		if err != nil {
			t.Fatal(err)
		}
		o1, err := plain.Decompress(d1)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := ef.Compress(grad)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := ef.Decompress(d2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range grad {
			sumPlain[i] += float64(o1[i])
			sumEF[i] += float64(o2[i])
		}
	}
	var errPlain, errEF float64
	for i := range sumTrue {
		dp := sumPlain[i] - sumTrue[i]
		de := sumEF[i] - sumTrue[i]
		errPlain += dp * dp
		errEF += de * de
	}
	if errEF >= errPlain/2 {
		t.Fatalf("EF did not reduce accumulated error: %g vs %g", errEF, errPlain)
	}
	if ef.ResidualNorm() <= 0 {
		t.Fatal("EF residual empty after compression")
	}
	ef.Reset()
	if ef.ResidualNorm() != 0 {
		t.Fatal("Reset did not clear residual")
	}
}

func TestErrorFeedbackLengthMismatch(t *testing.T) {
	ef := NewErrorFeedback(NewQSGD(8, 25))
	if _, err := ef.Compress(make([]float32, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := ef.Compress(make([]float32, 11)); err == nil {
		t.Fatal("length change accepted without Reset")
	}
	ef.Reset()
	if _, err := ef.Compress(make([]float32, 11)); err != nil {
		t.Fatal(err)
	}
}

func TestCompressorRoundTripProperty(t *testing.T) {
	// Structured-random gradients through every compressor: the round trip
	// must always produce the right length and respect each compressor's
	// error semantics (bounded for COMPSO/SZ; scale-bounded for QSGD).
	f := func(seed uint64, size uint16) bool {
		n := int(size)%4000 + 1
		src := make([]float32, n)
		xrand.KFACGradient(xrand.New(seed, 5), src, 1.0)
		for _, c := range []Compressor{
			NewCOMPSO(int64(seed)),
			NewQSGD(8, int64(seed)),
			NewSZ(4e-3),
			NewCocktailSGD(0.2, 8, int64(seed)),
		} {
			data, err := c.Compress(src)
			if err != nil {
				return false
			}
			out, err := c.Decompress(data)
			if err != nil || len(out) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCOMPSOErrorBoundProperty(t *testing.T) {
	f := func(seed uint64, ebMilli uint8) bool {
		eb := float64(ebMilli%50+1) * 1e-3
		src := make([]float32, 3000)
		xrand.KFACGradient(xrand.New(seed, 6), src, 1.0)
		c := NewCOMPSO(int64(seed))
		c.EBFilter, c.EBQuant = eb, eb
		data, err := c.Compress(src)
		if err != nil {
			return false
		}
		out, err := c.Decompress(data)
		if err != nil {
			return false
		}
		for i := range src {
			if math.Abs(float64(out[i]-src[i])) > eb+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
