package compress

import (
	"fmt"
	"sync"
	"testing"

	"compso/internal/encoding"
	"compso/internal/xrand"
)

// Race-audit lock-in for the concurrency contract internal/serve builds on:
// a compressor INSTANCE is single-threaded (stateful RNG stream, EF
// residual), but any number of instances may run concurrently because the
// only state they share — the pool arenas and the codec registry — is
// race-safe or read-only. The audit found no package-level mutable state in
// compress/encoding/quant; this suite keeps it that way by hammering every
// family × codec combination from many goroutines under -race. A future
// "optimization" that caches scratch in a package var instead of the pool
// fails here immediately.

// raceCompressors builds one fresh instance per goroutine for every family
// and (for COMPSO) every registered lossless back-end.
func raceCompressors(seed int64) []Compressor {
	var out []Compressor
	for _, name := range encoding.Names() {
		cdc, err := encoding.ByName(name)
		if err != nil {
			panic(err)
		}
		c := NewCOMPSO(seed)
		c.Codec = cdc
		out = append(out, c)
	}
	out = append(out,
		NewQSGD(4, seed),
		NewSZ(1e-3),
		NewCocktailSGD(0.04, 8, seed),
		NewErrorFeedback(NewCOMPSO(seed)),
		NewPowerSGD(4, seed),
		NewErrorFeedback(NewPowerSGD(4, seed)),
	)
	return out
}

// TestConcurrentInstancesAreRaceFree runs many goroutines, each owning a
// private instance of every compressor family, all compressing and
// decompressing simultaneously through the shared pool arenas.
func TestConcurrentInstancesAreRaceFree(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 6
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := xrand.NewSeeded(int64(g) + 1)
			comps := raceCompressors(int64(g) + 1)
			for r := 0; r < rounds; r++ {
				n := 1024 << (r % 3) // vary size classes to churn the arenas
				src := make([]float32, n)
				xrand.KFACGradient(rng, src, 1.0)
				for _, c := range comps {
					if st, ok := c.(Stateful); ok {
						st.Reset() // EF residuals and low-rank factors are per-length; sizes vary per round
					}
					blob, err := c.Compress(src)
					if err != nil {
						errs <- fmt.Errorf("g%d r%d %s compress: %w", g, r, c.Name(), err)
						return
					}
					vals, err := c.Decompress(blob)
					if err != nil {
						errs <- fmt.Errorf("g%d r%d %s decompress: %w", g, r, c.Name(), err)
						return
					}
					if len(vals) != n {
						errs <- fmt.Errorf("g%d r%d %s: %d values, want %d", g, r, c.Name(), len(vals), n)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentInstancesAreDeterministic is the sharper check: concurrent
// execution must not perturb any instance's RNG stream. Every goroutine
// seeds identically, so every goroutine must produce bit-identical blobs —
// cross-talk through hidden shared state shows up as divergence even when
// it doesn't trip the race detector.
func TestConcurrentInstancesAreDeterministic(t *testing.T) {
	const goroutines = 8
	src := make([]float32, 4096)
	xrand.KFACGradient(xrand.NewSeeded(7), src, 1.0)

	blobs := make([][][]byte, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, c := range raceCompressors(42) {
				blob, err := c.Compress(src)
				if err != nil {
					t.Errorf("g%d %s: %v", g, c.Name(), err)
					return
				}
				blobs[g] = append(blobs[g], blob)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 1; g < goroutines; g++ {
		if len(blobs[g]) != len(blobs[0]) {
			t.Fatalf("goroutine %d produced %d blobs, want %d", g, len(blobs[g]), len(blobs[0]))
		}
		for i := range blobs[g] {
			if string(blobs[g][i]) != string(blobs[0][i]) {
				t.Fatalf("goroutine %d, compressor %d: blob differs from goroutine 0 — hidden shared state", g, i)
			}
		}
	}
}

// TestSharedBlobConcurrentDecompress decompresses the SAME blob bytes from
// many goroutines at once (each with its own instance): decoders must treat
// their input as read-only.
func TestSharedBlobConcurrentDecompress(t *testing.T) {
	src := make([]float32, 8192)
	xrand.KFACGradient(xrand.NewSeeded(9), src, 1.0)
	enc := NewCOMPSO(5)
	blob, err := enc.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewCOMPSO(5).Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dec := NewCOMPSO(5)
			for r := 0; r < 4; r++ {
				vals, err := dec.Decompress(blob)
				if err != nil {
					t.Errorf("g%d: %v", g, err)
					return
				}
				for i := range vals {
					if vals[i] != want[i] {
						t.Errorf("g%d: value %d differs — decoder mutated shared input?", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
