package compress

import (
	"encoding/binary"
	"fmt"
	"math"

	"compso/internal/pool"
	"compso/internal/xrand"
)

// PowerSGD is the low-rank gradient compressor family (Vogels et al.,
// PowerSGD; Zhou et al., ACP-SGD): the gradient vector is viewed as a 2D
// matrix M (its natural layer shape, or a near-square reshape) and
// approximated by a rank-k product P·Qᵀ obtained from one step of
// subspace/power iteration. The query factor is warm-started across steps,
// so successive gradients sharpen the shared subspace instead of paying a
// fresh iteration each time.
//
// The compressor operates in two modes:
//
//   - Blob mode (Compress/Decompress): both factors travel in a
//     self-describing buffer, interchangeable with every other family —
//     all-gather aggregation, serve sessions, EF wrapping.
//   - Ring mode (ReduceFactor/InstallReduced): ACP-SGD's alternating
//     compression. Even steps communicate P = M·Q against the shared
//     orthonormal query Q; odd steps communicate Q = Mᵀ·P against the
//     shared orthonormal P. Because the non-communicated factor is
//     identical on every worker, the aggregated quantity is a plain sum:
//     Σᵢ(Mᵢ·Q) = (ΣᵢMᵢ)·Q — which is exactly what a ring all-reduce
//     computes, at a fraction of the all-gather volume.
//
// A PowerSGD instance is stateful per gradient stream (pinned length,
// warm-started factors): use one per (worker, tensor) pair and Reset
// between logical streams. Decompress, by contrast, is receiver-stateless.
type PowerSGD struct {
	// Rank is k, the factorization rank (≥1). Wire volume per step is
	// k·(rows+cols) float32 values in blob mode and half that, amortized,
	// in ring mode.
	Rank int
	// Rows and Cols optionally pin the 2D view of the gradient (e.g. a
	// layer's ADim×GDim). Zero values select a near-square reshape of the
	// first gradient's length; the matrix is zero-padded to rows·cols.
	Rows, Cols int
	// Seed derives the deterministic initial query factor. Ring-mode
	// workers must share one seed so their initial subspace agrees.
	Seed int64
	// WarmStart reuses the previous step's query factor (the power
	// iteration); disabling it re-initializes the query each call.
	WarmStart bool

	// Pinned stream shape (set on first use).
	n, rows, cols, k int
	// q is the cols×k query factor, orthonormal columns; p is the rows×k
	// left factor (ring mode only).
	q, p []float64
	// phase alternates ring-mode steps: 0 → communicate P, 1 → communicate Q.
	phase int
	step  int
}

// NewPowerSGD returns a rank-k PowerSGD compressor with warm-started
// queries and a near-square reshape.
func NewPowerSGD(rank int, seed int64) *PowerSGD {
	if rank < 1 {
		rank = 1
	}
	return &PowerSGD{Rank: rank, Seed: seed, WarmStart: true}
}

// Name implements Compressor.
func (pc *PowerSGD) Name() string { return fmt.Sprintf("PowerSGD-r%d", pc.Rank) }

// ensureShape pins the stream's length and 2D view on first use and
// rejects later length changes — the factor state is shape-bound exactly
// like an EF residual.
func (pc *PowerSGD) ensureShape(n int) error {
	if pc.rows != 0 || pc.n != 0 || pc.step > 0 {
		if n != pc.n {
			return fmt.Errorf("%w: PowerSGD stream length %d, input %d", ErrLengthMismatch, pc.n, n)
		}
		return nil
	}
	if n == 0 {
		pc.step = 1 // pin the zero-length stream
		return nil
	}
	rows, cols := pc.Rows, pc.Cols
	if rows <= 0 || cols <= 0 {
		rows = int(math.Ceil(math.Sqrt(float64(n))))
		cols = (n + rows - 1) / rows
	}
	if rows*cols < n {
		return fmt.Errorf("compress: PowerSGD shape %dx%d holds %d values, input %d", rows, cols, rows*cols, n)
	}
	k := pc.Rank
	if k < 1 {
		k = 1
	}
	if k > rows {
		k = rows
	}
	if k > cols {
		k = cols
	}
	pc.n, pc.rows, pc.cols, pc.k = n, rows, cols, k
	return nil
}

// initQuery builds the deterministic orthonormal initial query factor. It
// depends only on (Seed, shape), so ring-mode workers sharing a seed start
// from an identical subspace.
func (pc *PowerSGD) initQuery() []float64 {
	rng := xrand.New(
		uint64(pc.Seed)*0x9e3779b97f4a7c15+0x4c,
		uint64(pc.rows)<<42^uint64(pc.cols)<<21^uint64(pc.k),
	)
	q := make([]float64, pc.cols*pc.k)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	orthonormalize(q, pc.cols, pc.k)
	return q
}

// orthonormalize runs modified Gram-Schmidt over the columns of the
// rows×k row-major matrix m, in place. Degenerate (near-zero) columns are
// replaced by a deterministic canonical basis vector re-orthogonalized
// against the previous columns, so the result is reproducible bit-for-bit
// on every worker.
func orthonormalize(m []float64, rows, k int) {
	project := func(j int) {
		for i := 0; i < j; i++ {
			var dot float64
			for r := 0; r < rows; r++ {
				dot += m[r*k+j] * m[r*k+i]
			}
			for r := 0; r < rows; r++ {
				m[r*k+j] -= dot * m[r*k+i]
			}
		}
	}
	norm := func(j int) float64 {
		var s float64
		for r := 0; r < rows; r++ {
			s += m[r*k+j] * m[r*k+j]
		}
		return math.Sqrt(s)
	}
	for j := 0; j < k; j++ {
		project(j)
		nrm := norm(j)
		if nrm < 1e-12 {
			for r := 0; r < rows; r++ {
				m[r*k+j] = 0
			}
			m[(j%rows)*k+j] = 1
			project(j)
			nrm = norm(j)
			if nrm < 1e-12 {
				continue // rank-deficient beyond repair; keep the zero column
			}
		}
		inv := 1 / nrm
		for r := 0; r < rows; r++ {
			m[r*k+j] *= inv
		}
	}
}

// mulMQ computes dst = M·Q (rows×k), where M is the zero-padded rows×cols
// view of src[:n] and Q is cols×k.
func mulMQ(src []float32, n, rows, cols, k int, q, dst []float64) {
	clear(dst)
	for r := 0; r < rows; r++ {
		base := r * cols
		cend := cols
		if base+cend > n {
			cend = n - base
		}
		if cend <= 0 {
			break
		}
		prow := dst[r*k : r*k+k]
		for c := 0; c < cend; c++ {
			v := float64(src[base+c])
			if v == 0 {
				continue
			}
			qrow := q[c*k : c*k+k]
			for j := range prow {
				prow[j] += v * qrow[j]
			}
		}
	}
}

// mulMTP computes dst = Mᵀ·P (cols×k) for the same padded view.
func mulMTP(src []float32, n, rows, cols, k int, p, dst []float64) {
	clear(dst)
	for r := 0; r < rows; r++ {
		base := r * cols
		cend := cols
		if base+cend > n {
			cend = n - base
		}
		if cend <= 0 {
			break
		}
		prow := p[r*k : r*k+k]
		for c := 0; c < cend; c++ {
			v := float64(src[base+c])
			if v == 0 {
				continue
			}
			qrow := dst[c*k : c*k+k]
			for j := range qrow {
				qrow[j] += v * prow[j]
			}
		}
	}
}

// lowRankReconstruct writes flatten(P·Qᵀ)[:n] into out.
func lowRankReconstruct(pm, qm []float64, n, cols, k int, out []float32) {
	idx := 0
	for r := 0; idx < n; r++ {
		prow := pm[r*k : r*k+k]
		cend := cols
		if n-idx < cend {
			cend = n - idx
		}
		for c := 0; c < cend; c++ {
			qrow := qm[c*k : c*k+k]
			var s float64
			for j := range prow {
				s += prow[j] * qrow[j]
			}
			out[idx] = float32(s)
			idx++
		}
	}
}

func appendF32Factors(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
	}
	return dst
}

// Compress encodes src as rank-k factors P and Q = MᵀP against the
// warm-started query (blob mode; one power-iteration step per call). The
// blob is self-describing: header, shape, then both factors as float32.
func (pc *PowerSGD) Compress(src []float32) ([]byte, error) {
	if err := pc.ensureShape(len(src)); err != nil {
		return nil, err
	}
	n, rows, cols, k := pc.n, pc.rows, pc.cols, pc.k
	out := make([]byte, 0, 16+4*k*(rows+cols))
	out = putHeader(out, magicLowRank, n)
	out = binary.AppendUvarint(out, uint64(rows))
	out = binary.AppendUvarint(out, uint64(cols))
	out = binary.AppendUvarint(out, uint64(k))
	if n == 0 {
		return out, nil
	}
	if pc.q == nil || !pc.WarmStart {
		pc.q = pc.initQuery()
	}
	p := pool.F64(rows * k)
	defer pool.PutF64(p)
	mulMQ(src, n, rows, cols, k, pc.q, p)
	orthonormalize(p, rows, k)
	qn := pool.F64(cols * k)
	defer pool.PutF64(qn)
	mulMTP(src, n, rows, cols, k, p, qn)
	out = appendF32Factors(out, p)
	out = appendF32Factors(out, qn)
	// Warm-start the next step's query with the orthonormalized new range.
	orthonormalize(qn, cols, k)
	copy(pc.q, qn)
	pc.step++
	return out, nil
}

// Decompress restores flatten(P·Qᵀ)[:n] from a blob-mode buffer. It is
// receiver-stateless: any PowerSGD value (including the zero value)
// decodes any blob.
func (pc *PowerSGD) Decompress(data []byte) ([]float32, error) {
	n, rest, err := getHeader(data, magicLowRank, "PowerSGD")
	if err != nil {
		return nil, err
	}
	var dims [3]uint64
	for i := range dims {
		v, used := binary.Uvarint(rest)
		if used <= 0 || v > 1<<31 {
			return nil, fmt.Errorf("%w: PowerSGD: bad shape header", ErrCorrupt)
		}
		dims[i] = v
		rest = rest[used:]
	}
	rows, cols, k := int(dims[0]), int(dims[1]), int(dims[2])
	if n == 0 {
		if rows != 0 || cols != 0 || k != 0 || len(rest) != 0 {
			return nil, fmt.Errorf("%w: PowerSGD: non-empty payload for empty stream", ErrCorrupt)
		}
		return []float32{}, nil
	}
	if rows < 1 || cols < 1 || k < 1 || k > rows || k > cols {
		return nil, fmt.Errorf("%w: PowerSGD: shape %dx%d rank %d", ErrCorrupt, rows, cols, k)
	}
	if uint64(rows)*uint64(cols) < uint64(n) {
		return nil, fmt.Errorf("%w: PowerSGD: shape %dx%d holds fewer than %d values", ErrCorrupt, rows, cols, n)
	}
	want := 4 * uint64(k) * uint64(rows+cols)
	if uint64(len(rest)) != want {
		return nil, fmt.Errorf("%w: PowerSGD: factor payload %d bytes, want %d", ErrCorrupt, len(rest), want)
	}
	pm := pool.F64(rows * k)
	defer pool.PutF64(pm)
	for i := range pm {
		pm[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:])))
	}
	rest = rest[4*rows*k:]
	qm := pool.F64(cols * k)
	defer pool.PutF64(qm)
	for i := range qm {
		qm[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:])))
	}
	out := make([]float32, n)
	lowRankReconstruct(pm, qm, n, cols, k, out)
	return out, nil
}

// AllReducible is implemented by compressors whose compressed
// representation aggregates as a sum, so the distributed exchange can be a
// ring all-reduce over the factor instead of an all-gather of per-rank
// blobs. The contract is SPMD: every worker calls ReduceFactor with its
// local gradient, the factors are summed element-wise by the collective,
// and every worker passes the identical sum to InstallReduced — which
// returns the world-averaged restored gradient and advances the shared
// factor state identically on all workers.
type AllReducible interface {
	Compressor
	// ReduceFactor projects src onto this step's communicated factor
	// (float64 for exact summation; the collective charges FP32 wire
	// bytes). The returned slice is owned by the caller.
	ReduceFactor(src []float32) ([]float64, error)
	// InstallReduced consumes the element-wise sum of all workers'
	// factors and returns the averaged restored gradient.
	InstallReduced(sum []float64, world int) ([]float32, error)
}

// ReduceFactor implements AllReducible: even steps emit P = M·Q against
// the shared orthonormal query, odd steps emit Q = Mᵀ·P against the
// shared orthonormal left factor (ACP-SGD's alternating compression).
func (pc *PowerSGD) ReduceFactor(src []float32) ([]float64, error) {
	if err := pc.ensureShape(len(src)); err != nil {
		return nil, err
	}
	if pc.n == 0 {
		return []float64{}, nil
	}
	n, rows, cols, k := pc.n, pc.rows, pc.cols, pc.k
	if pc.q == nil {
		pc.q = pc.initQuery()
	}
	if pc.phase == 0 {
		f := make([]float64, rows*k)
		mulMQ(src, n, rows, cols, k, pc.q, f)
		return f, nil
	}
	f := make([]float64, cols*k)
	mulMTP(src, n, rows, cols, k, pc.p, f)
	return f, nil
}

// InstallReduced implements AllReducible. The averaged factor reconstructs
// the gradient against the shared non-communicated factor, and its
// orthonormalization becomes that shared factor for the next step.
func (pc *PowerSGD) InstallReduced(sum []float64, world int) ([]float32, error) {
	if world <= 0 {
		return nil, fmt.Errorf("compress: PowerSGD: world size %d", world)
	}
	if pc.n == 0 {
		if len(sum) != 0 {
			return nil, fmt.Errorf("compress: PowerSGD: %d factor values for an empty stream", len(sum))
		}
		return []float32{}, nil
	}
	if pc.rows == 0 {
		return nil, fmt.Errorf("compress: PowerSGD: InstallReduced before ReduceFactor")
	}
	n, rows, cols, k := pc.n, pc.rows, pc.cols, pc.k
	inv := 1 / float64(world)
	out := make([]float32, n)
	if pc.phase == 0 {
		if len(sum) != rows*k {
			return nil, fmt.Errorf("compress: PowerSGD: P factor %d values, want %d", len(sum), rows*k)
		}
		avg := make([]float64, len(sum))
		for i, v := range sum {
			avg[i] = v * inv
		}
		lowRankReconstruct(avg, pc.q, n, cols, k, out)
		orthonormalize(avg, rows, k)
		pc.p = avg
		pc.phase = 1
	} else {
		if len(sum) != cols*k {
			return nil, fmt.Errorf("compress: PowerSGD: Q factor %d values, want %d", len(sum), cols*k)
		}
		avg := make([]float64, len(sum))
		for i, v := range sum {
			avg[i] = v * inv
		}
		lowRankReconstruct(pc.p, avg, n, cols, k, out)
		orthonormalize(avg, cols, k)
		pc.q = avg
		pc.phase = 0
	}
	pc.step++
	return out, nil
}

// FactorLen reports the communicated factor length (in values) for a
// stream of n gradients — the per-step ring all-reduce volume. Even steps
// send rows·k, odd steps cols·k; callers sizing communication budgets can
// take the mean.
func (pc *PowerSGD) FactorLen(n int) (even, odd int, err error) {
	probe := *pc
	probe.n, probe.rows, probe.cols, probe.k, probe.step = 0, 0, 0, 0, 0
	if err := probe.ensureShape(n); err != nil {
		return 0, 0, err
	}
	return probe.rows * probe.k, probe.cols * probe.k, nil
}

// PowerSGDState is the State() snapshot: the pinned shape, step counters
// and deep copies of the live factors.
type PowerSGDState struct {
	Step, Phase         int
	N, Rows, Cols, Rank int
	P, Q                []float64
}

// Reset implements Stateful: the next call starts a fresh stream (new
// length pin, re-initialized query).
func (pc *PowerSGD) Reset() {
	pc.n, pc.rows, pc.cols, pc.k = 0, 0, 0, 0
	pc.p, pc.q = nil, nil
	pc.phase, pc.step = 0, 0
}

// State implements Stateful.
func (pc *PowerSGD) State() any {
	st := PowerSGDState{
		Step: pc.step, Phase: pc.phase,
		N: pc.n, Rows: pc.rows, Cols: pc.cols, Rank: pc.k,
	}
	if pc.p != nil {
		st.P = append([]float64(nil), pc.p...)
	}
	if pc.q != nil {
		st.Q = append([]float64(nil), pc.q...)
	}
	return st
}

// Restore implements Restorable: it re-installs a State() snapshot — shape
// pin, step parity, and deep copies of the warm-started factors — so the
// next ReduceFactor/InstallReduced round continues the snapshotted stream
// bit-exactly. The snapshot's rank must match the configured Rank (the
// factor shapes depend on it).
func (pc *PowerSGD) Restore(state any) error {
	st, ok := state.(PowerSGDState)
	if !ok {
		if p, ok2 := state.(*PowerSGDState); ok2 {
			st = *p
		} else {
			return fmt.Errorf("compress: PowerSGD restore: snapshot type %T", state)
		}
	}
	if st.N != 0 && st.Rows*st.Cols < st.N {
		return fmt.Errorf("compress: PowerSGD restore: shape %dx%d cannot hold %d values", st.Rows, st.Cols, st.N)
	}
	if st.P != nil && len(st.P) != st.Rows*st.Rank {
		return fmt.Errorf("compress: PowerSGD restore: P factor %d values, want %d", len(st.P), st.Rows*st.Rank)
	}
	if st.Q != nil && len(st.Q) != st.Cols*st.Rank {
		return fmt.Errorf("compress: PowerSGD restore: Q factor %d values, want %d", len(st.Q), st.Cols*st.Rank)
	}
	pc.n, pc.rows, pc.cols, pc.k = st.N, st.Rows, st.Cols, st.Rank
	pc.phase, pc.step = st.Phase, st.Step
	if st.P != nil {
		pc.p = append([]float64(nil), st.P...)
	} else {
		pc.p = nil
	}
	if st.Q != nil {
		pc.q = append([]float64(nil), st.Q...)
	} else {
		pc.q = nil
	}
	return nil
}
