package pool

import (
	"strings"
	"testing"
)

// The debug-mode tests exercise the three detections the serve layer relies
// on — double-Put, use-after-Put, and leak accounting — and then prove the
// tracker is inert when disabled.

func mustPanic(t *testing.T, want string, fn func()) (msg string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		msg, _ = r.(string)
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	fn()
	return
}

func TestDebugDoublePutPanics(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)

	b := Bytes(100)
	PutBytes(b)
	msg := mustPanic(t, "double Put", func() { PutBytes(b) })
	if !strings.Contains(msg, "already pooled at [") {
		t.Fatalf("double-Put panic should carry the first Put site, got %q", msg)
	}
}

func TestDebugDoublePutAcrossArenas(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)

	f := F32(64)
	PutF32(f)
	mustPanic(t, "double Put", func() { PutF32(f) })
}

func TestDebugUseAfterPutPanics(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)

	s := Bytes(128)
	PutBytes(s)
	// A stale reference writes into the pooled buffer…
	s[:cap(s)][5] = 42
	// …which the detector catches when the buffer transitions back to live.
	mustPanic(t, "use-after-Put", func() { debugGetPooled(s) })
}

func TestDebugUseAfterPutViaArena(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)

	s := U32(64)
	k := dataKey(s)
	PutU32(s)
	s[:cap(s)][0] = 7
	// The next arena Get of this class normally surfaces the poisoned
	// buffer from the current P's private slot; if the scheduler moved us,
	// the corrupted buffer stays pooled and the direct-check test above
	// still covers the detection.
	defer func() {
		if r := recover(); r != nil {
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "use-after-Put") {
				t.Fatalf("unexpected panic %v", r)
			}
			return
		}
	}()
	got := U32(64)
	if dataKey(got) == k {
		t.Fatalf("corrupted buffer returned live without use-after-Put panic")
	}
}

func TestDebugLeakAccounting(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)

	base := Stats()
	a := Bytes(200)
	b := F64(300)
	mid := Stats()
	if mid.Live != base.Live+2 {
		t.Fatalf("live after two gets: %d, want %d", mid.Live, base.Live+2)
	}
	PutBytes(a)
	PutF64(b)
	end := Stats()
	if end.Live != base.Live {
		t.Fatalf("live after puts: %d, want baseline %d (leak)", end.Live, base.Live)
	}
	if end.Pooled < 2 {
		t.Fatalf("pooled after puts: %d, want >= 2", end.Pooled)
	}
}

func TestDebugDisabledIsInert(t *testing.T) {
	SetDebug(false)
	b := Bytes(100)
	PutBytes(b)
	PutBytes(b) // double Put: undetected when disabled
	// Drain both aliased copies so the corrupted arena state cannot leak
	// into later tests.
	_ = Bytes(100)
	_ = Bytes(100)
	if s := Stats(); s.Live != 0 || s.Pooled != 0 {
		t.Fatalf("disabled tracker should report zero stats, got %+v", s)
	}
}

func TestDebugOversizedBuffersUntracked(t *testing.T) {
	SetDebug(true)
	defer SetDebug(false)

	base := Stats()
	// Above the max size class: plain make, never pooled, never tracked.
	big := Bytes(1<<24 + 1)
	PutBytes(big)
	PutBytes(big)
	if s := Stats(); s.Live != base.Live {
		t.Fatalf("oversized buffer affected tracking: %+v vs %+v", s, base)
	}
}
