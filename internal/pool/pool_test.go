package pool

import (
	"sync"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << maxClassShift, numClasses - 1},
		{1<<maxClassShift + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	b := Bytes(100)
	if len(b) != 100 || cap(b) != 128 {
		t.Fatalf("Bytes(100): len %d cap %d", len(b), cap(b))
	}
	PutBytes(b)
	f := F32(1000)
	if len(f) != 1000 || cap(f) != 1024 {
		t.Fatalf("F32(1000): len %d cap %d", len(f), cap(f))
	}
	PutF32(f)
	u := U32(65)
	if len(u) != 65 || cap(u) != 128 {
		t.Fatalf("U32(65): len %d cap %d", len(u), cap(u))
	}
	PutU32(u)
	d := F64(64)
	if len(d) != 64 || cap(d) != 64 {
		t.Fatalf("F64(64): len %d cap %d", len(d), cap(d))
	}
	PutF64(d)
}

func TestOversizedNotRetained(t *testing.T) {
	n := 1<<maxClassShift + 1
	b := Bytes(n)
	if len(b) != n {
		t.Fatalf("len %d", len(b))
	}
	PutBytes(b) // must not panic and must be dropped
}

func TestForeignBufferDropped(t *testing.T) {
	// A buffer whose capacity is not a class capacity must be ignored.
	PutBytes(make([]byte, 0, 100))
}

func TestZeroVariantsZero(t *testing.T) {
	b := Bytes(128)
	for i := range b {
		b[i] = 0xFF
	}
	PutBytes(b)
	z := ZeroBytes(128)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("ZeroBytes[%d] = %d", i, v)
		}
	}
	f := F32(128)
	for i := range f {
		f[i] = 1
	}
	PutF32(f)
	zf := ZeroF32(128)
	for i, v := range zf {
		if v != 0 {
			t.Fatalf("ZeroF32[%d] = %g", i, v)
		}
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		hits := make([]int32, n)
		ParallelFor(n, 0, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestParallelForLimitOne(t *testing.T) {
	// limit 1 must run serially on the calling goroutine, in order.
	var order []int
	ParallelFor(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order broken: %v", order)
		}
	}
}

func TestParallelForNested(t *testing.T) {
	// Nested and concurrent ParallelFor calls must not deadlock and must
	// still cover every index.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			outer := make([]int32, 16)
			ParallelFor(16, 0, func(i int) {
				inner := make([]int32, 8)
				ParallelFor(8, 0, func(j int) { inner[j]++ })
				for j, h := range inner {
					if h != 1 {
						t.Errorf("inner[%d] = %d", j, h)
					}
				}
				outer[i]++
			})
			for i, h := range outer {
				if h != 1 {
					t.Errorf("outer[%d] = %d", i, h)
				}
			}
		}()
	}
	wg.Wait()
}
