// Package pool provides the buffer arena and the shared bounded worker pool
// behind the repository's real-compute hot paths. The paper's kernel-level
// point (§4.5) is that compression only pays off when the (de)compression
// kernels themselves are cheap; the Go mirror of that claim is that the
// compressors, encoders and the training loop's gather paths must not spend
// their time in the allocator. Every scratch buffer the fused kernels need —
// bitmaps, zig-zag code vectors, byte planes, encoder bodies, float
// conversion scratch — comes from the size-classed sync.Pool arenas here, so
// steady-state training steps run near-zero-alloc.
//
// ParallelFor is the chunk/layer-parallel execution primitive (the
// thread-block analogue of the fused CUDA kernels): a GOMAXPROCS-aware,
// process-wide bounded helper pool with deterministic, index-addressed
// output. Callers write results into their own index, so the schedule never
// influences the bytes produced — the determinism contract the simulated
// training results depend on.
package pool

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Size classes are powers of two from 1<<minClassShift elements up to
// 1<<maxClassShift; larger requests fall through to plain make and are not
// retained on Put (they would pin large memory for rare callers).
const (
	minClassShift = 6 // 64 elements
	maxClassShift = 24
	numClasses    = maxClassShift - minClassShift + 1
)

// classFor returns the size-class index covering n elements, or -1 when n
// is outside the pooled range.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	if n > 1<<maxClassShift {
		return -1
	}
	c := bits.Len(uint(n-1)) - minClassShift
	if c < 0 {
		return 0
	}
	return c
}

// classCap returns the capacity of buffers in class c.
func classCap(c int) int { return 1 << (c + minClassShift) }

// arena is a size-classed pool of []T buffers. Pools store *[]T so Put does
// not allocate a fresh slice-header box per call.
type arena[T any] struct {
	classes [numClasses]sync.Pool
}

// get returns a slice of length n (contents undefined — callers must fully
// overwrite or zero it).
func (a *arena[T]) get(n int) []T {
	c := classFor(n)
	if c < 0 {
		return make([]T, n)
	}
	if v := a.classes[c].Get(); v != nil {
		s := (*(v.(*[]T)))[:n]
		if debugEnabled.Load() {
			debugGetPooled(s)
		}
		return s
	}
	s := make([]T, n, classCap(c))
	if debugEnabled.Load() {
		debugGetFresh(s)
	}
	return s
}

// put returns a buffer obtained from get. Buffers whose capacity does not
// match a class (foreign or oversized slices) are dropped.
func (a *arena[T]) put(s []T) {
	c := classFor(cap(s))
	if c < 0 || cap(s) != classCap(c) {
		return
	}
	if debugEnabled.Load() {
		debugPut(s)
	}
	s = s[:0]
	a.classes[c].Put(&s)
}

var (
	bytesArena arena[byte]
	u32Arena   arena[uint32]
	f32Arena   arena[float32]
	f64Arena   arena[float64]
	intArena   arena[int]
)

// Bytes returns a pooled []byte of length n. Contents are undefined.
func Bytes(n int) []byte { return bytesArena.get(n) }

// PutBytes recycles a buffer obtained from Bytes. The caller must not
// retain any reference to it afterwards.
func PutBytes(b []byte) { bytesArena.put(b) }

// ZeroBytes returns a pooled []byte of length n with every element zeroed.
func ZeroBytes(n int) []byte {
	b := bytesArena.get(n)
	clear(b)
	return b
}

// U32 returns a pooled []uint32 of length n. Contents are undefined.
func U32(n int) []uint32 { return u32Arena.get(n) }

// PutU32 recycles a buffer obtained from U32.
func PutU32(s []uint32) { u32Arena.put(s) }

// F32 returns a pooled []float32 of length n. Contents are undefined.
func F32(n int) []float32 { return f32Arena.get(n) }

// PutF32 recycles a buffer obtained from F32.
func PutF32(s []float32) { f32Arena.put(s) }

// ZeroF32 returns a pooled []float32 of length n with every element zeroed.
func ZeroF32(n int) []float32 {
	s := f32Arena.get(n)
	clear(s)
	return s
}

// Ints returns a pooled []int of length n. Contents are undefined.
func Ints(n int) []int { return intArena.get(n) }

// PutInts recycles a buffer obtained from Ints.
func PutInts(s []int) { intArena.put(s) }

// F64 returns a pooled []float64 of length n. Contents are undefined.
func F64(n int) []float64 { return f64Arena.get(n) }

// PutF64 recycles a buffer obtained from F64.
func PutF64(s []float64) { f64Arena.put(s) }

// Workers returns the parallelism bound of the shared worker pool.
func Workers() int { return runtime.GOMAXPROCS(0) }

// helperTokens bounds the number of helper goroutines live across ALL
// concurrent ParallelFor calls in the process, so nested or concurrent
// fan-outs (P simulated workers each chunk-compressing) cannot multiply
// into P×GOMAXPROCS goroutines. The calling goroutine always works without
// a token, which keeps ParallelFor deadlock-free under arbitrary nesting.
var helperTokens = make(chan struct{}, max(1, runtime.GOMAXPROCS(0)-1))

// ParallelFor runs fn(i) for every i in [0, n) using the calling goroutine
// plus up to limit-1 helpers from the shared bounded pool (limit <= 0 means
// GOMAXPROCS). Indices are claimed atomically, so the iteration order is
// unspecified — callers must make fn write only to index-addressed state.
// ParallelFor returns when every index has been processed.
func ParallelFor(n, limit int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	want := min(limit, n) - 1 // helpers beyond the calling goroutine
	if n == 1 || want <= 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
		}
	}
	var wg sync.WaitGroup
	spawned := 0
	for ; spawned < want; spawned++ {
		select {
		case helperTokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-helperTokens
					wg.Done()
				}()
				work()
			}()
		default:
			// Pool saturated: the calling goroutine absorbs the rest.
			spawned = want
		}
	}
	work()
	wg.Wait()
}
