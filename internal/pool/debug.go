package pool

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Debug mode is the pool's server-hardening instrument: long-running callers
// (one misbehaving compso-serve session) can corrupt a sync.Pool arena in
// ways that only surface much later as crosstalk between unrelated requests —
// a buffer Put twice is handed to two callers at once; a buffer written after
// Put scribbles over another session's scratch. When enabled, every class-
// sized buffer is tracked by its backing-array address: double-Put panics at
// the offending call (with the original Put site in the message), buffers are
// filled with a poison pattern on Put and verified on reuse so a
// write-after-Put panics at the next Get, and live/pooled counts are exported
// so tests can assert that a torn-down session returned everything it took.
//
// Enable with SetDebug(true) (tests) or the COMPSO_POOL_DEBUG environment
// variable (any value but "" or "0"). Disabled, the only cost on the hot
// path is one atomic load per get/put. Tracking is address-keyed, so each
// arena-born buffer arms a finalizer that deletes its entry when the GC
// reclaims the backing allocation (sync.Pool may drop pooled buffers at any
// GC) — without it, a plain make() landing on the recycled address would
// inherit the stale entry and trip AssertNotArena with a false positive.
// SetFinalizer keeps the memory unreusable until the finalizer has run, so
// the deletion always precedes any reuse. The only remaining stale-entry
// window is a foreign (non-arena) class-sized slice first seen at Put,
// whose allocation base is unknown — rare enough for a debugging aid that
// is off in production.

// debugEnabled gates all tracking; checked with a single atomic load on the
// arena hot paths.
var debugEnabled atomic.Bool

func init() {
	if v := os.Getenv("COMPSO_POOL_DEBUG"); v != "" && v != "0" {
		// SetDebug, not a bare Store: the tracker map must exist before
		// the first tracked Get/Put.
		SetDebug(true)
	}
}

// poisonByte fills freed buffers; chosen to be a NaN-ish, obviously-wrong
// bit pattern in every element type the arenas serve.
const poisonByte = 0xDB

// debugEntry is one tracked buffer's state.
type debugEntry struct {
	pooled  bool
	putSite string // formatted caller frames of the Put that pooled it
}

var debugTracker struct {
	mu      sync.Mutex
	entries map[uintptr]*debugEntry
	live    int
	pooled  int
}

// SetDebug enables or disables pool debug tracking and resets all tracker
// state. Not intended for concurrent use with in-flight get/put traffic:
// flip it in test setup, before the workload starts.
func SetDebug(on bool) {
	debugTracker.mu.Lock()
	debugTracker.entries = make(map[uintptr]*debugEntry)
	debugTracker.live = 0
	debugTracker.pooled = 0
	debugTracker.mu.Unlock()
	debugEnabled.Store(on)
}

// DebugEnabled reports whether debug tracking is active.
func DebugEnabled() bool { return debugEnabled.Load() }

// DebugStats is a point-in-time view of the tracked buffer population.
type DebugStats struct {
	// Live is the number of tracked buffers currently held by callers.
	Live int
	// Pooled is the number of tracked buffers resting in the arenas.
	Pooled int
}

// Stats returns the tracker's current live/pooled counts (zero when debug
// mode is off). Tests assert Live returns to its baseline after a
// session/request finishes to prove nothing leaked.
func Stats() DebugStats {
	debugTracker.mu.Lock()
	defer debugTracker.mu.Unlock()
	return DebugStats{Live: debugTracker.live, Pooled: debugTracker.pooled}
}

// dataKey returns the tracking key: the buffer's backing-array address.
func dataKey[T any](s []T) uintptr {
	if cap(s) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(unsafe.SliceData(s[:cap(s)])))
}

// byteView reinterprets the buffer's full capacity as raw bytes for
// poisoning and verification.
func byteView[T any](s []T) []byte {
	if cap(s) == 0 {
		return nil
	}
	var t T
	full := s[:cap(s)]
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(full))), cap(s)*int(unsafe.Sizeof(t)))
}

// callerSite formats a short stack of the caller for double-Put diagnostics.
func callerSite() string {
	var pcs [6]uintptr
	n := runtime.Callers(3, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	site := ""
	for {
		f, more := frames.Next()
		if f.Function != "" {
			if site != "" {
				site += " <- "
			}
			site += fmt.Sprintf("%s:%d", f.Function, f.Line)
		}
		if !more || len(site) > 200 {
			break
		}
	}
	return site
}

// AssertNotArena panics when debug mode is on and b's backing array is a
// tracked arena buffer. It is the collective-boundary check: Broadcast and
// AllGather payloads are retained by other workers' goroutines long after
// the sender's call returns, so an arena buffer crossing that boundary is
// a future use-after-Put no matter how careful the sender is. With debug
// mode off the check is a single atomic load.
func AssertNotArena(b []byte, boundary string) {
	if !debugEnabled.Load() {
		return
	}
	k := dataKey(b)
	if k == 0 {
		return
	}
	debugTracker.mu.Lock()
	e, ok := debugTracker.entries[k]
	var pooled bool
	var site string
	if ok {
		pooled, site = e.pooled, e.putSite
	}
	debugTracker.mu.Unlock()
	if !ok {
		return
	}
	if pooled {
		panic(fmt.Sprintf(
			"pool: buffer %#x (cap %d) entering %s was already pooled at [%s] (use-after-Put)",
			k, cap(b), boundary, site))
	}
	panic(fmt.Sprintf(
		"pool: live arena buffer %#x (cap %d) escaping into %s; collective payloads are retained by other goroutines and must be fresh allocations",
		k, cap(b), boundary))
}

// debugArm attaches the stale-entry reaper to an arena-born buffer: when
// the GC reclaims the backing allocation (abandoned live buffer, or a
// pooled one the sync.Pool dropped), the finalizer removes its tracker
// entry before the address can be reused. s must span its allocation from
// the base (true for every buffer the arenas make), or SetFinalizer
// panics.
func debugArm[T any](s []T) {
	k := dataKey(s)
	base := unsafe.SliceData(s[:cap(s)])
	// A buffer re-adopted after a SetDebug reset is already armed; clear
	// the old finalizer first (setting over an existing one is a runtime
	// fatal error).
	runtime.SetFinalizer(base, nil)
	runtime.SetFinalizer(base, func(*T) {
		debugTracker.mu.Lock()
		if e, ok := debugTracker.entries[k]; ok {
			if e.pooled {
				debugTracker.pooled--
			} else {
				debugTracker.live--
			}
			delete(debugTracker.entries, k)
		}
		debugTracker.mu.Unlock()
	})
}

// debugGetFresh records a newly allocated class-sized buffer as live. A
// stale entry at the same address belonged to a GC-reclaimed buffer and is
// overwritten.
func debugGetFresh[T any](s []T) {
	k := dataKey(s)
	if k == 0 {
		return
	}
	debugArm(s)
	debugTracker.mu.Lock()
	defer debugTracker.mu.Unlock()
	if old, ok := debugTracker.entries[k]; ok {
		if old.pooled {
			debugTracker.pooled--
		} else {
			debugTracker.live--
		}
	}
	debugTracker.entries[k] = &debugEntry{}
	debugTracker.live++
}

// debugGetPooled transitions a buffer handed out by an arena pool from
// pooled to live, verifying the poison pattern laid down at Put time. A
// poison mismatch means some caller wrote through a stale reference after
// Put — the use-after-Put bug — and panics with the buffer's pooling site.
func debugGetPooled[T any](s []T) {
	k := dataKey(s)
	if k == 0 {
		return
	}
	debugTracker.mu.Lock()
	defer debugTracker.mu.Unlock()
	e, ok := debugTracker.entries[k]
	if !ok {
		// Pooled before debug mode was enabled (or re-adopted after a
		// SetDebug reset): it came from an arena make, so arm the reaper
		// and adopt it as live.
		debugTracker.entries[k] = &debugEntry{}
		debugTracker.live++
		debugTracker.mu.Unlock()
		debugArm(s)
		debugTracker.mu.Lock()
		return
	}
	if e.pooled {
		for i, b := range byteView(s) {
			if b != poisonByte {
				panic(fmt.Sprintf(
					"pool: use-after-Put detected: buffer %#x (cap %d elems) modified at byte %d after being pooled at [%s]",
					k, cap(s), i, e.putSite))
			}
		}
		debugTracker.pooled--
	}
	e.pooled = false
	e.putSite = ""
	debugTracker.live++
}

// debugPut transitions a buffer to pooled, panicking if it is already
// pooled (double-Put) and poisoning its contents so any later write through
// a retained reference is caught by debugGetPooled.
func debugPut[T any](s []T) {
	k := dataKey(s)
	if k == 0 {
		return
	}
	site := callerSite()
	debugTracker.mu.Lock()
	e, ok := debugTracker.entries[k]
	if ok && e.pooled {
		prev := e.putSite
		debugTracker.mu.Unlock()
		panic(fmt.Sprintf(
			"pool: double Put detected: buffer %#x (cap %d elems) already pooled at [%s], second Put at [%s]",
			k, cap(s), prev, site))
	}
	if !ok {
		// First sighting (allocated before debug mode, or a foreign
		// class-sized slice): track it from here so a second Put panics.
		e = &debugEntry{}
		debugTracker.entries[k] = e
	} else {
		debugTracker.live--
	}
	e.pooled = true
	e.putSite = site
	debugTracker.pooled++
	debugTracker.mu.Unlock()
	bv := byteView(s)
	for i := range bv {
		bv[i] = poisonByte
	}
}
