package kfac

import (
	"fmt"

	"compso/internal/tensor"
)

// Checkpoint/restore support. The optimizer's state splits into two parts
// with different replication properties:
//
//   - Common state — running factors A/G, momentum velocities, the step and
//     statVersion counters — is bit-identical on every rank (factors are
//     all-reduced, gradients averaged), so a checkpoint stores it once.
//     CaptureState/RestoreState handle it.
//   - Owner-local caches — the eigendecompositions (eigenvalue mode) or
//     damped inverses (Cholesky mode) — exist only on the rank that owns the
//     layer in the distributed-preconditioning work assignment. Losing them
//     on restore would not break numerics (they are pure functions of A and
//     G) but WOULD break bit-identical resume timing/caching semantics when
//     the last refresh predates the checkpoint: the resumed run must keep
//     using the cached decomposition until the next scheduled refresh, not
//     recompute it from newer factors. CaptureCaches/RestoreCaches handle
//     them per owned layer.
//
// Pending batch factors (pendA/pendG) are nil at every step boundary —
// AccumulateStats and CommitCovariances bracket them within a single
// iteration — so checkpoints taken between steps never need them;
// CaptureState rejects a mid-exchange capture instead of silently dropping
// the pending factors.

// State is the replica-identical optimizer state: deep copies of the
// running Kronecker factors, momentum velocities (layer order, nil before
// the first update), non-K-FAC parameter velocities (others order), and
// the update/commit counters.
type State struct {
	Step        int
	StatVersion int
	A, G        []*tensor.Matrix
	Vel         [][]float64
	OtherVel    [][]float64
}

// LayerCache is one layer's owner-local decomposition cache: the cached
// eigendecomposition and/or damped inverses with the statVersion stamps
// they were computed from. All matrices are deep copies; nil fields mean
// the cache was empty.
type LayerCache struct {
	Layer      int
	EigVersion int
	EigA, EigG *tensor.Eigen
	InvVersion int
	InvA, InvG *tensor.Matrix
}

// CaptureState deep-copies the replica-identical state. It panics if
// called with pending (uncommitted) batch factors in flight — checkpoints
// are taken at step boundaries only.
func (k *KFAC) CaptureState() *State {
	st := &State{
		Step:        k.step,
		StatVersion: k.statVersion,
		A:           make([]*tensor.Matrix, len(k.layers)),
		G:           make([]*tensor.Matrix, len(k.layers)),
		Vel:         make([][]float64, len(k.layers)),
		OtherVel:    make([][]float64, len(k.others)),
	}
	for i, l := range k.layers {
		if l.pendA != nil || l.pendG != nil {
			panic(fmt.Sprintf("kfac: CaptureState with pending factors on layer %d (mid-exchange capture)", i))
		}
		st.A[i] = l.A.Clone()
		st.G[i] = l.G.Clone()
		if l.vel != nil {
			st.Vel[i] = append([]float64(nil), l.vel...)
		}
	}
	for i, p := range k.others {
		if v := k.otherVel[p]; v != nil {
			st.OtherVel[i] = append([]float64(nil), v...)
		}
	}
	return st
}

// RestoreState installs a CaptureState snapshot, deep-copying every slice
// and matrix so the snapshot stays independent of the live optimizer. The
// snapshot must come from an identically configured optimizer over the
// same model architecture.
func (k *KFAC) RestoreState(st *State) error {
	if st == nil {
		return fmt.Errorf("kfac: restore: nil state")
	}
	if len(st.A) != len(k.layers) || len(st.G) != len(k.layers) || len(st.Vel) != len(k.layers) {
		return fmt.Errorf("kfac: restore: %d/%d/%d layer entries, optimizer has %d layers",
			len(st.A), len(st.G), len(st.Vel), len(k.layers))
	}
	if len(st.OtherVel) != len(k.others) {
		return fmt.Errorf("kfac: restore: %d other-velocity entries, optimizer has %d", len(st.OtherVel), len(k.others))
	}
	for i, l := range k.layers {
		a, g := st.A[i], st.G[i]
		if a == nil || g == nil {
			return fmt.Errorf("kfac: restore: nil factor on layer %d", i)
		}
		if a.Rows != l.A.Rows || a.Cols != l.A.Cols || g.Rows != l.G.Rows || g.Cols != l.G.Cols {
			return fmt.Errorf("kfac: restore: layer %d factor shape %dx%d/%dx%d, want %dx%d/%dx%d",
				i, a.Rows, a.Cols, g.Rows, g.Cols, l.A.Rows, l.A.Cols, l.G.Rows, l.G.Cols)
		}
		if n := k.LayerGradSize(i); st.Vel[i] != nil && len(st.Vel[i]) != n {
			return fmt.Errorf("kfac: restore: layer %d velocity %d values, want %d", i, len(st.Vel[i]), n)
		}
	}
	for i, p := range k.others {
		if st.OtherVel[i] != nil && len(st.OtherVel[i]) != len(p.W.Data) {
			return fmt.Errorf("kfac: restore: other %d velocity %d values, want %d", i, len(st.OtherVel[i]), len(p.W.Data))
		}
	}
	k.step = st.Step
	k.statVersion = st.StatVersion
	for i, l := range k.layers {
		l.A = st.A[i].Clone()
		l.G = st.G[i].Clone()
		if st.Vel[i] != nil {
			l.vel = append([]float64(nil), st.Vel[i]...)
		} else {
			l.vel = nil
		}
		// Any cached decompositions predate the restored factors; drop
		// them (RestoreCaches re-installs the checkpointed ones).
		l.eigA, l.eigG, l.eigVersion = nil, nil, 0
		l.invA, l.invG, l.invVersion = nil, nil, 0
		l.pendA, l.pendG, l.precond = nil, nil, nil
	}
	for i, p := range k.others {
		if st.OtherVel[i] != nil {
			k.otherVel[p] = append([]float64(nil), st.OtherVel[i]...)
		} else {
			delete(k.otherVel, p)
		}
	}
	return nil
}

// CaptureCaches deep-copies the decomposition caches of the given layers
// (the caller's owned set). Layers with empty caches contribute an entry
// with nil matrices so restore can distinguish "owned but never refreshed"
// from "not captured".
func (k *KFAC) CaptureCaches(layers []int) ([]LayerCache, error) {
	out := make([]LayerCache, 0, len(layers))
	for _, li := range layers {
		if li < 0 || li >= len(k.layers) {
			return nil, fmt.Errorf("kfac: capture caches: layer %d out of range [0,%d)", li, len(k.layers))
		}
		l := k.layers[li]
		c := LayerCache{Layer: li, EigVersion: l.eigVersion, InvVersion: l.invVersion}
		if l.eigA != nil {
			c.EigA = cloneEigen(l.eigA)
		}
		if l.eigG != nil {
			c.EigG = cloneEigen(l.eigG)
		}
		if l.invA != nil {
			c.InvA = l.invA.Clone()
		}
		if l.invG != nil {
			c.InvG = l.invG.Clone()
		}
		out = append(out, c)
	}
	return out, nil
}

// RestoreCaches installs CaptureCaches snapshots (deep-copied). Call after
// RestoreState — RestoreState clears all caches.
func (k *KFAC) RestoreCaches(caches []LayerCache) error {
	for _, c := range caches {
		if c.Layer < 0 || c.Layer >= len(k.layers) {
			return fmt.Errorf("kfac: restore caches: layer %d out of range [0,%d)", c.Layer, len(k.layers))
		}
		l := k.layers[c.Layer]
		da, dg := l.A.Rows, l.G.Rows
		if c.EigA != nil && (len(c.EigA.Values) != da || c.EigA.Q.Rows != da || c.EigA.Q.Cols != da) {
			return fmt.Errorf("kfac: restore caches: layer %d eigA dim mismatch", c.Layer)
		}
		if c.EigG != nil && (len(c.EigG.Values) != dg || c.EigG.Q.Rows != dg || c.EigG.Q.Cols != dg) {
			return fmt.Errorf("kfac: restore caches: layer %d eigG dim mismatch", c.Layer)
		}
		if c.InvA != nil && (c.InvA.Rows != da || c.InvA.Cols != da) {
			return fmt.Errorf("kfac: restore caches: layer %d invA dim mismatch", c.Layer)
		}
		if c.InvG != nil && (c.InvG.Rows != dg || c.InvG.Cols != dg) {
			return fmt.Errorf("kfac: restore caches: layer %d invG dim mismatch", c.Layer)
		}
		l.eigVersion, l.invVersion = c.EigVersion, c.InvVersion
		l.eigA, l.eigG, l.invA, l.invG = nil, nil, nil, nil
		if c.EigA != nil {
			l.eigA = cloneEigen(c.EigA)
		}
		if c.EigG != nil {
			l.eigG = cloneEigen(c.EigG)
		}
		if c.InvA != nil {
			l.invA = c.InvA.Clone()
		}
		if c.InvG != nil {
			l.invG = c.InvG.Clone()
		}
	}
	return nil
}

func cloneEigen(e *tensor.Eigen) *tensor.Eigen {
	return &tensor.Eigen{
		Values: append([]float64(nil), e.Values...),
		Q:      e.Q.Clone(),
	}
}
