package kfac

import (
	"testing"

	"compso/internal/nn"
	"compso/internal/xrand"
)

// TestFactorCacheHitMatchesRecompute proves the version-stamped factor cache
// is indistinguishable from recomputation: a cache-hit RefreshEigen yields
// bit-identical preconditioned gradients to both the original decomposition
// and a forced recompute of the same factors, and a covariance commit
// invalidates the cache. Covers both inversion routes.
func TestFactorCacheHitMatchesRecompute(t *testing.T) {
	for _, inv := range []Inversion{EigenDecomp, CholeskyInverse} {
		cfg := DefaultConfig()
		cfg.Inversion = inv
		model := buildModel(11)
		k := New(model, cfg)
		rng := xrand.NewSeeded(5)
		x, y := makeBatch(rng, 32)
		loss := nn.SoftmaxCrossEntropy{}
		logits := model.Forward(x, true)
		_, grad := loss.Loss(logits, y)
		model.ZeroGrad()
		model.Backward(grad)
		k.AccumulateStats(32)
		if err := k.CommitCovariances(k.PendingCovariances(), 1); err != nil {
			t.Fatal(err)
		}
		if k.EigenCached(0) {
			t.Fatalf("%v: cached before first refresh", inv)
		}
		if err := k.RefreshEigen(0); err != nil {
			t.Fatal(err)
		}
		if !k.EigenCached(0) {
			t.Fatalf("%v: not cached after refresh", inv)
		}
		p1, err := k.Precondition(0)
		if err != nil {
			t.Fatal(err)
		}
		// Cache-hit refresh: the skipped solve must leave the factors — and
		// therefore the preconditioned gradient — exactly as they were.
		if err := k.RefreshEigen(0); err != nil {
			t.Fatal(err)
		}
		p2, err := k.Precondition(0)
		if err != nil {
			t.Fatal(err)
		}
		// Forced recompute of the same factors must also agree: the cache is
		// a pure shortcut, never a source of different numbers.
		l := k.layers[0]
		l.eigA, l.eigG, l.invA, l.invG = nil, nil, nil, nil
		if k.EigenCached(0) {
			t.Fatalf("%v: cached after invalidation", inv)
		}
		if err := k.RefreshEigen(0); err != nil {
			t.Fatal(err)
		}
		p3, err := k.Precondition(0)
		if err != nil {
			t.Fatal(err)
		}
		for j := range p1 {
			if p1[j] != p2[j] || p1[j] != p3[j] {
				t.Fatalf("%v: element %d diverged: first %g, cache hit %g, recompute %g",
					inv, j, p1[j], p2[j], p3[j])
			}
		}
		// New statistics must invalidate the cache.
		k.AccumulateStats(32)
		if err := k.CommitCovariances(k.PendingCovariances(), 1); err != nil {
			t.Fatal(err)
		}
		if k.EigenCached(0) {
			t.Fatalf("%v: still cached after a covariance commit", inv)
		}
	}
}
