package kfac

import (
	"errors"
	"math"
	"testing"
)

// TestRefreshCholeskyRejectsNonFiniteFactors pins the pi-guard bugfix: a
// NaN factor trace compares false against `> 0` and used to sail through
// with pi = 1, baking NaN into the cached inverses. It must instead
// surface the typed ErrNonFiniteFactor before any inversion happens.
func TestRefreshCholeskyRejectsNonFiniteFactors(t *testing.T) {
	for _, poison := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		k := New(buildModel(9), DefaultConfig())
		l := k.layers[0]
		for i := 0; i < l.A.Rows; i++ {
			l.A.Data[i*l.A.Cols+i] = 1
		}
		for i := 0; i < l.G.Rows; i++ {
			l.G.Data[i*l.G.Cols+i] = 1
		}
		l.A.Data[0] = poison
		err := k.refreshCholesky(0)
		if err == nil {
			t.Fatalf("poison %v: refreshCholesky accepted a non-finite factor", poison)
		}
		if !errors.Is(err, ErrNonFiniteFactor) {
			t.Fatalf("poison %v: error %v is not ErrNonFiniteFactor", poison, err)
		}
		if l.invA != nil || l.invG != nil {
			t.Fatalf("poison %v: inverses cached despite the guard", poison)
		}
	}
}

// TestRefreshCholeskyAcceptsFiniteFactors: the guard must not reject
// healthy statistics.
func TestRefreshCholeskyAcceptsFiniteFactors(t *testing.T) {
	k := New(buildModel(9), DefaultConfig())
	l := k.layers[0]
	for i := 0; i < l.A.Rows; i++ {
		l.A.Data[i*l.A.Cols+i] = 2
	}
	for i := 0; i < l.G.Rows; i++ {
		l.G.Data[i*l.G.Cols+i] = 0.5
	}
	if err := k.refreshCholesky(0); err != nil {
		t.Fatalf("finite factors rejected: %v", err)
	}
	if l.invA == nil || l.invG == nil {
		t.Fatal("inverses not cached")
	}
	for _, x := range l.invA.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("non-finite inverse from finite factors")
		}
	}
}
