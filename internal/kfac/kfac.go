// Package kfac implements the K-FAC second-order optimizer (Martens &
// Grosse) in the distributed formulation the paper builds on (KAISA,
// §2.1–2.2): per-layer Kronecker factors A = E[aaᵀ] and G = E[ggᵀ]
// maintained as running averages, eigendecomposition-based preconditioning
// (Eq. 2), and the hooks a data-parallel harness needs — flattened
// covariance buffers for the factor all-reduce, per-layer preconditioned
// gradients for the all-gather that COMPSO compresses, and layer ownership
// assignment for the layer-wise work split.
package kfac

import (
	"fmt"
	"math"

	"compso/internal/nn"
	"compso/internal/tensor"
)

// Config holds the K-FAC hyper-parameters.
type Config struct {
	// Damping is the Tikhonov damping γ added to the Kronecker eigenvalue
	// products (Eq. 2).
	Damping float64
	// StatDecay is the running-average factor for A and G (0.95 typical);
	// the factors stabilize as training proceeds, which is one of the two
	// reasons COMPSO can compress aggressively early (§4.3).
	StatDecay float64
	// InvFreq is how many steps between eigendecomposition refreshes.
	InvFreq int
	// Momentum applies classical momentum to the preconditioned update.
	Momentum float64
	// WeightDecay is L2 regularization applied at update time.
	WeightDecay float64
	// KLClip rescales updates so lr²·Σ⟨P, Ĝ⟩ stays below this bound
	// (KAISA's gradient scaling); 0 disables clipping.
	KLClip float64
	// Inversion selects the preconditioning route: eigendecomposition
	// (default, Eq. 2) or KAISA's implicit Cholesky inversion.
	Inversion Inversion
	// WarmupSteps applies plain-gradient updates for the first N steps
	// while the Kronecker factors' running averages stabilize — the
	// standard guard against early preconditioned-step blowups in
	// production K-FAC implementations.
	WarmupSteps int
}

// DefaultConfig returns the configuration used across the experiments.
func DefaultConfig() Config {
	return Config{Damping: 0.003, StatDecay: 0.95, InvFreq: 10, Momentum: 0.9, KLClip: 0.001, WarmupSteps: 15}
}

// layerState tracks one K-FAC-preconditioned layer.
type layerState struct {
	name  string
	layer nn.KFACLayer

	// Running Kronecker factors: A is (in+1)×(in+1), G is out×out.
	A, G *tensor.Matrix
	// Pending locally computed batch factors awaiting the factor
	// all-reduce (nil between iterations).
	pendA, pendG *tensor.Matrix

	eigA, eigG *tensor.Eigen
	// eigVersion is the statVersion the cached eigendecomposition was
	// computed from; a matching version means A and G are unchanged and the
	// refresh can be skipped outright.
	eigVersion int
	// invA, invG cache the damped factor inverses in CholeskyInverse mode,
	// stamped with invVersion the same way.
	invA, invG *tensor.Matrix
	invVersion int
	// precond holds the layer's preconditioned gradient after
	// Precondition/SetPreconditioned.
	precond *tensor.Matrix
	vel     []float64
}

// KFAC is the optimizer. It is not safe for concurrent use; in simulated
// data-parallel training every worker owns one instance over its own model
// replica.
type KFAC struct {
	cfg  Config
	step int
	// statVersion counts covariance commits. The factor decompositions are
	// pure functions of A and G, which only change in CommitCovariances, so
	// a layer whose cached eigVersion/invVersion matches statVersion can
	// reuse its factors across the whole inverse-update interval — e.g. with
	// StatFreq > InvFreq most RefreshEigen calls become cache hits.
	statVersion int
	layers      []*layerState
	// others are non-K-FAC parameters (layer norms, embeddings) updated by
	// plain momentum SGD.
	others   []*nn.Param
	otherVel map[*nn.Param][]float64
}

// New builds a K-FAC optimizer over the model's preconditionable layers.
func New(model *nn.Sequential, cfg Config) *KFAC {
	if cfg.Damping <= 0 {
		panic(fmt.Sprintf("kfac: damping %g <= 0", cfg.Damping))
	}
	if cfg.InvFreq <= 0 {
		cfg.InvFreq = 1
	}
	k := &KFAC{cfg: cfg, otherVel: make(map[*nn.Param][]float64)}
	names, layers := model.KFACLayers()
	kfacParams := make(map[*nn.Param]bool)
	for i, l := range layers {
		p := l.KFACParam()
		kfacParams[p] = true
		inDim, outDim := p.W.Rows, p.W.Cols
		k.layers = append(k.layers, &layerState{
			name:  names[i],
			layer: l,
			A:     tensor.New(inDim, inDim),
			G:     tensor.New(outDim, outDim),
		})
	}
	for _, p := range model.Params() {
		if !kfacParams[p] {
			k.others = append(k.others, p)
		}
	}
	return k
}

// NumLayers returns the number of preconditioned layers.
func (k *KFAC) NumLayers() int { return len(k.layers) }

// LayerNames returns the preconditioned layers' unique names in order.
func (k *KFAC) LayerNames() []string {
	out := make([]string, len(k.layers))
	for i, l := range k.layers {
		out[i] = l.name
	}
	return out
}

// LayerGradSize returns the number of float32 values in layer i's
// preconditioned gradient — the per-layer all-gather message size.
func (k *KFAC) LayerGradSize(i int) int {
	p := k.layers[i].layer.KFACParam()
	return p.W.Rows * p.W.Cols
}

// AccumulateStats computes this batch's Kronecker factor contributions from
// the layers' captured statistics. Call it after Backward, before the
// factor all-reduce.
func (k *KFAC) AccumulateStats(batchSize int) {
	for _, l := range k.layers {
		a, g := l.layer.KFACStats()
		rows := float64(a.Rows)
		l.pendA = tensor.New(0, 0).TMatMul(a, a)
		l.pendA.Scale(1/rows, l.pendA)
		l.pendG = tensor.New(0, 0).TMatMul(g, g)
		// Backward gradients carry the 1/batch loss scaling; multiplying
		// by the batch size restores the per-sample scale of G.
		l.pendG.Scale(float64(batchSize), l.pendG)
	}
}

// CovarianceLen returns the length of the flattened pending-covariance
// buffer used for the factor all-reduce.
func (k *KFAC) CovarianceLen() int {
	n := 0
	for _, l := range k.layers {
		n += len(l.A.Data) + len(l.G.Data)
	}
	return n
}

// PendingCovariances flattens this batch's factor contributions into one
// buffer in layer order (A then G per layer) — the payload of the paper's
// "KFAC Allreduce" step. AccumulateStats must have been called.
func (k *KFAC) PendingCovariances() []float64 {
	buf := make([]float64, 0, k.CovarianceLen())
	for _, l := range k.layers {
		if l.pendA == nil {
			panic("kfac: PendingCovariances before AccumulateStats")
		}
		buf = append(buf, l.pendA.Data...)
		buf = append(buf, l.pendG.Data...)
	}
	return buf
}

// CommitCovariances folds the (all-reduced, summed) covariance buffer into
// the running averages, dividing by worldSize to average the workers'
// contributions.
func (k *KFAC) CommitCovariances(buf []float64, worldSize int) error {
	if len(buf) != k.CovarianceLen() {
		return fmt.Errorf("kfac: covariance buffer %d, want %d", len(buf), k.CovarianceLen())
	}
	if worldSize <= 0 {
		return fmt.Errorf("kfac: world size %d", worldSize)
	}
	inv := 1.0 / float64(worldSize)
	decay := k.cfg.StatDecay
	pos := 0
	for _, l := range k.layers {
		for i := range l.A.Data {
			l.A.Data[i] = decay*l.A.Data[i] + (1-decay)*buf[pos]*inv
			pos++
		}
		for i := range l.G.Data {
			l.G.Data[i] = decay*l.G.Data[i] + (1-decay)*buf[pos]*inv
			pos++
		}
		l.pendA, l.pendG = nil, nil
	}
	k.statVersion++
	return nil
}

// NeedsEigen reports whether this step refreshes the eigendecompositions
// (every InvFreq steps, and always on the first).
func (k *KFAC) NeedsEigen() bool {
	return k.step%k.cfg.InvFreq == 0
}

// RefreshEigen recomputes the cached factor decomposition of layer i —
// the "KFAC computation" stage whose cost distributed K-FAC splits across
// GPUs. In CholeskyInverse mode it inverts the damped factors instead.
// When the factors have not been recommitted since the cached decomposition
// was taken, the refresh is a no-op cache hit.
func (k *KFAC) RefreshEigen(i int) error {
	if k.cfg.Inversion == CholeskyInverse {
		return k.refreshCholesky(i)
	}
	l := k.layers[i]
	if l.eigA != nil && l.eigG != nil && l.eigVersion == k.statVersion {
		return nil
	}
	a := l.A.Clone().Symmetrize()
	g := l.G.Clone().Symmetrize()
	eigA, err := tensor.EigenSym(a)
	if err != nil {
		return fmt.Errorf("kfac: layer %s factor A: %w", l.name, err)
	}
	eigG, err := tensor.EigenSym(g)
	if err != nil {
		return fmt.Errorf("kfac: layer %s factor G: %w", l.name, err)
	}
	l.eigA, l.eigG = eigA, eigG
	l.eigVersion = k.statVersion
	return nil
}

// EigenCached reports whether layer i's decomposition (or inverse, in
// CholeskyInverse mode) is already valid for the current factor state, i.e.
// whether RefreshEigen would be a cache hit. Timing harnesses use this to
// avoid charging eigendecomposition cost for skipped work.
func (k *KFAC) EigenCached(i int) bool {
	l := k.layers[i]
	if k.cfg.Inversion == CholeskyInverse {
		return l.invA != nil && l.invG != nil && l.invVersion == k.statVersion
	}
	return l.eigA != nil && l.eigG != nil && l.eigVersion == k.statVersion
}

// Precondition computes layer i's preconditioned gradient
// P = Q_A [(Q_Aᵀ Ĝ Q_G) ⊘ (λ_A λ_Gᵀ + γ)] Q_Gᵀ (Eq. 2) from the layer's
// current (already averaged) gradient and returns it flattened as float32 —
// the exact payload of the paper's "KFAC Allgather". RefreshEigen must have
// succeeded at least once for the layer.
func (k *KFAC) Precondition(i int) ([]float32, error) {
	if k.cfg.Inversion == CholeskyInverse {
		return k.preconditionCholesky(i)
	}
	l := k.layers[i]
	if l.eigA == nil || l.eigG == nil {
		return nil, fmt.Errorf("kfac: layer %s preconditioned before eigendecomposition", l.name)
	}
	grad := l.layer.KFACParam().Grad
	// V = Q_Aᵀ · Ĝ · Q_G.
	tmp := tensor.New(0, 0).TMatMul(l.eigA.Q, grad)
	v := tensor.New(0, 0).MatMul(tmp, l.eigG.Q)
	// Divide elementwise by the damped Kronecker eigenvalues.
	for r := 0; r < v.Rows; r++ {
		la := l.eigA.Values[r]
		if la < 0 {
			la = 0
		}
		for c := 0; c < v.Cols; c++ {
			lg := l.eigG.Values[c]
			if lg < 0 {
				lg = 0
			}
			v.Data[r*v.Cols+c] /= la*lg + k.cfg.Damping
		}
	}
	// P = Q_A · V · Q_Gᵀ.
	tmp2 := tensor.New(0, 0).MatMul(l.eigA.Q, v)
	p := tensor.New(0, 0).MatMulT(tmp2, l.eigG.Q)
	l.precond = p
	out := make([]float32, len(p.Data))
	for j, x := range p.Data {
		out[j] = float32(x)
	}
	return out, nil
}

// SetPreconditioned installs a (possibly compression-round-tripped)
// preconditioned gradient for layer i, as received from the all-gather.
func (k *KFAC) SetPreconditioned(i int, vals []float32) error {
	l := k.layers[i]
	p := l.layer.KFACParam()
	if len(vals) != p.W.Rows*p.W.Cols {
		return fmt.Errorf("kfac: layer %s preconditioned gradient has %d values, want %d",
			l.name, len(vals), p.W.Rows*p.W.Cols)
	}
	m := tensor.New(p.W.Rows, p.W.Cols)
	for j, v := range vals {
		m.Data[j] = float64(v)
	}
	l.precond = m
	return nil
}

// ApplyUpdate performs the momentum-SGD update with the installed
// preconditioned gradients, KL-clips the overall step, updates the
// non-K-FAC parameters from their plain gradients, and advances the step
// counter.
func (k *KFAC) ApplyUpdate(lr float64) error {
	// During warmup the factors' running averages are still cold;
	// fall back to the raw gradient for the update direction.
	warmup := k.step < k.cfg.WarmupSteps
	updateOf := func(l *layerState) *tensor.Matrix {
		if warmup {
			return l.layer.KFACParam().Grad
		}
		return l.precond
	}
	// KL clipping factor ν = min(1, sqrt(KLClip / (lr²·Σ⟨P, Ĝ⟩))).
	nu := 1.0
	if k.cfg.KLClip > 0 {
		var vg float64
		for _, l := range k.layers {
			if l.precond == nil {
				return fmt.Errorf("kfac: layer %s has no preconditioned gradient", l.name)
			}
			grad := l.layer.KFACParam().Grad
			for j, p := range updateOf(l).Data {
				vg += p * grad.Data[j]
			}
		}
		if vg > 0 {
			nu = math.Min(1, math.Sqrt(k.cfg.KLClip/(lr*lr*vg)))
		}
	}
	for _, l := range k.layers {
		if l.precond == nil {
			return fmt.Errorf("kfac: layer %s has no preconditioned gradient", l.name)
		}
		p := l.layer.KFACParam()
		src := updateOf(l)
		if l.vel == nil {
			l.vel = make([]float64, len(p.W.Data))
		}
		for j := range p.W.Data {
			g := nu*src.Data[j] + k.cfg.WeightDecay*p.W.Data[j]
			l.vel[j] = k.cfg.Momentum*l.vel[j] + g
			p.W.Data[j] -= lr * l.vel[j]
		}
		l.precond = nil
	}
	for _, p := range k.others {
		v := k.otherVel[p]
		if v == nil {
			v = make([]float64, len(p.W.Data))
			k.otherVel[p] = v
		}
		for j := range p.W.Data {
			g := p.Grad.Data[j] + k.cfg.WeightDecay*p.W.Data[j]
			v[j] = k.cfg.Momentum*v[j] + g
			p.W.Data[j] -= lr * v[j]
		}
	}
	k.step++
	return nil
}

// Step runs one complete single-process K-FAC iteration: fold in this
// batch's statistics, refresh eigendecompositions when due, precondition
// every layer and apply the update. Distributed harnesses call the
// individual stages instead, interleaving the collectives.
func (k *KFAC) Step(batchSize int, lr float64) error {
	k.AccumulateStats(batchSize)
	if err := k.CommitCovariances(k.PendingCovariances(), 1); err != nil {
		return err
	}
	if k.NeedsEigen() {
		for i := range k.layers {
			if err := k.RefreshEigen(i); err != nil {
				return err
			}
		}
	}
	for i := range k.layers {
		vals, err := k.Precondition(i)
		if err != nil {
			return err
		}
		if err := k.SetPreconditioned(i, vals); err != nil {
			return err
		}
	}
	return k.ApplyUpdate(lr)
}

// FactorDims returns the (A dim, G dim) pair for layer i, used by the
// timing model for eigendecomposition cost.
func (k *KFAC) FactorDims(i int) (int, int) {
	l := k.layers[i]
	return l.A.Rows, l.G.Rows
}
