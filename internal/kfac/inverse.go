package kfac

import (
	"errors"
	"fmt"
	"math"

	"compso/internal/tensor"
)

// ErrNonFiniteFactor reports that a committed Kronecker factor carries
// non-finite statistics (NaN/Inf traces). It surfaces instead of letting a
// poisoned factor silently corrupt the cached inverses: rate-1 payload
// corruption can feed non-finite gradients into the factor updates, a NaN
// trace passes a plain `> 0` guard (NaN compares false, leaving pi = 1),
// and the damped solve then bakes NaN into invA/invG for every later step.
var ErrNonFiniteFactor = errors.New("kfac: non-finite factor statistics")

// isFinite reports whether x is neither NaN nor ±Inf.
func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Inversion selects how the Fisher-factor inverse is applied (§2.2: KAISA
// "employs an alternate implicit inversion method for FIM to further
// optimize the process").
type Inversion int

const (
	// EigenDecomp preconditions through the eigendecomposition route of
	// Eq. 2 — the default, required for exact damping (A⊗G + γI)⁻¹.
	EigenDecomp Inversion = iota
	// CholeskyInverse preconditions with explicitly inverted factors under
	// factored Tikhonov damping: (A + π√γ·I)⁻¹ Ĝ (G + √γ/π·I)⁻¹ with
	// π = √(‖A‖/dim_A ÷ ‖G‖/dim_G) — KAISA's implicit-inversion method.
	// It avoids the eigendecomposition entirely at the cost of an
	// approximate damping split.
	CholeskyInverse
)

// String implements fmt.Stringer.
func (i Inversion) String() string {
	switch i {
	case EigenDecomp:
		return "eigendecomposition"
	case CholeskyInverse:
		return "cholesky-inverse"
	default:
		return fmt.Sprintf("Inversion(%d)", int(i))
	}
}

// refreshCholesky computes and caches the damped factor inverses for
// layer i, skipping the solve when the cached inverses already correspond
// to the current committed factors.
func (k *KFAC) refreshCholesky(i int) error {
	l := k.layers[i]
	if l.invA != nil && l.invG != nil && l.invVersion == k.statVersion {
		return nil
	}
	a := l.A.Clone().Symmetrize()
	g := l.G.Clone().Symmetrize()
	// Factored Tikhonov: split the damping between the factors in
	// proportion to their average eigenvalue (trace/dim), as KAISA does.
	traceA := a.Trace() / float64(a.Rows)
	traceG := g.Trace() / float64(g.Rows)
	if !isFinite(traceA) || !isFinite(traceG) {
		return fmt.Errorf("%w: layer %s average eigenvalues A=%g G=%g",
			ErrNonFiniteFactor, l.name, traceA, traceG)
	}
	pi := 1.0
	if traceA > 0 && traceG > 0 {
		pi = math.Sqrt(traceA / traceG)
	}
	sqrtGamma := math.Sqrt(k.cfg.Damping)
	a.AddDiag(pi * sqrtGamma)
	g.AddDiag(sqrtGamma / pi)
	invA, err := tensor.InverseSPD(a)
	if err != nil {
		return fmt.Errorf("kfac: layer %s invert A: %w", l.name, err)
	}
	invG, err := tensor.InverseSPD(g)
	if err != nil {
		return fmt.Errorf("kfac: layer %s invert G: %w", l.name, err)
	}
	l.invA, l.invG = invA, invG
	l.invVersion = k.statVersion
	return nil
}

// preconditionCholesky computes P = A⁻¹ · Ĝ · G⁻¹ for layer i.
func (k *KFAC) preconditionCholesky(i int) ([]float32, error) {
	l := k.layers[i]
	if l.invA == nil || l.invG == nil {
		return nil, fmt.Errorf("kfac: layer %s preconditioned before factor inversion", l.name)
	}
	grad := l.layer.KFACParam().Grad
	tmp := tensor.New(0, 0).MatMul(l.invA, grad)
	p := tensor.New(0, 0).MatMul(tmp, l.invG)
	l.precond = p
	out := make([]float32, len(p.Data))
	for j, x := range p.Data {
		out[j] = float32(x)
	}
	return out, nil
}
