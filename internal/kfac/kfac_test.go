package kfac

import (
	"math"
	"testing"

	"compso/internal/compress"
	"compso/internal/nn"
	"compso/internal/tensor"
	"compso/internal/xrand"
)

func buildModel(seed int64) *nn.Sequential {
	rng := xrand.NewSeeded(seed)
	return nn.NewSequential(
		nn.NewDense(2, 16, rng),
		nn.NewReLU(),
		nn.NewDense(16, 3, rng),
	)
}

func makeBatch(rng interface {
	IntN(int) int
	NormFloat64() float64
}, n int) (*tensor.Matrix, *tensor.Matrix) {
	centers := [][2]float64{{2, 0}, {-2, 2}, {0, -3}}
	x := tensor.New(n, 2)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		c := rng.IntN(3)
		x.Data[i*2] = centers[c][0] + rng.NormFloat64()*0.3
		x.Data[i*2+1] = centers[c][1] + rng.NormFloat64()*0.3
		y.Data[i] = float64(c)
	}
	return x, y
}

func TestNewFindsKFACLayers(t *testing.T) {
	k := New(buildModel(1), DefaultConfig())
	if k.NumLayers() != 2 {
		t.Fatalf("NumLayers = %d, want 2", k.NumLayers())
	}
	names := k.LayerNames()
	if names[0] == names[1] {
		t.Fatal("layer names not unique")
	}
	if k.LayerGradSize(0) != 3*16 { // (2+1)×16
		t.Fatalf("LayerGradSize(0) = %d, want 48", k.LayerGradSize(0))
	}
	a, g := k.FactorDims(0)
	if a != 3 || g != 16 {
		t.Fatalf("FactorDims = %d,%d want 3,16", a, g)
	}
}

func TestKFACConvergesFasterThanSGD(t *testing.T) {
	// The premise of the paper: K-FAC reaches a loss target in fewer
	// iterations than SGD (Figure 6a). Train both on the same stream.
	const iters = 60
	runSGD := func() float64 {
		rng := xrand.NewSeeded(100)
		model := buildModel(2)
		loss := nn.SoftmaxCrossEntropy{}
		var last float64
		for i := 0; i < iters; i++ {
			x, y := makeBatch(rng, 32)
			logits := model.Forward(x, true)
			l, grad := loss.Loss(logits, y)
			last = l
			model.ZeroGrad()
			model.Backward(grad)
			for _, p := range model.Params() {
				for j := range p.W.Data {
					p.W.Data[j] -= 0.05 * p.Grad.Data[j]
				}
			}
		}
		return last
	}
	runKFAC := func() float64 {
		rng := xrand.NewSeeded(100)
		model := buildModel(2)
		k := New(model, DefaultConfig())
		loss := nn.SoftmaxCrossEntropy{}
		var last float64
		for i := 0; i < iters; i++ {
			x, y := makeBatch(rng, 32)
			logits := model.Forward(x, true)
			l, grad := loss.Loss(logits, y)
			last = l
			model.ZeroGrad()
			model.Backward(grad)
			if err := k.Step(32, 0.05); err != nil {
				t.Fatal(err)
			}
		}
		return last
	}
	sgdLoss := runSGD()
	kfacLoss := runKFAC()
	if kfacLoss >= sgdLoss {
		t.Fatalf("KFAC loss %g >= SGD loss %g after %d iters", kfacLoss, sgdLoss, iters)
	}
}

func TestPreconditionBeforeEigenFails(t *testing.T) {
	model := buildModel(3)
	k := New(model, DefaultConfig())
	if _, err := k.Precondition(0); err == nil {
		t.Fatal("Precondition before eigendecomposition succeeded")
	}
}

func TestCovarianceRoundTrip(t *testing.T) {
	model := buildModel(4)
	k := New(model, DefaultConfig())
	rng := xrand.NewSeeded(5)
	x, y := makeBatch(rng, 16)
	logits := model.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy{}.Loss(logits, y)
	model.Backward(grad)
	k.AccumulateStats(16)
	buf := k.PendingCovariances()
	if len(buf) != k.CovarianceLen() {
		t.Fatalf("buffer %d, want %d", len(buf), k.CovarianceLen())
	}
	if err := k.CommitCovariances(buf, 1); err != nil {
		t.Fatal(err)
	}
	if err := k.CommitCovariances(buf[:3], 1); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := k.CommitCovariances(buf, 0); err == nil {
		t.Fatal("world size 0 accepted")
	}
}

func TestPreconditionMatchesDirectInverse(t *testing.T) {
	// The eigendecomposition route (Eq. 2) must agree with the explicit
	// (A⊗G + γI)⁻¹ vec(grad) it approximates — on a small layer where the
	// Kronecker inverse is computable directly.
	rng := xrand.NewSeeded(6)
	model := nn.NewSequential(nn.NewDense(2, 2, rng))
	k := New(model, Config{Damping: 0.01, StatDecay: 0.0, InvFreq: 1})
	x := tensor.FromSlice(4, 2, []float64{1, 2, -1, 0.5, 0.3, -2, 2, 1})
	y := tensor.FromSlice(4, 1, []float64{0, 1, 1, 0})
	logits := model.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy{}.Loss(logits, y)
	model.ZeroGrad()
	model.Backward(grad)
	k.AccumulateStats(4)
	if err := k.CommitCovariances(k.PendingCovariances(), 1); err != nil {
		t.Fatal(err)
	}
	if err := k.RefreshEigen(0); err != nil {
		t.Fatal(err)
	}
	got, err := k.Precondition(0)
	if err != nil {
		t.Fatal(err)
	}

	// Direct route. With StatDecay 0 the running factors equal this
	// batch's factors times (1-decay)=1.
	l := k.layers[0]
	// vec ordering: our V = QAᵀ Ĝ QG with Ĝ (in+1)×out corresponds to
	// F = A ⊗ G acting on vec_row(Ĝ) where rows index A.
	kron := tensor.Kron(l.A.Clone().Symmetrize(), l.G.Clone().Symmetrize())
	kron.AddDiag(0.01)
	inv, err := tensor.InverseSPD(kron)
	if err != nil {
		t.Fatal(err)
	}
	gradFlat := l.layer.KFACParam().Grad.Data
	want := inv.MulVec(nil, gradFlat)
	for i := range want {
		if math.Abs(want[i]-float64(got[i])) > 1e-4*(1+math.Abs(want[i])) {
			t.Fatalf("precondition[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSetPreconditionedValidatesLength(t *testing.T) {
	model := buildModel(7)
	k := New(model, DefaultConfig())
	if err := k.SetPreconditioned(0, make([]float32, 5)); err == nil {
		t.Fatal("wrong-length preconditioned gradient accepted")
	}
}

func TestApplyUpdateRequiresPrecond(t *testing.T) {
	model := buildModel(8)
	k := New(model, DefaultConfig())
	if err := k.ApplyUpdate(0.1); err == nil {
		t.Fatal("ApplyUpdate without preconditioned gradients succeeded")
	}
}

func TestNeedsEigenSchedule(t *testing.T) {
	model := buildModel(9)
	cfg := DefaultConfig()
	cfg.InvFreq = 3
	k := New(model, cfg)
	rng := xrand.NewSeeded(10)
	wantPattern := []bool{true, false, false, true, false, false}
	for i, want := range wantPattern {
		if got := k.NeedsEigen(); got != want {
			t.Fatalf("step %d: NeedsEigen = %v, want %v", i, got, want)
		}
		x, y := makeBatch(rng, 8)
		logits := model.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy{}.Loss(logits, y)
		model.ZeroGrad()
		model.Backward(grad)
		if err := k.Step(8, 0.01); err != nil {
			t.Fatal(err)
		}
	}
}

func TestKLClipBoundsUpdate(t *testing.T) {
	model := buildModel(11)
	cfg := DefaultConfig()
	cfg.KLClip = 1e-6 // very tight clip
	k := New(model, cfg)
	rng := xrand.NewSeeded(12)
	x, y := makeBatch(rng, 16)
	before := make([]float64, 0)
	for _, p := range model.Params() {
		before = append(before, p.W.Data...)
	}
	logits := model.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy{}.Loss(logits, y)
	model.ZeroGrad()
	model.Backward(grad)
	if err := k.Step(16, 1.0); err != nil { // large lr; clip must protect
		t.Fatal(err)
	}
	after := make([]float64, 0)
	for _, p := range model.Params() {
		after = append(after, p.W.Data...)
	}
	var delta float64
	for i := range before {
		d := after[i] - before[i]
		delta += d * d
	}
	if math.Sqrt(delta) > 1.0 {
		t.Fatalf("KL clip failed: update norm %g", math.Sqrt(delta))
	}
}

func TestDistributedStagesMatchSingleProcess(t *testing.T) {
	// Running the staged API (accumulate → commit → eigen → precondition →
	// set → apply) must equal Step exactly.
	modelA := buildModel(13)
	modelB := buildModel(13)
	kA := New(modelA, DefaultConfig())
	kB := New(modelB, DefaultConfig())
	rngA := xrand.NewSeeded(14)
	rngB := xrand.NewSeeded(14)
	for iter := 0; iter < 3; iter++ {
		xA, yA := makeBatch(rngA, 8)
		xB, yB := makeBatch(rngB, 8)
		for m, pair := range []struct {
			model *nn.Sequential
			x, y  *tensor.Matrix
		}{{modelA, xA, yA}, {modelB, xB, yB}} {
			logits := pair.model.Forward(pair.x, true)
			_, grad := nn.SoftmaxCrossEntropy{}.Loss(logits, pair.y)
			pair.model.ZeroGrad()
			pair.model.Backward(grad)
			_ = m
		}
		if err := kA.Step(8, 0.02); err != nil {
			t.Fatal(err)
		}
		kB.AccumulateStats(8)
		if err := kB.CommitCovariances(kB.PendingCovariances(), 1); err != nil {
			t.Fatal(err)
		}
		if kB.NeedsEigen() {
			for i := 0; i < kB.NumLayers(); i++ {
				if err := kB.RefreshEigen(i); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < kB.NumLayers(); i++ {
			v, err := kB.Precondition(i)
			if err != nil {
				t.Fatal(err)
			}
			if err := kB.SetPreconditioned(i, v); err != nil {
				t.Fatal(err)
			}
		}
		if err := kB.ApplyUpdate(0.02); err != nil {
			t.Fatal(err)
		}
	}
	pa, pb := modelA.Params(), modelB.Params()
	for i := range pa {
		for j := range pa[i].W.Data {
			if math.Abs(pa[i].W.Data[j]-pb[i].W.Data[j]) > 1e-9 {
				t.Fatalf("param %d[%d] diverged: %g vs %g", i, j, pa[i].W.Data[j], pb[i].W.Data[j])
			}
		}
	}
}

func TestCholeskyInversionConverges(t *testing.T) {
	model := buildModel(30)
	cfg := DefaultConfig()
	cfg.Inversion = CholeskyInverse
	k := New(model, cfg)
	rng := xrand.NewSeeded(31)
	loss := nn.SoftmaxCrossEntropy{}
	var first, last float64
	for i := 0; i < 60; i++ {
		x, y := makeBatch(rng, 32)
		logits := model.Forward(x, true)
		l, grad := loss.Loss(logits, y)
		if i == 0 {
			first = l
		}
		last = l
		model.ZeroGrad()
		model.Backward(grad)
		if err := k.Step(32, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	if last > first/3 {
		t.Fatalf("Cholesky-mode KFAC did not converge: %g -> %g", first, last)
	}
}

func TestCholeskyMatchesEigenDirection(t *testing.T) {
	// Both inversion routes approximate the same natural-gradient
	// direction. At vanishing damping they diverge in the factors'
	// near-null directions (joint vs factored Tikhonov regularize those
	// differently), so compare at a practical damping where both are
	// well-posed.
	run := func(inv Inversion) []float32 {
		model := buildModel(32)
		cfg := Config{Damping: 0.05, StatDecay: 0, InvFreq: 1, Inversion: inv}
		k := New(model, cfg)
		rng := xrand.NewSeeded(33)
		x, y := makeBatch(rng, 64)
		logits := model.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy{}.Loss(logits, y)
		model.ZeroGrad()
		model.Backward(grad)
		k.AccumulateStats(64)
		if err := k.CommitCovariances(k.PendingCovariances(), 1); err != nil {
			t.Fatal(err)
		}
		if err := k.RefreshEigen(1); err != nil {
			t.Fatal(err)
		}
		v, err := k.Precondition(1)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a := run(EigenDecomp)
	b := run(CholeskyInverse)
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	cos := dot / math.Sqrt(na*nb)
	if cos < 0.95 {
		t.Fatalf("inversion routes diverge: cosine %.3f", cos)
	}
}

func TestInversionString(t *testing.T) {
	if EigenDecomp.String() != "eigendecomposition" || CholeskyInverse.String() != "cholesky-inverse" {
		t.Fatal("Inversion.String mismatch")
	}
}

func TestShampooConverges(t *testing.T) {
	model := buildModel(60)
	s := NewShampoo(model, 1e-4, 5)
	if s.NumLayers() != 2 {
		t.Fatalf("shampoo layers %d", s.NumLayers())
	}
	rng := xrand.NewSeeded(61)
	loss := nn.SoftmaxCrossEntropy{}
	var first, last float64
	for i := 0; i < 80; i++ {
		x, y := makeBatch(rng, 32)
		logits := model.Forward(x, true)
		l, grad := loss.Loss(logits, y)
		if i == 0 {
			first = l
		}
		last = l
		model.ZeroGrad()
		model.Backward(grad)
		if err := s.Step(0.02); err != nil {
			t.Fatal(err)
		}
	}
	if last > first/3 {
		t.Fatalf("Shampoo did not converge: %g -> %g", first, last)
	}
}

func TestShampooGradientsCompressLikeKFACs(t *testing.T) {
	// COMPSO's pipeline applies unchanged to Shampoo-preconditioned
	// gradients: same shapes, bounded error round trip.
	model := buildModel(62)
	s := NewShampoo(model, 1e-4, 1)
	rng := xrand.NewSeeded(63)
	x, y := makeBatch(rng, 32)
	logits := model.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy{}.Loss(logits, y)
	model.ZeroGrad()
	model.Backward(grad)
	vals, err := s.Precondition(1)
	if err != nil {
		t.Fatal(err)
	}
	comp := compress.NewCOMPSO(64)
	blob, err := comp.Compress(vals)
	if err != nil {
		t.Fatal(err)
	}
	out, err := comp.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if e := math.Abs(float64(out[i] - vals[i])); e > comp.MaxError()+1e-7 {
			t.Fatalf("error %g at %d", e, i)
		}
	}
}

func TestInverseFourthRoot(t *testing.T) {
	// (m+εI)^{-1/4} to the fourth power times (m+εI) must be identity.
	rng := xrand.NewSeeded(65)
	b := tensor.New(5, 5)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	m := tensor.New(0, 0).TMatMul(b, b)
	const eps = 1e-6
	root, err := inverseFourthRoot(m, eps)
	if err != nil {
		t.Fatal(err)
	}
	r2 := tensor.New(0, 0).MatMul(root, root)
	r4 := tensor.New(0, 0).MatMul(r2, r2)
	damped := m.Clone().Symmetrize().AddDiag(eps)
	prod := tensor.New(0, 0).MatMul(r4, damped)
	id := tensor.Identity(5)
	for i := range id.Data {
		if math.Abs(prod.Data[i]-id.Data[i]) > 1e-6 {
			t.Fatalf("root⁴·m != I at %d: %g", i, prod.Data[i])
		}
	}
}

func TestWarmupUsesRawGradient(t *testing.T) {
	// During warmup the update must equal a plain (clipped) gradient step:
	// two models, one with huge damping (useless preconditioner) and one
	// with tiny damping, must take identical steps while warming up.
	run := func(damping float64) []float64 {
		model := buildModel(90)
		cfg := Config{Damping: damping, StatDecay: 0.95, InvFreq: 1, WarmupSteps: 5}
		k := New(model, cfg)
		rng := xrand.NewSeeded(91)
		for i := 0; i < 3; i++ { // stays inside warmup
			x, y := makeBatch(rng, 16)
			logits := model.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy{}.Loss(logits, y)
			model.ZeroGrad()
			model.Backward(grad)
			if err := k.Step(16, 0.01); err != nil {
				t.Fatal(err)
			}
		}
		var out []float64
		for _, p := range model.Params() {
			out = append(out, p.W.Data...)
		}
		return out
	}
	a := run(1e-6)
	b := run(1e3)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("warmup updates depend on damping at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
