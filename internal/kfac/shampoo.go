package kfac

import (
	"fmt"
	"math"

	"compso/internal/nn"
	"compso/internal/tensor"
)

// Shampoo implements the Shampoo second-order optimizer [Gupta et al.,
// ICML'18], one of the second-order family the paper's introduction
// surveys alongside K-FAC. For a weight matrix W with gradient G it
// maintains the factored statistics L += G·Gᵀ and R += Gᵀ·G and
// preconditions with P = L^{-1/4} · G · R^{-1/4}.
//
// Shampoo produces per-layer preconditioned gradient matrices of exactly
// the same shape as K-FAC's, so the COMPSO compression pipeline applies to
// it unchanged — demonstrating that the compressor generalizes across
// second-order optimizers.
type Shampoo struct {
	// Epsilon regularizes the inverse roots.
	Epsilon float64
	// UpdateFreq controls how often the inverse roots are recomputed.
	UpdateFreq int
	// Momentum applies classical momentum to the preconditioned update.
	Momentum float64

	step   int
	layers []*shampooLayer
	others []*nn.Param
	velo   map[*nn.Param][]float64
}

type shampooLayer struct {
	param        *nn.Param
	l, r         *tensor.Matrix // factored statistics
	lRoot, rRoot *tensor.Matrix // cached inverse fourth roots
	vel          []float64
}

// NewShampoo builds the optimizer over the model's matrix-shaped
// parameters (the same layers K-FAC preconditions); the rest fall back to
// momentum SGD.
func NewShampoo(model *nn.Sequential, epsilon float64, updateFreq int) *Shampoo {
	if epsilon <= 0 {
		panic(fmt.Sprintf("kfac: shampoo epsilon %g <= 0", epsilon))
	}
	if updateFreq <= 0 {
		updateFreq = 1
	}
	s := &Shampoo{Epsilon: epsilon, UpdateFreq: updateFreq, Momentum: 0.9, velo: map[*nn.Param][]float64{}}
	_, kfacLayers := model.KFACLayers()
	matrixParams := map[*nn.Param]bool{}
	for _, l := range kfacLayers {
		p := l.KFACParam()
		matrixParams[p] = true
		s.layers = append(s.layers, &shampooLayer{
			param: p,
			l:     tensor.New(p.W.Rows, p.W.Rows),
			r:     tensor.New(p.W.Cols, p.W.Cols),
		})
	}
	for _, p := range model.Params() {
		if !matrixParams[p] {
			s.others = append(s.others, p)
		}
	}
	return s
}

// NumLayers returns the number of preconditioned layers.
func (s *Shampoo) NumLayers() int { return len(s.layers) }

// Precondition computes layer i's Shampoo-preconditioned gradient
// flattened as float32 — interchangeable with KFAC.Precondition for
// compression and all-gather purposes.
func (s *Shampoo) Precondition(i int) ([]float32, error) {
	l := s.layers[i]
	grad := l.param.Grad
	// Update statistics.
	l.l.AXPY(1, tensor.New(0, 0).MatMulT(grad, grad))
	l.r.AXPY(1, tensor.New(0, 0).TMatMul(grad, grad))
	if s.step%s.UpdateFreq == 0 || l.lRoot == nil {
		var err error
		l.lRoot, err = inverseFourthRoot(l.l, s.Epsilon)
		if err != nil {
			return nil, fmt.Errorf("kfac: shampoo L factor: %w", err)
		}
		l.rRoot, err = inverseFourthRoot(l.r, s.Epsilon)
		if err != nil {
			return nil, fmt.Errorf("kfac: shampoo R factor: %w", err)
		}
	}
	tmp := tensor.New(0, 0).MatMul(l.lRoot, grad)
	p := tensor.New(0, 0).MatMul(tmp, l.rRoot)
	out := make([]float32, len(p.Data))
	for j, v := range p.Data {
		out[j] = float32(v)
	}
	return out, nil
}

// Step performs one complete optimizer step: precondition every layer and
// apply momentum updates (plus plain SGD for non-matrix parameters).
func (s *Shampoo) Step(lr float64) error {
	for i, l := range s.layers {
		vals, err := s.Precondition(i)
		if err != nil {
			return err
		}
		if l.vel == nil {
			l.vel = make([]float64, len(l.param.W.Data))
		}
		for j := range l.param.W.Data {
			l.vel[j] = s.Momentum*l.vel[j] + float64(vals[j])
			l.param.W.Data[j] -= lr * l.vel[j]
		}
	}
	for _, p := range s.others {
		v := s.velo[p]
		if v == nil {
			v = make([]float64, len(p.W.Data))
			s.velo[p] = v
		}
		for j := range p.W.Data {
			v[j] = s.Momentum*v[j] + p.Grad.Data[j]
			p.W.Data[j] -= lr * v[j]
		}
	}
	s.step++
	return nil
}

// inverseFourthRoot computes (m + εI)^{-1/4} via eigendecomposition.
func inverseFourthRoot(m *tensor.Matrix, eps float64) (*tensor.Matrix, error) {
	damped := m.Clone().Symmetrize().AddDiag(eps)
	e, err := tensor.EigenSym(damped)
	if err != nil {
		return nil, err
	}
	n := len(e.Values)
	// Q · diag(λ^{-1/4}) · Qᵀ.
	qd := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lam := e.Values[j]
			if lam < eps {
				lam = eps
			}
			qd.Data[i*n+j] = e.Q.Data[i*n+j] * math.Pow(lam, -0.25)
		}
	}
	return tensor.New(0, 0).MatMulT(qd, e.Q), nil
}
