package train

import (
	"strings"
	"testing"

	"compso/internal/compress"
	"compso/internal/kfac"
)

// powerSGDFactory builds shared-seed PowerSGD instances — identical on
// every worker, the ring-mode SPMD invariant.
func powerSGDFactory(ef bool) func(rank int) compress.Compressor {
	return func(rank int) compress.Compressor {
		c, err := compress.ByName("powersgd", compress.Options{Seed: 7, Rank: 4, ErrorFeedback: ef})
		if err != nil {
			panic(err)
		}
		return c
	}
}

// TestSGDWithPowerSGDRingPath: an AllReducible compressor must route the
// gradient exchange through the ring all-reduce — never the blob
// all-gather — and still converge.
func TestSGDWithPowerSGDRingPath(t *testing.T) {
	cfg := baseConfig(40)
	cfg.NewCompressor = powerSGDFactory(false)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSeconds["grad-lowrank-allreduce"] <= 0 {
		t.Fatalf("no low-rank allreduce time recorded: %v", res.CommSeconds)
	}
	if res.CommSeconds["grad-allgather"] > 0 {
		t.Fatalf("low-rank run used the all-gather path: %v", res.CommSeconds)
	}
	for k := range res.AlgSeconds {
		if strings.HasPrefix(k, "allgather/") {
			t.Fatalf("all-gather algorithm time attributed in a ring run: %v", res.AlgSeconds)
		}
	}
	foundAR := false
	for k := range res.AlgSeconds {
		if strings.HasPrefix(k, "allreduce/") {
			foundAR = true
		}
	}
	if !foundAR {
		t.Fatalf("no allreduce algorithm attribution: %v", res.AlgSeconds)
	}
	if res.FinalLoss >= res.Losses[0] {
		t.Fatalf("loss did not drop: %v", res.Losses)
	}
	if res.MeanCR <= 4 {
		t.Fatalf("ring path mean CR %.2f, want substantial compression", res.MeanCR)
	}
}

// TestPowerSGDRingDeterministic: repeat runs must be bit-identical — the
// ring path's shared factor state is deterministic end to end.
func TestPowerSGDRingDeterministic(t *testing.T) {
	run := func() *Result {
		cfg := baseConfig(20)
		cfg.NewCompressor = powerSGDFactory(false)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Losses) != len(b.Losses) {
		t.Fatalf("eval counts differ: %d vs %d", len(a.Losses), len(b.Losses))
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("loss %d differs: %v vs %v", i, a.Losses[i], b.Losses[i])
		}
	}
	if a.MeanCR != b.MeanCR {
		t.Fatalf("MeanCR differs: %v vs %v", a.MeanCR, b.MeanCR)
	}
}

// TestSGDWithPowerSGDErrorFeedback: the EF wrapper must ride the ring
// path (residual against the aggregated reconstruction) and converge.
func TestSGDWithPowerSGDErrorFeedback(t *testing.T) {
	cfg := baseConfig(40)
	cfg.NewCompressor = powerSGDFactory(true)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSeconds["grad-lowrank-allreduce"] <= 0 {
		t.Fatalf("EF-wrapped low-rank run left the ring path: %v", res.CommSeconds)
	}
	if res.FinalLoss >= res.Losses[0] {
		t.Fatalf("loss did not drop: %v", res.Losses)
	}
}

// TestEFOverNonReducibleStaysOnAllGather: EF around a family that can't
// sum-aggregate must fall back to the blob all-gather.
func TestEFOverNonReducibleStaysOnAllGather(t *testing.T) {
	cfg := baseConfig(12)
	cfg.NewCompressor = func(rank int) compress.Compressor {
		return compress.NewErrorFeedback(compress.NewQSGD(8, int64(rank)+3))
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSeconds["grad-lowrank-allreduce"] > 0 {
		t.Fatalf("non-reducible EF stack took the ring path: %v", res.CommSeconds)
	}
	if res.CommSeconds["grad-allgather"] <= 0 {
		t.Fatalf("no all-gather time recorded: %v", res.CommSeconds)
	}
}

// TestPerLayerKFACPlan: mixed per-layer families (PowerSGD on even
// layers, COMPSO on odd) through the K-FAC exchange, decoded by the
// magic-byte dispatcher on the receive side.
func TestPerLayerKFACPlan(t *testing.T) {
	cfg := baseConfig(40)
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.AggregationM = 1
	cfg.NewLayerCompressor = func(rank, layer int) compress.Compressor {
		if layer%2 == 0 {
			return compress.NewPowerSGD(4, 7) // shared seed per layer
		}
		c, err := compress.ByName("compso", compress.Options{Seed: int64(rank)*100 + int64(layer)})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Losses[0] {
		t.Fatalf("per-layer K-FAC loss did not drop: %v", res.Losses)
	}
	if res.MeanCR <= 1 {
		t.Fatalf("per-layer plan mean CR %.2f", res.MeanCR)
	}
	if res.CommSeconds["kfac-allgather"] <= 0 {
		t.Fatalf("no kfac all-gather time: %v", res.CommSeconds)
	}
}

// TestPerLayerKFACValidation: the per-layer path's config preconditions
// are enforced.
func TestPerLayerKFACValidation(t *testing.T) {
	lc := func(rank, layer int) compress.Compressor { return compress.NewPowerSGD(4, 7) }

	cfg := baseConfig(4)
	cfg.NewLayerCompressor = lc
	if _, err := Run(cfg); err == nil {
		t.Fatal("NewLayerCompressor without UseKFAC accepted")
	}

	cfg = baseConfig(4)
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.AggregationM = 4
	cfg.NewLayerCompressor = lc
	if _, err := Run(cfg); err == nil {
		t.Fatal("NewLayerCompressor with AggregationM != 1 accepted")
	}

	cfg = baseConfig(4)
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.AggregationM = 1
	cfg.NewLayerCompressor = lc
	cfg.NewCompressor = func(rank int) compress.Compressor { return compress.NewQSGD(8, 1) }
	if _, err := Run(cfg); err == nil {
		t.Fatal("NewLayerCompressor alongside NewCompressor accepted")
	}
}
