package train

import (
	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/gpusim"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/obs"
)

// tele is the per-worker instrumentation state: the observability recorder
// (nil when tracing is off), the roofline device model used to charge
// compression-kernel time, the flop-rate model for the K-FAC numerics, and
// the currently open step/phase spans.
//
// Two invariants hold throughout:
//
//   - Simulated-time charging (Worker.Compute calls) is unconditional, so
//     enabling the recorder never changes simulated results — the trace is
//     a pure observation of the same deterministic timeline.
//   - With a nil recorder every method reduces to the Compute charge plus a
//     nil check: no closures, no interface boxing, no allocations. The
//     zero-allocation contract is enforced by a benchmark-derived test in
//     package obs.
type tele struct {
	w    *cluster.Worker
	rec  *obs.Recorder
	dev  gpusim.Device
	pipe gpusim.Pipeline
	cm   modelzoo.ComputeModel
	step obs.SpanID
	// faults tallies logical fault events on rank 0 (lazily allocated;
	// nil on fault-free runs), surfaced as Result.FaultEvents.
	faults map[string]int64
}

func newTele(w *cluster.Worker) *tele {
	return &tele{
		w:    w,
		rec:  w.Recorder(),
		dev:  gpusim.A100(),
		pipe: gpusim.COMPSOFused(),
		cm:   modelzoo.A100Compute(),
	}
}

// beginStep opens the iteration's step span and parents subsequent
// collective spans under it.
func (t *tele) beginStep(it int) {
	if t.rec == nil {
		return
	}
	t.step = t.rec.StartSpan(0, t.w.Rank(), obs.CatStep, "step", t.w.Time())
	t.w.SetSpanContext(t.step)
}

// endStep closes the iteration's step span.
func (t *tele) endStep(it int) {
	if t.rec == nil {
		return
	}
	a := obs.NoAttrs
	a.Step = it
	t.rec.EndSpanAttrs(t.step, t.w.Time(), a)
	t.w.SetSpanContext(0)
	t.step = 0
	if t.w.Rank() == 0 {
		t.rec.Counter("train/steps").Inc()
		t.overlapGauge()
	}
}

// overlapGauge publishes the overlap scheduler's headline efficiency
// number: the fraction of this worker's collective time hidden behind
// compute so far. exposed is the comm time actually charged to the clock
// (waits that outran the compute), total each collective's full
// launch-to-end latency; sequential runs sit at exactly 0, and the gauge
// rises as the scheduler pipelines launches ahead of their waits.
func (t *tele) overlapGauge() {
	exposed, total := t.w.OverlapStats()
	if total <= 0 {
		return
	}
	t.rec.Gauge("overlap/hidden_comm_fraction").Set(1 - exposed/total)
}

// beginPhase opens a named phase span under the current step and makes it
// the parent for collective spans recorded inside it. It returns 0 (a
// no-op for endPhase) when tracing is off.
func (t *tele) beginPhase(name string) obs.SpanID {
	if t.rec == nil {
		return 0
	}
	id := t.rec.StartSpan(t.step, t.w.Rank(), obs.CatPhase, name, t.w.Time())
	t.w.SetSpanContext(id)
	return id
}

// endPhase closes a phase span and restores the step span as the
// collective parent.
func (t *tele) endPhase(id obs.SpanID) {
	if t.rec == nil {
		return
	}
	t.rec.EndSpan(id, t.w.Time())
	t.w.SetSpanContext(t.step)
}

// compress charges the modeled fused-kernel time for compressing n float32
// values and records a compress span plus ratio/wire-size metrics.
func (t *tele) compress(n, blobBytes int, label string) {
	t.compressWith(t.pipe, n, blobBytes, label)
}

// compressWith is compress with an explicit kernel pipeline — the
// low-rank path charges its GEMM-shaped pipeline instead of the default
// fused COMPSO kernel.
func (t *tele) compressWith(pipe gpusim.Pipeline, n, blobBytes int, label string) {
	start := t.w.Time()
	t.w.Compute(t.dev.Time(pipe, n), "compress")
	if t.rec == nil {
		return
	}
	a := obs.NoAttrs
	a.Label = label
	a.BytesIn = int64(4 * n)
	a.BytesOut = int64(blobBytes)
	if n > 0 && blobBytes > 0 {
		a.Value = float64(4*n) / float64(blobBytes)
	}
	t.rec.Span(t.w.SpanContext(), t.w.Rank(), obs.CatCompress, "compress", start, t.w.Time(), a)
	if t.w.Rank() == 0 && a.Value > 0 {
		t.rec.Histogram("compress/ratio").Observe(a.Value)
		t.rec.Histogram("compress/blob_bytes").Observe(float64(blobBytes))
	}
}

// decompress charges the modeled decode time for recovering n float32
// values from a blobBytes-sized buffer and records a decompress span.
func (t *tele) decompress(n, blobBytes int, label string) {
	t.decompressWith(t.pipe, n, blobBytes, label)
}

// decompressWith is decompress with an explicit kernel pipeline.
func (t *tele) decompressWith(pipe gpusim.Pipeline, n, blobBytes int, label string) {
	start := t.w.Time()
	t.w.Compute(t.dev.DecompressTime(pipe, n), "decompress")
	if t.rec == nil {
		return
	}
	a := obs.NoAttrs
	a.Label = label
	a.BytesIn = int64(blobBytes)
	a.BytesOut = int64(4 * n)
	t.rec.Span(t.w.SpanContext(), t.w.Rank(), obs.CatCompress, "decompress", start, t.w.Time(), a)
}

// eigen charges the modeled eigendecomposition time for layer li (9·(a³+g³)
// flops at the low-efficiency eigensolver rate) and records a span.
func (t *tele) eigen(k *kfac.KFAC, li int) {
	da, dg := k.FactorDims(li)
	a, g := float64(da), float64(dg)
	start := t.w.Time()
	t.w.Compute(9*(a*a*a+g*g*g)/t.cm.EigFlops, "kfac-eigendecomp")
	if t.rec == nil {
		return
	}
	at := obs.NoAttrs
	at.Layer = li
	t.rec.Span(t.w.SpanContext(), t.w.Rank(), obs.CatPrecondition, "eigendecomp", start, t.w.Time(), at)
}

// precondition charges the modeled two-sided eigenbasis GEMM time for
// layer li (4·(a²g+ag²) flops at the GEMM rate) and records a span.
func (t *tele) precondition(k *kfac.KFAC, li int) {
	da, dg := k.FactorDims(li)
	a, g := float64(da), float64(dg)
	start := t.w.Time()
	t.w.Compute(4*(a*a*g+a*g*g)/t.cm.Flops, "kfac-precondition")
	if t.rec == nil {
		return
	}
	at := obs.NoAttrs
	at.Layer = li
	t.rec.Span(t.w.SpanContext(), t.w.Rank(), obs.CatPrecondition, "precondition", start, t.w.Time(), at)
}

// filterStats observes the compressor's last filter hit rate (the dropped
// fraction) on rank 0.
func (t *tele) filterStats(comp compress.Compressor) {
	if t.rec == nil || t.w.Rank() != 0 {
		return
	}
	cc, ok := comp.(*compress.COMPSO)
	if !ok || cc.LastFilterTotal == 0 {
		return
	}
	t.rec.Histogram("compress/filter_hit_rate").
		Observe(1 - float64(cc.LastFilterKept)/float64(cc.LastFilterTotal))
}

// controller records the adaptive controller's error-bound trajectory and
// emits an instant event (plus a counter) whenever the strategy for this
// iteration differs from the previous one. Rank 0 only.
func (t *tele) controller(ctrl *compso.Controller, it int) {
	if t.rec == nil || t.w.Rank() != 0 {
		return
	}
	s := ctrl.StrategyAt(it)
	t.rec.Gauge("compso/eb_quant").Set(s.EBQuant)
	t.rec.Gauge("compso/eb_filter").Set(s.EBFilter)
	t.rec.Histogram("compso/eb_quant_trajectory").Observe(s.EBQuant)
	if it > 0 && ctrl.StrategyAt(it-1) != s {
		a := obs.NoAttrs
		a.Step = it
		a.Value = s.EBQuant
		a.Label = s.String()
		t.rec.Instant(t.step, t.w.Rank(), obs.CatControl, "strategy-switch", t.w.Time(), a)
		t.rec.Counter("compso/strategy_switches").Inc()
	}
}
