package train

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"compso/internal/ckpt"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/fault"
	"compso/internal/kfac"
	"compso/internal/obs"
	"compso/internal/pool"
)

// The crash-recovery bit-identity contract (ckpt.go): a run that loses a
// worker at step k and resumes from the last checkpoint must produce
// exactly — not approximately — the final losses, accuracies, model
// parameters, mean compression ratio and wire counters of an uninterrupted
// run with the same checkpoint cadence. These tests enforce it across the
// optimizer × compressor × overlap matrix and every crash point.

// crashPlan wraps one exact-mode crash declaration into a fault plan.
func crashPlan(c fault.WorkerCrash) *fault.Plan {
	return &fault.Plan{Seed: 7, Crashes: []fault.WorkerCrash{c}}
}

// runCrashPair runs cfg twice with the same checkpoint cadence — once with
// the crash plan, once undisturbed — and returns both results plus their
// recorders for counter comparison.
func runCrashPair(t *testing.T, cfg Config, plan *fault.Plan, interval int) (crashed, plain *Result, crashRec, plainRec *obs.Recorder) {
	t.Helper()
	a := cfg
	a.Obs = obs.NewRecorder()
	a.Fault = plan
	a.Checkpoint.Interval = interval
	crashed, err := Run(a)
	if err != nil {
		t.Fatalf("crash run: %v", err)
	}
	b := cfg
	b.Obs = obs.NewRecorder()
	b.Checkpoint.Interval = interval
	plain, err = Run(b)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	return crashed, plain, a.Obs, b.Obs
}

// assertBitIdentical compares every resumable observable exactly. Losses
// and parameters are float64 — equality here means bit-identity, not a
// tolerance.
func assertBitIdentical(t *testing.T, crashed, plain *Result, crashRec, plainRec *obs.Recorder) {
	t.Helper()
	if len(crashed.Iterations) != len(plain.Iterations) {
		t.Fatalf("eval points: crashed %v, plain %v", crashed.Iterations, plain.Iterations)
	}
	for i := range plain.Iterations {
		if crashed.Iterations[i] != plain.Iterations[i] {
			t.Fatalf("eval iteration %d: crashed %d, plain %d", i, crashed.Iterations[i], plain.Iterations[i])
		}
		if crashed.Losses[i] != plain.Losses[i] {
			t.Fatalf("loss at eval %d: crashed %v, plain %v", i, crashed.Losses[i], plain.Losses[i])
		}
	}
	for i := range plain.Accuracies {
		if crashed.Accuracies[i] != plain.Accuracies[i] {
			t.Fatalf("accuracy at eval %d: crashed %v, plain %v", i, crashed.Accuracies[i], plain.Accuracies[i])
		}
	}
	if crashed.FinalLoss != plain.FinalLoss || crashed.FinalAcc != plain.FinalAcc {
		t.Fatalf("final: crashed (%v, %v), plain (%v, %v)",
			crashed.FinalLoss, crashed.FinalAcc, plain.FinalLoss, plain.FinalAcc)
	}
	if crashed.MeanCR != plain.MeanCR {
		t.Fatalf("MeanCR: crashed %v, plain %v", crashed.MeanCR, plain.MeanCR)
	}
	cp, pp := crashed.Model.Params(), plain.Model.Params()
	if len(cp) != len(pp) {
		t.Fatalf("parameter count: crashed %d, plain %d", len(cp), len(pp))
	}
	for i := range pp {
		for j := range pp[i].W.Data {
			if cp[i].W.Data[j] != pp[i].W.Data[j] {
				t.Fatalf("parameter %s[%d]: crashed %v, plain %v",
					pp[i].Name, j, cp[i].W.Data[j], pp[i].W.Data[j])
			}
		}
	}
	names := plainRec.CounterNames("wire/")
	if len(names) == 0 {
		t.Fatal("no wire counters recorded")
	}
	for _, name := range append(names, "train/steps") {
		if got, want := crashRec.Counter(name).Value(), plainRec.Counter(name).Value(); got != want {
			t.Fatalf("counter %s: crashed %v, plain %v", name, got, want)
		}
	}
}

// TestCrashResumeBitIdentityMatrix is the headline guarantee: every cell of
// {SGD, K-FAC} × {COMPSO stream, PowerSGD+EF} × {sequential, overlap}
// crashes a worker mid-run and must finish bit-identical to the
// uninterrupted run. Crash points rotate across cells so step-start,
// mid-step and mid-collective unwinds all get coverage.
func TestCrashResumeBitIdentityMatrix(t *testing.T) {
	newCOMPSO := func(rank int) compress.Compressor { return compso.NewCompressor(nil, rank, 99) }
	// Ring-mode PowerSGD must share one seed across ranks so the replicated
	// factor state agrees (the AllReducible contract); the per-rank EF
	// residuals still differ and are checkpointed per rank.
	newPowerEF := func(rank int) compress.Compressor {
		return compress.NewErrorFeedback(compress.NewPowerSGD(2, 31))
	}
	newLayerPowerEF := func(rank, layer int) compress.Compressor {
		return compress.NewErrorFeedback(compress.NewPowerSGD(2, 31+int64(layer)))
	}
	cells := []struct {
		name  string
		setup func(*Config)
		crash fault.WorkerCrash
	}{
		{"sgd/compso/seq", func(c *Config) {
			c.NewCompressor = newCOMPSO
		}, fault.WorkerCrash{Rank: 1, Point: fault.CrashMidStep, Step: 6}},
		{"sgd/compso/overlap", func(c *Config) {
			c.NewCompressor = newCOMPSO
			c.Overlap = true
		}, fault.WorkerCrash{Rank: 2, Point: fault.CrashAtStepStart, Step: 7}},
		{"sgd/power-ef/seq", func(c *Config) {
			c.NewCompressor = newPowerEF
		}, fault.WorkerCrash{Rank: 1, Point: fault.CrashMidCollective, Step: 6, CollSite: 1}},
		{"sgd/power-ef/overlap", func(c *Config) {
			c.NewCompressor = newPowerEF
			c.Overlap = true
		}, fault.WorkerCrash{Rank: 3, Point: fault.CrashMidStep, Step: 5}},
		{"kfac/compso/seq", func(c *Config) {
			c.UseKFAC = true
			c.KFAC = kfac.DefaultConfig()
			c.StatFreq = 5
			c.NewCompressor = newCOMPSO
		}, fault.WorkerCrash{Rank: 1, Point: fault.CrashMidCollective, Step: 7, CollSite: 2}},
		{"kfac/compso/overlap", func(c *Config) {
			c.UseKFAC = true
			c.KFAC = kfac.DefaultConfig()
			c.StatFreq = 5
			c.NewCompressor = newCOMPSO
			c.Overlap = true
		}, fault.WorkerCrash{Rank: 2, Point: fault.CrashMidStep, Step: 7}},
		{"kfac/power-ef-layer/seq", func(c *Config) {
			c.UseKFAC = true
			c.KFAC = kfac.DefaultConfig()
			c.NewLayerCompressor = newLayerPowerEF
		}, fault.WorkerCrash{Rank: 1, Point: fault.CrashMidStep, Step: 6}},
		{"kfac/power-ef-layer/overlap", func(c *Config) {
			c.UseKFAC = true
			c.KFAC = kfac.DefaultConfig()
			c.NewLayerCompressor = newLayerPowerEF
			c.Overlap = true
		}, fault.WorkerCrash{Rank: 3, Point: fault.CrashMidCollective, Step: 6, CollSite: 3}},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			cfg := baseConfig(12)
			cfg.EvalEvery = 4
			cell.setup(&cfg)
			crashed, plain, crec, prec := runCrashPair(t, cfg, crashPlan(cell.crash), 3)
			if crashed.Restarts != 1 {
				t.Fatalf("restarts: got %d, want 1", crashed.Restarts)
			}
			if crashed.FaultEvents["worker_crash"] != 1 || crashed.FaultEvents["restores"] != 1 {
				t.Fatalf("fault events: %v", crashed.FaultEvents)
			}
			assertBitIdentical(t, crashed, plain, crec, prec)
			if crec.Counter("fault/worker_crash").Value() != 1 ||
				crec.Counter("ckpt/restores").Value() != 1 {
				t.Fatal("fault/worker_crash and ckpt/restores counters not both 1")
			}
			// The crash run saves at least the plain run's checkpoints (more
			// when the resume replays across a checkpoint boundary).
			if c, p := crec.Counter("ckpt/saves").Value(), prec.Counter("ckpt/saves").Value(); p <= 0 || c < p {
				t.Fatalf("ckpt/saves: crashed %v, plain %v", c, p)
			}
		})
	}
}

// TestCrashResumeKFACCachesCarryEigens pins the owner-local decomposition
// cache leg: with StatFreq 5 the eigendecompositions from step 5 are only
// in the per-rank caches when the step-6 checkpoint is taken, and steps
// 6–9 of the resumed run precondition with the restored caches. A failure
// to restore them would change every preconditioned gradient.
func TestCrashResumeKFACCachesCarryEigens(t *testing.T) {
	cfg := baseConfig(10)
	cfg.EvalEvery = 5
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.StatFreq = 5
	crash := fault.WorkerCrash{Rank: 2, Point: fault.CrashMidStep, Step: 7}
	crashed, plain, crec, prec := runCrashPair(t, cfg, crashPlan(crash), 3)
	if crashed.Restarts != 1 {
		t.Fatalf("restarts: got %d, want 1", crashed.Restarts)
	}
	assertBitIdentical(t, crashed, plain, crec, prec)
}

// TestCrashRepeatedAcrossIncarnations drives the Every/Times repeat mode:
// the rank dies at step 4 of incarnation 0 and step 7 of incarnation 1, so
// the run recovers twice and must still finish bit-identical.
func TestCrashRepeatedAcrossIncarnations(t *testing.T) {
	cfg := baseConfig(12)
	cfg.EvalEvery = 4
	cfg.NewCompressor = func(rank int) compress.Compressor { return compso.NewCompressor(nil, rank, 99) }
	crash := fault.WorkerCrash{Rank: 1, Point: fault.CrashMidStep, Step: 4, Every: 3, Times: 2}
	crashed, plain, crec, prec := runCrashPair(t, cfg, crashPlan(crash), 3)
	if crashed.Restarts != 2 {
		t.Fatalf("restarts: got %d, want 2", crashed.Restarts)
	}
	if crashed.FaultEvents["worker_crash"] != 2 || crashed.FaultEvents["restores"] != 2 {
		t.Fatalf("fault events: %v", crashed.FaultEvents)
	}
	assertBitIdentical(t, crashed, plain, crec, prec)
}

// TestCrashBeforeFirstCheckpointRestartsFromScratch: a crash that beats the
// first save has no restore point — the recovery restarts from scratch
// (counters reset, no "restores" tally) and must still match the
// uninterrupted run exactly.
func TestCrashBeforeFirstCheckpointRestartsFromScratch(t *testing.T) {
	cfg := baseConfig(8)
	cfg.EvalEvery = 4
	cfg.NewCompressor = func(rank int) compress.Compressor { return compso.NewCompressor(nil, rank, 99) }
	crash := fault.WorkerCrash{Rank: 2, Point: fault.CrashAtStepStart, Step: 1}
	crashed, plain, crec, prec := runCrashPair(t, cfg, crashPlan(crash), 5)
	if crashed.Restarts != 1 {
		t.Fatalf("restarts: got %d, want 1", crashed.Restarts)
	}
	if crashed.FaultEvents["worker_crash"] != 1 || crashed.FaultEvents["restores"] != 0 {
		t.Fatalf("fault events: %v", crashed.FaultEvents)
	}
	assertBitIdentical(t, crashed, plain, crec, prec)
}

// TestCrashWithoutCheckpointingStillRecovers: Interval 0 disables saves
// entirely; a crash then recovers by scratch restart alone.
func TestCrashWithoutCheckpointingStillRecovers(t *testing.T) {
	cfg := baseConfig(6)
	cfg.EvalEvery = 3
	cfg.Obs = obs.NewRecorder()
	cfg.Fault = crashPlan(fault.WorkerCrash{Rank: 1, Point: fault.CrashMidStep, Step: 2})
	crashed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Restarts != 1 || crashed.FaultEvents["restores"] != 0 {
		t.Fatalf("restarts %d, events %v", crashed.Restarts, crashed.FaultEvents)
	}
	plainCfg := baseConfig(6)
	plainCfg.EvalEvery = 3
	plain, err := Run(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	if crashed.FinalLoss != plain.FinalLoss {
		t.Fatalf("final loss: crashed %v, plain %v", crashed.FinalLoss, plain.FinalLoss)
	}
}

// TestCrashMaxRestartsExhausted: a rank that dies on every incarnation
// exhausts the restart budget and surfaces the loss as an error instead of
// looping forever.
func TestCrashMaxRestartsExhausted(t *testing.T) {
	cfg := baseConfig(10)
	cfg.Fault = crashPlan(fault.WorkerCrash{Rank: 1, Point: fault.CrashMidStep, Rate: 1.0})
	cfg.Checkpoint = CheckpointConfig{Interval: 3, MaxRestarts: 2}
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("run with an always-crashing rank succeeded")
	}
	if !strings.Contains(err.Error(), "lost") {
		t.Fatalf("error does not describe the worker loss: %v", err)
	}
}

// TestCrashRecoveryLeaksNoPooledBuffers: the worker-loss unwind crosses
// collectives with pooled staging buffers in flight (fused async buckets
// under overlap, flat all-reduce staging otherwise). Debug tracking must
// see every buffer returned once the run finishes.
func TestCrashRecoveryLeaksNoPooledBuffers(t *testing.T) {
	pool.SetDebug(true)
	defer pool.SetDebug(false)
	for _, overlap := range []bool{false, true} {
		cfg := baseConfig(8)
		cfg.EvalEvery = 4
		cfg.Overlap = overlap
		cfg.UseKFAC = true
		cfg.KFAC = kfac.DefaultConfig()
		cfg.Fault = crashPlan(fault.WorkerCrash{Rank: 1, Point: fault.CrashMidCollective, Step: 4, CollSite: 3})
		cfg.Checkpoint = CheckpointConfig{Interval: 3}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("overlap=%v: %v", overlap, err)
		}
		if res.Restarts != 1 {
			t.Fatalf("overlap=%v: restarts %d, want 1", overlap, res.Restarts)
		}
		if s := pool.Stats(); s.Live != 0 {
			t.Fatalf("overlap=%v: %d pooled buffers still live after the run", overlap, s.Live)
		}
	}
}

// TestCheckpointDirPersistsAndRecovers: with a directory configured, saves
// land as step-numbered files, the crash recovery restores from the newest
// complete file, and the results stay bit-identical.
func TestCheckpointDirPersistsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig(12)
	cfg.EvalEvery = 4
	cfg.NewCompressor = func(rank int) compress.Compressor { return compso.NewCompressor(nil, rank, 99) }
	cfg.Checkpoint.Dir = dir
	crash := fault.WorkerCrash{Rank: 1, Point: fault.CrashMidStep, Step: 7}
	crashed, plain, crec, prec := runCrashPair(t, cfg, crashPlan(crash), 3)
	if crashed.Restarts != 1 {
		t.Fatalf("restarts: got %d, want 1", crashed.Restarts)
	}
	assertBitIdentical(t, crashed, plain, crec, prec)
	for _, step := range []int{3, 6, 9, 12} {
		if _, err := os.Stat(filepath.Join(dir, ckpt.FileName(step))); err != nil {
			t.Fatalf("missing checkpoint file for step %d: %v", step, err)
		}
	}
	path, err := ckpt.LatestPath(dir)
	if err != nil || filepath.Base(path) != ckpt.FileName(12) {
		t.Fatalf("LatestPath = %q, %v", path, err)
	}
}

// TestResumeFromCheckpointFile: a fresh Run resuming from a mid-run
// checkpoint file must land on exactly the uninterrupted run's results —
// the externally-driven restart workflow (compso-train -resume).
func TestResumeFromCheckpointFile(t *testing.T) {
	dir := t.TempDir()
	full := baseConfig(12)
	full.EvalEvery = 4
	full.NewCompressor = func(rank int) compress.Compressor { return compso.NewCompressor(nil, rank, 99) }
	full.Obs = obs.NewRecorder()
	full.Checkpoint = CheckpointConfig{Interval: 3, Dir: dir}
	want, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}

	resumed := baseConfig(12)
	resumed.EvalEvery = 4
	resumed.NewCompressor = full.NewCompressor
	resumed.Obs = obs.NewRecorder()
	resumed.Checkpoint = CheckpointConfig{
		Interval: 3, Dir: t.TempDir(),
		Resume: filepath.Join(dir, ckpt.FileName(6)),
	}
	got, err := Run(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalLoss != want.FinalLoss || got.MeanCR != want.MeanCR {
		t.Fatalf("resumed final (%v, CR %v), full (%v, CR %v)",
			got.FinalLoss, got.MeanCR, want.FinalLoss, want.MeanCR)
	}
	for _, name := range append(resumed.Obs.CounterNames("wire/"), "train/steps") {
		if g, w := resumed.Obs.Counter(name).Value(), full.Obs.Counter(name).Value(); g != w {
			t.Fatalf("counter %s: resumed %v, full %v", name, g, w)
		}
	}
	cp, pp := got.Model.Params(), want.Model.Params()
	for i := range pp {
		for j := range pp[i].W.Data {
			if cp[i].W.Data[j] != pp[i].W.Data[j] {
				t.Fatalf("parameter %s[%d] diverged after file resume", pp[i].Name, j)
			}
		}
	}
}

// TestResumeRejectsMismatchedConfig: a checkpoint must not restore into a
// run whose float expressions it does not describe.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := baseConfig(6)
	cfg.EvalEvery = 3
	cfg.Checkpoint = CheckpointConfig{Interval: 3, Dir: dir}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ckpt.FileName(6))

	bad := baseConfig(6)
	bad.EvalEvery = 3
	bad.Seed = 43
	bad.Checkpoint = CheckpointConfig{Interval: 3, Resume: path}
	if _, err := Run(bad); err == nil {
		t.Fatal("resume with a different seed accepted")
	}
	bad2 := baseConfig(6)
	bad2.EvalEvery = 3
	bad2.UseKFAC = true
	bad2.KFAC = kfac.DefaultConfig()
	bad2.Checkpoint = CheckpointConfig{Interval: 3, Resume: path}
	if _, err := Run(bad2); err == nil {
		t.Fatal("resume of an SGD checkpoint into a K-FAC run accepted")
	}
	bad3 := baseConfig(6)
	bad3.EvalEvery = 3
	bad3.NewCompressor = func(rank int) compress.Compressor { return compso.NewCompressor(nil, rank, 99) }
	bad3.Checkpoint = CheckpointConfig{Interval: 3, Resume: path}
	if _, err := Run(bad3); err == nil {
		t.Fatal("resume of an uncompressed checkpoint into a compressed run accepted")
	}
}

// TestCrashResumeWithControllerAndFactors exercises the widest COMPSO
// configuration through a crash: adaptive error-bound controller plus
// compressed factor exchange, resumed mid-schedule.
func TestCrashResumeWithControllerAndFactors(t *testing.T) {
	iters := 12
	cfg := baseConfig(iters)
	cfg.EvalEvery = 4
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.NewCompressor = func(rank int) compress.Compressor { return compso.NewCompressor(nil, rank, 99) }
	cfg.Controller = compso.DefaultController(cfg.Schedule, iters)
	cfg.CompressFactors = true
	crash := fault.WorkerCrash{Rank: 2, Point: fault.CrashMidStep, Step: 8}
	crashed, plain, crec, prec := runCrashPair(t, cfg, crashPlan(crash), 4)
	if crashed.Restarts != 1 {
		t.Fatalf("restarts: got %d, want 1", crashed.Restarts)
	}
	assertBitIdentical(t, crashed, plain, crec, prec)
}

// TestUncompressedOverlapCrashAtAsyncLaunch kills a worker at the entry of
// one of the fused-bucket async all-reduces — the unwind path that crosses
// launchGradBuckets with staged pooled buffers in flight.
func TestUncompressedOverlapCrashAtAsyncLaunch(t *testing.T) {
	cfg := baseConfig(8)
	cfg.EvalEvery = 4
	cfg.Overlap = true
	crash := fault.WorkerCrash{Rank: 1, Point: fault.CrashMidCollective, Step: 4, CollSite: 1}
	crashed, plain, crec, prec := runCrashPair(t, cfg, crashPlan(crash), 3)
	if crashed.Restarts != 1 {
		t.Fatalf("restarts: got %d, want 1", crashed.Restarts)
	}
	assertBitIdentical(t, crashed, plain, crec, prec)
}
