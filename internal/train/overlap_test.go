package train

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/fault"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/obs"
	"compso/internal/pool"
	"compso/internal/xrand"
)

func TestFuseBuckets(t *testing.T) {
	cases := []struct {
		sizes []int
		limit int // bytes
		want  []bucket
	}{
		{nil, 100, nil},
		{[]int{10, 20, 30}, 4 * 100, []bucket{{0, 3, 60}}},
		{[]int{10, 20, 30}, 4 * 30, []bucket{{0, 2, 30}, {2, 3, 30}}},
		// An oversize tensor gets its own bucket, never split.
		{[]int{100, 5, 5}, 4 * 10, []bucket{{0, 1, 100}, {1, 3, 10}}},
		// A non-positive limit degrades to one tensor per bucket.
		{[]int{3, 4}, 0, []bucket{{0, 1, 3}, {1, 2, 4}}},
	}
	for _, c := range cases {
		got := fuseBuckets(c.sizes, c.limit)
		if len(got) != len(c.want) {
			t.Fatalf("fuseBuckets(%v, %d) = %v, want %v", c.sizes, c.limit, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("fuseBuckets(%v, %d)[%d] = %v, want %v", c.sizes, c.limit, i, got[i], c.want[i])
			}
		}
	}
	// Buckets must partition the tensor list in order.
	sizes := []int{7, 1, 9, 2, 8, 3}
	next := 0
	for _, b := range fuseBuckets(sizes, 4*10) {
		if b.start != next {
			t.Fatalf("bucket %v does not continue at %d", b, next)
		}
		elems := 0
		for _, n := range sizes[b.start:b.end] {
			elems += n
		}
		if elems != b.elems {
			t.Fatalf("bucket %v counts %d elems", b, elems)
		}
		next = b.end
	}
	if next != len(sizes) {
		t.Fatalf("buckets cover %d of %d tensors", next, len(sizes))
	}
}

// TestSplitFramesEmptyPart pins the worldSize > nLayers framing contract:
// a rank that owns no layers sends zero groups, and the framing layer must
// accept its empty payload without flagging corruption.
func TestSplitFramesEmptyPart(t *testing.T) {
	blobs, err := splitFrames(nil, 0, 7)
	if err != nil {
		t.Fatalf("empty part with zero groups rejected: %v", err)
	}
	if len(blobs) != 0 {
		t.Fatalf("empty part produced %d blobs", len(blobs))
	}
	if _, err := splitFrames([]byte{1, 2, 3}, 0, 7); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("trailing bytes with zero groups: err = %v, want ErrCorrupt", err)
	}
	if _, err := splitFrames(nil, 1, 7); !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("empty part with one expected group: err = %v, want ErrCorrupt", err)
	}
}

// TestParseGroupsEmptyOwnership: parseGroups with an empty group list (an
// empty-ownership rank, or a short rank's empty exchange round) accepts
// only an empty part.
func TestParseGroupsEmptyOwnership(t *testing.T) {
	rng := xrand.NewSeeded(3)
	st := &kfacState{k: kfac.New(modelzoo.ProxyResNet(rng, 5).Model, kfac.DefaultConfig())}
	if err := st.parseGroups(nil, nil, 8, nil, true, nil, nil); err != nil {
		t.Fatalf("empty part from an empty-ownership rank rejected: %v", err)
	}
	err := st.parseGroups(nil, nil, 8, []byte{0, 1}, true, nil, nil)
	if !errors.Is(err, compress.ErrCorrupt) {
		t.Fatalf("non-empty part from an empty-ownership rank: err = %v, want ErrCorrupt", err)
	}
}

// timingPlan injects stragglers and degraded links but never touches
// payload bytes. The overlap scheduler re-frames the exchange into rounds,
// so corruption draws (position mod payload length, per-round retry
// ladders) cannot match the sequential path blob-for-blob — but a
// timing-only plan must leave the numerics bit-identical on both paths.
func timingPlan() *fault.Plan {
	return &fault.Plan{
		Seed:       17,
		Stragglers: []fault.Straggler{{Rank: 1, Factor: 2, FromStep: 1}},
		Links: []fault.LinkFault{{
			SrcNode: -1, DstNode: -1, Link: "inter",
			AlphaFactor: 2, BetaFactor: 1.5, Jitter: 0.1,
		}},
	}
}

// overlapCells is the bit-identity matrix: optimizer × compressor family.
func overlapCells() []struct {
	name string
	mut  func(*Config)
} {
	compsoFactory := func(rank int) compress.Compressor {
		return compso.NewCompressor(nil, rank, 99)
	}
	return []struct {
		name string
		mut  func(*Config)
	}{
		{"sgd-plain", func(c *Config) {}},
		{"sgd-compso", func(c *Config) { c.NewCompressor = compsoFactory }},
		{"sgd-powersgd", func(c *Config) { c.NewCompressor = powerSGDFactory(false) }},
		{"kfac-plain", func(c *Config) {
			c.UseKFAC = true
			c.KFAC = kfac.DefaultConfig()
		}},
		{"kfac-compso", func(c *Config) {
			c.UseKFAC = true
			c.KFAC = kfac.DefaultConfig()
			c.NewCompressor = compsoFactory
			c.AggregationM = 2
		}},
	}
}

// compressSpanKeys canonicalizes a snapshot's compress/decompress spans
// into a sorted multiset of (name, label, bytes-in, bytes-out): the
// overlap scheduler may shift when a kernel runs, never what it processes.
func compressSpanKeys(s obs.Snapshot) []string {
	var keys []string
	for _, sp := range s.SpansFor(obs.CatCompress) {
		keys = append(keys, fmt.Sprintf("%s|%s|%d|%d", sp.Name, sp.Attrs.Label, sp.Attrs.BytesIn, sp.Attrs.BytesOut))
	}
	sort.Strings(keys)
	return keys
}

// TestOverlapBitIdentityMatrix is the scheduler's core contract: for every
// optimizer × compressor cell, with and without (timing-only) fault
// injection, the overlapped run must reproduce the sequential run's
// numerics bit for bit — losses, accuracies, compression ratio — and push
// the exact same bytes through the wire and the compression kernels. Only
// the simulated schedule may move.
func TestOverlapBitIdentityMatrix(t *testing.T) {
	run := func(mut func(*Config), overlap bool, plan *fault.Plan) (*Result, obs.Snapshot) {
		cfg := baseConfig(6)
		mut(&cfg)
		cfg.Overlap = overlap
		cfg.Fault = plan
		cfg.Obs = obs.NewRecorder()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, *res.Metrics
	}
	for _, cell := range overlapCells() {
		for _, plan := range []*fault.Plan{nil, timingPlan()} {
			name := cell.name
			if plan != nil {
				name += "+faults"
			}
			off, sOff := run(cell.mut, false, plan)
			on, sOn := run(cell.mut, true, plan)

			if off.FinalLoss != on.FinalLoss || off.FinalAcc != on.FinalAcc {
				t.Fatalf("%s: final metrics differ: %v/%v vs %v/%v",
					name, off.FinalLoss, off.FinalAcc, on.FinalLoss, on.FinalAcc)
			}
			if off.MeanCR != on.MeanCR {
				t.Fatalf("%s: MeanCR differs: %v vs %v", name, off.MeanCR, on.MeanCR)
			}
			if len(off.Losses) != len(on.Losses) {
				t.Fatalf("%s: eval counts differ: %d vs %d", name, len(off.Losses), len(on.Losses))
			}
			for i := range off.Losses {
				if off.Losses[i] != on.Losses[i] {
					t.Fatalf("%s: loss %d differs: %v vs %v", name, i, off.Losses[i], on.Losses[i])
				}
			}
			for i := range off.Accuracies {
				if off.Accuracies[i] != on.Accuracies[i] {
					t.Fatalf("%s: accuracy %d differs: %v vs %v", name, i, off.Accuracies[i], on.Accuracies[i])
				}
			}
			// Wire-byte totals are invariant under bucketing and rounds
			// (Outcome.Bytes sums payload sizes, which the scheduler only
			// re-partitions).
			for k, v := range sOff.Counters {
				if !strings.HasPrefix(k, "wire/") {
					continue
				}
				if sOn.Counters[k] != v {
					t.Fatalf("%s: counter %s differs: %v vs %v", name, k, v, sOn.Counters[k])
				}
			}
			kOff, kOn := compressSpanKeys(sOff), compressSpanKeys(sOn)
			if len(kOff) != len(kOn) {
				t.Fatalf("%s: compress span counts differ: %d vs %d", name, len(kOff), len(kOn))
			}
			for i := range kOff {
				if kOff[i] != kOn[i] {
					t.Fatalf("%s: compress span %d differs: %s vs %s", name, i, kOff[i], kOn[i])
				}
			}
		}
	}
}

// TestOverlapMoreWorkersThanLayers is the worldSize > nLayers regression:
// 9 workers over a 4-layer model leave five ranks with no owned layers —
// every exchange round they contribute empty payloads that the framing
// layer must accept — and the overlapped run must still match the
// sequential one bit for bit.
func TestOverlapMoreWorkersThanLayers(t *testing.T) {
	for _, compressed := range []bool{false, true} {
		run := func(overlap bool) *Result {
			cfg := baseConfig(6)
			cfg.Workers = 9
			cfg.UseKFAC = true
			cfg.KFAC = kfac.DefaultConfig()
			if compressed {
				cfg.NewCompressor = func(rank int) compress.Compressor {
					return compso.NewCompressor(nil, rank, 66)
				}
				cfg.AggregationM = 2
			}
			cfg.Overlap = overlap
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("compressed=%v overlap=%v: %v", compressed, overlap, err)
			}
			return res
		}
		off, on := run(false), run(true)
		if off.FinalLoss != on.FinalLoss {
			t.Fatalf("compressed=%v: final loss differs: %v vs %v", compressed, off.FinalLoss, on.FinalLoss)
		}
		for i := range off.Losses {
			if off.Losses[i] != on.Losses[i] {
				t.Fatalf("compressed=%v: loss %d differs: %v vs %v", compressed, i, off.Losses[i], on.Losses[i])
			}
		}
		if off.MeanCR != on.MeanCR {
			t.Fatalf("compressed=%v: MeanCR differs: %v vs %v", compressed, off.MeanCR, on.MeanCR)
		}
	}
}

// TestOverlapChaosUnderPoolDebug locks in the pooled-payload audit: with
// the pool's use-after-Put tracker armed (COMPSO_POOL_DEBUG's SetDebug),
// corruption-heavy chaos plans must drive the full retry + lossless-
// fallback ladder — whose recovery broadcasts re-send sender-side payloads
// long after the step that built them — on both the sequential and the
// overlapped path without any arena buffer crossing a collective boundary.
func TestOverlapChaosUnderPoolDebug(t *testing.T) {
	pool.SetDebug(true)
	defer pool.SetDebug(false)

	for _, overlap := range []bool{false, true} {
		cfg := faultedConfig(6, obs.NewRecorder())
		cfg.Overlap = overlap
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("overlap=%v: %v", overlap, err)
		}
		if math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0) {
			t.Fatalf("overlap=%v: non-finite final loss %v", overlap, res.FinalLoss)
		}
		if res.FaultEvents["fallbacks"] == 0 {
			t.Fatalf("overlap=%v: recovery ladder not exercised: %v", overlap, res.FaultEvents)
		}
	}

	// The compressed first-order path's ladder, for completeness.
	cfg := baseConfig(6)
	cfg.Overlap = true
	cfg.NewCompressor = func(rank int) compress.Compressor {
		return compress.NewCOMPSO(int64(rank) + 1)
	}
	cfg.Fault = &fault.Plan{
		Seed:       4,
		Corruption: fault.Corruption{Rate: 1, BitFlips: 5},
		MaxRetries: 1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultEvents["fallbacks"] == 0 {
		t.Fatalf("SGD ladder not exercised under overlap: %v", res.FaultEvents)
	}
}

// TestOverlapDeterministicUnderCorruption: corruption draws differ between
// the sequential and overlapped framings, so on/off equality is out of
// scope — but repeat overlapped runs must still be bit-identical.
func TestOverlapDeterministicUnderCorruption(t *testing.T) {
	run := func() *Result {
		cfg := faultedConfig(6, obs.NewRecorder())
		cfg.Overlap = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FinalLoss != b.FinalLoss {
		t.Fatalf("overlapped faulted run not deterministic: %v vs %v", a.FinalLoss, b.FinalLoss)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("loss %d differs: %v vs %v", i, a.Losses[i], b.Losses[i])
		}
	}
	for k, v := range a.FaultEvents {
		if b.FaultEvents[k] != v {
			t.Fatalf("FaultEvents[%s] differs: %d vs %d", k, v, b.FaultEvents[k])
		}
	}
}

// TestOverlapHidesCommunication: the point of the scheduler. The hidden-
// communication gauge (1 − exposed/total collective time) must rise when
// overlap is on, and the span-side phase decomposition must show busy time
// recorded under the overlap phases.
func TestOverlapHidesCommunication(t *testing.T) {
	run := func(overlap bool) (*Result, obs.Snapshot) {
		cfg := baseConfig(10)
		cfg.UseKFAC = true
		cfg.KFAC = kfac.DefaultConfig()
		cfg.Overlap = overlap
		cfg.Obs = obs.NewRecorder()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, *res.Metrics
	}
	_, sOff := run(false)
	_, sOn := run(true)
	gOff := sOff.Gauges["overlap/hidden_comm_fraction"]
	gOn := sOn.Gauges["overlap/hidden_comm_fraction"]
	if gOn <= gOff {
		t.Fatalf("overlap did not raise the hidden-comm fraction: on=%v off=%v", gOn, gOff)
	}
	if gOn <= 0 || gOn > 1 {
		t.Fatalf("hidden-comm fraction %v out of range", gOn)
	}
	pe := sOn.PhaseEfficiencies()
	byName := map[string]obs.PhaseEfficiency{}
	for _, p := range pe {
		byName[p.Phase] = p
		if p.SpanSeconds < 0 || p.BusySeconds < 0 || p.IdleSeconds < 0 {
			t.Fatalf("negative phase efficiency %+v", p)
		}
	}
	// Launch-only and fully-hidden phases can legitimately be zero-width
	// in simulated time; the compute-bearing phases cannot.
	for _, want := range []string{"grad-launch", "eigendecomp", "grad-install", "precond-exchange"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("phase %q missing from efficiencies: %v", want, pe)
		}
	}
	for _, want := range []string{"eigendecomp", "precond-exchange"} {
		if byName[want].SpanSeconds <= 0 {
			t.Fatalf("phase %q has no wall time: %+v", want, byName[want])
		}
	}
	if byName["eigendecomp"].BusySeconds <= 0 {
		t.Fatalf("eigendecomp recorded no busy time: %+v", byName["eigendecomp"])
	}
}

// TestOverlapSpanReconciliation: span sums and the cluster's AlgSeconds
// attribution must still reconcile under overlap — waits record exactly
// the exposed interval they charge, hidden waits record zero-length spans.
func TestOverlapSpanReconciliation(t *testing.T) {
	cfg := baseConfig(8)
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.NewCompressor = func(rank int) compress.Compressor {
		return compso.NewCompressor(nil, rank, 12)
	}
	cfg.AggregationM = 2
	cfg.Overlap = true
	cfg.Obs = obs.NewRecorder()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perWorker := map[string]float64{}
	for k, v := range res.Metrics.AlgSeconds() {
		perWorker[k] = v / float64(cfg.Workers)
	}
	if err := obs.ReconcileAlgSeconds(perWorker, res.AlgSeconds, 0.01); err != nil {
		t.Fatalf("span/AlgSeconds reconciliation under overlap: %v", err)
	}
}
