// Package train orchestrates data-parallel training on the simulated
// cluster: every worker holds an identically initialized model replica,
// samples its own data shard, and synchronizes through the collectives of
// the distributed K-FAC workflow (Figure 2 of the paper) — gradient
// all-reduce, Kronecker-factor all-reduce, layer-wise eigendecomposition
// and preconditioning on the owning worker, and the preconditioned-gradient
// all-gather that the compressors hook into.
package train

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"compso/internal/ckpt"
	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/fault"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/nn"
	"compso/internal/obs"
	"compso/internal/opt"
	"compso/internal/pool"
	"compso/internal/xrand"
)

// Config describes one training run.
type Config struct {
	// BuildTask constructs the proxy task; it runs once per worker and
	// must be deterministic in the given RNG so replicas start identical.
	BuildTask func(rng *rand.Rand) *modelzoo.ProxyTask
	// Workers is the simulated GPU count.
	Workers int
	// Platform is the simulated interconnect.
	Platform cluster.Config
	// Iters is the iteration budget.
	Iters int
	// Seed drives model init (shared) and per-worker data sampling.
	Seed int64
	// Schedule is the learning-rate schedule.
	Schedule opt.Schedule
	// UseKFAC selects the K-FAC path; otherwise momentum SGD.
	UseKFAC bool
	// KFAC is the optimizer configuration when UseKFAC is set.
	KFAC kfac.Config
	// StatFreq is how many iterations between Kronecker-factor
	// all-reduces (KAISA amortization).
	StatFreq int
	// NewCompressor creates each worker's gradient compressor; nil trains
	// uncompressed. Compressors implementing compress.AllReducible
	// (PowerSGD, optionally EF-wrapped) switch the first-order gradient
	// exchange from the blob all-gather to the alternating-factor ring
	// all-reduce.
	NewCompressor func(rank int) compress.Compressor
	// NewLayerCompressor, when set, gives the K-FAC preconditioned-
	// gradient exchange a compressor per layer (e.g. a LayerPlan's
	// low-rank-for-large-2D-layers assignment via LayerPlan.Compressors).
	// It requires UseKFAC, AggregationM == 1 (each all-gather frame is
	// one layer) and a nil NewCompressor; receivers decode the mixed-
	// family frames through compress.Decode.
	NewLayerCompressor func(rank, layer int) compress.Compressor
	// Controller adapts COMPSO error bounds per iteration (only meaningful
	// when NewCompressor yields *compress.COMPSO).
	Controller *compso.Controller
	// AggregationM groups this many layers per compression + all-gather
	// unit (default 1).
	AggregationM int
	// CompressFactors enables compression of the Kronecker-factor
	// exchange — the paper's second future-work item ("exploring
	// compression techniques for intermediate data in KFAC, specifically
	// the factor matrices A and G"). Each worker compresses its local
	// factor contribution, the buffers are all-gathered, and every worker
	// sums the decompressed replicas.
	CompressFactors bool
	// FactorEB is the absolute error bound for factor compression
	// (default 1e-3). Factors are running-averaged statistics, so modest
	// per-exchange error washes out.
	FactorEB float64
	// EvalEvery records validation metrics every this many iterations
	// (default: Iters/20).
	EvalEvery int
	// EvalSize is the validation batch size (default 512).
	EvalSize int
	// Overlap enables the compute/communication overlap scheduler
	// (overlap.go): gradient all-reduces launch as fused buckets of at
	// most FusionBytes and complete asynchronously, and the K-FAC path
	// overlaps the owned-layer eigendecompositions with the gradient
	// collectives and pipelines the per-group preconditioned-gradient
	// exchange. Numerics are bit-identical to the sequential path (see
	// DESIGN.md §8) — only the simulated schedule changes. Off by default.
	Overlap bool
	// FusionBytes caps each fused gradient bucket's FP32 wire size in
	// bytes (default 25 MiB, ACP-SGD's tensor-fusion threshold). Only
	// meaningful with Overlap.
	FusionBytes int
	// Obs receives simulated-time spans and metrics for this run (see
	// package obs). Nil disables instrumentation at zero cost; enabling it
	// never changes simulated results, only observes them.
	Obs *obs.Recorder
	// Fault declares a deterministic fault scenario (see package fault):
	// straggler compute slowdowns, degraded/flaky links, in-flight
	// payload corruption with bounded-retry + lossless-fallback recovery,
	// and worker crashes (recovered through Checkpoint). Nil (the default)
	// runs the fault-free fast path bit-identically to a config without
	// the field.
	Fault *fault.Plan
	// Checkpoint enables periodic checkpointing and crash recovery (see
	// ckpt.go): with Interval > 0 a worker loss rolls every rank back to
	// the last checkpoint and resumes bit-identically to an uninterrupted
	// run.
	Checkpoint CheckpointConfig
}

// Result is the training log collected on rank 0.
type Result struct {
	Method      string
	Iterations  []int
	Losses      []float64
	Accuracies  []float64 // empty for regression tasks
	FinalLoss   float64
	FinalAcc    float64
	MeanCR      float64 // mean compression ratio over all compress calls
	CommSeconds map[string]float64
	// AlgSeconds is the mean per-worker simulated time spent in each
	// collective algorithm, keyed "op/algorithm" (e.g. "allgather/
	// hierarchical") — the step-level engine's view of where communication
	// time went, complementing CommSeconds' per-category view.
	AlgSeconds map[string]float64
	// Model is rank 0's trained replica, usable for post-hoc evaluation.
	Model *nn.Sequential
	// Metrics is the observability snapshot taken when Config.Obs was set
	// (nil otherwise): spans, counters, gauges and histograms over the
	// simulated timeline.
	Metrics *obs.Snapshot
	// FaultEvents tallies the fault-recovery events of the run (keys
	// "corrupted", "retries", "fallbacks", "retunes", and — with worker
	// crashes in the plan — "worker_crash" and "restores"); nil when
	// Config.Fault was nil. The same tallies appear as "fault/..." and
	// "ckpt/..." counters in Metrics when observability is on, and they
	// accumulate across restart attempts.
	FaultEvents map[string]int64
	// Restarts is how many crash recoveries the run went through (0 for an
	// undisturbed run).
	Restarts int
}

func (c *Config) withDefaults() Config {
	cfg := *c
	if cfg.StatFreq <= 0 {
		cfg.StatFreq = 1
	}
	if cfg.AggregationM <= 0 {
		cfg.AggregationM = 1
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = max(1, cfg.Iters/20)
	}
	if cfg.EvalSize <= 0 {
		cfg.EvalSize = 512
	}
	if cfg.FactorEB <= 0 {
		cfg.FactorEB = 1e-3
	}
	if cfg.FusionBytes <= 0 {
		cfg.FusionBytes = 25 << 20
	}
	return cfg
}

// Run executes the training run and returns rank 0's log. Any worker error
// aborts the run — except a worker loss under an enabled checkpoint
// configuration, which rolls every rank back to the last checkpoint on a
// fresh cluster and resumes, up to MaxRestarts times.
func Run(c Config) (*Result, error) {
	cfg := c.withDefaults()
	if cfg.Workers <= 0 || cfg.Iters <= 0 || cfg.BuildTask == nil || cfg.Schedule == nil {
		return nil, fmt.Errorf("train: incomplete config %+v", cfg)
	}
	if cfg.NewLayerCompressor != nil {
		if !cfg.UseKFAC {
			return nil, fmt.Errorf("train: NewLayerCompressor requires UseKFAC")
		}
		if cfg.AggregationM != 1 {
			return nil, fmt.Errorf("train: NewLayerCompressor requires AggregationM == 1, got %d", cfg.AggregationM)
		}
		if cfg.NewCompressor != nil {
			return nil, fmt.Errorf("train: NewLayerCompressor and NewCompressor are mutually exclusive")
		}
	}
	var start *ckpt.Checkpoint
	if cfg.Checkpoint.Resume != "" {
		var err error
		start, err = ckpt.Load(cfg.Checkpoint.Resume)
		if err != nil {
			return nil, fmt.Errorf("train: resume: %w", err)
		}
	}
	coord := newCkptCoord(cfg)
	var tally map[string]int64
	if cfg.Fault != nil {
		tally = map[string]int64{}
	}
	// Simulated-time stats accumulate across restart attempts: the work
	// lost between a checkpoint and a crash still consumed compute and
	// wire time, which is exactly what the recovery judge prices.
	commAccum := map[string]float64{}
	algAccum := map[string]float64{}
	restarts := 0
	for attempt := 0; ; attempt++ {
		if start != nil {
			if err := validateResume(cfg, start); err != nil {
				return nil, err
			}
		}
		result, workers, err := runAttempt(cfg, attempt, start, coord, tally)
		merged, _ := cluster.MergeStats(workers)
		for k, v := range merged {
			commAccum[k] += v
		}
		for k, v := range cluster.MergeAlgStats(workers) {
			algAccum[k] += v
		}
		// The training loop never reads the per-worker event rings; recycle
		// them so repeated runs and crash-recovery restarts reuse the same
		// pooled rings instead of holding O(P·traceCap) events per attempt.
		cluster.ReleaseTraces(workers)
		if err == nil {
			for k, v := range commAccum {
				result.CommSeconds[k] = v / float64(cfg.Workers)
			}
			for k, v := range algAccum {
				result.AlgSeconds[k] = v / float64(cfg.Workers)
			}
			result.Restarts = restarts
			if cfg.Obs != nil {
				snap := cfg.Obs.Snapshot()
				result.Metrics = &snap
			}
			return result, nil
		}
		var lost *cluster.WorkerLost
		if !errors.As(err, &lost) || attempt >= cfg.Checkpoint.maxRestartsOrDefault() {
			return nil, err
		}
		// Crash recovery: count the loss, discard the poisoned cluster,
		// and roll back to the newest checkpoint (nil restarts from
		// scratch when the crash beat the first save).
		restarts++
		if tally != nil {
			tally["worker_crash"]++
		}
		if cfg.Obs != nil {
			cfg.Obs.Counter("fault/worker_crash").Inc()
		}
		rp, rerr := coord.restorePoint()
		if rerr != nil {
			return nil, fmt.Errorf("train: recovering from %v: %w", lost, rerr)
		}
		start = rp
		if start != nil {
			if tally != nil {
				tally["restores"]++
			}
			if cfg.Obs != nil {
				cfg.Obs.Counter("ckpt/restores").Inc()
			}
		}
	}
}

// runAttempt executes one incarnation of the run on a fresh cluster,
// optionally restored from a checkpoint. It returns the workers for stats
// merging even on error; a *cluster.WorkerLost error (and only that) marks
// the attempt as recoverable.
func runAttempt(cfg Config, attempt int, start *ckpt.Checkpoint, coord *ckptCoord,
	tally map[string]int64) (*Result, []*cluster.Worker, error) {

	inj, err := fault.NewInjector(cfg.Fault)
	if err != nil {
		return nil, nil, fmt.Errorf("train: %w", err)
	}
	cl := cluster.New(cfg.Platform, cfg.Workers)
	cl.Observe(cfg.Obs)
	cl.InjectFaults(inj)
	cl.SetIncarnation(attempt)
	if cfg.Overlap {
		cl.SerializeWire(true)
	}
	result := &Result{CommSeconds: map[string]float64{}, AlgSeconds: map[string]float64{}}
	if start != nil {
		preloadResult(result, start)
		restoreCounters(cfg.Obs, start)
	} else if attempt > 0 {
		resetCounters(cfg.Obs)
	}
	var mu sync.Mutex
	// Per-rank compression-ratio accumulators: each worker adds to its own
	// slot lock-free on the hot path, and the slots merge in rank order once
	// the run finishes — so MeanCR is deterministic (the old shared-sum
	// design both contended a mutex per compress call and summed floats in
	// scheduler order). They are checkpointed per rank, so a resumed
	// attempt continues the accumulation the uninterrupted run would have.
	crs := make([]crAccum, cfg.Workers)
	errs := make([]error, cfg.Workers)

	workers := cl.Run(func(w *cluster.Worker) {
		if err := runWorker(w, cfg, result, &mu, &crs[w.Rank()], start, coord, tally); err != nil {
			errs[w.Rank()] = fmt.Errorf("rank %d: %w", w.Rank(), err)
		}
	})
	// A genuine error outranks the worker-loss unwinds it may have caused
	// on the other ranks; among pure losses any one identifies the crash.
	var lostErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		var lost *cluster.WorkerLost
		if errors.As(e, &lost) {
			if lostErr == nil {
				lostErr = e
			}
		} else {
			return nil, workers, e
		}
	}
	if lostErr != nil {
		return nil, workers, lostErr
	}
	var crSum float64
	var crCount int
	for i := range crs {
		crSum += crs[i].sum
		crCount += crs[i].count
	}
	if crCount > 0 {
		result.MeanCR = crSum / float64(crCount)
	}
	return result, workers, nil
}

// runWorker is the SPMD body. A worker-crash unwind (the victim's
// *CrashPanic, the survivors' *LostPanic) converts to a *cluster.WorkerLost
// error for the driver's recovery loop; survivors additionally charge the
// simulated peer-loss detection timeout. Any other panic is a bug and
// propagates.
func runWorker(w *cluster.Worker, cfg Config, result *Result, mu *sync.Mutex, cr *crAccum,
	start *ckpt.Checkpoint, coord *ckptCoord, tally map[string]int64) (err error) {
	defer func() {
		r := recover()
		switch p := r.(type) {
		case nil:
		case *cluster.CrashPanic:
			err = &cluster.WorkerLost{Rank: p.Rank, Step: p.Step, Point: p.Point}
		case *cluster.LostPanic:
			w.Compute(w.Faults().DetectSeconds(), "crash-detect")
			err = &cluster.WorkerLost{Rank: p.Rank, Step: p.Step, Point: p.Point}
		default:
			panic(r)
		}
	}()
	// Identical model on every worker; distinct data stream per worker. The
	// data stream's PCG is held directly so its exact position can be
	// checkpointed and restored (xrand.NewSeeded wraps the same generator).
	task := cfg.BuildTask(xrand.NewSeeded(cfg.Seed))
	dataSrc := xrand.NewPCG(cfg.Seed*1000 + 7 + int64(w.Rank()))
	dataRng := rand.New(dataSrc)

	var optimizer *kfac.KFAC
	var sgd *opt.SGD
	if cfg.UseKFAC {
		optimizer = kfac.New(task.Model, cfg.KFAC)
	} else {
		sgd = opt.NewSGD(0.9, 0)
	}
	var comp compress.Compressor
	if cfg.NewCompressor != nil {
		comp = cfg.NewCompressor(w.Rank())
	}
	// Per-layer compressors are built once per worker for its owned
	// layers, so stateful families (PowerSGD warm starts, EF residuals)
	// persist across steps exactly like the single-compressor path.
	var layerComps map[int]compress.Compressor
	if cfg.NewLayerCompressor != nil && cfg.UseKFAC {
		layerComps = make(map[int]compress.Compressor)
		for _, li := range ownedLayers(optimizer.NumLayers(), w.Size(), w.Rank()) {
			layerComps[li] = cfg.NewLayerCompressor(w.Rank(), li)
		}
	}

	evalGen := func() *rand.Rand { return xrand.NewSeeded(cfg.Seed*77 + 13) }
	tel := newTele(w)
	if tally != nil {
		// Fault tallies survive restart attempts (rank 0 is the only
		// writer, and attempts are sequential).
		tel.faults = tally
	}
	fc := newFaultCtx(w, cfg, tel)

	startIt := 0
	if start != nil {
		if err := restoreWorker(w, cfg, start, task, sgd, optimizer, comp, layerComps, dataSrc, cr); err != nil {
			return err
		}
		startIt = start.Step
	}
	crashes := cfg.Fault.HasCrashes() && w.Faults() != nil

	for it := startIt; it < cfg.Iters; it++ {
		w.SetStep(it)
		if crashes {
			if pt, ok := w.CrashDue(); ok && pt == fault.CrashAtStepStart {
				w.Crash(pt.String())
			}
		}
		tel.beginStep(it)
		if cfg.Controller != nil {
			if cc, ok := comp.(*compress.COMPSO); ok {
				cfg.Controller.Apply(it, cc)
				tel.controller(cfg.Controller, it)
			}
		}
		x, y := task.Data.Sample(dataRng, task.Batch)
		logits := task.Model.Forward(x, true)
		_, grad := task.Loss.Loss(logits, y)
		task.Model.ZeroGrad()
		task.Model.Backward(grad)
		if crashes {
			if pt, ok := w.CrashDue(); ok && pt == fault.CrashMidStep {
				w.Crash(pt.String())
			}
		}

		lr := cfg.Schedule.LR(it)
		switch {
		case cfg.UseKFAC && cfg.Overlap:
			if err := kfacIterationOverlap(w, cfg, task, optimizer, comp, layerComps, it, lr, tel, fc, cr); err != nil {
				return err
			}
		case cfg.UseKFAC:
			if err := kfacIteration(w, cfg, task, optimizer, comp, layerComps, it, lr, tel, fc, cr); err != nil {
				return err
			}
		case cfg.Overlap:
			if err := sgdIterationOverlap(w, cfg, task, sgd, comp, it, lr, tel, fc, cr); err != nil {
				return err
			}
		default:
			if err := sgdIteration(w, task, sgd, comp, it, lr, tel, fc, cr); err != nil {
				return err
			}
		}
		tel.endStep(it)
		fc.guardStep(it)

		if w.Rank() == 0 && ((it+1)%cfg.EvalEvery == 0 || it == cfg.Iters-1) {
			ex, ey := task.Data.Sample(evalGen(), cfg.EvalSize)
			out := task.Model.Forward(ex, false)
			l, _ := task.Loss.Loss(out, ey)
			acc := -1.0
			if task.Classes > 0 {
				acc = nn.Accuracy(out, ey)
			}
			mu.Lock()
			result.Iterations = append(result.Iterations, it+1)
			result.Losses = append(result.Losses, l)
			if task.Classes > 0 {
				result.Accuracies = append(result.Accuracies, acc)
			}
			result.FinalLoss = l
			result.FinalAcc = acc
			mu.Unlock()
		}

		if coord != nil && (it+1)%cfg.Checkpoint.Interval == 0 {
			if err := saveCheckpoint(w, cfg, coord, task, sgd, optimizer, comp, layerComps,
				dataSrc, cr, result, mu, it+1); err != nil {
				return err
			}
		}
	}
	if w.Rank() == 0 {
		mu.Lock()
		result.Model = task.Model
		if cfg.Fault != nil {
			result.FaultEvents = map[string]int64{
				"corrupted": 0, "retries": 0, "fallbacks": 0, "retunes": 0,
			}
			for k, v := range tel.faults {
				result.FaultEvents[k] = v
			}
		}
		mu.Unlock()
	}
	return nil
}

// allReduceGrads averages all parameter gradients across workers. The flat
// staging buffer is pooled: the collective's reduction allocates its own sum
// vector, so the buffer is only read during the exchange and can be recycled
// as soon as the averages are scattered back.
func allReduceGrads(w *cluster.Worker, model *nn.Sequential, category string) {
	params := model.Params()
	total := 0
	for _, p := range params {
		total += len(p.Grad.Data)
	}
	buf := pool.F64(total)[:0]
	// Deferred so the buffer recycles even when the collective unwinds on a
	// worker-loss panic.
	defer func() { pool.PutF64(buf) }()
	for _, p := range params {
		buf = append(buf, p.Grad.Data...)
	}
	w.AllReduce(buf, category)
	inv := 1.0 / float64(w.Size())
	pos := 0
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = buf[pos] * inv
			pos++
		}
	}
}

// sgdIteration is the first-order path: (optionally compressed) gradient
// exchange, then a momentum step.
func sgdIteration(w *cluster.Worker, task *modelzoo.ProxyTask, sgd *opt.SGD,
	comp compress.Compressor, it int, lr float64, tel *tele, fc *faultCtx, cr *crAccum) error {
	phase := tel.beginPhase("grad-sync")
	defer tel.endPhase(phase)
	if comp == nil {
		allReduceGrads(w, task.Model, "grad-allreduce")
	} else if ar, ef := ringCompressor(comp); ar != nil {
		// Low-rank family: the alternating P/Q factors aggregate as a
		// sum, so the exchange is a ring all-reduce over one factor
		// instead of an all-gather of per-rank blobs.
		if err := lowrankSync(w, task.Model, ar, ef, tel, cr, "grad-lowrank-allreduce"); err != nil {
			return err
		}
	} else {
		// Compressed exchange: each worker compresses its local gradient,
		// all-gathers, and averages the decompressed replicas — the
		// all-gather-based scheme that avoids ring error propagation. The
		// flat staging and sum buffers are pooled; neither escapes the call
		// (the collective payload is the compressed blob, not flat).
		params := task.Model.Params()
		total := 0
		for _, p := range params {
			total += len(p.Grad.Data)
		}
		flat := pool.F32(total)
		defer pool.PutF32(flat)
		pos := 0
		for _, p := range params {
			for _, v := range p.Grad.Data {
				flat[pos] = float32(v)
				pos++
			}
		}
		blob, err := comp.Compress(flat)
		if err != nil {
			return err
		}
		tel.compress(len(flat), len(blob), "grad-allgather")
		tel.filterStats(comp)
		recordCR(len(flat), len(blob), cr)
		parts := w.AllGather(blob, "grad-allgather")
		sum := pool.F64(len(flat))
		clear(sum)
		defer pool.PutF64(sum)
		// Fault-free fast path: each sender's blob decodes independently, so
		// the decompressions fan out over the shared worker pool; the
		// simulated-time charges and the averaging sum replay serially in
		// rank order, keeping the timeline and the float arithmetic exactly
		// those of the serial path. With faults enabled the serial
		// decodeGathered ladder runs instead — its retry broadcasts are
		// collectives every rank must enter in lockstep.
		var pvals [][]float32
		var perrs []error
		if fc == nil {
			pvals = make([][]float32, len(parts))
			perrs = make([]error, len(parts))
			pool.ParallelFor(len(parts), 0, func(r int) {
				pvals[r], perrs[r] = comp.Decompress(parts[r])
			})
		}
		for rank, part := range parts {
			var vals []float32
			var err error
			if fc == nil {
				vals, err = chargeGathered(tel, pvals[rank], perrs[rank], len(part), rank, len(flat), "grad-allgather")
			} else {
				vals, err = decodeGathered(fc, w, tel, comp, it, rank, part, blob, flat, len(flat), "grad-allgather")
			}
			if err != nil {
				return fmt.Errorf("train: gathered gradient from rank %d: %w", rank, err)
			}
			for i, v := range vals {
				sum[i] += float64(v)
			}
		}
		inv := 1.0 / float64(w.Size())
		pos = 0
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = sum[pos] * inv
				pos++
			}
		}
	}
	sgd.Step(task.Model.Params(), lr)
	return nil
}

// chargeGathered applies the serial tail of a gathered-blob decode to an
// already-decompressed value slice: the simulated decompress-time charge and
// the length check, with decodeGathered's exact charge order and error
// wording. It is the install half of the parallel-decode fast path.
func chargeGathered(tel *tele, vals []float32, decErr error, blobBytes, sender, wantLen int, category string) ([]float32, error) {
	if decErr != nil {
		return nil, decErr
	}
	tel.decompress(len(vals), blobBytes, category)
	if len(vals) != wantLen {
		return nil, fmt.Errorf("%w: train: gathered %d values from rank %d, want %d",
			compress.ErrCorrupt, len(vals), sender, wantLen)
	}
	return vals, nil
}

// kfacIteration is the distributed K-FAC path of Figure 2. layerComps,
// when non-nil, selects a compressor per owned layer for the
// preconditioned-gradient exchange (AggregationM == 1, enforced by Run);
// receivers decode the mixed-family frames through compress.Decode.
func kfacIteration(w *cluster.Worker, cfg Config, task *modelzoo.ProxyTask, k *kfac.KFAC,
	comp compress.Compressor, layerComps map[int]compress.Compressor,
	it int, lr float64, tel *tele, fc *faultCtx, cr *crAccum) error {
	// Step 0: standard data-parallel gradient average.
	phase := tel.beginPhase("grad-sync")
	allReduceGrads(w, task.Model, "grad-allreduce")
	tel.endPhase(phase)

	// Steps 1–2: covariance computation + factor all-reduce (amortized).
	if it%cfg.StatFreq == 0 {
		phase = tel.beginPhase("factor-sync")
		k.AccumulateStats(task.Batch)
		cov := k.PendingCovariances()
		if cfg.CompressFactors {
			if err := compressedFactorExchange(w, cfg, tel, cov); err != nil {
				return err
			}
		} else {
			w.AllReduce(cov, "kfac-allreduce")
		}
		if err := k.CommitCovariances(cov, w.Size()); err != nil {
			return err
		}
		tel.endPhase(phase)
	}

	// Step 3: eigendecomposition of owned layers. The decompositions are
	// independent per layer (each touches only its own layerState), so the
	// real compute fans out over the shared worker pool; the simulated-time
	// charges replay serially in layer order, exactly as the serial loop
	// issued them. Layers whose factors are unchanged since the last commit
	// are version-cache hits inside RefreshEigen and skip the solve — the
	// timing model still charges them, so the simulated results are
	// independent of the cache.
	owned := ownedLayers(k.NumLayers(), w.Size(), w.Rank())
	if k.NeedsEigen() {
		phase = tel.beginPhase("eigendecomp")
		eigErrs := make([]error, len(owned))
		pool.ParallelFor(len(owned), 0, func(j int) {
			eigErrs[j] = k.RefreshEigen(owned[j])
		})
		for j, li := range owned {
			if eigErrs[j] != nil {
				return eigErrs[j]
			}
			tel.eigen(k, li)
		}
		tel.endPhase(phase)
	}

	// Steps 4–5: precondition owned layers, compress per aggregation
	// group, all-gather, decompress everything.
	phase = tel.beginPhase("precond-exchange")
	groups := compso.Groups(len(owned), cfg.AggregationM)
	payload := make([]byte, 0, 1024)
	// rawPayload mirrors payload with lossless FP32 frames; it is the
	// sender-side material for the fault path's last-resort re-broadcast
	// and is only built when faults are enabled.
	var rawPayload []byte
	if fc != nil {
		rawPayload = make([]byte, 0, 1024)
	}
	for _, g := range groups {
		frame, rawFrame, err := buildGroupFrame(k, tel, cr, comp, layerComps, owned, g, fc != nil)
		if err != nil {
			return err
		}
		payload = append(payload, frame...)
		rawPayload = append(rawPayload, rawFrame...)
	}
	parts := w.AllGather(payload, "kfac-allgather")

	// Install every worker's decompressed preconditioned gradients. On the
	// fault-free fast path the pure frame decompressions fan out over the
	// shared worker pool with a serial rank-order install; with faults
	// enabled each sender frame goes through the serial corrupt → retry →
	// lossless-fallback ladder, whose recovery broadcasts are collectives
	// every rank must enter in lockstep.
	st := &kfacState{k: k, perLayer: layerComps != nil}
	if fc == nil {
		if err := installPartsParallel(w, cfg, tel, st, comp, parts); err != nil {
			return err
		}
	} else {
		for rank, part := range parts {
			if err := installPart(fc, w, cfg, tel, st, comp, it, rank, part, payload, rawPayload); err != nil {
				return err
			}
		}
	}
	tel.endPhase(phase)
	return k.ApplyUpdate(lr)
}

// buildGroupFrame preconditioned-and-compresses one aggregation group of
// owned layers and returns its uvarint-framed payload bytes, plus the
// lossless FP32 mirror frame when withRaw is set (the sender-side material
// for the fault path's last-resort re-broadcast). It is the per-group unit
// both the sequential exchange (frames concatenated into one payload) and
// the overlap scheduler (one all-gather round per frame) are built from —
// the operations, their order, and the bytes are identical either way.
func buildGroupFrame(k *kfac.KFAC, tel *tele, cr *crAccum,
	comp compress.Compressor, layerComps map[int]compress.Compressor,
	owned []int, g []int, withRaw bool) (frame, rawFrame []byte, err error) {

	grads := make([][]float32, 0, len(g))
	for _, oi := range g {
		vals, err := k.Precondition(owned[oi])
		if err != nil {
			return nil, nil, err
		}
		tel.precondition(k, owned[oi])
		grads = append(grads, vals)
	}
	flat := compso.Concat(grads)
	gcomp := comp
	if layerComps != nil {
		// AggregationM == 1: each group is exactly one owned layer.
		gcomp = layerComps[owned[g[0]]]
	}
	if gcomp != nil {
		blob, err := gcomp.Compress(flat)
		if err != nil {
			return nil, nil, err
		}
		tel.compressWith(compressorPipe(gcomp), len(flat), len(blob), "kfac-allgather")
		tel.filterStats(gcomp)
		recordCR(len(flat), len(blob), cr)
		frame = binary.AppendUvarint(frame, uint64(len(blob)))
		frame = append(frame, blob...)
	} else {
		// The FP32 frame is copied into the payload immediately, so its
		// staging buffer comes from the arena.
		raw := f32ToBytesPooled(flat)
		frame = binary.AppendUvarint(frame, uint64(len(raw)))
		frame = append(frame, raw...)
		pool.PutBytes(raw)
	}
	if withRaw {
		raw := f32ToBytesPooled(flat)
		rawFrame = binary.AppendUvarint(rawFrame, uint64(len(raw)))
		rawFrame = append(rawFrame, raw...)
		pool.PutBytes(raw)
	}
	return frame, rawFrame, nil
}

// kfacState wraps the optimizer for frame-by-frame installation of gathered
// preconditioned gradients. perLayer marks a mixed-family per-layer
// compressor plan: frames then decode through compress.Decode (magic-byte
// dispatch) instead of a single shared compressor.
type kfacState struct {
	k        *kfac.KFAC
	perLayer bool
}

// parsePart decodes one sender's uvarint-framed all-gather payload and
// installs its preconditioned gradients. lossless selects raw-FP32 frame
// decoding (comp is ignored and may be nil). All structural failures wrap
// compress.ErrCorrupt so the caller's recovery ladder can distinguish
// payload damage from programming errors.
func (st *kfacState) parsePart(w *cluster.Worker, cfg Config, tel *tele,
	comp compress.Compressor, sender int, part []byte, lossless bool) error {
	rOwned := ownedLayers(st.k.NumLayers(), w.Size(), sender)
	rGroups := compso.Groups(len(rOwned), cfg.AggregationM)
	return st.parseGroups(tel, comp, sender, part, lossless, rOwned, rGroups)
}

// parseGroups is parsePart over an explicit group subset: part must carry
// exactly one frame per entry of rGroups (group indices into rOwned, the
// sender's owned-layer list). An empty rGroups accepts only an empty part
// — the shape a rank with no owned layers (worldSize > nLayers) or a
// shorter exchange-round schedule legitimately sends — without flagging
// ErrCorrupt. The sequential path passes the sender's full group list; the
// overlap scheduler passes one group per exchange round.
func (st *kfacState) parseGroups(tel *tele, comp compress.Compressor,
	sender int, part []byte, lossless bool, rOwned []int, rGroups [][]int) error {
	k := st.k
	pos := 0
	for _, g := range rGroups {
		blobLen, used := binary.Uvarint(part[pos:])
		// Bound the frame length in uint64 space before the int cast: a
		// corrupted varint can encode values whose int conversion
		// overflows negative and sails past a signed comparison.
		if used <= 0 || blobLen > uint64(len(part)-pos-used) {
			return fmt.Errorf("%w: train: corrupt all-gather payload from rank %d", compress.ErrCorrupt, sender)
		}
		pos += used
		blob := part[pos : pos+int(blobLen)]
		pos += int(blobLen)
		var flat []float32
		if !lossless && (comp != nil || st.perLayer) {
			var err error
			if st.perLayer {
				flat, err = compress.Decode(blob)
			} else {
				flat, err = comp.Decompress(blob)
			}
			if err != nil {
				return err
			}
			tel.decompress(len(flat), len(blob), "kfac-allgather")
		} else {
			if len(blob)%4 != 0 {
				return fmt.Errorf("%w: train: raw frame from rank %d has %d bytes", compress.ErrCorrupt, sender, len(blob))
			}
			flat = bytesToF32(blob)
		}
		lengths := make([]int, len(g))
		for i, oi := range g {
			lengths[i] = k.LayerGradSize(rOwned[oi])
		}
		split, err := compso.Split(flat, lengths)
		if err != nil {
			return fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
		}
		for i, oi := range g {
			if err := k.SetPreconditioned(rOwned[oi], split[i]); err != nil {
				return err
			}
		}
	}
	if pos != len(part) {
		return fmt.Errorf("%w: train: %d trailing bytes in all-gather payload from rank %d",
			compress.ErrCorrupt, len(part)-pos, sender)
	}
	return nil
}

// splitFrames cuts one sender's uvarint-framed payload into its per-group
// blobs without decoding them — the pure framing half of parsePart, used by
// the parallel fast path.
func splitFrames(part []byte, nGroups, sender int) ([][]byte, error) {
	blobs := make([][]byte, 0, nGroups)
	pos := 0
	for g := 0; g < nGroups; g++ {
		blobLen, used := binary.Uvarint(part[pos:])
		if used <= 0 || blobLen > uint64(len(part)-pos-used) {
			return nil, fmt.Errorf("%w: train: corrupt all-gather payload from rank %d", compress.ErrCorrupt, sender)
		}
		pos += used
		blobs = append(blobs, part[pos:pos+int(blobLen)])
		pos += int(blobLen)
	}
	if pos != len(part) {
		return nil, fmt.Errorf("%w: train: %d trailing bytes in all-gather payload from rank %d",
			compress.ErrCorrupt, len(part)-pos, sender)
	}
	return blobs, nil
}

// installPartsParallel is the fault-free fast path for installing the
// gathered preconditioned gradients: every sender frame decompresses
// independently over the shared worker pool (pure decode, no shared writes —
// all in-tree Decompress implementations only read receiver state), then the
// simulated-time charges, group splits and SetPreconditioned installs replay
// serially in (rank, group) order so the timeline and numerics are exactly
// the serial path's. Lossless FP32 frames decode into pooled buffers;
// SetPreconditioned copies, so they recycle on return.
func installPartsParallel(w *cluster.Worker, cfg Config, tel *tele, st *kfacState,
	comp compress.Compressor, parts [][]byte) error {

	k := st.k
	lossless := comp == nil && !st.perLayer
	type frame struct {
		sender int
		blob   []byte
		vals   []float32
		err    error
		pooled bool
	}
	frames := make([][]frame, len(parts))
	splitErrs := make([]error, len(parts))
	jobs := make([]*frame, 0, len(parts))
	for rank, part := range parts {
		rOwned := ownedLayers(k.NumLayers(), w.Size(), rank)
		rGroups := compso.Groups(len(rOwned), cfg.AggregationM)
		blobs, err := splitFrames(part, len(rGroups), rank)
		if err != nil {
			// Surfaced at this rank's serial turn below, after earlier
			// ranks' charges and installs have replayed.
			splitErrs[rank] = err
			continue
		}
		frames[rank] = make([]frame, len(blobs))
		for g, b := range blobs {
			frames[rank][g] = frame{sender: rank, blob: b}
			jobs = append(jobs, &frames[rank][g])
		}
	}
	pool.ParallelFor(len(jobs), 0, func(j int) {
		f := jobs[j]
		if lossless {
			if len(f.blob)%4 != 0 {
				f.err = fmt.Errorf("%w: train: raw frame from rank %d has %d bytes", compress.ErrCorrupt, f.sender, len(f.blob))
				return
			}
			f.vals = bytesToF32Pooled(f.blob)
			f.pooled = true
		} else if st.perLayer {
			f.vals, f.err = compress.Decode(f.blob)
		} else {
			f.vals, f.err = comp.Decompress(f.blob)
		}
	})
	defer func() {
		for rank := range frames {
			for g := range frames[rank] {
				if frames[rank][g].pooled {
					pool.PutF32(frames[rank][g].vals)
				}
			}
		}
	}()
	for rank := range parts {
		if splitErrs[rank] != nil {
			return splitErrs[rank]
		}
		rOwned := ownedLayers(k.NumLayers(), w.Size(), rank)
		rGroups := compso.Groups(len(rOwned), cfg.AggregationM)
		for gi, g := range rGroups {
			f := &frames[rank][gi]
			if f.err != nil {
				return f.err
			}
			if !lossless {
				tel.decompress(len(f.vals), len(f.blob), "kfac-allgather")
			}
			lengths := make([]int, len(g))
			for i, oi := range g {
				lengths[i] = k.LayerGradSize(rOwned[oi])
			}
			split, err := compso.Split(f.vals, lengths)
			if err != nil {
				return fmt.Errorf("%w: %v", compress.ErrCorrupt, err)
			}
			for i, oi := range g {
				if err := k.SetPreconditioned(rOwned[oi], split[i]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// compressedFactorExchange replaces the factor all-reduce with a
// compressed all-gather + local sum: each worker error-bound-compresses its
// float32 factor contribution, gathers everyone's buffers, and sums the
// decompressed replicas back into cov. Every worker decodes identical
// bytes, so the replicas stay consistent.
func compressedFactorExchange(w *cluster.Worker, cfg Config, tel *tele, cov []float64) error {
	comp := compress.NewCOMPSO(991 + int64(w.Rank()))
	comp.FilterEnabled = true
	comp.EBFilter = cfg.FactorEB
	comp.EBQuant = cfg.FactorEB
	local := pool.F32(len(cov))
	for i, v := range cov {
		local[i] = float32(v)
	}
	blob, err := comp.Compress(local)
	pool.PutF32(local)
	if err != nil {
		return fmt.Errorf("train: factor compression: %w", err)
	}
	tel.compress(len(cov), len(blob), "kfac-allreduce")
	parts := w.AllGather(blob, "kfac-allreduce")
	// The per-rank replica decodes are independent pure reads of the shared
	// gathered buffers, so they fan out over the shared worker pool; the
	// decompress-time charges and the replica sum replay serially in rank
	// order, keeping the simulated timeline and the float arithmetic
	// identical to the serial path.
	vals := make([][]float32, len(parts))
	errs := make([]error, len(parts))
	pool.ParallelFor(len(parts), 0, func(r int) {
		vals[r], errs[r] = comp.Decompress(parts[r])
	})
	for i := range cov {
		cov[i] = 0
	}
	for rank, part := range parts {
		if errs[rank] != nil {
			return fmt.Errorf("train: factor decompression from rank %d: %w", rank, errs[rank])
		}
		tel.decompress(len(vals[rank]), len(part), "kfac-allreduce")
		if len(vals[rank]) != len(cov) {
			return fmt.Errorf("train: factor buffer from rank %d has %d values, want %d", rank, len(vals[rank]), len(cov))
		}
		for i, v := range vals[rank] {
			cov[i] += float64(v)
		}
	}
	return nil
}

// ownedLayers returns the layer indices assigned to rank under the
// round-robin layer-wise work split.
func ownedLayers(nLayers, worldSize, rank int) []int {
	var out []int
	for i := rank; i < nLayers; i += worldSize {
		out = append(out, i)
	}
	return out
}

// crAccum is one worker's lock-free compression-ratio accumulator; Run
// merges the per-rank accumulators in rank order after the workers finish.
type crAccum struct {
	sum   float64
	count int
}

func recordCR(nFloats, nBytes int, cr *crAccum) {
	if nFloats == 0 || nBytes == 0 {
		return
	}
	cr.sum += float64(4*nFloats) / float64(nBytes)
	cr.count++
}

// f32ToBytes encodes v little-endian into a fresh allocation. It is the
// right choice for buffers that escape into collectives — Broadcast and
// AllGather payloads are retained by other workers' goroutines and must
// never come from the arena.
func f32ToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(f))
	}
	return out
}

// f32ToBytesPooled is f32ToBytes into an arena buffer, for frames that are
// copied out immediately; the caller must hand it back via pool.PutBytes.
func f32ToBytesPooled(v []float32) []byte {
	out := pool.Bytes(4 * len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(f))
	}
	return out
}

func bytesToF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// bytesToF32Pooled is bytesToF32 into an arena buffer; the caller must hand
// it back via pool.PutF32 once the values have been copied out.
func bytesToF32Pooled(b []byte) []float32 {
	out := pool.F32(len(b) / 4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
