package train

import (
	"math"
	"sort"
	"testing"

	"compso/internal/compress"
	"compso/internal/fault"
	"compso/internal/kfac"
	"compso/internal/obs"
)

// chaosPlan is a hot everything-at-once scenario for the recovery tests.
func chaosPlan() *fault.Plan {
	return &fault.Plan{
		Seed:       21,
		Stragglers: []fault.Straggler{{Rank: 1, Factor: 2, FromStep: 1}},
		Links: []fault.LinkFault{{
			SrcNode: -1, DstNode: -1, Link: "inter",
			AlphaFactor: 2.5, BetaFactor: 1.5, Jitter: 0.2,
		}},
		Corruption: fault.Corruption{Rate: 1, BitFlips: 5},
		MaxRetries: 1,
		Guard:      fault.Guard{Ratio: 1.2, Patience: 2},
	}
}

func faultedConfig(iters int, rec *obs.Recorder) Config {
	cfg := baseConfig(iters)
	cfg.Workers = 4
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.NewCompressor = func(rank int) compress.Compressor {
		return compress.NewCOMPSO(int64(rank) + 1)
	}
	cfg.AggregationM = 2
	cfg.Obs = rec
	cfg.Fault = chaosPlan()
	return cfg
}

// canonicalSpans sorts a snapshot's spans into a scheduling-independent
// order for bit-identity comparison: concurrent worker goroutines append
// spans in nondeterministic order even when every span is identical.
func canonicalSpans(spans []obs.Span) []obs.Span {
	out := append([]obs.Span(nil), spans...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Attrs.Peer != b.Attrs.Peer {
			return a.Attrs.Peer < b.Attrs.Peer
		}
		return a.Attrs.Label < b.Attrs.Label
	})
	return out
}

// TestFaultedRunIsDeterministic pins the determinism contract end to end:
// identical seeds and fault plans produce bit-identical results and
// (canonicalized) traces across two runs.
func TestFaultedRunIsDeterministic(t *testing.T) {
	run := func() (*Result, obs.Snapshot) {
		rec := obs.NewRecorder()
		res, err := Run(faultedConfig(6, rec))
		if err != nil {
			t.Fatal(err)
		}
		return res, *res.Metrics
	}
	r1, s1 := run()
	r2, s2 := run()

	if r1.FinalLoss != r2.FinalLoss || r1.FinalAcc != r2.FinalAcc {
		t.Fatalf("final metrics differ: %v/%v vs %v/%v", r1.FinalLoss, r1.FinalAcc, r2.FinalLoss, r2.FinalAcc)
	}
	if len(r1.Losses) != len(r2.Losses) {
		t.Fatalf("loss logs differ in length: %d vs %d", len(r1.Losses), len(r2.Losses))
	}
	for i := range r1.Losses {
		if r1.Losses[i] != r2.Losses[i] {
			t.Fatalf("loss %d differs: %v vs %v", i, r1.Losses[i], r2.Losses[i])
		}
	}
	for k, v := range r1.AlgSeconds {
		if r2.AlgSeconds[k] != v {
			t.Fatalf("AlgSeconds[%s] differs: %v vs %v", k, v, r2.AlgSeconds[k])
		}
	}
	if len(r1.FaultEvents) == 0 {
		t.Fatal("faulted run reported no fault events")
	}
	for k, v := range r1.FaultEvents {
		if r2.FaultEvents[k] != v {
			t.Fatalf("FaultEvents[%s] differs: %d vs %d", k, v, r2.FaultEvents[k])
		}
	}
	c1, c2 := canonicalSpans(s1.Spans), canonicalSpans(s2.Spans)
	if len(c1) != len(c2) {
		t.Fatalf("span counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		a, b := c1[i], c2[i]
		a.ID, a.Parent = 0, 0 // IDs are allocation-order-dependent
		b.ID, b.Parent = 0, 0
		if a != b {
			t.Fatalf("span %d differs:\n  %+v\n  %+v", i, c1[i], c2[i])
		}
	}
	for k, v := range s1.Counters {
		if s2.Counters[k] != v {
			t.Fatalf("counter %s differs: %v vs %v", k, v, s2.Counters[k])
		}
	}
}

// TestDisabledFaultPlanIsInert pins the fast-path contract: a non-nil plan
// that injects nothing must reproduce the fault-free run bit for bit (the
// only difference being the zeroed FaultEvents tally).
func TestDisabledFaultPlanIsInert(t *testing.T) {
	base := baseConfig(8)
	base.UseKFAC = true
	base.KFAC = kfac.DefaultConfig()
	base.NewCompressor = func(rank int) compress.Compressor {
		return compress.NewCOMPSO(int64(rank) + 1)
	}

	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withPlan := base
	withPlan.Fault = &fault.Plan{Seed: 99, Guard: fault.Guard{Ratio: 10}}
	gated, err := Run(withPlan)
	if err != nil {
		t.Fatal(err)
	}
	if clean.FinalLoss != gated.FinalLoss {
		t.Fatalf("disabled plan changed the final loss: %v vs %v", clean.FinalLoss, gated.FinalLoss)
	}
	for i := range clean.Losses {
		if clean.Losses[i] != gated.Losses[i] {
			t.Fatalf("loss %d differs: %v vs %v", i, clean.Losses[i], gated.Losses[i])
		}
	}
	for k, v := range clean.AlgSeconds {
		if gated.AlgSeconds[k] != v {
			t.Fatalf("AlgSeconds[%s] differs: %v vs %v", k, v, gated.AlgSeconds[k])
		}
	}
	if clean.FaultEvents != nil {
		t.Fatal("fault-free run grew a FaultEvents tally")
	}
	if gated.FaultEvents == nil {
		t.Fatal("run with a plan should report a (zero) FaultEvents tally")
	}
	for k, v := range gated.FaultEvents {
		if v != 0 {
			t.Fatalf("disabled plan tallied %s=%d", k, v)
		}
	}
}

// TestCorruptionRecoveryKFAC runs the K-FAC gather path under rate-1
// corruption: the run must complete, converge to a finite loss, and report
// the full recovery ladder (corruptions, retries, lossless fallbacks) both
// in FaultEvents and as obs counters.
func TestCorruptionRecoveryKFAC(t *testing.T) {
	rec := obs.NewRecorder()
	res, err := Run(faultedConfig(6, rec))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0) {
		t.Fatalf("non-finite final loss %v", res.FinalLoss)
	}
	ev := res.FaultEvents
	if ev["corrupted"] == 0 || ev["retries"] == 0 || ev["fallbacks"] == 0 {
		t.Fatalf("recovery ladder not exercised: %v", ev)
	}
	snap := res.Metrics
	if snap.Counters["fault/corrupted_blobs"] != float64(ev["corrupted"]) ||
		snap.Counters["fault/decode_retries"] != float64(ev["retries"]) ||
		snap.Counters["fault/decode_fallbacks"] != float64(ev["fallbacks"]) {
		t.Fatalf("obs counters disagree with FaultEvents: %v vs %v", snap.Counters, ev)
	}
	// Reconciliation must survive fault injection: the spans and the
	// engine attribute the same (perturbed) timeline.
	perWorker := map[string]float64{}
	for k, v := range snap.AlgSeconds() {
		perWorker[k] = v / 4
	}
	if err := obs.ReconcileAlgSeconds(perWorker, res.AlgSeconds, 0.01); err != nil {
		t.Fatalf("span/AlgSeconds reconciliation under faults: %v", err)
	}
}

// TestCorruptionRecoverySGD exercises the compressed first-order gather
// path's decodeGathered ladder under rate-1 corruption.
func TestCorruptionRecoverySGD(t *testing.T) {
	cfg := baseConfig(6)
	cfg.NewCompressor = func(rank int) compress.Compressor {
		return compress.NewCOMPSO(int64(rank) + 1)
	}
	cfg.Fault = &fault.Plan{
		Seed:       4,
		Corruption: fault.Corruption{Rate: 1, BitFlips: 5},
		MaxRetries: 1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0) {
		t.Fatalf("non-finite final loss %v", res.FinalLoss)
	}
	if res.FaultEvents["fallbacks"] == 0 {
		t.Fatalf("SGD path never fell back to lossless: %v", res.FaultEvents)
	}
}

// TestStragglerSlowsRunWithoutChangingNumerics: a compute straggler must
// stretch the simulated timeline but leave every numeric result untouched
// (compute time is charged, not computed differently).
func TestStragglerSlowsRunWithoutChangingNumerics(t *testing.T) {
	base := baseConfig(8)
	clean, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	slow := baseConfig(8)
	slow.Fault = &fault.Plan{
		Seed:       2,
		Stragglers: []fault.Straggler{{Rank: 0, Factor: 4}},
	}
	res, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss != clean.FinalLoss {
		t.Fatalf("straggler changed numerics: %v vs %v", res.FinalLoss, clean.FinalLoss)
	}
}

// TestGuardRetunesUnderDegradedLinks: sustained link degradation beyond the
// guard ratio must trigger autotuner retunes.
func TestGuardRetunesUnderDegradedLinks(t *testing.T) {
	cfg := baseConfig(10)
	cfg.Fault = &fault.Plan{
		Seed: 6,
		Links: []fault.LinkFault{{
			SrcNode: -1, DstNode: -1,
			AlphaFactor: 4, BetaFactor: 3, Jitter: 0.2,
		}},
		Guard: fault.Guard{Ratio: 1.3, Patience: 2},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultEvents["retunes"] == 0 {
		t.Fatalf("guard never retuned under 4x link degradation: %v", res.FaultEvents)
	}
}
