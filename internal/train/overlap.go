package train

import (
	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/opt"
	"compso/internal/pool"
)

// The compute/communication overlap scheduler (Config.Overlap): the same
// collectives as the sequential path, issued through the cluster's
// non-blocking launch/wait handles so their latency hides behind the
// compute between launch and wait. Three invariants keep the results
// bit-identical to the sequential path (DESIGN.md §8):
//
//   - Compression units never change. Per-bucket compression of an SGD
//     gradient would re-frame the stateful COMPSO stream and shift every
//     per-call max-abs scale, so blob-compressed SGD keeps its sequential
//     whole-model granularity; the K-FAC exchange already compresses per
//     aggregation group, which is exactly the unit the overlap rounds
//     pipeline.
//   - In-bucket order is the flatten order. Fused all-reduce buckets cut
//     the whole-model flatten at tensor boundaries, so each element's
//     rank-order sum is the identical float expression either way.
//   - Installs are order-independent. Gathered K-FAC frames install via
//     SetPreconditioned keyed by (sender, layer); decoding round-by-round
//     instead of whole-payload touches the same state with the same
//     values.
//
// Only the simulated schedule moves: launches cluster at phase starts,
// waits charge only the exposed remainder, and SerializeWire queues the
// in-flight collectives on the fabric so the win is honest.

// sgdIterationOverlap is the first-order overlap path. Only the
// uncompressed gradient exchange has sub-step structure to pipeline — it
// splits into fused buckets launched back-to-back. The compressed paths
// delegate to the sequential iteration: the blob all-gather is a single
// whole-model compress → gather → decode-everything chain with no
// intermediate unit to overlap (see the compression-unit invariant above),
// and the low-rank ring path is already one fused factor all-reduce.
func sgdIterationOverlap(w *cluster.Worker, cfg Config, task *modelzoo.ProxyTask, sgd *opt.SGD,
	comp compress.Compressor, it int, lr float64, tel *tele, fc *faultCtx, cr *crAccum) error {

	if comp != nil {
		return sgdIteration(w, task, sgd, comp, it, lr, tel, fc, cr)
	}
	phase := tel.beginPhase("grad-sync")
	buckets, pend, bufs := launchGradBuckets(w, task, cfg.FusionBytes)
	defer releaseBuckets(bufs)
	installGradBuckets(w, task, buckets, pend, bufs)
	tel.endPhase(phase)
	sgd.Step(task.Model.Params(), lr)
	return nil
}

// releaseBuckets recycles whatever bucket staging buffers are still
// outstanding — the normal install path hands each back (and nils its
// slot) as soon as it scatters, so this deferred sweep only pays out when
// a worker-loss panic unwinds between launch and install.
func releaseBuckets(bufs [][]float64) {
	for i, b := range bufs {
		if b != nil {
			pool.PutF64(b)
			bufs[i] = nil
		}
	}
}

// launchGradBuckets flattens the model gradient into fused buckets and
// launches one asynchronous all-reduce per bucket. The pooled staging
// buffers are read only during each launch rendezvous and receive the
// bucket's sum at Wait, so they recycle right after the scatter.
func launchGradBuckets(w *cluster.Worker, task *modelzoo.ProxyTask, fusionBytes int) ([]bucket, []*cluster.PendingReduce, [][]float64) {
	params := task.Model.Params()
	buckets := fuseBuckets(gradSizes(params), fusionBytes)
	pend := make([]*cluster.PendingReduce, len(buckets))
	bufs := make([][]float64, len(buckets))
	// A later launch can unwind on a worker-loss panic; hand the already-
	// staged buffers back before re-panicking so nothing leaks from the
	// arena (callers never see bufs in that case).
	defer func() {
		if r := recover(); r != nil {
			releaseBuckets(bufs)
			panic(r)
		}
	}()
	for b, bk := range buckets {
		buf := pool.F64(bk.elems)[:0]
		for _, p := range params[bk.start:bk.end] {
			buf = append(buf, p.Grad.Data...)
		}
		bufs[b] = buf
		pend[b] = w.AllReduceAsync(buf, "grad-allreduce")
	}
	return buckets, pend, bufs
}

// installGradBuckets waits for each bucket in launch order and scatters
// the averaged gradients back into the parameter tensors.
func installGradBuckets(w *cluster.Worker, task *modelzoo.ProxyTask, buckets []bucket, pend []*cluster.PendingReduce, bufs [][]float64) {
	params := task.Model.Params()
	inv := 1.0 / float64(w.Size())
	for b, bk := range buckets {
		pend[b].Wait()
		pos := 0
		for _, p := range params[bk.start:bk.end] {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = bufs[b][pos] * inv
				pos++
			}
		}
		pool.PutF64(bufs[b])
		bufs[b] = nil
	}
}

// kfacIterationOverlap is the distributed K-FAC overlap path. Schedule,
// relative to the sequential kfacIteration:
//
//  1. Launch the factor all-reduce (stat steps) and then every fused
//     gradient bucket, back-to-back, before blocking on anything.
//  2. Wait only for the factors, commit them, and run the owned-layer
//     eigendecompositions while the (much larger) gradient buckets are
//     still on the wire.
//  3. Wait the buckets in launch order and install the averaged gradients.
//  4. Precondition + compress each aggregation group and launch its
//     all-gather round as soon as the frame is ready; ranks with fewer
//     groups than the longest rank contribute empty rounds (the
//     worldSize > nLayers shape, which parseGroups accepts).
//  5. Wait each round in launch order and install its frames — round r
//     decodes while rounds r+1… are still in flight — then apply the
//     update.
//
// The collectives, their program order across ranks, the compressed bytes,
// and the installed values are identical to the sequential path.
func kfacIterationOverlap(w *cluster.Worker, cfg Config, task *modelzoo.ProxyTask, k *kfac.KFAC,
	comp compress.Compressor, layerComps map[int]compress.Compressor,
	it int, lr float64, tel *tele, fc *faultCtx, cr *crAccum) error {

	owned := ownedLayers(k.NumLayers(), w.Size(), w.Rank())
	statStep := it%cfg.StatFreq == 0

	// Step 1: launch the factor sum first (it is small and unblocks the
	// eigendecompositions), then the fused gradient buckets.
	phase := tel.beginPhase("grad-launch")
	var cov []float64
	var covPending *cluster.PendingReduce
	if statStep {
		k.AccumulateStats(task.Batch)
		cov = k.PendingCovariances()
		if !cfg.CompressFactors {
			covPending = w.AllReduceAsync(cov, "kfac-allreduce")
		}
	}
	buckets, pend, bufs := launchGradBuckets(w, task, cfg.FusionBytes)
	defer releaseBuckets(bufs)
	tel.endPhase(phase)

	// Step 2: factor sync + eigendecomposition, overlapping the buckets.
	// The compressed factor exchange stays synchronous — it is an
	// all-gather + sum whose result feeds CommitCovariances immediately.
	if statStep {
		phase = tel.beginPhase("factor-sync")
		if cfg.CompressFactors {
			if err := compressedFactorExchange(w, cfg, tel, cov); err != nil {
				return err
			}
		} else {
			covPending.Wait()
		}
		if err := k.CommitCovariances(cov, w.Size()); err != nil {
			return err
		}
		tel.endPhase(phase)
	}
	if k.NeedsEigen() {
		phase = tel.beginPhase("eigendecomp")
		eigErrs := make([]error, len(owned))
		pool.ParallelFor(len(owned), 0, func(j int) {
			eigErrs[j] = k.RefreshEigen(owned[j])
		})
		for j, li := range owned {
			if eigErrs[j] != nil {
				return eigErrs[j]
			}
			tel.eigen(k, li)
		}
		tel.endPhase(phase)
	}

	// Step 3: the preconditioner needs the averaged gradients — wait the
	// buckets out and scatter.
	phase = tel.beginPhase("grad-install")
	installGradBuckets(w, task, buckets, pend, bufs)
	tel.endPhase(phase)

	// Steps 4–5: pipelined preconditioned-gradient exchange, one all-gather
	// round per aggregation group. Every rank runs the same number of
	// rounds (rank 0 always owns the most layers under the round-robin
	// split), sending empty payloads once its own groups run out.
	phase = tel.beginPhase("precond-exchange")
	groups := compso.Groups(len(owned), cfg.AggregationM)
	nRounds := len(compso.Groups(len(ownedLayers(k.NumLayers(), w.Size(), 0)), cfg.AggregationM))
	type round struct {
		payload, rawPayload []byte
		pending             *cluster.PendingGather
	}
	rounds := make([]round, nRounds)
	for r := 0; r < nRounds; r++ {
		var payload, rawPayload []byte
		if r < len(groups) {
			var err error
			payload, rawPayload, err = buildGroupFrame(k, tel, cr, comp, layerComps, owned, groups[r], fc != nil)
			if err != nil {
				return err
			}
		}
		rounds[r] = round{payload: payload, rawPayload: rawPayload,
			pending: w.AllGatherAsync(payload, "kfac-allgather")}
	}
	st := &kfacState{k: k, perLayer: layerComps != nil}
	lossless := comp == nil && !st.perLayer
	for r := 0; r < nRounds; r++ {
		parts := rounds[r].pending.Wait()
		for sender, part := range parts {
			sOwned := ownedLayers(k.NumLayers(), w.Size(), sender)
			sGroups := compso.Groups(len(sOwned), cfg.AggregationM)
			var rGroups [][]int
			if r < len(sGroups) {
				rGroups = sGroups[r : r+1]
			}
			sender := sender
			parse := func(p []byte, fallback bool) error {
				if fallback {
					return st.parseGroups(tel, nil, sender, p, true, sOwned, rGroups)
				}
				return st.parseGroups(tel, comp, sender, p, lossless, sOwned, rGroups)
			}
			if err := installFramed(fc, w, it, sender, part, rounds[r].payload, rounds[r].rawPayload, parse); err != nil {
				return err
			}
		}
	}
	tel.endPhase(phase)
	return k.ApplyUpdate(lr)
}
