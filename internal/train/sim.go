package train

import (
	"fmt"

	"compso/internal/compress"
	"compso/internal/des"
	"compso/internal/gpusim"
	"compso/internal/modelzoo"
	"compso/internal/xrand"
)

// Mega-scale communication simulation. The payload-carrying training loop
// in this package runs P real model replicas, so it cannot scale past the
// paper's world sizes. CommSim is the discrete-event counterpart: the
// compression payload math runs ONCE on a model rank — a synthetic K-FAC
// gradient is compressed through the real compressor to calibrate the
// blob size — and the per-step communication pattern of the training loop
// (compressed gradient all-gather, K-FAC covariance all-reduce,
// owned-layer eigendecomposition, preconditioned-gradient exchange) is
// emitted as a des.Program whose collective sizes and compute charges come
// from the same models (gpusim roofline, modelzoo ComputeModel) the live
// loop charges. Replaying the program on a des.World then simulates
// thousands of ranks in one process.

// CommSimConfig selects the workload whose communication profile is
// simulated.
type CommSimConfig struct {
	// Model is the modelzoo profile name (e.g. "resnet50", "bertlarge").
	Model string
	// Compressor is the compress registry name ("" or "none" disables
	// compression: gradients ship as raw FP32).
	Compressor string
	// Steps is how many training iterations to emit.
	Steps int
	// StatFreq is the K-FAC covariance/eigendecomposition cadence in steps
	// (default 10, the paper's amortization setting).
	StatFreq int
	// KFAC selects the second-order pipeline: covariance all-reduces,
	// owned-layer eigendecompositions and a compressed preconditioned-
	// gradient exchange on top of the gradient sync. Off simulates the
	// first-order compressed-all-gather loop.
	KFAC bool
	// Seed drives the synthetic calibration gradient.
	Seed int64
	// CalibElems caps the number of gradient elements compressed during
	// blob-size calibration (default 1<<20; the measured ratio
	// extrapolates to the full gradient).
	CalibElems int
	// ElemScale scales every collective's element/byte sizes (0 or 1 =
	// full size). The bit-identity legs use a small scale so the
	// goroutine engine's REAL payload buffers stay affordable — engine
	// equivalence only needs both engines replaying the same program, not
	// the full-size one.
	ElemScale float64
}

func (c *CommSimConfig) withDefaults() CommSimConfig {
	out := *c
	if out.Steps <= 0 {
		out.Steps = 10
	}
	if out.StatFreq <= 0 {
		out.StatFreq = 10
	}
	if out.CalibElems <= 0 {
		out.CalibElems = 1 << 20
	}
	if out.Model == "" {
		out.Model = "ResNet-50"
	}
	return out
}

// CommSimInfo reports the calibration the program was built from.
type CommSimInfo struct {
	Model string `json:"model"`
	// GradElems is the full FP32 gradient length.
	GradElems int `json:"grad_elems"`
	// BlobBytes is the extrapolated compressed-gradient wire size.
	BlobBytes int `json:"blob_bytes"`
	// Ratio is the measured compression ratio (1 when uncompressed).
	Ratio float64 `json:"ratio"`
	// Ops is the emitted program length.
	Ops int `json:"ops"`
}

// BuildCommProgram calibrates the compressor on the model rank and emits
// the des.Program of cfg.Steps training iterations for a world of p
// ranks.
func BuildCommProgram(cfg CommSimConfig, p int) (des.Program, CommSimInfo, error) {
	c := cfg.withDefaults()
	prof, err := modelzoo.ByName(c.Model)
	if err != nil {
		return nil, CommSimInfo{}, err
	}
	ratio, err := calibrateRatio(prof, c)
	if err != nil {
		return nil, CommSimInfo{}, err
	}

	scale := c.ElemScale
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	elems := scaled(prof.TotalParams(), scale)
	covElems := scaled(prof.CovarianceFloats(), scale)
	blob := scaled(int(float64(4*elems)/ratio), 1)
	dev, pipe := gpusim.A100(), gpusim.COMPSOFused()
	cm := modelzoo.A100Compute()
	compressT := dev.Time(pipe, elems)
	decompressT := dev.DecompressTime(pipe, elems)
	if ratio == 1 {
		compressT, decompressT = 0, 0 // uncompressed: no kernel charges
	}

	info := CommSimInfo{Model: prof.Name, GradElems: elems, BlobBytes: blob, Ratio: ratio}
	var prog des.Program
	for step := 0; step < c.Steps; step++ {
		prog = append(prog, des.Op{Kind: des.KindSetStep, Step: step})
		prog = append(prog, des.Op{Kind: des.KindCompute, Seconds: cm.FwdBwdTime(prof), Category: "fwd-bwd"})
		if !c.KFAC {
			// First-order loop: compress local gradient, all-gather the
			// blobs, decode all P replicas.
			prog = append(prog,
				des.Op{Kind: des.KindCompute, Seconds: compressT, Category: "compress"},
				des.Op{Kind: des.KindAllGather, Sizes: []int{blob}, Category: "grad-allgather"},
				des.Op{Kind: des.KindCompute, Seconds: float64(p) * decompressT, Category: "decompress"},
			)
			continue
		}
		// K-FAC loop (Figure 2): raw gradient average, amortized factor
		// sync, owned-layer inverse work, compressed preconditioned
		// exchange.
		prog = append(prog, des.Op{Kind: des.KindAllReduce, Elems: elems, Category: "grad-allreduce"})
		if step%c.StatFreq == 0 {
			prog = append(prog,
				des.Op{Kind: des.KindCompute, Seconds: cm.CovTime(prof), Category: "kfac-cov"},
				des.Op{Kind: des.KindAllReduce, Elems: covElems, Category: "kfac-allreduce"},
				des.Op{Kind: des.KindComputeEach, PerRank: eigCharges(prof, cm, p), Category: "kfac-eigendecomp"},
			)
		}
		prog = append(prog,
			des.Op{Kind: des.KindComputeEach, PerRank: precondCharges(prof, cm, p), Category: "kfac-precondition"},
			des.Op{Kind: des.KindCompute, Seconds: compressT, Category: "compress"},
			des.Op{Kind: des.KindAllGather, Sizes: kfacGatherSizes(prof, ratio, scale, p), Category: "kfac-allgather"},
			des.Op{Kind: des.KindCompute, Seconds: float64(p) * decompressT, Category: "decompress"},
		)
	}
	info.Ops = len(prog)
	return prog, info, nil
}

// calibrateRatio compresses one synthetic gradient (capped at CalibElems)
// through the configured compressor and returns the measured ratio.
func calibrateRatio(prof modelzoo.Profile, c CommSimConfig) (float64, error) {
	if c.Compressor == "" || c.Compressor == "none" {
		return 1, nil
	}
	comp, err := compress.ByName(c.Compressor, compress.Options{Seed: c.Seed})
	if err != nil {
		return 0, err
	}
	rng := xrand.NewSeeded(c.Seed)
	flat := make([]float32, 0, c.CalibElems)
	for li := range prof.Layers {
		remaining := c.CalibElems - len(flat)
		if remaining <= 0 {
			break
		}
		flat = append(flat, prof.SyntheticGradient(rng, li, remaining)...)
	}
	blob, err := comp.Compress(flat)
	if err != nil {
		return 0, fmt.Errorf("train: comm-sim calibration: %w", err)
	}
	ratio := float64(4*len(flat)) / float64(len(blob))
	if ratio <= 0 {
		return 0, fmt.Errorf("train: comm-sim calibration produced ratio %g", ratio)
	}
	return ratio, nil
}

// eigCharges returns each rank's eigendecomposition seconds over its
// owned layers (the round-robin layer assignment of the training loop).
func eigCharges(prof modelzoo.Profile, cm modelzoo.ComputeModel, p int) []float64 {
	out := make([]float64, p)
	for li := range prof.Layers {
		out[li%p] += cm.EigTime(prof, li)
	}
	return out
}

// precondCharges returns each rank's preconditioning seconds over its
// owned layers.
func precondCharges(prof modelzoo.Profile, cm modelzoo.ComputeModel, p int) []float64 {
	out := make([]float64, p)
	for li := range prof.Layers {
		out[li%p] += cm.PrecondTime(prof, li)
	}
	return out
}

// kfacGatherSizes returns the per-rank compressed preconditioned-gradient
// contribution: each rank ships its owned layers' parameters at the
// calibrated ratio (ranks beyond the layer count contribute nothing).
func kfacGatherSizes(prof modelzoo.Profile, ratio, scale float64, p int) []int {
	sizes := make([]int, p)
	for li, l := range prof.Layers {
		sizes[li%p] += scaled(int(float64(4*l.Params())/ratio), scale)
	}
	return sizes
}

// scaled applies the ElemScale size reduction, keeping sizes positive.
func scaled(n int, scale float64) int {
	s := int(float64(n) * scale)
	if s < 1 {
		return 1
	}
	return s
}
