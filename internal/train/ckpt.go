package train

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"compso/internal/ckpt"
	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/obs"
	"compso/internal/opt"
)

// Crash-fault tolerance: periodic checkpoints of the complete training
// state (package ckpt) plus automatic rollback-and-resume when a worker is
// lost. The contract is bit-identity — a run that crashes at step k and
// resumes from checkpoint c produces exactly the final losses, accuracies,
// model parameters, mean compression ratio and wire-byte counters of an
// uninterrupted run with the same checkpoint cadence. Three mechanisms
// carry it:
//
//   - Complete state capture. A checkpoint holds the model, the optimizer
//     (SGD momentum or K-FAC covariances plus the owner-local
//     decomposition caches), every stream compressor's Stateful snapshot,
//     each rank's data-RNG position, the per-rank compression-ratio
//     accumulators, rank 0's evaluation log, and the cumulative wire
//     counters. Restoring all of it makes the resumed step's float
//     expressions identical to the uninterrupted run's.
//   - Deterministic collectives. The engine reduces in fixed rank order
//     regardless of which algorithm the autotuner picks, so the autotuner
//     re-warming from scratch after a restore cannot change any sum.
//   - Counter rewind. Wire and step counters are restored to their
//     checkpointed values (obs.Counter.Set's only sanctioned caller), so
//     the lost work between the checkpoint and the crash is not
//     double-counted.
//
// Lost work still costs simulated time: CommSeconds/AlgSeconds accumulate
// across every attempt, which is exactly what the checkpoint-interval
// recovery judge in internal/experiments prices.

// CheckpointConfig enables periodic checkpointing and crash recovery.
type CheckpointConfig struct {
	// Interval saves a checkpoint every Interval completed steps; 0
	// disables checkpointing (a crash then aborts the run after
	// MaxRestarts scratch restarts).
	Interval int
	// Dir is the checkpoint directory. Empty keeps checkpoints in memory
	// (still round-tripped through the wire encoding, so restore always
	// exercises the codec).
	Dir string
	// Resume is the path of a checkpoint file to resume from ("" starts
	// fresh). The checkpoint's config fingerprint must match.
	Resume string
	// MaxRestarts bounds how many worker-loss recoveries Run attempts
	// before giving up (default 3).
	MaxRestarts int
}

// maxRestartsOrDefault returns the recovery budget.
func (c CheckpointConfig) maxRestartsOrDefault() int {
	if c.MaxRestarts > 0 {
		return c.MaxRestarts
	}
	return 3
}

// ckptCoord coordinates one run's checkpointing across workers and
// restart attempts: per-rank capture slots (written by each rank, read by
// rank 0 after a barrier) and the last persisted checkpoint (read by Run
// between attempts).
type ckptCoord struct {
	dir    string
	ranks  []ckpt.RankState
	caches [][]kfac.LayerCache

	mu   sync.Mutex
	last *ckpt.Checkpoint
}

func newCkptCoord(cfg Config) *ckptCoord {
	if cfg.Checkpoint.Interval <= 0 {
		return nil
	}
	return &ckptCoord{
		dir:    cfg.Checkpoint.Dir,
		ranks:  make([]ckpt.RankState, cfg.Workers),
		caches: make([][]kfac.LayerCache, cfg.Workers),
	}
}

// persist stores the assembled checkpoint: to disk when a directory is
// configured, and always decoded back from its own encoding so the
// in-memory restore point is exactly what a file restore would yield.
func (co *ckptCoord) persist(ck *ckpt.Checkpoint, rec *obs.Recorder) error {
	blob := ck.Encode()
	if co.dir != "" {
		if _, _, err := ckpt.Save(co.dir, ck); err != nil {
			return fmt.Errorf("train: checkpoint save: %w", err)
		}
	}
	dec, err := ckpt.Decode(blob)
	if err != nil {
		return fmt.Errorf("train: checkpoint round-trip: %w", err)
	}
	co.mu.Lock()
	co.last = dec
	co.mu.Unlock()
	if rec != nil {
		rec.Counter("ckpt/saves").Inc()
		rec.Counter("ckpt/bytes").Add(float64(len(blob)))
	}
	return nil
}

// restorePoint returns the checkpoint a recovery should roll back to: the
// newest complete file when a directory is configured (exercising the
// torn-write-tolerant LatestPath), the in-memory copy otherwise, nil when
// nothing has been saved yet (the recovery then restarts from scratch).
func (co *ckptCoord) restorePoint() (*ckpt.Checkpoint, error) {
	if co == nil {
		return nil, nil
	}
	if co.dir != "" {
		path, err := ckpt.LatestPath(co.dir)
		if err != nil || path == "" {
			return nil, err
		}
		return ckpt.Load(path)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.last, nil
}

// methodFingerprint identifies the parts of the configuration a checkpoint
// is only valid for. A resume under a different fingerprint would replay
// different float expressions, so it is rejected instead.
func methodFingerprint(cfg Config) string {
	m := "sgd"
	if cfg.UseKFAC {
		m = "kfac"
	}
	comp := "none"
	if cfg.NewCompressor != nil {
		comp = "stream"
	}
	if cfg.NewLayerCompressor != nil {
		comp = "per-layer"
	}
	return fmt.Sprintf("%s/%s/statfreq=%d/aggm=%d/overlap=%v/factors=%v",
		m, comp, cfg.StatFreq, cfg.AggregationM, cfg.Overlap, cfg.CompressFactors)
}

// controllerFingerprint identifies the adaptive-compression controller.
// The Algorithm-1 controller is a pure function of its configuration and
// the step number, so identity — not live state — is all a resume needs.
func controllerFingerprint(cfg Config) string {
	c := cfg.Controller
	if c == nil {
		return ""
	}
	return fmt.Sprintf("ctrl/loose=%g,%g/tight=%g/z=%d/alpha=%g/T=%d",
		c.LooseEBF, c.LooseEBQ, c.TightEBQ, c.Stages, c.Alpha, c.TotalIters)
}

// validateResume rejects a checkpoint that does not belong to this
// configuration.
func validateResume(cfg Config, c *ckpt.Checkpoint) error {
	if c.Workers != cfg.Workers || c.Seed != cfg.Seed || c.UseKFAC != cfg.UseKFAC {
		return fmt.Errorf("train: checkpoint is for workers=%d seed=%d kfac=%v, config wants workers=%d seed=%d kfac=%v",
			c.Workers, c.Seed, c.UseKFAC, cfg.Workers, cfg.Seed, cfg.UseKFAC)
	}
	if got, want := methodFingerprint(cfg), c.Method; got != want {
		return fmt.Errorf("train: checkpoint method %q, config is %q", want, got)
	}
	if got, want := controllerFingerprint(cfg), c.Controller; got != want {
		return fmt.Errorf("train: checkpoint controller %q, config is %q", want, got)
	}
	if c.Step > cfg.Iters {
		return fmt.Errorf("train: checkpoint step %d beyond the %d-iteration budget", c.Step, cfg.Iters)
	}
	if len(c.Ranks) != cfg.Workers {
		return fmt.Errorf("train: checkpoint has %d rank states for %d workers", len(c.Ranks), cfg.Workers)
	}
	return nil
}

// preloadResult replaces the result log with the checkpoint's, so the
// resumed run's evaluation history is exactly the uninterrupted run's.
func preloadResult(result *Result, c *ckpt.Checkpoint) {
	result.Iterations = append([]int(nil), c.Log.Iterations...)
	result.Losses = append([]float64(nil), c.Log.Losses...)
	result.Accuracies = append([]float64(nil), c.Log.Accuracies...)
	result.FinalLoss = c.Log.FinalLoss
	result.FinalAcc = c.Log.FinalAcc
}

// restoreCounters rewinds the cumulative counters to their checkpointed
// values: every checkpointed counter is Set back, and wire counters that
// only came into existence during the lost work are zeroed, so resumed
// totals match an uninterrupted run exactly.
func restoreCounters(rec *obs.Recorder, c *ckpt.Checkpoint) {
	if rec == nil {
		return
	}
	for _, name := range rec.CounterNames("wire/") {
		if _, ok := c.Counters[name]; !ok {
			rec.Counter(name).Set(0)
		}
	}
	for name, v := range c.Counters {
		rec.Counter(name).Set(v)
	}
}

// resetCounters zeroes the resumable counters for a from-scratch restart —
// a crash that beat the first checkpoint. The replayed steps re-count their
// wire traffic from zero, so the totals stay exactly those of an
// uninterrupted run.
func resetCounters(rec *obs.Recorder) {
	if rec == nil {
		return
	}
	for _, name := range rec.CounterNames("wire/") {
		rec.Counter(name).Set(0)
	}
	rec.Counter("train/steps").Set(0)
}

// captureCounters snapshots the counters a resume must rewind: the wire
// byte totals and the step counter. Fault and checkpoint counters stay
// cumulative across the whole wall-clock run — they track real events,
// including lost work.
func captureCounters(rec *obs.Recorder) map[string]float64 {
	m := map[string]float64{}
	if rec == nil {
		return m
	}
	for _, name := range rec.CounterNames("wire/") {
		m[name] = rec.Counter(name).Value()
	}
	m["train/steps"] = rec.Counter("train/steps").Value()
	return m
}

// saveCheckpoint is the SPMD save protocol, entered by every rank after
// completing `step` steps. Each rank deposits its private stream state
// (data RNG, compressor streams, CR accumulator, owned K-FAC caches) into
// its coordinator slot; one barrier orders every deposit before rank 0
// assembles, encodes and persists the checkpoint. The barrier moves no
// wire bytes, so the wire counters stay comparable to a checkpoint-free
// run.
func saveCheckpoint(w *cluster.Worker, cfg Config, coord *ckptCoord, task *modelzoo.ProxyTask,
	sgd *opt.SGD, optimizer *kfac.KFAC, comp compress.Compressor, layerComps map[int]compress.Compressor,
	dataSrc *rand.PCG, cr *crAccum, result *Result, mu *sync.Mutex, step int) error {

	rs := ckpt.RankState{CRSum: cr.sum, CRCount: cr.count}
	b, err := dataSrc.MarshalBinary()
	if err != nil {
		return fmt.Errorf("train: data RNG marshal: %w", err)
	}
	rs.DataRNG = b
	if comp != nil {
		rs.Comp, err = ckpt.CaptureCompressor(comp)
		if err != nil {
			return err
		}
	}
	if len(layerComps) > 0 {
		layers := make([]int, 0, len(layerComps))
		for li := range layerComps {
			layers = append(layers, li)
		}
		sort.Ints(layers)
		for _, li := range layers {
			cs, err := ckpt.CaptureCompressor(layerComps[li])
			if err != nil {
				return err
			}
			if cs != nil {
				rs.LayerComps = append(rs.LayerComps, ckpt.LayerComp{Layer: li, State: cs})
			}
		}
	}
	var caches []kfac.LayerCache
	if optimizer != nil {
		caches, err = optimizer.CaptureCaches(ownedLayers(optimizer.NumLayers(), w.Size(), w.Rank()))
		if err != nil {
			return err
		}
	}
	coord.ranks[w.Rank()] = rs
	coord.caches[w.Rank()] = caches
	// The first barrier orders every rank's deposit before rank 0's reads;
	// the second holds the other ranks until rank 0 has persisted the
	// restore point. Without it a rank could race into the next step's
	// first collective and crash there before the save landed, making the
	// rollback target (this checkpoint vs the previous one) depend on
	// goroutine scheduling.
	w.Barrier()
	err = nil
	if w.Rank() == 0 {
		err = persistRankZero(w, cfg, coord, task, sgd, optimizer, result, mu, step)
	}
	w.Barrier()
	return err
}

// persistRankZero assembles the cluster-wide checkpoint from the deposited
// per-rank state and hands it to the coordinator. Only rank 0 calls it,
// between saveCheckpoint's two barriers.
func persistRankZero(w *cluster.Worker, cfg Config, coord *ckptCoord, task *modelzoo.ProxyTask,
	sgd *opt.SGD, optimizer *kfac.KFAC, result *Result, mu *sync.Mutex, step int) error {

	ck := &ckpt.Checkpoint{
		Step: step, Seed: cfg.Seed, Workers: cfg.Workers, UseKFAC: cfg.UseKFAC,
		Method:     methodFingerprint(cfg),
		Controller: controllerFingerprint(cfg),
	}
	params := task.Model.Params()
	ck.Params = make([]ckpt.Param, len(params))
	for i, p := range params {
		ck.Params[i] = ckpt.Param{
			Name: p.Name, Rows: p.W.Rows, Cols: p.W.Cols,
			Data: append([]float64(nil), p.W.Data...),
		}
	}
	if sgd != nil {
		ck.SGDVel = sgd.CaptureVelocity(params)
	}
	if optimizer != nil {
		ck.KFAC = optimizer.CaptureState()
		for _, cs := range coord.caches {
			ck.KFACCaches = append(ck.KFACCaches, cs...)
		}
	}
	ck.Ranks = append([]ckpt.RankState(nil), coord.ranks...)
	mu.Lock()
	ck.Log = ckpt.Log{
		Iterations: append([]int(nil), result.Iterations...),
		Losses:     append([]float64(nil), result.Losses...),
		Accuracies: append([]float64(nil), result.Accuracies...),
		FinalLoss:  result.FinalLoss,
		FinalAcc:   result.FinalAcc,
	}
	mu.Unlock()
	ck.Counters = captureCounters(w.Recorder())
	return coord.persist(ck, w.Recorder())
}

// restoreWorker installs a checkpoint into this rank's freshly built
// replica: model parameters, optimizer state (with the rank's owned
// decomposition caches), compressor streams, data-RNG position and the
// CR accumulator. After it returns, the worker's state is bit-identical
// to what it was when the checkpoint was taken.
func restoreWorker(w *cluster.Worker, cfg Config, c *ckpt.Checkpoint, task *modelzoo.ProxyTask,
	sgd *opt.SGD, optimizer *kfac.KFAC, comp compress.Compressor, layerComps map[int]compress.Compressor,
	dataSrc *rand.PCG, cr *crAccum) error {

	params := task.Model.Params()
	if len(c.Params) != len(params) {
		return fmt.Errorf("train: checkpoint has %d parameters, model has %d", len(c.Params), len(params))
	}
	for i, p := range params {
		cp := c.Params[i]
		if cp.Name != p.Name || cp.Rows != p.W.Rows || cp.Cols != p.W.Cols {
			return fmt.Errorf("train: checkpoint parameter %d is %s[%dx%d], model has %s[%dx%d]",
				i, cp.Name, cp.Rows, cp.Cols, p.Name, p.W.Rows, p.W.Cols)
		}
		copy(p.W.Data, cp.Data)
	}
	if sgd != nil {
		if err := sgd.RestoreVelocity(params, c.SGDVel); err != nil {
			return err
		}
	}
	if optimizer != nil {
		if c.KFAC == nil {
			return fmt.Errorf("train: checkpoint carries no K-FAC state")
		}
		if err := optimizer.RestoreState(c.KFAC); err != nil {
			return err
		}
		owned := map[int]bool{}
		for _, li := range ownedLayers(optimizer.NumLayers(), w.Size(), w.Rank()) {
			owned[li] = true
		}
		var mine []kfac.LayerCache
		for _, lc := range c.KFACCaches {
			if owned[lc.Layer] {
				mine = append(mine, lc)
			}
		}
		if err := optimizer.RestoreCaches(mine); err != nil {
			return err
		}
	}
	rs := c.Ranks[w.Rank()]
	if comp != nil {
		if err := ckpt.RestoreCompressor(comp, rs.Comp); err != nil {
			return err
		}
	} else if rs.Comp != nil {
		return fmt.Errorf("train: checkpoint carries a compressor stream but the config has none")
	}
	for _, lc := range rs.LayerComps {
		live, ok := layerComps[lc.Layer]
		if !ok {
			return fmt.Errorf("train: checkpoint carries a stream for layer %d this rank does not own", lc.Layer)
		}
		if err := ckpt.RestoreCompressor(live, lc.State); err != nil {
			return err
		}
	}
	if rs.DataRNG == nil {
		return fmt.Errorf("train: checkpoint rank %d has no data RNG state", w.Rank())
	}
	if err := dataSrc.UnmarshalBinary(rs.DataRNG); err != nil {
		return fmt.Errorf("train: data RNG restore: %w", err)
	}
	cr.sum, cr.count = rs.CRSum, rs.CRCount
	return nil
}
