package train

import (
	"math"
	"math/rand/v2"
	"testing"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/opt"
)

func baseConfig(iters int) Config {
	return Config{
		BuildTask: func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyResNet(rng, 5) },
		Workers:   4,
		Platform:  cluster.Platform1(),
		Iters:     iters,
		Seed:      42,
		Schedule:  &opt.StepLR{BaseLR: 0.03, Drops: []int{iters / 2}, Gamma: 0.1},
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestSGDTrainingConverges(t *testing.T) {
	cfg := baseConfig(60)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) < 2 {
		t.Fatalf("only %d eval points", len(res.Losses))
	}
	if res.FinalLoss >= res.Losses[0] {
		t.Fatalf("loss did not drop: %v", res.Losses)
	}
	if res.CommSeconds["grad-allreduce"] <= 0 {
		t.Fatalf("no allreduce time recorded: %v", res.CommSeconds)
	}
}

func TestKFACTrainingConverges(t *testing.T) {
	cfg := baseConfig(60)
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Losses[0] {
		t.Fatalf("KFAC loss did not drop: %v", res.Losses)
	}
	if res.CommSeconds["kfac-allgather"] <= 0 || res.CommSeconds["kfac-allreduce"] <= 0 {
		t.Fatalf("missing KFAC comm categories: %v", res.CommSeconds)
	}
	// The step-level engine attributes the same time per algorithm.
	var algTotal float64
	for k, v := range res.AlgSeconds {
		if v < 0 {
			t.Fatalf("negative algorithm time %s=%g", k, v)
		}
		algTotal += v
	}
	if algTotal <= 0 {
		t.Fatalf("no per-algorithm attribution: %v", res.AlgSeconds)
	}
}

func TestKFACWithCOMPSOMatchesUncompressedAccuracy(t *testing.T) {
	// Figure 6's claim: KFAC+COMPSO converges like uncompressed KFAC.
	iters := 80
	plain := baseConfig(iters)
	plain.UseKFAC = true
	plain.KFAC = kfac.DefaultConfig()
	resPlain, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}

	comp := baseConfig(iters)
	comp.UseKFAC = true
	comp.KFAC = kfac.DefaultConfig()
	comp.NewCompressor = func(rank int) compress.Compressor {
		return compso.NewCompressor(nil, rank, 99)
	}
	comp.Controller = compso.DefaultController(comp.Schedule, iters)
	comp.AggregationM = 4
	resComp, err := Run(comp)
	if err != nil {
		t.Fatal(err)
	}

	if resComp.MeanCR < 5 {
		t.Fatalf("COMPSO mean CR %.1f too low", resComp.MeanCR)
	}
	// Accuracy within a few points of uncompressed.
	if resComp.FinalAcc < resPlain.FinalAcc-0.08 {
		t.Fatalf("COMPSO accuracy %.3f vs plain %.3f", resComp.FinalAcc, resPlain.FinalAcc)
	}
}

func TestReplicasStayInSyncWithCompression(t *testing.T) {
	// Every worker must decode identical bytes → identical updates. A
	// 1-worker vs 2-worker run can differ (different data), but a run must
	// be internally consistent: verify by running twice with the same seed
	// and comparing logs (divergent replicas would poison determinism).
	cfg := baseConfig(20)
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.NewCompressor = func(rank int) compress.Compressor {
		return compso.NewCompressor(nil, rank, 7)
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Losses) != len(b.Losses) {
		t.Fatal("eval counts differ")
	}
	for i := range a.Losses {
		if math.Abs(a.Losses[i]-b.Losses[i]) > 1e-12 {
			t.Fatalf("run not deterministic at eval %d: %g vs %g", i, a.Losses[i], b.Losses[i])
		}
	}
}

func TestSGDWithCocktailCompressor(t *testing.T) {
	cfg := baseConfig(40)
	cfg.NewCompressor = func(rank int) compress.Compressor {
		return compress.NewCocktailSGD(0.2, 8, int64(rank)+100)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanCR < 5 {
		t.Fatalf("CocktailSGD CR %.1f", res.MeanCR)
	}
	if res.FinalLoss >= res.Losses[0] {
		t.Fatalf("compressed SGD failed to learn: %v", res.Losses)
	}
}

func TestAggregationFactorsProduceSameResultShape(t *testing.T) {
	for _, m := range []int{1, 4, 16} {
		cfg := baseConfig(10)
		cfg.UseKFAC = true
		cfg.KFAC = kfac.DefaultConfig()
		cfg.AggregationM = m
		cfg.NewCompressor = func(rank int) compress.Compressor {
			return compso.NewCompressor(nil, rank, 55)
		}
		if _, err := Run(cfg); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
	}
}

func TestStatFreqAmortization(t *testing.T) {
	// Less frequent factor all-reduce must reduce kfac-allreduce time.
	run := func(freq int) float64 {
		cfg := baseConfig(20)
		cfg.UseKFAC = true
		cfg.KFAC = kfac.DefaultConfig()
		cfg.StatFreq = freq
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.CommSeconds["kfac-allreduce"]
	}
	if run(10) >= run(1) {
		t.Fatal("StatFreq=10 did not reduce factor all-reduce time")
	}
}

func TestOwnedLayersPartition(t *testing.T) {
	seen := map[int]int{}
	for rank := 0; rank < 4; rank++ {
		for _, l := range ownedLayers(10, 4, rank) {
			seen[l]++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("partition covered %d layers", len(seen))
	}
	for l, c := range seen {
		if c != 1 {
			t.Fatalf("layer %d owned %d times", l, c)
		}
	}
}

func TestCompressedFactorExchangeConverges(t *testing.T) {
	// Future-work extension: compressing the Kronecker-factor exchange
	// must not break convergence and must shrink the factor traffic.
	plain := baseConfig(40)
	plain.UseKFAC = true
	plain.KFAC = kfac.DefaultConfig()
	resPlain, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	comp := baseConfig(40)
	comp.UseKFAC = true
	comp.KFAC = kfac.DefaultConfig()
	comp.CompressFactors = true
	comp.FactorEB = 1e-3
	resComp, err := Run(comp)
	if err != nil {
		t.Fatal(err)
	}
	if resComp.FinalLoss > resPlain.FinalLoss*2+0.1 {
		t.Fatalf("factor compression broke convergence: %g vs %g", resComp.FinalLoss, resPlain.FinalLoss)
	}
	if resComp.FinalAcc < resPlain.FinalAcc-0.1 {
		t.Fatalf("factor compression accuracy %.3f vs %.3f", resComp.FinalAcc, resPlain.FinalAcc)
	}
}

func TestMoreWorkersThanLayers(t *testing.T) {
	// 8 workers, model has 4 KFAC layers: some workers own no layers and
	// must still participate in the collectives correctly.
	cfg := baseConfig(10)
	cfg.Workers = 8
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.NewCompressor = func(rank int) compress.Compressor {
		return compso.NewCompressor(nil, rank, 66)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) == 0 {
		t.Fatal("no evaluations recorded")
	}
}

func TestSingleWorker(t *testing.T) {
	cfg := baseConfig(15)
	cfg.Workers = 1
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Losses[0] {
		t.Fatalf("single-worker KFAC failed to learn: %v", res.Losses)
	}
}

func TestCompressedFactorsDeterministic(t *testing.T) {
	cfg := baseConfig(12)
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.CompressFactors = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Losses {
		if math.Abs(a.Losses[i]-b.Losses[i]) > 1e-12 {
			t.Fatal("factor-compressed run not deterministic")
		}
	}
}

func TestEvalCadence(t *testing.T) {
	cfg := baseConfig(30)
	cfg.EvalEvery = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 30}
	if len(res.Iterations) != len(want) {
		t.Fatalf("eval points %v", res.Iterations)
	}
	for i, w := range want {
		if res.Iterations[i] != w {
			t.Fatalf("eval points %v, want %v", res.Iterations, want)
		}
	}
}
