package train

import (
	"runtime"
	"testing"

	"compso/internal/compress"
	"compso/internal/kfac"
)

// refPipelineCOMPSO delegates to the preserved multi-pass reference pipeline
// (compress/reference.go), so a whole training run can be compared against
// the fused, pooled hot path.
type refPipelineCOMPSO struct{ c *compress.COMPSO }

func (r refPipelineCOMPSO) Name() string { return r.c.Name() }
func (r refPipelineCOMPSO) Compress(src []float32) ([]byte, error) {
	return r.c.ReferenceCompress(src)
}
func (r refPipelineCOMPSO) Decompress(data []byte) ([]float32, error) {
	return r.c.ReferenceDecompress(data)
}

// requireIdenticalResults asserts two runs produced bit-identical logs:
// losses, accuracies, mean compression ratio and the simulated-time
// accounting, with no tolerance.
func requireIdenticalResults(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Losses) != len(b.Losses) {
		t.Fatalf("eval counts differ: %d vs %d", len(a.Losses), len(b.Losses))
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("loss %d differs: %g vs %g", i, a.Losses[i], b.Losses[i])
		}
	}
	for i := range a.Accuracies {
		if a.Accuracies[i] != b.Accuracies[i] {
			t.Fatalf("accuracy %d differs: %g vs %g", i, a.Accuracies[i], b.Accuracies[i])
		}
	}
	if a.FinalLoss != b.FinalLoss || a.FinalAcc != b.FinalAcc {
		t.Fatalf("final metrics differ: %g/%g vs %g/%g", a.FinalLoss, a.FinalAcc, b.FinalLoss, b.FinalAcc)
	}
	if a.MeanCR != b.MeanCR {
		t.Fatalf("MeanCR differs: %g vs %g", a.MeanCR, b.MeanCR)
	}
	if len(a.CommSeconds) != len(b.CommSeconds) {
		t.Fatalf("CommSeconds keys differ: %v vs %v", a.CommSeconds, b.CommSeconds)
	}
	for k, v := range a.CommSeconds {
		if b.CommSeconds[k] != v {
			t.Fatalf("CommSeconds[%s] differs: %g vs %g", k, v, b.CommSeconds[k])
		}
	}
	if len(a.AlgSeconds) != len(b.AlgSeconds) {
		t.Fatalf("AlgSeconds keys differ: %v vs %v", a.AlgSeconds, b.AlgSeconds)
	}
	for k, v := range a.AlgSeconds {
		if b.AlgSeconds[k] != v {
			t.Fatalf("AlgSeconds[%s] differs: %g vs %g", k, v, b.AlgSeconds[k])
		}
	}
}

// runSerially executes a run with GOMAXPROCS pinned to 1, which degrades
// every pool.ParallelFor fan-out to an in-order loop on the calling
// goroutine — the serial execution the pre-parallel code performed.
func runSerially(t *testing.T, cfg Config) *Result {
	t.Helper()
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestKFACResultMatchesReferenceSerialPath is the end-to-end golden check of
// the fused/pooled/parallel rewrite: a K-FAC+COMPSO training run on the
// fused hot path (parallel decode, pooled buffers) must produce a
// bit-identical Result to the same seed run through the preserved multi-pass
// reference pipeline under a serial schedule — the exact pre-rewrite path.
func TestKFACResultMatchesReferenceSerialPath(t *testing.T) {
	base := baseConfig(20)
	base.UseKFAC = true
	base.KFAC = kfac.DefaultConfig()
	base.AggregationM = 2

	fused := base
	fused.NewCompressor = func(rank int) compress.Compressor {
		return compress.NewCOMPSO(int64(rank) + 7)
	}
	resFused, err := Run(fused)
	if err != nil {
		t.Fatal(err)
	}

	ref := base
	ref.NewCompressor = func(rank int) compress.Compressor {
		return refPipelineCOMPSO{c: compress.NewCOMPSO(int64(rank) + 7)}
	}
	resRef := runSerially(t, ref)
	requireIdenticalResults(t, resFused, resRef)
}

// TestSGDResultMatchesReferenceSerialPath covers the first-order gather
// path: parallel decode + per-rank CR accumulation vs the reference
// pipeline run serially.
func TestSGDResultMatchesReferenceSerialPath(t *testing.T) {
	base := baseConfig(20)

	fused := base
	fused.NewCompressor = func(rank int) compress.Compressor {
		return compress.NewCOMPSO(int64(rank) + 13)
	}
	resFused, err := Run(fused)
	if err != nil {
		t.Fatal(err)
	}

	ref := base
	ref.NewCompressor = func(rank int) compress.Compressor {
		return refPipelineCOMPSO{c: compress.NewCOMPSO(int64(rank) + 13)}
	}
	resRef := runSerially(t, ref)
	requireIdenticalResults(t, resFused, resRef)
}

// TestParallelScheduleMatchesSerial pins the schedule-independence claim on
// the remaining parallel surfaces: compressed factor exchange, the eigen
// fan-out with the version cache active (StatFreq > InvFreq makes most
// refreshes cache hits), and the uncompressed-payload pooled framing.
func TestParallelScheduleMatchesSerial(t *testing.T) {
	cfg := baseConfig(20)
	cfg.UseKFAC = true
	cfg.KFAC = kfac.DefaultConfig()
	cfg.KFAC.InvFreq = 5
	cfg.StatFreq = 10
	cfg.CompressFactors = true
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ser := runSerially(t, cfg)
	requireIdenticalResults(t, par, ser)
}
