package train

import (
	"reflect"
	"testing"

	"compso/internal/cluster"
	"compso/internal/des"
)

func TestBuildCommProgramKFAC(t *testing.T) {
	cfg := CommSimConfig{Model: "ResNet-50", Compressor: "compso", Steps: 6, KFAC: true, Seed: 5}
	prog, info, err := BuildCommProgram(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) == 0 || info.Ops != len(prog) {
		t.Fatalf("program length %d, info.Ops %d", len(prog), info.Ops)
	}
	if info.Ratio <= 1 {
		t.Fatalf("compso calibration ratio %v, want > 1", info.Ratio)
	}
	if info.BlobBytes <= 0 || info.BlobBytes >= 4*info.GradElems {
		t.Fatalf("blob %d bytes for %d-elem gradient", info.BlobBytes, info.GradElems)
	}
	cats := map[string]bool{}
	for _, op := range prog {
		cats[op.Category] = true
	}
	for _, want := range []string{"fwd-bwd", "grad-allreduce", "kfac-allreduce",
		"kfac-eigendecomp", "kfac-precondition", "compress", "kfac-allgather", "decompress"} {
		if !cats[want] {
			t.Errorf("program missing category %q", want)
		}
	}

	w := des.NewWorld(cluster.Platform1(), 16)
	defer w.Release()
	des.RunOnWorld(w, prog)
	if w.MaxTime() <= 0 || w.Collectives() == 0 {
		t.Fatalf("replay produced no results: time %v, %d collectives", w.MaxTime(), w.Collectives())
	}
}

func TestBuildCommProgramFirstOrderUncompressed(t *testing.T) {
	cfg := CommSimConfig{Model: "ResNet-50", Compressor: "none", Steps: 3}
	prog, info, err := BuildCommProgram(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ratio != 1 {
		t.Fatalf("uncompressed ratio %v, want 1", info.Ratio)
	}
	if info.BlobBytes != 4*info.GradElems {
		t.Fatalf("uncompressed blob %d, want %d", info.BlobBytes, 4*info.GradElems)
	}
	for _, op := range prog {
		if op.Kind == des.KindCompute && (op.Category == "compress" || op.Category == "decompress") && op.Seconds != 0 {
			t.Fatalf("uncompressed program charges %q time %v", op.Category, op.Seconds)
		}
		if op.Category == "grad-allreduce" || op.Category == "kfac-allgather" {
			t.Fatalf("first-order program has K-FAC op %q", op.Category)
		}
	}
}

func TestBuildCommProgramDeterministic(t *testing.T) {
	cfg := CommSimConfig{Model: "BERT-large", Compressor: "compso", Steps: 4, KFAC: true, Seed: 9}
	a, ai, err := BuildCommProgram(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, bi, err := BuildCommProgram(cfg, 32)
	if err != nil {
		t.Fatal(err)
	}
	if ai != bi {
		t.Fatalf("calibration differs across builds: %+v vs %+v", ai, bi)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("program differs across builds with identical config")
	}
}

func TestBuildCommProgramElemScale(t *testing.T) {
	base := CommSimConfig{Model: "ResNet-50", Compressor: "compso", Steps: 2, KFAC: true, Seed: 5}
	scaledCfg := base
	scaledCfg.ElemScale = 1.0 / 64
	full, _, err := BuildCommProgram(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	small, _, err := BuildCommProgram(scaledCfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(small) {
		t.Fatalf("scaled program has %d ops, full %d — shapes must match", len(small), len(full))
	}
	for i := range full {
		if full[i].Kind != small[i].Kind || full[i].Category != small[i].Category {
			t.Fatalf("op %d shape differs: %+v vs %+v", i, full[i], small[i])
		}
		if full[i].Kind == des.KindAllReduce && small[i].Elems >= full[i].Elems {
			t.Fatalf("op %d: scaled elems %d not smaller than full %d", i, small[i].Elems, full[i].Elems)
		}
	}
}

func TestBuildCommProgramUnknownInputs(t *testing.T) {
	if _, _, err := BuildCommProgram(CommSimConfig{Model: "no-such-model"}, 8); err == nil {
		t.Fatal("unknown model should error")
	}
	if _, _, err := BuildCommProgram(CommSimConfig{Compressor: "no-such-comp"}, 8); err == nil {
		t.Fatal("unknown compressor should error")
	}
}
