package train

import "compso/internal/nn"

// Tensor-fusion bucketing for the overlap scheduler: consecutive parameter
// tensors pack into buckets whose FP32 wire size stays at or below the
// configured fusion threshold (~25 MB by default, ACP-SGD's policy), so
// the gradient all-reduce becomes a short pipeline of fused collectives
// instead of one monolithic exchange. Tensors are never split across
// buckets, and buckets keep the flatten order of the sequential path — so
// the element-wise rank-order sums inside each bucket are exactly the sums
// the whole-model all-reduce computes, which is what keeps the overlap
// path bit-identical (DESIGN.md §8).

// bucket is one fused range: tensors [start, end) of the parameter list,
// elems float64 gradient values in total.
type bucket struct {
	start, end int
	elems      int
}

// fuseBuckets greedily packs consecutive tensor sizes into buckets of at
// most limitBytes on the wire (4 bytes per element, FP32). A tensor larger
// than the limit gets its own bucket.
func fuseBuckets(sizes []int, limitBytes int) []bucket {
	limitElems := limitBytes / 4
	if limitElems < 1 {
		limitElems = 1
	}
	var out []bucket
	cur := bucket{}
	for i, n := range sizes {
		if cur.end > cur.start && cur.elems+n > limitElems {
			out = append(out, cur)
			cur = bucket{start: i}
		}
		cur.end = i + 1
		cur.elems += n
	}
	if cur.end > cur.start {
		out = append(out, cur)
	}
	return out
}

// gradSizes returns each parameter tensor's gradient element count.
func gradSizes(params []*nn.Param) []int {
	sizes := make([]int, len(params))
	for i, p := range params {
		sizes[i] = len(p.Grad.Data)
	}
	return sizes
}
