package train

import (
	"fmt"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/fault"
	"compso/internal/obs"
)

// This file is the training loop's graceful-degradation layer over the
// fault-injection subsystem (internal/fault): in-flight corruption of
// gathered blobs, the bounded-retry + lossless-fallback recovery
// protocol, and the straggler-aware collective guard that re-tunes the
// engine when the fabric's measured behaviour diverges from the model.
//
// The recovery protocol is SPMD throughout. Corruption verdicts are pure
// hashes of (plan seed, step, sender, attempt), so every rank — including
// the sender receiving its own contribution — observes the same bytes and
// takes the same control-flow path. Retries and fallbacks are therefore
// ordinary collectives (broadcasts from the afflicted sender) that every
// rank enters in lockstep, exactly as a collective-based training system
// would re-issue them; mismatched paths would deadlock, as on a real
// cluster.

// faultCtx carries per-worker fault state through one training run. A nil
// *faultCtx (faults disabled) keeps every hot path on the exact pre-fault
// behaviour.
type faultCtx struct {
	inj     *fault.Injector
	retries int
	guard   fault.Guard
	w       *cluster.Worker
	tel     *tele

	// Guard state (rank 0 drives the shared engine's retunes).
	streak             int
	lastMeas, lastPred float64
}

// newFaultCtx builds the worker's fault context; nil when the config has
// no fault plan.
func newFaultCtx(w *cluster.Worker, cfg Config, tel *tele) *faultCtx {
	if cfg.Fault == nil {
		return nil
	}
	return &faultCtx{
		inj:     w.Faults(),
		retries: cfg.Fault.Retries(),
		guard:   cfg.Fault.Guard,
		w:       w,
		tel:     tel,
	}
}

// deliver applies the in-flight corruption model to a sender's blob for
// the given delivery attempt, counting corrupted deliveries.
func (fc *faultCtx) deliver(blob []byte, it, sender, attempt int) []byte {
	out, hit := fc.inj.CorruptBlob(blob, it, sender, attempt)
	if hit {
		fc.tel.faultEvent("corrupted", "fault/corrupted_blobs")
	}
	return out
}

// decodeGathered decodes one sender's gathered gradient blob. Without
// faults it is a plain decompress + length check. With faults the blob
// passes through the corruption model first; a decode failure triggers up
// to fc.retries re-broadcasts of the sender's compressed blob (each with a
// fresh corruption draw), then a lossless FP32 re-broadcast as the final
// fallback for this layer-step — the compressed path degrades, the run
// survives.
func decodeGathered(fc *faultCtx, w *cluster.Worker, tel *tele, comp compress.Compressor,
	it, sender int, part, ownBlob []byte, ownRaw []float32, wantLen int, category string) ([]float32, error) {

	decode := func(blob []byte) ([]float32, error) {
		vals, err := comp.Decompress(blob)
		if err != nil {
			return nil, err
		}
		tel.decompress(len(vals), len(blob), category)
		if len(vals) != wantLen {
			return nil, fmt.Errorf("%w: train: gathered %d values from rank %d, want %d",
				compress.ErrCorrupt, len(vals), sender, wantLen)
		}
		return vals, nil
	}
	if fc == nil {
		return decode(part)
	}
	vals, err := decode(fc.deliver(part, it, sender, 0))
	for attempt := 1; err != nil && attempt <= fc.retries; attempt++ {
		fc.tel.faultRetry(it, sender)
		var payload []byte
		if w.Rank() == sender {
			payload = ownBlob
		}
		re := w.Broadcast(payload, sender, category+"-retry")
		vals, err = decode(fc.deliver(re, it, sender, attempt))
	}
	if err == nil {
		return vals, nil
	}
	// Retries exhausted: the sender re-broadcasts raw FP32 (lossless).
	fc.tel.faultFallback(it, sender)
	var payload []byte
	if w.Rank() == sender {
		payload = f32ToBytes(ownRaw)
	}
	raw := w.Broadcast(payload, sender, category+"-fallback")
	vals = bytesToF32(raw)
	if len(vals) != wantLen {
		return nil, fmt.Errorf("train: lossless fallback from rank %d has %d values, want %d",
			sender, len(vals), wantLen)
	}
	return vals, nil
}

// installPart decodes one sender's framed K-FAC all-gather payload and
// installs its preconditioned gradients, with the same corrupt → retry →
// lossless-fallback ladder as decodeGathered applied to the whole frame.
func installPart(fc *faultCtx, w *cluster.Worker, cfg Config, tel *tele, st *kfacState,
	comp compress.Compressor, it, sender int, part, ownPayload, ownRaw []byte) error {

	lossless := comp == nil && !st.perLayer
	parse := func(p []byte, fallback bool) error {
		if fallback {
			return st.parsePart(w, cfg, tel, nil, sender, p, true)
		}
		return st.parsePart(w, cfg, tel, comp, sender, p, lossless)
	}
	return installFramed(fc, w, it, sender, part, ownPayload, ownRaw, parse)
}

// installFramed runs the corrupt → retry → lossless-fallback ladder over
// one sender's framed payload: parse decodes and installs it (fallback
// selects raw-FP32 frame decoding of the sender's lossless mirror). With
// faults disabled it is a plain parse. ownPayload/ownRaw are this rank's
// sender-side material for the recovery broadcasts — both must be fresh
// allocations, never arena buffers, because broadcast payloads are
// retained by other workers' goroutines. Both the sequential whole-payload
// install and the overlap scheduler's per-round installs share this
// ladder.
func installFramed(fc *faultCtx, w *cluster.Worker, it, sender int,
	part, ownPayload, ownRaw []byte, parse func(p []byte, fallback bool) error) error {

	if fc == nil {
		return parse(part, false)
	}
	err := parse(fc.deliver(part, it, sender, 0), false)
	for attempt := 1; err != nil && attempt <= fc.retries; attempt++ {
		fc.tel.faultRetry(it, sender)
		var payload []byte
		if w.Rank() == sender {
			payload = ownPayload
		}
		re := w.Broadcast(payload, sender, "kfac-allgather-retry")
		err = parse(fc.deliver(re, it, sender, attempt), false)
	}
	if err == nil {
		return nil
	}
	fc.tel.faultFallback(it, sender)
	var payload []byte
	if w.Rank() == sender {
		payload = ownRaw
	}
	raw := w.Broadcast(payload, sender, "kfac-allgather-fallback")
	if err := parse(raw, true); err != nil {
		return fmt.Errorf("train: lossless fallback from rank %d: %w", sender, err)
	}
	return nil
}

// guardStep is the straggler-aware collective guard: rank 0 compares each
// step's executed-schedule seconds against the engine's fault-free
// prediction for the same collectives; when the ratio exceeds Guard.Ratio
// for Guard.Patience consecutive steps, it resets the autotuner's measured
// state so algorithm picks re-learn under the current (degraded) fabric.
func (fc *faultCtx) guardStep(it int) {
	if fc == nil || fc.guard.Ratio <= 0 || fc.w.Rank() != 0 {
		return
	}
	meas, pred := fc.w.ScheduleSeconds()
	dm, dp := meas-fc.lastMeas, pred-fc.lastPred
	fc.lastMeas, fc.lastPred = meas, pred
	if dp <= 0 || dm <= fc.guard.Ratio*dp {
		fc.streak = 0
		return
	}
	fc.streak++
	if fc.streak < fc.guard.PatienceOrDefault() {
		return
	}
	fc.streak = 0
	fc.w.Engine().Retune()
	fc.tel.faultRetune(it, dm/dp)
}

// Fault telemetry: logical fault events happen identically on every rank
// (the SPMD lockstep), so rank 0 counts them once — into the local
// tally surfaced as Result.FaultEvents and, when observability is on,
// into obs counters and control-category instants.

// faultEvent bumps a named fault tally + counter on rank 0.
func (t *tele) faultEvent(key, counter string) {
	if t.w.Rank() != 0 {
		return
	}
	if t.faults == nil {
		t.faults = make(map[string]int64)
	}
	t.faults[key]++
	if t.rec != nil {
		t.rec.Counter(counter).Inc()
	}
}

// faultRetry records one decode-retry round for a sender's blob.
func (t *tele) faultRetry(it, sender int) {
	t.faultEvent("retries", "fault/decode_retries")
	if t.rec == nil || t.w.Rank() != 0 {
		return
	}
	a := obs.NoAttrs
	a.Step = it
	a.Peer = sender
	a.Label = "decode-retry"
	t.rec.Instant(t.step, t.w.Rank(), obs.CatControl, "decode-retry", t.w.Time(), a)
}

// faultFallback records a lossless fallback for a sender's layer-step: a
// counter plus a strategy-switch instant (the per-layer-step strategy
// changed from compressed to lossless).
func (t *tele) faultFallback(it, sender int) {
	t.faultEvent("fallbacks", "fault/decode_fallbacks")
	if t.rec == nil || t.w.Rank() != 0 {
		return
	}
	a := obs.NoAttrs
	a.Step = it
	a.Peer = sender
	a.Label = "lossless-fallback"
	t.rec.Instant(t.step, t.w.Rank(), obs.CatControl, "strategy-switch", t.w.Time(), a)
}

// faultRetune records a guard-triggered autotuner reset.
func (t *tele) faultRetune(it int, ratio float64) {
	t.faultEvent("retunes", "fault/retunes")
	if t.rec == nil || t.w.Rank() != 0 {
		return
	}
	a := obs.NoAttrs
	a.Step = it
	a.Value = ratio
	a.Label = "collective-retune"
	t.rec.Instant(t.step, t.w.Rank(), obs.CatControl, "collective-retune", t.w.Time(), a)
}
