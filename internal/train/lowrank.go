package train

import (
	"fmt"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/gpusim"
	"compso/internal/nn"
	"compso/internal/pool"
)

// This file is the low-rank aggregation path: when the configured
// compressor is AllReducible (PowerSGD, optionally EF-wrapped), the
// gradient exchange is ACP-SGD's alternating factor ring all-reduce on the
// collective engine instead of the blob all-gather — the factors aggregate
// as a sum, so the engine's ring/reduce-scatter schedules apply directly
// and the wire volume drops from world·blob to one factor.

// compressorPipe returns the kernel pipeline modeling a compressor's
// compression cost: the low-rank family charges its GEMM-shaped pipeline,
// everything else the default fused COMPSO kernel.
func compressorPipe(c compress.Compressor) gpusim.Pipeline {
	inner := c
	if ef, ok := c.(*compress.ErrorFeedback); ok {
		inner = ef.Inner
	}
	if _, ok := inner.(*compress.PowerSGD); ok {
		return gpusim.PowerSGDGEMM()
	}
	return gpusim.COMPSOFused()
}

// ringCompressor unwraps an (optionally error-feedback-wrapped)
// sum-aggregable compressor. An EF wrapper around a non-AllReducible inner
// returns (nil, nil): the stack falls back to the all-gather path.
func ringCompressor(comp compress.Compressor) (compress.AllReducible, *compress.ErrorFeedback) {
	if ef, ok := comp.(*compress.ErrorFeedback); ok {
		if ar, ok := ef.Inner.(compress.AllReducible); ok {
			return ar, ef
		}
		return nil, nil
	}
	ar, _ := comp.(compress.AllReducible)
	return ar, nil
}

// lowrankSync runs one alternating-factor gradient synchronization: local
// projection onto this step's factor, ring all-reduce of the factor sum,
// and the shared reconstruction + factor-state advance on every worker.
// The restored gradient is already the world average. EF correction and
// residual update bracket the exchange when ef is non-nil; the residual is
// taken against the aggregated reconstruction, matching the PowerSGD EF
// formulation.
func lowrankSync(w *cluster.Worker, model *nn.Sequential, ar compress.AllReducible,
	ef *compress.ErrorFeedback, tel *tele, cr *crAccum, category string) error {
	params := model.Params()
	total := 0
	for _, p := range params {
		total += len(p.Grad.Data)
	}
	flat := pool.F32(total)
	defer pool.PutF32(flat)
	pos := 0
	for _, p := range params {
		for _, v := range p.Grad.Data {
			flat[pos] = float32(v)
			pos++
		}
	}
	src := flat
	if ef != nil {
		corrected, err := ef.Corrected(flat)
		if err != nil {
			return err
		}
		src = corrected
	}
	vec, err := ar.ReduceFactor(src)
	if err != nil {
		return err
	}
	// The collective charges FP32 wire bytes for float64 payloads, so the
	// factor costs 4·len(vec) on the wire — that is the compressed size
	// for CR accounting and span attribution.
	wire := 4 * len(vec)
	tel.compressWith(gpusim.PowerSGDGEMM(), total, wire, category)
	recordCR(total, wire, cr)
	w.AllReduce(vec, category)
	restored, err := ar.InstallReduced(vec, w.Size())
	if err != nil {
		return err
	}
	tel.decompressWith(gpusim.PowerSGDGEMM(), total, wire, category)
	if len(restored) != total {
		return fmt.Errorf("%w: train: low-rank restore %d values, want %d",
			compress.ErrCorrupt, len(restored), total)
	}
	if ef != nil {
		if err := ef.Observe(src, restored); err != nil {
			return err
		}
	}
	pos = 0
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = float64(restored[pos])
			pos++
		}
	}
	return nil
}
