package encoding

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// fastPathInputs covers empty, tiny, runny, and entropy-heavy streams.
func fastPathInputs() [][]byte {
	rng := rand.New(rand.NewPCG(17, 29))
	random := make([]byte, 8192)
	for i := range random {
		random[i] = byte(rng.IntN(7)) // few distinct symbols, like a byte plane
	}
	runny := make([]byte, 8192)
	for i := range runny {
		runny[i] = byte(i / 512)
	}
	return [][]byte{
		nil,
		{},
		{0},
		{1, 2, 3, 4, 5},
		bytes.Repeat([]byte{0xAB}, 1000),
		random,
		runny,
	}
}

// TestEncodeAppendMatchesEncode proves the pooled append paths emit exactly
// the bytes the allocating Encode paths do, for every registry codec (the
// helper falls back to Encode for codecs without a fast path, so the whole
// registry can be asserted uniformly).
func TestEncodeAppendMatchesEncode(t *testing.T) {
	prefix := []byte{0xDE, 0xAD}
	for _, c := range All() {
		for i, src := range fastPathInputs() {
			want := c.Encode(src)
			got := EncodeAppend(c, append([]byte{}, prefix...), src)
			if !bytes.Equal(got[:2], prefix) {
				t.Fatalf("%s input %d: prefix clobbered", c.Name(), i)
			}
			if !bytes.Equal(got[2:], want) {
				t.Fatalf("%s input %d: EncodeAppend differs from Encode", c.Name(), i)
			}
		}
	}
}

// TestDecodeIntoMatchesDecode proves DecodeInto round-trips into both
// undersized and oversized scratch, aliasing the scratch when it fits.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	for _, c := range All() {
		for i, src := range fastPathInputs() {
			enc := c.Encode(src)
			want, err := c.Decode(enc)
			if err != nil {
				t.Fatalf("%s input %d: Decode: %v", c.Name(), i, err)
			}
			// Undersized scratch: must still decode correctly.
			got, err := DecodeInto(c, make([]byte, 0, 1), enc)
			if err != nil {
				t.Fatalf("%s input %d: DecodeInto(small): %v", c.Name(), i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s input %d: DecodeInto(small) mismatch", c.Name(), i)
			}
			// Oversized scratch: correct bytes, and fast-path codecs must
			// alias the scratch storage.
			scratch := make([]byte, 0, len(src)+64)
			got, err = DecodeInto(c, scratch, enc)
			if err != nil {
				t.Fatalf("%s input %d: DecodeInto(big): %v", c.Name(), i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s input %d: DecodeInto(big) mismatch", c.Name(), i)
			}
			if _, ok := c.(IntoDecoder); ok && len(src) > 0 && len(got) > 0 {
				if &got[0] != &scratch[:1][0] {
					t.Fatalf("%s input %d: DecodeInto did not reuse scratch", c.Name(), i)
				}
			}
		}
	}
}
