package encoding

// rANS (range asymmetric numeral system) entropy coder, the stand-in for
// nvCOMP's ANS codec. Order-0 byte model with a 12-bit normalized frequency
// table, 32-bit state and byte-wise renormalization — the construction of
// Duda's rANS as popularized by ryg_rans and the massively parallel GPU ANS
// decoder the paper cites [54]. ANS is the encoder COMPSO ends up selecting
// for both CNN and transformer gradient streams because it pairs a high
// compression ratio (entropy coding exploits the non-uniform quantized
// gradient distribution) with the highest throughput of the entropy coders.

const (
	ansProbBits  = 12
	ansProbScale = 1 << ansProbBits // 4096
	ansLowBound  = 1 << 23          // renormalization lower bound
)

// ANS is the rANS codec. The zero value is ready to use.
type ANS struct{}

// Name implements Codec.
func (ANS) Name() string { return "ANS" }

// Encode implements Codec.
func (ANS) Encode(src []byte) []byte {
	out := putUvarint(nil, uint64(len(src)))
	if len(src) == 0 {
		return out
	}

	freq := normalizedFreqs(src)

	// Cumulative table.
	var cum [257]uint32
	for s := 0; s < 256; s++ {
		cum[s+1] = cum[s] + freq[s]
	}

	// Serialize the frequency table as (distinct count, then symbol+freq
	// pairs); gradient streams use few distinct symbols so this is compact.
	distinct := 0
	for _, f := range freq {
		if f > 0 {
			distinct++
		}
	}
	out = putUvarint(out, uint64(distinct))
	for s, f := range freq {
		if f > 0 {
			out = append(out, byte(s))
			out = putUvarint(out, uint64(f))
		}
	}

	// rANS encodes in reverse so the decoder emits in forward order.
	body := make([]byte, 0, len(src)/2+16)
	x := uint32(ansLowBound)
	for i := len(src) - 1; i >= 0; i-- {
		s := src[i]
		f := freq[s]
		// Renormalize: flush low bytes while the state is too large to
		// absorb the symbol.
		xMax := ((ansLowBound >> ansProbBits) << 8) * f
		for x >= xMax {
			body = append(body, byte(x))
			x >>= 8
		}
		x = (x/f)<<ansProbBits + (x % f) + cum[s]
	}
	// Final state, little-endian.
	out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	// Body bytes were pushed in reverse stream order; append them reversed
	// so the decoder reads forward.
	for i := len(body) - 1; i >= 0; i-- {
		out = append(out, body[i])
	}
	return out
}

// Decode implements Codec.
func (ANS) Decode(src []byte) ([]byte, error) {
	n, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	if n == 0 {
		return []byte{}, nil
	}
	if n > 1<<33 {
		return nil, corruptf("ANS: implausible length %d", n)
	}

	distinct, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	if distinct == 0 || distinct > 256 {
		return nil, corruptf("ANS: distinct symbol count %d", distinct)
	}
	var freq [256]uint32
	var total uint32
	for i := uint64(0); i < distinct; i++ {
		if len(src) < 1 {
			return nil, corruptf("ANS: truncated frequency table")
		}
		sym := src[0]
		src = src[1:]
		f, consumed, err := getUvarint(src)
		if err != nil {
			return nil, err
		}
		src = src[consumed:]
		if f == 0 || f > ansProbScale {
			return nil, corruptf("ANS: frequency %d for symbol %d", f, sym)
		}
		if freq[sym] != 0 {
			return nil, corruptf("ANS: duplicate symbol %d", sym)
		}
		freq[sym] = uint32(f)
		total += uint32(f)
	}
	if total != ansProbScale {
		return nil, corruptf("ANS: frequencies sum to %d, want %d", total, ansProbScale)
	}

	var cum [257]uint32
	for s := 0; s < 256; s++ {
		cum[s+1] = cum[s] + freq[s]
	}
	// slot → symbol lookup table.
	var slotSym [ansProbScale]byte
	for s := 0; s < 256; s++ {
		for slot := cum[s]; slot < cum[s+1]; slot++ {
			slotSym[slot] = byte(s)
		}
	}

	if len(src) < 4 {
		return nil, corruptf("ANS: truncated state")
	}
	x := uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24
	src = src[4:]
	if x < ansLowBound {
		return nil, corruptf("ANS: invalid initial state %d", x)
	}

	dst := make([]byte, n)
	pos := 0
	for i := uint64(0); i < n; i++ {
		slot := x & (ansProbScale - 1)
		s := slotSym[slot]
		dst[i] = s
		x = freq[s]*(x>>ansProbBits) + slot - cum[s]
		for x < ansLowBound {
			if pos >= len(src) {
				return nil, corruptf("ANS: truncated body at symbol %d", i)
			}
			x = x<<8 | uint32(src[pos])
			pos++
		}
	}
	return dst, nil
}

// normalizedFreqs counts byte frequencies in src and normalizes them so
// that they sum exactly to ansProbScale with every present symbol >= 1.
func normalizedFreqs(src []byte) [256]uint32 {
	var counts [256]int
	for _, b := range src {
		counts[b]++
	}
	var freq [256]uint32
	total := len(src)
	assigned := uint32(0)
	maxSym, maxF := 0, uint32(0)
	for s, c := range counts {
		if c == 0 {
			continue
		}
		f := uint32(uint64(c) * ansProbScale / uint64(total))
		if f == 0 {
			f = 1
		}
		freq[s] = f
		assigned += f
		if f > maxF {
			maxF, maxSym = f, s
		}
	}
	// Fix rounding drift on the most frequent symbol. If the drift exceeds
	// its frequency (pathological), walk the table redistributing.
	diff := int64(ansProbScale) - int64(assigned)
	if int64(freq[maxSym])+diff >= 1 {
		freq[maxSym] = uint32(int64(freq[maxSym]) + diff)
	} else {
		// Rare path: shave from every symbol > 1 until the sum matches.
		freq[maxSym] = 1
		diff += int64(maxF) - 1
		for s := 0; diff < 0 && s < 256; s++ {
			for freq[s] > 1 && diff < 0 {
				freq[s]--
				diff++
			}
		}
	}
	return freq
}
