package encoding

import (
	"math/bits"

	"compso/internal/pool"
)

// rANS (range asymmetric numeral system) entropy coder, the stand-in for
// nvCOMP's ANS codec. Order-0 byte model with a 12-bit normalized frequency
// table, 32-bit state and byte-wise renormalization — the construction of
// Duda's rANS as popularized by ryg_rans and the massively parallel GPU ANS
// decoder the paper cites [54]. ANS is the encoder COMPSO ends up selecting
// for both CNN and transformer gradient streams because it pairs a high
// compression ratio (entropy coding exploits the non-uniform quantized
// gradient distribution) with the highest throughput of the entropy coders.

const (
	ansProbBits  = 12
	ansProbScale = 1 << ansProbBits // 4096
	ansLowBound  = 1 << 23          // renormalization lower bound
)

// ANS is the rANS codec. The zero value is ready to use.
type ANS struct{}

// Name implements Codec.
func (ANS) Name() string { return "ANS" }

// Encode implements Codec.
func (a ANS) Encode(src []byte) []byte {
	return a.EncodeAppend(make([]byte, 0, len(src)/2+24), src)
}

// EncodeAppend implements AppendEncoder. The reversed body scratch comes
// from the buffer arena and the reversal itself is a single in-place
// slices.Reverse plus a bulk append, so steady-state encodes touch the
// allocator only when dst must grow.
func (ANS) EncodeAppend(dst, src []byte) []byte {
	out := putUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return out
	}

	freq := normalizedFreqs(src)

	// Cumulative table.
	var cum [257]uint32
	for s := 0; s < 256; s++ {
		cum[s+1] = cum[s] + freq[s]
	}

	// Serialize the frequency table as (distinct count, then symbol+freq
	// pairs); gradient streams use few distinct symbols so this is compact.
	distinct := 0
	for _, f := range freq {
		if f > 0 {
			distinct++
		}
	}
	out = putUvarint(out, uint64(distinct))
	for s, f := range freq {
		if f > 0 {
			out = append(out, byte(s))
			out = putUvarint(out, uint64(f))
		}
	}

	// Per-symbol reciprocals so the hot loop's x/f and x%f become one
	// widening multiply: m = 2^44/f + 1 gives exact floor division for all
	// f <= ansProbScale and x < 2^31 (Granlund-Montgomery; the states here
	// stay below xMax <= 2^19 * f <= 2^31), which TestANSReciprocalExact
	// verifies exhaustively.
	var rcp [256]uint64
	for s, f := range freq {
		if f > 0 {
			rcp[s] = (1<<44)/uint64(f) + 1
		}
	}

	// rANS encodes in reverse so the decoder emits in forward order. Body
	// bytes are written back-to-front into a pooled buffer sized for the
	// worst case (each symbol flushes at most 2 bytes: the state stays below
	// 2^31 and renormalizes down past 2^15 < xMax), so they land already in
	// stream order with no per-byte append or reversal pass.
	body := pool.Bytes(2*len(src) + 8)
	idx := len(body)
	x := uint32(ansLowBound)
	for i := len(src) - 1; i >= 0; i-- {
		s := src[i]
		f := freq[s]
		// Renormalize: flush low bytes while the state is too large to
		// absorb the symbol (xMax = ((ansLowBound>>ansProbBits)<<8) * f).
		xMax := f << 19
		for x >= xMax {
			idx--
			body[idx] = byte(x)
			x >>= 8
		}
		hi, lo := bits.Mul64(uint64(x), rcp[s])
		q := uint32(hi<<20 | lo>>44) // x / f
		x = q<<ansProbBits + (x - q*f) + cum[s]
	}
	// Final state, little-endian.
	out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	out = append(out, body[idx:]...)
	pool.PutBytes(body)
	return out
}

// Decode implements Codec.
func (a ANS) Decode(src []byte) ([]byte, error) {
	return a.DecodeInto(nil, src)
}

// DecodeInto implements IntoDecoder.
func (ANS) DecodeInto(scratch, src []byte) ([]byte, error) {
	n, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	if n == 0 {
		return []byte{}, nil
	}
	if n > 1<<33 {
		return nil, corruptf("ANS: implausible length %d", n)
	}

	distinct, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	if distinct == 0 || distinct > 256 {
		return nil, corruptf("ANS: distinct symbol count %d", distinct)
	}
	var freq [256]uint32
	var total uint32
	for i := uint64(0); i < distinct; i++ {
		if len(src) < 1 {
			return nil, corruptf("ANS: truncated frequency table")
		}
		sym := src[0]
		src = src[1:]
		f, consumed, err := getUvarint(src)
		if err != nil {
			return nil, err
		}
		src = src[consumed:]
		if f == 0 || f > ansProbScale {
			return nil, corruptf("ANS: frequency %d for symbol %d", f, sym)
		}
		if freq[sym] != 0 {
			return nil, corruptf("ANS: duplicate symbol %d", sym)
		}
		freq[sym] = uint32(f)
		total += uint32(f)
	}
	if total != ansProbScale {
		return nil, corruptf("ANS: frequencies sum to %d, want %d", total, ansProbScale)
	}

	// slot → (symbol, start, freq-1) fused into one word — one dependent
	// load per decoded symbol instead of the symbol/freq/cum lookup chain.
	var cum uint32
	var tab [ansProbScale]uint32
	for s := 0; s < 256; s++ {
		f := freq[s]
		if f == 0 {
			continue
		}
		e := uint32(s) | cum<<8 | (f-1)<<20
		for slot := cum; slot < cum+f; slot++ {
			tab[slot] = e
		}
		cum += f
	}

	if len(src) < 4 {
		return nil, corruptf("ANS: truncated state")
	}
	x := uint32(src[0]) | uint32(src[1])<<8 | uint32(src[2])<<16 | uint32(src[3])<<24
	src = src[4:]
	if x < ansLowBound {
		return nil, corruptf("ANS: invalid initial state %d", x)
	}

	var dst []byte
	if uint64(cap(scratch)) >= n {
		dst = scratch[:n]
	} else {
		dst = make([]byte, n)
	}
	pos := 0
	for i := range dst {
		slot := x & (ansProbScale - 1)
		e := tab[slot]
		dst[i] = byte(e)
		x = (e>>20+1)*(x>>ansProbBits) + slot - (e>>8)&0xfff
		// Renormalize: a state below 2^15 needs two bytes, never three (the
		// symbol update leaves x >= 2^11).
		if x < ansLowBound {
			if x < 1<<15 && pos+1 < len(src) {
				x = x<<16 | uint32(src[pos])<<8 | uint32(src[pos+1])
				pos += 2
			} else if pos < len(src) {
				x = x<<8 | uint32(src[pos])
				pos++
				if x < ansLowBound {
					if pos >= len(src) {
						return nil, corruptf("ANS: truncated body at symbol %d", i)
					}
					x = x<<8 | uint32(src[pos])
					pos++
				}
			} else {
				return nil, corruptf("ANS: truncated body at symbol %d", i)
			}
		}
	}
	return dst, nil
}

// normalizedFreqs counts byte frequencies in src and normalizes them so
// that they sum exactly to ansProbScale with every present symbol >= 1.
func normalizedFreqs(src []byte) [256]uint32 {
	var counts [256]int
	for _, b := range src {
		counts[b]++
	}
	var freq [256]uint32
	total := len(src)
	assigned := uint32(0)
	maxSym, maxF := 0, uint32(0)
	for s, c := range counts {
		if c == 0 {
			continue
		}
		f := uint32(uint64(c) * ansProbScale / uint64(total))
		if f == 0 {
			f = 1
		}
		freq[s] = f
		assigned += f
		if f > maxF {
			maxF, maxSym = f, s
		}
	}
	// Fix rounding drift on the most frequent symbol. If the drift exceeds
	// its frequency (pathological), walk the table redistributing.
	diff := int64(ansProbScale) - int64(assigned)
	if int64(freq[maxSym])+diff >= 1 {
		freq[maxSym] = uint32(int64(freq[maxSym]) + diff)
	} else {
		// Rare path: shave from every symbol > 1 until the sum matches.
		freq[maxSym] = 1
		diff += int64(maxF) - 1
		for s := 0; diff < 0 && s < 256; s++ {
			for freq[s] > 1 && diff < 0 {
				freq[s]--
				diff++
			}
		}
	}
	return freq
}
