package encoding

import (
	"compso/internal/bitstream"
	"compso/internal/pool"
)

// Cascaded is the stand-in for nvCOMP's Cascaded codec: a run-length
// encoding stage followed by bit-packing of the run values and lengths.
// It shines on long constant runs (the zero runs a sparsified gradient
// produces) but, being run-length based, achieves a lower ratio than the
// entropy coders on the non-uniform but run-free quantized value streams —
// exactly the ordering Table 2 reports.
type Cascaded struct{}

// Name implements Codec.
func (Cascaded) Name() string { return "Cascaded" }

// Encode implements Codec.
func (c Cascaded) Encode(src []byte) []byte {
	return c.EncodeAppend(make([]byte, 0, len(src)/4+16), src)
}

// EncodeAppend implements AppendEncoder. RLE pair vectors and the bit
// writer's buffer come from the buffer arena.
func (Cascaded) EncodeAppend(dst, src []byte) []byte {
	out := putUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return out
	}
	// Stage 1: RLE into (value, runLength) pairs. The appends below can
	// outgrow the 256-element arena buffers onto fresh heap arrays, so the
	// original handles are kept and Put at the end — the arena must never
	// be handed a grown foreign slice.
	valuesBuf := pool.Bytes(256)
	runsBuf := pool.U32(256)
	values := valuesBuf[:0]
	runs := runsBuf[:0]
	cur := src[0]
	var run uint32 = 1
	for _, b := range src[1:] {
		if b == cur && run < 1<<30 {
			run++
			continue
		}
		values = append(values, cur)
		runs = append(runs, run)
		cur, run = b, 1
	}
	values = append(values, cur)
	runs = append(runs, run)

	// Stage 2: bit-pack. Values at the width of their OR; run lengths at
	// the width of the maximum run.
	var orV byte
	var maxRun uint32
	for i, v := range values {
		orV |= v
		if runs[i] > maxRun {
			maxRun = runs[i]
		}
	}
	vWidth := uint(8)
	for vWidth > 0 && orV&(1<<(vWidth-1)) == 0 {
		vWidth--
	}
	rWidth := uint(1)
	for maxRun >= 1<<rWidth {
		rWidth++
	}
	out = putUvarint(out, uint64(len(values)))
	out = append(out, byte(vWidth), byte(rWidth))
	var w bitstream.Writer
	// Worst case is 8 value bits + 31 run bits per pair (< 5 bytes). Even
	// so, Put the handle given to ResetBuf rather than w.Buf(): the writer
	// grows by append and its final buffer need not be the arena's.
	wBuf := pool.Bytes(len(values)*5 + 8)
	w.ResetBuf(wBuf)
	for i, v := range values {
		w.WriteBits(uint64(v), vWidth)
		w.WriteBits(uint64(runs[i]), rWidth)
	}
	out = append(out, w.Bytes()...)
	pool.PutBytes(wBuf)
	pool.PutBytes(valuesBuf)
	pool.PutU32(runsBuf)
	return out
}

// Decode implements Codec.
func (c Cascaded) Decode(src []byte) ([]byte, error) {
	return c.DecodeInto(nil, src)
}

// DecodeInto implements IntoDecoder.
func (Cascaded) DecodeInto(scratch, src []byte) ([]byte, error) {
	n, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	if n == 0 {
		return []byte{}, nil
	}
	if n > 1<<33 {
		return nil, corruptf("Cascaded: implausible length %d", n)
	}
	pairs, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	if len(src) < 2 {
		return nil, corruptf("Cascaded: truncated widths")
	}
	vWidth, rWidth := uint(src[0]), uint(src[1])
	if vWidth > 8 || rWidth == 0 || rWidth > 31 {
		return nil, corruptf("Cascaded: invalid widths v=%d r=%d", vWidth, rWidth)
	}
	r := bitstream.NewReader(src[2:])
	var dst []byte
	if uint64(cap(scratch)) >= n {
		dst = scratch[:0]
	} else {
		dst = make([]byte, 0, n)
	}
	for p := uint64(0); p < pairs; p++ {
		v, err := r.ReadBits(vWidth)
		if err != nil {
			return nil, corruptf("Cascaded: truncated value %d", p)
		}
		run, err := r.ReadBits(rWidth)
		if err != nil {
			return nil, corruptf("Cascaded: truncated run %d", p)
		}
		if run == 0 || uint64(len(dst))+run > n {
			return nil, corruptf("Cascaded: run %d overflows output (%d+%d > %d)", p, len(dst), run, n)
		}
		for i := uint64(0); i < run; i++ {
			dst = append(dst, byte(v))
		}
	}
	if uint64(len(dst)) != n {
		return nil, corruptf("Cascaded: decoded %d bytes, want %d", len(dst), n)
	}
	return dst, nil
}
