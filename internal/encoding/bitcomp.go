package encoding

import "compso/internal/bitstream"

// Bitcomp is the stand-in for nvCOMP's Bitcomp codec: block-wise bit-width
// truncation. Each block stores the maximum significant bit width of its
// bytes and packs every byte at that width. Like its namesake, it is a
// single cheap pass (the highest-throughput codec in Table 2) with a lower
// compression ratio than the entropy coders because it can only exploit
// leading-zero bits, not symbol-probability skew.
type Bitcomp struct{}

// bitcompBlock is the number of bytes sharing one width descriptor.
const bitcompBlock = 4096

// Name implements Codec.
func (Bitcomp) Name() string { return "Bitcomp" }

// Encode implements Codec.
func (Bitcomp) Encode(src []byte) []byte {
	out := putUvarint(nil, uint64(len(src)))
	if len(src) == 0 {
		return out
	}
	w := bitstream.NewWriter(len(src)/2 + 16)
	for start := 0; start < len(src); start += bitcompBlock {
		end := min(start+bitcompBlock, len(src))
		block := src[start:end]
		var maxV byte
		for _, b := range block {
			maxV |= b
		}
		width := uint(8)
		for width > 0 && maxV&(1<<(width-1)) == 0 {
			width--
		}
		w.WriteBits(uint64(width), 4)
		for _, b := range block {
			w.WriteBits(uint64(b), width)
		}
	}
	return append(out, w.Bytes()...)
}

// Decode implements Codec.
func (Bitcomp) Decode(src []byte) ([]byte, error) {
	n, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	if n > 1<<33 {
		return nil, corruptf("Bitcomp: implausible length %d", n)
	}
	dst := make([]byte, n)
	r := bitstream.NewReader(src[consumed:])
	for start := uint64(0); start < n; start += bitcompBlock {
		end := min(start+bitcompBlock, n)
		width64, err := r.ReadBits(4)
		if err != nil {
			return nil, corruptf("Bitcomp: truncated width at offset %d", start)
		}
		if width64 > 8 {
			return nil, corruptf("Bitcomp: invalid width %d", width64)
		}
		width := uint(width64)
		for i := start; i < end; i++ {
			v, err := r.ReadBits(width)
			if err != nil {
				return nil, corruptf("Bitcomp: truncated body at offset %d", i)
			}
			dst[i] = byte(v)
		}
	}
	return dst, nil
}
