package encoding

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"compso/internal/stats"
)

// testInputs covers the edge cases every codec must survive.
func testInputs() map[string][]byte {
	rng := rand.New(rand.NewPCG(42, 43))
	random := make([]byte, 10000)
	for i := range random {
		random[i] = byte(rng.Uint64())
	}
	skewed := make([]byte, 20000)
	for i := range skewed {
		// Geometric-ish distribution similar to packed quantized gradients.
		v := 0
		for rng.Float64() < 0.6 && v < 255 {
			v++
		}
		skewed[i] = byte(v)
	}
	runs := make([]byte, 15000)
	for i := range runs {
		runs[i] = byte((i / 500) % 7)
	}
	repeats := bytes.Repeat([]byte("gradient-block-"), 800)
	return map[string][]byte{
		"empty":    {},
		"single":   {42},
		"two":      {1, 2},
		"constant": bytes.Repeat([]byte{7}, 5000),
		"random":   random,
		"skewed":   skewed,
		"runs":     runs,
		"repeats":  repeats,
		"allbytes": func() []byte {
			b := make([]byte, 256)
			for i := range b {
				b[i] = byte(i)
			}
			return b
		}(),
		"zeros":      make([]byte, 4097), // crosses a bitcomp block boundary
		"short-run3": {9, 9, 9},
	}
}

func TestAllCodecsRoundTrip(t *testing.T) {
	for _, codec := range All() {
		for name, input := range testInputs() {
			enc := codec.Encode(input)
			dec, err := codec.Decode(enc)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", codec.Name(), name, err)
			}
			if !bytes.Equal(dec, input) {
				t.Fatalf("%s/%s: round trip mismatch (len %d vs %d)", codec.Name(), name, len(dec), len(input))
			}
		}
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	codec := Huffman{}
	for name, input := range testInputs() {
		enc := codec.Encode(input)
		dec, err := codec.Decode(enc)
		if err != nil {
			t.Fatalf("Huffman/%s: %v", name, err)
		}
		if !bytes.Equal(dec, input) {
			t.Fatalf("Huffman/%s: round trip mismatch", name)
		}
	}
}

func TestSkewedDataCompresses(t *testing.T) {
	// Entropy coders must beat 1x on skewed data; this is what makes them
	// win Table 2 on gradient streams.
	input := testInputs()["skewed"]
	for _, codec := range []Codec{ANS{}, Deflate{}, Gdeflate{}, Zstd{}, Huffman{}} {
		enc := codec.Encode(input)
		if len(enc) >= len(input) {
			t.Errorf("%s: skewed data grew: %d -> %d", codec.Name(), len(input), len(enc))
		}
	}
}

func TestConstantDataCompressesEverywhere(t *testing.T) {
	input := testInputs()["constant"]
	for _, codec := range All() {
		enc := codec.Encode(input)
		// Bitcomp can only drop leading-zero bits (3 bits/byte for the
		// constant 7), so its bound is looser than the pattern-exploiting
		// codecs'.
		bound := len(input) / 4
		if codec.Name() == "Bitcomp" {
			bound = len(input) / 2
		}
		if len(enc) >= bound {
			t.Errorf("%s: constant run compressed only %d -> %d", codec.Name(), len(input), len(enc))
		}
	}
}

func TestCascadedBestOnRuns(t *testing.T) {
	input := testInputs()["runs"]
	casc := Cascaded{}.Encode(input)
	if len(casc) > 400 {
		t.Fatalf("Cascaded on runs: %d bytes, want < 400", len(casc))
	}
}

func TestEntropyCodersBeatDictionaryOnSkewed(t *testing.T) {
	// §5.2: "compressors incorporating entropy coding (e.g., ANS, Deflate,
	// and Zstd) achieve higher compression ratios than those based on
	// dictionary matching (e.g., LZ4, Snappy) or run-length coding
	// (Cascaded). This is attributed to the gradient distribution's
	// non-uniformity."
	input := testInputs()["skewed"]
	ans := len(ANS{}.Encode(input))
	lz4 := len(LZ4{}.Encode(input))
	snappy := len(Snappy{}.Encode(input))
	casc := len(Cascaded{}.Encode(input))
	if ans >= lz4 || ans >= snappy || ans >= casc {
		t.Fatalf("ANS (%d) should beat LZ4 (%d), Snappy (%d), Cascaded (%d) on skewed data",
			ans, lz4, snappy, casc)
	}
}

func TestDecodeCorruptInput(t *testing.T) {
	// Every codec must reject a truncation of its own valid output with an
	// error rather than panicking or misdecoding silently.
	input := testInputs()["skewed"]
	codecs := All()
	codecs = append(codecs, Huffman{})
	for _, codec := range codecs {
		enc := codec.Encode(input)
		for _, cut := range []int{1, 2, len(enc) / 2, len(enc) - 1} {
			if cut >= len(enc) {
				continue
			}
			dec, err := codec.Decode(enc[:cut])
			if err == nil && !bytes.Equal(dec, input) {
				t.Errorf("%s: truncation to %d silently misdecoded", codec.Name(), cut)
			}
		}
		// Empty input buffer.
		if _, err := codec.Decode(nil); err == nil {
			t.Errorf("%s: Decode(nil) succeeded", codec.Name())
		}
	}
}

func TestDecodeErrorsWrapErrCorrupt(t *testing.T) {
	_, err := ANS{}.Decode([]byte{0x05}) // claims 5 bytes, no table
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
}

func TestAllHasTableTwoOrder(t *testing.T) {
	want := []string{"ANS", "Bitcomp", "Cascaded", "Deflate", "Gdeflate", "LZ4", "Snappy", "Zstd"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("codec count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("codec %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRoundTripPropertyAllCodecs feeds structured-random inputs through every
// codec. This is the main safety net for the hand-written coders.
func TestRoundTripPropertyAllCodecs(t *testing.T) {
	codecs := All()
	codecs = append(codecs, Huffman{})
	for _, codec := range codecs {
		codec := codec
		f := func(seed uint64, size uint16, alphabet uint8) bool {
			rng := rand.New(rand.NewPCG(seed, 7))
			n := int(size) % 5000
			alpha := int(alphabet)%255 + 1
			input := make([]byte, n)
			for i := range input {
				if rng.Float64() < 0.3 && i > 0 {
					input[i] = input[i-1] // inject runs
				} else {
					input[i] = byte(rng.IntN(alpha))
				}
			}
			enc := codec.Encode(input)
			dec, err := codec.Decode(enc)
			return err == nil && bytes.Equal(dec, input)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", codec.Name(), err)
		}
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 16384, 1 << 40, ^uint64(0)} {
		buf := putUvarint(nil, v)
		got, n, err := getUvarint(buf)
		if err != nil || got != v || n != len(buf) {
			t.Fatalf("uvarint %d: got %d n=%d err=%v", v, got, n, err)
		}
	}
	if _, _, err := getUvarint([]byte{0x80, 0x80}); err == nil {
		t.Fatal("truncated uvarint accepted")
	}
	if _, _, err := getUvarint([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}); err == nil {
		t.Fatal("overflowing uvarint accepted")
	}
}

func TestANSApproachesEntropyBound(t *testing.T) {
	// ANS is an order-0 entropy coder: on i.i.d. skewed bytes its ratio
	// must come within ~10% of the Shannon bound (table overhead aside).
	input := testInputs()["skewed"]
	enc := ANS{}.Encode(input)
	got := float64(len(input)) / float64(len(enc))
	bound := stats.EntropyCompressionBound(input)
	if got > bound {
		t.Fatalf("ANS ratio %.2f exceeds the entropy bound %.2f", got, bound)
	}
	if got < bound*0.85 {
		t.Fatalf("ANS ratio %.2f far below the entropy bound %.2f", got, bound)
	}
}
