package encoding

import "encoding/binary"

// Snappy is a from-scratch codec in the style of Google's Snappy: tag-byte
// framed literal runs and copies with varint-extended lengths, a greedy
// matcher with the characteristic "skip faster through incompressible data"
// probe stride. Same dictionary-matching class as nvCOMP's Snappy; Table 2
// shows it trading slightly against LZ4 on ratio and throughput.
type Snappy struct{}

const (
	snappyMinMatch = 4
	snappyHashLog  = 14
	snappyTagLit   = 0x00
	snappyTagCopy  = 0x01
)

// Name implements Codec.
func (Snappy) Name() string { return "Snappy" }

// Encode implements Codec.
func (Snappy) Encode(src []byte) []byte {
	out := putUvarint(nil, uint64(len(src)))
	if len(src) == 0 {
		return out
	}
	var table [1 << snappyHashLog]int32
	for i := range table {
		table[i] = -1
	}
	anchor := 0
	i := 0
	limit := len(src) - snappyMinMatch
	skipBits := uint(5) // probe stride doubles every 32 misses
	misses := 0
	for i <= limit {
		h := snappyHash(binary.LittleEndian.Uint32(src[i:]))
		cand := int(table[h])
		table[h] = int32(i)
		if cand < 0 || binary.LittleEndian.Uint32(src[cand:]) != binary.LittleEndian.Uint32(src[i:]) {
			misses++
			i += 1 + misses>>skipBits
			continue
		}
		misses = 0
		matchLen := snappyMinMatch
		for i+matchLen < len(src) && src[cand+matchLen] == src[i+matchLen] {
			matchLen++
		}
		if anchor < i {
			out = snappyEmitLiterals(out, src[anchor:i])
		}
		out = append(out, snappyTagCopy)
		out = putUvarint(out, uint64(matchLen))
		out = putUvarint(out, uint64(i-cand))
		i += matchLen
		anchor = i
	}
	if anchor < len(src) {
		out = snappyEmitLiterals(out, src[anchor:])
	}
	return out
}

func snappyHash(v uint32) uint32 {
	return (v * 0x9e3779b1) >> (32 - snappyHashLog)
}

func snappyEmitLiterals(out, lits []byte) []byte {
	out = append(out, snappyTagLit)
	out = putUvarint(out, uint64(len(lits)))
	return append(out, lits...)
}

// Decode implements Codec.
func (Snappy) Decode(src []byte) ([]byte, error) {
	n, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	if n == 0 {
		return []byte{}, nil
	}
	if n > 1<<33 {
		return nil, corruptf("Snappy: implausible length %d", n)
	}
	dst := make([]byte, 0, n)
	pos := 0
	for uint64(len(dst)) < n {
		if pos >= len(src) {
			return nil, corruptf("Snappy: truncated at output offset %d", len(dst))
		}
		tag := src[pos]
		pos++
		switch tag {
		case snappyTagLit:
			length, consumed, err := getUvarint(src[pos:])
			if err != nil {
				return nil, err
			}
			pos += consumed
			if uint64(pos)+length > uint64(len(src)) || uint64(len(dst))+length > n {
				return nil, corruptf("Snappy: literal run of %d overruns", length)
			}
			dst = append(dst, src[pos:pos+int(length)]...)
			pos += int(length)
		case snappyTagCopy:
			length, consumed, err := getUvarint(src[pos:])
			if err != nil {
				return nil, err
			}
			pos += consumed
			offset, consumed, err := getUvarint(src[pos:])
			if err != nil {
				return nil, err
			}
			pos += consumed
			if offset == 0 || offset > uint64(len(dst)) {
				return nil, corruptf("Snappy: offset %d at output size %d", offset, len(dst))
			}
			if uint64(len(dst))+length > n {
				return nil, corruptf("Snappy: copy of %d overflows output", length)
			}
			start := len(dst) - int(offset)
			for k := uint64(0); k < length; k++ {
				dst = append(dst, dst[start+int(k)])
			}
		default:
			return nil, corruptf("Snappy: unknown tag %d", tag)
		}
	}
	return dst, nil
}
