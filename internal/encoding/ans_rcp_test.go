package encoding

import (
	"math/bits"
	"testing"
)

// TestANSReciprocalExact exhaustively verifies the encoder's reciprocal
// division: for every normalized frequency f in [1, ansProbScale] the
// widening multiply by m = 2^44/f + 1 must floor-divide exactly at every
// state the renormalized encoder can hold (x < xMax = 2^19 * f), including
// the division boundaries where an off-by-one would first appear.
func TestANSReciprocalExact(t *testing.T) {
	for f := uint32(1); f <= ansProbScale; f++ {
		m := (1<<44)/uint64(f) + 1
		xMax := ((ansLowBound >> ansProbBits) << 8) * f
		check := func(x uint32) {
			hi, lo := bits.Mul64(uint64(x), m)
			q := uint32(hi<<20 | lo>>44)
			if q != x/f {
				t.Fatalf("f=%d x=%d: reciprocal quotient %d, want %d", f, x, q, x/f)
			}
		}
		// Division boundaries: the largest multiples of f below xMax, their
		// neighbors, and the extremes.
		check(0)
		check(1)
		check(xMax - 1)
		for k := uint32(1); k <= 8; k++ {
			mult := (xMax/f - k) * f
			check(mult)
			check(mult - 1)
			check(mult + 1)
		}
		// A coarse sweep across the state range.
		step := xMax/97 + 1
		for x := uint32(0); x < xMax; x += step {
			check(x)
		}
	}
}
