package encoding

import (
	"math/rand/v2"
	"testing"

	"compso/internal/bitstream"
)

func TestEliasGammaKnownCodes(t *testing.T) {
	// gamma(1) = "1", gamma(2) = "010", gamma(3) = "011", gamma(4)="00100".
	w := bitstream.NewWriter(4)
	EliasGammaEncode(w, 1)
	EliasGammaEncode(w, 2)
	EliasGammaEncode(w, 4)
	if got := w.BitLen(); got != 1+3+5 {
		t.Fatalf("BitLen = %d, want 9", got)
	}
	r := bitstream.NewReader(w.Bytes())
	for _, want := range []uint64{1, 2, 4} {
		got, err := EliasGammaDecode(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("decoded %d, want %d", got, want)
		}
	}
}

func TestEliasGammaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	values := make([]uint64, 2000)
	w := bitstream.NewWriter(1 << 12)
	for i := range values {
		// Bias toward small values like quantized gradients.
		values[i] = uint64(rng.ExpFloat64()*10) + 1
		EliasGammaEncode(w, values[i])
	}
	r := bitstream.NewReader(w.Bytes())
	for i, want := range values {
		got, err := EliasGammaDecode(r)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("value %d = %d, want %d", i, got, want)
		}
	}
}

func TestEliasGammaZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EliasGammaEncode(0) did not panic")
		}
	}()
	EliasGammaEncode(bitstream.NewWriter(1), 0)
}

func TestEliasGammaSmallValuesShortCodes(t *testing.T) {
	// The whole point of gamma coding in QSGD: small magnitudes dominate,
	// so they must get short codes.
	w1 := bitstream.NewWriter(1)
	EliasGammaEncode(w1, 1)
	w100 := bitstream.NewWriter(1)
	EliasGammaEncode(w100, 100)
	if w1.BitLen() >= w100.BitLen() {
		t.Fatalf("gamma(1)=%d bits >= gamma(100)=%d bits", w1.BitLen(), w100.BitLen())
	}
}

func TestEliasGammaCorruptStream(t *testing.T) {
	// A long run of zero bits must be rejected, not spin forever.
	r := bitstream.NewReader(make([]byte, 32))
	if _, err := EliasGammaDecode(r); err == nil {
		t.Fatal("decoding zeros succeeded")
	}
}
