package encoding

import "encoding/binary"

// Zstd is a from-scratch codec in the style of Zstandard: an LZ77 stage
// with hash-chain match search (deeper than LZ4's single probe, hence the
// better parse) followed by entropy coding of the literal and sequence
// streams with rANS (standing in for Zstandard's FSE/tANS). Like nvCOMP's
// Zstd in Table 2, it achieves the highest compression ratio of the codec
// set at the lowest throughput — the search depth and the extra entropy
// pass are exactly where the time goes.
type Zstd struct{}

const (
	zstdMinMatch  = 4
	zstdHashLog   = 15
	zstdChainLog  = 14
	zstdMaxChain  = 16 // probes per position
	zstdMaxOffset = 1 << 17
)

// Name implements Codec.
func (Zstd) Name() string { return "Zstd" }

// Encode implements Codec.
func (Zstd) Encode(src []byte) []byte {
	out := putUvarint(nil, uint64(len(src)))
	if len(src) == 0 {
		return out
	}

	// LZ parse with hash chains. Three output streams: raw literals, and a
	// byte-serialized sequence stream (litLen, matchLen, offset varints).
	literals := make([]byte, 0, len(src)/2)
	seqs := make([]byte, 0, len(src)/8)
	nSeq := 0

	var head [1 << zstdHashLog]int32
	for i := range head {
		head[i] = -1
	}
	chain := make([]int32, len(src))
	anchor := 0
	i := 0
	limit := len(src) - zstdMinMatch
	for i <= limit {
		v := binary.LittleEndian.Uint32(src[i:])
		h := zstdHash(v)
		bestLen, bestPos := 0, -1
		cand := int(head[h])
		for probe := 0; probe < zstdMaxChain && cand >= 0 && i-cand <= zstdMaxOffset; probe++ {
			if binary.LittleEndian.Uint32(src[cand:]) == v {
				l := zstdMinMatch
				for i+l < len(src) && src[cand+l] == src[i+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestPos = l, cand
				}
			}
			cand = int(chain[cand])
		}
		chain[i] = head[h]
		head[h] = int32(i)
		if bestLen < zstdMinMatch {
			i++
			continue
		}
		literals = append(literals, src[anchor:i]...)
		seqs = putUvarint(seqs, uint64(i-anchor))
		seqs = putUvarint(seqs, uint64(bestLen))
		seqs = putUvarint(seqs, uint64(i-bestPos))
		nSeq++
		// Insert interior match positions into the chains so later matches
		// can reference them (bounded to keep the parse near-linear).
		end := i + bestLen
		for j := i + 1; j < end && j <= limit && j < i+32; j++ {
			hj := zstdHash(binary.LittleEndian.Uint32(src[j:]))
			chain[j] = head[hj]
			head[hj] = int32(j)
		}
		i = end
		anchor = i
	}
	literals = append(literals, src[anchor:]...)

	// Entropy-code both streams with rANS.
	encLits := ANS{}.Encode(literals)
	encSeqs := ANS{}.Encode(seqs)
	out = putUvarint(out, uint64(nSeq))
	out = putUvarint(out, uint64(len(encLits)))
	out = append(out, encLits...)
	out = append(out, encSeqs...)
	return out
}

func zstdHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - zstdHashLog)
}

// Decode implements Codec.
func (Zstd) Decode(src []byte) ([]byte, error) {
	n, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	if n == 0 {
		return []byte{}, nil
	}
	if n > 1<<33 {
		return nil, corruptf("Zstd: implausible length %d", n)
	}
	nSeq, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	litsLen, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	if litsLen > uint64(len(src)) {
		return nil, corruptf("Zstd: literal stream length %d overruns input", litsLen)
	}
	literals, err := ANS{}.Decode(src[:litsLen])
	if err != nil {
		return nil, corruptf("Zstd literals: %v", err)
	}
	seqs, err := ANS{}.Decode(src[litsLen:])
	if err != nil {
		return nil, corruptf("Zstd sequences: %v", err)
	}

	dst := make([]byte, 0, n)
	litPos, seqPos := 0, 0
	for s := uint64(0); s < nSeq; s++ {
		litLen, c1, err := getUvarint(seqs[seqPos:])
		if err != nil {
			return nil, err
		}
		seqPos += c1
		matchLen, c2, err := getUvarint(seqs[seqPos:])
		if err != nil {
			return nil, err
		}
		seqPos += c2
		offset, c3, err := getUvarint(seqs[seqPos:])
		if err != nil {
			return nil, err
		}
		seqPos += c3
		if uint64(litPos)+litLen > uint64(len(literals)) {
			return nil, corruptf("Zstd: literal overrun in sequence %d", s)
		}
		dst = append(dst, literals[litPos:litPos+int(litLen)]...)
		litPos += int(litLen)
		if offset == 0 || offset > uint64(len(dst)) || matchLen < zstdMinMatch {
			return nil, corruptf("Zstd: bad sequence %d (off=%d len=%d)", s, offset, matchLen)
		}
		if uint64(len(dst))+matchLen > n {
			return nil, corruptf("Zstd: match overflows output in sequence %d", s)
		}
		start := len(dst) - int(offset)
		for k := uint64(0); k < matchLen; k++ {
			dst = append(dst, dst[start+int(k)])
		}
	}
	dst = append(dst, literals[litPos:]...)
	if uint64(len(dst)) != n {
		return nil, corruptf("Zstd: decoded %d bytes, want %d", len(dst), n)
	}
	return dst, nil
}
