package encoding

import (
	"math/bits"

	"compso/internal/bitstream"
)

// Elias-gamma coding of positive integers, the variable-length integer code
// QSGD uses for its quantized gradient magnitudes [2]. A value v >= 1 is
// written as (bitlen(v)-1) zero bits followed by the bitlen(v) bits of v
// MSB-first — short codes for the small magnitudes that dominate quantized
// gradients.

// EliasGammaEncode appends the gamma code of v (which must be >= 1) to w.
// It panics on v == 0; callers encode value+1 when zeros are possible.
func EliasGammaEncode(w *bitstream.Writer, v uint64) {
	if v == 0 {
		panic("encoding: Elias gamma cannot encode 0")
	}
	n := uint(bits.Len64(v)) // number of significant bits
	for i := uint(1); i < n; i++ {
		w.WriteBit(0)
	}
	// Emit the n bits of v MSB-first (leading bit is always 1 and doubles
	// as the unary terminator).
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(v >> uint(i))
	}
}

// EliasGammaDecode reads one gamma-coded value from r.
func EliasGammaDecode(r *bitstream.Reader) (uint64, error) {
	zeros := uint(0)
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		zeros++
		if zeros >= 57 {
			return 0, corruptf("Elias gamma: run of %d zeros", zeros)
		}
	}
	v := uint64(1)
	for i := uint(0); i < zeros; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}
