// Package encoding implements the lossless back-end encoders that COMPSO's
// performance model selects among (Table 2 of the paper): rANS, Bitcomp,
// Cascaded, Deflate, Gdeflate, LZ4, Snappy and Zstd — each a from-scratch
// stand-in for its nvCOMP counterpart that preserves the algorithmic class
// (entropy coding vs dictionary matching vs run-length coding), which is
// what determines the compression-ratio and throughput ordering the paper
// reports. The package also provides the Elias-gamma coder used by the QSGD
// baseline and the canonical Huffman coder used by the SZ baseline.
package encoding

import (
	"errors"
	"fmt"
	"sort"
)

// Codec losslessly encodes byte streams. Implementations are stateless and
// safe for concurrent use.
type Codec interface {
	// Name returns the codec's registry name (e.g. "ANS").
	Name() string
	// Encode compresses src into a self-describing buffer. Encode never
	// fails; incompressible data may grow slightly.
	Encode(src []byte) []byte
	// Decode reverses Encode. It returns an error when the buffer is
	// truncated or corrupt.
	Decode(src []byte) ([]byte, error)
}

// AppendEncoder is the optional zero-copy sibling of Codec.Encode: the
// encoded stream is appended to dst (which may be a pooled buffer) instead of
// forcing a fresh allocation per call. The appended bytes are identical to
// what Encode would return.
type AppendEncoder interface {
	EncodeAppend(dst, src []byte) []byte
}

// IntoDecoder is the optional scratch-reusing sibling of Codec.Decode: when
// cap(dst) is large enough the decoded stream is written into dst's storage,
// otherwise a fresh buffer is allocated. The returned slice aliases dst in
// the former case.
type IntoDecoder interface {
	DecodeInto(dst, src []byte) ([]byte, error)
}

// EncodeAppend appends c's encoding of src to dst, using the codec's
// AppendEncoder fast path when it has one and falling back to Encode+append
// otherwise.
func EncodeAppend(c Codec, dst, src []byte) []byte {
	if ae, ok := c.(AppendEncoder); ok {
		return ae.EncodeAppend(dst, src)
	}
	return append(dst, c.Encode(src)...)
}

// DecodeInto decodes src with c into dst's storage when the codec supports
// IntoDecoder and cap(dst) suffices; otherwise it falls back to Decode.
func DecodeInto(c Codec, dst, src []byte) ([]byte, error) {
	if id, ok := c.(IntoDecoder); ok {
		return id.DecodeInto(dst, src)
	}
	return c.Decode(src)
}

// ErrCorrupt is wrapped by all decoders when the input cannot have been
// produced by the matching encoder.
var ErrCorrupt = errors.New("encoding: corrupt input")

// ErrUnknownCodec is wrapped by ByName when no codec matches the requested
// registry name.
var ErrUnknownCodec = errors.New("encoding: unknown codec")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// registry holds the codecs in Table 2 order.
var registry = []Codec{
	ANS{},
	Bitcomp{},
	Cascaded{},
	Deflate{},
	Gdeflate{},
	LZ4{},
	Snappy{},
	Zstd{},
}

// All returns the Table 2 codec set in the paper's order (ANS, Bitcomp,
// Cascaded, Deflate, Gdeflate, LZ4, Snappy, Zstd). The returned slice is a
// copy and may be reordered by the caller.
func All() []Codec {
	out := make([]Codec, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the codec with the given registry name. Unknown names
// return an error wrapping ErrUnknownCodec.
func ByName(name string) (Codec, error) {
	for _, c := range registry {
		if c.Name() == name {
			return c, nil
		}
	}
	names := Names()
	sort.Strings(names)
	return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownCodec, name, names)
}

// Names lists the registered codec names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, c := range registry {
		out[i] = c.Name()
	}
	return out
}

// putUvarint appends v to dst in LEB128 form and returns the extended slice.
func putUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// getUvarint reads a LEB128 value from src, returning the value and the
// number of bytes consumed (0 with an error on truncation/overflow).
func getUvarint(src []byte) (uint64, int, error) {
	var v uint64
	var shift uint
	for i, b := range src {
		if shift >= 64 {
			return 0, 0, corruptf("uvarint overflow")
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, corruptf("truncated uvarint")
}
