package encoding

import (
	"container/heap"
	"sort"

	"compso/internal/bitstream"
	"compso/internal/pool"
)

// Huffman is a canonical Huffman coder over bytes. It is not part of the
// nvCOMP Table 2 set; it exists as the entropy stage of the SZ baseline
// compressor, which the paper describes as "prediction, RN-based
// quantization, and Huffman encoding" (§2.4).
type Huffman struct{}

// Name implements Codec.
func (Huffman) Name() string { return "Huffman" }

const huffMaxCodeLen = 57 // bounded by bitstream.Reader's width limit

// Encode implements Codec.
func (h Huffman) Encode(src []byte) []byte {
	return h.EncodeAppend(make([]byte, 0, len(src)/2+208), src)
}

// EncodeAppend implements AppendEncoder. The bit writer runs over a pooled
// buffer so per-call allocations are limited to dst growth.
func (Huffman) EncodeAppend(dst, src []byte) []byte {
	out := putUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return out
	}
	var counts [256]int
	for _, b := range src {
		counts[b]++
	}
	lens := huffCodeLengths(counts[:])
	codes := canonicalCodes(lens)

	// Header: 256 code lengths, 6 bits each (lengths <= 57 fit).
	var w bitstream.Writer
	w.ResetBuf(pool.Bytes(len(src)/2 + 200))
	for _, l := range lens {
		w.WriteBits(uint64(l), 6)
	}
	for _, b := range src {
		// Canonical codes compare MSB-first, so emit them bit by bit from
		// the top; the LSB-first bitstream would otherwise reverse them.
		c, l := codes[b], lens[b]
		for k := l - 1; k >= 0; k-- {
			w.WriteBit(c >> uint(k))
		}
	}
	out = append(out, w.Bytes()...)
	pool.PutBytes(w.Buf())
	return out
}

// Decode implements Codec.
func (h Huffman) Decode(src []byte) ([]byte, error) {
	return h.DecodeInto(nil, src)
}

// DecodeInto implements IntoDecoder. Decoding walks the canonical
// firstCode/count tables (one comparison per code length) instead of probing
// a map per bit, which is both allocation-free and substantially faster.
func (Huffman) DecodeInto(scratch, src []byte) ([]byte, error) {
	n, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return []byte{}, nil
	}
	if n > 1<<33 {
		return nil, corruptf("Huffman: implausible length %d", n)
	}
	r := bitstream.NewReader(src[consumed:])
	var lens [256]int
	for i := range lens {
		v, err := r.ReadBits(6)
		if err != nil {
			return nil, corruptf("Huffman: truncated length table")
		}
		lens[i] = int(v)
	}
	// Canonical decode tables: symbols sorted by (length, symbol) — the same
	// order canonicalCodes assigns codes in — plus, per length, the first
	// code value and the base index into the symbol array. A prefix of the
	// stream is a codeword of length L iff its value lies in
	// [firstCode[L], firstCode[L]+count[L]).
	var count [huffMaxCodeLen + 1]int
	for _, l := range lens {
		if l > 0 {
			count[l]++
		}
	}
	var syms [256]byte
	var firstCode [huffMaxCodeLen + 1]uint64
	var symBase [huffMaxCodeLen + 1]int
	idx := 0
	var code uint64
	prevLen := 0
	for l := 1; l <= huffMaxCodeLen; l++ {
		if count[l] == 0 {
			continue
		}
		code <<= uint(l - prevLen)
		firstCode[l] = code
		symBase[l] = idx
		code += uint64(count[l])
		prevLen = l
		for s := 0; s < 256; s++ {
			if lens[s] == l {
				syms[idx] = byte(s)
				idx++
			}
		}
	}
	if idx == 0 {
		return nil, corruptf("Huffman: empty code table with %d symbols expected", n)
	}
	var dst []byte
	if uint64(cap(scratch)) >= n {
		dst = scratch[:n]
	} else {
		dst = make([]byte, n)
	}
	for i := uint64(0); i < n; i++ {
		var c uint64
		length := 0
		for {
			bit, err := r.ReadBit()
			if err != nil {
				return nil, corruptf("Huffman: truncated body at output %d", i)
			}
			// Canonical codes are assigned MSB-first; accumulate that way.
			c = c<<1 | bit
			length++
			if length > huffMaxCodeLen {
				return nil, corruptf("Huffman: code longer than %d bits", huffMaxCodeLen)
			}
			if cnt := count[length]; cnt > 0 {
				if off := c - firstCode[length]; off < uint64(cnt) {
					dst[i] = syms[symBase[length]+int(off)]
					break
				}
			}
		}
	}
	return dst, nil
}

// huffCodeLengths builds Huffman code lengths from symbol counts using the
// standard two-queue/heap algorithm. Single-symbol inputs get length 1.
func huffCodeLengths(counts []int) []int {
	lens := make([]int, len(counts))
	type node struct {
		weight      int
		sym         int // >= 0 for leaves
		left, right int // indices into nodes for internal
	}
	nodes := make([]node, 0, 2*len(counts))
	h := &nodeHeap{}
	for s, c := range counts {
		if c > 0 {
			nodes = append(nodes, node{weight: c, sym: s, left: -1, right: -1})
			heap.Push(h, heapItem{weight: c, idx: len(nodes) - 1})
		}
	}
	if h.Len() == 1 {
		lens[nodes[0].sym] = 1
		return lens
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(heapItem)
		b := heap.Pop(h).(heapItem)
		nodes = append(nodes, node{weight: a.weight + b.weight, sym: -1, left: a.idx, right: b.idx})
		heap.Push(h, heapItem{weight: a.weight + b.weight, idx: len(nodes) - 1})
	}
	// Depth-first traversal assigning depths as lengths.
	root := heap.Pop(h).(heapItem).idx
	type frame struct{ idx, depth int }
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[f.idx]
		if nd.sym >= 0 {
			lens[nd.sym] = f.depth
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
	// Cap pathological depths (only reachable with adversarial count
	// distributions beyond 2^57 total) — flatten by rebuilding as depth-57.
	for s, l := range lens {
		if l > huffMaxCodeLen {
			lens[s] = huffMaxCodeLen
		}
	}
	return lens
}

// canonicalCodes assigns canonical (MSB-first) codes from code lengths.
func canonicalCodes(lens []int) []uint64 {
	type symLen struct{ sym, len int }
	order := make([]symLen, 0, len(lens))
	for s, l := range lens {
		if l > 0 {
			order = append(order, symLen{s, l})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].len != order[j].len {
			return order[i].len < order[j].len
		}
		return order[i].sym < order[j].sym
	})
	codes := make([]uint64, len(lens))
	var code uint64
	prevLen := 0
	for _, sl := range order {
		code <<= uint(sl.len - prevLen)
		codes[sl.sym] = code
		code++
		prevLen = sl.len
	}
	return codes
}

type heapItem struct{ weight, idx int }

type nodeHeap []heapItem

func (h nodeHeap) Len() int      { return len(h) }
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].idx < h[j].idx
}
func (h *nodeHeap) Push(x any) { *h = append(*h, x.(heapItem)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
