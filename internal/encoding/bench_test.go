package encoding

import (
	"math/rand/v2"
	"testing"
)

// gradientPlane builds a byte stream with the skewed distribution of a
// quantized-gradient low byte plane — the codecs' production workload.
func gradientPlane(n int, seed uint64) []byte {
	rng := rand.New(rand.NewPCG(seed, 1))
	out := make([]byte, n)
	for i := range out {
		v := 0
		for rng.Float64() < 0.55 && v < 255 {
			v++
		}
		out[i] = byte(v)
	}
	return out
}

func benchEncode(b *testing.B, c Codec) {
	src := gradientPlane(1<<20, 7)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	var enc []byte
	for i := 0; i < b.N; i++ {
		enc = c.Encode(src)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(src))/float64(len(enc)), "CR")
}

func benchDecode(b *testing.B, c Codec) {
	src := gradientPlane(1<<20, 7)
	enc := c.Encode(src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeANS(b *testing.B)      { benchEncode(b, ANS{}) }
func BenchmarkEncodeBitcomp(b *testing.B)  { benchEncode(b, Bitcomp{}) }
func BenchmarkEncodeCascaded(b *testing.B) { benchEncode(b, Cascaded{}) }
func BenchmarkEncodeDeflate(b *testing.B)  { benchEncode(b, Deflate{}) }
func BenchmarkEncodeGdeflate(b *testing.B) { benchEncode(b, Gdeflate{}) }
func BenchmarkEncodeLZ4(b *testing.B)      { benchEncode(b, LZ4{}) }
func BenchmarkEncodeSnappy(b *testing.B)   { benchEncode(b, Snappy{}) }
func BenchmarkEncodeZstd(b *testing.B)     { benchEncode(b, Zstd{}) }
func BenchmarkEncodeHuffman(b *testing.B)  { benchEncode(b, Huffman{}) }

func BenchmarkDecodeANS(b *testing.B)     { benchDecode(b, ANS{}) }
func BenchmarkDecodeBitcomp(b *testing.B) { benchDecode(b, Bitcomp{}) }
func BenchmarkDecodeLZ4(b *testing.B)     { benchDecode(b, LZ4{}) }
func BenchmarkDecodeZstd(b *testing.B)    { benchDecode(b, Zstd{}) }
