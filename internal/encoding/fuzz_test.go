package encoding

import (
	"bytes"
	"testing"
)

// Decoder fuzzing: arbitrary input must never panic or hang — only return
// data or an error. Valid encodings must round-trip.

func fuzzCodec(f *testing.F, c Codec) {
	f.Helper()
	for _, seed := range [][]byte{
		nil,
		{0},
		{0xff, 0xff, 0xff},
		c.Encode([]byte("hello hello hello")),
		c.Encode(make([]byte, 1000)),
		c.Encode([]byte{1, 2, 3, 4, 5, 255, 254, 253}),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := c.Decode(data)
		if err != nil {
			return
		}
		// A successful decode of an actual encoding must round-trip.
		reenc := c.Encode(out)
		back, err := c.Decode(reenc)
		if err != nil || !bytes.Equal(back, out) {
			t.Fatalf("re-encode round trip failed: %v", err)
		}
	})
}

func FuzzANSDecode(f *testing.F)      { fuzzCodec(f, ANS{}) }
func FuzzBitcompDecode(f *testing.F)  { fuzzCodec(f, Bitcomp{}) }
func FuzzCascadedDecode(f *testing.F) { fuzzCodec(f, Cascaded{}) }
func FuzzLZ4Decode(f *testing.F)      { fuzzCodec(f, LZ4{}) }
func FuzzSnappyDecode(f *testing.F)   { fuzzCodec(f, Snappy{}) }
func FuzzZstdDecode(f *testing.F)     { fuzzCodec(f, Zstd{}) }
func FuzzHuffmanDecode(f *testing.F)  { fuzzCodec(f, Huffman{}) }
