package encoding

import (
	"bytes"
	"compress/flate"
	"io"
)

// Deflate wraps the standard library's DEFLATE (LZ77 + Huffman) at the
// default compression level, standing in for nvCOMP's Deflate codec: a high
// compression ratio from the entropy-coding stage, at low throughput — the
// trade-off Table 2 reports.
type Deflate struct{}

// Name implements Codec.
func (Deflate) Name() string { return "Deflate" }

// Encode implements Codec.
func (Deflate) Encode(src []byte) []byte { return flateEncode(src, flate.DefaultCompression) }

// Decode implements Codec.
func (Deflate) Decode(src []byte) ([]byte, error) { return flateDecode(src, "Deflate") }

// Gdeflate stands in for nvCOMP's GDeflate, "a variant of Deflate [that]
// achieves a high compression ratio through entropy coding but low
// throughput (similar to Deflate)" (§5.2). It runs DEFLATE at the maximum
// compression level: a slightly better ratio than Deflate, comparable
// (slow) speed.
type Gdeflate struct{}

// Name implements Codec.
func (Gdeflate) Name() string { return "Gdeflate" }

// Encode implements Codec.
func (Gdeflate) Encode(src []byte) []byte { return flateEncode(src, flate.BestCompression) }

// Decode implements Codec.
func (Gdeflate) Decode(src []byte) ([]byte, error) { return flateDecode(src, "Gdeflate") }

func flateEncode(src []byte, level int) []byte {
	out := putUvarint(nil, uint64(len(src)))
	if len(src) == 0 {
		return out
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		// Only reachable with an invalid level constant; treat as a
		// programmer error.
		panic("encoding: flate.NewWriter: " + err.Error())
	}
	if _, err := w.Write(src); err != nil {
		panic("encoding: flate write: " + err.Error())
	}
	if err := w.Close(); err != nil {
		panic("encoding: flate close: " + err.Error())
	}
	return append(out, buf.Bytes()...)
}

func flateDecode(src []byte, name string) ([]byte, error) {
	n, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return []byte{}, nil
	}
	if n > 1<<33 {
		return nil, corruptf("%s: implausible length %d", name, n)
	}
	r := flate.NewReader(bytes.NewReader(src[consumed:]))
	defer r.Close()
	dst := make([]byte, n)
	if _, err := io.ReadFull(r, dst); err != nil {
		return nil, corruptf("%s: %v", name, err)
	}
	return dst, nil
}
