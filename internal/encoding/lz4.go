package encoding

import "encoding/binary"

// LZ4 is a from-scratch implementation of the LZ4 block format's structure
// (token byte with literal/match nibbles, 2-byte offsets, 255-run length
// extensions) using a greedy single-probe hash table — the same
// dictionary-matching class as nvCOMP's LZ4: fast, but a lower compression
// ratio than the entropy coders on gradient data because repeated 4-byte
// patterns are rare in packed quantized values (§5.2).
type LZ4 struct{}

const (
	lz4MinMatch   = 4
	lz4HashLog    = 14
	lz4MaxOffset  = 65535
	lz4LastLits   = 5 // final bytes always emitted as literals
	lz4TokenLit   = 15
	lz4TokenMatch = 15
)

// Name implements Codec.
func (LZ4) Name() string { return "LZ4" }

// Encode implements Codec.
func (LZ4) Encode(src []byte) []byte {
	out := putUvarint(nil, uint64(len(src)))
	if len(src) == 0 {
		return out
	}
	var table [1 << lz4HashLog]int32
	for i := range table {
		table[i] = -1
	}
	anchor := 0 // start of pending literal run
	i := 0
	limit := len(src) - lz4LastLits
	for i < limit {
		h := lz4Hash(binary.LittleEndian.Uint32(src[i:]))
		cand := int(table[h])
		table[h] = int32(i)
		if cand < 0 || i-cand > lz4MaxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != binary.LittleEndian.Uint32(src[i:]) {
			i++
			continue
		}
		// Extend the match forward.
		matchLen := lz4MinMatch
		maxLen := len(src) - i - (lz4LastLits - lz4MinMatch)
		for matchLen < maxLen && src[cand+matchLen] == src[i+matchLen] {
			matchLen++
		}
		out = lz4EmitSequence(out, src[anchor:i], i-cand, matchLen)
		i += matchLen
		anchor = i
	}
	// Trailing literals with a match length of 0 (encoded as token match
	// nibble 0 and offset 0, which the decoder treats as end-of-stream).
	out = lz4EmitSequence(out, src[anchor:], 0, 0)
	return out
}

func lz4Hash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lz4HashLog)
}

// lz4EmitSequence appends one LZ4 sequence: token, literal length
// extension, literals, offset, match length extension. A zero offset marks
// the final literal-only sequence.
func lz4EmitSequence(out []byte, literals []byte, offset, matchLen int) []byte {
	litLen := len(literals)
	token := byte(0)
	if litLen >= lz4TokenLit {
		token = lz4TokenLit << 4
	} else {
		token = byte(litLen) << 4
	}
	mlCode := 0
	if offset > 0 {
		mlCode = matchLen - lz4MinMatch
		if mlCode >= lz4TokenMatch {
			token |= lz4TokenMatch
		} else {
			token |= byte(mlCode)
		}
	}
	out = append(out, token)
	if litLen >= lz4TokenLit {
		out = lz4EmitLenExt(out, litLen-lz4TokenLit)
	}
	out = append(out, literals...)
	out = append(out, byte(offset), byte(offset>>8))
	if offset > 0 && mlCode >= lz4TokenMatch {
		out = lz4EmitLenExt(out, mlCode-lz4TokenMatch)
	}
	return out
}

func lz4EmitLenExt(out []byte, v int) []byte {
	for v >= 255 {
		out = append(out, 255)
		v -= 255
	}
	return append(out, byte(v))
}

// Decode implements Codec.
func (LZ4) Decode(src []byte) ([]byte, error) {
	n, consumed, err := getUvarint(src)
	if err != nil {
		return nil, err
	}
	src = src[consumed:]
	if n == 0 {
		return []byte{}, nil
	}
	if n > 1<<33 {
		return nil, corruptf("LZ4: implausible length %d", n)
	}
	dst := make([]byte, 0, n)
	pos := 0
	for {
		if pos >= len(src) {
			return nil, corruptf("LZ4: missing end-of-stream sequence")
		}
		token := src[pos]
		pos++
		litLen := int(token >> 4)
		if litLen == lz4TokenLit {
			ext, newPos, err := lz4ReadLenExt(src, pos)
			if err != nil {
				return nil, err
			}
			litLen += ext
			pos = newPos
		}
		if pos+litLen > len(src) {
			return nil, corruptf("LZ4: literal run of %d overruns input", litLen)
		}
		dst = append(dst, src[pos:pos+litLen]...)
		pos += litLen
		if pos+2 > len(src) {
			return nil, corruptf("LZ4: truncated offset")
		}
		offset := int(src[pos]) | int(src[pos+1])<<8
		pos += 2
		if offset == 0 {
			// Final sequence.
			if uint64(len(dst)) != n {
				return nil, corruptf("LZ4: decoded %d bytes, want %d", len(dst), n)
			}
			return dst, nil
		}
		matchLen := int(token&0xf) + lz4MinMatch
		if token&0xf == lz4TokenMatch {
			ext, newPos, err := lz4ReadLenExt(src, pos)
			if err != nil {
				return nil, err
			}
			matchLen += ext
			pos = newPos
		}
		start := len(dst) - offset
		if start < 0 {
			return nil, corruptf("LZ4: offset %d exceeds output size %d", offset, len(dst))
		}
		if uint64(len(dst)+matchLen) > n {
			return nil, corruptf("LZ4: match overflows output")
		}
		// Byte-wise copy: matches may overlap their own output.
		for k := 0; k < matchLen; k++ {
			dst = append(dst, dst[start+k])
		}
	}
}

func lz4ReadLenExt(src []byte, pos int) (int, int, error) {
	ext := 0
	for {
		if pos >= len(src) {
			return 0, 0, corruptf("LZ4: truncated length extension")
		}
		b := src[pos]
		pos++
		ext += int(b)
		if b != 255 {
			return ext, pos, nil
		}
		if ext > 1<<31 {
			return 0, 0, corruptf("LZ4: length extension overflow")
		}
	}
}
