package cluster

import (
	"fmt"

	"compso/internal/fault"
)

// Worker-loss semantics. A crash is a goroutine-level death: the victim
// poisons the cluster's rendezvous and panics with *CrashPanic. Every
// survivor discovers the loss at its next synchronization point — a
// collective entry, a rendezvous wait, or a blocked SendRecv — and unwinds
// with *LostPanic, modeling the bounded collective timeout real NCCL-style
// stacks use for peer-loss detection. The training driver catches both
// panic kinds at the top of each worker goroutine, converts them to a
// *WorkerLost error, discards the poisoned cluster, and restarts every
// rank from the last checkpoint on a fresh one.
//
// A poisoned cluster stays poisoned: no collective can complete on it
// again, which is what guarantees no survivor is left blocked forever and
// no half-combined collective result is ever observed.

// CrashPanic is the panic value the crashing worker dies with.
type CrashPanic struct {
	Rank  int
	Step  int
	Point string
}

func (p *CrashPanic) String() string {
	return fmt.Sprintf("worker %d crashed at step %d (%s)", p.Rank, p.Step, p.Point)
}

// LostPanic is the panic value surviving workers unwind with when they
// detect a crashed peer at a synchronization point.
type LostPanic struct {
	Rank  int // the crashed peer
	Step  int // the step the peer crashed at
	Point string
}

func (p *LostPanic) String() string {
	return fmt.Sprintf("peer %d lost at step %d (%s)", p.Rank, p.Step, p.Point)
}

// WorkerLost is the error a worker-loss unwind converts to at the training
// driver level.
type WorkerLost struct {
	Rank  int
	Step  int
	Point string
}

func (e *WorkerLost) Error() string {
	return fmt.Sprintf("cluster: worker %d lost at step %d (%s)", e.Rank, e.Step, e.Point)
}

// SetIncarnation records which restart attempt this cluster serves
// (0 for the first run, incremented per checkpoint recovery). Crash
// verdicts key on it so a restored run does not re-crash forever at the
// same replayed step.
func (c *Cluster) SetIncarnation(n int) { c.incarnation = n }

// Incarnation returns the cluster's restart attempt number.
func (c *Cluster) Incarnation() int { return c.incarnation }

// Crash kills this worker at the given point: it poisons the rendezvous
// (waking and unwinding all blocked peers), closes the peer-loss channel
// for blocked SendRecv partners, and panics with *CrashPanic. It never
// returns.
func (w *Worker) Crash(point string) {
	c := w.cluster
	c.rv.poison(w.rank, w.step, point)
	c.downOnce.Do(func() { close(c.downCh) })
	panic(&CrashPanic{Rank: w.rank, Step: w.step, Point: point})
}

// CrashDue reports whether the fault plan kills this worker during the
// current step of the cluster's incarnation, and at which point. The
// training loop acts on step-start and mid-step verdicts; mid-collective
// verdicts fire inside enterCollective.
func (w *Worker) CrashDue() (fault.CrashPoint, bool) {
	return w.cluster.faults.ShouldCrash(w.rank, w.step, w.cluster.incarnation)
}

// enterCollective is the choke point every collective entry (blocking or
// async launch, barrier included) passes through: it counts the step's
// collective entries, fires a scheduled mid-collective crash on the
// selected entry, and fails fast — before touching the rendezvous — when a
// peer is already down.
func (w *Worker) enterCollective() {
	c := w.cluster
	if down, p := c.rv.poisoned(); down {
		panic(p)
	}
	w.collSeq++
	if c.faults == nil {
		return
	}
	pt, ok := c.faults.ShouldCrash(w.rank, w.step, c.incarnation)
	if ok && pt == fault.CrashMidCollective &&
		w.collSeq == c.faults.CrashCollectiveSite(w.rank, w.step, c.incarnation) {
		w.Crash(pt.String())
	}
}
