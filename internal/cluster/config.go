// Package cluster simulates the multi-GPU platforms the paper evaluates
// on. Workers run as goroutines exchanging real data through rendezvous
// collectives, while a hierarchical α–β cost model advances a simulated
// clock — so convergence experiments see the exact bytes a real cluster
// would move, and performance experiments see the communication times those
// bytes would cost on the modeled interconnect.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"compso/internal/collective"
)

// ErrUnknownPlatform is returned (wrapped) by PlatformByName when no
// registered platform matches the requested name.
var ErrUnknownPlatform = errors.New("cluster: unknown platform")

// Config describes a platform: topology and link parameters.
type Config struct {
	// Name labels the platform in experiment output.
	Name string
	// GPUsPerNode is the number of GPUs sharing one node (and NIC).
	GPUsPerNode int
	// IntraBW is the per-GPU intra-node bandwidth in bytes/second
	// (NVLink).
	IntraBW float64
	// InterBW is the per-node network bandwidth in bytes/second shared by
	// the node's GPUs.
	InterBW float64
	// IntraLatency and InterLatency are per-message α terms in seconds.
	IntraLatency float64
	InterLatency float64
	// CongestionLog degrades effective inter-node bandwidth by this
	// fraction per doubling of the node count beyond one node, modeling
	// switch contention at scale (which the pure α–β model misses and real
	// all-gather micro-benchmarks show).
	CongestionLog float64
	// CollectiveLaunch is the fixed software cost of issuing one
	// collective operation (NCCL/MPI launch path), paid once per
	// collective regardless of size. It is what makes per-layer exchanges
	// of small layers expensive and layer aggregation worthwhile (§4.4).
	CollectiveLaunch float64
	// Collective selects the collective engine policy: "" or "auto"
	// autotunes the step-level algorithm per (collective, message size);
	// "analytic" keeps the legacy closed-form α–β charges; a specific
	// algorithm name ("ring", "recursive-doubling", "binomial",
	// "hierarchical") forces it for the ops that implement it (other ops
	// fall back to autotuning).
	Collective string
}

const gbit = 1e9 / 8 // bytes/second per Gbit/s

// Platform1 models the paper's first cluster: 16 nodes of four NVLink-
// connected A100s on Slingshot-10 (100 Gbps per node).
func Platform1() Config {
	return Config{
		Name:             "Platform1 (Slingshot-10, 100 Gbps)",
		GPUsPerNode:      4,
		IntraBW:          300e9, // NVLink 3.0 effective per-GPU
		InterBW:          100 * gbit,
		IntraLatency:     2e-6,
		InterLatency:     5e-6,
		CongestionLog:    0.25,
		CollectiveLaunch: 5e-5,
	}
}

// Platform2 models the second cluster: the same GPU configuration on
// Slingshot-11 (200 Gbps per node).
func Platform2() Config {
	return Config{
		Name:             "Platform2 (Slingshot-11, 200 Gbps)",
		GPUsPerNode:      4,
		IntraBW:          300e9,
		InterBW:          200 * gbit,
		IntraLatency:     2e-6,
		InterLatency:     5e-6,
		CongestionLog:    0.25,
		CollectiveLaunch: 5e-5,
	}
}

// platformRegistry maps short platform names to constructors. Keys are the
// interconnect generations the paper evaluates.
var platformRegistry = map[string]func() Config{
	"slingshot10": Platform1,
	"slingshot11": Platform2,
}

// Platforms returns the registered platform names in sorted order.
func Platforms() []string {
	names := make([]string, 0, len(platformRegistry))
	for name := range platformRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PlatformByName returns the platform registered under name
// ("slingshot10" → Platform1, "slingshot11" → Platform2). Unknown names
// return an error wrapping ErrUnknownPlatform.
func PlatformByName(name string) (Config, error) {
	ctor, ok := platformRegistry[name]
	if !ok {
		return Config{}, fmt.Errorf("%w %q (have %v)", ErrUnknownPlatform, name, Platforms())
	}
	return ctor(), nil
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.GPUsPerNode <= 0 || c.IntraBW <= 0 || c.InterBW <= 0 {
		return fmt.Errorf("cluster: invalid config %+v", c)
	}
	if c.IntraLatency < 0 || c.InterLatency < 0 {
		return fmt.Errorf("cluster: negative latency in %+v", c)
	}
	if c.CollectiveLaunch < 0 {
		return fmt.Errorf("cluster: negative CollectiveLaunch %g", c.CollectiveLaunch)
	}
	if c.CongestionLog < 0 {
		return fmt.Errorf("cluster: negative CongestionLog %g", c.CongestionLog)
	}
	if !collective.ValidPolicy(c.Collective) {
		return fmt.Errorf("cluster: unknown Collective policy %q", c.Collective)
	}
	return nil
}

// EngineFor builds the step-level collective engine for a platform at
// world size p: the two-tier topology (per-GPU NVLink ports at IntraBW,
// per-node NICs at the full InterBW — contention between a node's GPUs
// emerges from NIC occupancy instead of a pre-divided rate) plus the
// closed-form cost model backing the "analytic" fallback algorithm.
func EngineFor(cfg Config, p int) *collective.Engine {
	topo := &collective.Topology{
		P:           p,
		GPUsPerNode: cfg.GPUsPerNode,
		IntraAlpha:  cfg.IntraLatency,
		IntraBeta:   1 / cfg.IntraBW,
		InterAlpha:  cfg.InterLatency,
		InterBeta:   1 / cfg.InterBW,
		Launch:      cfg.CollectiveLaunch,
	}
	cost := collective.CostModel{
		AllReduce:     func(n int) float64 { return cfg.AllReduceTime(n, p) },
		AllGather:     func(sizes []int) float64 { return cfg.AllGatherVarTime(sizes, p) },
		ReduceScatter: func(n int) float64 { return cfg.ReduceScatterTime(n, p) },
		Broadcast:     func(n int) float64 { return cfg.BroadcastTime(n, p) },
	}
	eng, err := collective.NewEngine(topo, cost, cfg.Collective)
	if err != nil {
		panic(err) // unreachable after Validate
	}
	return eng
}

// EffectiveBandwidth returns the per-GPU bottleneck bandwidth for a
// collective spanning p workers: NVLink when the group fits in one node,
// otherwise the NIC share (the node bandwidth divided across its GPUs,
// which all inject into the same link in a ring schedule).
func (c Config) EffectiveBandwidth(p int) float64 {
	if p <= c.GPUsPerNode {
		return c.IntraBW
	}
	share := c.InterBW / float64(c.GPUsPerNode)
	if share > c.IntraBW {
		share = c.IntraBW
	}
	if c.CongestionLog > 0 {
		nodes := (p + c.GPUsPerNode - 1) / c.GPUsPerNode
		doublings := 0.0
		for n := 1; n < nodes; n <<= 1 {
			doublings++
		}
		share /= 1 + c.CongestionLog*doublings
	}
	return share
}

// Latency returns the α term for a collective spanning p workers.
func (c Config) Latency(p int) float64 {
	if p <= c.GPUsPerNode {
		return c.IntraLatency
	}
	return c.InterLatency
}

// AllReduceTime models a ring all-reduce of n bytes across p workers:
// 2(p−1)/p · n/B + 2(p−1)·α.
func (c Config) AllReduceTime(nBytes int, p int) float64 {
	if p <= 1 || nBytes == 0 {
		return 0
	}
	pf := float64(p)
	return c.CollectiveLaunch + 2*(pf-1)/pf*float64(nBytes)/c.EffectiveBandwidth(p) + 2*(pf-1)*c.Latency(p)
}

// AllGatherTime models a ring all-gather where each worker contributes
// chunkBytes and receives (p−1) chunks: (p−1)·chunk/B + (p−1)·α.
func (c Config) AllGatherTime(chunkBytes int, p int) float64 {
	if p <= 1 || chunkBytes == 0 {
		return 0
	}
	pf := float64(p)
	return c.CollectiveLaunch + (pf-1)*float64(chunkBytes)/c.EffectiveBandwidth(p) + (pf-1)*c.Latency(p)
}

// AllGatherVarTime models an all-gather with per-worker chunk sizes: the
// slowest worker receives totalBytes − ownBytes.
func (c Config) AllGatherVarTime(sizes []int, p int) float64 {
	if p <= 1 || len(sizes) == 0 {
		return 0
	}
	total := 0
	minOwn := sizes[0]
	for _, s := range sizes {
		total += s
		if s < minOwn {
			minOwn = s
		}
	}
	recv := total - minOwn
	if recv <= 0 {
		return 0
	}
	return c.CollectiveLaunch + float64(recv)/c.EffectiveBandwidth(p) + float64(p-1)*c.Latency(p)
}

// ReduceScatterTime models a ring reduce-scatter of n total bytes across p
// workers (each ends with n/p reduced bytes): (p−1)/p · n/B + (p−1)·α.
func (c Config) ReduceScatterTime(nBytes int, p int) float64 {
	if p <= 1 || nBytes == 0 {
		return 0
	}
	pf := float64(p)
	return c.CollectiveLaunch + (pf-1)/pf*float64(nBytes)/c.EffectiveBandwidth(p) + (pf-1)*c.Latency(p)
}

// BroadcastTime models a binomial-tree broadcast of n bytes:
// ceil(log2 p)·(α + n/B).
func (c Config) BroadcastTime(nBytes int, p int) float64 {
	if p <= 1 || nBytes == 0 {
		return 0
	}
	steps := 0
	for v := 1; v < p; v <<= 1 {
		steps++
	}
	return c.CollectiveLaunch + float64(steps)*(c.Latency(p)+float64(nBytes)/c.EffectiveBandwidth(p))
}
