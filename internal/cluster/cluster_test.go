package cluster

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func tinyConfig() Config {
	return Config{Name: "test", GPUsPerNode: 2, IntraBW: 1e9, InterBW: 1e8,
		IntraLatency: 1e-6, InterLatency: 1e-5}
}

func TestPlatformConfigsValid(t *testing.T) {
	for _, cfg := range []Config{Platform1(), Platform2()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	if Platform2().InterBW <= Platform1().InterBW {
		t.Fatal("Platform2 should have more inter-node bandwidth")
	}
}

func TestEffectiveBandwidthHierarchy(t *testing.T) {
	cfg := tinyConfig()
	if got := cfg.EffectiveBandwidth(2); got != cfg.IntraBW {
		t.Fatalf("intra-node BW = %g, want %g", got, cfg.IntraBW)
	}
	if got := cfg.EffectiveBandwidth(4); got != cfg.InterBW/2 {
		t.Fatalf("inter-node BW = %g, want %g", got, cfg.InterBW/2)
	}
}

func TestCollectiveCostsScale(t *testing.T) {
	cfg := Platform1()
	// More bytes → more time; more workers → more time (for fixed chunk).
	if cfg.AllReduceTime(1<<20, 8) >= cfg.AllReduceTime(1<<24, 8) {
		t.Fatal("AllReduceTime not increasing in bytes")
	}
	if cfg.AllGatherTime(1<<20, 8) >= cfg.AllGatherTime(1<<20, 64) {
		t.Fatal("AllGatherTime not increasing in workers")
	}
	if cfg.AllReduceTime(1<<20, 1) != 0 || cfg.AllGatherTime(1<<20, 1) != 0 {
		t.Fatal("single-worker collectives should be free")
	}
	// Platform2's faster network must beat Platform1 beyond one node.
	if Platform2().AllGatherTime(1<<24, 32) >= Platform1().AllGatherTime(1<<24, 32) {
		t.Fatal("Platform2 not faster than Platform1")
	}
}

func TestBroadcastLogSteps(t *testing.T) {
	cfg := tinyConfig()
	t8 := cfg.BroadcastTime(1000, 8)
	t64 := cfg.BroadcastTime(1000, 64)
	// log2(64)/log2(8) = 2 exactly under the tree model.
	if math.Abs(t64/t8-2) > 1e-9 {
		t.Fatalf("broadcast ratio = %g, want 2", t64/t8)
	}
}

func TestAllReduceSums(t *testing.T) {
	c := New(tinyConfig(), 4)
	workers := c.Run(func(w *Worker) {
		data := []float64{float64(w.Rank()), 1}
		w.AllReduce(data, "allreduce")
		if data[0] != 0+1+2+3 || data[1] != 4 {
			panic(fmt.Sprintf("rank %d: allreduce = %v", w.Rank(), data))
		}
	})
	for _, w := range workers {
		if w.Time() <= 0 {
			t.Fatalf("rank %d: no simulated time charged", w.Rank())
		}
		if w.Stats()["allreduce"] <= 0 {
			t.Fatalf("rank %d: no allreduce time", w.Rank())
		}
	}
}

func TestAllGatherOrdersByRank(t *testing.T) {
	c := New(tinyConfig(), 3)
	c.Run(func(w *Worker) {
		payload := []byte{byte(w.Rank() * 10)}
		got := w.AllGather(payload, "allgather")
		if len(got) != 3 {
			panic("wrong gather count")
		}
		for r, buf := range got {
			if len(buf) != 1 || buf[0] != byte(r*10) {
				panic(fmt.Sprintf("rank %d slot %d = %v", w.Rank(), r, buf))
			}
		}
	})
}

func TestAllGatherVariableSizes(t *testing.T) {
	c := New(tinyConfig(), 4)
	c.Run(func(w *Worker) {
		payload := make([]byte, (w.Rank()+1)*100)
		got := w.AllGather(payload, "allgather")
		for r, buf := range got {
			if len(buf) != (r+1)*100 {
				panic(fmt.Sprintf("slot %d has %d bytes", r, len(buf)))
			}
		}
	})
}

func TestBroadcastDeliversRootPayload(t *testing.T) {
	c := New(tinyConfig(), 4)
	c.Run(func(w *Worker) {
		var payload []byte
		if w.Rank() == 2 {
			payload = []byte("root-data")
		}
		got := w.Broadcast(payload, 2, "bcast")
		if string(got) != "root-data" {
			panic(fmt.Sprintf("rank %d got %q", w.Rank(), got))
		}
	})
}

func TestComputeAdvancesClock(t *testing.T) {
	c := New(tinyConfig(), 1)
	workers := c.Run(func(w *Worker) {
		w.Compute(1.5, "forward-backward")
		w.Compute(0.5, "kfac-compute")
	})
	w := workers[0]
	if w.Time() != 2.0 {
		t.Fatalf("time = %g, want 2.0", w.Time())
	}
	if w.Stats()["forward-backward"] != 1.5 {
		t.Fatalf("stats = %v", w.Stats())
	}
}

func TestStragglerDominatesCollectiveStart(t *testing.T) {
	// A collective starts when the slowest worker arrives; fast workers'
	// wait is charged to the collective's category.
	c := New(tinyConfig(), 2)
	workers := c.Run(func(w *Worker) {
		if w.Rank() == 0 {
			w.Compute(1.0, "work")
		}
		w.AllReduce([]float64{1}, "allreduce")
	})
	t0, t1 := workers[0].Time(), workers[1].Time()
	if math.Abs(t0-t1) > 1e-12 {
		t.Fatalf("clocks diverged after collective: %g vs %g", t0, t1)
	}
	if workers[1].Stats()["allreduce"] < 1.0 {
		t.Fatalf("fast worker's wait not charged: %v", workers[1].Stats())
	}
}

func TestBackToBackCollectives(t *testing.T) {
	// Stress the rendezvous drain logic with many consecutive rounds.
	c := New(tinyConfig(), 8)
	var total atomic.Int64
	c.Run(func(w *Worker) {
		for i := 0; i < 200; i++ {
			data := []float64{1}
			w.AllReduce(data, "ar")
			if data[0] != 8 {
				panic("bad sum")
			}
			total.Add(1)
		}
	})
	if total.Load() != 1600 {
		t.Fatalf("completed %d collectives, want 1600", total.Load())
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	c := New(tinyConfig(), 3)
	workers := c.Run(func(w *Worker) {
		w.Compute(float64(w.Rank()), "work")
		w.Barrier()
	})
	for _, w := range workers {
		if w.Time() != 2.0 {
			t.Fatalf("rank %d time %g, want 2.0", w.Rank(), w.Time())
		}
	}
}

func TestMergeStats(t *testing.T) {
	c := New(tinyConfig(), 2)
	workers := c.Run(func(w *Worker) {
		w.Compute(1, "a")
		w.Compute(2, "b")
	})
	merged, keys := MergeStats(workers)
	if merged["a"] != 2 || merged["b"] != 4 {
		t.Fatalf("merged = %v", merged)
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{}, 2)
}

func TestReduceScatterShards(t *testing.T) {
	c := New(tinyConfig(), 4)
	c.Run(func(w *Worker) {
		data := make([]float64, 10)
		for i := range data {
			data[i] = float64(i)
		}
		shard := w.ReduceScatter(data, "rs")
		// Sum across 4 workers = 4*i; rank r gets its contiguous shard.
		wantLen := 2
		if w.Rank() == 3 {
			wantLen = 4 // remainder absorbed by the last rank
		}
		if len(shard) != wantLen {
			panic(fmt.Sprintf("rank %d shard length %d", w.Rank(), len(shard)))
		}
		base := w.Rank() * 2
		for i, v := range shard {
			if v != float64(4*(base+i)) {
				panic(fmt.Sprintf("rank %d shard[%d] = %g", w.Rank(), i, v))
			}
		}
	})
}

func TestReduceScatterTimeModel(t *testing.T) {
	cfg := Platform1()
	if cfg.ReduceScatterTime(1<<20, 1) != 0 {
		t.Fatal("single-worker reduce-scatter should be free")
	}
	if cfg.ReduceScatterTime(1<<24, 64) <= cfg.ReduceScatterTime(1<<20, 64) {
		t.Fatal("reduce-scatter time not increasing in bytes")
	}
	// Reduce-scatter moves half of an all-reduce's volume.
	if cfg.ReduceScatterTime(1<<24, 64) >= cfg.AllReduceTime(1<<24, 64) {
		t.Fatal("reduce-scatter should cost less than all-reduce")
	}
}
