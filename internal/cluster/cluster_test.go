package cluster

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func tinyConfig() Config {
	return Config{Name: "test", GPUsPerNode: 2, IntraBW: 1e9, InterBW: 1e8,
		IntraLatency: 1e-6, InterLatency: 1e-5}
}

func TestPlatformConfigsValid(t *testing.T) {
	for _, cfg := range []Config{Platform1(), Platform2()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	if Platform2().InterBW <= Platform1().InterBW {
		t.Fatal("Platform2 should have more inter-node bandwidth")
	}
}

func TestEffectiveBandwidthHierarchy(t *testing.T) {
	cfg := tinyConfig()
	if got := cfg.EffectiveBandwidth(2); got != cfg.IntraBW {
		t.Fatalf("intra-node BW = %g, want %g", got, cfg.IntraBW)
	}
	if got := cfg.EffectiveBandwidth(4); got != cfg.InterBW/2 {
		t.Fatalf("inter-node BW = %g, want %g", got, cfg.InterBW/2)
	}
}

func TestCollectiveCostsScale(t *testing.T) {
	cfg := Platform1()
	// More bytes → more time; more workers → more time (for fixed chunk).
	if cfg.AllReduceTime(1<<20, 8) >= cfg.AllReduceTime(1<<24, 8) {
		t.Fatal("AllReduceTime not increasing in bytes")
	}
	if cfg.AllGatherTime(1<<20, 8) >= cfg.AllGatherTime(1<<20, 64) {
		t.Fatal("AllGatherTime not increasing in workers")
	}
	if cfg.AllReduceTime(1<<20, 1) != 0 || cfg.AllGatherTime(1<<20, 1) != 0 {
		t.Fatal("single-worker collectives should be free")
	}
	// Platform2's faster network must beat Platform1 beyond one node.
	if Platform2().AllGatherTime(1<<24, 32) >= Platform1().AllGatherTime(1<<24, 32) {
		t.Fatal("Platform2 not faster than Platform1")
	}
}

func TestBroadcastLogSteps(t *testing.T) {
	cfg := tinyConfig()
	t8 := cfg.BroadcastTime(1000, 8)
	t64 := cfg.BroadcastTime(1000, 64)
	// log2(64)/log2(8) = 2 exactly under the tree model.
	if math.Abs(t64/t8-2) > 1e-9 {
		t.Fatalf("broadcast ratio = %g, want 2", t64/t8)
	}
}

func TestAllReduceSums(t *testing.T) {
	c := New(tinyConfig(), 4)
	workers := c.Run(func(w *Worker) {
		data := []float64{float64(w.Rank()), 1}
		w.AllReduce(data, "allreduce")
		if data[0] != 0+1+2+3 || data[1] != 4 {
			panic(fmt.Sprintf("rank %d: allreduce = %v", w.Rank(), data))
		}
	})
	for _, w := range workers {
		if w.Time() <= 0 {
			t.Fatalf("rank %d: no simulated time charged", w.Rank())
		}
		if w.Stats()["allreduce"] <= 0 {
			t.Fatalf("rank %d: no allreduce time", w.Rank())
		}
	}
}

func TestAllGatherOrdersByRank(t *testing.T) {
	c := New(tinyConfig(), 3)
	c.Run(func(w *Worker) {
		payload := []byte{byte(w.Rank() * 10)}
		got := w.AllGather(payload, "allgather")
		if len(got) != 3 {
			panic("wrong gather count")
		}
		for r, buf := range got {
			if len(buf) != 1 || buf[0] != byte(r*10) {
				panic(fmt.Sprintf("rank %d slot %d = %v", w.Rank(), r, buf))
			}
		}
	})
}

func TestAllGatherVariableSizes(t *testing.T) {
	c := New(tinyConfig(), 4)
	c.Run(func(w *Worker) {
		payload := make([]byte, (w.Rank()+1)*100)
		got := w.AllGather(payload, "allgather")
		for r, buf := range got {
			if len(buf) != (r+1)*100 {
				panic(fmt.Sprintf("slot %d has %d bytes", r, len(buf)))
			}
		}
	})
}

func TestBroadcastDeliversRootPayload(t *testing.T) {
	c := New(tinyConfig(), 4)
	c.Run(func(w *Worker) {
		var payload []byte
		if w.Rank() == 2 {
			payload = []byte("root-data")
		}
		got := w.Broadcast(payload, 2, "bcast")
		if string(got) != "root-data" {
			panic(fmt.Sprintf("rank %d got %q", w.Rank(), got))
		}
	})
}

func TestComputeAdvancesClock(t *testing.T) {
	c := New(tinyConfig(), 1)
	workers := c.Run(func(w *Worker) {
		w.Compute(1.5, "forward-backward")
		w.Compute(0.5, "kfac-compute")
	})
	w := workers[0]
	if w.Time() != 2.0 {
		t.Fatalf("time = %g, want 2.0", w.Time())
	}
	if w.Stats()["forward-backward"] != 1.5 {
		t.Fatalf("stats = %v", w.Stats())
	}
}

func TestStragglerDominatesCollectiveStart(t *testing.T) {
	// A collective starts when the slowest worker arrives; fast workers'
	// wait is charged to the collective's category.
	c := New(tinyConfig(), 2)
	workers := c.Run(func(w *Worker) {
		if w.Rank() == 0 {
			w.Compute(1.0, "work")
		}
		w.AllReduce([]float64{1}, "allreduce")
	})
	t0, t1 := workers[0].Time(), workers[1].Time()
	if math.Abs(t0-t1) > 1e-12 {
		t.Fatalf("clocks diverged after collective: %g vs %g", t0, t1)
	}
	if workers[1].Stats()["allreduce"] < 1.0 {
		t.Fatalf("fast worker's wait not charged: %v", workers[1].Stats())
	}
}

func TestBackToBackCollectives(t *testing.T) {
	// Stress the rendezvous drain logic with many consecutive rounds.
	c := New(tinyConfig(), 8)
	var total atomic.Int64
	c.Run(func(w *Worker) {
		for i := 0; i < 200; i++ {
			data := []float64{1}
			w.AllReduce(data, "ar")
			if data[0] != 8 {
				panic("bad sum")
			}
			total.Add(1)
		}
	})
	if total.Load() != 1600 {
		t.Fatalf("completed %d collectives, want 1600", total.Load())
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	c := New(tinyConfig(), 3)
	workers := c.Run(func(w *Worker) {
		w.Compute(float64(w.Rank()), "work")
		w.Barrier()
	})
	for _, w := range workers {
		if w.Time() != 2.0 {
			t.Fatalf("rank %d time %g, want 2.0", w.Rank(), w.Time())
		}
	}
}

func TestMergeStats(t *testing.T) {
	c := New(tinyConfig(), 2)
	workers := c.Run(func(w *Worker) {
		w.Compute(1, "a")
		w.Compute(2, "b")
	})
	merged, keys := MergeStats(workers)
	if merged["a"] != 2 || merged["b"] != 4 {
		t.Fatalf("merged = %v", merged)
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{}, 2)
}

func TestReduceScatterShards(t *testing.T) {
	c := New(tinyConfig(), 4)
	c.Run(func(w *Worker) {
		data := make([]float64, 10)
		for i := range data {
			data[i] = float64(i)
		}
		shard := w.ReduceScatter(data, "rs")
		// Sum across 4 workers = 4*i; rank r gets its contiguous shard.
		wantLen := 2
		if w.Rank() == 3 {
			wantLen = 4 // remainder absorbed by the last rank
		}
		if len(shard) != wantLen {
			panic(fmt.Sprintf("rank %d shard length %d", w.Rank(), len(shard)))
		}
		base := w.Rank() * 2
		for i, v := range shard {
			if v != float64(4*(base+i)) {
				panic(fmt.Sprintf("rank %d shard[%d] = %g", w.Rank(), i, v))
			}
		}
	})
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := tinyConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"valid analytic policy", func(c *Config) { c.Collective = "analytic" }, true},
		{"valid forced hierarchical", func(c *Config) { c.Collective = "hierarchical" }, true},
		{"valid auto policy", func(c *Config) { c.Collective = "auto" }, true},
		{"zero GPUs per node", func(c *Config) { c.GPUsPerNode = 0 }, false},
		{"zero intra BW", func(c *Config) { c.IntraBW = 0 }, false},
		{"zero inter BW", func(c *Config) { c.InterBW = 0 }, false},
		{"negative intra latency", func(c *Config) { c.IntraLatency = -1e-6 }, false},
		{"negative inter latency", func(c *Config) { c.InterLatency = -1e-6 }, false},
		{"negative collective launch", func(c *Config) { c.CollectiveLaunch = -1e-5 }, false},
		{"negative congestion log", func(c *Config) { c.CongestionLog = -0.25 }, false},
		{"unknown collective policy", func(c *Config) { c.Collective = "warp-speed" }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("config accepted: %+v", cfg)
			}
		})
	}
}

func TestRendezvousStressMixedCollectives(t *testing.T) {
	// P workers issue many back-to-back mixed collectives; clocks must be
	// monotone and every rank must decode bit-identical data. Run under
	// -race in CI.
	const p = 8
	const rounds = 60
	c := New(tinyConfig(), p)
	type roundData struct {
		sum     float64
		gather  string
		bcast   string
		shardOK bool
	}
	perRank := make([][]roundData, p)
	workers := c.Run(func(w *Worker) {
		log := make([]roundData, 0, rounds)
		last := w.Time()
		check := func() {
			if w.Time() < last {
				panic(fmt.Sprintf("rank %d clock went backwards: %g -> %g", w.Rank(), last, w.Time()))
			}
			last = w.Time()
		}
		for i := 0; i < rounds; i++ {
			var rd roundData

			vec := []float64{float64(w.Rank()*i) + 0.25, 1}
			w.AllReduce(vec, "ar")
			rd.sum = vec[0] + vec[1]
			check()

			payload := make([]byte, (w.Rank()*13+i)%29)
			for j := range payload {
				payload[j] = byte(w.Rank() + i + j)
			}
			parts := w.AllGather(payload, "ag")
			var cat []byte
			for _, part := range parts {
				cat = append(cat, part...)
			}
			rd.gather = string(cat)
			check()

			root := i % p
			var b []byte
			if w.Rank() == root {
				b = []byte(fmt.Sprintf("round-%d", i))
			}
			rd.bcast = string(w.Broadcast(b, root, "bc"))
			check()

			data := make([]float64, 4*p+3)
			for j := range data {
				data[j] = float64(j + w.Rank())
			}
			// Each rank owns a different contiguous shard; verify it
			// against the closed-form reduction sum_r (j+r) = p*j + p(p-1)/2
			// rather than comparing shards across ranks.
			shard := w.ReduceScatter(data, "rs")
			off := w.Rank() * (len(data) / p)
			rd.shardOK = true
			for k, v := range shard {
				want := float64(p*(off+k)) + float64(p*(p-1))/2
				if v != want {
					rd.shardOK = false
				}
			}
			if !rd.shardOK {
				panic(fmt.Sprintf("rank %d round %d: bad reduce-scatter shard", w.Rank(), i))
			}
			check()

			if i%7 == 0 {
				w.Barrier()
				check()
			}
			if i%5 == 0 {
				peer := w.Rank() ^ 1
				got := w.SendRecv(peer, []byte{byte(w.Rank())}, "p2p")
				if len(got) != 1 || got[0] != byte(peer) {
					panic(fmt.Sprintf("rank %d SendRecv got %v", w.Rank(), got))
				}
				check()
			}
			log = append(log, rd)
		}
		perRank[w.Rank()] = log
	})
	for r := 1; r < p; r++ {
		if len(perRank[r]) != rounds {
			t.Fatalf("rank %d logged %d rounds", r, len(perRank[r]))
		}
		for i := range perRank[r] {
			if perRank[r][i] != perRank[0][i] {
				t.Fatalf("rank %d round %d diverged: %+v vs %+v", r, i, perRank[r][i], perRank[0][i])
			}
		}
	}
	for _, w := range workers {
		if w.Time() <= 0 {
			t.Fatalf("rank %d: no simulated time", w.Rank())
		}
	}
}

func TestSendRecvExchangesAndCharges(t *testing.T) {
	cfg := tinyConfig() // 2 GPUs/node: ranks 0,1 co-located; 2 is remote
	c := New(cfg, 3)
	workers := c.Run(func(w *Worker) {
		switch w.Rank() {
		case 0:
			got := w.SendRecv(1, []byte("from-0"), "intra")
			if string(got) != "from-1" {
				panic(fmt.Sprintf("rank 0 got %q", got))
			}
			got = w.SendRecv(2, []byte("cross"), "inter")
			if string(got) != "cross-back" {
				panic(fmt.Sprintf("rank 0 got %q", got))
			}
		case 1:
			if got := w.SendRecv(0, []byte("from-1"), "intra"); string(got) != "from-0" {
				panic(fmt.Sprintf("rank 1 got %q", got))
			}
		case 2:
			if got := w.SendRecv(0, []byte("cross-back"), "inter"); string(got) != "cross" {
				panic(fmt.Sprintf("rank 2 got %q", got))
			}
		}
	})
	w0 := workers[0]
	if w0.Stats()["intra"] <= 0 || w0.Stats()["inter"] <= 0 {
		t.Fatalf("stats not charged: %v", w0.Stats())
	}
	// The inter-node hop is slower than the intra-node one for equal-ish
	// bytes on this config.
	if w0.Stats()["inter"] <= w0.Stats()["intra"] {
		t.Fatalf("inter %g not above intra %g", w0.Stats()["inter"], w0.Stats()["intra"])
	}
	if w0.SendRecv(0, []byte("self"), "self") == nil {
		t.Fatal("self SendRecv dropped payload")
	}
}

func TestAlgStatsAndEventTrace(t *testing.T) {
	c := New(tinyConfig(), 4)
	workers := c.Run(func(w *Worker) {
		w.AllReduce(make([]float64, 256), "ar")
		w.AllGather(make([]byte, 128), "ag")
	})
	for _, w := range workers {
		if len(w.AlgSeconds()) == 0 {
			t.Fatalf("rank %d: no per-algorithm stats", w.Rank())
		}
		for k, v := range w.AlgSeconds() {
			if v < 0 {
				t.Fatalf("rank %d: negative alg time %s=%g", w.Rank(), k, v)
			}
		}
		if len(w.Events()) == 0 || w.TotalEvents() == 0 {
			t.Fatalf("rank %d: no event trace", w.Rank())
		}
		for _, ev := range w.Events() {
			if ev.Src != w.Rank() && ev.Dst != w.Rank() && ev.Src >= 0 {
				t.Fatalf("rank %d trace holds foreign event %+v", w.Rank(), ev)
			}
		}
	}
	merged := MergeAlgStats(workers)
	if len(merged) == 0 {
		t.Fatal("MergeAlgStats empty")
	}
}

func TestAnalyticPolicyKeepsClosedFormCharges(t *testing.T) {
	cfg := tinyConfig()
	cfg.Collective = "analytic"
	c := New(cfg, 4)
	workers := c.Run(func(w *Worker) {
		w.AllReduce(make([]float64, 1024), "ar")
	})
	want := cfg.AllReduceTime(4*1024, 4)
	for _, w := range workers {
		if math.Abs(w.Time()-want) > 1e-15 {
			t.Fatalf("rank %d analytic time %g, want %g", w.Rank(), w.Time(), want)
		}
	}
}

func TestEngineAccessor(t *testing.T) {
	c := New(Platform1(), 16)
	alg, sec := c.Engine().PredictAllReduce(1 << 20)
	if alg == "" || sec <= 0 {
		t.Fatalf("predict = %q, %g", alg, sec)
	}
}

func TestReduceScatterTimeModel(t *testing.T) {
	cfg := Platform1()
	if cfg.ReduceScatterTime(1<<20, 1) != 0 {
		t.Fatal("single-worker reduce-scatter should be free")
	}
	if cfg.ReduceScatterTime(1<<24, 64) <= cfg.ReduceScatterTime(1<<20, 64) {
		t.Fatal("reduce-scatter time not increasing in bytes")
	}
	// Reduce-scatter moves half of an all-reduce's volume.
	if cfg.ReduceScatterTime(1<<24, 64) >= cfg.AllReduceTime(1<<24, 64) {
		t.Fatal("reduce-scatter should cost less than all-reduce")
	}
}

// BenchmarkRendezvousBarrier measures the raw rendezvous round-trip at
// P=64: every iteration is one payload-free barrier round across all 64
// goroutines. This is the wakeup-cost benchmark for the phase-counted
// arrival barrier (vs the previous sync.Cond.Broadcast rendezvous).
func BenchmarkRendezvousBarrier(b *testing.B) {
	benchRendezvous(b, 64, func(w *Worker, rounds int) {
		for i := 0; i < rounds; i++ {
			w.Barrier()
		}
	})
}

// BenchmarkRendezvousAllReduce measures a small all-reduce per round at
// P=64 — the rendezvous plus one engine-scheduled collective, the shape
// of the training loop's hot path.
func BenchmarkRendezvousAllReduce(b *testing.B) {
	benchRendezvous(b, 64, func(w *Worker, rounds int) {
		data := make([]float64, 64)
		for i := 0; i < rounds; i++ {
			w.AllReduce(data, "bench")
		}
	})
}

func benchRendezvous(b *testing.B, p int, fn func(w *Worker, rounds int)) {
	cfg := tinyConfig()
	b.ReportAllocs()
	b.ResetTimer()
	c := New(cfg, p)
	c.Run(func(w *Worker) {
		w.DisableTrace()
		fn(w, b.N)
	})
}
