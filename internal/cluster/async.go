package cluster

import (
	"compso/internal/collective"
	"compso/internal/pool"
)

// Non-blocking collective handles for the compute/communication overlap
// scheduler (internal/train/overlap.go).
//
// The launch/wait contract:
//
//   - Launch (AllReduceAsync / AllGatherAsync) performs the rendezvous and
//     the engine scheduling immediately — every rank must reach the launch
//     in identical program order, exactly like the blocking calls, and the
//     exchanged bytes are identical to the blocking calls'. Launch never
//     advances the worker's clock.
//   - Wait performs the time accounting the blocking call would have done
//     (note + account), at the worker's *current* clock. A collective
//     whose scheduled end the clock has already passed charges nothing:
//     its latency was fully hidden behind the compute issued between
//     launch and wait. Wait is idempotent; every handle must be waited
//     exactly once per rank, in any per-rank order.
//   - With Cluster.SerializeWire enabled, collectives launched while
//     earlier ones are still in flight queue on the simulated fabric
//     instead of being scheduled as if each had the links to itself.
//
// Because the data exchange happens at launch under the rendezvous (all
// ranks blocked), the numerics are bit-identical to the blocking calls —
// only the accounting moment differs.

// PendingReduce is an all-reduce in flight: launched, scheduled, but not
// yet charged to the worker's clock.
type PendingReduce struct {
	w        *Worker
	out      *collective.Outcome
	tEnd     float64
	launch   float64
	category string
	dst      []float64
	sum      []float64
	done     bool
}

// AllReduceAsync launches an element-wise sum of data across all workers
// and returns a handle; the summed values land in data at Wait. The input
// is read only during the launch rendezvous (all ranks blocked), so pooled
// buffers are safe here — unlike AllGather/Broadcast payloads, nothing
// retains it afterwards.
func (w *Worker) AllReduceAsync(data []float64, category string) *PendingReduce {
	w.enterCollective()
	c := w.cluster
	res, tEnd := c.rv.exchange(w.rank, w.simTime, data, func(slots []any, times []float64) ([]any, []float64) {
		vecs := make([][]float64, len(slots))
		for i, s := range slots {
			vecs[i] = s.([]float64)
		}
		sum, out := c.engine.AllReduce(vecs, c.wireStarts(times))
		c.advanceWire(out)
		return sameForAll(c.p, collResult{data: sum, out: out}), out.Ends
	})
	cr := res.(collResult)
	return &PendingReduce{
		w: w, out: cr.out, tEnd: tEnd, launch: w.simTime, category: category,
		dst: data, sum: cr.data.([]float64),
	}
}

// Wait copies the reduced sum into the launch slice and charges the
// exposed (non-hidden) communication time to the worker's clock.
func (p *PendingReduce) Wait() {
	if p.done {
		return
	}
	p.done = true
	copy(p.dst, p.sum)
	p.w.note(p.out, p.tEnd, p.category)
	p.w.creditHidden(p.tEnd, p.launch)
	p.w.account(p.tEnd, p.category)
}

// PendingGather is an all-gather in flight: launched, scheduled, but not
// yet charged to the worker's clock.
type PendingGather struct {
	w        *Worker
	out      *collective.Outcome
	tEnd     float64
	launch   float64
	category string
	data     [][]byte
	done     bool
}

// AllGatherAsync launches a byte-payload all-gather (payloads may be
// empty) and returns a handle; Wait returns all payloads in rank order.
// The payload is retained by other workers' goroutines after the launch,
// so it must never come from the pool arena.
func (w *Worker) AllGatherAsync(payload []byte, category string) *PendingGather {
	w.enterCollective()
	pool.AssertNotArena(payload, "AllGatherAsync payload")
	c := w.cluster
	res, tEnd := c.rv.exchange(w.rank, w.simTime, payload, func(slots []any, times []float64) ([]any, []float64) {
		payloads := make([][]byte, len(slots))
		for i, s := range slots {
			payloads[i], _ = s.([]byte)
		}
		data, out := c.engine.AllGather(payloads, c.wireStarts(times))
		c.advanceWire(out)
		return sameForAll(c.p, collResult{data: data, out: out}), out.Ends
	})
	cr := res.(collResult)
	return &PendingGather{
		w: w, out: cr.out, tEnd: tEnd, launch: w.simTime, category: category,
		data: cr.data.([][]byte),
	}
}

// Wait returns every rank's payload and charges the exposed (non-hidden)
// communication time to the worker's clock.
func (p *PendingGather) Wait() [][]byte {
	if !p.done {
		p.done = true
		p.w.note(p.out, p.tEnd, p.category)
		p.w.creditHidden(p.tEnd, p.launch)
		p.w.account(p.tEnd, p.category)
	}
	return p.data
}

// creditHidden tops commFull up from the charged (exposed) interval to
// the collective's full launch-to-end latency — the hidden share an async
// wait never charges to the clock. Must run after note (which added the
// exposed share) and before account (which advances the clock).
func (w *Worker) creditHidden(tEnd, launch float64) {
	full := tEnd - launch
	if full < 0 {
		full = 0
	}
	charged := tEnd - w.simTime
	if charged < 0 {
		charged = 0
	}
	if full > charged {
		w.commFull += full - charged
	}
}
