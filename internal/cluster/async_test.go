package cluster

import (
	"fmt"
	"math"
	"testing"

	"compso/internal/pool"
)

// TestAllReduceAsyncMatchesSync: launch + immediate wait must reproduce
// the blocking call exactly — values, clock, and per-algorithm stats.
func TestAllReduceAsyncMatchesSync(t *testing.T) {
	run := func(async bool) ([]float64, float64, map[string]float64) {
		c := New(tinyConfig(), 4)
		var data []float64
		var tEnd float64
		var alg map[string]float64
		ws := c.Run(func(w *Worker) {
			d := make([]float64, 1000)
			for i := range d {
				d[i] = float64(w.Rank()*1000 + i)
			}
			if async {
				w.AllReduceAsync(d, "x").Wait()
			} else {
				w.AllReduce(d, "x")
			}
			if w.Rank() == 0 {
				data, tEnd, alg = d, w.Time(), w.AlgSeconds()
			}
		})
		_ = ws
		return data, tEnd, alg
	}
	sd, st, salg := run(false)
	ad, at, aalg := run(true)
	for i := range sd {
		if sd[i] != ad[i] {
			t.Fatalf("value %d differs: %v vs %v", i, sd[i], ad[i])
		}
	}
	if st != at {
		t.Fatalf("clock differs: sync %v vs async %v", st, at)
	}
	for k, v := range salg {
		if aalg[k] != v {
			t.Fatalf("AlgSeconds[%s] differs: %v vs %v", k, v, aalg[k])
		}
	}
}

// TestAllGatherAsyncMatchesSync: same contract for the byte all-gather,
// including empty payloads.
func TestAllGatherAsyncMatchesSync(t *testing.T) {
	run := func(async bool) ([][]byte, float64) {
		c := New(tinyConfig(), 4)
		var parts [][]byte
		var tEnd float64
		c.Run(func(w *Worker) {
			var payload []byte
			if w.Rank()%2 == 0 { // odd ranks gather empty payloads
				payload = []byte(fmt.Sprintf("rank-%d-data", w.Rank()))
			}
			var got [][]byte
			if async {
				got = w.AllGatherAsync(payload, "x").Wait()
			} else {
				got = w.AllGather(payload, "x")
			}
			if w.Rank() == 0 {
				parts, tEnd = got, w.Time()
			}
		})
		return parts, tEnd
	}
	sp, st := run(false)
	ap, at := run(true)
	if st != at {
		t.Fatalf("clock differs: sync %v vs async %v", st, at)
	}
	for r := range sp {
		if string(sp[r]) != string(ap[r]) {
			t.Fatalf("rank %d payload differs: %q vs %q", r, sp[r], ap[r])
		}
	}
}

// TestAsyncHiddenCommChargesZero: a collective whose scheduled end the
// clock has already passed must charge nothing at Wait — its latency was
// fully hidden — and the exposed/total overlap stats must reflect it.
func TestAsyncHiddenCommChargesZero(t *testing.T) {
	c := New(tinyConfig(), 2)
	c.Run(func(w *Worker) {
		d := make([]float64, 1<<16)
		p := w.AllReduceAsync(d, "x")
		w.Compute(1e6, "hide") // vastly longer than any collective here
		before := w.Time()
		p.Wait()
		if w.Time() != before {
			panic(fmt.Sprintf("rank %d: hidden wait advanced the clock %v -> %v", w.Rank(), before, w.Time()))
		}
		exposed, total := w.OverlapStats()
		if exposed != 0 {
			panic(fmt.Sprintf("rank %d: hidden collective charged %v exposed seconds", w.Rank(), exposed))
		}
		if total <= 0 {
			panic(fmt.Sprintf("rank %d: no collective span accumulated", w.Rank()))
		}
	})
}

// TestAsyncWaitIdempotent: double Wait charges once and keeps the data.
func TestAsyncWaitIdempotent(t *testing.T) {
	c := New(tinyConfig(), 2)
	c.Run(func(w *Worker) {
		d := []float64{1, 2}
		p := w.AllReduceAsync(d, "x")
		p.Wait()
		after := w.Time()
		p.Wait()
		if w.Time() != after {
			panic("second Wait advanced the clock")
		}
		if d[0] != 2 || d[1] != 4 {
			panic(fmt.Sprintf("sum lost after double Wait: %v", d))
		}
	})
}

// TestSerializeWireQueuesInFlightCollectives: with wire serialization on,
// a second collective launched while the first is still in flight starts
// after it on the fabric, so the overlapped run's exposed comm time can
// never beat the physical back-to-back schedule.
func TestSerializeWireQueuesInFlightCollectives(t *testing.T) {
	run := func(serialize bool) float64 {
		c := New(tinyConfig(), 4)
		c.SerializeWire(serialize)
		var end float64
		c.Run(func(w *Worker) {
			a := make([]float64, 1<<18)
			b := make([]float64, 1<<18)
			pa := w.AllReduceAsync(a, "x")
			pb := w.AllReduceAsync(b, "x")
			pa.Wait()
			pb.Wait()
			if w.Rank() == 0 {
				end = w.Time()
			}
		})
		return end
	}
	free, queued := run(false), run(true)
	if queued <= free {
		t.Fatalf("serialized schedule %v not later than free-fabric schedule %v", queued, free)
	}
	if math.IsNaN(queued) || math.IsInf(queued, 0) {
		t.Fatalf("non-finite serialized schedule %v", queued)
	}
}

// TestSerializeWireOffLeavesSyncPathUntouched: the default (off) must keep
// blocking collectives on the exact pre-overlap timeline — per-rank early
// finishers may legitimately arrive at the next collective "under" a
// previous one's max end, and no cursor may clamp them.
func TestSerializeWireOffLeavesSyncPathUntouched(t *testing.T) {
	run := func() float64 {
		c := New(tinyConfig(), 4)
		var end float64
		c.Run(func(w *Worker) {
			d := make([]float64, 1<<14)
			for i := 0; i < 4; i++ {
				w.AllReduce(d, "x")
				w.Compute(1e-6*float64(w.Rank()), "skew")
			}
			if w.Rank() == 0 {
				end = w.Time()
			}
		})
		return end
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("sync path nondeterministic: %v vs %v", a, b)
	}
}

// TestAsyncGatherRejectsArenaPayloads: the launch boundary must enforce
// the retention contract under pool debug mode — gathered payloads are
// retained by other goroutines, so arena buffers may never enter them.
func TestAsyncGatherRejectsArenaPayloads(t *testing.T) {
	pool.SetDebug(true)
	defer pool.SetDebug(false)
	b := pool.Bytes(64)
	var panicked bool
	c := New(tinyConfig(), 1)
	c.Run(func(w *Worker) {
		defer func() { panicked = recover() != nil }()
		w.AllGatherAsync(b, "x")
	})
	if !panicked {
		t.Fatal("AllGatherAsync accepted a live arena payload")
	}
	pool.PutBytes(b)
}
