package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// rendezvous is a reusable payload-carrying barrier: all P workers arrive
// with a payload, the last arriver runs the combine function (producing a
// per-rank result and per-rank completion time), everyone leaves with its
// own.
//
// The implementation is a phase-counted arrival barrier with two
// generation-parity round slots. An arriving rank writes its own slot and
// counts down on the round's atomic arrival counter; every rank except
// the last parks on the round's gate channel, and only the last arriver —
// the combiner — does any work: it runs the combine, re-arms the parity
// slot for the round after next, and releases the waiters with a single
// channel close. Compared to the previous sync.Cond design this removes
// both per-round Broadcasts (arrival and drain) and the thundering-herd
// mutex reacquisition every woken waiter paid; the only O(P) cost left is
// the runtime making P−1 parked goroutines runnable, which is the
// physical minimum for a barrier.
//
// Double-buffered rounds make the explicit drain phase unnecessary: a
// rank leaving round g can immediately enter round g+1, which uses the
// other parity slot. It cannot reach round g+2 (same parity as g) before
// every rank has arrived at g+1, which in turn requires every rank to
// have left g — so a parity slot is never reused while any rank still
// reads it. All cross-round publication is ordered by the arrival
// counter's atomic operations and the gate channel close.
type rendezvous struct {
	n      int
	gens   []uint64 // per-rank round counters (SPMD program order keeps them in agreement)
	rounds [2]*rvRound

	// down, once set, permanently poisons the rendezvous: every current
	// and future waiter unwinds with this *LostPanic (worker-loss
	// detection at the synchronization point).
	down     atomic.Pointer[LostPanic]
	downOnce sync.Once
	downCh   chan struct{}
}

// rvRound is one generation-parity slot of the barrier.
type rvRound struct {
	arrived atomic.Int32
	slots   []any
	times   []float64
	results []any
	tEnds   []float64
	gate    chan struct{}
}

func newRendezvous(n int) *rendezvous {
	r := &rendezvous{n: n, gens: make([]uint64, n), downCh: make(chan struct{})}
	for i := range r.rounds {
		r.rounds[i] = &rvRound{
			slots: make([]any, n),
			times: make([]float64, n),
			gate:  make(chan struct{}),
		}
	}
	return r
}

func (r *rendezvous) exchange(rank int, t float64, payload any,
	combine func(slots []any, times []float64) ([]any, []float64)) (any, float64) {
	if p := r.down.Load(); p != nil {
		panic(p)
	}
	g := r.gens[rank]
	r.gens[rank] = g + 1
	rd := r.rounds[g&1]
	rd.slots[rank] = payload
	rd.times[rank] = t
	// Capture the gate before counting in: the combiner re-arms rd.gate
	// for round g+2 as soon as the count completes.
	gate := rd.gate
	if int(rd.arrived.Add(1)) == r.n {
		// Combiner: every rank has arrived, their slot writes are ordered
		// before this point by the arrival counter.
		results, tEnds := combine(rd.slots, rd.times)
		if len(results) != r.n || len(tEnds) != r.n {
			panic(fmt.Sprintf("cluster: combine returned %d results, %d times for %d ranks",
				len(results), len(tEnds), r.n))
		}
		rd.results, rd.tEnds = results, tEnds
		// Re-arm this parity for round g+2 before opening the gate; round
		// g+2 cannot begin until every rank has passed through g+1, so no
		// one reads the fresh gate or counter early.
		rd.arrived.Store(0)
		rd.gate = make(chan struct{})
		close(gate)
	} else {
		select {
		case <-gate:
		case <-r.downCh:
			// A peer died. If the round nevertheless completed (the close
			// raced the poison), leave with the result — the exchange
			// finished before the loss surfaced here.
			select {
			case <-gate:
			default:
				panic(r.down.Load())
			}
		}
	}
	return rd.results[rank], rd.tEnds[rank]
}

// poison marks the rendezvous permanently down and wakes every waiter.
func (r *rendezvous) poison(rank, step int, point string) {
	r.down.CompareAndSwap(nil, &LostPanic{Rank: rank, Step: step, Point: point})
	r.downOnce.Do(func() { close(r.downCh) })
}

// poisoned reports whether a peer is down, and the panic value survivors
// unwind with.
func (r *rendezvous) poisoned() (bool, *LostPanic) {
	p := r.down.Load()
	return p != nil, p
}
