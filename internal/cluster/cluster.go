package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Cluster executes an SPMD function on P simulated workers (goroutines).
// Collectives exchange real data and advance every participant's simulated
// clock by the cost model's estimate. Workers must issue collectives in
// identical order (the SPMD contract).
type Cluster struct {
	cfg Config
	p   int
	rv  *rendezvous
}

// New creates a cluster of p workers on the given platform. It panics on an
// invalid configuration, which is a programming error in experiment setup.
func New(cfg Config, p int) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if p <= 0 {
		panic(fmt.Sprintf("cluster: %d workers", p))
	}
	return &Cluster{cfg: cfg, p: p, rv: newRendezvous(p)}
}

// Config returns the platform configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Size returns the number of workers.
func (c *Cluster) Size() int { return c.p }

// Run executes fn on every worker concurrently and blocks until all
// return. It returns the workers in rank order for post-run inspection
// (simulated time, per-category stats).
func (c *Cluster) Run(fn func(w *Worker)) []*Worker {
	workers := make([]*Worker, c.p)
	var wg sync.WaitGroup
	for rank := 0; rank < c.p; rank++ {
		workers[rank] = &Worker{cluster: c, rank: rank, stats: make(map[string]float64)}
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			fn(w)
		}(workers[rank])
	}
	wg.Wait()
	return workers
}

// Worker is one simulated GPU. Methods must be called only from the
// goroutine Run assigned to it.
type Worker struct {
	cluster *Cluster
	rank    int
	simTime float64
	stats   map[string]float64
}

// Rank returns the worker's 0-based rank.
func (w *Worker) Rank() int { return w.rank }

// Size returns the world size.
func (w *Worker) Size() int { return w.cluster.p }

// Time returns the worker's simulated clock in seconds.
func (w *Worker) Time() float64 { return w.simTime }

// Stats returns the accumulated per-category simulated seconds. The map is
// live; read it only after Run returns.
func (w *Worker) Stats() map[string]float64 { return w.stats }

// Compute advances the simulated clock by the given seconds under the
// category label (e.g. "forward-backward", "kfac-compute", "compress").
func (w *Worker) Compute(seconds float64, category string) {
	if seconds < 0 {
		panic(fmt.Sprintf("cluster: negative compute time %g", seconds))
	}
	w.simTime += seconds
	w.stats[category] += seconds
}

// account charges a communication interval ending at tEnd to a category:
// the worker was blocked from its local time until the collective finished.
func (w *Worker) account(tEnd float64, category string) {
	if tEnd > w.simTime {
		w.stats[category] += tEnd - w.simTime
		w.simTime = tEnd
	}
}

// AllReduce sums data element-wise across all workers in place (averaging
// is the caller's choice) and charges a ring all-reduce of 4·len bytes
// (FP32 on the wire) to the category.
func (w *Worker) AllReduce(data []float64, category string) {
	c := w.cluster
	res, tEnd := c.rv.exchange(w.rank, w.simTime, data, func(slots []any, times []float64) (any, float64) {
		first := slots[0].([]float64)
		sum := make([]float64, len(first))
		for _, s := range slots {
			vec := s.([]float64)
			if len(vec) != len(sum) {
				panic(fmt.Sprintf("cluster: AllReduce length mismatch %d vs %d", len(vec), len(sum)))
			}
			for i, v := range vec {
				sum[i] += v
			}
		}
		start := maxOf(times)
		return sum, start + c.cfg.AllReduceTime(4*len(sum), c.p)
	})
	copy(data, res.([]float64))
	w.account(tEnd, category)
}

// AllGather exchanges each worker's byte payload (which may be empty) and
// returns all payloads in rank order. The time charge models a ring
// all-gather with the actual per-worker sizes — this is the collective
// COMPSO compresses.
func (w *Worker) AllGather(payload []byte, category string) [][]byte {
	c := w.cluster
	res, tEnd := c.rv.exchange(w.rank, w.simTime, payload, func(slots []any, times []float64) (any, float64) {
		out := make([][]byte, len(slots))
		sizes := make([]int, len(slots))
		for i, s := range slots {
			out[i] = s.([]byte)
			sizes[i] = len(out[i])
		}
		start := maxOf(times)
		return out, start + c.cfg.AllGatherVarTime(sizes, c.p)
	})
	w.account(tEnd, category)
	return res.([][]byte)
}

// Broadcast sends root's payload to every worker, charging a binomial-tree
// broadcast.
func (w *Worker) Broadcast(payload []byte, root int, category string) []byte {
	c := w.cluster
	res, tEnd := c.rv.exchange(w.rank, w.simTime, payload, func(slots []any, times []float64) (any, float64) {
		data := slots[root].([]byte)
		start := maxOf(times)
		return data, start + c.cfg.BroadcastTime(len(data), c.p)
	})
	w.account(tEnd, category)
	return res.([]byte)
}

// ReduceScatter sums data element-wise across workers and returns this
// worker's 1/P shard of the result (rank r receives elements
// [r·n/P, (r+1)·n/P) of the sum, with the last rank absorbing the
// remainder). The time charge models a ring reduce-scatter.
func (w *Worker) ReduceScatter(data []float64, category string) []float64 {
	c := w.cluster
	res, tEnd := c.rv.exchange(w.rank, w.simTime, data, func(slots []any, times []float64) (any, float64) {
		first := slots[0].([]float64)
		sum := make([]float64, len(first))
		for _, s := range slots {
			vec := s.([]float64)
			if len(vec) != len(sum) {
				panic(fmt.Sprintf("cluster: ReduceScatter length mismatch %d vs %d", len(vec), len(sum)))
			}
			for i, v := range vec {
				sum[i] += v
			}
		}
		start := maxOf(times)
		return sum, start + c.cfg.ReduceScatterTime(4*len(sum), c.p)
	})
	w.account(tEnd, category)
	sum := res.([]float64)
	shard := len(sum) / c.p
	lo := w.rank * shard
	hi := lo + shard
	if w.rank == c.p-1 {
		hi = len(sum)
	}
	return sum[lo:hi]
}

// Barrier synchronizes all workers' clocks to the maximum.
func (w *Worker) Barrier() {
	_, tEnd := w.cluster.rv.exchange(w.rank, w.simTime, nil, func(_ []any, times []float64) (any, float64) {
		return nil, maxOf(times)
	})
	w.account(tEnd, "barrier")
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MergeStats sums per-category stats across workers and returns them with
// the sorted category list, for experiment reporting.
func MergeStats(workers []*Worker) (map[string]float64, []string) {
	merged := make(map[string]float64)
	for _, w := range workers {
		for k, v := range w.stats {
			merged[k] += v
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return merged, keys
}

// rendezvous is a reusable payload-carrying barrier: all P workers arrive
// with a payload, the last arriver runs the combine function, everyone
// leaves with the result. A round cannot begin until the previous round has
// fully drained, which is what makes back-to-back collectives safe.
type rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	leaving int
	gen     uint64
	slots   []any
	times   []float64
	result  any
	tEnd    float64
}

func newRendezvous(n int) *rendezvous {
	r := &rendezvous{n: n, slots: make([]any, n), times: make([]float64, n)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *rendezvous) exchange(rank int, t float64, payload any,
	combine func(slots []any, times []float64) (any, float64)) (any, float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.leaving > 0 {
		r.cond.Wait()
	}
	r.slots[rank] = payload
	r.times[rank] = t
	r.arrived++
	gen := r.gen
	if r.arrived == r.n {
		r.result, r.tEnd = combine(r.slots, r.times)
		r.arrived = 0
		r.leaving = r.n
		r.gen++
		r.cond.Broadcast()
	} else {
		for gen == r.gen {
			r.cond.Wait()
		}
	}
	res, tEnd := r.result, r.tEnd
	r.leaving--
	if r.leaving == 0 {
		r.cond.Broadcast()
	}
	return res, tEnd
}
