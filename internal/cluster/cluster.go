package cluster

import (
	"fmt"
	"sort"
	"sync"

	"compso/internal/collective"
	"compso/internal/fault"
	"compso/internal/obs"
	"compso/internal/pool"
)

// Cluster executes an SPMD function on P simulated workers (goroutines).
// Collectives exchange real data and advance every participant's simulated
// clock through the step-level collective engine (internal/collective),
// which schedules each exchange over simulated point-to-point links.
// Workers must issue collectives in identical order (the SPMD contract).
type Cluster struct {
	cfg    Config
	p      int
	rv     *rendezvous
	engine *collective.Engine
	rec    *obs.Recorder
	faults *fault.Injector

	pairMu sync.Mutex
	pairs  map[pairKey]*pairSlot

	// serializeWire queues engine-scheduled collectives on a single wire
	// cursor (wireTail), so collectives launched back-to-back without
	// blocking (the async handles) occupy the fabric one after another
	// instead of each being scheduled as if it had the links to itself.
	// Both fields are only touched inside rendezvous combines, which run
	// single-threaded with every rank blocked.
	serializeWire bool
	wireTail      float64

	// incarnation is the restart attempt this cluster serves (crash
	// recovery); downCh unblocks SendRecv waiters when a worker dies.
	incarnation int
	downOnce    sync.Once
	downCh      chan struct{}
}

// traceCap bounds each worker's retained event trace (most recent events
// win); the full per-collective trace still feeds per-algorithm stats.
const traceCap = 4096

// traceRings recycles worker event rings. Rings are allocated lazily — a
// worker that never retains an event (tracing disabled, or a run with no
// collectives) never owns one — and at exactly traceCap capacity, so an
// 8k-worker world does not pay append-doubling overshoot on thousands of
// rings. Pooled rings are cleared on put so evicted events do not pin
// payload-sized strings across runs.
var traceRings = sync.Pool{New: func() any {
	s := make([]collective.Event, 0, traceCap)
	return &s
}}

// New creates a cluster of p workers on the given platform. It panics on an
// invalid configuration, which is a programming error in experiment setup.
func New(cfg Config, p int) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if p <= 0 {
		panic(fmt.Sprintf("cluster: %d workers", p))
	}
	return &Cluster{
		cfg: cfg, p: p, rv: newRendezvous(p),
		engine: EngineFor(cfg, p),
		pairs:  make(map[pairKey]*pairSlot),
		downCh: make(chan struct{}),
	}
}

// Config returns the platform configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Size returns the number of workers.
func (c *Cluster) Size() int { return c.p }

// Engine returns the collective engine dispatching this cluster's
// collectives (for prediction queries and tuner inspection).
func (c *Cluster) Engine() *collective.Engine { return c.engine }

// InjectFaults installs a fault injector: straggler compute multipliers
// apply to Worker.Compute charges, and degraded-link perturbations apply
// to every stepped collective schedule and SendRecv transfer (which is
// what makes the engine's measurement-refined autotuner re-tune under the
// degraded topology). Payload corruption is the training loop's concern —
// the cluster moves bytes verbatim. A nil injector (the default) keeps
// the fault-free fast path. Call before Run.
func (c *Cluster) InjectFaults(inj *fault.Injector) {
	c.faults = inj
	if inj != nil {
		c.engine.SetPerturber(inj)
	} else {
		c.engine.SetPerturber(nil)
	}
}

// Faults returns the installed fault injector (nil when fault-free).
func (c *Cluster) Faults() *fault.Injector { return c.faults }

// SerializeWire enables (or disables) wire serialization for the async
// collective handles: each engine-scheduled collective starts no earlier
// than the previous one's makespan end. For a purely blocking workload the
// clamp changes nothing at the schedule level — every rank leaves a
// collective at or after its own end, so the next collective's last
// arrival is never before the previous makespan — but per-rank early
// finishers can arrive under the cursor, so the mode is off by default and
// only the overlap scheduler turns it on. Call before Run.
func (c *Cluster) SerializeWire(on bool) { c.serializeWire = on }

// wireStarts returns each rank's effective start time for the next
// engine-scheduled collective, clamped to the wire cursor when
// serialization is on. Must be called inside a rendezvous combine.
func (c *Cluster) wireStarts(times []float64) []float64 {
	if !c.serializeWire {
		return times
	}
	eff := make([]float64, len(times))
	for i, t := range times {
		if t < c.wireTail {
			t = c.wireTail
		}
		eff[i] = t
	}
	return eff
}

// advanceWire moves the wire cursor past a scheduled collective. Must be
// called inside a rendezvous combine.
func (c *Cluster) advanceWire(out *collective.Outcome) {
	if !c.serializeWire {
		return
	}
	if m := out.MaxEnd(); m > c.wireTail {
		c.wireTail = m
	}
}

// Observe attaches an observability recorder: every collective records a
// per-rank span covering exactly the simulated time the rank was blocked
// (so per-algorithm span sums reconcile with AlgSeconds), plus wire-byte
// counters and autotuner-pick counters. With the recorder's transfer-span
// option, each scheduled point-to-point transfer is recorded too. A nil
// recorder (the default) keeps every hot path allocation-free. Call before
// Run.
func (c *Cluster) Observe(rec *obs.Recorder) { c.rec = rec }

// Recorder returns the attached recorder (nil when observability is off).
func (c *Cluster) Recorder() *obs.Recorder { return c.rec }

// Run executes fn on every worker concurrently and blocks until all
// return. It returns the workers in rank order for post-run inspection
// (simulated time, per-category stats, per-algorithm stats, event traces).
func (c *Cluster) Run(fn func(w *Worker)) []*Worker {
	workers := make([]*Worker, c.p)
	var wg sync.WaitGroup
	for rank := 0; rank < c.p; rank++ {
		workers[rank] = &Worker{
			cluster: c, rank: rank,
			stats:    make(map[string]float64),
			algStats: make(map[string]float64),
		}
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			fn(w)
		}(workers[rank])
	}
	wg.Wait()
	return workers
}

// Worker is one simulated GPU. Methods must be called only from the
// goroutine Run assigned to it.
type Worker struct {
	cluster *Cluster
	rank    int
	simTime float64
	stats   map[string]float64
	// algStats accumulates simulated seconds per "op/algorithm" key.
	algStats map[string]float64
	// trace is a ring buffer of the most recent collective events this
	// worker participated in.
	trace      []collective.Event
	traceHead  int
	evTotal    int64
	traceIsOff bool
	// spanCtx is the current parent span for spans this worker records
	// (set by the training loop around steps and phases).
	spanCtx obs.SpanID
	// step is the training loop's current iteration (SetStep), which
	// windows transient fault injection.
	step int
	// collSeq counts the step's collective entries (reset by SetStep) —
	// the site index mid-collective crash injection keys on.
	collSeq int
	// measSchedule/predSchedule accumulate each executed collective's
	// makespan and its fault-free cost-model prediction — the divergence
	// signal the training loop's straggler guard watches.
	measSchedule, predSchedule float64
	// commExposed accumulates the seconds this worker actually spent
	// blocked on collectives — the exposed (non-hidden) communication
	// time. commFull accumulates each collective's full launch-to-end
	// latency: blocking calls add the same amount to both, async waits
	// add only the non-hidden remainder to commExposed. 1 − exposed/full
	// is the overlap-efficiency gauge.
	commExposed float64
	commFull    float64
}

// Rank returns the worker's 0-based rank.
func (w *Worker) Rank() int { return w.rank }

// Recorder returns the cluster's observability recorder; nil means
// observability is disabled (the default).
func (w *Worker) Recorder() *obs.Recorder { return w.cluster.rec }

// SetSpanContext sets the parent span under which this worker's collective
// spans nest (the training loop points it at the current step or phase
// span). A zero ID detaches.
func (w *Worker) SetSpanContext(id obs.SpanID) { w.spanCtx = id }

// SpanContext returns the current parent span.
func (w *Worker) SpanContext() obs.SpanID { return w.spanCtx }

// Size returns the world size.
func (w *Worker) Size() int { return w.cluster.p }

// Engine returns the cluster's collective engine (for prediction queries
// and the straggler guard's Retune).
func (w *Worker) Engine() *collective.Engine { return w.cluster.engine }

// Faults returns the cluster's fault injector (nil when fault-free).
func (w *Worker) Faults() *fault.Injector { return w.cluster.faults }

// SetStep tells the cluster which training iteration the worker is in, so
// transient faults (straggler windows, corruption windows) can key on it.
func (w *Worker) SetStep(it int) { w.step = it; w.collSeq = 0 }

// Step returns the last step set by SetStep.
func (w *Worker) Step() int { return w.step }

// OverlapStats returns the seconds this worker spent blocked on
// collectives (exposed communication) alongside the full launch-to-end
// latency of every collective it participated in. For blocking calls the
// two are equal; an async handle whose Wait the clock has already passed
// contributes its full latency but zero exposure. Their ratio is the
// overlap scheduler's efficiency signal: hidden fraction = 1 − exposed /
// total, identically 0 for a fully sequential run. Read after Run, or
// from the worker's own goroutine.
func (w *Worker) OverlapStats() (exposed, total float64) {
	return w.commExposed, w.commFull
}

// ScheduleSeconds returns the worker's accumulated executed-collective
// makespan seconds alongside the fault-free cost-model prediction for the
// same schedule sequence. Under a healthy fabric the two track each other;
// sustained divergence is the straggler guard's re-tune trigger.
func (w *Worker) ScheduleSeconds() (measured, predicted float64) {
	return w.measSchedule, w.predSchedule
}

// Time returns the worker's simulated clock in seconds.
func (w *Worker) Time() float64 { return w.simTime }

// Stats returns the accumulated per-category simulated seconds. The map is
// live; read it only after Run returns.
func (w *Worker) Stats() map[string]float64 { return w.stats }

// AlgSeconds returns the accumulated simulated seconds per collective
// "op/algorithm" pair (e.g. "allgather/hierarchical"), the step-level
// engine's time breakdown. Read only after Run returns.
func (w *Worker) AlgSeconds() map[string]float64 { return w.algStats }

// Events returns a copy of the worker's retained event trace in arrival
// order (the most recent traceCap entries). Read only after Run returns.
// The copy is what makes ReleaseTrace safe: recycling the ring never
// invalidates a previously returned slice.
func (w *Worker) Events() []collective.Event {
	out := make([]collective.Event, 0, len(w.trace))
	out = append(out, w.trace[w.traceHead:]...)
	out = append(out, w.trace[:w.traceHead]...)
	return out
}

// ReleaseTrace returns the worker's event ring to the shared pool and
// resets the trace to empty. Call once the events are no longer needed
// (slices previously returned by Events remain valid — they are copies).
func (w *Worker) ReleaseTrace() {
	if w.trace == nil {
		return
	}
	ring := w.trace[:cap(w.trace)]
	clear(ring)
	ring = ring[:0]
	traceRings.Put(&ring)
	w.trace, w.traceHead = nil, 0
}

// ReleaseTraces recycles every worker's event ring (see ReleaseTrace).
// The training loop calls it when a run's workers are dropped, so long
// sweeps and crash-recovery restarts reuse rings instead of growing the
// heap by O(P·traceCap).
func ReleaseTraces(workers []*Worker) {
	for _, w := range workers {
		if w != nil {
			w.ReleaseTrace()
		}
	}
}

// TotalEvents returns how many trace events the worker has seen (including
// ones evicted from the ring buffer).
func (w *Worker) TotalEvents() int64 { return w.evTotal }

// DisableTrace stops event retention for this worker (per-algorithm stats
// are still kept). Useful for very long training runs.
func (w *Worker) DisableTrace() { w.traceIsOff = true }

// Compute advances the simulated clock by the given seconds under the
// category label (e.g. "forward-backward", "kfac-compute", "compress").
// An installed fault injector scales the charge by the worker's current
// straggler factor (1 when unafflicted).
func (w *Worker) Compute(seconds float64, category string) {
	if seconds < 0 {
		panic(fmt.Sprintf("cluster: negative compute time %g", seconds))
	}
	if f := w.cluster.faults; f != nil {
		seconds *= f.ComputeFactor(w.rank, w.step)
	}
	w.simTime += seconds
	w.stats[category] += seconds
}

// account charges a communication interval ending at tEnd to a category:
// the worker was blocked from its local time until the collective finished.
func (w *Worker) account(tEnd float64, category string) {
	if tEnd > w.simTime {
		w.stats[category] += tEnd - w.simTime
		w.simTime = tEnd
	}
}

// note records a collective outcome into the worker's per-algorithm stats,
// the observability recorder, and the event trace. Must be called before
// account advances the clock: the recorded span covers [w.simTime, tEnd],
// exactly the interval account charges, so per-algorithm span sums
// reconcile with AlgSeconds by construction.
func (w *Worker) note(out *collective.Outcome, tEnd float64, category string) {
	if out == nil {
		return
	}
	w.measSchedule += out.MaxEnd() - out.Start
	w.predSchedule += out.Predicted
	if tEnd > w.simTime {
		w.algStats[out.Op+"/"+out.Algorithm] += tEnd - w.simTime
		w.commExposed += tEnd - w.simTime
		w.commFull += tEnd - w.simTime
	}
	if rec := w.cluster.rec; rec != nil {
		w.noteObs(rec, out, tEnd, category)
	}
	if w.traceIsOff {
		return
	}
	for _, ev := range out.EventsFor(w.rank) {
		w.addEvent(ev)
	}
}

// noteObs records the collective into the observability layer: a per-rank
// blocked-time span, once-per-collective wire-byte and autotuner-pick
// counters (rank 0 only, so totals are not multiplied by P), and — with
// transfer spans enabled — one link-occupancy span per scheduled transfer
// (each event recorded by its source rank so it appears exactly once).
func (w *Worker) noteObs(rec *obs.Recorder, out *collective.Outcome, tEnd float64, category string) {
	end := tEnd
	if end < w.simTime {
		end = w.simTime
	}
	attrs := obs.NoAttrs
	attrs.Algorithm = out.Algorithm
	attrs.Label = category
	attrs.BytesIn = int64(out.Bytes)
	rec.Span(w.spanCtx, w.rank, obs.CatCollective, out.Op, w.simTime, end, attrs)
	if w.rank == 0 {
		rec.Counter("collective/picks/" + out.Op + "/" + out.Algorithm).Inc()
		rec.Counter("wire/" + category + "/bytes").Add(float64(out.Bytes))
		rec.Counter("wire/total/bytes").Add(float64(out.Bytes))
	}
	if !rec.TransferSpans() {
		return
	}
	for _, ev := range out.Events {
		src := ev.Src
		if src < 0 {
			// Analytic summary events have no endpoints; record once.
			if w.rank != 0 {
				continue
			}
			src = 0
		} else if src != w.rank {
			continue
		}
		ta := obs.NoAttrs
		ta.Algorithm = ev.Algorithm
		ta.Link = ev.Link.String()
		ta.Peer = ev.Dst
		ta.Step = ev.Step
		ta.BytesIn = int64(ev.Bytes)
		rec.Span(0, src, obs.CatTransfer, ev.Op, ev.Start, ev.End, ta)
	}
}

func (w *Worker) addEvent(ev collective.Event) {
	w.evTotal++
	if w.trace == nil {
		w.trace = *traceRings.Get().(*[]collective.Event)
	}
	if len(w.trace) < traceCap {
		w.trace = append(w.trace, ev)
		return
	}
	w.trace[w.traceHead] = ev
	w.traceHead = (w.traceHead + 1) % traceCap
}

// collResult carries a collective's data plus its shared outcome through
// the rendezvous to each rank.
type collResult struct {
	data any
	out  *collective.Outcome
}

// sameForAll builds per-rank results all sharing one value.
func sameForAll(p int, v any) []any {
	res := make([]any, p)
	for i := range res {
		res[i] = v
	}
	return res
}

// AllReduce sums data element-wise across all workers in place (averaging
// is the caller's choice). The wire charge is 4·len bytes (FP32 on the
// wire), scheduled by the engine's chosen all-reduce algorithm.
func (w *Worker) AllReduce(data []float64, category string) {
	w.enterCollective()
	c := w.cluster
	res, tEnd := c.rv.exchange(w.rank, w.simTime, data, func(slots []any, times []float64) ([]any, []float64) {
		vecs := make([][]float64, len(slots))
		for i, s := range slots {
			vecs[i] = s.([]float64)
		}
		sum, out := c.engine.AllReduce(vecs, c.wireStarts(times))
		c.advanceWire(out)
		return sameForAll(c.p, collResult{data: sum, out: out}), out.Ends
	})
	cr := res.(collResult)
	copy(data, cr.data.([]float64))
	w.note(cr.out, tEnd, category)
	w.account(tEnd, category)
}

// AllGather exchanges each worker's byte payload (which may be empty) and
// returns all payloads in rank order — the collective COMPSO compresses.
// The schedule uses the actual per-worker sizes.
func (w *Worker) AllGather(payload []byte, category string) [][]byte {
	w.enterCollective()
	pool.AssertNotArena(payload, "AllGather payload")
	c := w.cluster
	res, tEnd := c.rv.exchange(w.rank, w.simTime, payload, func(slots []any, times []float64) ([]any, []float64) {
		payloads := make([][]byte, len(slots))
		for i, s := range slots {
			payloads[i], _ = s.([]byte)
		}
		data, out := c.engine.AllGather(payloads, c.wireStarts(times))
		c.advanceWire(out)
		return sameForAll(c.p, collResult{data: data, out: out}), out.Ends
	})
	cr := res.(collResult)
	w.note(cr.out, tEnd, category)
	w.account(tEnd, category)
	return cr.data.([][]byte)
}

// Broadcast sends root's payload to every worker.
func (w *Worker) Broadcast(payload []byte, root int, category string) []byte {
	w.enterCollective()
	pool.AssertNotArena(payload, "Broadcast payload")
	c := w.cluster
	res, tEnd := c.rv.exchange(w.rank, w.simTime, payload, func(slots []any, times []float64) ([]any, []float64) {
		bufs := make([][]byte, len(slots))
		for i, s := range slots {
			bufs[i], _ = s.([]byte)
		}
		data, out := c.engine.Broadcast(bufs, root, c.wireStarts(times))
		c.advanceWire(out)
		return sameForAll(c.p, collResult{data: data, out: out}), out.Ends
	})
	cr := res.(collResult)
	w.note(cr.out, tEnd, category)
	w.account(tEnd, category)
	return cr.data.([]byte)
}

// ReduceScatter sums data element-wise across workers and returns this
// worker's 1/P shard of the result (rank r receives elements
// [r·n/P, (r+1)·n/P) of the sum, with the last rank absorbing the
// remainder).
func (w *Worker) ReduceScatter(data []float64, category string) []float64 {
	w.enterCollective()
	c := w.cluster
	res, tEnd := c.rv.exchange(w.rank, w.simTime, data, func(slots []any, times []float64) ([]any, []float64) {
		vecs := make([][]float64, len(slots))
		for i, s := range slots {
			vecs[i] = s.([]float64)
		}
		shards, out := c.engine.ReduceScatter(vecs, c.wireStarts(times))
		c.advanceWire(out)
		res := make([]any, c.p)
		for r := range res {
			res[r] = collResult{data: shards[r], out: out}
		}
		return res, out.Ends
	})
	cr := res.(collResult)
	w.note(cr.out, tEnd, category)
	w.account(tEnd, category)
	return cr.data.([]float64)
}

// Barrier synchronizes all workers' clocks to the maximum.
func (w *Worker) Barrier() {
	w.enterCollective()
	_, tEnd := w.cluster.rv.exchange(w.rank, w.simTime, nil, func(_ []any, times []float64) ([]any, []float64) {
		m := maxOf(times)
		ends := make([]float64, len(times))
		for i := range ends {
			ends[i] = m
		}
		return make([]any, len(times)), ends
	})
	w.account(tEnd, "barrier")
}

// pairKey identifies a SendRecv meeting point (unordered rank pair).
type pairKey struct{ lo, hi int }

type pairSlot struct {
	payload []byte
	t       float64
	reply   chan pairReply
}

type pairReply struct {
	payload []byte
	tEnd    float64
}

// SendRecv exchanges payloads with peer over the direct link between the
// two ranks (NVLink when co-located, the NICs otherwise), advancing both
// clocks to the transfer's completion. Both sides must call SendRecv with
// each other's rank (the SPMD contract — mismatched pairings deadlock, as
// they would on a real cluster). It is the transport primitive the
// step-level collective algorithms are built from, exposed for custom
// exchange patterns.
func (w *Worker) SendRecv(peer int, payload []byte, category string) []byte {
	c := w.cluster
	if peer == w.rank {
		return payload
	}
	if peer < 0 || peer >= c.p {
		panic(fmt.Sprintf("cluster: SendRecv peer %d, world %d", peer, c.p))
	}
	k := pairKey{lo: w.rank, hi: peer}
	if k.lo > k.hi {
		k.lo, k.hi = k.hi, k.lo
	}
	c.pairMu.Lock()
	if st, ok := c.pairs[k]; ok {
		// Second arriver: compute the transfer and release the partner.
		delete(c.pairs, k)
		c.pairMu.Unlock()
		bytes := len(payload)
		if len(st.payload) > bytes {
			bytes = len(st.payload)
		}
		start := w.simTime
		if st.t > start {
			start = st.t
		}
		tEnd := start + c.engine.P2PTime(w.rank, peer, bytes, start)
		st.reply <- pairReply{payload: payload, tEnd: tEnd}
		w.noteP2P(peer, bytes, start, tEnd)
		w.account(tEnd, category)
		return st.payload
	}
	st := &pairSlot{payload: payload, t: w.simTime, reply: make(chan pairReply, 1)}
	c.pairs[k] = st
	c.pairMu.Unlock()
	var rep pairReply
	select {
	case rep = <-st.reply:
	case <-c.downCh:
		// The partner (or any peer) died before pairing up; unwind like
		// any other synchronization point. A race where the reply lands
		// anyway is resolved in the reply's favor — the data exchange
		// completed before the loss surfaced here.
		select {
		case rep = <-st.reply:
		default:
			_, p := c.rv.poisoned()
			panic(p)
		}
	}
	w.noteP2P(peer, max(len(payload), len(rep.payload)), w.simTime, rep.tEnd)
	w.account(rep.tEnd, category)
	return rep.payload
}

func (w *Worker) noteP2P(peer, bytes int, start, tEnd float64) {
	if tEnd > w.simTime {
		w.algStats[collective.OpSendRecv+"/p2p"] += tEnd - w.simTime
	}
	if rec := w.cluster.rec; rec != nil {
		// Cover exactly the interval account() charges so p2p span sums
		// reconcile with AlgSeconds.
		end := tEnd
		if end < w.simTime {
			end = w.simTime
		}
		a := obs.NoAttrs
		a.Algorithm = "p2p"
		a.Peer = peer
		a.BytesIn = int64(bytes)
		rec.Span(w.spanCtx, w.rank, obs.CatCollective, collective.OpSendRecv, w.simTime, end, a)
	}
	if w.traceIsOff {
		return
	}
	link := collective.LinkInter
	if w.cluster.engine.Topology().SameNode(w.rank, peer) {
		link = collective.LinkIntra
	}
	w.addEvent(collective.Event{
		Op: collective.OpSendRecv, Algorithm: "p2p",
		Src: w.rank, Dst: peer, Link: link, Bytes: bytes,
		Start: start, End: tEnd,
	})
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MergeStats sums per-category stats across workers and returns them with
// the sorted category list, for experiment reporting.
func MergeStats(workers []*Worker) (map[string]float64, []string) {
	merged := make(map[string]float64)
	for _, w := range workers {
		for k, v := range w.stats {
			merged[k] += v
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return merged, keys
}

// MergeAlgStats sums per-"op/algorithm" simulated seconds across workers —
// the per-algorithm communication breakdown the experiments report.
func MergeAlgStats(workers []*Worker) map[string]float64 {
	merged := make(map[string]float64)
	for _, w := range workers {
		for k, v := range w.algStats {
			merged[k] += v
		}
	}
	return merged
}
