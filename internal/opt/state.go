package opt

import (
	"fmt"

	"compso/internal/nn"
)

// Checkpoint/restore support for SGD. The velocity map is keyed by
// parameter pointer, which does not survive serialization; capture and
// restore therefore work positionally against a caller-supplied parameter
// slice (the model's nn.Params() order, which is deterministic).

// CaptureVelocity deep-copies the momentum velocity of each parameter, in
// params order. Parameters that have not been stepped yet (no velocity
// allocated) contribute a nil entry.
func (s *SGD) CaptureVelocity(params []*nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		if v := s.velocity[p]; v != nil {
			out[i] = append([]float64(nil), v...)
		}
	}
	return out
}

// RestoreVelocity installs a CaptureVelocity snapshot positionally,
// deep-copying each slice. Lengths must match the parameters exactly.
func (s *SGD) RestoreVelocity(params []*nn.Param, vel [][]float64) error {
	if len(vel) != len(params) {
		return fmt.Errorf("opt: SGD restore: %d velocity entries, %d params", len(vel), len(params))
	}
	for i, p := range params {
		if vel[i] != nil && len(vel[i]) != len(p.W.Data) {
			return fmt.Errorf("opt: SGD restore: param %d velocity %d values, want %d", i, len(vel[i]), len(p.W.Data))
		}
	}
	if s.velocity == nil {
		s.velocity = make(map[*nn.Param][]float64)
	}
	for i, p := range params {
		if vel[i] != nil {
			s.velocity[p] = append([]float64(nil), vel[i]...)
		} else {
			delete(s.velocity, p)
		}
	}
	return nil
}
