// Package opt provides the first-order optimizers the paper's baselines
// train with (SGD with momentum, Adam, and a LAMB-style layer-adaptive
// variant used for BERT) plus the two learning-rate schedules COMPSO's
// iteration-wise adaptive compression keys off (§4.3, Algorithm 1): StepLR
// with discrete decay points and SmoothLR with warmup followed by cosine
// decay.
package opt

import (
	"fmt"
	"math"

	"compso/internal/nn"
)

// Optimizer updates model parameters from their accumulated gradients.
type Optimizer interface {
	Name() string
	// Step applies one update with the given learning rate and clears no
	// state; callers zero gradients between iterations.
	Step(params []*nn.Param, lr float64)
}

// SGD is stochastic gradient descent with classical momentum and optional
// weight decay.
type SGD struct {
	Momentum    float64
	WeightDecay float64
	velocity    map[*nn.Param][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(momentum, weightDecay float64) *SGD {
	return &SGD{Momentum: momentum, WeightDecay: weightDecay, velocity: make(map[*nn.Param][]float64)}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "SGD" }

// Step implements Optimizer.
func (s *SGD) Step(params []*nn.Param, lr float64) {
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, len(p.W.Data))
			s.velocity[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] + s.WeightDecay*p.W.Data[i]
			v[i] = s.Momentum*v[i] + g
			p.W.Data[i] -= lr * v[i]
		}
	}
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	Beta1, Beta2, Eps float64
	WeightDecay       float64
	step              int
	m, v              map[*nn.Param][]float64
}

// NewAdam returns Adam with the standard hyper-parameters.
func NewAdam() *Adam {
	return &Adam{Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Param][]float64), v: make(map[*nn.Param][]float64)}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "Adam" }

// Step implements Optimizer.
func (a *Adam) Step(params []*nn.Param, lr float64) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = make([]float64, len(p.W.Data))
			v = make([]float64, len(p.W.Data))
			a.m[p], a.v[p] = m, v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] + a.WeightDecay*p.W.Data[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.W.Data[i] -= lr * (m[i] / c1) / (math.Sqrt(v[i]/c2) + a.Eps)
		}
	}
}

// LAMB is the layer-adaptive large-batch optimizer the paper's BERT
// baseline uses [You et al.]: Adam-style moments with a per-layer trust
// ratio between parameter norm and update norm.
type LAMB struct {
	Beta1, Beta2, Eps float64
	WeightDecay       float64
	step              int
	m, v              map[*nn.Param][]float64
}

// NewLAMB returns LAMB with the standard hyper-parameters.
func NewLAMB(weightDecay float64) *LAMB {
	return &LAMB{Beta1: 0.9, Beta2: 0.999, Eps: 1e-6, WeightDecay: weightDecay,
		m: make(map[*nn.Param][]float64), v: make(map[*nn.Param][]float64)}
}

// Name implements Optimizer.
func (l *LAMB) Name() string { return "LAMB" }

// Step implements Optimizer.
func (l *LAMB) Step(params []*nn.Param, lr float64) {
	l.step++
	c1 := 1 - math.Pow(l.Beta1, float64(l.step))
	c2 := 1 - math.Pow(l.Beta2, float64(l.step))
	for _, p := range params {
		m := l.m[p]
		v := l.v[p]
		if m == nil {
			m = make([]float64, len(p.W.Data))
			v = make([]float64, len(p.W.Data))
			l.m[p], l.v[p] = m, v
		}
		var wNorm, uNorm float64
		update := make([]float64, len(p.W.Data))
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			m[i] = l.Beta1*m[i] + (1-l.Beta1)*g
			v[i] = l.Beta2*v[i] + (1-l.Beta2)*g*g
			u := (m[i]/c1)/(math.Sqrt(v[i]/c2)+l.Eps) + l.WeightDecay*p.W.Data[i]
			update[i] = u
			wNorm += p.W.Data[i] * p.W.Data[i]
			uNorm += u * u
		}
		trust := 1.0
		if wNorm > 0 && uNorm > 0 {
			trust = math.Sqrt(wNorm) / math.Sqrt(uNorm)
			if trust > 10 {
				trust = 10
			}
		}
		for i := range p.W.Data {
			p.W.Data[i] -= lr * trust * update[i]
		}
	}
}

// Schedule yields the learning rate for an iteration and exposes the
// stage structure COMPSO's adaptive compression follows.
type Schedule interface {
	Name() string
	// LR returns the learning rate at 0-based iteration t.
	LR(t int) float64
}

// StepLR multiplies BaseLR by Gamma at each iteration listed in Drops.
// ResNet-50 and Mask R-CNN use this schedule; COMPSO compresses
// aggressively before the first drop (Algorithm 1).
type StepLR struct {
	BaseLR float64
	Drops  []int // ascending iteration indices of the decay points
	Gamma  float64
}

// Name implements Schedule.
func (s *StepLR) Name() string { return "StepLR" }

// LR implements Schedule.
func (s *StepLR) LR(t int) float64 {
	lr := s.BaseLR
	for _, d := range s.Drops {
		if t >= d {
			lr *= s.Gamma
		}
	}
	return lr
}

// FirstDrop returns the iteration of the first decay (MaxInt when none),
// the boundary between COMPSO's aggressive and conservative phases.
func (s *StepLR) FirstDrop() int {
	if len(s.Drops) == 0 {
		return math.MaxInt
	}
	return s.Drops[0]
}

// SmoothLR is linear warmup followed by cosine decay to MinLR at Total
// iterations — the schedule of the GPT-neo and BERT runs.
type SmoothLR struct {
	BaseLR float64
	MinLR  float64
	Warmup int
	Total  int
}

// Name implements Schedule.
func (s *SmoothLR) Name() string { return "SmoothLR" }

// LR implements Schedule.
func (s *SmoothLR) LR(t int) float64 {
	if s.Total <= 0 {
		return s.BaseLR
	}
	if t < s.Warmup && s.Warmup > 0 {
		return s.BaseLR * float64(t+1) / float64(s.Warmup)
	}
	progress := float64(t-s.Warmup) / math.Max(1, float64(s.Total-s.Warmup))
	if progress > 1 {
		progress = 1
	}
	return s.MinLR + (s.BaseLR-s.MinLR)*(1+math.Cos(math.Pi*progress))/2
}

// Validate checks schedule invariants, returning a descriptive error for
// misconfiguration (negative rates, unsorted drops).
func Validate(s Schedule) error {
	switch sc := s.(type) {
	case *StepLR:
		if sc.BaseLR <= 0 || sc.Gamma <= 0 || sc.Gamma > 1 {
			return fmt.Errorf("opt: StepLR base %g gamma %g", sc.BaseLR, sc.Gamma)
		}
		for i := 1; i < len(sc.Drops); i++ {
			if sc.Drops[i] <= sc.Drops[i-1] {
				return fmt.Errorf("opt: StepLR drops not ascending at %d", i)
			}
		}
	case *SmoothLR:
		if sc.BaseLR <= 0 || sc.MinLR < 0 || sc.Total <= 0 || sc.Warmup < 0 {
			return fmt.Errorf("opt: SmoothLR base %g min %g total %d warmup %d", sc.BaseLR, sc.MinLR, sc.Total, sc.Warmup)
		}
	}
	return nil
}
