package opt

import (
	"math"
	"testing"

	"compso/internal/nn"
	"compso/internal/tensor"
	"compso/internal/xrand"
)

// quadratic builds a single-parameter problem min ||w - target||² and
// returns (param, set-gradient func, loss func).
func quadratic(dim int, seed int64) (*nn.Param, func(), func() float64) {
	rng := xrand.NewSeeded(seed)
	p := &nn.Param{Name: "w", W: tensor.New(1, dim), Grad: tensor.New(1, dim)}
	target := make([]float64, dim)
	for i := range target {
		target[i] = rng.NormFloat64() * 3
	}
	setGrad := func() {
		for i := range p.W.Data {
			p.Grad.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
	}
	loss := func() float64 {
		var s float64
		for i := range p.W.Data {
			d := p.W.Data[i] - target[i]
			s += d * d
		}
		return s
	}
	return p, setGrad, loss
}

func testConverges(t *testing.T, o Optimizer, lr float64, iters int) {
	t.Helper()
	p, setGrad, loss := quadratic(8, 42)
	first := loss()
	for i := 0; i < iters; i++ {
		p.ZeroGrad()
		setGrad()
		o.Step([]*nn.Param{p}, lr)
	}
	if last := loss(); last > first/100 {
		t.Fatalf("%s did not converge: %g -> %g", o.Name(), first, last)
	}
}

func TestSGDConverges(t *testing.T)  { testConverges(t, NewSGD(0.9, 0), 0.05, 200) }
func TestAdamConverges(t *testing.T) { testConverges(t, NewAdam(), 0.3, 300) }
func TestLAMBConverges(t *testing.T) { testConverges(t, NewLAMB(0), 0.1, 300) }

func TestSGDMomentumAccelerates(t *testing.T) {
	lossAfter := func(momentum float64) float64 {
		p, setGrad, loss := quadratic(8, 7)
		o := NewSGD(momentum, 0)
		for i := 0; i < 30; i++ {
			p.ZeroGrad()
			setGrad()
			o.Step([]*nn.Param{p}, 0.02)
		}
		return loss()
	}
	if lossAfter(0.9) >= lossAfter(0) {
		t.Fatal("momentum did not accelerate quadratic convergence")
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := &nn.Param{Name: "w", W: tensor.FromSlice(1, 1, []float64{10}), Grad: tensor.New(1, 1)}
	o := NewSGD(0, 0.1)
	for i := 0; i < 50; i++ {
		p.ZeroGrad() // gradient stays zero: only decay acts
		o.Step([]*nn.Param{p}, 0.1)
	}
	if math.Abs(p.W.Data[0]) >= 10 {
		t.Fatalf("weight decay did not shrink weight: %g", p.W.Data[0])
	}
}

func TestStepLRSchedule(t *testing.T) {
	s := &StepLR{BaseLR: 1.0, Drops: []int{10, 20}, Gamma: 0.1}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	cases := map[int]float64{0: 1, 9: 1, 10: 0.1, 19: 0.1, 20: 0.01, 100: 0.01}
	for it, want := range cases {
		if got := s.LR(it); math.Abs(got-want) > 1e-12 {
			t.Fatalf("StepLR(%d) = %g, want %g", it, got, want)
		}
	}
	if s.FirstDrop() != 10 {
		t.Fatalf("FirstDrop = %d, want 10", s.FirstDrop())
	}
	if (&StepLR{}).FirstDrop() != math.MaxInt {
		t.Fatal("empty StepLR FirstDrop should be MaxInt")
	}
}

func TestSmoothLRSchedule(t *testing.T) {
	s := &SmoothLR{BaseLR: 1.0, MinLR: 0.01, Warmup: 10, Total: 110}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	if got := s.LR(0); got >= s.LR(9) {
		t.Fatal("warmup not increasing")
	}
	if math.Abs(s.LR(10)-1.0) > 1e-9 {
		t.Fatalf("post-warmup LR = %g, want 1.0", s.LR(10))
	}
	if got := s.LR(109); got > 0.02 {
		t.Fatalf("final LR = %g, want ~MinLR", got)
	}
	// Monotone decreasing after warmup.
	prev := s.LR(10)
	for it := 11; it < 110; it++ {
		cur := s.LR(it)
		if cur > prev+1e-12 {
			t.Fatalf("SmoothLR increased at %d: %g -> %g", it, prev, cur)
		}
		prev = cur
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Schedule{
		&StepLR{BaseLR: 0, Gamma: 0.1},
		&StepLR{BaseLR: 1, Gamma: 2},
		&StepLR{BaseLR: 1, Gamma: 0.1, Drops: []int{20, 10}},
		&SmoothLR{BaseLR: 1, Total: 0},
		&SmoothLR{BaseLR: -1, Total: 10},
	}
	for i, s := range bad {
		if Validate(s) == nil {
			t.Errorf("case %d: Validate accepted invalid schedule", i)
		}
	}
}

func TestLAMBTrustRatioBounded(t *testing.T) {
	// Huge gradients must not blow up the weights thanks to the trust clip.
	p := &nn.Param{Name: "w", W: tensor.FromSlice(1, 2, []float64{0.1, 0.1}), Grad: tensor.New(1, 2)}
	o := NewLAMB(0)
	p.Grad.Data[0], p.Grad.Data[1] = 1e6, -1e6
	o.Step([]*nn.Param{p}, 0.01)
	for _, w := range p.W.Data {
		if math.Abs(w) > 1 {
			t.Fatalf("LAMB update exploded: %v", p.W.Data)
		}
	}
}
