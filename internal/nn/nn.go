// Package nn is the minimal neural-network substrate the proxy models train
// on: layers with explicit forward/backward passes, parameter objects
// shared with the optimizers, and the activation/pre-activation-gradient
// capture that K-FAC's Kronecker factors are computed from (Eq. 1 of the
// paper: A = a·aᵀ, G = g·gᵀ).
//
// All tensors are tensor.Matrix values with the batch dimension first.
// Layers are not safe for concurrent use; in data-parallel training each
// simulated GPU holds its own model replica.
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"compso/internal/tensor"
)

// Param is a learnable parameter with its gradient, accumulated by a
// layer's Backward and consumed (and typically zeroed) by an optimizer.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// newParam allocates a parameter and matching zero gradient.
func newParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad.Data {
		p.Grad.Data[i] = 0
	}
}

// Size returns the number of scalar parameters.
func (p *Param) Size() int { return len(p.W.Data) }

// Layer is one differentiable stage of a model.
type Layer interface {
	// Name identifies the layer in logs and K-FAC work assignment.
	Name() string
	// Forward computes the layer output for a batch×in input. When train is
	// true the layer may cache whatever Backward and K-FAC need.
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	// Backward consumes ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients along the way. It must follow a training-mode
	// Forward.
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	// Params returns the learnable parameters (empty for stateless layers).
	Params() []*Param
}

// Composite is implemented by layers that contain sub-layers (e.g.
// SelfAttention's four projections); Sequential recurses into them when
// collecting K-FAC-preconditionable layers.
type Composite interface {
	SubLayers() []Layer
}

// KFACLayer is implemented by layers K-FAC can precondition. The stats are
// those of the most recent training-mode Forward/Backward pair.
type KFACLayer interface {
	Layer
	// KFACStats returns the activation rows (including the homogeneous
	// bias coordinate) and the pre-activation gradient rows used to build
	// the Kronecker factors A = E[aaᵀ] and G = E[ggᵀ].
	KFACStats() (act, grad *tensor.Matrix)
	// KFACParam returns the combined weight matrix of shape
	// (in+1)×out that the preconditioned gradient applies to.
	KFACParam() *Param
}

// Sequential chains layers into a model.
type Sequential struct {
	Layers []*namedLayer
}

type namedLayer struct {
	Layer
	uniqueName string
}

// NewSequential builds a model, assigning each layer a unique name of the
// form "<index>-<layer name>".
func NewSequential(layers ...Layer) *Sequential {
	s := &Sequential{}
	for i, l := range layers {
		s.Layers = append(s.Layers, &namedLayer{Layer: l, uniqueName: fmt.Sprintf("%02d-%s", i, l.Name())})
	}
	return s
}

// Forward runs the whole stack.
func (s *Sequential) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the loss gradient through the stack in reverse.
func (s *Sequential) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params returns every learnable parameter in layer order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all parameter gradients.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// KFACLayers returns the K-FAC-preconditionable layers with their unique
// names, in order — the unit of layer-wise work distribution in
// distributed K-FAC. Composite layers are searched recursively.
func (s *Sequential) KFACLayers() (names []string, layers []KFACLayer) {
	var walk func(prefix string, l Layer)
	walk = func(prefix string, l Layer) {
		if k, ok := l.(KFACLayer); ok {
			names = append(names, prefix)
			layers = append(layers, k)
			return
		}
		if c, ok := l.(Composite); ok {
			for i, sub := range c.SubLayers() {
				walk(fmt.Sprintf("%s/%02d-%s", prefix, i, sub.Name()), sub)
			}
		}
	}
	for _, l := range s.Layers {
		walk(l.uniqueName, l.Layer)
	}
	return names, layers
}

// ParamCount returns the total number of scalar parameters.
func (s *Sequential) ParamCount() int {
	total := 0
	for _, p := range s.Params() {
		total += p.Size()
	}
	return total
}

// initMatrix fills m with He initialization: N(0, sqrt(2/fanIn)).
func initMatrix(m *tensor.Matrix, fanIn int, rng *rand.Rand) {
	sigma := 1.0
	if fanIn > 0 {
		sigma = math.Sqrt(2 / float64(fanIn))
	}
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sigma
	}
}
