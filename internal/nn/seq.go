package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"compso/internal/tensor"
)

// Sequence-shaped layers: the transformer proxies carry token sequences as
// batch×(Seq·Dim) matrices (token-major). EmbeddingSeq produces them,
// SeqLayerNorm normalizes each token block, and MeanPool collapses the
// sequence for a classification head.

// EmbeddingSeq maps token ids (batch×Seq, float64-encoded ids) to
// per-token embeddings plus a learned positional embedding, producing
// batch×(Seq·Dim). Embedding tables are first-order parameters (excluded
// from K-FAC), as in the reference distributed K-FAC systems.
type EmbeddingSeq struct {
	Vocab, Dim, Seq int
	Table           *Param // Vocab×Dim
	Pos             *Param // Seq×Dim
	lastIDs         []int
	lastBatch       int
}

// NewEmbeddingSeq creates the embedding with N(0, 0.1) init.
func NewEmbeddingSeq(vocab, dim, seq int, rng *rand.Rand) *EmbeddingSeq {
	e := &EmbeddingSeq{Vocab: vocab, Dim: dim, Seq: seq,
		Table: newParam(fmt.Sprintf("embedseq%dx%d", vocab, dim), vocab, dim),
		Pos:   newParam(fmt.Sprintf("posembed%dx%d", seq, dim), seq, dim),
	}
	for i := range e.Table.W.Data {
		e.Table.W.Data[i] = rng.NormFloat64() * 0.1
	}
	for i := range e.Pos.W.Data {
		e.Pos.W.Data[i] = rng.NormFloat64() * 0.1
	}
	return e
}

// Name implements Layer.
func (e *EmbeddingSeq) Name() string { return fmt.Sprintf("embedseq(%d,%d)", e.Vocab, e.Dim) }

// Params implements Layer.
func (e *EmbeddingSeq) Params() []*Param { return []*Param{e.Table, e.Pos} }

// Forward implements Layer.
func (e *EmbeddingSeq) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != e.Seq {
		panic(fmt.Sprintf("nn: %s fed %d tokens, want %d", e.Name(), x.Cols, e.Seq))
	}
	out := tensor.New(x.Rows, e.Seq*e.Dim)
	ids := make([]int, x.Rows*e.Seq)
	for b := 0; b < x.Rows; b++ {
		for s := 0; s < e.Seq; s++ {
			id := int(x.Data[b*x.Cols+s])
			if id < 0 || id >= e.Vocab {
				panic(fmt.Sprintf("nn: token id %d outside vocab %d", id, e.Vocab))
			}
			ids[b*e.Seq+s] = id
			dst := out.Data[b*out.Cols+s*e.Dim : b*out.Cols+(s+1)*e.Dim]
			src := e.Table.W.Data[id*e.Dim : (id+1)*e.Dim]
			pos := e.Pos.W.Data[s*e.Dim : (s+1)*e.Dim]
			for j := range dst {
				dst[j] = src[j] + pos[j]
			}
		}
	}
	if train {
		e.lastIDs, e.lastBatch = ids, x.Rows
	}
	return out
}

// Backward implements Layer.
func (e *EmbeddingSeq) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if e.lastIDs == nil || gradOut.Rows != e.lastBatch || gradOut.Cols != e.Seq*e.Dim {
		panic("nn: EmbeddingSeq.Backward shape mismatch")
	}
	for b := 0; b < gradOut.Rows; b++ {
		for s := 0; s < e.Seq; s++ {
			id := e.lastIDs[b*e.Seq+s]
			g := gradOut.Data[b*gradOut.Cols+s*e.Dim : b*gradOut.Cols+(s+1)*e.Dim]
			dst := e.Table.Grad.Data[id*e.Dim : (id+1)*e.Dim]
			pos := e.Pos.Grad.Data[s*e.Dim : (s+1)*e.Dim]
			for j, v := range g {
				dst[j] += v
				pos[j] += v
			}
		}
	}
	return tensor.New(gradOut.Rows, e.Seq)
}

// SeqLayerNorm applies layer normalization to each token's Dim-wide block
// independently, with shared per-feature gamma/beta.
type SeqLayerNorm struct {
	Seq, Dim int
	Gamma    *Param
	Beta     *Param
	eps      float64
	lastNorm *tensor.Matrix
	lastStd  []float64
}

// NewSeqLayerNorm creates the per-token layer norm.
func NewSeqLayerNorm(seq, dim int) *SeqLayerNorm {
	ln := &SeqLayerNorm{Seq: seq, Dim: dim,
		Gamma: newParam(fmt.Sprintf("seqln%d.gamma", dim), 1, dim),
		Beta:  newParam(fmt.Sprintf("seqln%d.beta", dim), 1, dim),
		eps:   1e-5,
	}
	for i := range ln.Gamma.W.Data {
		ln.Gamma.W.Data[i] = 1
	}
	return ln
}

// Name implements Layer.
func (ln *SeqLayerNorm) Name() string { return fmt.Sprintf("seqlayernorm(%d,%d)", ln.Seq, ln.Dim) }

// Params implements Layer.
func (ln *SeqLayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// Forward implements Layer.
func (ln *SeqLayerNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != ln.Seq*ln.Dim {
		panic(fmt.Sprintf("nn: %s fed width %d", ln.Name(), x.Cols))
	}
	rows := x.Rows * ln.Seq
	out := tensor.New(x.Rows, x.Cols)
	norm := tensor.New(x.Rows, x.Cols)
	stds := make([]float64, rows)
	for r := 0; r < rows; r++ {
		blk := x.Data[r*ln.Dim : (r+1)*ln.Dim]
		var mean float64
		for _, v := range blk {
			mean += v
		}
		mean /= float64(ln.Dim)
		var varSum float64
		for _, v := range blk {
			d := v - mean
			varSum += d * d
		}
		std := math.Sqrt(varSum/float64(ln.Dim) + ln.eps)
		stds[r] = std
		for j, v := range blk {
			nv := (v - mean) / std
			norm.Data[r*ln.Dim+j] = nv
			out.Data[r*ln.Dim+j] = nv*ln.Gamma.W.Data[j] + ln.Beta.W.Data[j]
		}
	}
	if train {
		ln.lastNorm, ln.lastStd = norm, stds
	}
	return out
}

// Backward implements Layer.
func (ln *SeqLayerNorm) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if ln.lastNorm == nil || gradOut.Rows != ln.lastNorm.Rows || gradOut.Cols != ln.Seq*ln.Dim {
		panic("nn: SeqLayerNorm.Backward shape mismatch")
	}
	n := float64(ln.Dim)
	gradIn := tensor.New(gradOut.Rows, gradOut.Cols)
	rows := gradOut.Rows * ln.Seq
	for r := 0; r < rows; r++ {
		gRow := gradOut.Data[r*ln.Dim : (r+1)*ln.Dim]
		nRow := ln.lastNorm.Data[r*ln.Dim : (r+1)*ln.Dim]
		for j, g := range gRow {
			ln.Gamma.Grad.Data[j] += g * nRow[j]
			ln.Beta.Grad.Data[j] += g
		}
		var sumG, sumGN float64
		for j, g := range gRow {
			gh := g * ln.Gamma.W.Data[j]
			sumG += gh
			sumGN += gh * nRow[j]
		}
		for j, g := range gRow {
			gh := g * ln.Gamma.W.Data[j]
			gradIn.Data[r*ln.Dim+j] = (gh - sumG/n - nRow[j]*sumGN/n) / ln.lastStd[r]
		}
	}
	return gradIn
}

// MeanPool averages the sequence dimension: batch×(Seq·Dim) → batch×Dim.
type MeanPool struct {
	Seq, Dim  int
	lastBatch int
}

// NewMeanPool creates the pooling layer.
func NewMeanPool(seq, dim int) *MeanPool { return &MeanPool{Seq: seq, Dim: dim} }

// Name implements Layer.
func (m *MeanPool) Name() string { return fmt.Sprintf("meanpool(%d,%d)", m.Seq, m.Dim) }

// Params implements Layer.
func (m *MeanPool) Params() []*Param { return nil }

// Forward implements Layer.
func (m *MeanPool) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != m.Seq*m.Dim {
		panic(fmt.Sprintf("nn: %s fed width %d", m.Name(), x.Cols))
	}
	out := tensor.New(x.Rows, m.Dim)
	inv := 1.0 / float64(m.Seq)
	for b := 0; b < x.Rows; b++ {
		dst := out.Data[b*m.Dim : (b+1)*m.Dim]
		for s := 0; s < m.Seq; s++ {
			src := x.Data[b*x.Cols+s*m.Dim : b*x.Cols+(s+1)*m.Dim]
			for j, v := range src {
				dst[j] += v * inv
			}
		}
	}
	if train {
		m.lastBatch = x.Rows
	}
	return out
}

// Backward implements Layer.
func (m *MeanPool) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if gradOut.Cols != m.Dim {
		panic("nn: MeanPool.Backward shape mismatch")
	}
	gradIn := tensor.New(gradOut.Rows, m.Seq*m.Dim)
	inv := 1.0 / float64(m.Seq)
	for b := 0; b < gradOut.Rows; b++ {
		g := gradOut.Data[b*m.Dim : (b+1)*m.Dim]
		for s := 0; s < m.Seq; s++ {
			dst := gradIn.Data[b*gradIn.Cols+s*m.Dim : b*gradIn.Cols+(s+1)*m.Dim]
			for j, v := range g {
				dst[j] = v * inv
			}
		}
	}
	return gradIn
}
