package nn

import (
	"fmt"
	"math/rand/v2"

	"compso/internal/tensor"
)

// Embedding maps integer token ids to learned vectors and mean-pools them
// per example: input is batch×seqLen with token ids stored as float64
// values, output is batch×dim. Embeddings are first-order parameters
// (distributed K-FAC implementations exclude them from preconditioning),
// so the layer only implements Layer, not KFACLayer.
type Embedding struct {
	Vocab, Dim, SeqLen int
	Table              *Param // Vocab×Dim
	lastIDs            []int
	lastBatch          int
}

// NewEmbedding creates an embedding table with N(0, 0.1) init.
func NewEmbedding(vocab, dim, seqLen int, rng *rand.Rand) *Embedding {
	e := &Embedding{Vocab: vocab, Dim: dim, SeqLen: seqLen,
		Table: newParam(fmt.Sprintf("embed%dx%d", vocab, dim), vocab, dim)}
	for i := range e.Table.W.Data {
		e.Table.W.Data[i] = rng.NormFloat64() * 0.1
	}
	return e
}

// Name implements Layer.
func (e *Embedding) Name() string { return fmt.Sprintf("embed(%d,%d)", e.Vocab, e.Dim) }

// Params implements Layer.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }

// Forward implements Layer.
func (e *Embedding) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != e.SeqLen {
		panic(fmt.Sprintf("nn: %s fed %d tokens, want %d", e.Name(), x.Cols, e.SeqLen))
	}
	out := tensor.New(x.Rows, e.Dim)
	ids := make([]int, x.Rows*e.SeqLen)
	inv := 1.0 / float64(e.SeqLen)
	for b := 0; b < x.Rows; b++ {
		dst := out.Data[b*e.Dim : (b+1)*e.Dim]
		for s := 0; s < e.SeqLen; s++ {
			id := int(x.Data[b*x.Cols+s])
			if id < 0 || id >= e.Vocab {
				panic(fmt.Sprintf("nn: token id %d outside vocab %d", id, e.Vocab))
			}
			ids[b*e.SeqLen+s] = id
			row := e.Table.W.Data[id*e.Dim : (id+1)*e.Dim]
			for j, v := range row {
				dst[j] += v * inv
			}
		}
	}
	if train {
		e.lastIDs = ids
		e.lastBatch = x.Rows
	}
	return out
}

// Backward implements Layer. The returned input gradient is zero-valued
// (token ids are not differentiable); it exists to keep the Sequential
// chain uniform.
func (e *Embedding) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if e.lastIDs == nil || gradOut.Rows != e.lastBatch || gradOut.Cols != e.Dim {
		panic("nn: Embedding.Backward shape mismatch")
	}
	inv := 1.0 / float64(e.SeqLen)
	for b := 0; b < gradOut.Rows; b++ {
		g := gradOut.Data[b*e.Dim : (b+1)*e.Dim]
		for s := 0; s < e.SeqLen; s++ {
			id := e.lastIDs[b*e.SeqLen+s]
			dst := e.Table.Grad.Data[id*e.Dim : (id+1)*e.Dim]
			for j, v := range g {
				dst[j] += v * inv
			}
		}
	}
	return tensor.New(gradOut.Rows, e.SeqLen)
}
