package nn

import (
	"math"

	"compso/internal/tensor"
)

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := x.Clone()
	if train {
		if cap(r.mask) < len(x.Data) {
			r.mask = make([]bool, len(x.Data))
		}
		r.mask = r.mask[:len(x.Data)]
	}
	for i, v := range x.Data {
		keep := v > 0
		if !keep {
			out.Data[i] = 0
		}
		if train {
			r.mask[i] = keep
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if len(r.mask) != len(gradOut.Data) {
		panic("nn: ReLU.Backward shape mismatch with cached mask")
	}
	out := gradOut.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// GELU is the Gaussian error linear unit (tanh approximation), the
// transformer-standard activation.
type GELU struct {
	lastInput *tensor.Matrix
}

// NewGELU returns a GELU layer.
func NewGELU() *GELU { return &GELU{} }

// Name implements Layer.
func (g *GELU) Name() string { return "gelu" }

// Params implements Layer.
func (g *GELU) Params() []*Param { return nil }

const geluC = 0.7978845608028654 // sqrt(2/pi)

func gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
}

func geluGrad(x float64) float64 {
	inner := geluC * (x + 0.044715*x*x*x)
	t := math.Tanh(inner)
	sech2 := 1 - t*t
	return 0.5*(1+t) + 0.5*x*sech2*geluC*(1+3*0.044715*x*x)
}

// Forward implements Layer.
func (g *GELU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if train {
		g.lastInput = x.Clone()
	}
	out := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = gelu(v)
	}
	return out
}

// Backward implements Layer.
func (g *GELU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if g.lastInput == nil || len(g.lastInput.Data) != len(gradOut.Data) {
		panic("nn: GELU.Backward shape mismatch")
	}
	out := tensor.New(gradOut.Rows, gradOut.Cols)
	for i, v := range g.lastInput.Data {
		out.Data[i] = gradOut.Data[i] * geluGrad(v)
	}
	return out
}

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOutput *tensor.Matrix
}

// NewTanh returns a Tanh layer.
func NewTanh() *Tanh { return &Tanh{} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Params implements Layer.
func (t *Tanh) Params() []*Param { return nil }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	if train {
		t.lastOutput = out.Clone()
	}
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if t.lastOutput == nil || len(t.lastOutput.Data) != len(gradOut.Data) {
		panic("nn: Tanh.Backward shape mismatch")
	}
	out := tensor.New(gradOut.Rows, gradOut.Cols)
	for i, y := range t.lastOutput.Data {
		out.Data[i] = gradOut.Data[i] * (1 - y*y)
	}
	return out
}
