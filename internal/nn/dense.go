package nn

import (
	"fmt"
	"math/rand/v2"

	"compso/internal/tensor"
)

// Dense is a fully connected layer y = [x 1]·W, with the bias folded into
// the last row of W ((in+1)×out). The homogeneous-coordinate form is the
// one K-FAC operates on: the activation factor A then covers weights and
// bias together, as in the reference distributed K-FAC implementations.
type Dense struct {
	In, Out int
	// Weight is the (In+1)×Out combined weight+bias matrix.
	Weight *Param

	lastInput  *tensor.Matrix // cached [x 1], batch×(In+1)
	lastGradPA *tensor.Matrix // cached pre-activation gradient, batch×Out
}

// NewDense creates a Dense layer with He-initialized weights and zero bias.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, Weight: newParam(fmt.Sprintf("dense%dx%d", in, out), in+1, out)}
	initMatrix(d.Weight.W, in, rng)
	// Zero the bias row.
	for j := 0; j < out; j++ {
		d.Weight.W.Data[in*out+j] = 0
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.In, d.Out) }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight} }

// appendOnes returns [x 1]: x with a trailing column of ones.
func appendOnes(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(x.Rows, x.Cols+1)
	for i := 0; i < x.Rows; i++ {
		copy(out.Data[i*out.Cols:], x.Data[i*x.Cols:(i+1)*x.Cols])
		out.Data[i*out.Cols+x.Cols] = 1
	}
	return out
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: %s fed %d features", d.Name(), x.Cols))
	}
	withBias := appendOnes(x)
	if train {
		d.lastInput = withBias
	}
	return tensor.New(0, 0).MatMul(withBias, d.Weight.W)
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if d.lastInput == nil {
		panic("nn: Dense.Backward before training-mode Forward")
	}
	if gradOut.Rows != d.lastInput.Rows || gradOut.Cols != d.Out {
		panic(fmt.Sprintf("nn: %s Backward got %dx%d", d.Name(), gradOut.Rows, gradOut.Cols))
	}
	d.lastGradPA = gradOut.Clone()
	// ∂L/∂W = [x 1]ᵀ · gradOut.
	gradW := tensor.New(0, 0).TMatMul(d.lastInput, gradOut)
	d.Weight.Grad.AXPY(1, gradW)
	// ∂L/∂x = gradOut · Wᵀ, dropping the bias column.
	full := tensor.New(0, 0).MatMulT(gradOut, d.Weight.W)
	gradIn := tensor.New(gradOut.Rows, d.In)
	for i := 0; i < gradOut.Rows; i++ {
		copy(gradIn.Data[i*d.In:(i+1)*d.In], full.Data[i*full.Cols:i*full.Cols+d.In])
	}
	return gradIn
}

// KFACStats implements KFACLayer.
func (d *Dense) KFACStats() (act, grad *tensor.Matrix) {
	if d.lastInput == nil || d.lastGradPA == nil {
		panic("nn: Dense.KFACStats before Forward/Backward")
	}
	return d.lastInput, d.lastGradPA
}

// KFACParam implements KFACLayer.
func (d *Dense) KFACParam() *Param { return d.Weight }
