package nn

import (
	"fmt"
	"math"

	"compso/internal/tensor"
)

// Loss computes a scalar training loss and its gradient w.r.t. the model
// output (already averaged over the batch, ready for Backward).
type Loss interface {
	Name() string
	// Loss returns (mean loss, ∂L/∂logits) for a batch. targets' shape
	// depends on the loss: class indices (batch×1) for cross-entropy,
	// regression targets (batch×dim) for MSE.
	Loss(logits, targets *tensor.Matrix) (float64, *tensor.Matrix)
}

// SoftmaxCrossEntropy is the classification loss; targets hold class
// indices as float64 in a batch×1 matrix.
type SoftmaxCrossEntropy struct{}

// Name implements Loss.
func (SoftmaxCrossEntropy) Name() string { return "softmax-xent" }

// Loss implements Loss.
func (SoftmaxCrossEntropy) Loss(logits, targets *tensor.Matrix) (float64, *tensor.Matrix) {
	if targets.Rows != logits.Rows || targets.Cols != 1 {
		panic(fmt.Sprintf("nn: xent targets %dx%d for logits %dx%d", targets.Rows, targets.Cols, logits.Rows, logits.Cols))
	}
	grad := tensor.New(logits.Rows, logits.Cols)
	var total float64
	invB := 1.0 / float64(logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Data[i*logits.Cols : (i+1)*logits.Cols]
		cls := int(targets.Data[i])
		if cls < 0 || cls >= logits.Cols {
			panic(fmt.Sprintf("nn: class %d outside %d logits", cls, logits.Cols))
		}
		// Stable softmax.
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		logSum := math.Log(sum) + maxV
		total += logSum - row[cls]
		for j, v := range row {
			p := math.Exp(v-maxV) / sum
			g := p
			if j == cls {
				g -= 1
			}
			grad.Data[i*logits.Cols+j] = g * invB
		}
	}
	return total * invB, grad
}

// Accuracy returns the fraction of rows whose argmax matches the target
// class index.
func Accuracy(logits, targets *tensor.Matrix) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		row := logits.Data[i*logits.Cols : (i+1)*logits.Cols]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == int(targets.Data[i]) {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}

// MSE is the mean-squared-error regression loss over batch×dim targets.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Loss implements Loss.
func (MSE) Loss(pred, targets *tensor.Matrix) (float64, *tensor.Matrix) {
	if targets.Rows != pred.Rows || targets.Cols != pred.Cols {
		panic(fmt.Sprintf("nn: MSE targets %dx%d for pred %dx%d", targets.Rows, targets.Cols, pred.Rows, pred.Cols))
	}
	grad := tensor.New(pred.Rows, pred.Cols)
	var total float64
	invN := 1.0 / float64(pred.Rows*pred.Cols)
	for i, p := range pred.Data {
		d := p - targets.Data[i]
		total += d * d
		grad.Data[i] = 2 * d * invN
	}
	return total * invN, grad
}
