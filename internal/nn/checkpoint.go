package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpointing: Save serializes a model's parameters; Load restores them
// into an identically constructed model (same layer stack and shapes).
// The format is a simple self-describing binary: magic, parameter count,
// then per parameter its name, dimensions and float64 values.

const checkpointMagic = "COMPSOCKPT1"

// Save writes all parameters of the model to w.
func Save(model *Sequential, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("nn: save magic: %w", err)
	}
	params := model.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return fmt.Errorf("nn: save count: %w", err)
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.W.Rows)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.W.Cols)); err != nil {
			return err
		}
		for _, v := range p.W.Data {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load restores parameters saved by Save into model, which must have the
// same parameter sequence (names and shapes). It returns a descriptive
// error on any mismatch or corruption.
func Load(model *Sequential, r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: load magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return fmt.Errorf("nn: not a checkpoint (magic %q)", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: load count: %w", err)
	}
	params := model.Params()
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", count, len(params))
	}
	for i, p := range params {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("nn: parameter %d name length: %w", i, err)
		}
		if nameLen > 4096 {
			return fmt.Errorf("nn: parameter %d name length %d implausible", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("nn: parameter %d name: %w", i, err)
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: parameter %d is %q in checkpoint, %q in model", i, name, p.Name)
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return err
		}
		if int(rows) != p.W.Rows || int(cols) != p.W.Cols {
			return fmt.Errorf("nn: parameter %q is %dx%d in checkpoint, %dx%d in model",
				p.Name, rows, cols, p.W.Rows, p.W.Cols)
		}
		for j := range p.W.Data {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("nn: parameter %q values: %w", p.Name, err)
			}
			p.W.Data[j] = math.Float64frombits(bits)
		}
	}
	return nil
}
