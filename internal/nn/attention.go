package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"compso/internal/tensor"
)

// SelfAttention is a multi-head self-attention block with a residual
// connection, operating on token sequences flattened as batch×(Seq·Dim)
// rows (token-major). Its four projections (Q, K, V, output) are Dense
// sub-layers, so K-FAC preconditions them exactly as it preconditions the
// attention weights of the paper's BERT/GPT workloads.
type SelfAttention struct {
	Seq, Dim, Heads int
	// NoResidual disables the built-in residual connection (used when a
	// containing block manages its own residual structure).
	NoResidual     bool
	Wq, Wk, Wv, Wo *Dense

	// Caches from the last training-mode forward.
	batch   int
	probs   []*tensor.Matrix // softmax attention per (batch·head), Seq×Seq
	q, k, v *tensor.Matrix   // projected activations, (batch·Seq)×Dim
}

// NewSelfAttention creates the block. Dim must be divisible by heads.
func NewSelfAttention(seq, dim, heads int, rng *rand.Rand) *SelfAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by %d heads", dim, heads))
	}
	return &SelfAttention{
		Seq: seq, Dim: dim, Heads: heads,
		Wq: NewDense(dim, dim, rng),
		Wk: NewDense(dim, dim, rng),
		Wv: NewDense(dim, dim, rng),
		Wo: NewDense(dim, dim, rng),
	}
}

// Name implements Layer.
func (a *SelfAttention) Name() string {
	return fmt.Sprintf("attention(s%d,d%d,h%d)", a.Seq, a.Dim, a.Heads)
}

// Params implements Layer.
func (a *SelfAttention) Params() []*Param {
	var out []*Param
	for _, d := range a.SubLayers() {
		out = append(out, d.Params()...)
	}
	return out
}

// SubLayers implements Composite: the four projections are the K-FAC
// units.
func (a *SelfAttention) SubLayers() []Layer {
	return []Layer{a.Wq, a.Wk, a.Wv, a.Wo}
}

// tokens reshapes batch×(Seq·Dim) rows into (batch·Seq)×Dim token rows.
func (a *SelfAttention) tokens(x *tensor.Matrix) *tensor.Matrix {
	return tensor.FromSlice(x.Rows*a.Seq, a.Dim, x.Data)
}

// unTokens reshapes token rows back to batch×(Seq·Dim).
func (a *SelfAttention) unTokens(x *tensor.Matrix, batch int) *tensor.Matrix {
	return tensor.FromSlice(batch, a.Seq*a.Dim, x.Data)
}

// headSlice views head h of token t-range for one example as an S×Dh
// matrix copy.
func (a *SelfAttention) headSlice(m *tensor.Matrix, b, h int) *tensor.Matrix {
	dh := a.Dim / a.Heads
	out := tensor.New(a.Seq, dh)
	for t := 0; t < a.Seq; t++ {
		src := m.Data[(b*a.Seq+t)*a.Dim+h*dh : (b*a.Seq+t)*a.Dim+(h+1)*dh]
		copy(out.Data[t*dh:(t+1)*dh], src)
	}
	return out
}

// addHeadSlice scatters an S×Dh head block back into the token-major
// matrix, adding.
func (a *SelfAttention) addHeadSlice(dst *tensor.Matrix, src *tensor.Matrix, b, h int) {
	dh := a.Dim / a.Heads
	for t := 0; t < a.Seq; t++ {
		d := dst.Data[(b*a.Seq+t)*a.Dim+h*dh : (b*a.Seq+t)*a.Dim+(h+1)*dh]
		for j := 0; j < dh; j++ {
			d[j] += src.Data[t*dh+j]
		}
	}
}

// Forward implements Layer.
func (a *SelfAttention) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != a.Seq*a.Dim {
		panic(fmt.Sprintf("nn: %s fed width %d, want %d", a.Name(), x.Cols, a.Seq*a.Dim))
	}
	batch := x.Rows
	tok := a.tokens(x)
	q := a.Wq.Forward(tok, train)
	k := a.Wk.Forward(tok, train)
	v := a.Wv.Forward(tok, train)

	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	attnOut := tensor.New(batch*a.Seq, a.Dim)
	var probs []*tensor.Matrix
	for b := 0; b < batch; b++ {
		for h := 0; h < a.Heads; h++ {
			qh := a.headSlice(q, b, h)
			kh := a.headSlice(k, b, h)
			vh := a.headSlice(v, b, h)
			scores := tensor.New(0, 0).MatMulT(qh, kh)
			scores.Scale(scale, scores)
			p := softmaxRows(scores)
			if train {
				probs = append(probs, p)
			}
			o := tensor.New(0, 0).MatMul(p, vh)
			a.addHeadSlice(attnOut, o, b, h)
		}
	}
	y := a.Wo.Forward(attnOut, train)
	if train {
		a.batch, a.probs = batch, probs
		a.q, a.k, a.v = q, k, v
	}
	out := a.unTokens(y, batch).Clone()
	if !a.NoResidual {
		out.AXPY(1, x)
	}
	return out
}

// Backward implements Layer.
func (a *SelfAttention) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if a.probs == nil {
		panic("nn: SelfAttention.Backward before training-mode Forward")
	}
	batch := a.batch
	if gradOut.Rows != batch || gradOut.Cols != a.Seq*a.Dim {
		panic(fmt.Sprintf("nn: %s Backward got %dx%d", a.Name(), gradOut.Rows, gradOut.Cols))
	}
	gradTok := a.tokens(gradOut)
	// Through the output projection.
	gradAttn := a.Wo.Backward(gradTok)

	dh := a.Dim / a.Heads
	scale := 1 / math.Sqrt(float64(dh))
	gradQ := tensor.New(batch*a.Seq, a.Dim)
	gradK := tensor.New(batch*a.Seq, a.Dim)
	gradV := tensor.New(batch*a.Seq, a.Dim)
	pi := 0
	for b := 0; b < batch; b++ {
		for h := 0; h < a.Heads; h++ {
			p := a.probs[pi]
			pi++
			gOh := a.headSlice(gradAttn, b, h)
			qh := a.headSlice(a.q, b, h)
			kh := a.headSlice(a.k, b, h)
			vh := a.headSlice(a.v, b, h)
			// o = p·v → ∂p = gO·vᵀ, ∂v = pᵀ·gO.
			gradP := tensor.New(0, 0).MatMulT(gOh, vh)
			gVh := tensor.New(0, 0).TMatMul(p, gOh)
			// Softmax backward per row: gS = p ⊙ (gP − ⟨gP, p⟩row).
			gradS := tensor.New(a.Seq, a.Seq)
			for t := 0; t < a.Seq; t++ {
				var dot float64
				for j := 0; j < a.Seq; j++ {
					dot += gradP.Data[t*a.Seq+j] * p.Data[t*a.Seq+j]
				}
				for j := 0; j < a.Seq; j++ {
					gradS.Data[t*a.Seq+j] = p.Data[t*a.Seq+j] * (gradP.Data[t*a.Seq+j] - dot)
				}
			}
			gradS.Scale(scale, gradS)
			// scores = q·kᵀ → ∂q = gS·k, ∂k = gSᵀ·q.
			gQh := tensor.New(0, 0).MatMul(gradS, kh)
			gKh := tensor.New(0, 0).TMatMul(gradS, qh)
			a.addHeadSlice(gradQ, gQh, b, h)
			a.addHeadSlice(gradK, gKh, b, h)
			a.addHeadSlice(gradV, gVh, b, h)
		}
	}
	gradIn := a.Wq.Backward(gradQ)
	gradIn.AXPY(1, a.Wk.Backward(gradK))
	gradIn.AXPY(1, a.Wv.Backward(gradV))
	out := a.unTokens(gradIn, batch).Clone()
	if !a.NoResidual {
		out.AXPY(1, gradOut)
	}
	return out
}

// softmaxRows applies a numerically stable softmax to each row.
func softmaxRows(m *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxV)
			out.Data[i*m.Cols+j] = e
			sum += e
		}
		for j := range row {
			out.Data[i*m.Cols+j] /= sum
		}
	}
	return out
}
