package nn

import (
	"fmt"
	"math/rand/v2"

	"compso/internal/tensor"
)

// Conv2D is a 2-D convolution implemented via im2col: every receptive
// field becomes a row of an unrolled matrix, turning the convolution into
// a Dense-style GEMM over (kernel²·inChannels + 1) columns. That is also
// exactly how K-FAC treats convolutions: the activation factor A is built
// from the unrolled patch rows, the gradient factor G from the per-position
// pre-activation gradients (Grosse & Martens' KFC approximation).
//
// Inputs are batch×(C·H·W) matrices in CHW order; outputs are
// batch×(OutC·OH·OW) with OH = H−K+1 (valid padding, stride 1).
type Conv2D struct {
	InC, H, W  int
	OutC, K    int
	OH, OW     int
	Weight     *Param // (K·K·InC + 1) × OutC, bias in the last row
	lastCols   *tensor.Matrix
	lastGradPA *tensor.Matrix
}

// NewConv2D creates a valid-padding stride-1 convolution layer.
func NewConv2D(inC, h, w, outC, k int, rng *rand.Rand) *Conv2D {
	if k > h || k > w {
		panic(fmt.Sprintf("nn: conv kernel %d larger than input %dx%d", k, h, w))
	}
	c := &Conv2D{
		InC: inC, H: h, W: w, OutC: outC, K: k,
		OH: h - k + 1, OW: w - k + 1,
		Weight: newParam(fmt.Sprintf("conv%dx%d", inC, outC), k*k*inC+1, outC),
	}
	initMatrix(c.Weight.W, k*k*inC, rng)
	for j := 0; j < outC; j++ {
		c.Weight.W.Data[k*k*inC*outC+j] = 0
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv(%dx%dx%d->%d,k%d)", c.InC, c.H, c.W, c.OutC, c.K)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight} }

// OutFeatures returns the flattened output width.
func (c *Conv2D) OutFeatures() int { return c.OutC * c.OH * c.OW }

// im2col unrolls a batch into (batch·OH·OW) × (K·K·InC + 1) patch rows
// with a trailing homogeneous one.
func (c *Conv2D) im2col(x *tensor.Matrix) *tensor.Matrix {
	positions := c.OH * c.OW
	cols := c.K*c.K*c.InC + 1
	out := tensor.New(x.Rows*positions, cols)
	for b := 0; b < x.Rows; b++ {
		img := x.Data[b*x.Cols : (b+1)*x.Cols]
		for oy := 0; oy < c.OH; oy++ {
			for ox := 0; ox < c.OW; ox++ {
				row := out.Data[(b*positions+oy*c.OW+ox)*cols:]
				idx := 0
				for ch := 0; ch < c.InC; ch++ {
					chBase := ch * c.H * c.W
					for ky := 0; ky < c.K; ky++ {
						srcBase := chBase + (oy+ky)*c.W + ox
						copy(row[idx:idx+c.K], img[srcBase:srcBase+c.K])
						idx += c.K
					}
				}
				row[cols-1] = 1
			}
		}
	}
	return out
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != c.InC*c.H*c.W {
		panic(fmt.Sprintf("nn: %s fed %d features, want %d", c.Name(), x.Cols, c.InC*c.H*c.W))
	}
	colsM := c.im2col(x)
	if train {
		c.lastCols = colsM
	}
	// (batch·positions)×cols · cols×OutC.
	prod := tensor.New(0, 0).MatMul(colsM, c.Weight.W)
	// Re-layout to batch×(OutC·OH·OW) CHW order.
	positions := c.OH * c.OW
	out := tensor.New(x.Rows, c.OutFeatures())
	for b := 0; b < x.Rows; b++ {
		for p := 0; p < positions; p++ {
			src := prod.Data[(b*positions+p)*c.OutC : (b*positions+p+1)*c.OutC]
			for ch, v := range src {
				out.Data[b*out.Cols+ch*positions+p] = v
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if c.lastCols == nil {
		panic("nn: Conv2D.Backward before training-mode Forward")
	}
	batch := gradOut.Rows
	positions := c.OH * c.OW
	if gradOut.Cols != c.OutFeatures() {
		panic(fmt.Sprintf("nn: %s Backward got width %d", c.Name(), gradOut.Cols))
	}
	// Re-layout gradOut to (batch·positions)×OutC rows.
	gpa := tensor.New(batch*positions, c.OutC)
	for b := 0; b < batch; b++ {
		for p := 0; p < positions; p++ {
			for ch := 0; ch < c.OutC; ch++ {
				gpa.Data[(b*positions+p)*c.OutC+ch] = gradOut.Data[b*gradOut.Cols+ch*positions+p]
			}
		}
	}
	c.lastGradPA = gpa
	gradW := tensor.New(0, 0).TMatMul(c.lastCols, gpa)
	c.Weight.Grad.AXPY(1, gradW)

	// ∂L/∂cols = gpa · Wᵀ, then col2im scatter-add.
	gradCols := tensor.New(0, 0).MatMulT(gpa, c.Weight.W)
	gradIn := tensor.New(batch, c.InC*c.H*c.W)
	colsWidth := c.K*c.K*c.InC + 1
	for b := 0; b < batch; b++ {
		img := gradIn.Data[b*gradIn.Cols : (b+1)*gradIn.Cols]
		for oy := 0; oy < c.OH; oy++ {
			for ox := 0; ox < c.OW; ox++ {
				row := gradCols.Data[(b*positions+oy*c.OW+ox)*colsWidth:]
				idx := 0
				for ch := 0; ch < c.InC; ch++ {
					chBase := ch * c.H * c.W
					for ky := 0; ky < c.K; ky++ {
						dstBase := chBase + (oy+ky)*c.W + ox
						for kx := 0; kx < c.K; kx++ {
							img[dstBase+kx] += row[idx]
							idx++
						}
					}
				}
			}
		}
	}
	return gradIn
}

// KFACStats implements KFACLayer.
func (c *Conv2D) KFACStats() (act, grad *tensor.Matrix) {
	if c.lastCols == nil || c.lastGradPA == nil {
		panic("nn: Conv2D.KFACStats before Forward/Backward")
	}
	return c.lastCols, c.lastGradPA
}

// KFACParam implements KFACLayer.
func (c *Conv2D) KFACParam() *Param { return c.Weight }
