package nn

import (
	"fmt"
	"math"

	"compso/internal/tensor"
)

// MaxPool2D applies non-overlapping K×K max pooling per channel on
// batch×(C·H·W) inputs (CHW order). H and W must be divisible by K.
type MaxPool2D struct {
	C, H, W, K int
	OH, OW     int
	argmax     []int // flat input index chosen per output element
	lastBatch  int
}

// NewMaxPool2D creates the pooling layer.
func NewMaxPool2D(c, h, w, k int) *MaxPool2D {
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: maxpool %dx%d not divisible by %d", h, w, k))
	}
	return &MaxPool2D{C: c, H: h, W: w, K: k, OH: h / k, OW: w / k}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string {
	return fmt.Sprintf("maxpool(%dx%dx%d,k%d)", m.C, m.H, m.W, m.K)
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutFeatures returns the flattened output width.
func (m *MaxPool2D) OutFeatures() int { return m.C * m.OH * m.OW }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != m.C*m.H*m.W {
		panic(fmt.Sprintf("nn: %s fed width %d", m.Name(), x.Cols))
	}
	out := tensor.New(x.Rows, m.OutFeatures())
	var argmax []int
	if train {
		argmax = make([]int, x.Rows*m.OutFeatures())
	}
	for b := 0; b < x.Rows; b++ {
		img := x.Data[b*x.Cols : (b+1)*x.Cols]
		for c := 0; c < m.C; c++ {
			for oy := 0; oy < m.OH; oy++ {
				for ox := 0; ox < m.OW; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < m.K; ky++ {
						for kx := 0; kx < m.K; kx++ {
							idx := c*m.H*m.W + (oy*m.K+ky)*m.W + ox*m.K + kx
							if img[idx] > best {
								best = img[idx]
								bestIdx = idx
							}
						}
					}
					outIdx := b*m.OutFeatures() + c*m.OH*m.OW + oy*m.OW + ox
					out.Data[outIdx] = best
					if train {
						argmax[outIdx] = bestIdx
					}
				}
			}
		}
	}
	if train {
		m.argmax, m.lastBatch = argmax, x.Rows
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if m.argmax == nil || gradOut.Rows != m.lastBatch || gradOut.Cols != m.OutFeatures() {
		panic("nn: MaxPool2D.Backward shape mismatch")
	}
	gradIn := tensor.New(gradOut.Rows, m.C*m.H*m.W)
	for b := 0; b < gradOut.Rows; b++ {
		for o := 0; o < m.OutFeatures(); o++ {
			outIdx := b*m.OutFeatures() + o
			gradIn.Data[b*gradIn.Cols+m.argmax[outIdx]] += gradOut.Data[outIdx]
		}
	}
	return gradIn
}
