package nn

import (
	"fmt"
	"math/rand/v2"

	"compso/internal/tensor"
)

// TransformerBlock is a full pre-LN transformer encoder block:
//
//	h   = x + Attention(LN1(x))
//	out = h + W2·GELU(W1·LN2(h))
//
// operating on batch×(Seq·Dim) token-major rows. Its attention projections
// and FFN matrices are Dense sub-layers, so K-FAC preconditions exactly
// the parameter set it preconditions in the paper's BERT/GPT workloads
// (q/k/v/o/ffn1/ffn2 per block).
type TransformerBlock struct {
	Seq, Dim, Heads, FFN int

	ln1  *SeqLayerNorm
	attn *SelfAttention
	ln2  *SeqLayerNorm
	ffn1 *Dense
	act  *GELU
	ffn2 *Dense
}

// NewTransformerBlock creates the block with an FFN hidden width of ffn.
func NewTransformerBlock(seq, dim, heads, ffn int, rng *rand.Rand) *TransformerBlock {
	attn := NewSelfAttention(seq, dim, heads, rng)
	attn.NoResidual = true // the block manages its own residuals
	return &TransformerBlock{
		Seq: seq, Dim: dim, Heads: heads, FFN: ffn,
		ln1:  NewSeqLayerNorm(seq, dim),
		attn: attn,
		ln2:  NewSeqLayerNorm(seq, dim),
		ffn1: NewDense(dim, ffn, rng),
		act:  NewGELU(),
		ffn2: NewDense(ffn, dim, rng),
	}
}

// Name implements Layer.
func (b *TransformerBlock) Name() string {
	return fmt.Sprintf("transformer(s%d,d%d,h%d,f%d)", b.Seq, b.Dim, b.Heads, b.FFN)
}

// Params implements Layer.
func (b *TransformerBlock) Params() []*Param {
	var out []*Param
	for _, l := range []Layer{b.ln1, b.attn, b.ln2, b.ffn1, b.ffn2} {
		out = append(out, l.Params()...)
	}
	return out
}

// SubLayers implements Composite, exposing the K-FAC-preconditionable
// projections (the attention composite recurses further).
func (b *TransformerBlock) SubLayers() []Layer {
	return []Layer{b.attn, b.ffn1, b.ffn2}
}

// Forward implements Layer.
func (b *TransformerBlock) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != b.Seq*b.Dim {
		panic(fmt.Sprintf("nn: %s fed width %d", b.Name(), x.Cols))
	}
	// Attention sub-block with residual.
	h := b.attn.Forward(b.ln1.Forward(x, train), train).Clone()
	h.AXPY(1, x)
	// FFN sub-block on per-token rows, with residual.
	norm := b.ln2.Forward(h, train)
	tokens := tensor.FromSlice(norm.Rows*b.Seq, b.Dim, norm.Data)
	f := b.ffn2.Forward(b.act.Forward(b.ffn1.Forward(tokens, train), train), train)
	out := tensor.FromSlice(h.Rows, b.Seq*b.Dim, f.Data).Clone()
	out.AXPY(1, h)
	return out
}

// Backward implements Layer.
func (b *TransformerBlock) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	// FFN path.
	gTokens := tensor.FromSlice(gradOut.Rows*b.Seq, b.Dim, gradOut.Data)
	gFFNTokens := b.ffn1.Backward(b.act.Backward(b.ffn2.Backward(gTokens)))
	gNorm := tensor.FromSlice(gradOut.Rows, b.Seq*b.Dim, gFFNTokens.Data)
	gH := b.ln2.Backward(gNorm).Clone()
	// FFN residual.
	gH.AXPY(1, gradOut)

	// Attention path.
	gLn1 := b.attn.Backward(gH)
	gX := b.ln1.Backward(gLn1).Clone()
	// Attention residual.
	gX.AXPY(1, gH)
	return gX
}
