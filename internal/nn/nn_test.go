package nn

import (
	"bytes"
	"math"
	"testing"

	"compso/internal/tensor"
	"compso/internal/xrand"
)

// numericalGradCheck compares a layer's analytic parameter and input
// gradients against central finite differences through an MSE-style
// scalar loss sum(output²)/2.
func numericalGradCheck(t *testing.T, layer Layer, in *tensor.Matrix, tol float64) {
	t.Helper()
	lossOf := func(x *tensor.Matrix) float64 {
		out := layer.Forward(x, false)
		var s float64
		for _, v := range out.Data {
			s += v * v / 2
		}
		return s
	}
	// Analytic pass.
	out := layer.Forward(in, true)
	gradOut := out.Clone() // d(sum o²/2)/do = o
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	gradIn := layer.Backward(gradOut)

	const h = 1e-5
	// Parameter gradients.
	for _, p := range layer.Params() {
		for i := 0; i < len(p.W.Data); i += 1 + len(p.W.Data)/25 { // sample entries
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			up := lossOf(in)
			p.W.Data[i] = orig - h
			down := lossOf(in)
			p.W.Data[i] = orig
			num := (up - down) / (2 * h)
			got := p.Grad.Data[i]
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s param %s[%d]: analytic %g vs numerical %g", layer.Name(), p.Name, i, got, num)
			}
		}
	}
	// Input gradients (skip layers with non-differentiable inputs).
	if _, isEmbed := layer.(*Embedding); isEmbed {
		return
	}
	for i := 0; i < len(in.Data); i += 1 + len(in.Data)/25 {
		orig := in.Data[i]
		in.Data[i] = orig + h
		up := lossOf(in)
		in.Data[i] = orig - h
		down := lossOf(in)
		in.Data[i] = orig
		num := (up - down) / (2 * h)
		got := gradIn.Data[i]
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Fatalf("%s input[%d]: analytic %g vs numerical %g", layer.Name(), i, got, num)
		}
	}
}

func randomInput(rows, cols int, seed int64) *tensor.Matrix {
	rng := xrand.NewSeeded(seed)
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 1, xrand.NewSeeded(1))
	// W = [[2],[3]], bias = 1.
	d.Weight.W.Data[0] = 2
	d.Weight.W.Data[1] = 3
	d.Weight.W.Data[2] = 1
	out := d.Forward(tensor.FromSlice(1, 2, []float64{10, 100}), false)
	if got := out.At(0, 0); got != 10*2+100*3+1 {
		t.Fatalf("dense out = %g, want 321", got)
	}
}

func TestDenseGradCheck(t *testing.T) {
	d := NewDense(5, 3, xrand.NewSeeded(2))
	numericalGradCheck(t, d, randomInput(4, 5, 3), 1e-5)
}

func TestConv2DGradCheck(t *testing.T) {
	c := NewConv2D(2, 6, 6, 3, 3, xrand.NewSeeded(4))
	numericalGradCheck(t, c, randomInput(2, 2*6*6, 5), 1e-4)
}

func TestConv2DOutputShape(t *testing.T) {
	c := NewConv2D(3, 8, 8, 4, 3, xrand.NewSeeded(6))
	out := c.Forward(randomInput(5, 3*8*8, 7), false)
	if out.Rows != 5 || out.Cols != 4*6*6 {
		t.Fatalf("conv out %dx%d, want 5x%d", out.Rows, out.Cols, 4*6*6)
	}
}

func TestReLUGradCheck(t *testing.T) {
	// Shift inputs away from 0 to avoid the kink in finite differences.
	in := randomInput(3, 7, 8)
	for i := range in.Data {
		if math.Abs(in.Data[i]) < 0.1 {
			in.Data[i] += 0.2
		}
	}
	numericalGradCheck(t, NewReLU(), in, 1e-5)
}

func TestGELUGradCheck(t *testing.T) {
	numericalGradCheck(t, NewGELU(), randomInput(3, 7, 9), 1e-4)
}

func TestTanhGradCheck(t *testing.T) {
	numericalGradCheck(t, NewTanh(), randomInput(3, 7, 10), 1e-5)
}

func TestLayerNormGradCheck(t *testing.T) {
	numericalGradCheck(t, NewLayerNorm(6), randomInput(4, 6, 11), 1e-4)
}

func TestEmbeddingGradCheck(t *testing.T) {
	e := NewEmbedding(10, 4, 5, xrand.NewSeeded(12))
	in := tensor.New(3, 5)
	rng := xrand.NewSeeded(13)
	for i := range in.Data {
		in.Data[i] = float64(rng.IntN(10))
	}
	numericalGradCheck(t, e, in, 1e-5)
}

func TestSoftmaxCrossEntropyGradCheck(t *testing.T) {
	logits := randomInput(4, 5, 14)
	targets := tensor.FromSlice(4, 1, []float64{0, 3, 2, 4})
	loss := SoftmaxCrossEntropy{}
	base, grad := loss.Loss(logits, targets)
	if base <= 0 {
		t.Fatalf("loss = %g, want > 0", base)
	}
	const h = 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + h
		up, _ := loss.Loss(logits, targets)
		logits.Data[i] = orig - h
		down, _ := loss.Loss(logits, targets)
		logits.Data[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("xent grad[%d]: analytic %g vs numerical %g", i, grad.Data[i], num)
		}
	}
}

func TestMSEGradCheck(t *testing.T) {
	pred := randomInput(3, 4, 15)
	targets := randomInput(3, 4, 16)
	base, grad := MSE{}.Loss(pred, targets)
	if base < 0 {
		t.Fatalf("MSE loss %g < 0", base)
	}
	const h = 1e-6
	for i := range pred.Data {
		orig := pred.Data[i]
		pred.Data[i] = orig + h
		up, _ := MSE{}.Loss(pred, targets)
		pred.Data[i] = orig - h
		down, _ := MSE{}.Loss(pred, targets)
		pred.Data[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-grad.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("MSE grad[%d]: analytic %g vs numerical %g", i, grad.Data[i], num)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float64{1, 0, 0, 1, 2, 1})
	targets := tensor.FromSlice(3, 1, []float64{0, 1, 1})
	if got := Accuracy(logits, targets); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %g, want 2/3", got)
	}
}

func TestSequentialTrainsOnBlobs(t *testing.T) {
	// End-to-end sanity: a 2-layer MLP must fit a separable 3-class problem
	// with plain gradient descent.
	rng := xrand.NewSeeded(17)
	model := NewSequential(
		NewDense(2, 16, rng),
		NewReLU(),
		NewDense(16, 3, rng),
	)
	loss := SoftmaxCrossEntropy{}
	centers := [][2]float64{{2, 0}, {-2, 2}, {0, -3}}
	makeBatch := func(n int) (*tensor.Matrix, *tensor.Matrix) {
		x := tensor.New(n, 2)
		y := tensor.New(n, 1)
		for i := 0; i < n; i++ {
			c := rng.IntN(3)
			x.Data[i*2] = centers[c][0] + rng.NormFloat64()*0.3
			x.Data[i*2+1] = centers[c][1] + rng.NormFloat64()*0.3
			y.Data[i] = float64(c)
		}
		return x, y
	}
	var first, last float64
	for iter := 0; iter < 200; iter++ {
		x, y := makeBatch(32)
		logits := model.Forward(x, true)
		l, grad := loss.Loss(logits, y)
		if iter == 0 {
			first = l
		}
		last = l
		model.ZeroGrad()
		model.Backward(grad)
		for _, p := range model.Params() {
			for i := range p.W.Data {
				p.W.Data[i] -= 0.1 * p.Grad.Data[i]
			}
		}
	}
	if last > first/3 {
		t.Fatalf("loss did not drop: %g -> %g", first, last)
	}
	x, y := makeBatch(200)
	if acc := Accuracy(model.Forward(x, false), y); acc < 0.95 {
		t.Fatalf("accuracy %g, want >= 0.95", acc)
	}
}

func TestKFACStatsShapes(t *testing.T) {
	rng := xrand.NewSeeded(18)
	model := NewSequential(
		NewDense(4, 6, rng),
		NewReLU(),
		NewDense(6, 2, rng),
	)
	x := randomInput(5, 4, 19)
	logits := model.Forward(x, true)
	_, grad := SoftmaxCrossEntropy{}.Loss(logits, tensor.FromSlice(5, 1, []float64{0, 1, 0, 1, 0}))
	model.Backward(grad)
	names, layers := model.KFACLayers()
	if len(layers) != 2 {
		t.Fatalf("found %d KFAC layers, want 2", len(layers))
	}
	if names[0] == names[1] {
		t.Fatal("KFAC layer names not unique")
	}
	a, g := layers[0].KFACStats()
	if a.Rows != 5 || a.Cols != 5 { // in+1
		t.Fatalf("act stats %dx%d, want 5x5", a.Rows, a.Cols)
	}
	if g.Rows != 5 || g.Cols != 6 {
		t.Fatalf("grad stats %dx%d, want 5x6", g.Rows, g.Cols)
	}
	if p := layers[0].KFACParam(); p.W.Rows != 5 || p.W.Cols != 6 {
		t.Fatalf("KFAC param %dx%d, want 5x6", p.W.Rows, p.W.Cols)
	}
}

func TestConvKFACStatsRowsArePositions(t *testing.T) {
	c := NewConv2D(1, 5, 5, 2, 3, xrand.NewSeeded(20))
	x := randomInput(3, 25, 21)
	out := c.Forward(x, true)
	c.Backward(out.Clone())
	a, g := c.KFACStats()
	positions := 3 * 3 // (5-3+1)²
	if a.Rows != 3*positions || g.Rows != 3*positions {
		t.Fatalf("stats rows %d/%d, want %d", a.Rows, g.Rows, 3*positions)
	}
}

func TestParamCount(t *testing.T) {
	rng := xrand.NewSeeded(22)
	model := NewSequential(NewDense(10, 5, rng), NewDense(5, 2, rng))
	want := 11*5 + 6*2
	if got := model.ParamCount(); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

func TestDenseShapePanics(t *testing.T) {
	d := NewDense(3, 2, xrand.NewSeeded(23))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width Forward did not panic")
		}
	}()
	d.Forward(tensor.New(1, 4), false)
}

func TestSelfAttentionGradCheck(t *testing.T) {
	a := NewSelfAttention(4, 6, 2, xrand.NewSeeded(40))
	numericalGradCheck(t, a, randomInput(2, 4*6, 41), 2e-4)
}

func TestSelfAttentionShapes(t *testing.T) {
	a := NewSelfAttention(5, 8, 4, xrand.NewSeeded(42))
	out := a.Forward(randomInput(3, 40, 43), false)
	if out.Rows != 3 || out.Cols != 40 {
		t.Fatalf("attention out %dx%d", out.Rows, out.Cols)
	}
	if len(a.Params()) != 4 {
		t.Fatalf("attention params %d, want 4", len(a.Params()))
	}
}

func TestSelfAttentionBadDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dim not divisible by heads did not panic")
		}
	}()
	NewSelfAttention(4, 6, 4, xrand.NewSeeded(44))
}

func TestSelfAttentionKFACDiscovery(t *testing.T) {
	rng := xrand.NewSeeded(45)
	model := NewSequential(
		NewSelfAttention(4, 8, 2, rng),
		NewMeanPool(4, 8),
		NewDense(8, 3, rng),
	)
	names, layers := model.KFACLayers()
	if len(layers) != 5 { // Wq, Wk, Wv, Wo, classifier
		t.Fatalf("found %d KFAC layers: %v", len(layers), names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate KFAC layer name %q", n)
		}
		seen[n] = true
	}
}

func TestEmbeddingSeqGradCheck(t *testing.T) {
	e := NewEmbeddingSeq(8, 4, 5, xrand.NewSeeded(46))
	in := tensor.New(3, 5)
	rng := xrand.NewSeeded(47)
	for i := range in.Data {
		in.Data[i] = float64(rng.IntN(8))
	}
	// Embedding inputs are ids; only check parameter gradients.
	lossOf := func() float64 {
		out := e.Forward(in, false)
		var s float64
		for _, v := range out.Data {
			s += v * v / 2
		}
		return s
	}
	out := e.Forward(in, true)
	for _, p := range e.Params() {
		p.ZeroGrad()
	}
	e.Backward(out.Clone())
	const h = 1e-5
	for _, p := range e.Params() {
		for i := 0; i < len(p.W.Data); i += 1 + len(p.W.Data)/20 {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			up := lossOf()
			p.W.Data[i] = orig - h
			down := lossOf()
			p.W.Data[i] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-p.Grad.Data[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %g vs numerical %g", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestSeqLayerNormGradCheck(t *testing.T) {
	ln := NewSeqLayerNorm(3, 5)
	numericalGradCheck(t, ln, randomInput(2, 15, 48), 1e-4)
}

func TestMeanPoolGradCheck(t *testing.T) {
	numericalGradCheck(t, NewMeanPool(4, 3), randomInput(3, 12, 49), 1e-5)
}

func TestTinyTransformerLearns(t *testing.T) {
	// A genuine (tiny) transformer — embedding + attention + LN + pool —
	// must fit a token-classification task.
	rng := xrand.NewSeeded(50)
	const vocab, seq, dim, classes = 12, 6, 8, 3
	model := NewSequential(
		NewEmbeddingSeq(vocab, dim, seq, rng),
		NewSelfAttention(seq, dim, 2, rng),
		NewSeqLayerNorm(seq, dim),
		NewMeanPool(seq, dim),
		NewDense(dim, classes, rng),
	)
	loss := SoftmaxCrossEntropy{}
	sample := func(n int) (*tensor.Matrix, *tensor.Matrix) {
		x := tensor.New(n, seq)
		y := tensor.New(n, 1)
		for i := 0; i < n; i++ {
			cls := rng.IntN(classes)
			y.Data[i] = float64(cls)
			for s := 0; s < seq; s++ {
				// Class determines which token triple dominates.
				x.Data[i*seq+s] = float64(cls*4 + rng.IntN(4))
			}
		}
		return x, y
	}
	var first, last float64
	for it := 0; it < 200; it++ {
		x, y := sample(32)
		logits := model.Forward(x, true)
		l, grad := loss.Loss(logits, y)
		if it == 0 {
			first = l
		}
		last = l
		model.ZeroGrad()
		model.Backward(grad)
		for _, p := range model.Params() {
			for j := range p.W.Data {
				p.W.Data[j] -= 0.05 * p.Grad.Data[j]
			}
		}
	}
	if last > first/3 {
		t.Fatalf("transformer did not learn: %g -> %g", first, last)
	}
}

func TestMaxPool2DForwardKnown(t *testing.T) {
	m := NewMaxPool2D(1, 4, 4, 2)
	in := tensor.FromSlice(1, 16, []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	out := m.Forward(in, false)
	want := []float64{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("maxpool out[%d] = %g, want %g", i, out.Data[i], w)
		}
	}
}

func TestMaxPool2DGradCheck(t *testing.T) {
	// Perturb inputs away from ties so the max is differentiable.
	in := randomInput(2, 2*4*4, 51)
	for i := range in.Data {
		in.Data[i] += float64(i) * 1e-3
	}
	numericalGradCheck(t, NewMaxPool2D(2, 4, 4, 2), in, 1e-5)
}

func TestMaxPool2DBadDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible maxpool did not panic")
		}
	}()
	NewMaxPool2D(1, 5, 4, 2)
}

func TestCheckpointRoundTrip(t *testing.T) {
	build := func(seed int64) *Sequential {
		rng := xrand.NewSeeded(seed)
		return NewSequential(
			NewDense(4, 8, rng),
			NewReLU(),
			NewDense(8, 3, rng),
		)
	}
	src := build(70)
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	dst := build(71) // different init
	if err := Load(dst, &buf); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != dp[i].W.Data[j] {
				t.Fatalf("param %d[%d] differs after load", i, j)
			}
		}
	}
	// Identical predictions.
	x := randomInput(3, 4, 72)
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func TestCheckpointMismatchErrors(t *testing.T) {
	rng := xrand.NewSeeded(73)
	src := NewSequential(NewDense(4, 8, rng))
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// Wrong shape.
	other := NewSequential(NewDense(4, 9, xrand.NewSeeded(74)))
	if err := Load(other, bytes.NewReader(saved)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// Wrong parameter count.
	two := NewSequential(NewDense(4, 8, rng), NewDense(8, 2, rng))
	if err := Load(two, bytes.NewReader(saved)); err == nil {
		t.Fatal("count mismatch accepted")
	}
	// Truncated stream.
	same := NewSequential(NewDense(4, 8, xrand.NewSeeded(75)))
	if err := Load(same, bytes.NewReader(saved[:len(saved)/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	// Garbage magic.
	if err := Load(same, bytes.NewReader([]byte("not a checkpoint at all"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTransformerBlockGradCheck(t *testing.T) {
	b := NewTransformerBlock(3, 4, 2, 8, xrand.NewSeeded(80))
	numericalGradCheck(t, b, randomInput(2, 12, 81), 3e-4)
}

func TestTransformerBlockKFACDiscovery(t *testing.T) {
	rng := xrand.NewSeeded(82)
	model := NewSequential(
		NewTransformerBlock(4, 8, 2, 16, rng),
		NewMeanPool(4, 8),
		NewDense(8, 2, rng),
	)
	names, layers := model.KFACLayers()
	// q,k,v,o + ffn1 + ffn2 + classifier = 7.
	if len(layers) != 7 {
		t.Fatalf("found %d KFAC layers: %v", len(layers), names)
	}
}

func TestTransformerBlockLearns(t *testing.T) {
	rng := xrand.NewSeeded(83)
	const vocab, seq, dim, classes = 10, 5, 8, 3
	model := NewSequential(
		NewEmbeddingSeq(vocab, dim, seq, rng),
		NewTransformerBlock(seq, dim, 2, 16, rng),
		NewMeanPool(seq, dim),
		NewDense(dim, classes, rng),
	)
	loss := SoftmaxCrossEntropy{}
	sample := func(n int) (*tensor.Matrix, *tensor.Matrix) {
		x := tensor.New(n, seq)
		y := tensor.New(n, 1)
		for i := 0; i < n; i++ {
			cls := rng.IntN(classes)
			y.Data[i] = float64(cls)
			for s := 0; s < seq; s++ {
				x.Data[i*seq+s] = float64(cls*3 + rng.IntN(3))
			}
		}
		return x, y
	}
	var first, last float64
	for it := 0; it < 150; it++ {
		x, y := sample(32)
		logits := model.Forward(x, true)
		l, grad := loss.Loss(logits, y)
		if it == 0 {
			first = l
		}
		last = l
		model.ZeroGrad()
		model.Backward(grad)
		for _, p := range model.Params() {
			for j := range p.W.Data {
				p.W.Data[j] -= 0.05 * p.Grad.Data[j]
			}
		}
	}
	if last > first/2 {
		t.Fatalf("transformer block did not learn: %g -> %g", first, last)
	}
}

func TestSelfAttentionNoResidualGradCheck(t *testing.T) {
	a := NewSelfAttention(4, 6, 2, xrand.NewSeeded(84))
	a.NoResidual = true
	numericalGradCheck(t, a, randomInput(2, 24, 85), 2e-4)
}
