package nn

import (
	"fmt"
	"math"

	"compso/internal/tensor"
)

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies a learned per-feature affine (gamma, beta). It is updated by the
// first-order path only — matching the distributed K-FAC systems the paper
// builds on, which precondition the dense/conv layers and leave norm
// parameters to SGD.
type LayerNorm struct {
	Dim   int
	Gamma *Param // 1×Dim
	Beta  *Param // 1×Dim
	eps   float64

	lastNorm *tensor.Matrix // normalized input
	lastStd  []float64      // per-row stddev
}

// NewLayerNorm creates a LayerNorm over rows of width dim.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{
		Dim:   dim,
		Gamma: newParam(fmt.Sprintf("ln%d.gamma", dim), 1, dim),
		Beta:  newParam(fmt.Sprintf("ln%d.beta", dim), 1, dim),
		eps:   1e-5,
	}
	for i := range ln.Gamma.W.Data {
		ln.Gamma.W.Data[i] = 1
	}
	return ln
}

// Name implements Layer.
func (ln *LayerNorm) Name() string { return fmt.Sprintf("layernorm(%d)", ln.Dim) }

// Params implements Layer.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// Forward implements Layer.
func (ln *LayerNorm) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != ln.Dim {
		panic(fmt.Sprintf("nn: %s fed width %d", ln.Name(), x.Cols))
	}
	out := tensor.New(x.Rows, x.Cols)
	norm := tensor.New(x.Rows, x.Cols)
	stds := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		var varSum float64
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		std := math.Sqrt(varSum/float64(len(row)) + ln.eps)
		stds[i] = std
		for j, v := range row {
			nv := (v - mean) / std
			norm.Data[i*x.Cols+j] = nv
			out.Data[i*x.Cols+j] = nv*ln.Gamma.W.Data[j] + ln.Beta.W.Data[j]
		}
	}
	if train {
		ln.lastNorm = norm
		ln.lastStd = stds
	}
	return out
}

// Backward implements Layer.
func (ln *LayerNorm) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if ln.lastNorm == nil || gradOut.Rows != ln.lastNorm.Rows || gradOut.Cols != ln.Dim {
		panic("nn: LayerNorm.Backward shape mismatch")
	}
	n := float64(ln.Dim)
	gradIn := tensor.New(gradOut.Rows, gradOut.Cols)
	for i := 0; i < gradOut.Rows; i++ {
		gRow := gradOut.Data[i*ln.Dim : (i+1)*ln.Dim]
		nRow := ln.lastNorm.Data[i*ln.Dim : (i+1)*ln.Dim]
		// Parameter gradients.
		for j, g := range gRow {
			ln.Gamma.Grad.Data[j] += g * nRow[j]
			ln.Beta.Grad.Data[j] += g
		}
		// Input gradient: standard layer-norm backward.
		var sumG, sumGN float64
		for j, g := range gRow {
			gh := g * ln.Gamma.W.Data[j]
			sumG += gh
			sumGN += gh * nRow[j]
		}
		for j, g := range gRow {
			gh := g * ln.Gamma.W.Data[j]
			gradIn.Data[i*ln.Dim+j] = (gh - sumG/n - nRow[j]*sumGN/n) / ln.lastStd[i]
		}
	}
	return gradIn
}
