package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestCompareExact(t *testing.T) {
	a := []float32{1, -2, 3}
	m := Compare(a, a)
	if m.L2 != 0 || m.MaxAbs != 0 || !math.IsInf(m.PSNR, 1) {
		t.Fatalf("exact compare = %+v", m)
	}
}

func TestCompareKnownError(t *testing.T) {
	orig := []float32{0, 0, 0, 0}
	rec := []float32{1, -1, 1, -1}
	m := Compare(orig, rec)
	if !almostEqual(m.L2, 2, 1e-9) {
		t.Fatalf("L2 = %g, want 2", m.L2)
	}
	if m.MaxAbs != 1 || m.MeanAbs != 1 {
		t.Fatalf("MaxAbs=%g MeanAbs=%g, want 1,1", m.MaxAbs, m.MeanAbs)
	}
	if m.MeanBias != 0 {
		t.Fatalf("MeanBias = %g, want 0", m.MeanBias)
	}
}

func TestCompareBias(t *testing.T) {
	orig := []float32{0, 0}
	rec := []float32{0.5, 0.5}
	if m := Compare(orig, rec); !almostEqual(m.MeanBias, 0.5, 1e-9) {
		t.Fatalf("MeanBias = %g, want 0.5", m.MeanBias)
	}
}

func TestCompareLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compare with mismatched lengths did not panic")
		}
	}()
	Compare([]float32{1}, []float32{1, 2})
}

func TestCompareEmpty(t *testing.T) {
	m := Compare(nil, nil)
	if !math.IsInf(m.PSNR, 1) {
		t.Fatalf("empty PSNR = %g", m.PSNR)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddAll([]float64{0.5, 1.5, 1.6, 9.9, -5, 15})
	if h.Counts[0] != 2 { // 0.5 and clamped -5
		t.Fatalf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Fatalf("bin 1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 9.9 and clamped 15
		t.Fatalf("bin 9 = %d, want 2", h.Counts[9])
	}
	if h.N != 6 {
		t.Fatalf("N = %d, want 6", h.N)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(1, 0, 5) did not panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestDensitySumsToOne(t *testing.T) {
	h := NewHistogram(-1, 1, 8)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		h.Add(rng.Float64()*2 - 1)
	}
	var sum float64
	for _, d := range h.Density() {
		sum += d
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Fatalf("density sum = %g", sum)
	}
}

func TestTriangularityDistinguishesDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	uniform := NewHistogram(-1, 1, 21)
	triangular := NewHistogram(-1, 1, 21)
	for i := 0; i < 50000; i++ {
		uniform.Add(rng.Float64()*2 - 1)
		// Sum of two uniforms is triangular on [-1, 1].
		triangular.Add(rng.Float64() - rng.Float64())
	}
	u := uniform.Triangularity()
	tr := triangular.Triangularity()
	if tr <= u {
		t.Fatalf("triangularity(tri)=%g <= triangularity(uniform)=%g", tr, u)
	}
	if tr < 0.8 {
		t.Fatalf("triangular sample scored %g, want > 0.8", tr)
	}
	if u > 0.55 {
		t.Fatalf("uniform sample scored %g, want <= 0.55", u)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Fatalf("Mean = %g, want 5", m)
	}
	if s := Stddev(xs); !almostEqual(s, 2, 1e-12) {
		t.Fatalf("Stddev = %g, want 2", s)
	}
	if Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty Mean/Stddev nonzero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-1, 1}, {101, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty Percentile nonzero")
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestByteEntropy(t *testing.T) {
	// Constant stream: zero entropy.
	if h := ByteEntropy(make([]byte, 100)); h != 0 {
		t.Fatalf("constant entropy = %g", h)
	}
	// Two equiprobable symbols: 1 bit.
	two := make([]byte, 1000)
	for i := range two {
		two[i] = byte(i % 2)
	}
	if h := ByteEntropy(two); !almostEqual(h, 1, 1e-9) {
		t.Fatalf("two-symbol entropy = %g, want 1", h)
	}
	// All 256 symbols equiprobable: 8 bits.
	all := make([]byte, 256*4)
	for i := range all {
		all[i] = byte(i % 256)
	}
	if h := ByteEntropy(all); !almostEqual(h, 8, 1e-9) {
		t.Fatalf("uniform entropy = %g, want 8", h)
	}
	if ByteEntropy(nil) != 0 {
		t.Fatal("empty entropy nonzero")
	}
}

func TestEntropyCompressionBound(t *testing.T) {
	if !math.IsInf(EntropyCompressionBound(make([]byte, 10)), 1) {
		t.Fatal("constant input bound should be +Inf")
	}
	two := make([]byte, 1000)
	for i := range two {
		two[i] = byte(i % 2)
	}
	if b := EntropyCompressionBound(two); !almostEqual(b, 8, 1e-9) {
		t.Fatalf("two-symbol bound = %g, want 8", b)
	}
}
