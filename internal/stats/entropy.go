package stats

import "math"

// ByteEntropy returns the order-0 Shannon entropy of the byte stream in
// bits per byte — the theoretical floor for any order-0 entropy coder
// (ANS, Huffman) and the yardstick the encoder ablation compares against.
func ByteEntropy(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	n := float64(len(data))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyCompressionBound returns the best compression ratio an order-0
// coder can achieve on the stream (8 / entropy; +Inf for constant input).
func EntropyCompressionBound(data []byte) float64 {
	h := ByteEntropy(data)
	if h == 0 {
		return math.Inf(1)
	}
	return 8 / h
}
