// Package stats provides the error metrics and distribution diagnostics the
// paper uses when comparing rounding modes: L2 norm of the compression
// error, PSNR, histograms, and a triangularity score that distinguishes the
// uniform error distribution of round-to-nearest from the triangular
// distribution of stochastic rounding (§4.2, Figure 5).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ErrorMetrics summarizes the pointwise difference between an original
// vector and its dequantized reconstruction.
type ErrorMetrics struct {
	L2       float64 // Euclidean norm of the error vector
	MaxAbs   float64 // largest absolute pointwise error
	MeanAbs  float64 // mean absolute pointwise error
	PSNR     float64 // peak signal-to-noise ratio in dB (+Inf for exact)
	MeanBias float64 // mean signed error; ~0 for unbiased rounding (SR)
}

// Compare computes ErrorMetrics between original and recovered. The slices
// must have equal length.
func Compare(original, recovered []float32) ErrorMetrics {
	if len(original) != len(recovered) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(original), len(recovered)))
	}
	var m ErrorMetrics
	if len(original) == 0 {
		m.PSNR = math.Inf(1)
		return m
	}
	var sumSq, sumAbs, sumSigned, peak float64
	for i := range original {
		e := float64(recovered[i]) - float64(original[i])
		sumSq += e * e
		sumAbs += math.Abs(e)
		sumSigned += e
		if a := math.Abs(float64(original[i])); a > peak {
			peak = a
		}
		if a := math.Abs(e); a > m.MaxAbs {
			m.MaxAbs = a
		}
	}
	n := float64(len(original))
	m.L2 = math.Sqrt(sumSq)
	m.MeanAbs = sumAbs / n
	m.MeanBias = sumSigned / n
	mse := sumSq / n
	if mse == 0 {
		m.PSNR = math.Inf(1)
	} else {
		m.PSNR = 20*math.Log10(peak) - 10*math.Log10(mse)
	}
	return m
}

// Histogram is a fixed-width binning of float64 samples over [Lo, Hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int // total samples including out-of-range ones (clamped to edge bins)
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi].
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%g,%g) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample, clamping out-of-range values to the edge bins.
func (h *Histogram) Add(v float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.N++
}

// AddAll records each sample.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// Density returns the normalized bin heights (fractions summing to 1).
func (h *Histogram) Density() []float64 {
	d := make([]float64, len(h.Counts))
	if h.N == 0 {
		return d
	}
	for i, c := range h.Counts {
		d[i] = float64(c) / float64(h.N)
	}
	return d
}

// Triangularity scores how triangular (peaked at the center, linearly
// decaying to the edges) the histogram is, in [0, 1]: 1 for a perfect
// symmetric triangle, ~0 for a uniform distribution. It is the normalized
// correlation improvement of a fitted triangle over a fitted uniform.
//
// The paper's key empirical finding (§4.2) is that stochastic rounding
// produces a triangular error distribution while round-to-nearest and P0.5
// produce uniform ones; this score turns that visual comparison (Figure 5)
// into a testable number.
func (h *Histogram) Triangularity() float64 {
	d := h.Density()
	n := len(d)
	if n < 3 || h.N == 0 {
		return 0
	}
	uniform := 1.0 / float64(n)
	// Triangle template peaked at the center, normalized to sum 1.
	tri := make([]float64, n)
	var triSum float64
	center := float64(n-1) / 2
	for i := range tri {
		tri[i] = 1 - math.Abs(float64(i)-center)/(center+0.5)
		triSum += tri[i]
	}
	for i := range tri {
		tri[i] /= triSum
	}
	var sseUniform, sseTri float64
	for i := range d {
		du := d[i] - uniform
		dt := d[i] - tri[i]
		sseUniform += du * du
		sseTri += dt * dt
	}
	if sseUniform == 0 && sseTri == 0 {
		return 0 // exactly uniform
	}
	score := (sseUniform - sseTri) / (sseUniform + sseTri)
	return (score + 1) / 2 // map [-1,1] → [0,1]
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation; it copies xs before sorting.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
