package fault

import (
	"bytes"
	"testing"

	"compso/internal/collective"
)

func TestNilPlanAndInjector(t *testing.T) {
	inj, err := NewInjector(nil)
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		t.Fatal("nil plan must yield a nil injector")
	}
	// The nil injector must be inert on every entry point.
	if f := inj.ComputeFactor(0, 0); f != 1 {
		t.Fatalf("nil ComputeFactor = %g", f)
	}
	a, b, j := inj.PerturbLink(0, 1, 0, 0, collective.LinkIntra, 100, 0)
	if a != 1 || b != 1 || j != 0 {
		t.Fatalf("nil PerturbLink = %g,%g,%g", a, b, j)
	}
	if inj.ShouldCorrupt(0, 0, 0) {
		t.Fatal("nil injector corrupted")
	}
	blob := []byte{1, 2, 3}
	out, hit := inj.CorruptBlob(blob, 0, 0, 0)
	if hit || &out[0] != &blob[0] {
		t.Fatal("nil injector touched the blob")
	}
	var p *Plan
	if p.Enabled() || p.Retries() != 0 {
		t.Fatal("nil plan must be disabled with zero retries")
	}
	// A plan that injects nothing compiles to the nil (disabled) injector.
	if inj, err := NewInjector(&Plan{Seed: 9, Guard: Guard{Ratio: 2}}); err != nil || inj != nil {
		t.Fatalf("do-nothing plan: inj=%v err=%v, want nil,nil", inj, err)
	}
}

func TestPlanValidation(t *testing.T) {
	bad := []Plan{
		{Stragglers: []Straggler{{Rank: -1, Factor: 2}}},
		{Stragglers: []Straggler{{Rank: 0, Factor: 0.5}}},
		{Stragglers: []Straggler{{Rank: 0, Factor: 2, FromStep: 5, ToStep: 5}}},
		{Links: []LinkFault{{AlphaFactor: -1}}},
		{Links: []LinkFault{{Jitter: -0.1}}},
		{Links: []LinkFault{{Link: "warp"}}},
		{Corruption: Corruption{Rate: 1.5}},
		{Corruption: Corruption{Rate: 0.1, BitFlips: -1}},
		{MaxRetries: -1},
		{Guard: Guard{Ratio: -1}},
		{Guard: Guard{Patience: -1}},
	}
	for i, p := range bad {
		if _, err := NewInjector(&p); err == nil {
			t.Errorf("plan %d: invalid plan accepted: %+v", i, p)
		}
	}
	good := Plan{
		Seed:       7,
		Stragglers: []Straggler{{Rank: 1, Factor: 2, FromStep: 0, ToStep: 10}},
		Links:      []LinkFault{{SrcNode: -1, DstNode: -1, Link: "inter", AlphaFactor: 2}},
		Corruption: Corruption{Rate: 0.5},
		Guard:      Guard{Ratio: 1.5, Patience: 2},
	}
	if _, err := NewInjector(&good); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if !good.Enabled() || good.Retries() != 2 {
		t.Fatal("good plan should be enabled with default retries")
	}
	if (Guard{}).PatienceOrDefault() != 3 {
		t.Fatal("default guard patience should be 3")
	}
}

func TestStragglerWindows(t *testing.T) {
	inj, err := NewInjector(&Plan{Stragglers: []Straggler{
		{Rank: 2, Factor: 2, FromStep: 3, ToStep: 6},
		{Rank: 2, Factor: 3, FromStep: 5}, // persistent, overlaps at 5
		{Rank: 0, Factor: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rank, step int
		want       float64
	}{
		{2, 0, 1}, {2, 2, 1}, {2, 3, 2}, {2, 4, 2},
		{2, 5, 6}, // both active: 2 * 3
		{2, 6, 3}, {2, 1000, 3},
		{0, 0, 4}, {0, 99, 4},
		{1, 5, 1},
	}
	for _, c := range cases {
		if got := inj.ComputeFactor(c.rank, c.step); got != c.want {
			t.Errorf("ComputeFactor(%d,%d) = %g, want %g", c.rank, c.step, got, c.want)
		}
	}
}

func TestLinkFaultMatching(t *testing.T) {
	inj, err := NewInjector(&Plan{Seed: 3, Links: []LinkFault{
		{SrcNode: -1, DstNode: -1, Link: "inter", AlphaFactor: 3, BetaFactor: 2},
		{SrcNode: 0, DstNode: 0, Link: "intra", AlphaFactor: 1.5},
		{SrcNode: -1, DstNode: -1, Link: "inter", Jitter: 0.25},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Inter-node edge: first and third faults match (scales 3,2; jitter cap 0.25).
	a, b, j := inj.PerturbLink(0, 4, 0, 1, collective.LinkInter, 1024, 0.5)
	if a != 3 || b != 2 {
		t.Fatalf("inter scales = %g,%g, want 3,2", a, b)
	}
	if j < 0 || j >= 0.25 {
		t.Fatalf("inter jitter %g outside [0,0.25)", j)
	}
	// Intra-node edge on node 0: only the second fault matches; Jitter 0.
	a, b, j = inj.PerturbLink(0, 1, 0, 0, collective.LinkIntra, 1024, 0.5)
	if a != 1.5 || b != 1 || j != 0 {
		t.Fatalf("intra(0) = %g,%g,%g, want 1.5,1,0", a, b, j)
	}
	// Intra-node edge on node 1: nothing matches.
	a, b, j = inj.PerturbLink(4, 5, 1, 1, collective.LinkIntra, 1024, 0.5)
	if a != 1 || b != 1 || j != 0 {
		t.Fatalf("intra(1) = %g,%g,%g, want identity", a, b, j)
	}
}

// TestDeterminism pins the core contract: every decision is a pure function
// of (seed, site), identical across injector instances, and sensitive to
// the seed.
func TestDeterminism(t *testing.T) {
	plan := Plan{
		Seed:       11,
		Links:      []LinkFault{{SrcNode: -1, DstNode: -1, Jitter: 0.5}},
		Corruption: Corruption{Rate: 0.5, BitFlips: 4},
	}
	a, _ := NewInjector(&plan)
	b, _ := NewInjector(&plan)
	other := plan
	other.Seed = 12
	c, _ := NewInjector(&other)

	blob := []byte("the quick brown fox jumps over the lazy dog")
	seedDiffers := false
	for step := 0; step < 50; step++ {
		for attempt := 0; attempt < 3; attempt++ {
			va, ha := a.CorruptBlob(blob, step, 1, attempt)
			vb, hb := b.CorruptBlob(blob, step, 1, attempt)
			if ha != hb || !bytes.Equal(va, vb) {
				t.Fatalf("step %d attempt %d: corruption differs between identical injectors", step, attempt)
			}
			if ha {
				if bytes.Equal(va, blob) {
					t.Fatalf("step %d: corrupted blob equals original", step)
				}
				// The original must never be mutated in place.
				if string(blob) != "the quick brown fox jumps over the lazy dog" {
					t.Fatal("CorruptBlob mutated its input")
				}
			}
			vc, hc := c.CorruptBlob(blob, step, 1, attempt)
			if ha != hc || !bytes.Equal(va, vc) {
				seedDiffers = true
			}
		}
		ja1, jb1 := drawJitter(a, step), drawJitter(b, step)
		if ja1 != jb1 {
			t.Fatalf("step %d: jitter differs between identical injectors", step)
		}
	}
	if !seedDiffers {
		t.Fatal("changing the seed never changed a corruption decision")
	}
}

func drawJitter(inj *Injector, step int) float64 {
	_, _, j := inj.PerturbLink(0, 1, 0, 1, collective.LinkInter, 4096+step, float64(step))
	return j
}

// TestCorruptionRate checks the empirical hit rate over many sites tracks
// the configured probability, and that the step window gates it.
func TestCorruptionRate(t *testing.T) {
	inj, _ := NewInjector(&Plan{Seed: 5, Corruption: Corruption{Rate: 0.3, FromStep: 10, ToStep: 1000}})
	hits := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if inj.ShouldCorrupt(10+i%990, i/990, i%3) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.25 || got > 0.35 {
		t.Fatalf("empirical corruption rate %.3f, want ~0.30", got)
	}
	if inj.ShouldCorrupt(9, 0, 0) {
		t.Fatal("corruption before FromStep")
	}
	for s := 1000; s < 1100; s++ {
		if inj.ShouldCorrupt(s, 0, 0) {
			t.Fatal("corruption at/after ToStep")
		}
	}
}

// TestCorruptBlobFlipCount verifies a corrupted copy differs in at most
// BitFlips bit positions (fewer when two flips collide) and at least one.
func TestCorruptBlobFlipCount(t *testing.T) {
	inj, _ := NewInjector(&Plan{Seed: 1, Corruption: Corruption{Rate: 1, BitFlips: 4}})
	blob := make([]byte, 97)
	for i := range blob {
		blob[i] = byte(i)
	}
	out, hit := inj.CorruptBlob(blob, 3, 2, 0)
	if !hit {
		t.Fatal("rate-1 corruption missed")
	}
	diff := 0
	for i := range blob {
		x := blob[i] ^ out[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff < 1 || diff > 4 {
		t.Fatalf("%d bits differ, want 1..4", diff)
	}
	// Empty blobs pass through untouched even at rate 1.
	if _, hit := inj.CorruptBlob(nil, 3, 2, 0); hit {
		t.Fatal("empty blob corrupted")
	}
}
