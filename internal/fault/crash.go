package fault

import "fmt"

// Worker-crash injection: the fourth fault class. Unlike stragglers, link
// faults and corruption — which the training loop absorbs in place — a
// crash kills a worker goroutine outright. The surviving ranks detect the
// loss at their next collective (a bounded timeout in a real cluster,
// modeled as a fixed simulated detection charge), abort the step, and the
// training driver rolls every rank back to the last checkpoint and
// resumes. Determinism still holds: every crash verdict is a pure
// splitmix64 hash of (plan seed, rank, step, incarnation), where the
// incarnation counts restarts, so a crash-every-N scenario replays the
// same crashes in the same order on every run but does not re-crash
// forever at the same replayed step.

// CrashPoint selects where within a training step the worker dies.
type CrashPoint int

const (
	// CrashAtStepStart kills the worker at the top of the step, before
	// the forward pass — no collective is in flight anywhere.
	CrashAtStepStart CrashPoint = iota
	// CrashMidStep kills the worker after backward, before the gradient
	// exchange — the worker holds fresh local state it never shared.
	CrashMidStep
	// CrashMidCollective kills the worker on entry to one of the step's
	// collective operations, while the survivors are (or will be) blocked
	// inside the same rendezvous — the hardest detection case.
	CrashMidCollective
)

// String names the crash point for telemetry and test output.
func (p CrashPoint) String() string {
	switch p {
	case CrashAtStepStart:
		return "step-start"
	case CrashMidStep:
		return "mid-step"
	case CrashMidCollective:
		return "mid-collective"
	}
	return fmt.Sprintf("crash-point-%d", int(p))
}

// WorkerCrash declares deterministic crashes for one rank. Two site
// modes:
//
//   - Exact (Rate == 0): the worker crashes at Step, then — when Every > 0
//     — again at Step + Every, Step + 2·Every, ... on subsequent
//     incarnations, up to Times crashes (default 1).
//   - Windowed (Rate > 0): each step in [FromStep, ToStep) draws a crash
//     with probability Rate, re-drawn per incarnation so a restored run
//     does not deterministically re-crash at the replayed step. Times
//     bounds the total crashes (0 = bounded only by the driver's restart
//     budget).
type WorkerCrash struct {
	// Rank is the worker that dies.
	Rank int
	// Point is where within the step the worker dies.
	Point CrashPoint
	// Step is the exact crash step (exact mode).
	Step int
	// Every spaces repeated crashes across incarnations (exact mode).
	Every int
	// Times bounds how many incarnations crash (default 1 in exact mode,
	// unbounded in windowed mode).
	Times int
	// Rate enables windowed mode: per-step crash probability in [0,1].
	Rate float64
	// FromStep and ToStep bound the windowed mode's step range; ToStep <=
	// 0 means no upper bound.
	FromStep, ToStep int
	// CollSite picks which collective entry of the step dies for
	// CrashMidCollective: 1 = the first collective, 2 = the second, ...; 0
	// draws a deterministic site among the step's first four entries.
	CollSite int
	// DetectSec is the simulated detection timeout the survivors charge
	// when the loss surfaces (default 0.25 s).
	DetectSec float64
}

func (c WorkerCrash) validate() error {
	if c.Rank < 0 {
		return fmt.Errorf("rank %d", c.Rank)
	}
	if c.Point < CrashAtStepStart || c.Point > CrashMidCollective {
		return fmt.Errorf("unknown crash point %d", int(c.Point))
	}
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("rate %g outside [0,1]", c.Rate)
	}
	if c.Rate == 0 && c.Step < 0 {
		return fmt.Errorf("negative crash step %d", c.Step)
	}
	if c.Every < 0 || c.Times < 0 || c.CollSite < 0 {
		return fmt.Errorf("negative Every/Times/CollSite")
	}
	if c.Rate > 0 && c.ToStep > 0 && c.ToStep <= c.FromStep {
		return fmt.Errorf("crash window [%d,%d) is empty", c.FromStep, c.ToStep)
	}
	if c.DetectSec < 0 {
		return fmt.Errorf("negative DetectSec %g", c.DetectSec)
	}
	return nil
}

// crashesAt reports whether this declaration kills its rank at (step,
// incarnation).
func (c WorkerCrash) crashesAt(inj *Injector, step, incarnation int) bool {
	if c.Rate > 0 {
		if c.Times > 0 && incarnation >= c.Times {
			return false
		}
		if step < c.FromStep || (c.ToStep > 0 && step >= c.ToStep) {
			return false
		}
		h := inj.hash(0x44, uint64(c.Rank), uint64(step), uint64(incarnation))
		return unit(h) < c.Rate
	}
	times := c.Times
	if times <= 0 {
		times = 1
	}
	if incarnation >= times {
		return false
	}
	if c.Every > 0 {
		return step == c.Step+incarnation*c.Every
	}
	return incarnation == 0 && step == c.Step
}

// ShouldCrash reports whether the worker dies during this step of this
// incarnation (restart count), and at which point. Like every other fault
// verdict it is a pure function of the plan — all ranks could compute it,
// though only the victim acts on it.
func (inj *Injector) ShouldCrash(rank, step, incarnation int) (CrashPoint, bool) {
	if inj == nil {
		return 0, false
	}
	for _, c := range inj.plan.Crashes {
		if c.Rank == rank && c.crashesAt(inj, step, incarnation) {
			return c.Point, true
		}
	}
	return 0, false
}

// CrashCollectiveSite returns which collective entry of the step (1-based)
// the worker dies on, for a CrashMidCollective verdict: the declared
// CollSite, or a deterministic draw among the step's first four entries.
func (inj *Injector) CrashCollectiveSite(rank, step, incarnation int) int {
	if inj == nil {
		return 1
	}
	for _, c := range inj.plan.Crashes {
		if c.Rank == rank && c.crashesAt(inj, step, incarnation) {
			if c.CollSite > 0 {
				return c.CollSite
			}
			h := inj.hash(0x45, uint64(rank), uint64(step), uint64(incarnation))
			return 1 + int(h%4)
		}
	}
	return 1
}

// DetectSeconds returns the simulated detection timeout survivors charge
// when a worker loss surfaces: the largest DetectSec across the plan's
// crash declarations, defaulting to 0.25 s.
func (inj *Injector) DetectSeconds() float64 {
	d := 0.0
	if inj != nil {
		for _, c := range inj.plan.Crashes {
			if c.DetectSec > d {
				d = c.DetectSec
			}
		}
	}
	if d <= 0 {
		d = 0.25
	}
	return d
}

// HasCrashes reports whether the plan declares any worker crashes.
func (p *Plan) HasCrashes() bool { return p != nil && len(p.Crashes) > 0 }
