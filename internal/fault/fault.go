// Package fault is the deterministic fault-injection layer for the
// simulated cluster. Real Slingshot/NVLink clusters are not the clean
// α–β fabric the closed-form model assumes: they have straggler GPUs
// (thermal throttling, noisy neighbours), degraded or flaky links
// (misbehaving switches, cable errors forcing retransmits), and — rarely
// but measurably at scale — corrupted payloads that survive link-level
// CRCs. A reproduction whose value proposition is "compression overhead
// stays below communication savings on real clusters" must be able to
// express those conditions and show the compressed path degrading
// gracefully under them.
//
// Everything in this package is deterministic: every fault decision is a
// pure hash of (plan seed, site identity), never a stateful RNG draw, so
// identical seeds and fault plans reproduce bit-identical simulated runs
// regardless of goroutine scheduling — the SPMD determinism contract the
// rest of the repo relies on. That is also what makes the train-layer
// recovery protocol possible: every rank computes the same corruption
// verdict for a sender's blob, so all ranks enter the bounded-retry /
// lossless-fallback path in lockstep instead of deadlocking.
//
// The three fault classes, mirroring what operators actually observe:
//
//   - Straggler: a per-rank compute-time multiplier, transient (a step
//     window) or persistent. Injected where cluster.Worker.Compute charges
//     simulated seconds.
//   - LinkFault: α/β inflation on selected edges (by node pair and link
//     class) plus per-message jitter. Injected where the collective
//     engine's stepped simulator and the SendRecv primitive charge link
//     time, so the autotuner's measured EWMAs — and therefore its picks —
//     re-tune under the degraded topology.
//   - Corruption: bit-flips in compressed blobs at a configurable
//     per-blob rate, applied "on the wire" (at the source, so every
//     receiver observes the same bytes). Injected in the training loop's
//     gather paths, where decode failures trigger retry then lossless
//     fallback.
package fault

import (
	"fmt"
	"math"

	"compso/internal/collective"
)

// Plan declares a deterministic fault scenario for one simulated run. The
// zero value (and a nil *Plan) injects nothing.
type Plan struct {
	// Seed namespaces every fault decision. Two runs with the same Seed
	// and the same fault lists make identical decisions everywhere.
	Seed int64
	// Stragglers slow down chosen ranks' compute.
	Stragglers []Straggler
	// Links degrade chosen edges of the topology.
	Links []LinkFault
	// Corruption flips bits in compressed payloads on the wire.
	Corruption Corruption
	// Crashes kill chosen workers at deterministic sites; the training
	// loop recovers by rolling every rank back to the last checkpoint.
	Crashes []WorkerCrash
	// MaxRetries bounds the per-blob decode retries before the training
	// loop falls back to a lossless re-broadcast (default 2).
	MaxRetries int
	// Guard configures the straggler-aware collective guard: when the
	// measured schedule time diverges from the engine's fault-free model
	// prediction for Patience consecutive steps, the training loop resets
	// the autotuner's measured state so it re-tunes under the current
	// conditions.
	Guard Guard
}

// Straggler slows one rank's compute by a multiplicative factor over a
// step window.
type Straggler struct {
	// Rank is the afflicted worker.
	Rank int
	// Factor multiplies every Compute charge (>= 1; 2.0 = half speed).
	Factor float64
	// FromStep is the first affected training step (inclusive).
	FromStep int
	// ToStep is the first unaffected step; <= 0 means persistent from
	// FromStep onward.
	ToStep int
}

// active reports whether the straggler afflicts the given step.
func (s Straggler) active(step int) bool {
	if step < s.FromStep {
		return false
	}
	return s.ToStep <= 0 || step < s.ToStep
}

// LinkFault degrades the links matching its selector: α and β are scaled
// by the given factors and each message is stretched by a deterministic
// per-message jitter drawn from [0, Jitter].
type LinkFault struct {
	// SrcNode and DstNode select the edge by node pair; -1 matches any
	// node. Intra-node links have SrcNode == DstNode.
	SrcNode, DstNode int
	// Link selects the link class: "intra", "inter", or "" for both.
	Link string
	// AlphaFactor and BetaFactor scale the link's latency and inverse
	// bandwidth (0 means unchanged, i.e. treated as 1).
	AlphaFactor, BetaFactor float64
	// Jitter is the maximum fractional per-message inflation: each
	// matching transfer is stretched by a deterministic uniform draw from
	// [0, Jitter] (0.25 = up to 25% slower per message).
	Jitter float64
}

// matches reports whether the fault selects a transfer on the given edge.
func (l LinkFault) matches(srcNode, dstNode int, link collective.LinkClass) bool {
	if l.Link != "" && l.Link != link.String() {
		return false
	}
	if l.SrcNode >= 0 && l.SrcNode != srcNode {
		return false
	}
	if l.DstNode >= 0 && l.DstNode != dstNode {
		return false
	}
	return true
}

// Corruption flips bits in compressed blobs on the wire.
type Corruption struct {
	// Rate is the per-(step, sender, attempt) probability that a blob is
	// corrupted in flight. 0 disables corruption.
	Rate float64
	// BitFlips is how many bits flip in a corrupted blob (default 3).
	BitFlips int
	// FromStep and ToStep bound the affected step window; ToStep <= 0
	// means no upper bound.
	FromStep, ToStep int
}

func (c Corruption) active(step int) bool {
	if c.Rate <= 0 || step < c.FromStep {
		return false
	}
	return c.ToStep <= 0 || step < c.ToStep
}

// Guard configures the straggler-aware collective guard.
type Guard struct {
	// Ratio is the divergence threshold: a step whose measured schedule
	// seconds exceed Ratio × the engine's fault-free prediction counts as
	// divergent. <= 0 disables the guard.
	Ratio float64
	// Patience is how many consecutive divergent steps trigger a retune
	// (default 3).
	Patience int
}

// PatienceOrDefault returns the effective patience.
func (g Guard) PatienceOrDefault() int {
	if g.Patience > 0 {
		return g.Patience
	}
	return 3
}

// Validate reports plan errors.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, s := range p.Stragglers {
		if s.Rank < 0 {
			return fmt.Errorf("fault: straggler rank %d", s.Rank)
		}
		if s.Factor < 1 {
			return fmt.Errorf("fault: straggler factor %g < 1 (rank %d)", s.Factor, s.Rank)
		}
		if s.ToStep > 0 && s.ToStep <= s.FromStep {
			return fmt.Errorf("fault: straggler window [%d,%d) is empty (rank %d)", s.FromStep, s.ToStep, s.Rank)
		}
	}
	for i, l := range p.Links {
		if l.AlphaFactor < 0 || l.BetaFactor < 0 {
			return fmt.Errorf("fault: link fault %d has negative factor", i)
		}
		if l.Jitter < 0 {
			return fmt.Errorf("fault: link fault %d has negative jitter %g", i, l.Jitter)
		}
		switch l.Link {
		case "", "intra", "inter":
		default:
			return fmt.Errorf("fault: link fault %d selects unknown class %q", i, l.Link)
		}
	}
	if p.Corruption.Rate < 0 || p.Corruption.Rate > 1 {
		return fmt.Errorf("fault: corruption rate %g outside [0,1]", p.Corruption.Rate)
	}
	if p.Corruption.BitFlips < 0 {
		return fmt.Errorf("fault: negative corruption bit flips %d", p.Corruption.BitFlips)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: negative MaxRetries %d", p.MaxRetries)
	}
	if p.Guard.Ratio < 0 {
		return fmt.Errorf("fault: negative guard ratio %g", p.Guard.Ratio)
	}
	if p.Guard.Patience < 0 {
		return fmt.Errorf("fault: negative guard patience %d", p.Guard.Patience)
	}
	for i, c := range p.Crashes {
		if err := c.validate(); err != nil {
			return fmt.Errorf("fault: crash %d: %w", i, err)
		}
	}
	return nil
}

// Enabled reports whether the plan injects anything at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return len(p.Stragglers) > 0 || len(p.Links) > 0 || p.Corruption.Rate > 0 || len(p.Crashes) > 0
}

// Retries returns the effective decode-retry budget.
func (p *Plan) Retries() int {
	if p == nil {
		return 0
	}
	if p.MaxRetries > 0 {
		return p.MaxRetries
	}
	return 2
}

// Injector executes a validated plan. It is stateless beyond the plan
// itself — every decision is a pure hash — so it is safe for concurrent
// use from all worker goroutines. A nil *Injector injects nothing.
type Injector struct {
	plan Plan
}

// NewInjector compiles a plan. A nil or do-nothing plan yields a nil
// injector (the disabled injector); invalid plans return an error.
func NewInjector(p *Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	return &Injector{plan: *p}, nil
}

// Plan returns the injector's plan (zero value for a nil injector).
func (inj *Injector) Plan() Plan {
	if inj == nil {
		return Plan{}
	}
	return inj.plan
}

// ComputeFactor returns the compute-time multiplier for a rank at a step
// (1 when unafflicted). Overlapping stragglers compose multiplicatively.
func (inj *Injector) ComputeFactor(rank, step int) float64 {
	if inj == nil {
		return 1
	}
	f := 1.0
	for _, s := range inj.plan.Stragglers {
		if s.Rank == rank && s.active(step) {
			f *= s.Factor
		}
	}
	return f
}

// PerturbLink implements collective.LinkPerturber: it returns the α and β
// scale factors and the realized per-message jitter fraction for one
// transfer. Matching faults compose: scale factors multiply, jitter caps
// add, and one deterministic uniform draw realizes the combined cap. The
// draw is keyed on (seed, endpoints, bytes, start-time bits), so it is
// reproducible across runs and independent of scheduling order.
func (inj *Injector) PerturbLink(src, dst, srcNode, dstNode int, link collective.LinkClass, bytes int, start float64) (alphaScale, betaScale, jitter float64) {
	if inj == nil {
		return 1, 1, 0
	}
	alphaScale, betaScale = 1, 1
	jcap := 0.0
	for _, l := range inj.plan.Links {
		if !l.matches(srcNode, dstNode, link) {
			continue
		}
		if l.AlphaFactor > 0 {
			alphaScale *= l.AlphaFactor
		}
		if l.BetaFactor > 0 {
			betaScale *= l.BetaFactor
		}
		jcap += l.Jitter
	}
	if jcap > 0 {
		h := inj.hash(0x11, uint64(src), uint64(dst), uint64(uint(link)), uint64(bytes), math.Float64bits(start))
		jitter = unit(h) * jcap
	}
	return alphaScale, betaScale, jitter
}

// ShouldCorrupt reports whether the blob a sender injects at a step (on
// the given delivery attempt) is corrupted in flight. The verdict is a
// pure function of the plan seed and (step, sender, attempt): every rank —
// including the sender receiving its own contribution — computes the same
// answer, which keeps the SPMD recovery protocol in lockstep.
func (inj *Injector) ShouldCorrupt(step, sender, attempt int) bool {
	if inj == nil || !inj.plan.Corruption.active(step) {
		return false
	}
	h := inj.hash(0x22, uint64(step), uint64(sender), uint64(attempt))
	return unit(h) < inj.plan.Corruption.Rate
}

// CorruptBlob returns the blob as delivered: when the (step, sender,
// attempt) site draws a corruption, a copy with BitFlips deterministic
// bit-flips (and true); otherwise the input slice itself (and false).
func (inj *Injector) CorruptBlob(blob []byte, step, sender, attempt int) ([]byte, bool) {
	if len(blob) == 0 || !inj.ShouldCorrupt(step, sender, attempt) {
		return blob, false
	}
	flips := inj.plan.Corruption.BitFlips
	if flips <= 0 {
		flips = 3
	}
	out := append([]byte(nil), blob...)
	for i := 0; i < flips; i++ {
		h := inj.hash(0x33, uint64(step), uint64(sender), uint64(attempt), uint64(i))
		pos := h % uint64(len(out)*8)
		out[pos/8] ^= 1 << (pos % 8)
	}
	return out, true
}

// hash chains a splitmix64-style finalizer over the plan seed, a domain
// tag and the site words.
func (inj *Injector) hash(domain uint64, parts ...uint64) uint64 {
	acc := mix(uint64(inj.plan.Seed) ^ (domain * 0x9e3779b97f4a7c15))
	for _, p := range parts {
		acc = mix((acc ^ p) + 0x9e3779b97f4a7c15)
	}
	return acc
}

// mix is the splitmix64 finalizer (Stafford variant 13).
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
