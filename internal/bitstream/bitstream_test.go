package bitstream

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRoundTripFixedWidths(t *testing.T) {
	w := NewWriter(16)
	values := []uint64{1, 0, 5, 100, 127, 1 << 20, 0xdeadbeef}
	widths := []uint{1, 1, 3, 7, 7, 21, 32}
	for i, v := range values {
		w.WriteBits(v, widths[i])
	}
	r := NewReader(w.Bytes())
	for i, want := range values {
		got, err := r.ReadBits(widths[i])
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("read %d = %d, want %d (width %d)", i, got, want, widths[i])
		}
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xff, 4) // only low 4 bits should be kept
	w.WriteBits(0, 4)
	r := NewReader(w.Bytes())
	got, err := r.ReadBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x0f {
		t.Fatalf("got %#x, want 0x0f", got)
	}
}

func TestZeroWidthIsNoop(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(123, 0)
	w.WriteBits(1, 1)
	if got := w.BitLen(); got != 1 {
		t.Fatalf("BitLen = %d, want 1", got)
	}
}

func TestWidth64AcrossAccumulatorBoundary(t *testing.T) {
	// Writing a 64-bit value with a misaligned accumulator exercises the
	// split path in WriteBits.
	w := NewWriter(32)
	w.WriteBits(0b101, 3)
	const big = uint64(0xfedcba9876543210)
	w.WriteBits(big, 64)
	w.WriteBits(0b11, 2)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("prefix = %b", v)
	}
	lo, err := r.ReadBits(32)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := r.ReadBits(32)
	if err != nil {
		t.Fatal(err)
	}
	if got := lo | hi<<32; got != big {
		t.Fatalf("64-bit value = %#x, want %#x", got, big)
	}
	if v, _ := r.ReadBits(2); v != 0b11 {
		t.Fatalf("suffix = %b", v)
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xab})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
}

func TestReadBitsWidthTooLarge(t *testing.T) {
	r := NewReader(make([]byte, 16))
	if _, err := r.ReadBits(58); err == nil {
		t.Fatal("ReadBits(58) succeeded")
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	w := NewWriter(64)
	values := []uint64{0, 1, 127, 128, 300, 1 << 14, 1 << 35, ^uint64(0)}
	for _, v := range values {
		w.WriteUvarint(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range values {
		got, err := r.ReadUvarint()
		if err != nil {
			t.Fatalf("uvarint %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("uvarint %d = %d, want %d", i, got, want)
		}
	}
}

func TestBitLenAndRemaining(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0, 13)
	if got := w.BitLen(); got != 13 {
		t.Fatalf("BitLen = %d, want 13", got)
	}
	r := NewReader(w.Bytes())
	if got := r.Remaining(); got != 16 { // padded to 2 bytes
		t.Fatalf("Remaining = %d, want 16", got)
	}
	if _, err := r.ReadBits(5); err != nil {
		t.Fatal(err)
	}
	if got := r.Remaining(); got != 11 {
		t.Fatalf("Remaining after read = %d, want 11", got)
	}
}

// TestRoundTripProperty writes random (value, width) pairs and verifies an
// exact round trip, covering accumulator boundaries with every mix of
// widths.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		count := int(n%64) + 1
		values := make([]uint64, count)
		widths := make([]uint, count)
		w := NewWriter(count)
		for i := range values {
			widths[i] = uint(rng.IntN(57)) + 1
			values[i] = rng.Uint64() & ((1 << widths[i]) - 1)
			w.WriteBits(values[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range values {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != values[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(1 << 13)
		for j := 0; j < 8192; j++ {
			w.WriteBits(uint64(j)&0x7f, 7)
		}
		_ = w.Bytes()
	}
}

func BenchmarkReadBits7(b *testing.B) {
	w := NewWriter(1 << 13)
	for j := 0; j < 8192; j++ {
		w.WriteBits(uint64(j)&0x7f, 7)
	}
	buf := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		for j := 0; j < 8192; j++ {
			if _, err := r.ReadBits(7); err != nil {
				b.Fatal(err)
			}
		}
	}
}
