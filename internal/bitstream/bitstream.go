// Package bitstream implements the LSB-first bit-level I/O that COMPSO's
// variable-width quantized-value packing relies on (§4.3: "packing bits into
// bytes based on the specified error bound", e.g. 7-bit codes for a 100-bin
// quantizer instead of QSGD's fixed 8-bit codes).
package bitstream

import (
	"errors"
	"fmt"
)

// ErrShortBuffer is returned by Reader when a read runs past the end of the
// underlying byte slice.
var ErrShortBuffer = errors.New("bitstream: read past end of buffer")

// Writer accumulates bits LSB-first into a growing byte slice.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bit accumulator, low bits valid
	nCur uint   // number of valid bits in cur (< 8 after flushes)
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// ResetBuf resets the Writer to an empty stream backed by buf's storage
// (length is ignored). It lets callers run a stack-allocated Writer over a
// pooled buffer, keeping hot encode paths allocation-free.
func (w *Writer) ResetBuf(buf []byte) {
	w.buf = buf[:0]
	w.cur = 0
	w.nCur = 0
}

// Buf returns the Writer's current backing buffer (which append may have
// grown beyond the ResetBuf argument) without flushing the partial byte.
// Use it to return the storage to a pool after the stream's Bytes() have
// been copied out.
func (w *Writer) Buf() []byte { return w.buf }

// WriteBits appends the low width bits of v (width in 0..64).
// It panics if width is out of range.
func (w *Writer) WriteBits(v uint64, width uint) {
	if width > 64 {
		panic(fmt.Sprintf("bitstream: width %d > 64", width))
	}
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	if w.nCur+width > 64 {
		// The accumulator cannot hold all bits at once; emit the low part
		// that fits, then the remainder.
		low := 64 - w.nCur
		w.writeSmall(v&((1<<low)-1), low)
		w.writeSmall(v>>low, width-low)
		return
	}
	w.writeSmall(v, width)
}

// writeSmall appends width bits with the invariant nCur+width <= 64.
func (w *Writer) writeSmall(v uint64, width uint) {
	w.cur |= v << w.nCur
	w.nCur += width
	for w.nCur >= 8 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur >>= 8
		w.nCur -= 8
	}
}

// WriteBit appends one bit (0 or 1).
func (w *Writer) WriteBit(b uint64) { w.WriteBits(b&1, 1) }

// WriteUvarint appends v using unsigned LEB128 varint coding on the bit
// stream's byte boundary semantics (7 value bits + continuation bit).
func (w *Writer) WriteUvarint(v uint64) {
	for v >= 0x80 {
		w.WriteBits(v&0x7f|0x80, 8)
		v >>= 7
	}
	w.WriteBits(v, 8)
}

// Bytes flushes any partial byte (zero-padded) and returns the underlying
// buffer. The Writer remains usable; further writes continue after the
// padding, so call Bytes only once when finishing a stream.
func (w *Writer) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, byte(w.cur))
		w.cur = 0
		w.nCur = 0
	}
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Reader consumes bits LSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int    // next byte index
	cur  uint64 // bit accumulator
	nCur uint   // valid bits in cur
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// ReadBits reads width bits (0..57) and returns them in the low bits of the
// result. Reading past the end returns ErrShortBuffer.
//
// The width limit of 57 keeps the refill logic single-step; all users in
// this repository need at most 32 bits per symbol.
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width > 57 {
		return 0, fmt.Errorf("bitstream: ReadBits width %d > 57", width)
	}
	for r.nCur < width {
		if r.pos >= len(r.buf) {
			return 0, ErrShortBuffer
		}
		r.cur |= uint64(r.buf[r.pos]) << r.nCur
		r.pos++
		r.nCur += 8
	}
	var v uint64
	if width == 0 {
		return 0, nil
	}
	v = r.cur & ((1 << width) - 1)
	r.cur >>= width
	r.nCur -= width
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint64, error) { return r.ReadBits(1) }

// ReadUvarint reads a value written by WriteUvarint.
func (r *Reader) ReadUvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := r.ReadBits(8)
		if err != nil {
			return 0, err
		}
		v |= (b & 0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, errors.New("bitstream: uvarint overflows 64 bits")
		}
	}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return (len(r.buf)-r.pos)*8 + int(r.nCur) }
