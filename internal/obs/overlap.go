package obs

import "sort"

// Overlap-efficiency accounting for the trainer's phase spans: for each
// named phase ("grad-launch", "eigendecomp", …) the wall span of the
// phase, the busy time spent inside child spans (collectives, compress
// kernels, preconditioning GEMMs), and the idle remainder. The overlap
// scheduler's job is to shrink the idle gap — compute that previously sat
// under a blocking collective moves into the same wall span — so the
// per-phase idle fraction is the trace-level counterpart of the cluster's
// hidden-comm gauge.

// PhaseEfficiency is one phase name's busy/idle decomposition, summed
// over every instance of the phase across ranks and steps.
type PhaseEfficiency struct {
	Phase       string
	SpanSeconds float64 // total wall time of the phase spans
	BusySeconds float64 // time covered by direct child spans
	IdleSeconds float64 // max(0, SpanSeconds - BusySeconds)
}

// PhaseEfficiencies decomposes every CatPhase span into busy time (the
// summed durations of its direct children) and idle time, grouped by
// phase name and sorted by name. Child spans of one phase instance never
// overlap each other — each rank's simulated clock advances through them
// sequentially — so the direct-child sum is an exact busy measure.
func (s Snapshot) PhaseEfficiencies() []PhaseEfficiency {
	phaseName := make(map[SpanID]string)
	acc := make(map[string]*PhaseEfficiency)
	for _, sp := range s.Spans {
		if sp.Cat != CatPhase {
			continue
		}
		phaseName[sp.ID] = sp.Name
		pe := acc[sp.Name]
		if pe == nil {
			pe = &PhaseEfficiency{Phase: sp.Name}
			acc[sp.Name] = pe
		}
		pe.SpanSeconds += sp.Duration()
	}
	for _, sp := range s.Spans {
		if sp.Cat == CatPhase {
			continue
		}
		if name, ok := phaseName[sp.Parent]; ok {
			acc[name].BusySeconds += sp.Duration()
		}
	}
	out := make([]PhaseEfficiency, 0, len(acc))
	for _, pe := range acc {
		pe.IdleSeconds = pe.SpanSeconds - pe.BusySeconds
		if pe.IdleSeconds < 0 {
			pe.IdleSeconds = 0
		}
		out = append(out, *pe)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}
