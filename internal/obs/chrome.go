package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace export: the "JSON Array Format" (trace event format) that
// chrome://tracing and Perfetto load directly. Simulated seconds map to
// trace microseconds. Ranks become threads of a "simulated cluster"
// process; transfer spans get their own "links" process so link-occupancy
// slices do not fight the rank timelines for nesting.

const (
	chromePidCluster = 0
	chromePidLinks   = 1
)

// chromeEvent is one trace event. Dur is a pointer so metadata events can
// omit it.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorder's spans as a Chrome trace. A nil
// recorder writes an empty (but valid) trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return r.Snapshot().WriteChromeTrace(w)
}

// WriteChromeTrace writes the snapshot's spans as a Chrome trace.
func (s Snapshot) WriteChromeTrace(w io.Writer) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}

	// Metadata: name the processes and one thread per rank seen.
	ranks := map[int]bool{}
	linkRanks := map[int]bool{}
	for _, sp := range s.Spans {
		if sp.Cat == CatTransfer {
			linkRanks[sp.Rank] = true
		} else {
			ranks[sp.Rank] = true
		}
	}
	meta := func(pid, tid int, name, value string) chromeEvent {
		return chromeEvent{
			Name: name, Ph: "M", Ts: 0, Pid: pid, Tid: tid,
			Args: map[string]any{"name": value},
		}
	}
	trace.TraceEvents = append(trace.TraceEvents,
		meta(chromePidCluster, 0, "process_name", "simulated cluster"))
	if len(linkRanks) > 0 {
		trace.TraceEvents = append(trace.TraceEvents,
			meta(chromePidLinks, 0, "process_name", "links"))
	}
	for _, rank := range sortedKeys(ranks) {
		trace.TraceEvents = append(trace.TraceEvents,
			meta(chromePidCluster, rank, "thread_name", fmt.Sprintf("rank %d", rank)))
	}
	for _, rank := range sortedKeys(linkRanks) {
		trace.TraceEvents = append(trace.TraceEvents,
			meta(chromePidLinks, rank, "thread_name", fmt.Sprintf("rank %d egress", rank)))
	}

	// Spans, sorted by start time (ties: longer span first so nesting
	// renders parent-before-child).
	spans := make([]Span, len(s.Spans))
	copy(spans, s.Spans)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Duration() > spans[j].Duration()
	})
	for _, sp := range spans {
		pid := chromePidCluster
		if sp.Cat == CatTransfer {
			pid = chromePidLinks
		}
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  string(sp.Cat),
			Ts:   sp.Start * 1e6,
			Pid:  pid,
			Tid:  sp.Rank,
			Args: spanArgs(sp),
		}
		if sp.End > sp.Start {
			dur := sp.Duration() * 1e6
			ev.Ph, ev.Dur = "X", &dur
		} else {
			ev.Ph, ev.S = "i", "t"
		}
		trace.TraceEvents = append(trace.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// spanArgs converts a span's attributes to trace args.
func spanArgs(sp Span) map[string]any {
	args := map[string]any{}
	a := sp.Attrs
	if a.Algorithm != "" {
		args["algorithm"] = a.Algorithm
	}
	if a.Label != "" {
		args["label"] = a.Label
	}
	if a.Link != "" {
		args["link"] = a.Link
	}
	if a.Layer >= 0 {
		args["layer"] = a.Layer
	}
	if a.Peer >= 0 {
		args["peer"] = a.Peer
	}
	if a.Step >= 0 {
		args["schedule_step"] = a.Step
	}
	if a.BytesIn != 0 {
		args["bytes_in"] = a.BytesIn
	}
	if a.BytesOut != 0 {
		args["bytes_out"] = a.BytesOut
	}
	if a.Value != 0 {
		args["value"] = a.Value
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ValidateChromeTrace checks a serialized trace against the Chrome trace
// event schema subset this package emits: a traceEvents array whose
// entries carry name/ph/pid/tid/ts, whose complete ("X") events carry a
// non-negative dur, and whose non-metadata timestamps are non-negative and
// monotonically non-decreasing. It is what the CI trace-artifact step runs
// against the emitted trace.json.
func ValidateChromeTrace(data []byte) error {
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if trace.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	lastTs := 0.0
	sawSpan := false
	for i, ev := range trace.TraceEvents {
		if _, ok := ev["name"].(string); !ok {
			return fmt.Errorf("obs: event %d: missing name", i)
		}
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			return fmt.Errorf("obs: event %d: missing ph", i)
		}
		for _, key := range []string{"pid", "tid", "ts"} {
			if _, ok := ev[key].(float64); !ok {
				return fmt.Errorf("obs: event %d: missing numeric %s", i, key)
			}
		}
		if ph == "M" {
			continue // metadata events sit at ts 0 by convention
		}
		ts := ev["ts"].(float64)
		if ts < 0 {
			return fmt.Errorf("obs: event %d: negative ts %g", i, ts)
		}
		if sawSpan && ts < lastTs {
			return fmt.Errorf("obs: event %d: ts %g not monotonic (previous %g)", i, ts, lastTs)
		}
		lastTs, sawSpan = ts, true
		if ph == "X" {
			dur, ok := ev["dur"].(float64)
			if !ok {
				return fmt.Errorf("obs: event %d: complete event without dur", i)
			}
			if dur < 0 {
				return fmt.Errorf("obs: event %d: negative dur %g", i, dur)
			}
		}
	}
	return nil
}
