package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestSpanLifecycle(t *testing.T) {
	r := NewRecorder()
	step := r.StartSpan(0, 0, CatStep, "iter", 1.0)
	if step == 0 {
		t.Fatal("StartSpan returned 0 on enabled recorder")
	}
	phase := r.StartSpan(step, 0, CatPhase, "grad-sync", 1.0)
	r.Span(phase, 0, CatCollective, "allreduce", 1.0, 1.5,
		Attrs{Algorithm: "ring", Label: "grad-allreduce", BytesIn: 4096, Layer: -1, Peer: -1, Step: -1})
	r.EndSpan(phase, 1.5)
	r.EndSpan(step, 2.0)

	snap := r.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("%d spans", len(snap.Spans))
	}
	byCat := snap.SpanSeconds()
	if byCat[CatStep] != 1.0 || byCat[CatPhase] != 0.5 || byCat[CatCollective] != 0.5 {
		t.Fatalf("span seconds %v", byCat)
	}
	colls := snap.SpansFor(CatCollective)
	if len(colls) != 1 || colls[0].Parent == 0 || colls[0].Attrs.Algorithm != "ring" {
		t.Fatalf("collective span %+v", colls)
	}
	alg := snap.AlgSeconds()
	if math.Abs(alg["allreduce/ring"]-0.5) > 1e-15 {
		t.Fatalf("AlgSeconds %v", alg)
	}
}

func TestEndSpanClampsAndIgnoresUnknown(t *testing.T) {
	r := NewRecorder()
	id := r.StartSpan(0, 0, CatStep, "iter", 5.0)
	r.EndSpan(id, 4.0) // end before start: clamp
	r.EndSpan(id, 9.0) // already closed: ignored
	r.EndSpan(12345, 9.0)
	r.EndSpan(0, 9.0)
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Duration() != 0 {
		t.Fatalf("spans %+v", snap.Spans)
	}
}

func TestSpanCapDrops(t *testing.T) {
	r := NewRecorder(WithMaxSpans(2))
	for i := 0; i < 5; i++ {
		r.Span(0, 0, CatStep, "s", float64(i), float64(i+1), NoAttrs)
	}
	if r.SpanCount() != 2 || r.DroppedSpans() != 3 {
		t.Fatalf("count %d dropped %d", r.SpanCount(), r.DroppedSpans())
	}
}

func TestMetrics(t *testing.T) {
	r := NewRecorder()
	c := r.Counter("wire/bytes")
	c.Add(100)
	c.Inc()
	if c.Value() != 101 {
		t.Fatalf("counter %g", c.Value())
	}
	if r.Counter("wire/bytes") != c {
		t.Fatal("counter not memoized")
	}
	g := r.Gauge("eb")
	g.Set(4e-3)
	if g.Value() != 4e-3 {
		t.Fatalf("gauge %g", g.Value())
	}
	h := r.Histogram("ratio")
	for _, v := range []float64{2, 4, 8, 32} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	hs := snap.Histograms["ratio"]
	if hs.Count != 4 || hs.Min != 2 || hs.Max != 32 || math.Abs(hs.Mean-11.5) > 1e-12 {
		t.Fatalf("histogram %+v", hs)
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("bucket counts %v", hs.Buckets)
	}
	if snap.Counters["wire/bytes"] != 101 || snap.Gauges["eb"] != 4e-3 {
		t.Fatalf("snapshot %+v", snap)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)
	h.Observe(-1)
	h.Observe(math.Inf(1))
	h.Observe(math.NaN())
	h.Observe(1e300) // overflow bucket
	if h.count != 5 {
		t.Fatalf("count %d", h.count)
	}
	if got := histBucket(1.0); BucketBound(got) != 1.0 {
		t.Fatalf("bucket for 1.0 has bound %g", BucketBound(got))
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < 200; i++ {
				id := r.StartSpan(0, rank, CatStep, "iter", float64(i))
				r.EndSpan(id, float64(i+1))
				c.Inc()
				r.Histogram("h").Observe(float64(i))
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	if len(snap.Spans) != 8*200 {
		t.Fatalf("%d spans", len(snap.Spans))
	}
	if snap.Counters["shared"] != 8*200 {
		t.Fatalf("counter %g", snap.Counters["shared"])
	}
}

func TestChromeTraceExportAndValidate(t *testing.T) {
	r := NewRecorder(WithTransferSpans(true))
	step := r.StartSpan(0, 0, CatStep, "iter", 0)
	r.Span(step, 0, CatCollective, "allgather", 0.0, 0.2,
		Attrs{Algorithm: "hierarchical", BytesIn: 1 << 20, Layer: -1, Peer: -1, Step: -1})
	r.Span(step, 0, CatTransfer, "allgather", 0.01, 0.05,
		Attrs{Algorithm: "hierarchical", Link: "inter", Peer: 1, Step: 0, BytesIn: 4096, Layer: -1})
	r.Instant(step, 0, CatControl, "strategy-switch", 0.1, NoAttrs)
	r.EndSpan(step, 0.3)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("self-emitted trace invalid: %v", err)
	}
	// Structural checks on the emitted JSON.
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	var xEvents, iEvents, mEvents, linkEvents int
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
		case "i":
			iEvents++
		case "M":
			mEvents++
		}
		if ev["pid"].(float64) == chromePidLinks && ev["ph"] != "M" {
			linkEvents++
		}
	}
	if xEvents != 3 || iEvents != 1 || mEvents < 3 || linkEvents != 1 {
		t.Fatalf("X=%d i=%d M=%d links=%d", xEvents, iEvents, mEvents, linkEvents)
	}
}

func TestValidateChromeTraceRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name string
		blob string
	}{
		{"not json", `{`},
		{"no traceEvents", `{}`},
		{"missing name", `{"traceEvents":[{"ph":"X","ts":0,"pid":0,"tid":0,"dur":1}]}`},
		{"missing ph", `{"traceEvents":[{"name":"a","ts":0,"pid":0,"tid":0}]}`},
		{"missing ts", `{"traceEvents":[{"name":"a","ph":"X","pid":0,"tid":0,"dur":1}]}`},
		{"negative ts", `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"pid":0,"tid":0,"dur":1}]}`},
		{"no dur on X", `{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":0,"tid":0}]}`},
		{"negative dur", `{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":0,"tid":0,"dur":-2}]}`},
		{"non-monotonic", `{"traceEvents":[
			{"name":"a","ph":"X","ts":5,"pid":0,"tid":0,"dur":1},
			{"name":"b","ph":"X","ts":4,"pid":0,"tid":0,"dur":1}]}`},
	}
	for _, tc := range cases {
		if err := ValidateChromeTrace([]byte(tc.blob)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	ok := `{"traceEvents":[
		{"name":"m","ph":"M","ts":0,"pid":0,"tid":0},
		{"name":"a","ph":"X","ts":0,"pid":0,"tid":0,"dur":3},
		{"name":"b","ph":"i","ts":2,"pid":0,"tid":0}]}`
	if err := ValidateChromeTrace([]byte(ok)); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestMetricsExports(t *testing.T) {
	r := NewRecorder()
	r.Counter("wire/bytes").Add(1024)
	r.Gauge("controller/eb_quant").Set(4e-3)
	r.Histogram("compress/ratio").Observe(22.1)
	r.Span(0, 0, CatCompress, "COMPSO", 0, 0.5, NoAttrs)

	var jsonBuf bytes.Buffer
	if err := r.WriteMetricsJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var dump map[string]any
	if err := json.Unmarshal(jsonBuf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"counters", "gauges", "histograms", "span_seconds", "span_count"} {
		if _, ok := dump[key]; !ok {
			t.Fatalf("metrics JSON missing %q: %v", key, dump)
		}
	}

	var csvBuf bytes.Buffer
	if err := r.WriteMetricsCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	out := csvBuf.String()
	for _, want := range []string{"kind,name,count", "counter,wire/bytes", "gauge,controller/eb_quant",
		"histogram,compress/ratio", "spans,compress"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestReconcileAlgSeconds(t *testing.T) {
	base := map[string]float64{"allgather/ring": 1.0, "allreduce/hierarchical": 2.0}
	within := map[string]float64{"allgather/ring": 1.005, "allreduce/hierarchical": 2.0}
	if err := ReconcileAlgSeconds(within, base, 0.01); err != nil {
		t.Fatalf("1%% tolerance rejected 0.5%% drift: %v", err)
	}
	outside := map[string]float64{"allgather/ring": 1.1, "allreduce/hierarchical": 2.0}
	if err := ReconcileAlgSeconds(outside, base, 0.01); err == nil {
		t.Fatal("10% drift reconciled")
	}
	missing := map[string]float64{"allreduce/hierarchical": 2.0}
	if err := ReconcileAlgSeconds(missing, base, 0.01); err == nil {
		t.Fatal("missing key reconciled")
	}
	negligible := map[string]float64{"allgather/ring": 1.0, "barrier/x": 1e-15}
	if err := ReconcileAlgSeconds(negligible, map[string]float64{"allgather/ring": 1.0}, 0.01); err != nil {
		t.Fatalf("negligible key rejected: %v", err)
	}
}

// TestDisabledRecorderZeroAlloc is the zero-cost-when-disabled contract:
// the full per-iteration instrumentation sequence on a nil recorder must
// not allocate. This is the assertion backing the acceptance criterion
// that tier-1 hot-path timings are unaffected with Obs disabled.
func TestDisabledRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		step := r.StartSpan(0, 0, CatStep, "iter", 1.0)
		phase := r.StartSpan(step, 0, CatPhase, "grad-sync", 1.0)
		r.Span(phase, 0, CatCollective, "allreduce", 1.0, 1.5,
			Attrs{Algorithm: "ring", BytesIn: 4096, Layer: -1, Peer: -1, Step: -1})
		r.Instant(phase, 0, CatControl, "strategy-switch", 1.2, NoAttrs)
		r.EndSpanAttrs(phase, 1.5, NoAttrs)
		r.EndSpan(step, 2.0)
		r.Counter("wire/bytes").Add(4096)
		r.Gauge("eb").Set(4e-3)
		r.Histogram("ratio").Observe(22.1)
		if r.TransferSpans() || r.Enabled() {
			t.Fatal("nil recorder claims to be enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder allocated %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkDisabledRecorder reports the per-op overhead of the disabled
// instrumentation path (expected: a few ns, 0 allocs/op).
func BenchmarkDisabledRecorder(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		step := r.StartSpan(0, 0, CatStep, "iter", 1.0)
		r.Span(step, 0, CatCollective, "allreduce", 1.0, 1.5, NoAttrs)
		r.EndSpan(step, 2.0)
		r.Counter("wire/bytes").Add(4096)
		r.Histogram("ratio").Observe(22.1)
	}
}

// BenchmarkEnabledRecorder reports the cost of the enabled path.
func BenchmarkEnabledRecorder(b *testing.B) {
	r := NewRecorder(WithMaxSpans(1 << 26))
	c := r.Counter("wire/bytes")
	h := r.Histogram("ratio")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step := r.StartSpan(0, 0, CatStep, "iter", 1.0)
		r.Span(step, 0, CatCollective, "allreduce", 1.0, 1.5, NoAttrs)
		r.EndSpan(step, 2.0)
		c.Add(4096)
		h.Observe(22.1)
	}
}
