package obs

import (
	"fmt"
	"math"
	"sort"
)

// Snapshot is the recorder's in-process state at one point in time: the
// retained spans plus every metric's value. It is the API tests and
// experiments consume directly, without going through an exporter.
type Snapshot struct {
	Spans        []Span                       `json:"-"`
	DroppedSpans int64                        `json:"dropped_spans"`
	Counters     map[string]float64           `json:"counters"`
	Gauges       map[string]float64           `json:"gauges"`
	Histograms   map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot returns a deep copy of the recorder's current state. A nil
// recorder returns an empty snapshot.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.Spans, s.DroppedSpans = r.snapshotSpans()
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// SpanSeconds sums span durations per category.
func (s Snapshot) SpanSeconds() map[Category]float64 {
	out := make(map[Category]float64)
	for _, sp := range s.Spans {
		out[sp.Cat] += sp.Duration()
	}
	return out
}

// Categories returns the distinct span categories present, sorted.
func (s Snapshot) Categories() []Category {
	seen := make(map[Category]bool)
	for _, sp := range s.Spans {
		seen[sp.Cat] = true
	}
	out := make([]Category, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AlgSeconds sums collective span durations per "op/algorithm" key across
// all ranks — the span-level counterpart of the cluster's AlgSeconds
// attribution, used by the reconciliation check.
func (s Snapshot) AlgSeconds() map[string]float64 {
	out := make(map[string]float64)
	for _, sp := range s.Spans {
		if sp.Cat != CatCollective || sp.Attrs.Algorithm == "" {
			continue
		}
		out[sp.Name+"/"+sp.Attrs.Algorithm] += sp.Duration()
	}
	return out
}

// SpansFor returns the spans of one category, in record order.
func (s Snapshot) SpansFor(cat Category) []Span {
	var out []Span
	for _, sp := range s.Spans {
		if sp.Cat == cat {
			out = append(out, sp)
		}
	}
	return out
}

// ReconcileAlgSeconds asserts that two per-"op/algorithm" attributions
// agree within the relative tolerance (e.g. 0.01 for 1%). Keys whose
// larger side is below eps seconds are ignored (both attributions agree
// the time is negligible). It returns nil when everything reconciles.
func ReconcileAlgSeconds(spanSums, clusterSums map[string]float64, tol float64) error {
	const eps = 1e-12
	keys := make(map[string]bool)
	for k := range spanSums {
		keys[k] = true
	}
	for k := range clusterSums {
		keys[k] = true
	}
	for k := range keys {
		a, b := spanSums[k], clusterSums[k]
		ref := math.Max(math.Abs(a), math.Abs(b))
		if ref < eps {
			continue
		}
		if math.Abs(a-b) > tol*ref {
			return fmt.Errorf("obs: %s does not reconcile: span-sum %.6es vs cluster %.6es (tol %.2g%%)",
				k, a, b, tol*100)
		}
	}
	return nil
}
