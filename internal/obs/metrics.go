package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 metric. A nil *Counter
// (returned by a nil Recorder) is a no-op.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v.
func (c *Counter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter's total. Counters are otherwise monotonic;
// Set exists for exactly one caller class — checkpoint restore, which must
// rewind cumulative tallies (wire bytes, step counts) to the snapshotted
// values so a resumed run reports totals bit-identical to an uninterrupted
// one.
func (c *Counter) Set(v float64) {
	if c == nil {
		return
	}
	c.bits.Store(math.Float64bits(v))
}

// Value returns the current total (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a last-value metric. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed exponential bucket count: bucket i covers
// [2^(i+histMinExp), 2^(i+1+histMinExp)), with underflow and overflow
// absorbed into the first and last buckets.
const (
	histBuckets = 64
	histMinExp  = -30 // first bucket lower bound 2^-30 (~1e-9)
)

// Histogram accumulates a distribution over base-2 exponential buckets
// plus exact count/sum/min/max. Observations are simulated-time quantities
// (seconds, bytes, ratios); non-positive values land in the first bucket.
// A nil *Histogram is a no-op.
type Histogram struct {
	mu       sync.Mutex
	counts   [histBuckets]int64
	count    int64
	sum      float64
	min, max float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[histBucket(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// histBucket maps a value to its bucket index.
func histBucket(v float64) int {
	if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	exp := int(math.Floor(math.Log2(v))) - histMinExp
	if exp < 0 {
		exp = 0
	}
	if exp >= histBuckets {
		exp = histBuckets - 1
	}
	return exp
}

// BucketBound returns the inclusive lower bound of bucket i.
func BucketBound(i int) float64 {
	return math.Ldexp(1, i+histMinExp)
}

// BucketCount is one non-empty histogram bucket: the inclusive lower
// bound of the base-2 bucket and its sample count.
type BucketCount struct {
	Bound float64 `json:"bound"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a histogram's state at Snapshot time.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	// Buckets lists the non-empty buckets in ascending bound order.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
		for i, c := range h.counts {
			if c > 0 {
				s.Buckets = append(s.Buckets, BucketCount{Bound: BucketBound(i), Count: c})
			}
		}
	}
	return s
}

// Counter returns the named counter, creating it on first use. A nil
// recorder returns a nil (no-op) counter.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterNames returns the names of all counters created so far that
// start with prefix (all of them for ""), in unspecified order. A nil
// recorder returns nil. Checkpoint restore uses it to find stale counters
// that must be rewound alongside the snapshotted ones.
func (r *Recorder) CounterNames(prefix string) []string {
	if r == nil {
		return nil
	}
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	var names []string
	for name := range r.counters {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	return names
}

// Gauge returns the named gauge, creating it on first use. A nil recorder
// returns a nil (no-op) gauge.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A nil
// recorder returns a nil (no-op) histogram.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.metricsMu.Lock()
	defer r.metricsMu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}
