package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Flat metrics exporters: a JSON dump (the Snapshot's metric maps plus
// span-category totals) and a CSV with one row per metric.

// metricsDump is the JSON schema of WriteMetricsJSON.
type metricsDump struct {
	Counters     map[string]float64           `json:"counters"`
	Gauges       map[string]float64           `json:"gauges"`
	Histograms   map[string]HistogramSnapshot `json:"histograms"`
	SpanSeconds  map[string]float64           `json:"span_seconds"`
	SpanCount    int                          `json:"span_count"`
	DroppedSpans int64                        `json:"dropped_spans"`
}

// WriteMetricsJSON writes the recorder's metrics as a flat JSON object.
func (r *Recorder) WriteMetricsJSON(w io.Writer) error {
	return r.Snapshot().WriteMetricsJSON(w)
}

// WriteMetricsJSON writes the snapshot's metrics as a flat JSON object
// with keys counters, gauges, histograms, span_seconds, span_count and
// dropped_spans.
func (s Snapshot) WriteMetricsJSON(w io.Writer) error {
	dump := metricsDump{
		Counters:     s.Counters,
		Gauges:       s.Gauges,
		Histograms:   s.Histograms,
		SpanSeconds:  map[string]float64{},
		SpanCount:    len(s.Spans),
		DroppedSpans: s.DroppedSpans,
	}
	for cat, sec := range s.SpanSeconds() {
		dump.SpanSeconds[string(cat)] = sec
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// WriteMetricsCSV writes the recorder's metrics as CSV rows of
// kind,name,count,sum,min,max,mean,value.
func (r *Recorder) WriteMetricsCSV(w io.Writer) error {
	return r.Snapshot().WriteMetricsCSV(w)
}

// WriteMetricsCSV writes the snapshot's metrics as CSV. Counters and
// gauges fill only the value column; histograms fill count/sum/min/max/
// mean; span-category totals appear as kind "spans" with the summed
// simulated seconds in value.
func (s Snapshot) WriteMetricsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "name", "count", "sum", "min", "max", "mean", "value"}); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%g", v) }
	for _, name := range sortedStringKeys(s.Counters) {
		if err := cw.Write([]string{"counter", name, "", "", "", "", "", f(s.Counters[name])}); err != nil {
			return err
		}
	}
	for _, name := range sortedStringKeys(s.Gauges) {
		if err := cw.Write([]string{"gauge", name, "", "", "", "", "", f(s.Gauges[name])}); err != nil {
			return err
		}
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		row := []string{"histogram", name,
			fmt.Sprintf("%d", h.Count), f(h.Sum), f(h.Min), f(h.Max), f(h.Mean), ""}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	spanSeconds := s.SpanSeconds()
	cats := make([]string, 0, len(spanSeconds))
	for cat := range spanSeconds {
		cats = append(cats, string(cat))
	}
	sort.Strings(cats)
	for _, cat := range cats {
		if err := cw.Write([]string{"spans", cat, "", "", "", "", "", f(spanSeconds[Category(cat)])}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func sortedStringKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
