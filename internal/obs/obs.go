// Package obs is the simulated-time observability layer: hierarchical
// spans on the cluster's simulated clock, a typed metrics registry
// (counters, gauges, histograms), and exporters (Chrome trace.json for
// chrome://tracing / Perfetto, flat JSON/CSV metrics dumps, and an
// in-process Snapshot API for tests and experiments).
//
// The central object is the Recorder. A nil *Recorder is the disabled
// recorder: every method is a nil-receiver no-op that performs zero heap
// allocations, so instrumentation can stay inline on hot paths without
// affecting uninstrumented runs (guarded by TestDisabledRecorderZeroAlloc).
//
// Spans carry the attributes the COMPSO experiments need to audit the
// paper's §5 claim — that (de)compression overhead stays below the
// communication it saves: worker/rank, category (step, phase, collective,
// transfer, compress, precondition, control), bytes in/out, layer index,
// and the collective algorithm chosen by the autotuner. All timestamps are
// simulated seconds, not wall-clock time.
//
// The package sits at the bottom of the dependency graph: it imports
// nothing from the rest of the repo, so every layer (cluster, collective,
// compress, compso, train) can record into it.
package obs

import (
	"sync"
)

// Category classifies a span for grouping and per-category accounting.
type Category string

// The span categories emitted by the instrumented pipeline.
const (
	// CatStep is one training iteration on one worker.
	CatStep Category = "step"
	// CatPhase is a sub-step phase (grad-sync, factor-sync, eigendecomp,
	// precondition-gather, ...).
	CatPhase Category = "phase"
	// CatCollective is one collective call as seen by one rank: the span
	// covers exactly the simulated time the rank was blocked, so per-
	// algorithm span sums reconcile with cluster AlgSeconds attribution.
	CatCollective Category = "collective"
	// CatTransfer is one point-to-point link transfer inside a collective
	// schedule (link-occupancy view; recorded only with WithTransferSpans).
	CatTransfer Category = "transfer"
	// CatCompress covers (de)compression work, timed by the gpusim kernel
	// cost model.
	CatCompress Category = "compress"
	// CatPrecondition covers K-FAC eigendecomposition and preconditioning
	// compute.
	CatPrecondition Category = "precondition"
	// CatControl marks controller decisions (strategy switches, autotuner
	// picks) — usually zero-duration instant spans.
	CatControl Category = "control"
)

// SpanID identifies a recorded span; the zero value means "no span" and is
// accepted (and ignored) anywhere a parent or end target is expected.
type SpanID uint64

// Attrs carries optional span attributes. The zero value means "no
// attributes"; Layer and Peer use -1 for "not applicable" (NoAttrs has them
// pre-set).
type Attrs struct {
	// Algorithm is the collective algorithm or compressor name.
	Algorithm string
	// Label is a free-form qualifier (train comm category, strategy name).
	Label string
	// Link is the link class for transfer spans ("intra"/"inter").
	Link string
	// Layer is the model layer index, -1 when not applicable.
	Layer int
	// Peer is the remote rank for transfer spans, -1 when not applicable.
	Peer int
	// Step is the schedule step within a collective, -1 when n/a.
	Step int
	// BytesIn and BytesOut are the span's data sizes (e.g. uncompressed
	// and compressed bytes for compress spans, wire bytes for transfers).
	BytesIn, BytesOut int64
	// Value is a generic numeric attribute (e.g. an error bound).
	Value float64
}

// NoAttrs is the canonical empty attribute set (Layer/Peer/Step = -1).
var NoAttrs = Attrs{Layer: -1, Peer: -1, Step: -1}

// Span is one recorded span. End < Start never occurs (End is clamped);
// End == Start is an instant event.
type Span struct {
	ID     SpanID
	Parent SpanID
	Rank   int
	Cat    Category
	Name   string
	Start  float64
	End    float64
	Attrs  Attrs
}

// Duration returns the span's simulated seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// DefaultMaxSpans bounds span retention per recorder unless overridden
// with WithMaxSpans; spans beyond the cap are counted but dropped.
const DefaultMaxSpans = 1 << 18

// Option configures a Recorder at construction.
type Option func(*Recorder)

// WithMaxSpans caps span retention (n <= 0 keeps the default).
func WithMaxSpans(n int) Option {
	return func(r *Recorder) {
		if n > 0 {
			r.maxSpans = n
		}
	}
}

// WithTransferSpans enables per-transfer link-occupancy spans inside
// collective schedules. These are voluminous (one span per scheduled
// point-to-point message), so they are off by default.
func WithTransferSpans(enabled bool) Option {
	return func(r *Recorder) { r.transferSpans = enabled }
}

// Recorder collects spans and metrics. All methods are safe for concurrent
// use from the simulated workers' goroutines, and all methods are no-ops
// (with zero allocations) on a nil receiver.
type Recorder struct {
	mu            sync.Mutex
	maxSpans      int
	transferSpans bool
	spans         []Span
	open          map[SpanID]int // open span ID -> index in spans
	nextID        SpanID
	dropped       int64

	metricsMu  sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRecorder returns an enabled recorder.
func NewRecorder(opts ...Option) *Recorder {
	r := &Recorder{
		maxSpans:   DefaultMaxSpans,
		open:       make(map[SpanID]int),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Enabled reports whether the recorder records anything (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// TransferSpans reports whether per-transfer spans should be recorded.
// Callers use it to skip event-conversion loops entirely when disabled.
func (r *Recorder) TransferSpans() bool { return r != nil && r.transferSpans }

// StartSpan opens a span at the given simulated start time and returns its
// ID (0 when the recorder is disabled or the span cap is reached). parent
// may be 0 for a root span.
func (r *Recorder) StartSpan(parent SpanID, rank int, cat Category, name string, start float64) SpanID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.maxSpans {
		r.dropped++
		return 0
	}
	r.nextID++
	id := r.nextID
	r.spans = append(r.spans, Span{
		ID: id, Parent: parent, Rank: rank, Cat: cat, Name: name,
		Start: start, End: start, Attrs: NoAttrs,
	})
	r.open[id] = len(r.spans) - 1
	return id
}

// EndSpan closes an open span at the given simulated end time (clamped to
// the span's start). Unknown or zero IDs are ignored.
func (r *Recorder) EndSpan(id SpanID, end float64) {
	r.EndSpanAttrs(id, end, NoAttrs)
}

// EndSpanAttrs closes an open span and attaches attributes.
func (r *Recorder) EndSpanAttrs(id SpanID, end float64, a Attrs) {
	if r == nil || id == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	idx, ok := r.open[id]
	if !ok {
		return
	}
	delete(r.open, id)
	sp := &r.spans[idx]
	if end < sp.Start {
		end = sp.Start
	}
	sp.End = end
	if a != NoAttrs {
		sp.Attrs = a
	}
}

// Span records a complete span in one call and returns its ID.
func (r *Recorder) Span(parent SpanID, rank int, cat Category, name string, start, end float64, a Attrs) SpanID {
	if r == nil {
		return 0
	}
	if end < start {
		end = start
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.maxSpans {
		r.dropped++
		return 0
	}
	r.nextID++
	id := r.nextID
	r.spans = append(r.spans, Span{
		ID: id, Parent: parent, Rank: rank, Cat: cat, Name: name,
		Start: start, End: end, Attrs: a,
	})
	return id
}

// Instant records a zero-duration marker span (rendered as an instant
// event in the Chrome trace).
func (r *Recorder) Instant(parent SpanID, rank int, cat Category, name string, ts float64, a Attrs) {
	r.Span(parent, rank, cat, name, ts, ts, a)
}

// DroppedSpans returns how many spans were discarded at the cap.
func (r *Recorder) DroppedSpans() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// SpanCount returns the number of retained spans.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// snapshotSpans copies the retained spans (open spans appear with
// End == Start as of their opening).
func (r *Recorder) snapshotSpans() ([]Span, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out, r.dropped
}
