// Package dataset generates the synthetic tasks the proxy models train on,
// standing in for ImageNet, COCO, enwiki/BookCorpus, the Pile and SQuAD
// (none of which can be shipped or fit in this environment). Each task is a
// deterministic generator: the same seed yields the same stream, so every
// optimizer/compressor comparison trains on identical data.
package dataset

import (
	"math/rand/v2"

	"compso/internal/tensor"
	"compso/internal/xrand"
)

// Generator produces minibatches. x is batch×features; the shape of y
// depends on the task (class index column or regression targets).
type Generator interface {
	Name() string
	Sample(rng *rand.Rand, n int) (x, y *tensor.Matrix)
	// InputDim returns the width of x.
	InputDim() int
}

// ImageClassification is the ImageNet stand-in: C×H×W images built from
// per-class frequency templates plus noise, so a small CNN must learn
// spatial structure to separate the classes.
type ImageClassification struct {
	Classes, C, H, W int
	Noise            float64
	templates        []*tensor.Matrix
}

// NewImageClassification creates the task with deterministic class
// templates derived from seed.
func NewImageClassification(classes, c, h, w int, noise float64, seed int64) *ImageClassification {
	rng := xrand.NewSeeded(seed)
	d := &ImageClassification{Classes: classes, C: c, H: h, W: w, Noise: noise}
	for cls := 0; cls < classes; cls++ {
		tmpl := tensor.New(1, c*h*w)
		for i := range tmpl.Data {
			tmpl.Data[i] = rng.NormFloat64()
		}
		d.templates = append(d.templates, tmpl)
	}
	return d
}

// Name implements Generator.
func (d *ImageClassification) Name() string { return "image-classification" }

// InputDim implements Generator.
func (d *ImageClassification) InputDim() int { return d.C * d.H * d.W }

// Sample implements Generator.
func (d *ImageClassification) Sample(rng *rand.Rand, n int) (*tensor.Matrix, *tensor.Matrix) {
	x := tensor.New(n, d.InputDim())
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		cls := rng.IntN(d.Classes)
		y.Data[i] = float64(cls)
		tmpl := d.templates[cls].Data
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		for j := range row {
			row[j] = tmpl[j] + rng.NormFloat64()*d.Noise
		}
	}
	return x, y
}

// Detection is the COCO stand-in for the Mask R-CNN proxy: images contain a
// bright square object; the target is its normalized bounding box
// (cx, cy, w, h), making it a regression task evaluated by validation loss
// exactly as the paper reports Mask R-CNN.
type Detection struct {
	C, H, W int
	Noise   float64
}

// NewDetection creates the detection task.
func NewDetection(c, h, w int, noise float64) *Detection {
	return &Detection{C: c, H: h, W: w, Noise: noise}
}

// Name implements Generator.
func (d *Detection) Name() string { return "detection" }

// InputDim implements Generator.
func (d *Detection) InputDim() int { return d.C * d.H * d.W }

// Sample implements Generator. y is batch×4 normalized box coordinates.
func (d *Detection) Sample(rng *rand.Rand, n int) (*tensor.Matrix, *tensor.Matrix) {
	x := tensor.New(n, d.InputDim())
	y := tensor.New(n, 4)
	for i := 0; i < n; i++ {
		size := 2 + rng.IntN(d.H/2)
		cx := rng.IntN(d.W - size)
		cy := rng.IntN(d.H - size)
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		for j := range row {
			row[j] = rng.NormFloat64() * d.Noise
		}
		for ch := 0; ch < d.C; ch++ {
			for yy := cy; yy < cy+size; yy++ {
				for xx := cx; xx < cx+size; xx++ {
					row[ch*d.H*d.W+yy*d.W+xx] += 1.0
				}
			}
		}
		y.Data[i*4+0] = (float64(cx) + float64(size)/2) / float64(d.W)
		y.Data[i*4+1] = (float64(cy) + float64(size)/2) / float64(d.H)
		y.Data[i*4+2] = float64(size) / float64(d.W)
		y.Data[i*4+3] = float64(size) / float64(d.H)
	}
	return x, y
}

// TextClassification is the language-model stand-in for the BERT/GPT
// proxies: token sequences from per-class Markov chains; the model must
// learn token-transition statistics to classify.
type TextClassification struct {
	Classes, Vocab, SeqLen int
	trans                  [][]float64 // per class: flattened Vocab×Vocab transition CDFs
}

// NewTextClassification builds per-class transition matrices from seed.
func NewTextClassification(classes, vocab, seqLen int, seed int64) *TextClassification {
	rng := xrand.NewSeeded(seed)
	d := &TextClassification{Classes: classes, Vocab: vocab, SeqLen: seqLen}
	for c := 0; c < classes; c++ {
		cdf := make([]float64, vocab*vocab)
		for from := 0; from < vocab; from++ {
			var total float64
			weights := make([]float64, vocab)
			for to := range weights {
				w := rng.Float64()
				// Sparsify: each class prefers a different token subset,
				// strongly enough that a small model separates the classes
				// within a short training budget.
				if (to+from+c)%classes != 0 {
					w *= 0.04
				}
				weights[to] = w
				total += w
			}
			acc := 0.0
			for to, w := range weights {
				acc += w / total
				cdf[from*vocab+to] = acc
			}
		}
		d.trans = append(d.trans, cdf)
	}
	return d
}

// Name implements Generator.
func (d *TextClassification) Name() string { return "text-classification" }

// InputDim implements Generator.
func (d *TextClassification) InputDim() int { return d.SeqLen }

// Sample implements Generator. x holds token ids as float64 values.
func (d *TextClassification) Sample(rng *rand.Rand, n int) (*tensor.Matrix, *tensor.Matrix) {
	x := tensor.New(n, d.SeqLen)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		cls := rng.IntN(d.Classes)
		y.Data[i] = float64(cls)
		cdf := d.trans[cls]
		tok := rng.IntN(d.Vocab)
		for s := 0; s < d.SeqLen; s++ {
			x.Data[i*d.SeqLen+s] = float64(tok)
			u := rng.Float64()
			row := cdf[tok*d.Vocab : (tok+1)*d.Vocab]
			next := 0
			for next < len(row)-1 && row[next] < u {
				next++
			}
			tok = next
		}
	}
	return x, y
}

// SpanExtraction is the SQuAD v1.1 stand-in: a token sequence contains an
// "answer" span opened by a question-dependent trigger token; the label
// encodes (start, length) jointly as start·MaxLen + (length−1), so a single
// softmax head predicts the span and the standard SQuAD F1/exact-match
// metrics apply.
type SpanExtraction struct {
	Vocab, SeqLen, MaxLen int
}

// NewSpanExtraction creates the task. Classes() = SeqLen·MaxLen.
func NewSpanExtraction(vocab, seqLen, maxLen int) *SpanExtraction {
	return &SpanExtraction{Vocab: vocab, SeqLen: seqLen, MaxLen: maxLen}
}

// Name implements Generator.
func (d *SpanExtraction) Name() string { return "span-extraction" }

// InputDim implements Generator.
func (d *SpanExtraction) InputDim() int { return d.SeqLen }

// Classes returns the size of the joint (start, length) label space.
func (d *SpanExtraction) Classes() int { return d.SeqLen * d.MaxLen }

// triggerToken is the reserved token that opens an answer span.
const triggerToken = 0

// Sample implements Generator.
func (d *SpanExtraction) Sample(rng *rand.Rand, n int) (*tensor.Matrix, *tensor.Matrix) {
	x := tensor.New(n, d.SeqLen)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		length := 1 + rng.IntN(d.MaxLen)
		start := 1 + rng.IntN(d.SeqLen-length-1)
		for s := 0; s < d.SeqLen; s++ {
			x.Data[i*d.SeqLen+s] = float64(2 + rng.IntN(d.Vocab-2))
		}
		// Trigger token marks the span start; span tokens use token 1.
		x.Data[i*d.SeqLen+start-1] = triggerToken
		for s := start; s < start+length; s++ {
			x.Data[i*d.SeqLen+s] = 1
		}
		y.Data[i] = float64(start*d.MaxLen + (length - 1))
	}
	return x, y
}

// SpanF1EM scores predicted joint labels against gold labels with the
// SQuAD metrics: exact match and token-overlap F1, both in [0, 100].
func (d *SpanExtraction) SpanF1EM(pred, gold []int) (f1, em float64) {
	if len(pred) != len(gold) || len(pred) == 0 {
		return 0, 0
	}
	var f1Sum, emSum float64
	for i := range pred {
		ps, pl := pred[i]/d.MaxLen, pred[i]%d.MaxLen+1
		gs, gl := gold[i]/d.MaxLen, gold[i]%d.MaxLen+1
		if ps == gs && pl == gl {
			emSum++
			f1Sum++
			continue
		}
		// Token overlap.
		lo := max(ps, gs)
		hi := min(ps+pl, gs+gl)
		overlap := hi - lo
		if overlap <= 0 {
			continue
		}
		precision := float64(overlap) / float64(pl)
		recall := float64(overlap) / float64(gl)
		f1Sum += 2 * precision * recall / (precision + recall)
	}
	n := float64(len(pred))
	return 100 * f1Sum / n, 100 * emSum / n
}
