package dataset

import (
	"math"
	"testing"

	"compso/internal/xrand"
)

func TestImageClassificationShapes(t *testing.T) {
	d := NewImageClassification(10, 3, 8, 8, 0.5, 1)
	x, y := d.Sample(xrand.NewSeeded(2), 17)
	if x.Rows != 17 || x.Cols != 3*8*8 {
		t.Fatalf("x %dx%d", x.Rows, x.Cols)
	}
	if y.Rows != 17 || y.Cols != 1 {
		t.Fatalf("y %dx%d", y.Rows, y.Cols)
	}
	for i := 0; i < y.Rows; i++ {
		if c := int(y.Data[i]); c < 0 || c >= 10 {
			t.Fatalf("class %d out of range", c)
		}
	}
}

func TestImageClassificationDeterministic(t *testing.T) {
	d1 := NewImageClassification(5, 1, 6, 6, 0.3, 42)
	d2 := NewImageClassification(5, 1, 6, 6, 0.3, 42)
	x1, y1 := d1.Sample(xrand.NewSeeded(7), 8)
	x2, y2 := d2.Sample(xrand.NewSeeded(7), 8)
	for i := range x1.Data {
		if x1.Data[i] != x2.Data[i] {
			t.Fatal("same seeds produced different images")
		}
	}
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("same seeds produced different labels")
		}
	}
}

func TestImageClassificationSeparable(t *testing.T) {
	// Nearest-template classification must beat chance by a wide margin,
	// or the task is pure noise.
	d := NewImageClassification(4, 1, 6, 6, 0.5, 3)
	x, y := d.Sample(xrand.NewSeeded(4), 200)
	correct := 0
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		best, bestDist := -1, math.Inf(1)
		for c := 0; c < 4; c++ {
			var dist float64
			for j, v := range d.templates[c].Data {
				dd := row[j] - v
				dist += dd * dd
			}
			if dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == int(y.Data[i]) {
			correct++
		}
	}
	if acc := float64(correct) / 200; acc < 0.9 {
		t.Fatalf("template accuracy %g, want >= 0.9", acc)
	}
}

func TestDetectionTargetsNormalized(t *testing.T) {
	d := NewDetection(1, 12, 12, 0.2)
	x, y := d.Sample(xrand.NewSeeded(5), 50)
	if y.Cols != 4 {
		t.Fatalf("y cols %d, want 4", y.Cols)
	}
	for i := 0; i < y.Rows; i++ {
		for j := 0; j < 4; j++ {
			v := y.Data[i*4+j]
			if v < 0 || v > 1 {
				t.Fatalf("target %g not normalized", v)
			}
		}
	}
	// The object must actually brighten pixels.
	var maxV float64
	for _, v := range x.Data {
		if v > maxV {
			maxV = v
		}
	}
	if maxV < 0.9 {
		t.Fatalf("no object signal: max %g", maxV)
	}
}

func TestTextClassificationTokensInVocab(t *testing.T) {
	d := NewTextClassification(4, 20, 16, 6)
	x, y := d.Sample(xrand.NewSeeded(7), 40)
	for _, v := range x.Data {
		tok := int(v)
		if tok < 0 || tok >= 20 {
			t.Fatalf("token %d outside vocab", tok)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < y.Rows; i++ {
		seen[int(y.Data[i])] = true
	}
	if len(seen) < 2 {
		t.Fatal("labels degenerate")
	}
}

func TestTextClassificationClassesDiffer(t *testing.T) {
	// Token histograms must differ across classes or the task is
	// unlearnable.
	d := NewTextClassification(2, 10, 64, 8)
	hist := [2][10]float64{}
	counts := [2]float64{}
	x, y := d.Sample(xrand.NewSeeded(9), 400)
	for i := 0; i < x.Rows; i++ {
		c := int(y.Data[i])
		counts[c]++
		for s := 0; s < x.Cols; s++ {
			hist[c][int(x.Data[i*x.Cols+s])]++
		}
	}
	var dist float64
	for tok := 0; tok < 10; tok++ {
		p0 := hist[0][tok] / (counts[0] * 64)
		p1 := hist[1][tok] / (counts[1] * 64)
		dist += math.Abs(p0 - p1)
	}
	if dist < 0.05 {
		t.Fatalf("class token distributions nearly identical: L1 %g", dist)
	}
}

func TestSpanExtractionLabels(t *testing.T) {
	d := NewSpanExtraction(16, 12, 3)
	x, y := d.Sample(xrand.NewSeeded(10), 100)
	for i := 0; i < y.Rows; i++ {
		label := int(y.Data[i])
		if label < 0 || label >= d.Classes() {
			t.Fatalf("label %d outside %d classes", label, d.Classes())
		}
		start, length := label/d.MaxLen, label%d.MaxLen+1
		// The trigger token must precede the span and span tokens must be 1.
		if int(x.Data[i*d.SeqLen+start-1]) != triggerToken {
			t.Fatalf("no trigger before span at row %d", i)
		}
		for s := start; s < start+length; s++ {
			if int(x.Data[i*d.SeqLen+s]) != 1 {
				t.Fatalf("span token at %d is %d", s, int(x.Data[i*d.SeqLen+s]))
			}
		}
	}
}

func TestSpanF1EM(t *testing.T) {
	d := NewSpanExtraction(16, 12, 3)
	label := func(start, length int) int { return start*d.MaxLen + (length - 1) }
	// Exact match.
	f1, em := d.SpanF1EM([]int{label(3, 2)}, []int{label(3, 2)})
	if f1 != 100 || em != 100 {
		t.Fatalf("exact: f1=%g em=%g", f1, em)
	}
	// Disjoint.
	f1, em = d.SpanF1EM([]int{label(1, 1)}, []int{label(8, 2)})
	if f1 != 0 || em != 0 {
		t.Fatalf("disjoint: f1=%g em=%g", f1, em)
	}
	// Partial overlap: pred [3,5), gold [4,6) → overlap 1, p=0.5, r=0.5.
	f1, em = d.SpanF1EM([]int{label(3, 2)}, []int{label(4, 2)})
	if em != 0 || math.Abs(f1-50) > 1e-9 {
		t.Fatalf("partial: f1=%g em=%g", f1, em)
	}
	// Mismatched input.
	if f1, em = d.SpanF1EM(nil, []int{1}); f1 != 0 || em != 0 {
		t.Fatal("mismatched lengths should score 0")
	}
}
