package des_test

import (
	"testing"

	"compso/internal/cluster"
	"compso/internal/des"
	"compso/internal/fault"
)

func TestWorldBasics(t *testing.T) {
	w := des.NewWorld(cluster.Platform1(), 8)
	defer w.Release()

	w.Compute(0.5, "fwd")
	for r := 0; r < 8; r++ {
		if got := w.TimeOf(r); got != 0.5 {
			t.Fatalf("rank %d time after compute = %v, want 0.5", r, got)
		}
	}
	w.AllReduce(1000, "sync")
	if w.MaxTime() <= 0.5 {
		t.Fatalf("all-reduce did not advance clocks: %v", w.MaxTime())
	}
	if got := w.WireBytes(); got != 4000 {
		t.Fatalf("WireBytes = %d, want 4000", got)
	}
	if got := w.Collectives(); got != 1 {
		t.Fatalf("Collectives = %d, want 1", got)
	}
	stats := w.StatsOf(0)
	if stats["fwd"] != 0.5 {
		t.Fatalf("stats[fwd] = %v, want 0.5", stats["fwd"])
	}
	if stats["sync"] <= 0 {
		t.Fatalf("stats[sync] = %v, want > 0", stats["sync"])
	}
	if len(w.AlgSecondsOf(0)) == 0 {
		t.Fatal("no per-algorithm attribution recorded")
	}
	meas, pred := w.ScheduleSeconds()
	if meas <= 0 || pred <= 0 {
		t.Fatalf("ScheduleSeconds = (%v, %v), want positive", meas, pred)
	}
	if w.Footprint() <= 0 {
		t.Fatalf("Footprint = %d, want > 0", w.Footprint())
	}
}

func TestWorldBarrier(t *testing.T) {
	w := des.NewWorld(cluster.Platform1(), 4)
	defer w.Release()
	w.ComputeEach(func(r int) float64 { return float64(r + 1) }, "work")
	w.Barrier()
	for r := 0; r < 4; r++ {
		if got := w.TimeOf(r); got != 4 {
			t.Fatalf("rank %d time after barrier = %v, want 4", r, got)
		}
	}
	if got := w.StatsOf(0)["barrier"]; got != 3 {
		t.Fatalf("rank 0 barrier charge = %v, want 3", got)
	}
	if _, ok := w.StatsOf(3)["barrier"]; ok {
		t.Fatal("slowest rank should have no barrier charge")
	}
}

func TestWorldStragglerFaults(t *testing.T) {
	inj, err := fault.NewInjector(&fault.Plan{
		Seed:       3,
		Stragglers: []fault.Straggler{{Rank: 1, Factor: 2, FromStep: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	w := des.NewWorld(cluster.Platform1(), 4)
	defer w.Release()
	w.InjectFaults(inj)
	w.SetStep(0)
	w.Compute(1, "work")
	if got := w.TimeOf(1); got != 2 {
		t.Fatalf("straggler rank time = %v, want 2", got)
	}
	if got := w.TimeOf(0); got != 1 {
		t.Fatalf("healthy rank time = %v, want 1", got)
	}
}

func TestWorldTracing(t *testing.T) {
	w := des.NewWorld(cluster.Platform1(), 4)
	defer w.Release()
	if evs := w.EventsOf(0); evs != nil {
		t.Fatalf("events retained with tracing off: %d", len(evs))
	}
	w.SetTracing(true)
	w.AllGatherUniform(1024, "gather")
	if w.TotalEventsOf(0) == 0 {
		t.Fatal("no events retained with tracing on")
	}
	if len(w.EventsOf(0)) != int(w.TotalEventsOf(0)) {
		t.Fatalf("EventsOf len %d != TotalEvents %d (under ring cap)",
			len(w.EventsOf(0)), w.TotalEventsOf(0))
	}
}

func TestWorldReleaseIdempotent(t *testing.T) {
	w := des.NewWorld(cluster.Platform1(), 4)
	w.AllReduce(100, "sync")
	w.Release()
	w.Release() // second release must be a no-op

	defer func() {
		if recover() == nil {
			t.Fatal("collective on a released world should panic")
		}
	}()
	w.AllReduce(100, "sync")
}

func TestProgramValidation(t *testing.T) {
	w := des.NewWorld(cluster.Platform1(), 4)
	defer w.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched per-rank sizes should panic")
		}
	}()
	des.RunOnWorld(w, des.Program{{Kind: des.KindAllGather, Sizes: []int{1, 2, 3}, Category: "x"}})
}
