package des_test

import (
	"fmt"
	"testing"

	"compso/internal/cluster"
	"compso/internal/collective"
	"compso/internal/des"
	"compso/internal/fault"
	"compso/internal/obs"
)

// goldenProgram is a representative COMPSO-shaped comm trace: three
// training steps of compute, a compressed-gradient all-gather with
// non-uniform per-rank blob sizes, K-FAC covariance all-reduces, a
// reduce-scatter with a non-divisible element count (remainder shard),
// an inverse-factor broadcast, and a barrier. Sizes are deliberately
// awkward (odd, non-power-of-two) to exercise schedule edge cases.
func goldenProgram(p int) des.Program {
	var prog des.Program
	perRank := make([]float64, p)
	for r := range perRank {
		perRank[r] = 0.0015 + 0.0001*float64(r%5)
	}
	for step := 0; step < 3; step++ {
		sizes := make([]int, p)
		for r := range sizes {
			sizes[r] = 900 + 137*((r+step)%7)
		}
		prog = append(prog,
			des.Op{Kind: des.KindSetStep, Step: step},
			des.Op{Kind: des.KindCompute, Seconds: 0.004, Category: "fwd-bwd"},
			des.Op{Kind: des.KindAllGather, Sizes: sizes, Category: "grad-gather"},
			des.Op{Kind: des.KindAllReduce, Elems: 1531, Category: "kfac-cov"},
			des.Op{Kind: des.KindComputeEach, PerRank: perRank, Category: "kfac-inv"},
			des.Op{Kind: des.KindReduceScatter, Elems: 2003, Category: "grad-rs"},
			des.Op{Kind: des.KindBroadcast, Bytes: 4096 + 321*step, Root: step % p, Category: "factor-bcast"},
			des.Op{Kind: des.KindBarrier},
		)
	}
	return prog
}

// goldenFaultPlans returns the fault scenarios of the golden matrix.
// Plans are rebuilt per invocation so each engine gets its own injector.
func goldenFaultPlans(p int) map[string]*fault.Plan {
	return map[string]*fault.Plan{
		"none": nil,
		"straggler": {
			Seed: 7,
			Stragglers: []fault.Straggler{
				{Rank: p - 1, Factor: 1.8, FromStep: 1, ToStep: 3},
				{Rank: 0, Factor: 1.2, FromStep: 0},
			},
		},
		"linkfault": {
			Seed: 11,
			Links: []fault.LinkFault{
				{SrcNode: -1, DstNode: -1, Link: "inter", AlphaFactor: 1.5, BetaFactor: 2.0, Jitter: 0.2},
				{SrcNode: 0, DstNode: 0, Link: "intra", BetaFactor: 1.3, Jitter: 0.1},
			},
		},
	}
}

func injectorFor(t *testing.T, plan *fault.Plan) *fault.Injector {
	t.Helper()
	if plan == nil {
		return nil
	}
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	return inj
}

// TestGoldenBitIdentity is the golden contract of the discrete-event
// engine: for every world size (including non-power-of-two), collective
// policy, and fault plan in the matrix, a World must reproduce the
// goroutine engine's results bit-for-bit — per-rank simulated times,
// per-category stats, per-algorithm attribution, event traces, schedule
// seconds, and wire bytes.
func TestGoldenBitIdentity(t *testing.T) {
	worlds := []int{2, 3, 5, 8, 16}
	policies := []string{"auto", collective.AlgRing, collective.AlgRecursiveDoubling,
		collective.AlgBinomial, collective.AlgHierarchical}
	for _, p := range worlds {
		for _, policy := range policies {
			for planName, plan := range goldenFaultPlans(p) {
				t.Run(fmt.Sprintf("p=%d/%s/%s", p, policy, planName), func(t *testing.T) {
					t.Parallel()
					cfg := cluster.Platform1()
					cfg.Collective = policy
					prog := goldenProgram(p)

					// Goroutine reference engine, with a recorder so the
					// canonical wire-byte counter is comparable.
					c := cluster.New(cfg, p)
					c.InjectFaults(injectorFor(t, plan))
					rec := obs.NewRecorder()
					c.Observe(rec)
					workers := des.RunOnCluster(c, prog)

					// Discrete-event engine.
					w := des.NewWorld(cfg, p)
					defer w.Release()
					w.SetTracing(true)
					w.InjectFaults(injectorFor(t, plan))
					des.RunOnWorld(w, prog)

					for r := 0; r < p; r++ {
						ref := workers[r]
						if got, want := w.TimeOf(r), ref.Time(); got != want {
							t.Errorf("rank %d: Time = %v, goroutine engine %v", r, got, want)
						}
						compareMaps(t, fmt.Sprintf("rank %d stats", r), w.StatsOf(r), ref.Stats())
						compareMaps(t, fmt.Sprintf("rank %d algseconds", r), w.AlgSecondsOf(r), ref.AlgSeconds())
						if got, want := w.TotalEventsOf(r), ref.TotalEvents(); got != want {
							t.Errorf("rank %d: TotalEvents = %d, goroutine engine %d", r, got, want)
						}
						compareEvents(t, r, w.EventsOf(r), ref.Events())
					}
					meas, pred := w.ScheduleSeconds()
					refMeas, refPred := workers[0].ScheduleSeconds()
					if meas != refMeas || pred != refPred {
						t.Errorf("ScheduleSeconds = (%v, %v), goroutine engine (%v, %v)",
							meas, pred, refMeas, refPred)
					}
					if got, want := float64(w.WireBytes()), rec.Counter("wire/total/bytes").Value(); got != want {
						t.Errorf("WireBytes = %v, goroutine engine counter %v", got, want)
					}
				})
			}
		}
	}
}

func compareMaps(t *testing.T, what string, got, want map[string]float64) {
	t.Helper()
	for k, v := range want {
		if g, ok := got[k]; !ok || g != v {
			t.Errorf("%s[%q] = %v, goroutine engine %v", what, k, got[k], v)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s has extra key %q = %v", what, k, got[k])
		}
	}
}

func compareEvents(t *testing.T, rank int, got, want []collective.Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("rank %d: %d trace events, goroutine engine %d", rank, len(got), len(want))
		return
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("rank %d event %d: %+v, goroutine engine %+v", rank, i, got[i], want[i])
			return
		}
	}
}

// TestGoldenPlatform2 repeats a slice of the matrix on the second
// platform model so both fabric parameterizations are covered.
func TestGoldenPlatform2(t *testing.T) {
	for _, p := range []int{3, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			cfg := cluster.Platform2()
			prog := goldenProgram(p)
			c := cluster.New(cfg, p)
			workers := des.RunOnCluster(c, prog)
			w := des.NewWorld(cfg, p)
			defer w.Release()
			des.RunOnWorld(w, prog)
			for r := 0; r < p; r++ {
				if got, want := w.TimeOf(r), workers[r].Time(); got != want {
					t.Errorf("rank %d: Time = %v, goroutine engine %v", r, got, want)
				}
			}
		})
	}
}
