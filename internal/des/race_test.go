//go:build race

package des_test

// raceEnabled reports that this test binary runs under the race detector;
// the mega-scale acceptance test skips there (its single-threaded event
// loop has no races to find, and instrumentation makes the 8192-rank
// schedule walk an order of magnitude slower).
const raceEnabled = true
