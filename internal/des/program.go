package des

import (
	"fmt"

	"compso/internal/cluster"
)

// OpKind enumerates the simulated operations a Program can express.
type OpKind uint8

const (
	// KindCompute charges Seconds of compute to every rank.
	KindCompute OpKind = iota
	// KindComputeEach charges PerRank[r] seconds of compute to rank r.
	KindComputeEach
	// KindAllGather runs an all-gather; Sizes holds per-rank contribution
	// bytes (length 1 means every rank contributes Sizes[0]).
	KindAllGather
	// KindAllReduce runs an all-reduce of Elems float64s.
	KindAllReduce
	// KindReduceScatter runs a reduce-scatter of Elems float64s.
	KindReduceScatter
	// KindBroadcast sends Bytes from Root to every rank.
	KindBroadcast
	// KindBarrier synchronizes all clocks to the maximum.
	KindBarrier
	// KindSetStep marks the start of training iteration Step.
	KindSetStep
)

// Op is one operation of a communication program.
type Op struct {
	Kind     OpKind
	Category string
	// Seconds is the compute charge (KindCompute).
	Seconds float64
	// PerRank holds per-rank compute charges (KindComputeEach); its length
	// must equal the world size.
	PerRank []float64
	// Sizes holds per-rank all-gather contribution bytes (KindAllGather);
	// length 1 replicates Sizes[0] to every rank.
	Sizes []int
	// Elems is the reduction length in float64 elements (KindAllReduce,
	// KindReduceScatter).
	Elems int
	// Bytes is the broadcast payload size (KindBroadcast).
	Bytes int
	// Root is the broadcast root rank (KindBroadcast).
	Root int
	// Step is the iteration number (KindSetStep).
	Step int
}

// Program is a rank-agnostic SPMD communication trace: the same op list
// every rank executes in lockstep. It is the common language of the two
// execution engines — RunOnWorld replays it on the discrete-event engine,
// RunOnCluster on the goroutine engine — which is how the golden
// bit-identity tests compare them on identical workloads.
type Program []Op

// gatherSizes expands an all-gather size spec for world size p.
func gatherSizes(op Op, p int) []int {
	if len(op.Sizes) == 1 {
		sizes := make([]int, p)
		for i := range sizes {
			sizes[i] = op.Sizes[0]
		}
		return sizes
	}
	if len(op.Sizes) != p {
		panic(fmt.Sprintf("des: allgather op with %d sizes, world %d", len(op.Sizes), p))
	}
	return op.Sizes
}

// RunOnWorld replays the program on a discrete-event world.
func RunOnWorld(w *World, prog Program) {
	for _, op := range prog {
		switch op.Kind {
		case KindCompute:
			w.Compute(op.Seconds, op.Category)
		case KindComputeEach:
			if len(op.PerRank) != w.Size() {
				panic(fmt.Sprintf("des: computeeach op with %d charges, world %d", len(op.PerRank), w.Size()))
			}
			w.ComputeEach(func(r int) float64 { return op.PerRank[r] }, op.Category)
		case KindAllGather:
			w.AllGather(gatherSizes(op, w.Size()), op.Category)
		case KindAllReduce:
			w.AllReduce(op.Elems, op.Category)
		case KindReduceScatter:
			w.ReduceScatter(op.Elems, op.Category)
		case KindBroadcast:
			w.Broadcast(op.Bytes, op.Root, op.Category)
		case KindBarrier:
			w.Barrier()
		case KindSetStep:
			w.SetStep(op.Step)
		default:
			panic(fmt.Sprintf("des: unknown op kind %d", op.Kind))
		}
	}
}

// RunOnCluster replays the program on a live goroutine cluster: every
// worker executes the op list in SPMD lockstep, moving real (zero-filled)
// payloads through the rendezvous. Returns the workers in rank order.
func RunOnCluster(c *cluster.Cluster, prog Program) []*cluster.Worker {
	return c.Run(func(w *cluster.Worker) {
		p := c.Size()
		for _, op := range prog {
			switch op.Kind {
			case KindCompute:
				w.Compute(op.Seconds, op.Category)
			case KindComputeEach:
				if len(op.PerRank) != p {
					panic(fmt.Sprintf("des: computeeach op with %d charges, world %d", len(op.PerRank), p))
				}
				w.Compute(op.PerRank[w.Rank()], op.Category)
			case KindAllGather:
				w.AllGather(make([]byte, gatherSizes(op, p)[w.Rank()]), op.Category)
			case KindAllReduce:
				w.AllReduce(make([]float64, op.Elems), op.Category)
			case KindReduceScatter:
				w.ReduceScatter(make([]float64, op.Elems), op.Category)
			case KindBroadcast:
				var payload []byte
				if w.Rank() == op.Root {
					payload = make([]byte, op.Bytes)
				}
				w.Broadcast(payload, op.Root, op.Category)
			case KindBarrier:
				w.Barrier()
			case KindSetStep:
				w.SetStep(op.Step)
			default:
				panic(fmt.Sprintf("des: unknown op kind %d", op.Kind))
			}
		}
	})
}
