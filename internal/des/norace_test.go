//go:build !race

package des_test

// raceEnabled reports that this test binary runs under the race detector.
const raceEnabled = false
