// Package des is the discrete-event (SimOnly) execution engine for
// mega-scale cluster simulation.
//
// The goroutine engine in internal/cluster runs P live workers that
// rendezvous through a barrier per collective: P stacks, P× worker state,
// and O(P) scheduler wakeups per collective. That is the right substrate
// when the workload moves real payload bytes (convergence experiments
// need every rank's actual gradients), but it tops out around paper scale
// (64 GPUs). For the questions that only appear at fleet scale —
// autotuner behaviour across hundreds of nodes, straggler and link-fault
// dynamics, hierarchical-schedule wins at thousands of ranks — no payload
// math is needed per rank: the bytes every rank would contribute can be
// computed once on a model rank, and only the *timing* of the exchange
// differs per rank.
//
// A World is that timing substrate: a single-threaded event loop that
// advances P virtual clocks through the same step-level collective
// schedules (internal/collective) the goroutine engine uses. Each
// collective executes as timestamped link-occupancy events via
// Engine.Exec with the per-rank clock vector as the arrival times, so a
// World run is bit-identical to the goroutine engine's simulated times,
// per-algorithm attribution and event traces at every world size — the
// golden contract enforced by the des test suite at P ≤ 16. One World
// holds O(P) floats per stat category (pooled through internal/pool) and
// no goroutines, so an 8192-worker hierarchical sweep fits in a few
// hundred MB and runs in seconds.
package des

import (
	"fmt"
	"unsafe"

	"compso/internal/cluster"
	"compso/internal/collective"
	"compso/internal/fault"
	"compso/internal/pool"
)

// traceCap bounds each rank's retained event trace, mirroring the
// goroutine engine's ring so traces compare bit-identically.
const traceCap = 4096

// eventBytes sizes one trace event for Footprint accounting.
var eventBytes = int(unsafe.Sizeof(collective.Event{}))

// World simulates P SPMD workers without running them: per-rank virtual
// clocks advance through compute charges and engine-scheduled
// collectives, driven sequentially from a single goroutine. Methods must
// not be called concurrently.
type World struct {
	cfg    cluster.Config
	p      int
	engine *collective.Engine
	faults *fault.Injector

	// clocks is each rank's simulated time (pooled).
	clocks []float64
	// stats and algStats map a category (or "op/algorithm") to a pooled
	// per-rank seconds vector — the columnar layout of the goroutine
	// engine's per-worker maps. A handful of shared keys instead of P
	// maps is what keeps 8k-rank worlds small.
	stats    map[string][]float64
	algStats map[string][]float64

	step  int
	colls int64
	wire  int64
	// measSchedule/predSchedule mirror Worker.ScheduleSeconds: identical
	// for every rank, so one scalar pair serves all P.
	measSchedule, predSchedule float64

	// tracing retains per-rank event rings (off by default: a mega-scale
	// ring all-gather schedules millions of transfers per collective).
	tracing    bool
	traces     [][]collective.Event
	traceHeads []int
	evTotals   []int64

	released bool
}

// NewWorld builds a discrete-event world of p workers on the platform.
// Event retention starts disabled (see SetTracing). It panics on an
// invalid configuration, matching cluster.New.
func NewWorld(cfg cluster.Config, p int) *World {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if p <= 0 {
		panic(fmt.Sprintf("des: %d workers", p))
	}
	clocks := pool.F64(p)
	clear(clocks)
	w := &World{
		cfg: cfg, p: p,
		engine:   cluster.EngineFor(cfg, p),
		clocks:   clocks,
		stats:    make(map[string][]float64),
		algStats: make(map[string][]float64),
	}
	w.engine.SetEventRetention(false)
	return w
}

// Size returns the world size.
func (w *World) Size() int { return w.p }

// Config returns the platform configuration.
func (w *World) Config() cluster.Config { return w.cfg }

// Engine returns the collective engine dispatching this world's
// collectives (for prediction queries and tuner inspection).
func (w *World) Engine() *collective.Engine { return w.engine }

// SetTracing enables per-rank event-trace retention (ring of the most
// recent traceCap events per rank, like the goroutine engine). Off by
// default: at mega scale the trace dominates memory. Call before
// executing collectives.
func (w *World) SetTracing(on bool) {
	w.tracing = on
	w.engine.SetEventRetention(on)
	if on && w.traces == nil {
		w.traces = make([][]collective.Event, w.p)
		w.traceHeads = make([]int, w.p)
		w.evTotals = make([]int64, w.p)
	}
}

// InjectFaults installs a fault injector: straggler compute multipliers
// apply to Compute charges and degraded-link perturbations apply to every
// scheduled collective, exactly as on the goroutine engine. Payload
// corruption has no effect (a World moves no bytes). A nil injector (the
// default) keeps the fault-free fast path.
func (w *World) InjectFaults(inj *fault.Injector) {
	w.faults = inj
	if inj != nil {
		w.engine.SetPerturber(inj)
	} else {
		w.engine.SetPerturber(nil)
	}
}

// SetStep tells the world which training iteration it is simulating, so
// transient faults (straggler windows) can key on it.
func (w *World) SetStep(it int) { w.step = it }

// Step returns the last step set by SetStep.
func (w *World) Step() int { return w.step }

// statVec returns the pooled per-rank vector for a category, allocating
// (zeroed) on first use.
func statVec(m map[string][]float64, key string, p int) []float64 {
	v, ok := m[key]
	if !ok {
		v = pool.F64(p)
		clear(v)
		m[key] = v
	}
	return v
}

// Compute advances every rank's clock by seconds under the category
// label, scaled per rank by the installed fault injector's straggler
// factor (1 when unafflicted) — the vectorized Worker.Compute.
func (w *World) Compute(seconds float64, category string) {
	if seconds < 0 {
		panic(fmt.Sprintf("des: negative compute time %g", seconds))
	}
	cat := statVec(w.stats, category, w.p)
	if w.faults == nil {
		for r := range w.clocks {
			w.clocks[r] += seconds
			cat[r] += seconds
		}
		return
	}
	for r := range w.clocks {
		s := seconds * w.faults.ComputeFactor(r, w.step)
		w.clocks[r] += s
		cat[r] += s
	}
}

// ComputeEach advances each rank's clock by its own charge (before the
// straggler factor), for heterogeneous per-rank work.
func (w *World) ComputeEach(secondsOf func(rank int) float64, category string) {
	cat := statVec(w.stats, category, w.p)
	for r := range w.clocks {
		s := secondsOf(r)
		if s < 0 {
			panic(fmt.Sprintf("des: negative compute time %g for rank %d", s, r))
		}
		if w.faults != nil {
			s *= w.faults.ComputeFactor(r, w.step)
		}
		w.clocks[r] += s
		cat[r] += s
	}
}

// exec schedules one collective at the current clocks and charges every
// rank's blocked interval, mirroring Worker.note + Worker.account.
func (w *World) exec(op string, sizes []int, root int, category string) *collective.Outcome {
	if w.released {
		panic("des: world used after Release")
	}
	out := w.engine.Exec(op, sizes, root, w.clocks)
	w.colls++
	w.wire += int64(out.Bytes)
	w.measSchedule += out.MaxEnd() - out.Start
	w.predSchedule += out.Predicted
	alg := statVec(w.algStats, out.Op+"/"+out.Algorithm, w.p)
	cat := statVec(w.stats, category, w.p)
	for r := 0; r < w.p; r++ {
		if end := out.Ends[r]; end > w.clocks[r] {
			d := end - w.clocks[r]
			alg[r] += d
			cat[r] += d
			w.clocks[r] = end
		}
	}
	if w.tracing {
		for r := 0; r < w.p; r++ {
			for _, ev := range out.EventsFor(r) {
				w.addEvent(r, ev)
			}
		}
	}
	return out
}

func (w *World) addEvent(rank int, ev collective.Event) {
	w.evTotals[rank]++
	ring := w.traces[rank]
	if len(ring) < traceCap {
		if ring == nil {
			ring = make([]collective.Event, 0, traceCap)
		}
		w.traces[rank] = append(ring, ev)
		return
	}
	ring[w.traceHeads[rank]] = ev
	w.traceHeads[rank] = (w.traceHeads[rank] + 1) % traceCap
}

// AllGather simulates an all-gather with per-rank contribution sizes
// (bytes; len must equal the world size).
func (w *World) AllGather(sizes []int, category string) {
	w.exec(collective.OpAllGather, sizes, 0, category)
}

// AllGatherUniform simulates an all-gather where every rank contributes
// bytes — the model-rank replication path: the payload is computed once
// and its size stands in for every rank's contribution.
func (w *World) AllGatherUniform(bytes int, category string) {
	sizes := pool.Ints(w.p)
	for i := range sizes {
		sizes[i] = bytes
	}
	w.exec(collective.OpAllGather, sizes, 0, category)
	pool.PutInts(sizes)
}

// AllReduce simulates an element-wise sum of nElems float64s across all
// ranks, charged at the goroutine engine's FP32 wire convention
// (4·nElems bytes).
func (w *World) AllReduce(nElems int, category string) {
	w.exec(collective.OpAllReduce, []int{4 * nElems}, 0, category)
}

// ReduceScatter simulates a reduce-scatter of nElems float64s, with the
// same shard split as the goroutine engine (rank r gets elements
// [r·n/P, (r+1)·n/P), the last rank absorbing the remainder).
func (w *World) ReduceScatter(nElems int, category string) {
	shard := nElems / w.p
	sizes := pool.Ints(w.p)
	for r := 0; r < w.p; r++ {
		lo, hi := r*shard, (r+1)*shard
		if r == w.p-1 {
			hi = nElems
		}
		sizes[r] = 4 * (hi - lo)
	}
	w.exec(collective.OpReduceScatter, sizes, 0, category)
	pool.PutInts(sizes)
}

// Broadcast simulates root sending bytes to every rank.
func (w *World) Broadcast(bytes, root int, category string) {
	w.exec(collective.OpBroadcast, []int{bytes}, root, category)
}

// Barrier synchronizes all clocks to the maximum, charging the waiting
// time to the "barrier" category (free of launch cost, like the
// goroutine engine's Barrier).
func (w *World) Barrier() {
	m := w.clocks[0]
	for _, t := range w.clocks[1:] {
		if t > m {
			m = t
		}
	}
	cat := statVec(w.stats, "barrier", w.p)
	for r := range w.clocks {
		if m > w.clocks[r] {
			cat[r] += m - w.clocks[r]
			w.clocks[r] = m
		}
	}
}

// TimeOf returns rank's simulated clock in seconds.
func (w *World) TimeOf(rank int) float64 { return w.clocks[rank] }

// MaxTime returns the latest rank clock — the run's simulated makespan.
func (w *World) MaxTime() float64 {
	m := w.clocks[0]
	for _, t := range w.clocks[1:] {
		if t > m {
			m = t
		}
	}
	return m
}

// StatsOf returns rank's accumulated per-category simulated seconds (a
// fresh map, matching Worker.Stats key-for-key and bit-for-bit).
func (w *World) StatsOf(rank int) map[string]float64 {
	out := make(map[string]float64, len(w.stats))
	for k, v := range w.stats {
		if v[rank] != 0 {
			out[k] = v[rank]
		}
	}
	return out
}

// AlgSecondsOf returns rank's per-"op/algorithm" simulated seconds
// (matching Worker.AlgSeconds).
func (w *World) AlgSecondsOf(rank int) map[string]float64 {
	out := make(map[string]float64, len(w.algStats))
	for k, v := range w.algStats {
		if v[rank] != 0 {
			out[k] = v[rank]
		}
	}
	return out
}

// MergedStats sums each category across ranks — the MergeStats view.
func (w *World) MergedStats() map[string]float64 {
	out := make(map[string]float64, len(w.stats))
	for k, v := range w.stats {
		s := 0.0
		for _, x := range v {
			s += x
		}
		out[k] = s
	}
	return out
}

// MergedAlgSeconds sums each "op/algorithm" across ranks — the
// MergeAlgStats view.
func (w *World) MergedAlgSeconds() map[string]float64 {
	out := make(map[string]float64, len(w.algStats))
	for k, v := range w.algStats {
		s := 0.0
		for _, x := range v {
			s += x
		}
		out[k] = s
	}
	return out
}

// EventsOf returns a copy of rank's retained event trace in arrival
// order (empty unless SetTracing was enabled).
func (w *World) EventsOf(rank int) []collective.Event {
	if w.traces == nil {
		return nil
	}
	ring, head := w.traces[rank], w.traceHeads[rank]
	out := make([]collective.Event, 0, len(ring))
	out = append(out, ring[head:]...)
	out = append(out, ring[:head]...)
	return out
}

// TotalEventsOf returns how many trace events rank has seen, including
// ones evicted from the ring.
func (w *World) TotalEventsOf(rank int) int64 {
	if w.evTotals == nil {
		return 0
	}
	return w.evTotals[rank]
}

// ScheduleSeconds returns the accumulated executed-collective makespan
// seconds alongside the fault-free cost-model prediction — identical for
// every rank, mirroring Worker.ScheduleSeconds.
func (w *World) ScheduleSeconds() (measured, predicted float64) {
	return w.measSchedule, w.predSchedule
}

// WireBytes returns the total bytes all executed collectives put on the
// wire (counted once per collective, the wire/total/bytes convention).
func (w *World) WireBytes() int64 { return w.wire }

// Collectives returns how many collectives have executed.
func (w *World) Collectives() int64 { return w.colls }

// Footprint returns the bytes of per-rank simulator state the world
// currently holds (clocks, stat vectors, trace rings) — the memory that
// scales with world size.
func (w *World) Footprint() int64 {
	n := int64(cap(w.clocks)) * 8
	for _, v := range w.stats {
		n += int64(cap(v)) * 8
	}
	for _, v := range w.algStats {
		n += int64(cap(v)) * 8
	}
	for _, ring := range w.traces {
		n += int64(cap(ring)) * int64(eventBytes)
	}
	if w.traceHeads != nil {
		n += int64(len(w.traceHeads)) * 8
	}
	if w.evTotals != nil {
		n += int64(len(w.evTotals)) * 8
	}
	return n
}

// Release returns the world's pooled per-rank state to the buffer pool.
// The world must not be used afterwards.
func (w *World) Release() {
	if w.released {
		return
	}
	w.released = true
	pool.PutF64(w.clocks)
	w.clocks = nil
	for k, v := range w.stats {
		pool.PutF64(v)
		delete(w.stats, k)
	}
	for k, v := range w.algStats {
		pool.PutF64(v)
		delete(w.algStats, k)
	}
	w.traces, w.traceHeads, w.evTotals = nil, nil, nil
}
