package des_test

import (
	"runtime"
	"testing"
	"time"

	"compso/internal/cluster"
	"compso/internal/des"
	"compso/internal/fault"
)

// TestMegaScaleAcceptance is the PR's headline acceptance criterion: an
// 8192-worker (2048-node) hierarchical COMPSO comm sweep — compressed
// gradient all-gathers, K-FAC covariance all-reduces, factor broadcasts,
// with straggler and link faults injected — must complete in well under
// 60 seconds and well under 4 GB, on the discrete-event engine whose
// small-world results the golden tests prove bit-identical to the
// goroutine engine.
func TestMegaScaleAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("mega-scale sweep skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("mega-scale sweep skipped under the race detector (single-threaded loop, 10× instrumentation cost)")
	}
	const p = 8192
	cfg := cluster.Platform1() // GPUsPerNode = 4 → 2048 nodes
	cfg.Collective = "hierarchical"

	inj, err := fault.NewInjector(&fault.Plan{
		Seed:       23,
		Stragglers: []fault.Straggler{{Rank: 4097, Factor: 1.6, FromStep: 2}},
		Links: []fault.LinkFault{
			{SrcNode: -1, DstNode: -1, Link: "inter", BetaFactor: 1.2, Jitter: 0.05},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	start := time.Now()
	w := des.NewWorld(cfg, p)
	defer w.Release()
	w.InjectFaults(inj)
	const blob = 4 << 20 / 8 // ~0.5 MB compressed gradient per rank
	for step := 0; step < 10; step++ {
		w.SetStep(step)
		w.Compute(0.04, "fwd-bwd")
		w.AllGatherUniform(blob, "grad-allgather")
		if step%5 == 0 {
			w.AllReduce(1<<22, "kfac-allreduce")
			w.Broadcast(1<<20, 0, "factor-bcast")
		}
		w.Barrier()
	}
	elapsed := time.Since(start)

	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if elapsed > 60*time.Second {
		t.Fatalf("8192-rank sweep took %v, acceptance bound is 60s", elapsed)
	}
	const memBound = 4 << 30
	if grew := after.Sys - before.Sys; grew > memBound {
		t.Fatalf("8192-rank sweep grew runtime memory by %d MB, acceptance bound is 4096 MB", grew>>20)
	}
	if w.MaxTime() <= 0 || w.Collectives() == 0 || w.WireBytes() == 0 {
		t.Fatalf("sweep produced no results: time %v, %d collectives, %d wire bytes",
			w.MaxTime(), w.Collectives(), w.WireBytes())
	}
	foot := w.Footprint()
	if perWorker := float64(foot) / p; perWorker > 4096 {
		t.Fatalf("per-worker simulator state %d bytes, want well under 4 KB", int(perWorker))
	}
	t.Logf("8192 ranks, %d collectives, sim %.2fs, wall %v, %d B/worker",
		w.Collectives(), w.MaxTime(), elapsed.Round(time.Millisecond), foot/p)
}
