package tensor

import (
	"fmt"
	"math"
)

// Eigen holds the eigendecomposition of a real symmetric matrix:
// A = Q · diag(Values) · Qᵀ with orthonormal columns in Q.
type Eigen struct {
	// Values are the eigenvalues in ascending order.
	Values []float64
	// Q holds the corresponding eigenvectors as columns.
	Q *Matrix
}

// maxJacobiSweeps bounds the cyclic Jacobi iteration; convergence is
// quadratic so well-conditioned K-FAC factors finish in well under ten
// sweeps.
const maxJacobiSweeps = 64

// EigenSym computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi rotation method. The input is not modified. It returns
// an error if a is not square or the iteration fails to converge (which in
// practice indicates NaN/Inf input).
func EigenSym(a *Matrix) (*Eigen, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("tensor: EigenSym on %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	w := a.Clone()
	q := Identity(n)
	if n <= 1 {
		vals := make([]float64, n)
		if n == 1 {
			vals[0] = w.Data[0]
		}
		return &Eigen{Values: vals, Q: q}, nil
	}

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*(1+w.FrobeniusNorm()) {
			return finishEigen(w, q), nil
		}
		for p := 0; p < n-1; p++ {
			for qi := p + 1; qi < n; qi++ {
				apq := w.Data[p*n+qi]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.Data[p*n+p]
				aqq := w.Data[qi*n+qi]
				// Stable computation of the rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(w, q, p, qi, c, s)
			}
		}
	}
	if off := offDiagNorm(w); off <= 1e-8*(1+w.FrobeniusNorm()) {
		// Good enough for preconditioning even if the strict tolerance
		// was missed (ill-scaled factors).
		return finishEigen(w, q), nil
	}
	return nil, fmt.Errorf("tensor: EigenSym failed to converge for %dx%d matrix", n, n)
}

// applyJacobiRotation applies the Givens rotation G(p,q,θ) on both sides of
// the working matrix w and accumulates it into the eigenvector matrix q.
func applyJacobiRotation(w, q *Matrix, p, r int, c, s float64) {
	n := w.Rows
	for k := 0; k < n; k++ {
		wkp := w.Data[k*n+p]
		wkr := w.Data[k*n+r]
		w.Data[k*n+p] = c*wkp - s*wkr
		w.Data[k*n+r] = s*wkp + c*wkr
	}
	for k := 0; k < n; k++ {
		wpk := w.Data[p*n+k]
		wrk := w.Data[r*n+k]
		w.Data[p*n+k] = c*wpk - s*wrk
		w.Data[r*n+k] = s*wpk + c*wrk
	}
	for k := 0; k < n; k++ {
		qkp := q.Data[k*n+p]
		qkr := q.Data[k*n+r]
		q.Data[k*n+p] = c*qkp - s*qkr
		q.Data[k*n+r] = s*qkp + c*qkr
	}
}

func offDiagNorm(w *Matrix) float64 {
	n := w.Rows
	var s float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := w.Data[i*n+j]
			s += 2 * v * v
		}
	}
	return math.Sqrt(s)
}

// finishEigen extracts the diagonal, sorts eigenpairs ascending, and
// packages the result.
func finishEigen(w, q *Matrix) *Eigen {
	n := w.Rows
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.Data[i*n+i]
	}
	// Selection sort of eigenpairs (n is small); swapping columns of q.
	for i := 0; i < n-1; i++ {
		minIdx := i
		for j := i + 1; j < n; j++ {
			if vals[j] < vals[minIdx] {
				minIdx = j
			}
		}
		if minIdx != i {
			vals[i], vals[minIdx] = vals[minIdx], vals[i]
			for k := 0; k < n; k++ {
				q.Data[k*n+i], q.Data[k*n+minIdx] = q.Data[k*n+minIdx], q.Data[k*n+i]
			}
		}
	}
	return &Eigen{Values: vals, Q: q}
}

// Reconstruct rebuilds Q · diag(Values) · Qᵀ, mainly for testing.
func (e *Eigen) Reconstruct() *Matrix {
	n := len(e.Values)
	qd := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			qd.Data[i*n+j] = e.Q.Data[i*n+j] * e.Values[j]
		}
	}
	return New(n, n).MatMulT(qd, e.Q)
}
