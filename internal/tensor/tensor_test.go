package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewZeroFilled(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with short slice did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestAtSet(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %g, want 7.5", got)
	}
	if got := m.Data[1*3+2]; got != 7.5 {
		t.Fatalf("backing slice = %g, want 7.5", got)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(4)[%d,%d] = %g", i, j, id.At(i, j))
			}
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	sum := New(0, 0).Add(a, b)
	for i, want := range []float64{6, 8, 10, 12} {
		if sum.Data[i] != want {
			t.Fatalf("Add[%d] = %g, want %g", i, sum.Data[i], want)
		}
	}
	diff := New(0, 0).Sub(b, a)
	for i := range diff.Data {
		if diff.Data[i] != 4 {
			t.Fatalf("Sub[%d] = %g, want 4", i, diff.Data[i])
		}
	}
	sc := New(0, 0).Scale(2, a)
	for i, want := range []float64{2, 4, 6, 8} {
		if sc.Data[i] != want {
			t.Fatalf("Scale[%d] = %g, want %g", i, sc.Data[i], want)
		}
	}
}

func TestAddAliasing(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	a.Add(a, a)
	for i, want := range []float64{2, 4, 6, 8} {
		if a.Data[i] != want {
			t.Fatalf("in-place Add[%d] = %g, want %g", i, a.Data[i], want)
		}
	}
}

func TestAXPY(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	m := FromSlice(1, 3, []float64{10, 10, 10})
	m.AXPY(2, a)
	for i, want := range []float64{12, 14, 16} {
		if m.Data[i] != want {
			t.Fatalf("AXPY[%d] = %g, want %g", i, m.Data[i], want)
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := New(0, 0).MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data[i], want[i])
		}
	}
}

func TestMatMulDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad inner dims did not panic")
		}
	}()
	New(0, 0).MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := randomMatrix(rng, 4, 6)
	b := randomMatrix(rng, 5, 6)
	got := New(0, 0).MatMulT(a, b)
	want := New(0, 0).MatMul(a, b.Transpose())
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("MatMulT[%d] = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTMatMulMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := randomMatrix(rng, 6, 4)
	b := randomMatrix(rng, 6, 5)
	got := New(0, 0).TMatMul(a, b)
	want := New(0, 0).MatMul(a.Transpose(), b)
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("TMatMul[%d] = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	a := randomMatrix(rng, 3, 7)
	tt := a.Transpose().Transpose()
	for i := range a.Data {
		if a.Data[i] != tt.Data[i] {
			t.Fatalf("transpose twice changed element %d", i)
		}
	}
}

func TestKronDims(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{0, 1, 1, 0})
	k := Kron(a, b)
	if k.Rows != 4 || k.Cols != 4 {
		t.Fatalf("Kron dims = %dx%d, want 4x4", k.Rows, k.Cols)
	}
	// Spot-check block (0,1): a[0,1]*b = 2*b.
	if k.At(0, 3) != 2 || k.At(1, 2) != 2 || k.At(0, 2) != 0 {
		t.Fatalf("Kron block wrong: %v", k)
	}
}

func TestKronMixedProductProperty(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD) — the identity K-FAC's factorization relies on.
	rng := rand.New(rand.NewPCG(7, 8))
	a := randomMatrix(rng, 2, 3)
	c := randomMatrix(rng, 3, 2)
	b := randomMatrix(rng, 2, 2)
	d := randomMatrix(rng, 2, 2)
	lhs := New(0, 0).MatMul(Kron(a, b), Kron(c, d))
	rhs := Kron(New(0, 0).MatMul(a, c), New(0, 0).MatMul(b, d))
	for i := range lhs.Data {
		if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-10) {
			t.Fatalf("mixed-product property violated at %d: %g vs %g", i, lhs.Data[i], rhs.Data[i])
		}
	}
}

func TestAddDiagTrace(t *testing.T) {
	m := Identity(3)
	m.AddDiag(2)
	if got := m.Trace(); got != 9 {
		t.Fatalf("Trace = %g, want 9", got)
	}
}

func TestSymmetrize(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 4, 3})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize = %v", m)
	}
}

func TestMulVec(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 0, 2, 0, 1, 3})
	got := a.MulVec(nil, []float64{1, 2, 3})
	if got[0] != 7 || got[1] != 11 {
		t.Fatalf("MulVec = %v, want [7 11]", got)
	}
}

func TestFrobeniusNormAndMaxAbs(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, -4})
	if got := m.FrobeniusNorm(); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("FrobeniusNorm = %g, want 5", got)
	}
	if got := m.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %g, want 4", got)
	}
}

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	m := FromSlice(2, 2, []float64{2, 1, 1, 2})
	e, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 1, 1e-10) || !almostEqual(e.Values[1], 3, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [1 3]", e.Values)
	}
}

func TestEigenSymReconstruct(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for _, n := range []int{1, 2, 5, 16, 40} {
		b := randomMatrix(rng, n, n)
		a := New(0, 0).TMatMul(b, b) // symmetric PSD
		e, err := EigenSym(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		r := e.Reconstruct()
		scale := 1 + a.MaxAbs()
		for i := range a.Data {
			if !almostEqual(a.Data[i], r.Data[i], 1e-8*scale) {
				t.Fatalf("n=%d: reconstruction off at %d: %g vs %g", n, i, a.Data[i], r.Data[i])
			}
		}
	}
}

func TestEigenSymOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	b := randomMatrix(rng, 12, 12)
	a := New(0, 0).TMatMul(b, b)
	e, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	qtq := New(0, 0).TMatMul(e.Q, e.Q)
	id := Identity(12)
	for i := range id.Data {
		if !almostEqual(qtq.Data[i], id.Data[i], 1e-9) {
			t.Fatalf("QᵀQ not identity at %d: %g", i, qtq.Data[i])
		}
	}
}

func TestEigenSymNonSquare(t *testing.T) {
	if _, err := EigenSym(New(2, 3)); err == nil {
		t.Fatal("EigenSym on non-square matrix succeeded")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	b := randomMatrix(rng, 8, 8)
	a := New(0, 0).TMatMul(b, b)
	a.AddDiag(1) // ensure positive definiteness
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	llt := New(0, 0).MatMulT(l, l)
	for i := range a.Data {
		if !almostEqual(a.Data[i], llt.Data[i], 1e-9*(1+a.MaxAbs())) {
			t.Fatalf("LLᵀ mismatch at %d: %g vs %g", i, a.Data[i], llt.Data[i])
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky of indefinite matrix succeeded")
	}
}

func TestSolveCholesky(t *testing.T) {
	a := FromSlice(2, 2, []float64{4, 2, 2, 3})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x := SolveCholesky(l, []float64{2, 1})
	// Verify a·x = b.
	b := a.MulVec(nil, x)
	if !almostEqual(b[0], 2, 1e-12) || !almostEqual(b[1], 1, 1e-12) {
		t.Fatalf("SolveCholesky residual: %v", b)
	}
}

func TestInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	b := randomMatrix(rng, 6, 6)
	a := New(0, 0).TMatMul(b, b)
	a.AddDiag(0.5)
	inv, err := InverseSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := New(0, 0).MatMul(a, inv)
	id := Identity(6)
	for i := range id.Data {
		if !almostEqual(prod.Data[i], id.Data[i], 1e-8) {
			t.Fatalf("A·A⁻¹ not identity at %d: %g", i, prod.Data[i])
		}
	}
}

// quickSym builds a small symmetric matrix from arbitrary float inputs,
// keeping values in a sane range for the property test.
func quickSym(vals [6]float64) *Matrix {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 100)
	}
	m := New(3, 3)
	idx := 0
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			v := clamp(vals[idx])
			idx++
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigenSymTraceProperty(t *testing.T) {
	// Property: sum of eigenvalues equals the trace for any symmetric matrix.
	f := func(vals [6]float64) bool {
		m := quickSym(vals)
		e, err := EigenSym(m)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range e.Values {
			sum += v
		}
		return almostEqual(sum, m.Trace(), 1e-8*(1+math.Abs(m.Trace())))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(rng, 3, 4)
		b := randomMatrix(rng, 4, 5)
		c := randomMatrix(rng, 5, 2)
		lhs := New(0, 0).MatMul(New(0, 0).MatMul(a, b), c)
		rhs := New(0, 0).MatMul(a, New(0, 0).MatMul(b, c))
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-10) {
				t.Fatalf("trial %d: associativity violated at %d", trial, i)
			}
		}
	}
}
