package tensor

import (
	"fmt"
	"math"
)

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ for a
// symmetric positive-definite matrix. It returns an error if a is not
// square or not positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("tensor: Cholesky on %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.Data[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l.Data[i*n+k] * l.Data[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("tensor: Cholesky: matrix not positive definite (pivot %d = %g)", i, sum)
				}
				l.Data[i*n+i] = math.Sqrt(sum)
			} else {
				l.Data[i*n+j] = sum / l.Data[j*n+j]
			}
		}
	}
	return l, nil
}

// SolveCholesky solves a·x = b given the Cholesky factor l of a, storing the
// solution in a new slice. It panics if dimensions disagree.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic(fmt.Sprintf("tensor: SolveCholesky vec(%d) with %dx%d factor", len(b), n, n))
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.Data[i*n+k] * y[k]
		}
		y[i] = sum / l.Data[i*n+i]
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.Data[k*n+i] * x[k]
		}
		x[i] = sum / l.Data[i*n+i]
	}
	return x
}

// InverseSPD inverts a symmetric positive-definite matrix via its Cholesky
// factorization. This mirrors the "implicit inversion" alternative that
// KAISA employs for the Fisher factors.
func InverseSPD(a *Matrix) (*Matrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := SolveCholesky(l, e)
		for i := 0; i < n; i++ {
			inv.Data[i*n+j] = col[i]
		}
	}
	return inv, nil
}
