// Package tensor provides the dense linear-algebra primitives that the
// K-FAC optimizer and the neural-network substrate are built on: matrices
// with float64 storage, GEMM variants, Kronecker products, symmetric
// eigendecomposition and Cholesky factorization.
//
// The package is deliberately small and allocation-conscious rather than
// general: K-FAC needs square symmetric factor matrices (typically a few
// hundred rows in the proxy models) and the layer math needs rectangular
// GEMM. All hot loops are written over the flat backing slice.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty matrix; use New or FromSlice to create a
// usable one. Methods that return a Matrix allocate the result unless
// documented otherwise.
type Matrix struct {
	Rows, Cols int
	// Data holds the elements in row-major order: element (i, j) lives at
	// Data[i*Cols+j]. Len is always Rows*Cols.
	Data []float64
}

// New returns a zero-filled matrix with the given dimensions.
// It panics if either dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major) in a Matrix without copying.
// It panics if len(data) != rows*cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: slice length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// At returns element (i, j). Bounds are checked by the slice access.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Dims returns the (rows, cols) pair.
func (m *Matrix) Dims() (int, int) { return m.Rows, m.Cols }

// IsSquare reports whether m has as many rows as columns.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// String renders small matrices for debugging; large matrices are elided.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += "["
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
		s += "]\n"
	}
	return s
}

// Add stores a+b into m (m may alias a or b) and returns m.
// It panics on dimension mismatch.
func (m *Matrix) Add(a, b *Matrix) *Matrix {
	checkSameDims(a, b)
	m.reshape(a.Rows, a.Cols)
	for i := range a.Data {
		m.Data[i] = a.Data[i] + b.Data[i]
	}
	return m
}

// Sub stores a−b into m (m may alias a or b) and returns m.
func (m *Matrix) Sub(a, b *Matrix) *Matrix {
	checkSameDims(a, b)
	m.reshape(a.Rows, a.Cols)
	for i := range a.Data {
		m.Data[i] = a.Data[i] - b.Data[i]
	}
	return m
}

// Scale stores s·a into m (m may alias a) and returns m.
func (m *Matrix) Scale(s float64, a *Matrix) *Matrix {
	m.reshape(a.Rows, a.Cols)
	for i := range a.Data {
		m.Data[i] = s * a.Data[i]
	}
	return m
}

// AXPY adds s·a into m element-wise and returns m.
func (m *Matrix) AXPY(s float64, a *Matrix) *Matrix {
	checkSameDims(m, a)
	for i := range a.Data {
		m.Data[i] += s * a.Data[i]
	}
	return m
}

// AddDiag adds v to every diagonal element of the square matrix m and
// returns m.
func (m *Matrix) AddDiag(v float64) *Matrix {
	if !m.IsSquare() {
		panic("tensor: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += v
	}
	return m
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() float64 {
	if !m.IsSquare() {
		panic("tensor: Trace on non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// Transpose returns aᵀ as a new matrix.
func (a *Matrix) Transpose() *Matrix {
	t := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MatMul stores a·b into m and returns m. m must not alias a or b.
// It panics if the inner dimensions disagree.
func (m *Matrix) MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	m.reshape(a.Rows, b.Cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	// i-k-j loop order keeps both b and m accesses sequential.
	for i := 0; i < a.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				mrow[j] += av * bv
			}
		}
	}
	return m
}

// MatMulT stores a·bᵀ into m and returns m. m must not alias a or b.
func (m *Matrix) MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	m.reshape(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			mrow[j] = sum
		}
	}
	return m
}

// TMatMul stores aᵀ·b into m and returns m. m must not alias a or b.
func (m *Matrix) TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: TMatMul (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	m.reshape(a.Cols, b.Cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, bv := range brow {
				mrow[j] += av * bv
			}
		}
	}
	return m
}

// Kron returns the Kronecker product a ⊗ b as a new matrix.
func Kron(a, b *Matrix) *Matrix {
	k := New(a.Rows*b.Rows, a.Cols*b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			av := a.At(i, j)
			if av == 0 {
				continue
			}
			for p := 0; p < b.Rows; p++ {
				dst := k.Data[(i*b.Rows+p)*k.Cols+j*b.Cols : (i*b.Rows+p)*k.Cols+(j+1)*b.Cols]
				src := b.Data[p*b.Cols : (p+1)*b.Cols]
				for q, bv := range src {
					dst[q] = av * bv
				}
			}
		}
	}
	return k
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute element value (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Symmetrize replaces m with (m+mᵀ)/2, removing floating-point asymmetry
// accumulated by running-average updates, and returns m.
func (m *Matrix) Symmetrize() *Matrix {
	if !m.IsSquare() {
		panic("tensor: Symmetrize on non-square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.Data[i*n+j] + m.Data[j*n+i]) / 2
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
	return m
}

// MulVec stores a·x into dst and returns dst; dst is allocated when nil.
// It panics if len(x) != a.Cols.
func (a *Matrix) MulVec(dst, x []float64) []float64 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("tensor: MulVec %dx%d · vec(%d)", a.Rows, a.Cols, len(x)))
	}
	if dst == nil {
		dst = make([]float64, a.Rows)
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var sum float64
		for j, v := range row {
			sum += v * x[j]
		}
		dst[i] = sum
	}
	return dst
}

// reshape sets the dimensions of m, reusing Data when the capacity allows.
func (m *Matrix) reshape(rows, cols int) {
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
}

func checkSameDims(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
