// Package compso implements COMPSO's adaptive control layer (§4.3,
// Algorithm 1): the iteration-wise error-bound schedule that follows the
// learning-rate schedule (aggressive filter+SR early, conservative SR-only
// or decayed bounds late), and the layer-wise aggregation that batches
// small layers into one compression + all-gather unit (§4.4).
package compso

import (
	"fmt"
	"math"

	"compso/internal/compress"
	"compso/internal/encoding"
	"compso/internal/opt"
)

// Strategy is the compression setting for one iteration.
type Strategy struct {
	// FilterEnabled selects aggressive (filter+SR) vs conservative
	// (SR-only) compression.
	FilterEnabled bool
	// EBFilter and EBQuant are the error bounds in force.
	EBFilter, EBQuant float64
}

// String renders the strategy for logs and trace events, e.g.
// "filter+SR(ebf=4e-3,ebq=4e-3)" or "SR-only(ebq=2e-3)".
func (s Strategy) String() string {
	if s.FilterEnabled {
		return fmt.Sprintf("filter+SR(ebf=%g,ebq=%g)", s.EBFilter, s.EBQuant)
	}
	return fmt.Sprintf("SR-only(ebq=%g)", s.EBQuant)
}

// Controller realizes Algorithm 1 for a given learning-rate schedule.
type Controller struct {
	// Schedule drives the stage transitions: *opt.StepLR switches from
	// loose to tight bounds at the first LR drop; *opt.SmoothLR decays the
	// bounds by Alpha across Stages equal slices of TotalIters.
	Schedule opt.Schedule
	// LooseEBF/LooseEBQ are the aggressive-phase bounds (paper: 4e-3).
	LooseEBF, LooseEBQ float64
	// TightEBQ is the conservative-phase SR bound (paper: 2e-3). The
	// conservative phase of StepLR disables the filter entirely.
	TightEBQ float64
	// Stages is z, the number of SmoothLR stages.
	Stages int
	// Alpha is the per-stage error-bound decay factor for SmoothLR.
	Alpha float64
	// TotalIters is T.
	TotalIters int
}

// DefaultController returns the paper's configuration for the given
// schedule: eb 4e-3 aggressive, 2e-3 conservative, four SmoothLR stages
// with α chosen so the bound lands on 2e-3 in the final stage.
func DefaultController(schedule opt.Schedule, totalIters int) *Controller {
	return &Controller{
		Schedule: schedule,
		LooseEBF: 4e-3, LooseEBQ: 4e-3, TightEBQ: 2e-3,
		Stages:     4,
		Alpha:      math.Pow(0.5, 1.0/3), // 4e-3·α³ = 2e-3
		TotalIters: totalIters,
	}
}

// Validate reports configuration errors.
func (c *Controller) Validate() error {
	if c.LooseEBF <= 0 || c.LooseEBQ <= 0 || c.TightEBQ <= 0 {
		return fmt.Errorf("compso: non-positive error bounds %+v", c)
	}
	if c.Stages <= 0 || c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("compso: stages %d alpha %g", c.Stages, c.Alpha)
	}
	if c.TotalIters <= 0 {
		return fmt.Errorf("compso: total iterations %d", c.TotalIters)
	}
	return nil
}

// StrategyAt returns the compression strategy for iteration t (Algorithm 1
// lines 6–24).
func (c *Controller) StrategyAt(t int) Strategy {
	switch s := c.Schedule.(type) {
	case *opt.StepLR:
		if t < s.FirstDrop() {
			return Strategy{FilterEnabled: true, EBFilter: c.LooseEBF, EBQuant: c.LooseEBQ}
		}
		return Strategy{FilterEnabled: false, EBQuant: c.TightEBQ}
	case *opt.SmoothLR:
		stageLen := (c.TotalIters + c.Stages - 1) / c.Stages
		stage := t / stageLen
		if stage >= c.Stages {
			stage = c.Stages - 1
		}
		decay := math.Pow(c.Alpha, float64(stage))
		return Strategy{
			FilterEnabled: true,
			EBFilter:      c.LooseEBF * decay,
			EBQuant:       c.LooseEBQ * decay,
		}
	default:
		// Unknown schedules get the conservative setting.
		return Strategy{FilterEnabled: false, EBQuant: c.TightEBQ}
	}
}

// Apply configures a COMPSO compressor for iteration t.
func (c *Controller) Apply(t int, comp *compress.COMPSO) {
	s := c.StrategyAt(t)
	comp.FilterEnabled = s.FilterEnabled
	comp.EBFilter = s.EBFilter
	comp.EBQuant = s.EBQuant
}

// NewCompressor returns a COMPSO compressor with the given back-end codec
// (nil → ANS) seeded deterministically per worker rank.
func NewCompressor(codec encoding.Codec, rank int, seed int64) *compress.COMPSO {
	comp := compress.NewCOMPSO(seed*1000 + int64(rank))
	if codec != nil {
		comp.Codec = codec
	}
	return comp
}

// Groups partitions n layer indices into consecutive aggregation groups of
// size m — the unit COMPSO compresses and all-gathers together. It panics
// on m < 1.
func Groups(n, m int) [][]int {
	if m < 1 {
		panic(fmt.Sprintf("compso: aggregation factor %d", m))
	}
	var out [][]int
	for g := 0; g < n; g += m {
		end := min(g+m, n)
		idx := make([]int, 0, end-g)
		for i := g; i < end; i++ {
			idx = append(idx, i)
		}
		out = append(out, idx)
	}
	return out
}

// Concat flattens per-layer gradients into one aggregation buffer.
func Concat(grads [][]float32) []float32 {
	total := 0
	for _, g := range grads {
		total += len(g)
	}
	out := make([]float32, 0, total)
	for _, g := range grads {
		out = append(out, g...)
	}
	return out
}

// Split reverses Concat given the original per-layer lengths. It returns an
// error if the flat buffer does not match the lengths exactly.
func Split(flat []float32, lengths []int) ([][]float32, error) {
	total := 0
	for _, l := range lengths {
		total += l
	}
	if total != len(flat) {
		return nil, fmt.Errorf("compso: flat buffer %d does not match lengths sum %d", len(flat), total)
	}
	out := make([][]float32, len(lengths))
	pos := 0
	for i, l := range lengths {
		out[i] = flat[pos : pos+l]
		pos += l
	}
	return out, nil
}
