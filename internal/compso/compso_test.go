package compso

import (
	"math"
	"testing"

	"compso/internal/encoding"
	"compso/internal/opt"
	"compso/internal/xrand"
)

func TestStepLRStrategy(t *testing.T) {
	// ResNet-50 in the paper: first LR drop at epoch 25 → aggressive
	// (filter+SR, 4e-3) before, conservative (SR-only, 2e-3) after.
	sched := &opt.StepLR{BaseLR: 0.1, Drops: []int{25}, Gamma: 0.1}
	c := DefaultController(sched, 100)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	early := c.StrategyAt(0)
	if !early.FilterEnabled || early.EBFilter != 4e-3 || early.EBQuant != 4e-3 {
		t.Fatalf("early strategy %+v", early)
	}
	late := c.StrategyAt(25)
	if late.FilterEnabled || late.EBQuant != 2e-3 {
		t.Fatalf("late strategy %+v", late)
	}
}

func TestSmoothLRStageDecay(t *testing.T) {
	// BERT in the paper: four stages refining the bound 4e-3 → 2e-3.
	sched := &opt.SmoothLR{BaseLR: 1e-3, Warmup: 10, Total: 1000}
	c := DefaultController(sched, 1000)
	s0 := c.StrategyAt(0)
	s3 := c.StrategyAt(999)
	if !s0.FilterEnabled || !s3.FilterEnabled {
		t.Fatal("SmoothLR should keep the filter with decaying bounds")
	}
	if math.Abs(s0.EBQuant-4e-3) > 1e-12 {
		t.Fatalf("stage 0 bound %g", s0.EBQuant)
	}
	if math.Abs(s3.EBQuant-2e-3) > 1e-6 {
		t.Fatalf("final stage bound %g, want 2e-3", s3.EBQuant)
	}
	// Bounds must be monotone non-increasing across iterations.
	prev := math.Inf(1)
	for it := 0; it < 1000; it += 50 {
		cur := c.StrategyAt(it).EBQuant
		if cur > prev+1e-15 {
			t.Fatalf("bound increased at iteration %d", it)
		}
		prev = cur
	}
}

func TestStrategyBeyondTotalClamps(t *testing.T) {
	c := DefaultController(&opt.SmoothLR{BaseLR: 1, Total: 100}, 100)
	if got := c.StrategyAt(5000); math.Abs(got.EBQuant-2e-3) > 1e-6 {
		t.Fatalf("overflow iteration bound %g", got.EBQuant)
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	c := DefaultController(&opt.StepLR{BaseLR: 1, Gamma: 0.1}, 10)
	c.Stages = 0
	if c.Validate() == nil {
		t.Fatal("stages=0 accepted")
	}
	c = DefaultController(&opt.StepLR{BaseLR: 1, Gamma: 0.1}, 10)
	c.LooseEBF = -1
	if c.Validate() == nil {
		t.Fatal("negative bound accepted")
	}
}

func TestApplyConfiguresCompressor(t *testing.T) {
	sched := &opt.StepLR{BaseLR: 0.1, Drops: []int{10}, Gamma: 0.1}
	c := DefaultController(sched, 20)
	comp := NewCompressor(encoding.ANS{}, 3, 7)
	c.Apply(0, comp)
	if !comp.FilterEnabled || comp.EBFilter != 4e-3 {
		t.Fatalf("aggressive apply: %+v", comp)
	}
	c.Apply(15, comp)
	if comp.FilterEnabled || comp.EBQuant != 2e-3 {
		t.Fatalf("conservative apply: %+v", comp)
	}
}

func TestGroups(t *testing.T) {
	g := Groups(10, 4)
	if len(g) != 3 || len(g[0]) != 4 || len(g[2]) != 2 {
		t.Fatalf("Groups(10,4) = %v", g)
	}
	if g[2][0] != 8 || g[2][1] != 9 {
		t.Fatalf("last group = %v", g[2])
	}
	if got := Groups(0, 4); len(got) != 0 {
		t.Fatalf("Groups(0,4) = %v", got)
	}
}

func TestGroupsPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Groups(5, 0) did not panic")
		}
	}()
	Groups(5, 0)
}

func TestConcatSplitRoundTrip(t *testing.T) {
	grads := [][]float32{{1, 2}, {3}, {}, {4, 5, 6}}
	flat := Concat(grads)
	if len(flat) != 6 {
		t.Fatalf("flat length %d", len(flat))
	}
	back, err := Split(flat, []int{2, 1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range grads {
		if len(back[i]) != len(grads[i]) {
			t.Fatalf("part %d length %d", i, len(back[i]))
		}
		for j := range grads[i] {
			if back[i][j] != grads[i][j] {
				t.Fatalf("part %d[%d] = %g", i, j, back[i][j])
			}
		}
	}
	if _, err := Split(flat, []int{2, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestUnknownScheduleConservative(t *testing.T) {
	c := DefaultController(nil, 10)
	s := c.StrategyAt(0)
	if s.FilterEnabled || s.EBQuant != 2e-3 {
		t.Fatalf("unknown schedule strategy %+v", s)
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := []float32{1, 0, 0}
	if got := CosineSimilarity(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self cosine = %g", got)
	}
	if got := CosineSimilarity(a, []float32{0, 1, 0}); got != 0 {
		t.Fatalf("orthogonal cosine = %g", got)
	}
	if got := CosineSimilarity(a, []float32{-1, 0, 0}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("opposite cosine = %g", got)
	}
	if got := CosineSimilarity(a, []float32{0, 0, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %g", got)
	}
}

func TestTuneBoundsFindsTarget(t *testing.T) {
	sample := make([]float32, 100000)
	xrand.KFACGradient(xrand.NewSeeded(9), sample, 1.0)
	res, err := TuneBounds(sample, 0.97, 1e-5, 1e-1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cosine < 0.97 {
		t.Fatalf("tuned cosine %.4f below target", res.Cosine)
	}
	if res.ErrorBound <= 1e-5 || res.ErrorBound >= 1e-1 {
		t.Fatalf("tuned bound %g at bracket edge", res.ErrorBound)
	}
	// A materially larger bound must violate the target (maximality).
	larger, err := TuneBounds(sample, 0.97, res.ErrorBound*4, 1e-1, 7)
	if err == nil && larger.Cosine >= 0.97 && larger.ErrorBound > res.ErrorBound*4 {
		t.Fatalf("bound %g not maximal: %g also satisfies", res.ErrorBound, larger.ErrorBound)
	}
	// Tighter targets yield tighter bounds.
	strict, err := TuneBounds(sample, 0.999, 1e-5, 1e-1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if strict.ErrorBound >= res.ErrorBound {
		t.Fatalf("stricter target gave looser bound: %g vs %g", strict.ErrorBound, res.ErrorBound)
	}
}

func TestTuneBoundsValidation(t *testing.T) {
	sample := []float32{1, 2, 3}
	if _, err := TuneBounds(nil, 0.9, 1e-4, 1e-2, 1); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := TuneBounds(sample, 1.5, 1e-4, 1e-2, 1); err == nil {
		t.Fatal("target > 1 accepted")
	}
	if _, err := TuneBounds(sample, 0.9, 1e-2, 1e-4, 1); err == nil {
		t.Fatal("inverted bracket accepted")
	}
}
