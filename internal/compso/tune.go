package compso

import (
	"fmt"
	"math"

	"compso/internal/compress"
)

// This file implements the paper's first future-work item: "precisely
// optimizing filter thresholds and quantization error bounds, moving beyond
// empirical settings". TuneBounds searches for the largest error bound that
// still preserves the gradient's direction to a target fidelity — the
// quantity second-order updates actually depend on.

// CosineSimilarity returns the cosine between two equal-length gradients
// (0 when either is a zero vector).
func CosineSimilarity(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("compso: cosine of lengths %d vs %d", len(a), len(b)))
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// TuneResult is the outcome of a bound search.
type TuneResult struct {
	// ErrorBound is the selected bound, applied to both eb_f and eb_q.
	ErrorBound float64
	// Cosine is the direction fidelity achieved at that bound.
	Cosine float64
	// Ratio is the compression ratio achieved at that bound.
	Ratio float64
}

// TuneBounds finds (by bisection on a log scale) the largest error bound
// whose filter+SR round trip keeps the cosine similarity between the
// sample gradient and its reconstruction at or above targetCosine. The
// sample should be a representative K-FAC gradient (e.g. from a warmup
// iteration). lo and hi bracket the search; targetCosine must be in (0, 1).
func TuneBounds(sample []float32, targetCosine, lo, hi float64, seed int64) (TuneResult, error) {
	if len(sample) == 0 {
		return TuneResult{}, fmt.Errorf("compso: empty tuning sample")
	}
	if targetCosine <= 0 || targetCosine >= 1 {
		return TuneResult{}, fmt.Errorf("compso: target cosine %g outside (0,1)", targetCosine)
	}
	if lo <= 0 || hi <= lo {
		return TuneResult{}, fmt.Errorf("compso: invalid bracket [%g, %g]", lo, hi)
	}
	eval := func(eb float64) (TuneResult, error) {
		c := compress.NewCOMPSO(seed)
		c.EBFilter, c.EBQuant = eb, eb
		blob, err := c.Compress(sample)
		if err != nil {
			return TuneResult{}, err
		}
		restored, err := c.Decompress(blob)
		if err != nil {
			return TuneResult{}, err
		}
		return TuneResult{
			ErrorBound: eb,
			Cosine:     CosineSimilarity(sample, restored),
			Ratio:      compress.Ratio(len(sample), blob),
		}, nil
	}
	// Cosine decreases as eb grows (more of the gradient zeroed/noised),
	// so bisect for the crossing.
	loRes, err := eval(lo)
	if err != nil {
		return TuneResult{}, err
	}
	if loRes.Cosine < targetCosine {
		return TuneResult{}, fmt.Errorf("compso: even eb=%g yields cosine %.3f < target %.3f",
			lo, loRes.Cosine, targetCosine)
	}
	hiRes, err := eval(hi)
	if err != nil {
		return TuneResult{}, err
	}
	if hiRes.Cosine >= targetCosine {
		return hiRes, nil // the whole bracket satisfies the target
	}
	best := loRes
	logLo, logHi := math.Log(lo), math.Log(hi)
	for iter := 0; iter < 24; iter++ {
		mid := math.Exp((logLo + logHi) / 2)
		res, err := eval(mid)
		if err != nil {
			return TuneResult{}, err
		}
		if res.Cosine >= targetCosine {
			best = res
			logLo = math.Log(mid)
		} else {
			logHi = math.Log(mid)
		}
	}
	return best, nil
}
