package compso

import (
	"testing"

	"compso/internal/compress"
	"compso/internal/modelzoo"
)

// TestPlanFamiliesSplitsByShape: large 2D layers go low-rank, small ones
// stay on COMPSO, and the planner's predicted wire CR reflects the
// alternating-factor volume.
func TestPlanFamiliesSplitsByShape(t *testing.T) {
	plan := PlanFamilies(modelzoo.BERTLarge(), 4, 0)
	if plan.Rank != 4 {
		t.Fatalf("rank %d", plan.Rank)
	}
	if got, want := len(plan.Choices), len(modelzoo.BERTLarge().Layers); got != want {
		t.Fatalf("%d choices for %d layers", got, want)
	}
	if plan.LowRankLayers() == 0 {
		t.Fatal("BERT-large planned zero low-rank layers")
	}
	for _, ch := range plan.Choices {
		switch ch.Family {
		case "powersgd":
			if ch.Params < 1<<16 {
				t.Fatalf("layer %s: %d params sent to low-rank below the floor", ch.Name, ch.Params)
			}
			wantCR := float64(ch.Params) / (float64(plan.Rank) * float64(ch.Rows+ch.Cols) / 2)
			if ch.WireCR != wantCR {
				t.Fatalf("layer %s: WireCR %g, want %g", ch.Name, ch.WireCR, wantCR)
			}
			if ch.WireCR < 2*16 {
				t.Fatalf("layer %s: low-rank chosen at CR %g below the 2x-baseline bar", ch.Name, ch.WireCR)
			}
		case "compso":
		default:
			t.Fatalf("layer %s: unknown family %q", ch.Name, ch.Family)
		}
	}

	// ResNet-50 has small early convs: some layers must stay on COMPSO.
	rplan := PlanFamilies(modelzoo.ResNet50(), 4, 0)
	if rplan.LowRankLayers() == len(rplan.Choices) {
		t.Fatal("ResNet-50 planned every layer low-rank")
	}
	if rplan.LowRankLayers() == 0 {
		t.Fatal("ResNet-50 planned zero low-rank layers")
	}
}

// TestPlanCompressorsFactory: low-rank layers get shape-pinned shared-seed
// PowerSGD, the rest per-rank COMPSO.
func TestPlanCompressorsFactory(t *testing.T) {
	prof := modelzoo.BERTLarge()
	plan := PlanFamilies(prof, 4, 0)
	factory := plan.Compressors(9)
	var lowrank, other int
	for _, ch := range plan.Choices {
		c0 := factory(0, ch.Layer)
		c1 := factory(1, ch.Layer)
		if ch.Family == "powersgd" {
			lowrank++
			ps, ok := c0.(*compress.PowerSGD)
			if !ok {
				t.Fatalf("layer %d: %T, want PowerSGD", ch.Layer, c0)
			}
			if ps.Rows != ch.Rows || ps.Cols != ch.Cols {
				t.Fatalf("layer %d: pinned %dx%d, want %dx%d", ch.Layer, ps.Rows, ps.Cols, ch.Rows, ch.Cols)
			}
			if ps.Seed != c1.(*compress.PowerSGD).Seed {
				t.Fatalf("layer %d: low-rank seeds differ across workers", ch.Layer)
			}
		} else {
			other++
			a, ok := c0.(*compress.COMPSO)
			if !ok {
				t.Fatalf("layer %d: %T, want COMPSO", ch.Layer, c0)
			}
			// Per-rank seeds decorrelate stochastic rounding: same input,
			// different blobs.
			src := make([]float32, 512)
			for i := range src {
				src[i] = float32(i%17) * 1e-3
			}
			b0, err0 := a.Compress(src)
			b1, err1 := c1.(*compress.COMPSO).Compress(src)
			if err0 != nil || err1 != nil {
				t.Fatalf("layer %d: %v %v", ch.Layer, err0, err1)
			}
			if string(b0) == string(b1) {
				t.Fatalf("layer %d: COMPSO blobs identical across workers — shared seed", ch.Layer)
			}
		}
	}
	if lowrank == 0 {
		t.Fatal("factory saw no low-rank layers")
	}
	// Layers outside the plan fall back to COMPSO.
	if _, ok := factory(0, len(plan.Choices)+5).(*compress.COMPSO); !ok {
		t.Fatal("out-of-plan layer did not fall back to COMPSO")
	}
}
