package compso

import (
	"compso/internal/compress"
	"compso/internal/modelzoo"
)

// This file teaches the control layer to choose a compressor family per
// layer: large 2D layers go to the low-rank PowerSGD family (whose rank-k
// factors cost k·(ADim+GDim) values against ADim·GDim for the dense
// gradient), everything else stays on COMPSO. The plan is derived purely
// from a model profile's layer shapes, so it can be computed once offline
// and reused across a run — the same spirit as the layer-wise aggregation
// planner of §4.4.

// FamilyChoice assigns one profile layer a compressor family.
type FamilyChoice struct {
	// Layer is the profile layer index; Name its profile name.
	Layer int
	Name  string
	// Family is the registry family ("powersgd" or "compso").
	Family string
	// Rows and Cols are the layer's natural 2D gradient view (ADim×GDim),
	// pinned on the low-rank compressor so no reshape heuristic runs.
	Rows, Cols int
	// Params is the layer's gradient size in values.
	Params int
	// WireCR is the planner's predicted per-step compression ratio for
	// the chosen family on this layer (low-rank: the alternating-factor
	// average; COMPSO: the assumed baseline).
	WireCR float64
}

// LayerPlan is a per-layer compressor assignment for one model profile.
type LayerPlan struct {
	Model string
	// Rank is the low-rank family's k.
	Rank    int
	Choices []FamilyChoice
}

// LowRankLayers counts the layers assigned to the low-rank family.
func (p LayerPlan) LowRankLayers() int {
	n := 0
	for _, c := range p.Choices {
		if c.Family == "powersgd" {
			n++
		}
	}
	return n
}

// compsoBaselineCR is the planner's assumed COMPSO compression ratio when
// scoring low-rank candidates (the paper's typical end-to-end CR is
// 10–30×; 16 is the conservative middle).
const compsoBaselineCR = 16.0

// PlanFamilies assigns a compressor family to each layer of a model
// profile: PowerSGD rank-k for layers that are both large (≥ minParams
// gradient values) and genuinely 2D enough that the alternating rank-k
// factor exchange beats the assumed COMPSO baseline by at least 2×,
// COMPSO for the rest. rank ≤ 0 selects the default rank 4; minParams ≤ 0
// selects the default 1<<16.
func PlanFamilies(prof modelzoo.Profile, rank, minParams int) LayerPlan {
	if rank <= 0 {
		rank = 4
	}
	if minParams <= 0 {
		minParams = 1 << 16
	}
	plan := LayerPlan{Model: prof.Name, Rank: rank, Choices: make([]FamilyChoice, 0, len(prof.Layers))}
	for i, l := range prof.Layers {
		params := l.Params()
		ch := FamilyChoice{
			Layer: i, Name: l.Name, Family: "compso",
			Rows: l.ADim, Cols: l.GDim, Params: params,
			WireCR: compsoBaselineCR,
		}
		// Alternating exchange sends one factor per step: on average
		// rank·(rows+cols)/2 values against params dense values.
		factorVals := float64(rank) * float64(l.ADim+l.GDim) / 2
		if factorVals > 0 {
			lowrankCR := float64(params) / factorVals
			if params >= minParams && lowrankCR >= 2*compsoBaselineCR {
				ch.Family = "powersgd"
				ch.WireCR = lowrankCR
			}
		}
		plan.Choices = append(plan.Choices, ch)
	}
	return plan
}

// Compressors returns a per-layer compressor factory in the shape of
// train.Config.NewLayerCompressor: low-rank layers get a PowerSGD pinned
// to the layer's natural 2D view (seeded identically across workers — the
// family is deterministic, so replicas need no decorrelation), COMPSO
// layers a per-rank-seeded instance. Layers outside the plan fall back to
// COMPSO. The factory is intended for inputs matching the planned layer
// shapes; feeding a pinned low-rank layer a larger gradient fails cleanly
// at Compress.
func (p LayerPlan) Compressors(seed int64) func(workerRank, layer int) compress.Compressor {
	byLayer := make(map[int]FamilyChoice, len(p.Choices))
	for _, c := range p.Choices {
		byLayer[c.Layer] = c
	}
	return func(workerRank, layer int) compress.Compressor {
		if ch, ok := byLayer[layer]; ok && ch.Family == "powersgd" {
			ps := compress.NewPowerSGD(p.Rank, seed)
			ps.Rows, ps.Cols = ch.Rows, ch.Cols
			return ps
		}
		c, err := compress.ByName("compso", compress.Options{Seed: seed*1000 + int64(workerRank)})
		if err != nil {
			panic("compso: registry lost the compso family: " + err.Error())
		}
		return c
	}
}
