package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"compso/internal/compress"
	"compso/internal/serve"
)

// ---- low-rank sessions through the registry-backed serving layer ----

// TestPowerSGDSessionBitIdentical: a powersgd session must be
// bit-identical to direct library construction across warm-started calls.
func TestPowerSGDSessionBitIdentical(t *testing.T) {
	s := newServer(t, serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Compressor: "powersgd", Rank: 8, Seed: 5})
	ref := compress.NewPowerSGD(8, 5)
	g := grad(3000, 4)
	for call := 0; call < 3; call++ {
		rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(g), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("call %d: status %d: %s", call, rec.Code, rec.Body)
		}
		want, err := ref.Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Fatalf("call %d: served blob differs from direct PowerSGD blob", call)
		}
		dec := do(t, s, "POST", "/v1/sessions/"+id+"/decompress", want, nil)
		if dec.Code != http.StatusOK {
			t.Fatalf("decompress %d: status %d: %s", call, dec.Code, dec.Body)
		}
		if len(bytesF32(dec.Body.Bytes())) != len(g) {
			t.Fatalf("decompress %d: wrong length", call)
		}
	}
	// PowerSGD pins the stream length; a change is the client's mistake —
	// 400, never 500.
	rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(100, 1)), nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("length change: status %d, want 400", rec.Code)
	}
}

// TestPowerSGDErrorFeedbackLengthMismatchIs400: the EF wrapper over the
// low-rank family pins the length on first use; the serve layer must map
// the mismatch to a 400 (the EF first-use regression, end to end).
func TestPowerSGDErrorFeedbackLengthMismatchIs400(t *testing.T) {
	s := newServer(t, serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Compressor: "powersgd", ErrorFeedback: true, Seed: 2})
	if rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(1024, 3)), nil); rec.Code != http.StatusOK {
		t.Fatalf("first compress: status %d: %s", rec.Code, rec.Body)
	}
	rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(512, 3)), nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("EF+powersgd length change: status %d, want 400: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "length") {
		t.Fatalf("400 body does not mention the length mismatch: %s", rec.Body)
	}
	// The session survives the client error at the pinned length.
	if rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(1024, 3)), nil); rec.Code != http.StatusOK {
		t.Fatalf("pinned length after 400: status %d: %s", rec.Code, rec.Body)
	}
}

// TestLowRankAliasAndInfo: the "lowrank" alias resolves through the
// registry and the session reports its canonical compressor name.
func TestLowRankAliasAndInfo(t *testing.T) {
	s := newServer(t, serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Compressor: "lowrank", Seed: 1})
	rec := do(t, s, "GET", "/v1/sessions/"+id, nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("info: status %d", rec.Code)
	}
	var info serve.SessionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Compressor, "PowerSGD") {
		t.Fatalf("alias session compressor %q", info.Compressor)
	}
}

// TestSessionConfigValidationIs400: out-of-range knobs must be rejected
// at session create with a 400 — including qsgd bits over 16, which the
// compressor would have panicked on mid-request before the registry
// bound was tightened.
func TestSessionConfigValidationIs400(t *testing.T) {
	s := newServer(t, serve.Config{})
	cases := []serve.SessionConfig{
		{Compressor: "qsgd", Bits: 32},
		{Compressor: "qsgd", Bits: 1},
		{Compressor: "powersgd", Rank: -1},
		{Compressor: "powersgd", Rank: 100000},
		{Compressor: "zfp"},
	}
	for _, cfg := range cases {
		body, _ := json.Marshal(cfg)
		rec := do(t, s, "POST", "/v1/sessions", body, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400: %s", cfg, rec.Code, rec.Body)
		}
	}
	// The unknown-family error must list what IS available.
	body, _ := json.Marshal(serve.SessionConfig{Compressor: "zfp"})
	rec := do(t, s, "POST", "/v1/sessions", body, nil)
	if !strings.Contains(rec.Body.String(), "powersgd") {
		t.Fatalf("unknown-family 400 does not list families: %s", rec.Body)
	}
}
