// Package serve turns the COMPSO library into a long-running, multi-tenant
// compression-as-a-service: a streaming HTTP API over the repository's
// compressors, with per-tenant sessions, admission control with
// backpressure, and per-tenant observability.
//
// The ROADMAP's "millions of users" direction needs exactly three properties
// from the codec layer, and this package is where they are enforced:
//
//   - Reentrancy. Compressor instances are single-threaded objects (the
//     stochastic-rounding RNG and the error-feedback residual are stateful),
//     so each session owns one compressor and serializes calls on a mutex;
//     concurrency comes from running many sessions, which is safe because
//     the hot paths underneath share only race-safe state (the pool arenas
//     and read-only codec registries — locked in by the compress package's
//     -race stress suite).
//
//   - Bounded allocation. Request bodies, float conversion scratch and
//     response buffers all come from internal/pool, so steady-state request
//     handling performs a small constant number of heap allocations
//     (guarded by AllocsPerRun in alloc_test.go) regardless of payload size.
//
//   - Backpressure, not queueing. The admission layer caps live sessions
//     and in-flight requests globally and per tenant; excess load is shed
//     immediately with 429 + Retry-After instead of growing latency until
//     clients time out.
//
// The HTTP surface (see cmd/compso-serve and the README "Serving" section):
//
//	POST   /v1/sessions                  create a session (JSON config)
//	GET    /v1/sessions/{id}             session info + stats
//	DELETE /v1/sessions/{id}             close the session
//	POST   /v1/sessions/{id}/compress    float32 LE body -> compressed blob
//	POST   /v1/sessions/{id}/decompress  blob body -> float32 LE (or JSON)
//	GET    /metrics                      obs metrics snapshot (JSON)
//	GET    /healthz                      liveness + admission state
package serve

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"compso/internal/obs"
)

// Config tunes the server. The zero value gets sensible defaults from
// (\*Config).withDefaults.
type Config struct {
	// MaxSessions caps live sessions across all tenants (default 4096).
	MaxSessions int
	// MaxTenantSessions caps live sessions per tenant (default MaxSessions).
	MaxTenantSessions int
	// MaxInflight caps concurrent data-plane requests across all tenants
	// (default 8×GOMAXPROCS).
	MaxInflight int
	// MaxTenantInflight caps concurrent data-plane requests per tenant
	// (default MaxInflight).
	MaxTenantInflight int
	// MaxElements caps the per-request gradient length (default 1<<24,
	// matching the pool's largest size class).
	MaxElements int
	// MaxTenants caps the number of distinct tenant names the server will
	// materialize state (admission ledgers, metric series) for; session
	// creates naming a new tenant beyond the cap are shed with 429. Tenant
	// names are unauthenticated client input, so without a ceiling they are
	// a slow memory-exhaustion vector (default MaxSessions).
	MaxTenants int
	// RetryAfter is the client backoff advertised on shed requests
	// (default 1s; rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// Obs receives all server metrics. Nil gets a fresh recorder (the
	// /metrics endpoint always has something to serve).
	Obs *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.MaxTenantSessions <= 0 {
		c.MaxTenantSessions = c.MaxSessions
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 8 * runtime.GOMAXPROCS(0)
	}
	if c.MaxTenantInflight <= 0 {
		c.MaxTenantInflight = c.MaxInflight
	}
	if c.MaxElements <= 0 {
		c.MaxElements = 1 << 24
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = c.MaxSessions
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Obs == nil {
		c.Obs = obs.NewRecorder()
	}
	return c
}

// Server is the multi-tenant compression service. Create with New, mount
// Handler on an http.Server, and drain with Shutdown.
type Server struct {
	cfg Config
	obs *obs.Recorder
	adm *admission
	mux *http.ServeMux

	mu       sync.RWMutex
	sessions map[string]*Session
	nextID   atomic.Int64

	// gate serializes the draining flag against in-flight accounting so
	// Shutdown's Wait cannot race a late Add.
	gateMu   sync.Mutex
	draining bool
	inflight sync.WaitGroup

	m serverMetrics
}

// New returns a ready server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		obs:      cfg.Obs,
		sessions: make(map[string]*Session),
	}
	s.adm = newAdmission(cfg)
	s.m = newServerMetrics(cfg.Obs)
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the server's HTTP handler (also usable directly in-process
// by the load generator and the perf harness — no TCP required).
func (s *Server) Handler() http.Handler { return s.mux }

// Obs exposes the metrics recorder backing /metrics.
func (s *Server) Obs() *obs.Recorder { return s.obs }

// enter registers a data-plane request; it returns false once draining has
// begun, in which case the caller must answer 503 without touching the
// WaitGroup.
func (s *Server) enter() bool {
	s.gateMu.Lock()
	defer s.gateMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// leave balances a successful enter.
func (s *Server) leave() { s.inflight.Done() }

// Draining reports whether Shutdown has been initiated.
func (s *Server) Draining() bool {
	s.gateMu.Lock()
	defer s.gateMu.Unlock()
	return s.draining
}

// Shutdown stops admitting data-plane requests and waits for the in-flight
// ones to finish (or ctx to expire). Sessions are then closed so their
// state is released. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.gateMu.Lock()
	s.draining = true
	s.gateMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}

	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.closeSession(id)
	}
	return nil
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

// lookupSession returns the live session with the given id.
func (s *Server) lookupSession(id string) (*Session, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// pinSession looks up the session and, under the same read lock, marks it
// in-flight and fresh. ReapIdle decides under the write lock, so a request
// that has pinned can never have its session reaped out from under it
// between lookup and first use; the caller must sess.inflight.Add(-1) when
// done.
func (s *Server) pinSession(id string) (*Session, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, false
	}
	sess.inflight.Add(1)
	sess.touch()
	return sess, true
}

// registerSession admits and installs a new session built by build. The
// admission slot is taken before build runs and released if it fails.
func (s *Server) registerSession(tenant string, build func(id string) (*Session, error)) (*Session, error) {
	ts, ok := s.adm.tenant(tenant)
	if !ok {
		s.m.shedSessions.Inc()
		return nil, errShed
	}
	if !s.adm.acquireSession(ts) {
		s.m.shedSessions.Inc()
		ts.m.shed.Inc()
		return nil, errShed
	}
	id := "s-" + strconv.FormatInt(s.nextID.Add(1), 10)
	sess, err := build(id)
	if err != nil {
		s.adm.releaseSession(ts)
		return nil, err
	}
	sess.ts = ts
	s.mu.Lock()
	s.sessions[id] = sess
	n := len(s.sessions)
	s.mu.Unlock()
	s.m.sessionsLive.Set(float64(n))
	s.m.sessionsCreated.Inc()
	return sess, nil
}

// closeSession removes and closes a session; it reports whether the id was
// live.
func (s *Server) closeSession(id string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	n := len(s.sessions)
	s.mu.Unlock()
	if !ok {
		return false
	}
	sess.close()
	s.adm.releaseSession(sess.ts)
	s.m.sessionsLive.Set(float64(n))
	return true
}

// ReapIdle closes sessions idle for longer than olderThan and returns how
// many it reaped. A dead client that never sent DELETE must not pin its
// admission slot (or its error-feedback residual) forever; cmd/compso-serve
// calls this on a ticker.
func (s *Server) ReapIdle(olderThan time.Duration) int {
	if olderThan <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-olderThan).UnixNano()
	// The write lock excludes pinSession, making the idleness check and the
	// map removal one atomic decision: a request that already pinned shows
	// inflight > 0 here, and one that has not yet pinned will miss the map
	// and get a clean 404 — never a session closed mid-request.
	s.mu.Lock()
	var idle []*Session
	for id, sess := range s.sessions {
		if sess.lastUsed.Load() < cutoff && sess.inflight.Load() == 0 {
			delete(s.sessions, id)
			idle = append(idle, sess)
		}
	}
	n := len(s.sessions)
	s.mu.Unlock()
	for _, sess := range idle {
		sess.close()
		s.adm.releaseSession(sess.ts)
		s.m.sessionsReaped.Inc()
	}
	if len(idle) > 0 {
		s.m.sessionsLive.Set(float64(n))
	}
	return len(idle)
}
