package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"compso/internal/compress"
	internalcompso "compso/internal/compso"
	"compso/internal/encoding"
	"compso/internal/opt"
)

// SessionConfig is the JSON body of POST /v1/sessions. Unset numeric fields
// take the library defaults; Compressor defaults to "compso" and Codec to
// "ans".
type SessionConfig struct {
	// Tenant groups sessions for admission control and metrics. Empty maps
	// to "default".
	Tenant string `json:"tenant"`
	// Compressor selects the family from the compress registry: "compso"
	// (default), "qsgd", "sz", "cocktail" or "powersgd".
	Compressor string `json:"compressor"`
	// Codec names the lossless back-end for COMPSO (see /v1/codecs);
	// default "ans". Per-request override: the X-Compso-Codec header or an
	// Accept media-type parameter ";codec=".
	Codec string `json:"codec"`
	// EBFilter/EBQuant are COMPSO's error bounds (default 4e-3 each).
	EBFilter float64 `json:"eb_filter"`
	EBQuant  float64 `json:"eb_quant"`
	// Filter disables COMPSO's filter stage when set to false (default
	// true).
	Filter *bool `json:"filter"`
	// RelEB is SZ's range-relative error bound (default 1e-3).
	RelEB float64 `json:"rel_eb"`
	// Bits is the quantization width for qsgd/cocktail (default 4 / 8).
	Bits int `json:"bits"`
	// Keep is cocktail's top-k keep fraction (default 0.04).
	Keep float64 `json:"keep"`
	// Rank is powersgd's factorization rank (default 4). PowerSGD
	// sessions are stateful streams: every compress request must carry
	// the same gradient length (pinned on first use).
	Rank int `json:"rank"`
	// ErrorFeedback wraps the compressor with an error-feedback residual.
	// EF sessions must send same-length gradients on every request.
	ErrorFeedback bool `json:"error_feedback"`
	// Seed fixes the stochastic-rounding stream; sessions with equal
	// configs and seeds produce bit-identical blobs to direct library use.
	Seed int64 `json:"seed"`
	// Adapt enables the paper's iteration-wise error-bound controller:
	// every compress call counts as one training iteration. COMPSO only.
	Adapt *AdaptConfig `json:"adapt,omitempty"`
}

// AdaptConfig configures the per-session autotune controller (Algorithm 1).
type AdaptConfig struct {
	// Schedule is "step" (loose bounds until FirstDrop, then tight
	// SR-only) or "smooth" (staged decay across TotalIters).
	Schedule string `json:"schedule"`
	// TotalIters is the session's expected iteration budget.
	TotalIters int `json:"total_iters"`
	// FirstDrop is the step schedule's strategy-switch iteration
	// (default TotalIters/2).
	FirstDrop int `json:"first_drop"`
}

// SessionInfo is the JSON view of a session returned by create/get.
type SessionInfo struct {
	ID              string `json:"session"`
	Tenant          string `json:"tenant"`
	Compressor      string `json:"compressor"`
	Codec           string `json:"codec,omitempty"`
	ErrorFeedback   bool   `json:"error_feedback,omitempty"`
	Adaptive        bool   `json:"adaptive,omitempty"`
	CompressCalls   int64  `json:"compress_calls"`
	DecompressCalls int64  `json:"decompress_calls"`
	BytesIn         int64  `json:"bytes_in"`
	BytesOut        int64  `json:"bytes_out"`
}

// Session is one tenant's compression stream: the codec configuration, the
// autotune controller state and the error-feedback residual live here, and
// mu serializes every use of the stateful compressor underneath. Requests
// for different sessions proceed fully in parallel.
type Session struct {
	id     string
	tenant string
	ts     *tenantState

	mu     sync.Mutex
	comp   compress.Compressor // operating compressor (EF-wrapped when configured)
	compso *compress.COMPSO    // non-nil for the compso family (codec negotiation + adapt)
	ctrl   *internalcompso.Controller
	step   int
	closed bool

	inflight atomic.Int64 // data-plane requests currently inside this session
	lastUsed atomic.Int64 // unix nanos of the last data-plane touch

	compressCalls, decompressCalls atomic.Int64
	bytesIn, bytesOut              atomic.Int64

	cfg SessionConfig
}

// normalize fills defaults and validates the config. Family names resolve
// through the compress registry (case-insensitively, aliases included),
// and the per-family parameter validation mirrors the registry's so a bad
// config fails here with a 400 instead of surfacing at the first request.
func (c *SessionConfig) normalize() error {
	if c.Tenant == "" {
		c.Tenant = "default"
	}
	if c.Compressor == "" {
		c.Compressor = "compso"
	}
	family, err := compress.CanonicalFamily(c.Compressor)
	if err != nil {
		return fmt.Errorf("unknown compressor %q (have %v)", c.Compressor, compress.Families())
	}
	c.Compressor = family
	switch c.Compressor {
	case "compso":
		if c.Codec == "" {
			c.Codec = "ANS"
		}
		cdc, err := lookupCodec(c.Codec)
		if err != nil {
			return err
		}
		c.Codec = cdc.Name() // canonicalize case
		if c.EBFilter == 0 {
			c.EBFilter = 4e-3
		}
		if c.EBQuant == 0 {
			c.EBQuant = 4e-3
		}
		if c.EBFilter < 0 || c.EBQuant < 0 {
			return fmt.Errorf("negative error bound")
		}
	case "qsgd":
		if c.Bits == 0 {
			c.Bits = 4
		}
		// The registry bound: QSGD's Elias-gamma path supports widths up
		// to 16 (wider configs previously slipped past validation and
		// panicked at the first compress call).
		if c.Bits < 2 || c.Bits > 16 {
			return fmt.Errorf("qsgd bits %d out of range [2,16]", c.Bits)
		}
	case "sz":
		if c.RelEB == 0 {
			c.RelEB = 1e-3
		}
		if c.RelEB < 0 {
			return fmt.Errorf("negative sz error bound")
		}
	case "cocktail":
		if c.Bits == 0 {
			c.Bits = 8
		}
		if c.Keep == 0 {
			c.Keep = 0.04
		}
		if c.Keep <= 0 || c.Keep > 1 {
			return fmt.Errorf("cocktail keep %g out of (0,1]", c.Keep)
		}
	case "powersgd":
		if c.Rank == 0 {
			c.Rank = 4
		}
		if c.Rank < 1 || c.Rank > 256 {
			return fmt.Errorf("powersgd rank %d out of range [1,256]", c.Rank)
		}
	}
	if c.Adapt != nil {
		if c.Compressor != "compso" {
			return fmt.Errorf("adapt requires the compso compressor")
		}
		if c.Adapt.TotalIters <= 0 {
			return fmt.Errorf("adapt.total_iters must be positive")
		}
		switch c.Adapt.Schedule {
		case "", "step", "smooth":
		default:
			return fmt.Errorf("unknown adapt schedule %q", c.Adapt.Schedule)
		}
	}
	return nil
}

// lookupCodec resolves a lossless back-end name case-insensitively (the
// registry uses display casing like "ANS"; clients reasonably send "ans").
func lookupCodec(name string) (encoding.Codec, error) {
	if cdc, err := encoding.ByName(name); err == nil {
		return cdc, nil
	}
	for _, n := range encoding.Names() {
		if strings.EqualFold(n, name) {
			return encoding.ByName(n)
		}
	}
	return nil, fmt.Errorf("unknown codec %q (have %v)", name, encoding.Names())
}

// newSession builds the session's compressor stack from a normalized
// config by resolving through the compress registry — the same
// construction path as the library facade and the command-line tools, so
// equal configs are bit-identical across all three.
func newSession(id string, cfg SessionConfig) (*Session, error) {
	sess := &Session{id: id, tenant: cfg.Tenant, cfg: cfg}
	o := compress.Options{
		Seed:          cfg.Seed,
		EBFilter:      cfg.EBFilter,
		EBQuant:       cfg.EBQuant,
		Filter:        cfg.Filter,
		Bits:          cfg.Bits,
		Keep:          cfg.Keep,
		RelEB:         cfg.RelEB,
		Rank:          cfg.Rank,
		ErrorFeedback: cfg.ErrorFeedback,
	}
	if cfg.Compressor == "compso" {
		cdc, err := lookupCodec(cfg.Codec)
		if err != nil {
			return nil, err
		}
		o.Codec = cdc
	}
	comp, err := compress.ByName(cfg.Compressor, o)
	if err != nil {
		return nil, err
	}
	sess.comp = comp
	// The compso family keeps a concrete handle for per-request codec
	// negotiation and the adapt controller, through an EF wrapper if one
	// is configured.
	inner := comp
	if ef, ok := comp.(*compress.ErrorFeedback); ok {
		inner = ef.Inner
	}
	if cc, ok := inner.(*compress.COMPSO); ok {
		sess.compso = cc
	}
	if a := cfg.Adapt; a != nil {
		var sched opt.Schedule
		firstDrop := a.FirstDrop
		if firstDrop <= 0 {
			firstDrop = a.TotalIters / 2
		}
		if a.Schedule == "smooth" {
			sched = &opt.SmoothLR{}
		} else {
			sched = &opt.StepLR{Drops: []int{firstDrop}}
		}
		ctrl := internalcompso.DefaultController(sched, a.TotalIters)
		if err := ctrl.Validate(); err != nil {
			return nil, err
		}
		sess.ctrl = ctrl
	}
	sess.lastUsed.Store(time.Now().UnixNano())
	return sess, nil
}

// info snapshots the session for JSON responses.
func (s *Session) info() SessionInfo {
	return SessionInfo{
		ID:              s.id,
		Tenant:          s.tenant,
		Compressor:      s.comp.Name(),
		Codec:           s.cfg.Codec,
		ErrorFeedback:   s.cfg.ErrorFeedback,
		Adaptive:        s.ctrl != nil,
		CompressCalls:   s.compressCalls.Load(),
		DecompressCalls: s.decompressCalls.Load(),
		BytesIn:         s.bytesIn.Load(),
		BytesOut:        s.bytesOut.Load(),
	}
}

// compress runs one serialized compress call. codecOverride, when non-empty
// and the session runs COMPSO, switches the lossless back-end for this call
// only (the content-negotiation path); the session's configured codec is
// restored before the lock is released.
func (s *Session) compress(src []float32, codecOverride string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errSessionClosed
	}
	if s.ctrl != nil {
		s.ctrl.Apply(s.step, s.compso)
		s.step++
	}
	if codecOverride != "" && s.compso != nil {
		cdc, err := lookupCodec(codecOverride)
		if err != nil {
			return nil, fmt.Errorf("%w: unknown codec %q", errBadRequest, codecOverride)
		}
		prev := s.compso.Codec
		s.compso.Codec = cdc
		defer func() { s.compso.Codec = prev }()
	}
	blob, err := s.comp.Compress(src)
	if err != nil {
		// A gradient whose length breaks the stream's established shape
		// (the EF residual contract) is the client's mistake, not ours.
		if errors.Is(err, compress.ErrLengthMismatch) {
			return nil, fmt.Errorf("%w: %v", errBadRequest, err)
		}
		return nil, err
	}
	s.compressCalls.Add(1)
	return blob, nil
}

// decompress runs one serialized decompress call. Blobs self-describe their
// back-end codec, so no negotiation is needed on this side.
func (s *Session) decompress(blob []byte) ([]float32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errSessionClosed
	}
	vals, err := s.comp.Decompress(blob)
	if err != nil {
		return nil, err
	}
	s.decompressCalls.Add(1)
	return vals, nil
}

// close marks the session dead. The lock excludes in-flight codec use, so a
// concurrent request finishes cleanly (and returns its pooled buffers)
// before the state is dropped; stream state (EF residuals, PowerSGD
// factors) is released uniformly through the Stateful contract here.
func (s *Session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if st, ok := s.comp.(compress.Stateful); ok {
		st.Reset()
	}
}

// touch records data-plane activity for the idle reaper.
func (s *Session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }
