//go:build !race

package serve_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"compso/internal/serve"
)

// Steady-state allocation guard for the data plane: once the buffer arena is
// warm, one compress request costs the compressor's own handful of allocs
// plus fixed HTTP bookkeeping (request/recorder objects, header maps,
// response buffer growth) — independent of gradient size. The bound is loose
// against scheduler noise but far below a per-element or per-stage copy
// regime; a pooled-buffer regression (readPooledBody or the response path
// dropping the arena) blows straight past it.
// (Excluded under -race: detector instrumentation skews alloc counts.)
func TestServeCompressSteadyStateAllocs(t *testing.T) {
	s := serve.New(serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Seed: 3})
	h := s.Handler()
	body := f32Bytes(grad(1<<16, 3))
	path := "/v1/sessions/" + id + "/compress"

	run := func() {
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
	for i := 0; i < 8; i++ { // warm the arena and the recorder growth path
		run()
	}
	allocs := testing.AllocsPerRun(20, run)
	if allocs > 96 {
		t.Fatalf("serve compress steady state: %.1f allocs/op, want <= 96", allocs)
	}
}

func TestServeDecompressSteadyStateAllocs(t *testing.T) {
	s := serve.New(serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Seed: 3})
	h := s.Handler()

	creq := httptest.NewRequest("POST", "/v1/sessions/"+id+"/compress",
		bytes.NewReader(f32Bytes(grad(1<<16, 3))))
	crec := httptest.NewRecorder()
	h.ServeHTTP(crec, creq)
	if crec.Code != http.StatusOK {
		t.Fatalf("compress: %d", crec.Code)
	}
	blob := append([]byte(nil), crec.Body.Bytes()...)
	path := "/v1/sessions/" + id + "/decompress"

	run := func() {
		req := httptest.NewRequest("POST", path, bytes.NewReader(blob))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
	for i := 0; i < 8; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(20, run)
	if allocs > 96 {
		t.Fatalf("serve decompress steady state: %.1f allocs/op, want <= 96", allocs)
	}
}
