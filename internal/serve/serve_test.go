package serve_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"compso/internal/compress"
	internalcompso "compso/internal/compso"
	"compso/internal/opt"
	"compso/internal/pool"
	"compso/internal/serve"
	"compso/internal/xrand"
)

// ---- helpers ----

func newServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	return serve.New(cfg)
}

// do executes one request against the handler in-process.
func do(t *testing.T, s *serve.Server, method, path string, body []byte, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// createSession posts the config and returns the session id.
func createSession(t *testing.T, s *serve.Server, cfg serve.SessionConfig) string {
	t.Helper()
	body, _ := json.Marshal(cfg)
	rec := do(t, s, "POST", "/v1/sessions", body, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", rec.Code, rec.Body)
	}
	var info serve.SessionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	return info.ID
}

func grad(n int, seed int64) []float32 {
	g := make([]float32, n)
	xrand.KFACGradient(xrand.NewSeeded(seed), g, 1.0)
	return g
}

func f32Bytes(src []float32) []byte {
	b := make([]byte, 4*len(src))
	for i, v := range src {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func bytesF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// ---- lifecycle: round-trip bit-identity vs direct library calls ----

func TestRoundTripBitIdenticalToLibrary(t *testing.T) {
	s := newServer(t, serve.Config{})
	const seed = 42
	id := createSession(t, s, serve.SessionConfig{Tenant: "acme", Seed: seed})

	// The reference: the exact construction the server performs, driven
	// directly. Sequential calls consume the same SR stream, so the whole
	// request sequence must match bit-for-bit.
	ref := compress.NewCOMPSO(seed)

	for call := 0; call < 3; call++ {
		g := grad(4096+call*777, int64(call+1))
		rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(g),
			map[string]string{"Content-Type": "application/x-compso-float32"})
		if rec.Code != http.StatusOK {
			t.Fatalf("compress call %d: status %d: %s", call, rec.Code, rec.Body)
		}
		want, err := ref.Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Fatalf("call %d: served blob differs from direct library blob (%d vs %d bytes)",
				call, rec.Body.Len(), len(want))
		}

		dec := do(t, s, "POST", "/v1/sessions/"+id+"/decompress", rec.Body.Bytes(),
			map[string]string{"Content-Type": "application/x-compso-blob"})
		if dec.Code != http.StatusOK {
			t.Fatalf("decompress call %d: status %d: %s", call, dec.Code, dec.Body)
		}
		wantVals, err := ref.Decompress(want)
		if err != nil {
			t.Fatal(err)
		}
		gotVals := bytesF32(dec.Body.Bytes())
		if len(gotVals) != len(wantVals) {
			t.Fatalf("call %d: decoded %d values, want %d", call, len(gotVals), len(wantVals))
		}
		for i := range gotVals {
			if math.Float32bits(gotVals[i]) != math.Float32bits(wantVals[i]) {
				t.Fatalf("call %d: value %d = %x, want %x", call, i,
					math.Float32bits(gotVals[i]), math.Float32bits(wantVals[i]))
			}
		}
	}
}

func TestAdaptiveSessionMatchesController(t *testing.T) {
	s := newServer(t, serve.Config{})
	const seed, total, drop = 7, 6, 3
	id := createSession(t, s, serve.SessionConfig{
		Seed:  seed,
		Adapt: &serve.AdaptConfig{Schedule: "step", TotalIters: total, FirstDrop: drop},
	})
	ref := compress.NewCOMPSO(seed)
	ctrl := internalcompso.DefaultController(&opt.StepLR{Drops: []int{drop}}, total)
	g := grad(2048, 5)
	for call := 0; call < total; call++ {
		rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(g), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("call %d: status %d: %s", call, rec.Code, rec.Body)
		}
		ctrl.Apply(call, ref)
		want, err := ref.Compress(g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Fatalf("adaptive call %d: served blob differs from controller-applied library blob", call)
		}
	}
}

func TestErrorFeedbackSession(t *testing.T) {
	s := newServer(t, serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Seed: 3, ErrorFeedback: true})
	g := grad(1024, 9)
	body := f32Bytes(g)
	var prev []byte
	for call := 0; call < 3; call++ {
		rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", body, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("EF call %d: status %d: %s", call, rec.Code, rec.Body)
		}
		blob := append([]byte(nil), rec.Body.Bytes()...)
		if prev != nil && bytes.Equal(prev, blob) {
			t.Fatalf("EF call %d: blob identical to previous call — residual not applied", call)
		}
		prev = blob
		dec := do(t, s, "POST", "/v1/sessions/"+id+"/decompress", blob, nil)
		if dec.Code != http.StatusOK {
			t.Fatalf("EF decompress %d: status %d", call, dec.Code)
		}
	}
	// EF sessions require stable lengths; a different length is the client's
	// mistake and must be a 400, never a 500.
	rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(512, 1)), nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("EF length mismatch: status %d, want 400", rec.Code)
	}
}

// ---- admission control ----

func TestSessionLimitShedsWith429(t *testing.T) {
	s := newServer(t, serve.Config{MaxSessions: 2})
	createSession(t, s, serve.SessionConfig{Tenant: "a"})
	createSession(t, s, serve.SessionConfig{Tenant: "b"})
	body, _ := json.Marshal(serve.SessionConfig{Tenant: "c"})
	rec := do(t, s, "POST", "/v1/sessions", body, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third session: status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
}

func TestTenantSessionLimitIsIndependent(t *testing.T) {
	s := newServer(t, serve.Config{MaxSessions: 10, MaxTenantSessions: 1})
	createSession(t, s, serve.SessionConfig{Tenant: "a"})
	body, _ := json.Marshal(serve.SessionConfig{Tenant: "a"})
	if rec := do(t, s, "POST", "/v1/sessions", body, nil); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second session for tenant a: status %d, want 429", rec.Code)
	}
	// Another tenant still has room.
	createSession(t, s, serve.SessionConfig{Tenant: "b"})
}

// blockingRequest starts a compress request whose chunked body blocks until
// release is called; it occupies one in-flight admission slot meanwhile.
func blockingRequest(t *testing.T, s *serve.Server, id string) (release func(), done <-chan *httptest.ResponseRecorder) {
	t.Helper()
	pr, pw := io.Pipe()
	req := httptest.NewRequest("POST", "/v1/sessions/"+id+"/compress", pr)
	req.ContentLength = -1 // force the chunked read path
	ch := make(chan *httptest.ResponseRecorder, 1)
	started := make(chan struct{})
	go func() {
		rec := httptest.NewRecorder()
		close(started)
		s.Handler().ServeHTTP(rec, req)
		ch <- rec
	}()
	<-started
	// Hand the handler its first bytes so it is provably inside the body
	// read (and holding its admission slot) before we return.
	if _, err := pw.Write(f32Bytes(grad(16, 1))); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	var once sync.Once
	return func() { once.Do(func() { pw.Close() }) }, ch
}

func TestInflightLimitShedsWith429(t *testing.T) {
	s := newServer(t, serve.Config{MaxInflight: 1})
	id := createSession(t, s, serve.SessionConfig{Tenant: "a"})
	release, done := blockingRequest(t, s, id)
	defer release()

	rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(64, 2)), nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second in-flight request: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	release()
	first := <-done
	if first.Code != http.StatusOK {
		t.Fatalf("blocked request finished with %d: %s", first.Code, first.Body)
	}
	// Slot free again: the retry succeeds.
	rec = do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(64, 2)), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release request: status %d", rec.Code)
	}
}

// ---- graceful shutdown ----

func TestShutdownDrainsInflight(t *testing.T) {
	s := newServer(t, serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Tenant: "a"})
	release, done := blockingRequest(t, s, id)
	defer release()

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(t.Context()) }()

	// Draining begins promptly: new work is refused with 503.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(64, 2)), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", rec.Code)
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("shutdown returned (%v) while a request was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	release()
	in := <-done
	if in.Code != http.StatusOK {
		t.Fatalf("in-flight request during drain finished with %d: %s", in.Code, in.Body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if n := s.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived shutdown", n)
	}
}

// ---- protocol edges ----

func TestUnknownSessionIs404(t *testing.T) {
	s := newServer(t, serve.Config{})
	rec := do(t, s, "POST", "/v1/sessions/s-999/compress", f32Bytes(grad(8, 1)), nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", rec.Code)
	}
}

func TestOddLengthBodyIs400(t *testing.T) {
	s := newServer(t, serve.Config{})
	id := createSession(t, s, serve.SessionConfig{})
	rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", []byte{1, 2, 3}, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
}

func TestOversizedBodyIs413(t *testing.T) {
	s := newServer(t, serve.Config{MaxElements: 16})
	id := createSession(t, s, serve.SessionConfig{})
	rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(64, 1)), nil)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
}

// TestDecompressOversizedHeaderIs400 locks in the pre-decode element cap: a
// tiny blob whose header declares a huge element count must be rejected with
// 400 before the decoder allocates output sized by the untrusted header.
func TestDecompressOversizedHeaderIs400(t *testing.T) {
	s := newServer(t, serve.Config{MaxElements: 1 << 10})
	id := createSession(t, s, serve.SessionConfig{})

	// Magic 'O' (COMPSO) + uvarint element count claiming ~1<<30 elements
	// (a 4GB float32 vector) in a blob a handful of bytes long.
	blob := append([]byte{0x4f}, binary.AppendUvarint(nil, 1<<30)...)
	blob = append(blob, make([]byte, 32)...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	rec := do(t, s, "POST", "/v1/sessions/"+id+"/decompress", blob, nil)
	runtime.ReadMemStats(&after)

	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized header: status %d, want 400: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "cap") {
		t.Fatalf("oversized header: error body does not mention the cap: %s", rec.Body)
	}
	// The request must not have allocated anywhere near what the header
	// demanded (4GB output + 128MB bitmap); 16MB of slack covers test noise.
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 16<<20 {
		t.Fatalf("oversized header allocated %d bytes before rejection", delta)
	}

	// Garbage magic bytes are an equally clean 400.
	rec = do(t, s, "POST", "/v1/sessions/"+id+"/decompress", []byte{0xFF, 0x01, 0x02}, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad magic: status %d, want 400", rec.Code)
	}
}

// TestTenantCapShedsNewTenants locks in the distinct-tenant ceiling: random
// tenant names must not grow server state without bound.
func TestTenantCapShedsNewTenants(t *testing.T) {
	s := newServer(t, serve.Config{MaxTenants: 2})
	createSession(t, s, serve.SessionConfig{Tenant: "a"})
	createSession(t, s, serve.SessionConfig{Tenant: "b"})

	body, _ := json.Marshal(serve.SessionConfig{Tenant: "c"})
	rec := do(t, s, "POST", "/v1/sessions", body, nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third tenant: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("tenant shed without Retry-After")
	}
	// Known tenants are unaffected by the cap.
	createSession(t, s, serve.SessionConfig{Tenant: "a"})

	// The shed tenant must not have gained metric series.
	m := do(t, s, "GET", "/metrics", nil, nil)
	if strings.Contains(m.Body.String(), "serve/tenant/c/") {
		t.Fatal("shed tenant still materialized metric series")
	}
}

// TestChunkedBodyExactlyAtCapAccepted covers the growth-boundary edge: a
// chunked body of exactly maxBytes (here 128KiB, a power-of-two boundary of
// the 64KiB starting buffer) must be accepted, matching the Content-Length
// path.
func TestChunkedBodyExactlyAtCapAccepted(t *testing.T) {
	const maxElements = 32 << 10 // maxBytes = 4*maxElements = 128KiB
	s := newServer(t, serve.Config{MaxElements: maxElements})
	id := createSession(t, s, serve.SessionConfig{})

	post := func(n int) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/sessions/"+id+"/compress",
			bytes.NewReader(f32Bytes(grad(n, 1))))
		req.ContentLength = -1 // force the chunked read path
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		return rec
	}

	if rec := post(maxElements); rec.Code != http.StatusOK {
		t.Fatalf("chunked body of exactly maxBytes: status %d, want 200: %s", rec.Code, rec.Body)
	}
	if rec := post(maxElements + 1); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("chunked body one element over: status %d, want 413", rec.Code)
	}
}

func TestCodecNegotiation(t *testing.T) {
	s := newServer(t, serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Seed: 11})
	g := grad(2048, 3)

	for _, hdr := range []map[string]string{
		{"X-Compso-Codec": "zstd"},
		{"Accept": "application/x-compso-blob;codec=Zstd"},
	} {
		rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(g), hdr)
		if rec.Code != http.StatusOK {
			t.Fatalf("negotiated compress (%v): status %d: %s", hdr, rec.Code, rec.Body)
		}
		// The blob self-describes its codec; the round trip must decode.
		dec := do(t, s, "POST", "/v1/sessions/"+id+"/decompress", rec.Body.Bytes(), nil)
		if dec.Code != http.StatusOK {
			t.Fatalf("negotiated decompress (%v): status %d", hdr, dec.Code)
		}
		if len(dec.Body.Bytes()) != 4*len(g) {
			t.Fatalf("negotiated round trip (%v): %d bytes, want %d", hdr, dec.Body.Len(), 4*len(g))
		}
	}

	rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(g),
		map[string]string{"X-Compso-Codec": "no-such-codec"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown codec: status %d, want 400", rec.Code)
	}
}

func TestDecompressJSONNegotiation(t *testing.T) {
	s := newServer(t, serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Seed: 5})
	g := grad(64, 2)
	rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(g), nil)
	if rec.Code != http.StatusOK {
		t.Fatal(rec.Code)
	}
	dec := do(t, s, "POST", "/v1/sessions/"+id+"/decompress", rec.Body.Bytes(),
		map[string]string{"Accept": "application/json"})
	if dec.Code != http.StatusOK {
		t.Fatalf("json decompress: status %d", dec.Code)
	}
	var vals []float32
	if err := json.Unmarshal(dec.Body.Bytes(), &vals); err != nil {
		t.Fatalf("json decompress: %v", err)
	}
	if len(vals) != len(g) {
		t.Fatalf("json decompress: %d values, want %d", len(vals), len(g))
	}
}

func TestSessionInfoAndDelete(t *testing.T) {
	s := newServer(t, serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Tenant: "acme", Seed: 1})
	do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(256, 1)), nil)

	rec := do(t, s, "GET", "/v1/sessions/"+id, nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get session: %d", rec.Code)
	}
	var info serve.SessionInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Tenant != "acme" || info.CompressCalls != 1 || info.BytesIn != 1024 {
		t.Fatalf("unexpected info: %+v", info)
	}

	if rec := do(t, s, "DELETE", "/v1/sessions/"+id, nil, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", rec.Code)
	}
	if rec := do(t, s, "DELETE", "/v1/sessions/"+id, nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("second delete: %d, want 404", rec.Code)
	}
	if rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(grad(8, 1)), nil); rec.Code != http.StatusNotFound {
		t.Fatalf("compress after delete: %d, want 404", rec.Code)
	}
}

func TestReapIdleClosesDeadSessions(t *testing.T) {
	s := newServer(t, serve.Config{})
	createSession(t, s, serve.SessionConfig{Tenant: "dead"})
	time.Sleep(20 * time.Millisecond)
	if n := s.ReapIdle(time.Millisecond); n != 1 {
		t.Fatalf("reaped %d, want 1", n)
	}
	if n := s.SessionCount(); n != 0 {
		t.Fatalf("%d sessions left", n)
	}
}

// ---- metrics + health ----

func TestMetricsAndHealth(t *testing.T) {
	s := newServer(t, serve.Config{})
	id := createSession(t, s, serve.SessionConfig{Tenant: "acme"})
	g := grad(1024, 4)
	rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(g), nil)
	do(t, s, "POST", "/v1/sessions/"+id+"/decompress", rec.Body.Bytes(), nil)

	m := do(t, s, "GET", "/metrics", nil, nil)
	if m.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", m.Code)
	}
	var payload struct {
		Counters   map[string]float64 `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(m.Body.Bytes(), &payload); err != nil {
		t.Fatalf("/metrics JSON: %v", err)
	}
	if payload.Counters["serve/requests"] != 2 {
		t.Fatalf("serve/requests = %g, want 2", payload.Counters["serve/requests"])
	}
	if payload.Counters["serve/tenant/acme/compress/calls"] != 1 {
		t.Fatalf("tenant compress calls = %g, want 1", payload.Counters["serve/tenant/acme/compress/calls"])
	}
	if payload.Counters["serve/tenant/acme/bytes_in"] == 0 {
		t.Fatal("tenant bytes_in missing")
	}
	if h, ok := payload.Histograms["serve/tenant/acme/compress/latency_s"]; !ok || h.Count != 1 {
		t.Fatalf("latency histogram missing or empty: %+v", payload.Histograms)
	}
	if h, ok := payload.Histograms["serve/tenant/acme/compress/ratio"]; !ok || h.Count != 1 {
		t.Fatal("ratio histogram missing")
	}

	hrec := do(t, s, "GET", "/healthz", nil, nil)
	if hrec.Code != http.StatusOK || !strings.Contains(hrec.Body.String(), `"ok"`) {
		t.Fatalf("/healthz: %d %s", hrec.Code, hrec.Body)
	}
}

func TestShedRequestsAreCounted(t *testing.T) {
	s := newServer(t, serve.Config{MaxSessions: 1})
	createSession(t, s, serve.SessionConfig{Tenant: "a"})
	body, _ := json.Marshal(serve.SessionConfig{Tenant: "b"})
	do(t, s, "POST", "/v1/sessions", body, nil) // shed
	m := do(t, s, "GET", "/metrics", nil, nil)
	var payload struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal(m.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Counters["serve/shed/sessions"] != 1 {
		t.Fatalf("serve/shed/sessions = %g, want 1", payload.Counters["serve/shed/sessions"])
	}
}

// ---- pool integrity: dead sessions leak nothing ----

func TestNoPooledBufferLeaksAcrossSessionLifecycle(t *testing.T) {
	pool.SetDebug(true)
	defer pool.SetDebug(false)

	s := newServer(t, serve.Config{})
	base := pool.Stats().Live
	for i := 0; i < 5; i++ {
		id := createSession(t, s, serve.SessionConfig{Tenant: fmt.Sprintf("t%d", i), Seed: int64(i)})
		g := grad(4096, int64(i+1))
		rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(g), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("compress: %d", rec.Code)
		}
		dec := do(t, s, "POST", "/v1/sessions/"+id+"/decompress", rec.Body.Bytes(), nil)
		if dec.Code != http.StatusOK {
			t.Fatalf("decompress: %d", dec.Code)
		}
		if rec := do(t, s, "DELETE", "/v1/sessions/"+id, nil, nil); rec.Code != http.StatusNoContent {
			t.Fatalf("delete: %d", rec.Code)
		}
	}
	if live := pool.Stats().Live; live != base {
		t.Fatalf("pooled buffers leaked across session lifecycles: live %d, baseline %d", live, base)
	}
}
