package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"compso/internal/compress"
	"compso/internal/encoding"
	"compso/internal/pool"
)

// Media types of the binary data plane. Compression accepts raw
// little-endian float32 gradients and returns a self-describing compressed
// blob; decompression is the inverse. application/octet-stream is accepted
// everywhere a compso type is.
const (
	ctFloat32 = "application/x-compso-float32"
	ctBlob    = "application/x-compso-blob"
)

// Sentinel errors of the request path; the HTTP layer maps them to status
// codes (errShed lives in admission.go).
var (
	errBadRequest    = errors.New("serve: bad request")
	errSessionClosed = errors.New("serve: session closed")
)

// routes mounts the v1 API on the server's mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/sessions", s.recovered(s.handleCreateSession))
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.recovered(s.handleGetSession))
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.recovered(s.handleDeleteSession))
	s.mux.HandleFunc("POST /v1/sessions/{id}/compress", s.recovered(s.handleCompress))
	s.mux.HandleFunc("POST /v1/sessions/{id}/decompress", s.recovered(s.handleDecompress))
	s.mux.HandleFunc("GET /v1/codecs", s.recovered(s.handleCodecs))
	s.mux.HandleFunc("GET /metrics", s.recovered(s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.recovered(s.handleHealthz))
}

// recovered converts handler panics into 500s so one malformed request can
// never take the whole service down; the serve/panics counter makes any
// occurrence visible (the chaos suite asserts it stays zero).
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.m.panics.Inc()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		h(w, r)
	}
}

// writeError emits a JSON error body. It is best-effort: if the handler
// already wrote a response, the status line is gone and this is a no-op at
// the protocol level.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// retryAfterValue renders the configured backoff in whole seconds (minimum
// 1) for the Retry-After header.
func (s *Server) retryAfterValue() string {
	secs := int(math.Ceil(s.cfg.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// shed writes the backpressure response: 429 with Retry-After, never a
// hang. Clients back off and retry; the load generator's overload test
// asserts this is the failure mode under deliberate over-subscription.
func (s *Server) shed(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", s.retryAfterValue())
	writeError(w, http.StatusTooManyRequests, msg)
}

// handleCreateSession builds a session from the JSON config, subject to
// session admission.
func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	defer s.leave()
	var cfg SessionConfig
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if err := dec.Decode(&cfg); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad session config: "+err.Error())
		return
	}
	if err := cfg.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess, err := s.registerSession(cfg.Tenant, func(id string) (*Session, error) {
		return newSession(id, cfg)
	})
	if errors.Is(err, errShed) {
		s.shed(w, "session admission limit reached")
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(sess.info())
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(sess.info())
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	if !s.closeSession(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleCodecs lists the negotiable codec back-ends and compressor
// families.
func (s *Server) handleCodecs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string][]string{
		"compressors": {"compso", "qsgd", "sz", "cocktail"},
		"codecs":      encoding.Names(),
	})
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	s.dataPlane(w, r, (*Server).doCompress)
}

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	s.dataPlane(w, r, (*Server).doDecompress)
}

// dataPlane is the shared admission/draining/accounting shell around the
// two hot handlers.
func (s *Server) dataPlane(w http.ResponseWriter, r *http.Request, op func(*Server, http.ResponseWriter, *http.Request, *Session)) {
	if !s.enter() {
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	defer s.leave()
	sess, ok := s.pinSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	defer sess.inflight.Add(-1)
	ts := sess.ts
	if !s.adm.acquireRequest(ts) {
		s.m.shedRequests.Inc()
		ts.m.shed.Inc()
		s.shed(w, "in-flight request limit reached")
		return
	}
	defer s.adm.releaseRequest(ts)
	s.m.inflight.Set(float64(s.adm.Inflight()))
	s.m.requests.Inc()
	op(s, w, r, sess)
}

// doCompress reads a float32 gradient, compresses it under the session's
// codec config (with optional per-request codec negotiation) and streams
// the blob back.
func (s *Server) doCompress(w http.ResponseWriter, r *http.Request, sess *Session) {
	ts := sess.ts
	start := time.Now()
	body, status, err := readPooledBody(r, 4*s.cfg.MaxElements)
	if err != nil {
		ts.m.errors.Inc()
		s.m.errors.Inc()
		writeError(w, status, err.Error())
		return
	}
	defer pool.PutBytes(body)
	if len(body) == 0 || len(body)%4 != 0 {
		ts.m.errors.Inc()
		s.m.errors.Inc()
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("body must be a non-empty multiple of 4 bytes of little-endian float32, got %d", len(body)))
		return
	}
	n := len(body) / 4
	floats := pool.F32(n)
	defer pool.PutF32(floats)
	bytesToF32(floats, body)

	blob, err := sess.compress(floats, negotiatedCodec(r))
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, errBadRequest):
			code = http.StatusBadRequest
		case errors.Is(err, errSessionClosed):
			code = http.StatusGone
		}
		ts.m.errors.Inc()
		s.m.errors.Inc()
		writeError(w, code, err.Error())
		return
	}
	sess.bytesIn.Add(int64(len(body)))
	sess.bytesOut.Add(int64(len(blob)))
	ts.m.compressCalls.Inc()
	ts.m.bytesIn.Add(float64(len(body)))
	ts.m.bytesOut.Add(float64(len(blob)))
	ts.m.ratio.Observe(compress.Ratio(n, blob))

	h := w.Header()
	h.Set("Content-Type", ctBlob)
	h.Set("Content-Length", strconv.Itoa(len(blob)))
	h.Set("X-Compso-Elements", strconv.Itoa(n))
	_, _ = w.Write(blob)
	ts.m.compressLat.Observe(time.Since(start).Seconds())
}

// doDecompress reads a compressed blob and streams the restored float32
// gradient back (or a JSON array when the client asks for it). Corrupt
// blobs — truncations, bit flips, garbage — are client errors: the decoders
// validate their input and the response is a clean 400, never a panic.
func (s *Server) doDecompress(w http.ResponseWriter, r *http.Request, sess *Session) {
	ts := sess.ts
	start := time.Now()
	body, status, err := readPooledBody(r, 4*s.cfg.MaxElements+1024)
	if err != nil {
		ts.m.errors.Inc()
		s.m.errors.Inc()
		writeError(w, status, err.Error())
		return
	}
	defer pool.PutBytes(body)

	// The decoders size their output and scratch from the blob's
	// element-count header, so the cap must hold before Decompress
	// allocates: a crafted ~30-byte header must not be able to demand
	// gigabytes per request.
	n, err := compress.PeekElements(body)
	if err != nil {
		ts.m.errors.Inc()
		s.m.errors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if n > s.cfg.MaxElements {
		ts.m.errors.Inc()
		s.m.errors.Inc()
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("blob declares %d elements, above the %d cap", n, s.cfg.MaxElements))
		return
	}

	vals, err := sess.decompress(body)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, compress.ErrCorrupt), errors.Is(err, encoding.ErrCorrupt):
			code = http.StatusBadRequest
		case errors.Is(err, errSessionClosed):
			code = http.StatusGone
		}
		ts.m.errors.Inc()
		s.m.errors.Inc()
		writeError(w, code, err.Error())
		return
	}
	ts.m.decompressCalls.Inc()
	ts.m.bytesIn.Add(float64(len(body)))

	if wantsJSON(r) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(vals)
		ts.m.decompressLat.Observe(time.Since(start).Seconds())
		return
	}
	out := pool.Bytes(4 * len(vals))
	defer pool.PutBytes(out)
	f32ToBytes(out, vals)
	h := w.Header()
	h.Set("Content-Type", ctFloat32)
	h.Set("Content-Length", strconv.Itoa(len(out)))
	h.Set("X-Compso-Elements", strconv.Itoa(len(vals)))
	_, _ = w.Write(out)
	ts.m.bytesOut.Add(float64(len(out)))
	ts.m.decompressLat.Observe(time.Since(start).Seconds())
}

// negotiatedCodec extracts a per-request lossless-codec override: the
// X-Compso-Codec header wins, then a ";codec=" parameter on an Accept
// media type (e.g. "Accept: application/x-compso-blob;codec=zstd").
func negotiatedCodec(r *http.Request) string {
	if c := r.Header.Get("X-Compso-Codec"); c != "" {
		return c
	}
	accept := r.Header.Get("Accept")
	if accept == "" || !strings.Contains(accept, "codec=") {
		return ""
	}
	for _, part := range strings.Split(accept, ",") {
		if _, params, err := mime.ParseMediaType(strings.TrimSpace(part)); err == nil {
			if c := params["codec"]; c != "" {
				return c
			}
		}
	}
	return ""
}

// wantsJSON reports whether the client asked for a JSON decompress
// response.
func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

// readPooledBody reads the full request body into a pooled buffer; the
// caller owns it and must pool.PutBytes it. The returned status code is
// meaningful only on error.
func readPooledBody(r *http.Request, maxBytes int) ([]byte, int, error) {
	if r.ContentLength > int64(maxBytes) {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("body %d bytes exceeds the %d-byte cap", r.ContentLength, maxBytes)
	}
	if r.ContentLength >= 0 {
		n := int(r.ContentLength)
		buf := pool.Bytes(n)
		if _, err := io.ReadFull(r.Body, buf); err != nil {
			pool.PutBytes(buf)
			return nil, http.StatusBadRequest, fmt.Errorf("short body: %w", err)
		}
		return buf, 0, nil
	}
	// Unknown length (chunked): grow through pooled buffers. Capacity growth
	// stops at maxBytes+1 — one byte of headroom past the cap — so a body of
	// exactly maxBytes reads through to its terminal EOF instead of being
	// rejected at a power-of-two boundary, while anything longer fills the
	// headroom and is rejected without further growth.
	buf := pool.Bytes(64 << 10)[:0]
	for {
		if len(buf) == cap(buf) {
			if len(buf) > maxBytes {
				pool.PutBytes(buf)
				return nil, http.StatusRequestEntityTooLarge,
					fmt.Errorf("body exceeds the %d-byte cap", maxBytes)
			}
			grown := 2 * cap(buf)
			if grown > maxBytes+1 {
				grown = maxBytes + 1
			}
			next := pool.Bytes(grown)[:len(buf)]
			copy(next, buf)
			pool.PutBytes(buf)
			buf = next
		}
		m, err := r.Body.Read(buf[len(buf):cap(buf):cap(buf)])
		buf = buf[:len(buf)+m]
		if err == io.EOF {
			if len(buf) > maxBytes {
				pool.PutBytes(buf)
				return nil, http.StatusRequestEntityTooLarge,
					fmt.Errorf("body exceeds the %d-byte cap", maxBytes)
			}
			return buf, 0, nil
		}
		if err != nil {
			pool.PutBytes(buf)
			return nil, http.StatusBadRequest, fmt.Errorf("read body: %w", err)
		}
	}
}

// bytesToF32 decodes little-endian float32s; len(dst)*4 == len(src).
func bytesToF32(dst []float32, src []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// f32ToBytes encodes little-endian float32s; len(dst) == 4*len(src).
func f32ToBytes(dst []byte, src []float32) {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}
