package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// HandlerTransport returns an http.RoundTripper that invokes h in-process
// instead of dialing: each RoundTrip calls h.ServeHTTP on the goroutine of
// the caller, with the real request object. Responses are materialized in
// memory. This is how the smoke mode, the 1000-session CI test and the perf
// harness drive compso-serve without TCP connections or file descriptors —
// concurrency is bounded only by goroutines, exactly like the production
// handler under a real listener.
func HandlerTransport(h http.Handler) http.RoundTripper {
	return handlerTransport{h: h}
}

type handlerTransport struct{ h http.Handler }

// RoundTrip implements http.RoundTripper.
func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &responseRecorder{header: make(http.Header), code: http.StatusOK}
	t.h.ServeHTTP(rec, req)
	if req.Body != nil {
		req.Body.Close()
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.code, http.StatusText(rec.code)),
		StatusCode:    rec.code,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// responseRecorder is a minimal http.ResponseWriter (the stdlib's
// httptest.ResponseRecorder equivalent, local so the production binary does
// not link net/http/httptest).
type responseRecorder struct {
	header      http.Header
	body        bytes.Buffer
	code        int
	wroteHeader bool
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if !r.wroteHeader {
		r.code = code
		r.wroteHeader = true
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	if !r.wroteHeader {
		r.WriteHeader(http.StatusOK)
	}
	return r.body.Write(p)
}
