package loadgen_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"compso/internal/serve"
	"compso/internal/serve/loadgen"
)

func run(t *testing.T, srv *serve.Server, cfg loadgen.Config) *loadgen.Report {
	t.Helper()
	cfg.Transport = loadgen.HandlerTransport(srv.Handler())
	ctx, cancel := context.WithTimeout(t.Context(), 4*time.Minute)
	defer cancel()
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestThousandConcurrentSessions is the headline acceptance check: ≥1000
// sessions live at once (every session runs on its own goroutine for its
// whole lifetime), heavy-tailed sizes from the modelzoo, zero request
// errors. -short trims the per-session work, not the concurrency.
func TestThousandConcurrentSessions(t *testing.T) {
	requests := 3
	if testing.Short() {
		requests = 1
	}
	// A server sized for the offered scale: the inflight cap must admit the
	// full worker count, else this becomes a backpressure test (that's
	// TestOverloadShedsNotFails) instead of a capacity test.
	srv := serve.New(serve.Config{MaxSessions: 2048, MaxInflight: 2048})
	rep := run(t, srv, loadgen.Config{
		Sessions:           1000,
		RequestsPerSession: requests,
		Tenants:            16,
		MaxElems:           1 << 14,
		Seed:               1,
		Verify:             true,
	})
	if rep.Errors > 0 {
		t.Fatalf("%d request errors: %v", rep.Errors, rep.ErrorSamples)
	}
	if rep.Exhausted > 0 {
		t.Fatalf("%d requests exhausted their retry budget", rep.Exhausted)
	}
	if want := int64(1000 * requests); rep.Requests != want {
		t.Fatalf("completed %d requests, want %d", rep.Requests, want)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions left open after the run", n)
	}
}

// TestOverloadShedsNotFails pins the backpressure contract: while the
// server's single in-flight slot is pinned by a stalled request, every
// data-plane request must be shed with 429 (which the generator retries);
// once the slot frees, the whole load completes without a single error —
// overload degrades throughput, never correctness. The pinned slot makes
// the contention deterministic on any GOMAXPROCS.
func TestOverloadShedsNotFails(t *testing.T) {
	srv := serve.New(serve.Config{
		MaxSessions: 512,
		MaxInflight: 1,
	})
	release := pinInflightSlot(t, srv)

	var rep *loadgen.Report
	done := make(chan struct{})
	go func() {
		defer close(done)
		rep = run(t, srv, loadgen.Config{
			Sessions:           64,
			RequestsPerSession: 2,
			MaxElems:           1 << 12,
			Seed:               2,
			Verify:             true,
			RetryBudget:        100_000,
			Backoff:            100 * time.Microsecond,
		})
	}()
	// Hold the slot long enough that the workers demonstrably run into it,
	// then let the backlog drain.
	time.Sleep(100 * time.Millisecond)
	release()
	<-done

	if rep.Shed == 0 {
		t.Fatal("overloaded server shed nothing — admission control not engaging")
	}
	if rep.Errors > 0 {
		t.Fatalf("overload produced %d hard errors (want 429-and-retry only): %v",
			rep.Errors, rep.ErrorSamples)
	}
	if rep.Exhausted > 0 {
		t.Fatalf("%d requests gave up; retry budget should have absorbed the shed", rep.Exhausted)
	}
	if want := int64(64 * 2); rep.Requests != want {
		t.Fatalf("completed %d requests, want %d", rep.Requests, want)
	}
}

// pinInflightSlot occupies one data-plane admission slot with a compress
// request whose chunked body stalls until the returned release func runs.
func pinInflightSlot(t *testing.T, srv *serve.Server) (release func()) {
	t.Helper()
	h := srv.Handler()

	cfgBody, _ := json.Marshal(serve.SessionConfig{Tenant: "pin"})
	crec := httptest.NewRecorder()
	h.ServeHTTP(crec, httptest.NewRequest("POST", "/v1/sessions", bytes.NewReader(cfgBody)))
	if crec.Code != http.StatusCreated {
		t.Fatalf("pin session create: %d: %s", crec.Code, crec.Body)
	}
	var info serve.SessionInfo
	if err := json.Unmarshal(crec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	req := httptest.NewRequest("POST", "/v1/sessions/"+info.ID+"/compress", pr)
	req.ContentLength = -1 // force the chunked read path, which blocks on the pipe
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	// Feed the handler its first bytes so it is provably inside the body
	// read — and holding the slot — before the load starts.
	if _, err := pw.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	rel := func() {
		once.Do(func() {
			pw.Close()
			<-finished
		})
	}
	t.Cleanup(rel)
	return rel
}

// TestSessionCapExhaustionIsExhaustedNotError: when the session table itself
// is too small for the offered session count, workers burn their retry
// budget and report Exhausted — not hard errors, and never a hang.
func TestSessionCapExhaustionIsExhaustedNotError(t *testing.T) {
	srv := serve.New(serve.Config{MaxSessions: 4})
	rep := run(t, srv, loadgen.Config{
		Sessions:           16,
		RequestsPerSession: 1,
		MaxElems:           1 << 10,
		Seed:               3,
		RetryBudget:        2,
		KeepSessions:       true, // sessions stay open, so the cap stays binding
	})
	if rep.Shed == 0 {
		t.Fatal("no shed observed under a binding session cap")
	}
	if rep.Exhausted == 0 {
		t.Fatal("no worker exhausted its retry budget under a binding session cap")
	}
}

// TestChaosEveryPayloadHandled sends a corrupted blob on every iteration:
// all of them must resolve to rejected (clean 400) or accepted (still
// decodable), never to transport failures or 5xx.
func TestChaosEveryPayloadHandled(t *testing.T) {
	srv := serve.New(serve.Config{})
	rep := run(t, srv, loadgen.Config{
		Sessions:           32,
		RequestsPerSession: 4,
		MaxElems:           1 << 12,
		Seed:               4,
		ChaosRate:          1,
	})
	if rep.Errors > 0 {
		t.Fatalf("chaos produced %d hard errors: %v", rep.Errors, rep.ErrorSamples)
	}
	if rep.ChaosSent == 0 {
		t.Fatal("chaos rate 1 but no corrupted payloads sent")
	}
	if rep.ChaosRejected+rep.ChaosAccepted != rep.ChaosSent {
		t.Fatalf("chaos accounting leak: sent %d, rejected %d, accepted %d",
			rep.ChaosSent, rep.ChaosRejected, rep.ChaosAccepted)
	}
	if rep.ChaosRejected == 0 {
		t.Fatal("no corrupted payload was rejected — decoder validation suspect")
	}
}

// TestReportStatistics sanity-checks the derived numbers a CI dashboard
// consumes.
func TestReportStatistics(t *testing.T) {
	srv := serve.New(serve.Config{})
	rep := run(t, srv, loadgen.Config{
		Sessions:           8,
		RequestsPerSession: 4,
		MaxElems:           1 << 12,
		Seed:               5,
		Verify:             true,
	})
	if rep.Errors > 0 {
		t.Fatalf("errors: %v", rep.ErrorSamples)
	}
	if rep.BytesUncompressed == 0 || rep.BytesCompressed == 0 {
		t.Fatal("byte accounting missing")
	}
	if rep.MeanRatio <= 1 {
		t.Fatalf("mean compression ratio %.2f, want > 1", rep.MeanRatio)
	}
	if rep.CompressMBPerSec <= 0 {
		t.Fatal("throughput not computed")
	}
	if rep.LatencyP50 <= 0 || rep.LatencyP99 < rep.LatencyP50 {
		t.Fatalf("latency percentiles inconsistent: p50=%g p99=%g", rep.LatencyP50, rep.LatencyP99)
	}
}
