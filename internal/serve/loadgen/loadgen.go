// Package loadgen is the traffic generator for compso-serve: it drives
// thousands of concurrent compression sessions with heavy-tailed request
// sizes sampled from the modelzoo's real layer-size distributions, measures
// throughput and latency percentiles, accounts backpressure (429) separately
// from failures, and optionally injects deterministic payload corruption via
// internal/fault to chaos-test the decode path (corrupt payloads must come
// back as clean 4xx, never 5xx).
//
// The generator talks plain HTTP through a pluggable RoundTripper:
// cmd/compso-serve's loadgen subcommand uses a real TCP transport, while the
// smoke mode, tests and the perf harness drive the server's http.Handler
// in-process with HandlerTransport — no ports, no fd limits, which is what
// makes the 1000-session CI run practical.
package loadgen

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"compso/internal/fault"
	"compso/internal/modelzoo"
	"compso/internal/serve"
	"compso/internal/xrand"
)

// Config shapes one load-generation run.
type Config struct {
	// BaseURL targets the server, e.g. "http://127.0.0.1:8080". With an
	// in-process Transport any syntactically valid URL works.
	BaseURL string
	// Transport carries the requests (nil: a tuned TCP transport).
	Transport http.RoundTripper
	// Sessions is the number of concurrent sessions (default 64). Each
	// session runs in its own goroutine for its whole lifetime, so this is
	// also the concurrency level.
	Sessions int
	// RequestsPerSession is the compress(+decompress) round-trips per
	// session (default 10).
	RequestsPerSession int
	// Tenants spreads sessions across this many tenant names (default 4).
	Tenants int
	// Model names the modelzoo profile whose layer sizes form the
	// heavy-tailed request-size distribution (default "ResNet-50").
	Model string
	// MaxElems caps the per-request gradient length (default 1<<18).
	MaxElems int
	// Compressor is the session compressor family (default "compso").
	Compressor string
	// Codec is the session's lossless back-end ("" = server default).
	Codec string
	// Seed makes the run deterministic (sizes, values, chaos picks).
	Seed int64
	// ChaosRate corrupts this fraction of decompress payloads with
	// deterministic bit flips from internal/fault (0 disables chaos).
	ChaosRate float64
	// Verify checks that decompressed responses have the right length.
	Verify bool
	// RetryBudget bounds per-request retries after 429 (default 100).
	RetryBudget int
	// Backoff is the base delay after a 429 (default 1ms, linearly
	// increased per attempt; kept far below the server's Retry-After so
	// overload tests finish quickly).
	Backoff time.Duration
	// KeepSessions leaves sessions open at the end instead of DELETE-ing
	// them (for tests that inspect server state afterwards).
	KeepSessions bool
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 64
	}
	if c.RequestsPerSession <= 0 {
		c.RequestsPerSession = 10
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Model == "" {
		c.Model = "ResNet-50"
	}
	if c.MaxElems <= 0 {
		c.MaxElems = 1 << 18
	}
	if c.Compressor == "" {
		c.Compressor = "compso"
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 100
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.Transport == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConns = 0
		t.MaxIdleConnsPerHost = 256
		c.Transport = t
	}
	if c.BaseURL == "" {
		c.BaseURL = "http://compso-serve"
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	return c
}

// Report is the run's outcome.
type Report struct {
	Sessions  int   `json:"sessions"`
	Requests  int64 `json:"requests"` // completed compress round-trips
	Errors    int64 `json:"errors"`   // unexpected failures (5xx, transport, verify)
	Shed      int64 `json:"shed"`     // 429 responses observed (each retried)
	Exhausted int64 `json:"retry_exhausted"`
	// Chaos accounting: corrupted payloads must land in Rejected (clean
	// 4xx) or — when the flips happen to keep the blob decodable —
	// Accepted; anything else is an Error.
	ChaosSent     int64 `json:"chaos_sent"`
	ChaosRejected int64 `json:"chaos_rejected"`
	ChaosAccepted int64 `json:"chaos_accepted"`

	BytesUncompressed int64   `json:"bytes_uncompressed"`
	BytesCompressed   int64   `json:"bytes_compressed"`
	WallSeconds       float64 `json:"wall_seconds"`
	// CompressMBPerSec is uncompressed input through /compress per wall
	// second across all sessions.
	CompressMBPerSec float64 `json:"compress_mb_per_s"`
	MeanRatio        float64 `json:"mean_ratio"`

	LatencyP50 float64 `json:"latency_p50_s"`
	LatencyP95 float64 `json:"latency_p95_s"`
	LatencyP99 float64 `json:"latency_p99_s"`

	// ErrorSamples holds the first few distinct failure messages.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// run-wide mutable state shared by the session workers.
type runState struct {
	cfg      Config
	client   *http.Client
	profile  modelzoo.Profile
	injector *fault.Injector

	requests, errors, shed, exhausted       atomic.Int64
	chaosSent, chaosRejected, chaosAccepted atomic.Int64
	bytesUncompressed, bytesCompressed      atomic.Int64

	mu        sync.Mutex
	latencies []float64
	ratioSum  float64
	ratioN    int64
	samples   []string
}

func (st *runState) fail(format string, args ...any) {
	st.errors.Add(1)
	st.mu.Lock()
	if len(st.samples) < 8 {
		st.samples = append(st.samples, fmt.Sprintf(format, args...))
	}
	st.mu.Unlock()
}

// Run executes the configured load against the target and returns the
// aggregated report. It fails fast only on setup errors; request-level
// failures are counted in the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	profile, err := modelzoo.ByName(cfg.Model)
	if err != nil {
		return nil, err
	}
	st := &runState{
		cfg:     cfg,
		client:  &http.Client{Transport: cfg.Transport},
		profile: profile,
	}
	if cfg.ChaosRate > 0 {
		plan := &fault.Plan{Seed: cfg.Seed + 7, Corruption: fault.Corruption{Rate: 1}}
		inj, err := fault.NewInjector(plan)
		if err != nil {
			return nil, err
		}
		st.injector = inj
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st.session(ctx, i)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	rep := &Report{
		Sessions:          cfg.Sessions,
		Requests:          st.requests.Load(),
		Errors:            st.errors.Load(),
		Shed:              st.shed.Load(),
		Exhausted:         st.exhausted.Load(),
		ChaosSent:         st.chaosSent.Load(),
		ChaosRejected:     st.chaosRejected.Load(),
		ChaosAccepted:     st.chaosAccepted.Load(),
		BytesUncompressed: st.bytesUncompressed.Load(),
		BytesCompressed:   st.bytesCompressed.Load(),
		WallSeconds:       wall,
		ErrorSamples:      st.samples,
	}
	if wall > 0 {
		rep.CompressMBPerSec = float64(rep.BytesUncompressed) / wall / 1e6
	}
	if st.ratioN > 0 {
		rep.MeanRatio = st.ratioSum / float64(st.ratioN)
	}
	sort.Float64s(st.latencies)
	rep.LatencyP50 = percentile(st.latencies, 0.50)
	rep.LatencyP95 = percentile(st.latencies, 0.95)
	rep.LatencyP99 = percentile(st.latencies, 0.99)
	return rep, nil
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// session runs one session's whole lifetime: create, the request loop,
// delete.
func (st *runState) session(ctx context.Context, idx int) {
	cfg := st.cfg
	rng := xrand.NewSeeded(cfg.Seed + int64(idx)*1000003)
	tenant := fmt.Sprintf("t%d", idx%cfg.Tenants)

	id, err := st.createSession(ctx, tenant, cfg.Seed+int64(idx))
	if err != nil {
		st.fail("session %d create: %v", idx, err)
		return
	}
	if !cfg.KeepSessions {
		defer st.deleteSession(id)
	}

	for r := 0; r < cfg.RequestsPerSession; r++ {
		if ctx.Err() != nil {
			return
		}
		// Heavy-tailed sizes: layer parameter counts span ~3 orders of
		// magnitude within one profile; sampling layers uniformly
		// reproduces that tail.
		layer := rng.IntN(len(st.profile.Layers))
		grad := st.profile.SyntheticGradient(rng, layer, cfg.MaxElems)
		body := make([]byte, 4*len(grad))
		f32ToBytes(body, grad)

		t0 := time.Now()
		blob, err := st.roundTrip(ctx, id, "compress", body, ctFloat32, http.StatusOK)
		if err != nil {
			st.fail("session %d compress: %v", idx, err)
			continue
		}
		st.requests.Add(1)
		st.bytesUncompressed.Add(int64(len(body)))
		st.bytesCompressed.Add(int64(len(blob)))
		lat := time.Since(t0).Seconds()
		st.mu.Lock()
		st.latencies = append(st.latencies, lat)
		st.ratioSum += float64(len(body)) / float64(max(len(blob), 1))
		st.ratioN++
		st.mu.Unlock()

		// Chaos: corrupt a fraction of the blobs before sending them
		// back; a degraded client must get a clean rejection. Shed (429)
		// is backpressure, not a verdict — retry like every other request.
		if st.injector != nil && rng.Float64() < cfg.ChaosRate {
			st.chaosSent.Add(1)
			corrupted, _ := st.injector.CorruptBlob(blob, r, idx, 0)
			resp, code, err := st.postRetry(ctx, id, "decompress", corrupted, ctBlob)
			if err != nil {
				st.fail("session %d chaos decompress transport: %v", idx, err)
				continue
			}
			switch {
			case code == http.StatusBadRequest:
				st.chaosRejected.Add(1)
			case code == http.StatusOK:
				st.chaosAccepted.Add(1)
			default:
				st.fail("session %d chaos decompress: status %d: %s", idx, code, truncate(resp))
			}
			continue
		}

		restored, err := st.roundTrip(ctx, id, "decompress", blob, ctBlob, http.StatusOK)
		if err != nil {
			st.fail("session %d decompress: %v", idx, err)
			continue
		}
		if cfg.Verify && len(restored) != len(body) {
			st.fail("session %d verify: restored %d bytes, want %d", idx, len(restored), len(body))
		}
	}
}

// roundTrip posts with 429-aware retry and asserts the final status.
func (st *runState) roundTrip(ctx context.Context, id, op string, body []byte, contentType string, wantStatus int) ([]byte, error) {
	resp, code, err := st.postRetry(ctx, id, op, body, contentType)
	if err != nil {
		return nil, err
	}
	if code != wantStatus {
		return nil, fmt.Errorf("%s: status %d, want %d: %s", op, code, wantStatus, truncate(resp))
	}
	return resp, nil
}

// postRetry posts, absorbing 429 backpressure with backoff until the retry
// budget runs out; any other status is returned to the caller to judge.
func (st *runState) postRetry(ctx context.Context, id, op string, body []byte, contentType string) ([]byte, int, error) {
	for attempt := 0; ; attempt++ {
		resp, code, err := st.post(ctx, id, op, body, contentType)
		if err != nil {
			return nil, code, err
		}
		if code != http.StatusTooManyRequests {
			return resp, code, nil
		}
		st.shed.Add(1)
		if attempt >= st.cfg.RetryBudget {
			st.exhausted.Add(1)
			return nil, code, fmt.Errorf("retry budget exhausted after %d 429s", attempt+1)
		}
		select {
		case <-ctx.Done():
			return nil, code, ctx.Err()
		case <-time.After(st.cfg.Backoff * time.Duration(attempt/4+1)):
		}
	}
}

// post issues one data-plane request and returns body + status.
func (st *runState) post(ctx context.Context, id, op string, body []byte, contentType string) ([]byte, int, error) {
	url := st.cfg.BaseURL + "/v1/sessions/" + id + "/" + op
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := st.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return data, resp.StatusCode, nil
}

// createSession opens one session, retrying on shed (429).
func (st *runState) createSession(ctx context.Context, tenant string, seed int64) (string, error) {
	cfgBody, _ := json.Marshal(serve.SessionConfig{
		Tenant:     tenant,
		Compressor: st.cfg.Compressor,
		Codec:      st.cfg.Codec,
		Seed:       seed,
	})
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, st.cfg.BaseURL+"/v1/sessions", bytes.NewReader(cfgBody))
		if err != nil {
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := st.client.Do(req)
		if err != nil {
			return "", err
		}
		data, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			return "", readErr
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			st.shed.Add(1)
			if attempt >= st.cfg.RetryBudget {
				st.exhausted.Add(1)
				return "", fmt.Errorf("session create: retry budget exhausted")
			}
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(st.cfg.Backoff * time.Duration(attempt/4+1)):
			}
			continue
		}
		if resp.StatusCode != http.StatusCreated {
			return "", fmt.Errorf("session create: status %d: %s", resp.StatusCode, truncate(data))
		}
		var info serve.SessionInfo
		if err := json.Unmarshal(data, &info); err != nil {
			return "", fmt.Errorf("session create: bad response: %w", err)
		}
		return info.ID, nil
	}
}

func (st *runState) deleteSession(id string) {
	req, err := http.NewRequest(http.MethodDelete, st.cfg.BaseURL+"/v1/sessions/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := st.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func truncate(b []byte) string {
	const n = 160
	if len(b) > n {
		b = b[:n]
	}
	return strings.TrimSpace(string(b))
}

const (
	ctFloat32 = "application/x-compso-float32"
	ctBlob    = "application/x-compso-blob"
)

// f32ToBytes encodes little-endian float32s (client-side sibling of the
// server's converter).
func f32ToBytes(dst []byte, src []float32) {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}
