package serve_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"compso/internal/fault"
	"compso/internal/serve"
)

// TestCorruptedPayloadsNeverPanic drives every compressor family with
// corrupted, truncated and garbage decompress payloads. The contract under
// test: a hostile body is a clean 4xx, the handler never panics, and the
// session keeps working afterwards.
func TestCorruptedPayloadsNeverPanic(t *testing.T) {
	families := []serve.SessionConfig{
		{Compressor: "compso", Seed: 1},
		{Compressor: "compso", Codec: "zstd", Seed: 2},
		{Compressor: "qsgd", Seed: 3},
		{Compressor: "sz"},
		{Compressor: "cocktail", Seed: 4},
	}
	inj, err := fault.NewInjector(&fault.Plan{Seed: 99, Corruption: fault.Corruption{Rate: 1}})
	if err != nil {
		t.Fatal(err)
	}

	s := newServer(t, serve.Config{})
	for fi, cfg := range families {
		cfg.Tenant = "chaos"
		id := createSession(t, s, cfg)
		g := grad(2048, int64(fi+10))
		rec := do(t, s, "POST", "/v1/sessions/"+id+"/compress", f32Bytes(g), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: compress status %d: %s", cfg.Compressor, rec.Code, rec.Body)
		}
		blob := append([]byte(nil), rec.Body.Bytes()...)

		payloads := map[string][]byte{
			"empty":     {},
			"garbage":   {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03},
			"truncated": blob[:len(blob)/2],
		}
		if mut, ok := inj.CorruptBlob(blob, fi, 0, 0); ok {
			payloads["bitflip"] = mut
		}
		for name, p := range payloads {
			dec := do(t, s, "POST", "/v1/sessions/"+id+"/decompress", p, nil)
			// A bit-flipped blob can occasionally still decode (flip in
			// payload data, not structure); that is lossy-but-valid, not a
			// failure. Structural garbage must be rejected.
			if name == "bitflip" && dec.Code == http.StatusOK {
				continue
			}
			if dec.Code < 400 || dec.Code >= 500 {
				t.Errorf("%s/%s: status %d, want 4xx (body: %s)",
					cfg.Compressor, name, dec.Code, dec.Body)
			}
		}

		// The session survives hostile input: the valid blob still decodes.
		dec := do(t, s, "POST", "/v1/sessions/"+id+"/decompress", blob, nil)
		if dec.Code != http.StatusOK {
			t.Fatalf("%s: session broken after chaos: status %d: %s",
				cfg.Compressor, dec.Code, dec.Body)
		}
	}

	m := do(t, s, "GET", "/metrics", nil, nil)
	var payload struct {
		Counters map[string]float64 `json:"counters"`
	}
	if err := json.Unmarshal(m.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if n := payload.Counters["serve/panics"]; n != 0 {
		t.Fatalf("%g handler panics recorded", n)
	}
	if payload.Counters["serve/tenant/chaos/errors"] == 0 {
		t.Fatal("chaos rejections not counted in tenant error metric")
	}
}

// TestMalformedSessionConfigs covers hostile control-plane bodies.
func TestMalformedSessionConfigs(t *testing.T) {
	s := newServer(t, serve.Config{})
	for name, body := range map[string][]byte{
		"not-json":         []byte("{{{"),
		"bad-compressor":   []byte(`{"compressor":"lz4"}`),
		"bad-codec":        []byte(`{"codec":"no-such"}`),
		"bad-bits":         []byte(`{"compressor":"qsgd","bits":64}`),
		"bad-keep":         []byte(`{"compressor":"cocktail","keep":2.0}`),
		"negative-eb":      []byte(`{"eb_filter":-1}`),
		"adapt-non-compso": []byte(`{"compressor":"qsgd","adapt":{"total_iters":10}}`),
		"adapt-zero-iters": []byte(`{"adapt":{"total_iters":0}}`),
		"adapt-bad-sched":  []byte(`{"adapt":{"schedule":"cosine","total_iters":10}}`),
	} {
		rec := do(t, s, "POST", "/v1/sessions", body, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body: %s)", name, rec.Code, rec.Body)
		}
	}
	if n := s.SessionCount(); n != 0 {
		t.Fatalf("%d sessions leaked from rejected configs", n)
	}
}
