package serve

import (
	"encoding/json"
	"net/http"

	"compso/internal/obs"
)

// Metric names are namespaced "serve/..." for server-wide series and
// "serve/tenant/<name>/..." for per-tenant series, following the obs
// layer's slash-path convention. Handles are resolved once (per server or
// per tenant) and cached so the request hot path never takes the recorder's
// registry lock.

// serverMetrics are the server-wide handles.
type serverMetrics struct {
	requests        *obs.Counter // all data-plane requests admitted
	shedRequests    *obs.Counter // data-plane requests shed with 429
	shedSessions    *obs.Counter // session creates shed with 429
	sessionsCreated *obs.Counter
	sessionsReaped  *obs.Counter
	errors          *obs.Counter // 4xx client errors on the data plane
	panics          *obs.Counter // handler panics converted to 500
	sessionsLive    *obs.Gauge
	inflight        *obs.Gauge
}

func newServerMetrics(r *obs.Recorder) serverMetrics {
	return serverMetrics{
		requests:        r.Counter("serve/requests"),
		shedRequests:    r.Counter("serve/shed/requests"),
		shedSessions:    r.Counter("serve/shed/sessions"),
		sessionsCreated: r.Counter("serve/sessions/created"),
		sessionsReaped:  r.Counter("serve/sessions/reaped"),
		errors:          r.Counter("serve/errors"),
		panics:          r.Counter("serve/panics"),
		sessionsLive:    r.Gauge("serve/sessions/live"),
		inflight:        r.Gauge("serve/inflight"),
	}
}

// tenantMetrics are one tenant's handles: throughput, compression ratio,
// latency distributions and shed counts.
type tenantMetrics struct {
	compressCalls   *obs.Counter
	decompressCalls *obs.Counter
	bytesIn         *obs.Counter
	bytesOut        *obs.Counter
	errors          *obs.Counter
	shed            *obs.Counter
	ratio           *obs.Histogram
	compressLat     *obs.Histogram
	decompressLat   *obs.Histogram
}

func newTenantMetrics(r *obs.Recorder, tenant string) tenantMetrics {
	p := "serve/tenant/" + tenant + "/"
	return tenantMetrics{
		compressCalls:   r.Counter(p + "compress/calls"),
		decompressCalls: r.Counter(p + "decompress/calls"),
		bytesIn:         r.Counter(p + "bytes_in"),
		bytesOut:        r.Counter(p + "bytes_out"),
		errors:          r.Counter(p + "errors"),
		shed:            r.Counter(p + "shed"),
		ratio:           r.Histogram(p + "compress/ratio"),
		compressLat:     r.Histogram(p + "compress/latency_s"),
		decompressLat:   r.Histogram(p + "decompress/latency_s"),
	}
}

// handleMetrics serves the full obs metrics snapshot as JSON — the same
// schema compso-bench's -metrics flag writes, so existing tooling parses it
// unchanged.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.obs.WriteMetricsJSON(w); err != nil {
		// Headers are gone; nothing to do but note it.
		s.m.errors.Inc()
	}
}

// healthPayload is the /healthz response body.
type healthPayload struct {
	Status   string `json:"status"`
	Sessions int    `json:"sessions"`
	Inflight int    `json:"inflight"`
	Draining bool   `json:"draining"`
}

// handleHealthz reports liveness and the admission state; a draining server
// answers 503 so load balancers stop routing to it during shutdown.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	draining := s.Draining()
	p := healthPayload{
		Status:   "ok",
		Sessions: s.SessionCount(),
		Inflight: s.adm.Inflight(),
		Draining: draining,
	}
	w.Header().Set("Content-Type", "application/json")
	if draining {
		p.Status = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(p)
}
