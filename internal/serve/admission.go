package serve

import (
	"errors"
	"sync"
)

// errShed marks a request rejected by admission control; the HTTP layer
// translates it to 429 + Retry-After.
var errShed = errors.New("serve: admission limit reached")

// tenantState is the per-tenant admission ledger plus the tenant's cached
// metric handles. One instance exists per tenant name for the server's
// lifetime; sessions keep a pointer so the request hot path touches only
// atomics and never a map.
type tenantState struct {
	name     string
	sessions counterCap
	inflight counterCap
	m        tenantMetrics
}

// counterCap is an atomic counter with a fixed admission ceiling.
type counterCap struct {
	mu  sync.Mutex
	cur int
	cap int
}

// tryAcquire takes one slot unless the ceiling is reached.
func (c *counterCap) tryAcquire() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur >= c.cap {
		return false
	}
	c.cur++
	return true
}

func (c *counterCap) release() {
	c.mu.Lock()
	if c.cur > 0 {
		c.cur--
	}
	c.mu.Unlock()
}

func (c *counterCap) load() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// admission enforces the server's load ceilings: live sessions and
// in-flight data-plane requests, both globally and per tenant. Rejections
// are immediate — the server sheds load with 429 instead of queueing, so
// overload shows up at the client as backpressure rather than timeouts.
type admission struct {
	cfg Config

	globalSessions counterCap
	globalInflight counterCap

	mu      sync.Mutex
	tenants map[string]*tenantState
}

func newAdmission(cfg Config) *admission {
	a := &admission{cfg: cfg, tenants: make(map[string]*tenantState)}
	a.globalSessions.cap = cfg.MaxSessions
	a.globalInflight.cap = cfg.MaxInflight
	return a
}

// tenant returns the tenant's ledger, creating it on first sight. Tenant
// names are unauthenticated client input and each ledger pins metric series
// for the server's lifetime, so creation beyond cfg.MaxTenants is refused
// (second return false) and the caller sheds the request.
func (a *admission) tenant(name string) (*tenantState, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ts, ok := a.tenants[name]
	if !ok {
		if len(a.tenants) >= a.cfg.MaxTenants {
			return nil, false
		}
		ts = &tenantState{name: name}
		ts.sessions.cap = a.cfg.MaxTenantSessions
		ts.inflight.cap = a.cfg.MaxTenantInflight
		ts.m = newTenantMetrics(a.cfg.Obs, name)
		a.tenants[name] = ts
	}
	return ts, true
}

// acquireSession claims a session slot globally and for the tenant.
func (a *admission) acquireSession(ts *tenantState) bool {
	if !a.globalSessions.tryAcquire() {
		return false
	}
	if !ts.sessions.tryAcquire() {
		a.globalSessions.release()
		return false
	}
	return true
}

func (a *admission) releaseSession(ts *tenantState) {
	ts.sessions.release()
	a.globalSessions.release()
}

// acquireRequest claims an in-flight slot globally and for the tenant.
func (a *admission) acquireRequest(ts *tenantState) bool {
	if !a.globalInflight.tryAcquire() {
		return false
	}
	if !ts.inflight.tryAcquire() {
		a.globalInflight.release()
		return false
	}
	return true
}

func (a *admission) releaseRequest(ts *tenantState) {
	ts.inflight.release()
	a.globalInflight.release()
}

// Inflight returns the current global in-flight request count.
func (a *admission) Inflight() int { return a.globalInflight.load() }

// Sessions returns the current global live-session count as admission sees
// it.
func (a *admission) Sessions() int { return a.globalSessions.load() }
