// Package modelzoo provides the workload descriptions of the four DNNs the
// paper evaluates (ResNet-50, Mask R-CNN, BERT-large, GPT-neo-125M): the
// per-layer K-FAC factor dimensions and gradient sizes that drive every
// communication and compression experiment, a flop-based compute-time model
// for the simulated timeline (Figures 1 and 9), and synthetic K-FAC
// gradient generation with per-layer scale variation ("the gradients vary
// in data sizes and range across layers", §3 challenge 3).
//
// The real models cannot be trained in this environment; these profiles
// replicate exactly the properties the experiments depend on — tensor
// shapes, parameter counts, and value distributions.
package modelzoo

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"compso/internal/xrand"
)

// ErrUnknownModel is wrapped by ByName when no evaluation profile matches
// the requested name.
var ErrUnknownModel = errors.New("modelzoo: unknown model")

// Layer describes one K-FAC-preconditioned layer's factor dimensions.
type Layer struct {
	Name string
	// ADim is the activation factor dimension (fan-in + 1 for the bias, or
	// k²·c+1 for convolutions).
	ADim int
	// GDim is the gradient factor dimension (fan-out).
	GDim int
	// Pos is the number of spatial positions (convs) or sequence length
	// (transformers) per sample — the GEMM breadth that drives
	// forward/backward flops.
	Pos int
}

// Params returns the layer's parameter (and K-FAC gradient element) count.
func (l Layer) Params() int { return l.ADim * l.GDim }

// Profile is one evaluation workload.
type Profile struct {
	Name string
	// Layers lists the K-FAC layers in network order.
	Layers []Layer
	// BatchPerGPU is the per-GPU minibatch used in the experiments.
	BatchPerGPU int
	// Schedule is the learning-rate schedule family the paper trains the
	// model with: "StepLR" (ResNet-50, Mask R-CNN) or "SmoothLR" (BERT,
	// GPT-neo).
	Schedule string
	// GradScale seeds per-layer gradient magnitude variation.
	GradScale float64
	// EffFlops is the model's effective sustained GEMM rate on an A100 in
	// flops/second — FP32 for the CNNs, mixed precision (tensor cores) for
	// the transformers — calibrated so the Figure 1 breakdown matches the
	// paper's measured shares. 0 falls back to ComputeModel.Flops.
	EffFlops float64
}

// conv returns a convolution layer's profile entry.
func conv(name string, inC, outC, k, pos int) Layer {
	return Layer{Name: name, ADim: k*k*inC + 1, GDim: outC, Pos: pos}
}

// fc returns a dense layer's profile entry.
func fc(name string, in, out, pos int) Layer {
	return Layer{Name: name, ADim: in + 1, GDim: out, Pos: pos}
}

// ResNet50 returns the ResNet-50 profile (≈25.6M parameters over 54 K-FAC
// layers).
func ResNet50() Profile {
	var layers []Layer
	layers = append(layers, conv("conv1", 3, 64, 7, 112*112))
	type stage struct {
		blocks, mid, out, pos int
	}
	in := 64
	for si, st := range []stage{
		{3, 64, 256, 56 * 56},
		{4, 128, 512, 28 * 28},
		{6, 256, 1024, 14 * 14},
		{3, 512, 2048, 7 * 7},
	} {
		for b := 0; b < st.blocks; b++ {
			prefix := fmt.Sprintf("s%d.b%d", si+2, b)
			layers = append(layers,
				conv(prefix+".conv1", in, st.mid, 1, st.pos),
				conv(prefix+".conv2", st.mid, st.mid, 3, st.pos),
				conv(prefix+".conv3", st.mid, st.out, 1, st.pos),
			)
			if b == 0 {
				layers = append(layers, conv(prefix+".down", in, st.out, 1, st.pos))
			}
			in = st.out
		}
	}
	layers = append(layers, fc("fc", 2048, 1000, 1))
	return Profile{Name: "ResNet-50", Layers: layers, BatchPerGPU: 32, Schedule: "StepLR",
		GradScale: 1.0, EffFlops: 15e12}
}

// MaskRCNN returns the Mask R-CNN profile: ResNet-50 backbone plus FPN,
// RPN, box and mask heads (≈44M parameters).
func MaskRCNN() Profile {
	backbone := ResNet50()
	layers := backbone.Layers[:len(backbone.Layers)-1] // drop the fc head
	// FPN lateral and output convolutions.
	for i, c := range []int{256, 512, 1024, 2048} {
		layers = append(layers, conv(fmt.Sprintf("fpn.lat%d", i), c, 256, 1, 50*50))
		layers = append(layers, conv(fmt.Sprintf("fpn.out%d", i), 256, 256, 3, 50*50))
	}
	// RPN.
	layers = append(layers,
		conv("rpn.conv", 256, 256, 3, 50*50),
		conv("rpn.cls", 256, 3, 1, 50*50),
		conv("rpn.bbox", 256, 12, 1, 50*50),
	)
	// Box head (the 12544→1024 fc dominates the parameter count).
	layers = append(layers,
		fc("box.fc1", 7*7*256, 1024, 1),
		fc("box.fc2", 1024, 1024, 1),
		fc("box.cls", 1024, 81, 1),
		fc("box.bbox", 1024, 324, 1),
	)
	// Mask head.
	for i := 0; i < 4; i++ {
		layers = append(layers, conv(fmt.Sprintf("mask.conv%d", i), 256, 256, 3, 14*14))
	}
	layers = append(layers, conv("mask.pred", 256, 81, 1, 28*28))
	// Detection runs the backbone at ~800x800 inputs (vs 224 for
	// classification): scale the backbone position counts accordingly.
	for i := range layers[:len(backbone.Layers)-1] {
		layers[i].Pos *= 13
	}
	return Profile{Name: "Mask R-CNN", Layers: layers, BatchPerGPU: 4, Schedule: "StepLR",
		GradScale: 1.3, EffFlops: 15e12}
}

// BERTLarge returns the BERT-large profile: 24 encoder blocks of hidden
// size 1024 with 4096-wide FFNs (≈303M K-FAC-managed parameters; the
// embeddings are excluded, as in the reference distributed K-FAC systems).
func BERTLarge() Profile {
	var layers []Layer
	const h, ffn, seq = 1024, 4096, 512
	for b := 0; b < 24; b++ {
		p := fmt.Sprintf("enc%02d", b)
		layers = append(layers,
			fc(p+".q", h, h, seq), fc(p+".k", h, h, seq), fc(p+".v", h, h, seq),
			fc(p+".o", h, h, seq),
			fc(p+".ffn1", h, ffn, seq), fc(p+".ffn2", ffn, h, seq),
		)
	}
	layers = append(layers, fc("pooler", h, h, 1))
	return Profile{Name: "BERT-large", Layers: layers, BatchPerGPU: 8, Schedule: "SmoothLR",
		GradScale: 0.8, EffFlops: 27e12}
}

// GPTNeo125M returns the GPT-neo-125M profile: 12 decoder blocks of hidden
// size 768 with 3072-wide FFNs (≈85M K-FAC-managed parameters).
func GPTNeo125M() Profile {
	var layers []Layer
	const h, ffn, seq = 768, 3072, 2048
	for b := 0; b < 12; b++ {
		p := fmt.Sprintf("dec%02d", b)
		layers = append(layers,
			fc(p+".q", h, h, seq), fc(p+".k", h, h, seq), fc(p+".v", h, h, seq),
			fc(p+".o", h, h, seq),
			fc(p+".ffn1", h, ffn, seq), fc(p+".ffn2", ffn, h, seq),
		)
	}
	return Profile{Name: "GPT-neo-125M", Layers: layers, BatchPerGPU: 8, Schedule: "SmoothLR",
		GradScale: 1.1, EffFlops: 140e12}
}

// All returns the four evaluation profiles in the paper's order.
func All() []Profile {
	return []Profile{ResNet50(), MaskRCNN(), BERTLarge(), GPTNeo125M()}
}

// ByName looks up a profile. Unknown names return an error wrapping
// ErrUnknownModel.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("%w %q", ErrUnknownModel, name)
}

// TotalParams returns the total K-FAC gradient element count.
func (p Profile) TotalParams() int {
	n := 0
	for _, l := range p.Layers {
		n += l.Params()
	}
	return n
}

// GradBytes returns the total K-FAC gradient size in bytes (FP32).
func (p Profile) GradBytes() int { return 4 * p.TotalParams() }

// CovarianceFloats returns the element count of all Kronecker factors —
// the paper's "KFAC Allreduce" payload.
func (p Profile) CovarianceFloats() int {
	n := 0
	for _, l := range p.Layers {
		n += l.ADim*l.ADim + l.GDim*l.GDim
	}
	return n
}

// layerScale derives a deterministic per-layer magnitude scale in
// [0.4, 1.6]·GradScale, modeling the cross-layer range variation the
// layer-wise adaptive mechanism must handle.
func (p Profile) layerScale(layer int) float64 {
	h := uint64(layer+1) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	frac := float64(h%1000) / 1000
	return p.GradScale * (0.4 + 1.2*frac)
}

// SyntheticGradient fills a K-FAC-distributed gradient for the given layer
// (full size unless maxElems > 0 caps it, for sampling large layers).
func (p Profile) SyntheticGradient(rng *rand.Rand, layer, maxElems int) []float32 {
	n := p.Layers[layer].Params()
	if maxElems > 0 && n > maxElems {
		n = maxElems
	}
	out := make([]float32, n)
	xrand.KFACGradient(rng, out, p.layerScale(layer))
	return out
}

// ComputeModel holds the device constants for the simulated compute
// timeline.
type ComputeModel struct {
	// Flops is the effective sustained flop rate for GEMM-heavy
	// forward/backward work (flops/second).
	Flops float64
	// EigFlops is the effective rate for the eigendecompositions, which
	// run at far lower efficiency (small irregular kernels).
	EigFlops float64
	// StatSubsample caps the per-sample position count used for covariance
	// computation (the reference implementations subsample conv patches).
	StatSubsample int
}

// A100Compute returns the compute model calibrated to A100-class GPUs.
func A100Compute() ComputeModel {
	return ComputeModel{Flops: 15e12, EigFlops: 1.2e12, StatSubsample: 32}
}

// flopsFor returns the model-specific effective flop rate.
func (c ComputeModel) flopsFor(p Profile) float64 {
	if p.EffFlops > 0 {
		return p.EffFlops
	}
	return c.Flops
}

// FwdBwdTime returns the per-iteration forward+backward seconds for one
// GPU: ≈6 flops per parameter per (sample × position).
func (c ComputeModel) FwdBwdTime(p Profile) float64 {
	var flops float64
	for _, l := range p.Layers {
		flops += 6 * float64(l.Params()) * float64(l.Pos)
	}
	return flops * float64(p.BatchPerGPU) / c.flopsFor(p)
}

// CovTime returns the per-iteration covariance-computation seconds
// (aᵀa and gᵀg per layer with position subsampling).
func (c ComputeModel) CovTime(p Profile) float64 {
	var flops float64
	for _, l := range p.Layers {
		pos := l.Pos
		if pos > c.StatSubsample {
			pos = c.StatSubsample
		}
		rows := float64(p.BatchPerGPU * pos)
		flops += 2 * rows * float64(l.ADim*l.ADim+l.GDim*l.GDim)
	}
	return flops / c.flopsFor(p)
}

// EigTime returns the eigendecomposition seconds for one layer.
func (c ComputeModel) EigTime(p Profile, layer int) float64 {
	l := p.Layers[layer]
	a, g := float64(l.ADim), float64(l.GDim)
	return 9 * (a*a*a + g*g*g) / c.EigFlops
}

// PrecondTime returns the preconditioning (two-sided eigenbasis GEMM)
// seconds for one layer.
func (c ComputeModel) PrecondTime(p Profile, layer int) float64 {
	l := p.Layers[layer]
	a, g := float64(l.ADim), float64(l.GDim)
	return 4 * (a*a*g + a*g*g) / c.flopsFor(p)
}
