package modelzoo

import (
	"testing"

	"compso/internal/nn"
	"compso/internal/xrand"
)

func TestParameterCountsMatchPaperModels(t *testing.T) {
	// The profiles must land near the real models' parameter counts, since
	// those sizes drive every communication experiment.
	cases := []struct {
		profile  Profile
		min, max int
	}{
		{ResNet50(), 23e6, 28e6},
		{MaskRCNN(), 38e6, 50e6},
		{BERTLarge(), 280e6, 330e6},
		{GPTNeo125M(), 75e6, 95e6},
	}
	for _, c := range cases {
		got := c.profile.TotalParams()
		if got < c.min || got > c.max {
			t.Errorf("%s: %d params, want within [%d, %d]", c.profile.Name, got, c.min, c.max)
		}
	}
}

func TestResNet50LayerCount(t *testing.T) {
	p := ResNet50()
	// 1 stem + 16 bottlenecks × 3 + 4 downsamples + 1 fc = 54 K-FAC layers.
	if len(p.Layers) != 54 {
		t.Fatalf("ResNet-50 has %d K-FAC layers, want 54", len(p.Layers))
	}
}

func TestBERTLayerStructure(t *testing.T) {
	p := BERTLarge()
	if len(p.Layers) != 24*6+1 {
		t.Fatalf("BERT-large has %d layers, want %d", len(p.Layers), 24*6+1)
	}
	// FFN1 must be 1025×4096.
	if p.Layers[4].ADim != 1025 || p.Layers[4].GDim != 4096 {
		t.Fatalf("ffn1 dims %dx%d", p.Layers[4].ADim, p.Layers[4].GDim)
	}
}

func TestByName(t *testing.T) {
	for _, p := range All() {
		got, err := ByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Fatalf("ByName(%q): %v", p.Name, err)
		}
	}
	if _, err := ByName("AlexNet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSchedulesMatchPaper(t *testing.T) {
	want := map[string]string{
		"ResNet-50": "StepLR", "Mask R-CNN": "StepLR",
		"BERT-large": "SmoothLR", "GPT-neo-125M": "SmoothLR",
	}
	for _, p := range All() {
		if p.Schedule != want[p.Name] {
			t.Errorf("%s schedule %q, want %q", p.Name, p.Schedule, want[p.Name])
		}
	}
}

func TestAmortizedCovarianceSmallerThanGradient(t *testing.T) {
	// For square transformer layers the Kronecker factors are ~2x the
	// weight size, so the raw factor payload can exceed the gradient. The
	// paper's Figure 1 still shows KFAC Allreduce well below Allgather
	// because factors are refreshed every ~10 iterations (KAISA's stat
	// frequency); the amortized payload must be far below the per-iteration
	// gradient all-gather.
	const statFreq = 10
	for _, p := range All() {
		if amort := p.CovarianceFloats() / statFreq; amort >= p.TotalParams() {
			t.Errorf("%s: amortized covariance %d >= params %d", p.Name, amort, p.TotalParams())
		}
	}
}

func TestSyntheticGradientVariesByLayer(t *testing.T) {
	p := ResNet50()
	rng := xrand.NewSeeded(1)
	maxAbs := func(v []float32) float64 {
		var m float64
		for _, x := range v {
			a := float64(x)
			if a < 0 {
				a = -a
			}
			if a > m {
				m = a
			}
		}
		return m
	}
	g0 := p.SyntheticGradient(rng, 0, 50000)
	g9 := p.SyntheticGradient(rng, 9, 50000)
	r := maxAbs(g0) / maxAbs(g9)
	if r > 0.9 && r < 1.1 {
		t.Fatalf("layer scales too uniform: ratio %g", r)
	}
}

func TestSyntheticGradientCap(t *testing.T) {
	p := BERTLarge()
	g := p.SyntheticGradient(xrand.NewSeeded(2), 4, 1000)
	if len(g) != 1000 {
		t.Fatalf("capped gradient has %d elements", len(g))
	}
	full := p.SyntheticGradient(xrand.NewSeeded(2), 0, 0)
	if len(full) != p.Layers[0].Params() {
		t.Fatalf("uncapped gradient has %d elements, want %d", len(full), p.Layers[0].Params())
	}
}

func TestComputeTimesSane(t *testing.T) {
	cm := A100Compute()
	for _, p := range All() {
		fb := cm.FwdBwdTime(p)
		if fb <= 0 || fb > 10 {
			t.Errorf("%s: FwdBwdTime %g s implausible", p.Name, fb)
		}
		if cov := cm.CovTime(p); cov <= 0 || cov > fb {
			t.Errorf("%s: CovTime %g vs FwdBwd %g", p.Name, cov, fb)
		}
		var eig float64
		for i := range p.Layers {
			eig += cm.EigTime(p, i) + cm.PrecondTime(p, i)
		}
		if eig <= 0 {
			t.Errorf("%s: zero eigendecomposition time", p.Name)
		}
	}
}

func TestProxyTasksBuild(t *testing.T) {
	rng := xrand.NewSeeded(3)
	tasks := []*ProxyTask{
		ProxyResNet(rng, 1), ProxyMaskRCNN(rng, 2), ProxyBERT(rng, 3), ProxyGPT(rng, 4),
	}
	sq, data := ProxySQuAD(rng, 5)
	tasks = append(tasks, sq)
	for _, task := range tasks {
		x, y := task.Data.Sample(xrand.NewSeeded(6), task.Batch)
		if x.Rows != task.Batch {
			t.Fatalf("%s: batch rows %d", task.Name, x.Rows)
		}
		out := task.Model.Forward(x, true)
		l, grad := task.Loss.Loss(out, y)
		if l <= 0 {
			t.Fatalf("%s: initial loss %g", task.Name, l)
		}
		task.Model.ZeroGrad()
		task.Model.Backward(grad)
		names, layers := task.Model.KFACLayers()
		if len(layers) < 2 {
			t.Fatalf("%s: only %d K-FAC layers", task.Name, len(layers))
		}
		_ = names
	}
	if data.Classes() != 12*3 {
		t.Fatalf("SQuAD classes = %d", data.Classes())
	}
}

func TestProxyTaskLearns(t *testing.T) {
	// Every proxy must be learnable with plain SGD — otherwise the
	// convergence experiments are meaningless.
	builders := []func() *ProxyTask{
		func() *ProxyTask { return ProxyResNet(xrand.NewSeeded(10), 11) },
		func() *ProxyTask { return ProxyBERT(xrand.NewSeeded(12), 13) },
	}
	for _, build := range builders {
		task := build()
		rng := xrand.NewSeeded(14)
		var first, last float64
		for i := 0; i < 150; i++ {
			x, y := task.Data.Sample(rng, task.Batch)
			out := task.Model.Forward(x, true)
			l, grad := task.Loss.Loss(out, y)
			if i == 0 {
				first = l
			}
			last = l
			task.Model.ZeroGrad()
			task.Model.Backward(grad)
			for _, p := range task.Model.Params() {
				for j := range p.W.Data {
					p.W.Data[j] -= task.BaseLR * p.Grad.Data[j]
				}
			}
		}
		if last > first*0.7 {
			t.Errorf("%s: loss %g -> %g did not improve enough", task.Name, first, last)
		}
	}
}

func TestGradBytes(t *testing.T) {
	p := ResNet50()
	if p.GradBytes() != 4*p.TotalParams() {
		t.Fatal("GradBytes mismatch")
	}
}

func TestProxyModelsAreNNModels(t *testing.T) {
	// Compile-time-ish check that proxies expose KFAC params usable by the
	// optimizer stack.
	task := ProxyResNet(xrand.NewSeeded(20), 21)
	var model *nn.Sequential = task.Model
	if model.ParamCount() == 0 {
		t.Fatal("empty proxy model")
	}
}
