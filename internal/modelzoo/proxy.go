package modelzoo

import (
	"math/rand/v2"

	"compso/internal/dataset"
	"compso/internal/nn"
)

// Proxy trainable models: laptop-scale stand-ins preserving each paper
// model's architectural family (CNN vs transformer-style) for the
// convergence experiments (Figure 6, Table 1). The full-size models exist
// only as shape profiles; these train for real.

// ProxyTask couples a trainable model with its synthetic dataset and loss.
type ProxyTask struct {
	Name  string
	Model *nn.Sequential
	Data  dataset.Generator
	Loss  nn.Loss
	Batch int
	// BaseLR is the first-order (SGD) learning rate; KFACLR the K-FAC one.
	// Transformer proxies need a much smaller K-FAC step (their attention
	// factors are poorly conditioned early, so preconditioned updates are
	// large) and heavier damping — mirroring how the real K-FAC systems
	// tune per-model.
	BaseLR float64
	KFACLR float64
	// KFACDamping overrides the default damping when > 0.
	KFACDamping float64
	Classes     int // 0 for regression tasks
}

// ProxyResNet builds the ResNet-50 stand-in: a small CNN classifier on
// synthetic images.
func ProxyResNet(rng *rand.Rand, dataSeed int64) *ProxyTask {
	const c, h, w, classes = 1, 10, 10, 10
	conv1 := nn.NewConv2D(c, h, w, 6, 3, rng)
	conv2 := nn.NewConv2D(6, conv1.OH, conv1.OW, 8, 3, rng)
	model := nn.NewSequential(
		conv1,
		nn.NewReLU(),
		conv2,
		nn.NewReLU(),
		nn.NewDense(conv2.OutFeatures(), 32, rng),
		nn.NewReLU(),
		nn.NewDense(32, classes, rng),
	)
	return &ProxyTask{
		Name:  "ResNet-50",
		Model: model,
		Data:  dataset.NewImageClassification(classes, c, h, w, 0.8, dataSeed),
		Loss:  nn.SoftmaxCrossEntropy{}, Batch: 32,
		BaseLR: 0.03, KFACLR: 0.03, Classes: classes,
	}
}

// ProxyMaskRCNN builds the Mask R-CNN stand-in: a CNN bounding-box
// regressor evaluated by validation loss, as the paper reports Mask R-CNN.
func ProxyMaskRCNN(rng *rand.Rand, dataSeed int64) *ProxyTask {
	const c, h, w = 1, 12, 12
	conv1 := nn.NewConv2D(c, h, w, 6, 3, rng)
	conv2 := nn.NewConv2D(6, conv1.OH, conv1.OW, 8, 3, rng)
	model := nn.NewSequential(
		conv1,
		nn.NewReLU(),
		conv2,
		nn.NewReLU(),
		nn.NewDense(conv2.OutFeatures(), 32, rng),
		nn.NewReLU(),
		nn.NewDense(32, 4, rng),
	)
	_ = dataSeed
	return &ProxyTask{
		Name:  "Mask R-CNN",
		Model: model,
		Data:  dataset.NewDetection(c, h, w, 0.3),
		Loss:  nn.MSE{}, Batch: 32,
		BaseLR: 0.05, KFACLR: 0.05,
	}
}

// ProxyBERT builds the BERT-large stand-in: a genuine (tiny) transformer —
// token+position embeddings, a residual multi-head self-attention block
// whose Q/K/V/output projections K-FAC preconditions, per-token layer
// norm, and a pooled classification head.
func ProxyBERT(rng *rand.Rand, dataSeed int64) *ProxyTask {
	const vocab, seqLen, dim, classes = 24, 12, 16, 4
	model := nn.NewSequential(
		nn.NewEmbeddingSeq(vocab, dim, seqLen, rng),
		nn.NewSelfAttention(seqLen, dim, 2, rng),
		nn.NewSeqLayerNorm(seqLen, dim),
		nn.NewMeanPool(seqLen, dim),
		nn.NewDense(dim, 32, rng),
		nn.NewGELU(),
		nn.NewDense(32, classes, rng),
	)
	return &ProxyTask{
		Name:  "BERT-large",
		Model: model,
		Data:  dataset.NewTextClassification(classes, vocab, seqLen, dataSeed),
		Loss:  nn.SoftmaxCrossEntropy{}, Batch: 32,
		BaseLR: 0.05, KFACLR: 0.03, KFACDamping: 1.0, Classes: classes,
	}
}

// ProxyGPT builds the GPT-neo-125M stand-in: the same transformer family
// as ProxyBERT but evaluated by validation loss on a harder class
// structure, matching how the paper reports GPT-neo.
func ProxyGPT(rng *rand.Rand, dataSeed int64) *ProxyTask {
	const vocab, seqLen, dim, classes = 24, 12, 16, 6
	model := nn.NewSequential(
		nn.NewEmbeddingSeq(vocab, dim, seqLen, rng),
		nn.NewSelfAttention(seqLen, dim, 2, rng),
		nn.NewSeqLayerNorm(seqLen, dim),
		nn.NewMeanPool(seqLen, dim),
		nn.NewDense(dim, 48, rng),
		nn.NewGELU(),
		nn.NewDense(48, classes, rng),
	)
	return &ProxyTask{
		Name:  "GPT-neo-125M",
		Model: model,
		Data:  dataset.NewTextClassification(classes, vocab, seqLen, dataSeed+1),
		Loss:  nn.SoftmaxCrossEntropy{}, Batch: 32,
		BaseLR: 0.05, KFACLR: 0.03, KFACDamping: 1.0, Classes: classes,
	}
}

// ProxySQuAD builds the SQuAD fine-tuning stand-in: span extraction with a
// joint (start, length) softmax head, scored by F1/exact match (Table 1).
func ProxySQuAD(rng *rand.Rand, dataSeed int64) (*ProxyTask, *dataset.SpanExtraction) {
	const vocab, seqLen, maxLen = 16, 12, 3
	data := dataset.NewSpanExtraction(vocab, seqLen, maxLen)
	// Span extraction is position-sensitive, so the model consumes the raw
	// token values positionally (an embedding mean-pool would discard where
	// the trigger token sits).
	model := nn.NewSequential(
		nn.NewDense(seqLen, 96, rng),
		nn.NewGELU(),
		nn.NewDense(96, 96, rng),
		nn.NewGELU(),
		nn.NewDense(96, data.Classes(), rng),
	)
	_ = dataSeed
	return &ProxyTask{
		Name:  "BERT-large/SQuAD",
		Model: model,
		Data:  data,
		Loss:  nn.SoftmaxCrossEntropy{}, Batch: 32,
		BaseLR: 0.02, KFACLR: 0.02, Classes: data.Classes(),
	}, data
}
