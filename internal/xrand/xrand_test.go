package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := NewSeeded(42)
	b := NewSeeded(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewSeeded(43)
	same := true
	a2 := NewSeeded(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestFillStatistics(t *testing.T) {
	rng := NewSeeded(1)
	v := make([]float32, 200000)
	Fill(rng, v, 2.0)
	var sum, sumSq float64
	for _, x := range v {
		sum += float64(x)
		sumSq += float64(x) * float64(x)
	}
	n := float64(len(v))
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %g, want ~0", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("std = %g, want ~2", std)
	}
}

func TestFillUniformRange(t *testing.T) {
	rng := NewSeeded(2)
	v := make([]float32, 10000)
	FillUniform(rng, v, -3, 5)
	for i, x := range v {
		if x < -3 || x >= 5 {
			t.Fatalf("value %d = %g outside [-3, 5)", i, x)
		}
	}
}

func TestKFACGradientHasLargerRangeThanSGD(t *testing.T) {
	// §3 of the paper: K-FAC gradients have a larger range than SGD
	// gradients. The synthetic generators must reproduce that.
	rng := NewSeeded(3)
	kfac := make([]float32, 100000)
	sgd := make([]float32, 100000)
	KFACGradient(rng, kfac, 1.0)
	SGDGradient(rng, sgd, 1.0)
	maxAbs := func(v []float32) float64 {
		var m float64
		for _, x := range v {
			if a := math.Abs(float64(x)); a > m {
				m = a
			}
		}
		return m
	}
	if maxAbs(kfac) <= maxAbs(sgd) {
		t.Fatalf("K-FAC range %g <= SGD range %g", maxAbs(kfac), maxAbs(sgd))
	}
}

func TestKFACGradientNearZeroMass(t *testing.T) {
	// The filter branch of COMPSO relies on a large near-zero mass.
	rng := NewSeeded(4)
	v := make([]float32, 100000)
	KFACGradient(rng, v, 1.0)
	near := 0
	for _, x := range v {
		if math.Abs(float64(x)) < 4e-3 {
			near++
		}
	}
	frac := float64(near) / float64(len(v))
	if frac < 0.4 {
		t.Fatalf("near-zero fraction = %g, want >= 0.4", frac)
	}
}

func TestLaplaceSymmetricZeroMean(t *testing.T) {
	rng := NewSeeded(5)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += Laplace(rng, 1.0)
	}
	if mean := sum / float64(n); math.Abs(mean) > 0.02 {
		t.Fatalf("Laplace mean = %g, want ~0", mean)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := NewSeeded(6)
	idx := make([]int, 100)
	for i := range idx {
		idx[i] = i
	}
	Shuffle(rng, idx)
	seen := make(map[int]bool, len(idx))
	for _, v := range idx {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("lost elements: %d", len(seen))
	}
}
