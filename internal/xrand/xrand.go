// Package xrand centralizes the deterministic random-number generation used
// across the repository. Every stochastic component (stochastic rounding,
// synthetic data generation, model initialization, CocktailSGD sampling)
// takes an explicit *rand.Rand created here, so experiments are reproducible
// bit-for-bit from their seeds.
package xrand

import (
	"math"
	"math/rand/v2"
)

// New returns a PCG-based generator seeded from the two words.
func New(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}

// NewPCG returns the raw PCG source that NewSeeded(seed) wraps, for hot
// loops that want devirtualized draws: rand.New(NewPCG(seed)) produces
// exactly the NewSeeded(seed) stream, and drawing from the PCG directly
// (see PCGFloat64) advances that same stream.
func NewPCG(seed int64) *rand.PCG {
	return rand.NewPCG(uint64(seed), uint64(seed)*0x9e3779b97f4a7c15+1)
}

// PCGFloat64 draws a uniform [0,1) value from src with the exact formula
// (*rand.Rand).Float64 uses, so mixing PCGFloat64 calls with Float64 calls
// on a rand.Rand wrapping the same PCG yields one consistent stream.
func PCGFloat64(src *rand.PCG) float64 {
	return float64(src.Uint64()<<11>>11) / (1 << 53)
}

// NewSeeded returns a generator from a single int seed, convenient for
// experiment configs.
func NewSeeded(seed int64) *rand.Rand {
	return New(uint64(seed), uint64(seed)*0x9e3779b97f4a7c15+1)
}

// Fill fills dst with standard-normal float32 values scaled by sigma.
func Fill(rng *rand.Rand, dst []float32, sigma float64) {
	for i := range dst {
		dst[i] = float32(rng.NormFloat64() * sigma)
	}
}

// FillUniform fills dst with uniform values in [lo, hi).
func FillUniform(rng *rand.Rand, dst []float32, lo, hi float64) {
	for i := range dst {
		dst[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// KFACGradient fills dst with values following the heavy-tailed mixture the
// paper describes for K-FAC preconditioned gradients: most mass concentrated
// near zero (the part COMPSO's filter removes) plus a wider Gaussian tail
// and occasional large-magnitude entries — a larger dynamic range than SGD
// gradients (§3).
func KFACGradient(rng *rand.Rand, dst []float32, scale float64) {
	for i := range dst {
		u := rng.Float64()
		switch {
		case u < 0.85:
			// Near-zero bulk: tight Gaussian, almost entirely below the
			// paper's 4e-3 filter bound.
			dst[i] = float32(rng.NormFloat64() * 0.0015 * scale)
		case u < 0.98:
			// Body of the distribution.
			dst[i] = float32(rng.NormFloat64() * 0.04 * scale)
		default:
			// Heavy tail giving K-FAC gradients their large range.
			dst[i] = float32(rng.NormFloat64() * 0.12 * scale)
		}
	}
}

// SGDGradient fills dst with a narrower, lighter-tailed distribution typical
// of raw SGD gradients, used for contrast experiments.
func SGDGradient(rng *rand.Rand, dst []float32, scale float64) {
	for i := range dst {
		u := rng.Float64()
		if u < 0.85 {
			dst[i] = float32(rng.NormFloat64() * 0.01 * scale)
		} else {
			dst[i] = float32(rng.NormFloat64() * 0.05 * scale)
		}
	}
}

// Laplace returns a Laplace(0, b)-distributed value, used by the synthetic
// distribution experiments in the rounding analysis.
func Laplace(rng *rand.Rand, b float64) float64 {
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -b * math.Log(1-2*u)
	}
	return b * math.Log(1+2*u)
}

// Shuffle permutes idx in place.
func Shuffle(rng *rand.Rand, idx []int) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}
