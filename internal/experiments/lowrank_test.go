package experiments

import (
	"strings"
	"testing"
)

// TestLowRankJudgeQuick: the family-vs-COMPSO judge must produce finite
// rows for every profile and clear the acceptance bar (the planned mix
// beats all-COMPSO on CR at equal-or-better simulated step time on at
// least two profiles), plus a sane convergence leg.
func TestLowRankJudgeQuick(t *testing.T) {
	rep, tbl, err := LowRankJudge(true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows, want one per modelzoo profile", len(rep.Rows))
	}
	wins := 0
	for _, r := range rep.Rows {
		if r.Win {
			wins++
			if r.MixCR <= r.CompsoCR || r.MixStepSec > r.CompsoStepSec {
				t.Errorf("%s: marked Win but CR %.1f<=%.1f or step %.4f>%.4f",
					r.Model, r.MixCR, r.CompsoCR, r.MixStepSec, r.CompsoStepSec)
			}
		}
		if r.LowRankLayers <= 0 || r.LowRankLayers > r.Layers {
			t.Errorf("%s: %d/%d low-rank layers", r.Model, r.LowRankLayers, r.Layers)
		}
	}
	if wins < 2 {
		t.Fatalf("mix wins on %d profiles, acceptance needs >= 2", wins)
	}
	if !strings.Contains(tbl.String(), "BERT") {
		t.Fatalf("table missing profiles:\n%s", tbl)
	}
}
