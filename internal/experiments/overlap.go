package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"

	"compso/internal/cluster"
	"compso/internal/collective"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/gpusim"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/obs"
	"compso/internal/opt"
	"compso/internal/train"
	"compso/internal/xrand"
)

// The overlap judge: for every modelzoo profile, price one K-FAC+COMPSO
// training step on the tuned collective engine and the A100 device model
// twice — once under the sequential schedule (every collective blocks at
// its call site) and once under the overlap scheduler's pipeline
// (internal/train/overlap.go): fused gradient buckets and the covariance
// all-reduce launched before the owned-layer eigendecompositions, and the
// per-group preconditioned exchange software-pipelined so round r's
// all-gather rides under round r+1's precondition+compress compute. The
// COMPSO blob sizes are measured, not assumed — each layer's synthetic
// gradient is compressed for real and the blob scaled to the full layer.
// The optional validation leg reruns the proxy K-FAC trainer with overlap
// off and on and asserts the two answers are bit-identical while the
// overlap gauge moves, which is what CI's overlap-smoke job checks.

// overlapWorkers is the simulated GPU count the judge prices
// collectives for.
const overlapWorkers = 8

// overlapFusionBytes is the judged bucket cap — the trainer's default.
const overlapFusionBytes = 25 << 20

// overlapAggregationM is the judged layers-per-exchange-round grouping.
const overlapAggregationM = 2

// OverlapRow is one profile's judged comparison.
type OverlapRow struct {
	Model  string `json:"model"`
	Layers int    `json:"layers"`
	// Buckets is how many fused gradient buckets the 25 MB cap yields.
	Buckets int `json:"buckets"`
	// SeqStepSec and OverlapStepSec are engine-predicted seconds for one
	// K-FAC step under the sequential and the pipelined schedule.
	SeqStepSec     float64 `json:"seq_step_s"`
	OverlapStepSec float64 `json:"overlap_step_s"`
	// Speedup is SeqStepSec / OverlapStepSec.
	Speedup float64 `json:"speedup"`
	// HiddenFrac is the modeled fraction of collective latency hidden
	// behind compute (the overlap/hidden_comm_fraction gauge's analytic
	// twin).
	HiddenFrac float64 `json:"hidden_frac"`
	// Win: the pipelined schedule strictly beats the sequential one.
	Win bool `json:"win"`
}

// OverlapValidation is the proxy-trainer leg: the same K-FAC+COMPSO run
// with the scheduler off and on must produce bit-identical results while
// the overlap gauge rises from exactly zero.
type OverlapValidation struct {
	Iters        int     `json:"iters"`
	FinalLossOff float64 `json:"final_loss_off"`
	FinalLossOn  float64 `json:"final_loss_on"`
	BitIdentical bool    `json:"bit_identical"`
	// GaugeOff and GaugeOn are the overlap/hidden_comm_fraction gauge
	// values of the two runs.
	GaugeOff float64 `json:"gauge_off"`
	GaugeOn  float64 `json:"gauge_on"`
}

// OverlapReport is the full judge output.
type OverlapReport struct {
	Workers     int                `json:"workers"`
	FusionBytes int                `json:"fusion_bytes"`
	Rows        []OverlapRow       `json:"rows"`
	Validation  *OverlapValidation `json:"validation,omitempty"`
}

// OverlapJudge runs the judge. quick shrinks the per-layer gradient
// samples and the validation budget for CI smoke runs; withValidation
// adds the proxy-trainer bit-identity leg.
func OverlapJudge(quick, withValidation bool) (*OverlapReport, *Table, error) {
	maxElems := 1 << 18
	iters := 10
	if quick {
		maxElems = 1 << 15
		iters = 6
	}
	eng := cluster.EngineFor(cluster.Platform1(), overlapWorkers)
	dev := gpusim.A100()
	cm := modelzoo.A100Compute()
	rng := xrand.NewSeeded(8)
	comp := compress.NewCOMPSO(8)

	rep := &OverlapReport{Workers: overlapWorkers, FusionBytes: overlapFusionBytes}
	for _, prof := range modelzoo.All() {
		row, err := judgeProfile(prof, eng, dev, cm, rng, comp, maxElems)
		if err != nil {
			return nil, nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}

	if withValidation {
		v, err := overlapValidation(iters)
		if err != nil {
			return nil, nil, err
		}
		rep.Validation = v
	}
	return rep, overlapTable(rep), nil
}

// judgeProfile prices one profile's K-FAC step under both schedules with
// a two-cursor pipeline model: a compute cursor (the rank's clock) and a
// wire cursor (the fabric, collectives serialized in launch order). A
// collective launched at compute time t starts on the wire at
// max(t, wireCursor); a wait advances the compute cursor to
// max(computeCursor, collective end).
func judgeProfile(prof modelzoo.Profile, eng *collective.Engine, dev gpusim.Device, cm modelzoo.ComputeModel, rng *rand.Rand, comp *compress.COMPSO, maxElems int) (OverlapRow, error) {
	nL := len(prof.Layers)

	// Measured COMPSO blob bytes per layer, scaled to full layer size.
	blobBytes := make([]float64, nL)
	for i := range prof.Layers {
		params := prof.Layers[i].Params()
		sample := prof.SyntheticGradient(rng, i, maxElems)
		blob, err := comp.Compress(sample)
		if err != nil {
			return OverlapRow{}, fmt.Errorf("overlap: %s layer %d: %w", prof.Name, i, err)
		}
		blobBytes[i] = float64(len(blob)) * float64(params) / float64(len(sample))
	}

	// Shared compute costs.
	fwdbwd := cm.FwdBwdTime(prof)
	cov := cm.CovTime(prof)
	var decodeAll float64
	for i := range prof.Layers {
		decodeAll += float64(overlapWorkers-1) / float64(overlapWorkers) *
			dev.DecompressTime(gpusim.COMPSOFused(), prof.Layers[i].Params())
	}

	// Round-robin layer ownership, exactly as the trainer assigns it.
	owned := make([][]int, overlapWorkers)
	for i := 0; i < nL; i++ {
		r := i % overlapWorkers
		owned[r] = append(owned[r], i)
	}
	// Per-rank owned compute: eigendecompositions, then per-round
	// precondition+compress. The step is paced by the busiest rank.
	var maxEig, maxPrecond float64
	maxRounds := 0
	for r := range owned {
		var eig, pre float64
		for _, li := range owned[r] {
			eig += cm.EigTime(prof, li)
			pre += cm.PrecondTime(prof, li) +
				dev.Time(gpusim.COMPSOFused(), prof.Layers[li].Params())
		}
		if eig > maxEig {
			maxEig = eig
		}
		if pre > maxPrecond {
			maxPrecond = pre
		}
		if g := len(compso.Groups(len(owned[r]), overlapAggregationM)); g > maxRounds {
			maxRounds = g
		}
	}
	// Per-round costs for the pipelined exchange: the busiest rank's
	// groups pace both the compute and the all-gather payload.
	roundCompute := make([]float64, maxRounds)
	roundBytes := make([]float64, maxRounds)
	for r := range owned {
		groups := compso.Groups(len(owned[r]), overlapAggregationM)
		for gi, g := range groups {
			var c, b float64
			for _, idx := range g {
				li := owned[r][idx]
				c += cm.PrecondTime(prof, li) +
					dev.Time(gpusim.COMPSOFused(), prof.Layers[li].Params())
				b += blobBytes[li]
			}
			if c > roundCompute[gi] {
				roundCompute[gi] = c
			}
			if b > roundBytes[gi] {
				roundBytes[gi] = b
			}
		}
	}
	var frameBytes float64 // one rank's full sequential all-gather payload
	for _, b := range roundBytes {
		frameBytes += b
	}

	// Fused gradient buckets over the raw FP32 gradients (the K-FAC grad
	// all-reduce is uncompressed in both schedules).
	sizes := make([]float64, nL)
	var gradBytes float64
	for i := range prof.Layers {
		sizes[i] = 4 * float64(prof.Layers[i].Params())
		gradBytes += sizes[i]
	}
	buckets := fuseBytes(sizes, overlapFusionBytes)

	covBytes := 4 * prof.CovarianceFloats()
	_, covAR := eng.PredictAllReduce(covBytes)
	_, gradAR := eng.PredictAllReduce(int(gradBytes))
	_, seqAG := eng.PredictAllGather(int(frameBytes))

	// Sequential schedule: every stage serializes.
	seq := fwdbwd + cov + covAR + gradAR + maxEig + maxPrecond + seqAG + decodeAll

	// Pipelined schedule.
	compCursor := fwdbwd + cov
	wire := compCursor
	var commTotal float64
	// Covariance all-reduce, then the gradient buckets, queue on the wire.
	_, s := eng.PredictAllReduce(covBytes)
	wire += s
	commTotal += s
	covEnd := wire
	for _, b := range buckets {
		_, s := eng.PredictAllReduce(int(b))
		wire += s
		commTotal += s
	}
	bucketsEnd := wire
	// Eigendecompositions hide the collectives in flight.
	compCursor += maxEig
	// factor-sync, then grad-install.
	compCursor = math.Max(compCursor, covEnd)
	compCursor = math.Max(compCursor, bucketsEnd)
	// Pipelined precondition exchange: round r's all-gather launches as
	// soon as its compute is done and rides under round r+1's compute.
	for r := 0; r < maxRounds; r++ {
		compCursor += roundCompute[r]
		start := math.Max(compCursor, wire)
		_, s := eng.PredictAllGather(int(roundBytes[r]))
		wire = start + s
		commTotal += s
	}
	compCursor = math.Max(compCursor, wire)
	compCursor += decodeAll
	overlap := compCursor

	computeTotal := fwdbwd + cov + maxEig + maxPrecond + decodeAll
	exposed := overlap - computeTotal
	hidden := 0.0
	if commTotal > 0 {
		hidden = 1 - exposed/commTotal
		hidden = math.Min(1, math.Max(0, hidden))
	}

	row := OverlapRow{
		Model:          prof.Name,
		Layers:         nL,
		Buckets:        len(buckets),
		SeqStepSec:     seq,
		OverlapStepSec: overlap,
		Speedup:        seq / overlap,
		HiddenFrac:     hidden,
	}
	row.Win = row.OverlapStepSec < row.SeqStepSec
	return row, nil
}

// fuseBytes is the judge's mirror of the trainer's greedy bucketer:
// consecutive sizes fused until the cap, oversize entries alone.
func fuseBytes(sizes []float64, limit float64) []float64 {
	var out []float64
	cur := 0.0
	for _, s := range sizes {
		if cur > 0 && cur+s > limit {
			out = append(out, cur)
			cur = 0
		}
		cur += s
	}
	if cur > 0 {
		out = append(out, cur)
	}
	return out
}

// overlapValidation trains the K-FAC+COMPSO proxy twice — scheduler off,
// then on — and checks the bit-identity contract plus the gauge movement
// the simulated trainer should show.
func overlapValidation(iters int) (*OverlapValidation, error) {
	run := func(on bool) (*train.Result, float64, error) {
		builder := func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyResNet(rng, 5) }
		probe := builder(xrand.NewSeeded(0))
		rec := obs.NewRecorder()
		cfg := train.Config{
			BuildTask: builder,
			Workers:   4,
			Platform:  cluster.Platform1(),
			Iters:     iters,
			Seed:      88,
			Schedule:  &opt.StepLR{BaseLR: probe.BaseLR, Drops: []int{iters / 2}, Gamma: 0.1},
			StatFreq:  1,
			UseKFAC:   true,
			KFAC:      kfac.DefaultConfig(),
			NewCompressor: func(rank int) compress.Compressor {
				return compso.NewCompressor(nil, rank, 88)
			},
			AggregationM: overlapAggregationM,
			Obs:          rec,
			Overlap:      on,
		}
		res, err := train.Run(cfg)
		if err != nil {
			return nil, 0, err
		}
		return res, res.Metrics.Gauges["overlap/hidden_comm_fraction"], nil
	}
	off, gOff, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("overlap: validation off: %w", err)
	}
	on, gOn, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("overlap: validation on: %w", err)
	}
	identical := off.FinalLoss == on.FinalLoss && off.FinalAcc == on.FinalAcc &&
		len(off.Losses) == len(on.Losses)
	for i := range off.Losses {
		if !identical || off.Losses[i] != on.Losses[i] {
			identical = false
			break
		}
	}
	return &OverlapValidation{
		Iters:        iters,
		FinalLossOff: off.FinalLoss,
		FinalLossOn:  on.FinalLoss,
		BitIdentical: identical,
		GaugeOff:     gOff,
		GaugeOn:      gOn,
	}, nil
}

// runOverlapPerf appends the overlap judge's engine-predicted step times
// to the bench-perf report as an "overlap" row group — two rows per
// modelzoo profile (sequential and pipelined schedule), NsPerOp carrying
// the predicted step nanoseconds so CI can diff schedules across PRs
// with the same tooling it uses for wall-clock rows.
func runOverlapPerf(quick bool, rep *PerfReport) error {
	maxElems := 1 << 18
	if quick {
		maxElems = 1 << 15
	}
	eng := cluster.EngineFor(cluster.Platform1(), overlapWorkers)
	dev := gpusim.A100()
	cm := modelzoo.A100Compute()
	rng := xrand.NewSeeded(8)
	comp := compress.NewCOMPSO(8)
	for _, prof := range modelzoo.All() {
		row, err := judgeProfile(prof, eng, dev, cm, rng, comp, maxElems)
		if err != nil {
			return err
		}
		slug := strings.ToLower(strings.ReplaceAll(prof.Name, " ", "-"))
		rep.Rows = append(rep.Rows,
			PerfRow{Name: "overlap/" + slug + "/sequential", Group: "overlap", NsPerOp: row.SeqStepSec * 1e9},
			PerfRow{Name: "overlap/" + slug + "/pipelined", Group: "overlap", NsPerOp: row.OverlapStepSec * 1e9},
		)
	}
	return nil
}

// overlapTable renders the judge report.
func overlapTable(rep *OverlapReport) *Table {
	t := &Table{
		Title: fmt.Sprintf("Overlap scheduler judge (%d GPUs, %d MB buckets): pipelined vs sequential K-FAC step",
			rep.Workers, rep.FusionBytes>>20),
		Headers: []string{"Model", "Layers", "Buckets", "Seq s/step", "Overlap s/step", "Speedup", "Hidden", "Win"},
	}
	for _, r := range rep.Rows {
		win := ""
		if r.Win {
			win = "*"
		}
		t.Rows = append(t.Rows, []string{
			r.Model, fmt.Sprint(r.Layers), fmt.Sprint(r.Buckets),
			fmtF(r.SeqStepSec*1e3, 3) + " ms", fmtF(r.OverlapStepSec*1e3, 3) + " ms",
			fmtF(r.Speedup, 2) + "x", fmtF(100*r.HiddenFrac, 1) + "%",
			win,
		})
	}
	return t
}

// Validate enforces the judge's acceptance bar: the pipelined schedule
// must beat the sequential one on at least three of the four modelzoo
// profiles with finite metrics, and when the validation leg ran, the two
// trainer answers must be bit-identical with the gauge at exactly zero
// sequentially and strictly positive overlapped.
func (rep *OverlapReport) Validate() error {
	wins := 0
	for _, r := range rep.Rows {
		for _, v := range []float64{r.SeqStepSec, r.OverlapStepSec, r.Speedup} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				return fmt.Errorf("overlap: %s has a non-finite or non-positive metric", r.Model)
			}
		}
		if math.IsNaN(r.HiddenFrac) || r.HiddenFrac < 0 || r.HiddenFrac > 1 {
			return fmt.Errorf("overlap: %s hidden fraction %g out of [0,1]", r.Model, r.HiddenFrac)
		}
		if r.Win {
			wins++
		}
	}
	if wins < 3 {
		return fmt.Errorf("overlap: pipelined schedule wins on %d profiles, need >= 3", wins)
	}
	v := rep.Validation
	if v == nil {
		return nil
	}
	if !v.BitIdentical {
		return fmt.Errorf("overlap: validation runs differ (off %.6f vs on %.6f)",
			v.FinalLossOff, v.FinalLossOn)
	}
	for _, l := range []float64{v.FinalLossOff, v.FinalLossOn} {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("overlap: non-finite validation loss")
		}
	}
	if v.GaugeOff != 0 {
		return fmt.Errorf("overlap: sequential gauge %g, want exactly 0", v.GaugeOff)
	}
	if v.GaugeOn <= 0 || v.GaugeOn > 1 {
		return fmt.Errorf("overlap: overlapped gauge %g, want in (0, 1]", v.GaugeOn)
	}
	return nil
}
