package experiments

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"os"
	"sort"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/compso"
	"compso/internal/fault"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/obs"
	"compso/internal/opt"
	"compso/internal/train"
)

// ChaosRow is one fault scenario's outcome in the chaos matrix.
type ChaosRow struct {
	Scenario  string
	CommSec   float64 // mean per-worker seconds across all collective algorithms
	FinalLoss float64
	MeanCR    float64
	// Fault-recovery tallies (zero on the fault-free baseline).
	Corrupted, Retries, Fallbacks, Retunes int64
	// Worker-crash tallies: crashes suffered and checkpoint restores that
	// recovered them (scratch restarts recover without a restore).
	WorkerCrashes, Restores int64
}

// chaosScenario names one fault plan of the matrix. A nil plan is the
// fault-free baseline.
type chaosScenario struct {
	name string
	plan *fault.Plan
}

// chaosScenarios builds the matrix: a clean baseline, then each fault class
// in isolation, then everything at once. Plans share one seed so runs are
// reproducible end to end.
func chaosScenarios() []chaosScenario {
	const seed = 2025
	straggler := []fault.Straggler{{Rank: 3, Factor: 2.5, FromStep: 2}}
	links := []fault.LinkFault{{
		SrcNode: -1, DstNode: -1, Link: "inter",
		AlphaFactor: 3, BetaFactor: 2, Jitter: 0.3,
	}}
	corrupt := fault.Corruption{Rate: 0.25, BitFlips: 4}
	guard := fault.Guard{Ratio: 1.25, Patience: 2}
	return []chaosScenario{
		{name: "baseline", plan: nil},
		{name: "straggler", plan: &fault.Plan{Seed: seed, Stragglers: straggler, Guard: guard}},
		{name: "flaky-link", plan: &fault.Plan{Seed: seed, Links: links, Guard: guard}},
		{name: "corruption", plan: &fault.Plan{Seed: seed, Corruption: corrupt, MaxRetries: 1}},
		// Crash steps sit early so the scenarios fire at every iteration
		// budget the matrix runs under (the CI default included), and one
		// past the checkpoint cadence so recovery replays a full step's
		// collectives — lost work must show up in the accumulated comm time.
		{name: "crash-single", plan: &fault.Plan{Seed: seed, Crashes: []fault.WorkerCrash{
			{Rank: 5, Point: fault.CrashMidStep, Step: 3},
		}}},
		{name: "crash-repeat", plan: &fault.Plan{Seed: seed, Crashes: []fault.WorkerCrash{
			{Rank: 2, Point: fault.CrashMidCollective, Step: 2, Every: 1, Times: 2, CollSite: 1},
		}}},
		{name: "combined", plan: &fault.Plan{
			Seed: seed, Stragglers: straggler, Links: links,
			Corruption: corrupt, MaxRetries: 1, Guard: guard,
		}},
	}
}

// chaosConfig is the shared training job of every scenario: 8 simulated
// GPUs on Platform 1, distributed K-FAC with the COMPSO compressor.
func chaosConfig(iters int, rec *obs.Recorder, plan *fault.Plan) train.Config {
	const seed = int64(42)
	schedule := &opt.StepLR{BaseLR: 0.03, Drops: []int{iters * 2 / 3}, Gamma: 0.1}
	return train.Config{
		BuildTask: func(rng *rand.Rand) *modelzoo.ProxyTask {
			return modelzoo.ProxyResNet(rng, seed)
		},
		Workers:  8,
		Platform: cluster.Platform1(),
		Iters:    iters,
		Seed:     seed,
		Schedule: schedule,
		UseKFAC:  true,
		KFAC:     kfac.DefaultConfig(),
		NewCompressor: func(rank int) compress.Compressor {
			return compso.NewCompressor(nil, rank, seed)
		},
		AggregationM: 4,
		Obs:          rec,
		Fault:        plan,
		Checkpoint:   ckptFor(plan),
	}
}

// ckptFor enables checkpointing for scenarios whose plan can lose a
// worker; the other scenarios keep the checkpoint-free fast path. The
// cadence is fixed at 2 so the scenarios' crash steps land one past a
// save at every budget the matrix runs under: recovery then replays a
// full step of collectives and the lost work is measurable.
func ckptFor(plan *fault.Plan) train.CheckpointConfig {
	if !plan.HasCrashes() {
		return train.CheckpointConfig{}
	}
	return train.CheckpointConfig{Interval: 2}
}

// ChaosMatrix runs the fault-injection matrix: the same instrumented 8-GPU
// K-FAC + COMPSO job under a clean fabric, a persistent straggler, degraded
// inter-node links, payload corruption, and all of them combined. Every
// scenario self-checks that its collective span sums still reconcile with
// the run's AlgSeconds attribution within 1% — fault injection perturbs the
// timeline, never the accounting. When tracePath is non-empty the combined
// scenario's Chrome trace is schema-validated and written there.
//
// iters <= 0 selects a small default budget suitable for CI.
func ChaosMatrix(iters int, tracePath string) ([]ChaosRow, *Table, error) {
	if iters <= 0 {
		iters = 12
	}
	var rows []ChaosRow
	for _, sc := range chaosScenarios() {
		rec := obs.NewRecorder()
		cfg := chaosConfig(iters, rec, sc.plan)
		res, err := train.Run(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("chaos %s: %w", sc.name, err)
		}
		snap := res.Metrics
		if snap == nil {
			return nil, nil, fmt.Errorf("chaos %s: no metrics snapshot", sc.name)
		}
		perWorker := map[string]float64{}
		for k, v := range snap.AlgSeconds() {
			perWorker[k] = v / float64(cfg.Workers)
		}
		if err := obs.ReconcileAlgSeconds(perWorker, res.AlgSeconds, 0.01); err != nil {
			return nil, nil, fmt.Errorf("chaos %s: span/AlgSeconds reconciliation failed: %w", sc.name, err)
		}
		row := ChaosRow{
			Scenario:  sc.name,
			CommSec:   sumValues(res.AlgSeconds),
			FinalLoss: res.FinalLoss,
			MeanCR:    res.MeanCR,
		}
		if ev := res.FaultEvents; ev != nil {
			row.Corrupted = ev["corrupted"]
			row.Retries = ev["retries"]
			row.Fallbacks = ev["fallbacks"]
			row.Retunes = ev["retunes"]
			row.WorkerCrashes = ev["worker_crash"]
			row.Restores = ev["restores"]
		}
		rows = append(rows, row)

		if sc.name == "combined" && tracePath != "" {
			var buf bytes.Buffer
			if err := snap.WriteChromeTrace(&buf); err != nil {
				return nil, nil, fmt.Errorf("chaos trace: %w", err)
			}
			if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
				return nil, nil, fmt.Errorf("chaos trace failed schema validation: %w", err)
			}
			if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
				return nil, nil, fmt.Errorf("writing chaos trace: %w", err)
			}
		}
	}

	tb := &Table{
		Title:   "Chaos matrix: fault injection vs recovery (8 GPUs, K-FAC + COMPSO)",
		Headers: []string{"scenario", "comm s", "final loss", "mean CR", "corrupted", "retries", "fallbacks", "retunes", "crashes", "restores"},
	}
	for _, r := range rows {
		tb.Rows = append(tb.Rows, []string{
			r.Scenario,
			fmt.Sprintf("%.4f", r.CommSec),
			fmt.Sprintf("%.4f", r.FinalLoss),
			fmt.Sprintf("%.2f", r.MeanCR),
			fmt.Sprintf("%d", r.Corrupted),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Fallbacks),
			fmt.Sprintf("%d", r.Retunes),
			fmt.Sprintf("%d", r.WorkerCrashes),
			fmt.Sprintf("%d", r.Restores),
		})
	}
	return rows, tb, nil
}

func sumValues(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}
