package experiments

import (
	"fmt"
	"math/rand/v2"

	"compso/internal/cluster"
	"compso/internal/compress"
	"compso/internal/dataset"
	"compso/internal/kfac"
	"compso/internal/modelzoo"
	"compso/internal/opt"
	"compso/internal/train"
	"compso/internal/xrand"
)

// Figure 3: compression ratio and validation accuracy of SZ-1E-1,
// QSGD-4bit, SZ-4E-3 and QSGD-8bit applied to K-FAC gradients — the
// motivation experiment showing the CR/accuracy trade-off that COMPSO
// resolves. CRs are measured on the full-size model profiles; accuracies
// on the trainable proxies.

// Fig3Row is one compressor's result on one model.
type Fig3Row struct {
	Model, Method string
	CR            float64
	Accuracy      float64 // percent
}

// fig3Methods returns the Figure 3 compressor ladder in plot order.
func fig3Methods() []struct {
	name string
	mk   func(rank int) compress.Compressor
} {
	return []struct {
		name string
		mk   func(rank int) compress.Compressor
	}{
		{"SZ 1E-1", func(rank int) compress.Compressor { return compress.NewSZ(1e-1) }},
		{"QSGD 4bit", func(rank int) compress.Compressor { return compress.NewQSGD(4, int64(rank)+40) }},
		{"SZ 4E-3", func(rank int) compress.Compressor { return compress.NewSZ(4e-3) }},
		{"QSGD 8bit", func(rank int) compress.Compressor { return compress.NewQSGD(8, int64(rank)+80) }},
	}
}

// fig3TrainIters is the proxy convergence budget (kept modest: the point
// is relative accuracy across compressors, visible well before full
// convergence).
const fig3TrainIters = 120

// hardResNetTask is the Figure 3 classification proxy: the same CNN as
// modelzoo.ProxyResNet on a noisier dataset (template noise 2.0), so the
// baseline sits near 90% and the accuracy cost of loose error bounds is
// visible above run-to-run noise — the paper's ResNet-50/ImageNet setting
// has the same property (75.8% baseline).
func hardResNetTask(rng *rand.Rand) *modelzoo.ProxyTask {
	task := modelzoo.ProxyResNet(rng, 17)
	task.Data = dataset.NewImageClassification(10, 1, 10, 10, 2.0, 17)
	return task
}

// proxyAccuracy trains the proxy for the given model with KFAC and the
// compressor, returning final validation accuracy in percent.
func proxyAccuracy(model string, mk func(rank int) compress.Compressor, iters int) (float64, error) {
	builder := func(rng *rand.Rand) *modelzoo.ProxyTask { return hardResNetTask(rng) }
	if model == "BERT-large" {
		builder = func(rng *rand.Rand) *modelzoo.ProxyTask { return modelzoo.ProxyBERT(rng, 17) }
	}
	probe := builder(xrand.NewSeeded(0))
	kfacCfg := kfac.DefaultConfig()
	if probe.KFACDamping > 0 {
		kfacCfg.Damping = probe.KFACDamping
	}
	cfg := train.Config{
		BuildTask: builder,
		Workers:   4,
		Platform:  cluster.Platform1(),
		Iters:     iters,
		Seed:      1234,
		Schedule:  &opt.StepLR{BaseLR: probe.KFACLR, Drops: []int{iters * 2 / 3}, Gamma: 0.1},
		UseKFAC:   true,
		KFAC:      kfacCfg,
		StatFreq:  1,
	}
	if mk != nil {
		cfg.NewCompressor = mk
	}
	res, err := train.Run(cfg)
	if err != nil {
		return 0, err
	}
	return 100 * res.FinalAcc, nil
}

// Figure3 regenerates the motivation experiment. iters <= 0 uses the
// default budget.
func Figure3(iters int) ([]Fig3Row, *Table, error) {
	if iters <= 0 {
		iters = fig3TrainIters
	}
	var rows []Fig3Row
	table := &Table{
		Title:   "Figure 3: compression ratio and validation accuracy on KFAC gradients",
		Headers: []string{"Model", "Method", "CR (x)", "Accuracy (%)"},
	}
	for _, modelName := range []string{"ResNet-50", "BERT-large"} {
		profile, err := modelzoo.ByName(modelName)
		if err != nil {
			return nil, nil, err
		}
		base, err := proxyAccuracy(modelName, nil, iters)
		if err != nil {
			return nil, nil, fmt.Errorf("baseline %s: %w", modelName, err)
		}
		rows = append(rows, Fig3Row{Model: modelName, Method: "KFAC (no comp.)", CR: 1, Accuracy: base})
		table.Rows = append(table.Rows, []string{modelName, "KFAC (no comp.)", "1.0", fmtF(base, 1)})
		for _, m := range fig3Methods() {
			cr, err := MeasureCR(profile, m.mk(0), 1, 333)
			if err != nil {
				return nil, nil, err
			}
			acc, err := proxyAccuracy(modelName, m.mk, iters)
			if err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %w", m.name, modelName, err)
			}
			rows = append(rows, Fig3Row{Model: modelName, Method: m.name, CR: cr, Accuracy: acc})
			table.Rows = append(table.Rows, []string{modelName, m.name, fmtF(cr, 1), fmtF(acc, 1)})
		}
	}
	return rows, table, nil
}
